// Benchmarks regenerating the paper's evaluation (§5). One benchmark per
// figure plus the server-count experiment described in the text and the
// ablations DESIGN.md calls out. Each benchmark runs a shortened version of
// the corresponding accbench experiment (cmd/accbench regenerates the full
// curves) and reports the paper's ratio as a custom metric:
//
//	ratio/resp   baseline mean response time / ACC mean response time
//	             (>1: the ACC is faster — the ordinate of Figures 2-4)
//	ratio/tput   baseline completions / ACC completions (Figure 4)
//
// Absolute numbers depend on the host; the shape — ACC slightly behind at
// low concurrency, ahead under contention, behind with one server — is the
// reproduction target. See EXPERIMENTS.md for recorded full-length results.
package main

import (
	"testing"
	"time"

	"accdb/internal/core"
	"accdb/internal/experiment"
)

// benchConfig shortens the defaults so `go test -bench=.` stays tractable.
func benchConfig() experiment.Config {
	cfg := experiment.Defaults()
	cfg.Duration = 1500 * time.Millisecond
	cfg.Warmup = 300 * time.Millisecond
	return cfg
}

func reportPoint(b *testing.B, p *experiment.Point) {
	b.ReportMetric(p.RespRatio(), "ratio/resp")
	b.ReportMetric(p.TputRatio(), "ratio/tput")
	b.ReportMetric(p.ACC.Throughput, "acc-txn/s")
	b.ReportMetric(p.Baseline.Throughput, "base-txn/s")
}

func comparePoint(b *testing.B, cfg experiment.Config) {
	b.Helper()
	var last *experiment.Point
	for i := 0; i < b.N; i++ {
		p, err := experiment.Compare(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = p
	}
	reportPoint(b, last)
}

// BenchmarkFig2Hotspots regenerates Figure 2 (the effect of hotspots): the
// response-time ratio under the standard uniform district distribution and
// under the skewed distribution that concentrates load on one district. The
// paper's result: the skewed ratio exceeds the standard ratio, both above 1
// at high terminal counts.
func BenchmarkFig2Hotspots(b *testing.B) {
	for _, sub := range []struct {
		name string
		skew float64
	}{
		{"standard", 0},
		{"skewed", 0.5},
	} {
		b.Run(sub.name, func(b *testing.B) {
			cfg := benchConfig()
			cfg.Terminals = 48
			cfg.Skew = sub.skew
			comparePoint(b, cfg)
		})
	}
}

// BenchmarkFig3ComputeTime regenerates Figure 3 (the effect of transaction
// duration): inter-statement compute time inside new-order and delivery
// stretches lock hold times; the paper's result is a higher ratio with
// compute time than without.
func BenchmarkFig3ComputeTime(b *testing.B) {
	for _, sub := range []struct {
		name    string
		compute time.Duration
	}{
		{"without-compute", 0},
		{"with-compute", 500 * time.Microsecond},
	} {
		b.Run(sub.name, func(b *testing.B) {
			cfg := benchConfig()
			cfg.Terminals = 48
			cfg.ComputeTime = sub.compute
			comparePoint(b, cfg)
		})
	}
}

// BenchmarkFig4Throughput regenerates Figure 4 (response time and
// throughput) at three points of the terminal sweep: below the crossover
// (ratio < 1: the ACC's per-step log forces cost more than contention
// saves), near it, and above it (ratio > 1, throughput ratio < 1).
func BenchmarkFig4Throughput(b *testing.B) {
	for _, terminals := range []int{8, 24, 48} {
		b.Run(map[int]string{8: "low-8term", 24: "mid-24term", 48: "high-48term"}[terminals],
			func(b *testing.B) {
				cfg := benchConfig()
				cfg.Terminals = terminals
				comparePoint(b, cfg)
			})
	}
}

// BenchmarkExp4Servers regenerates the fourth experiment (described in §5.3,
// figure not shown): with a single database server the server is the
// bottleneck and the ACC's extra end-of-step processing makes it slightly
// slower; with several servers lock contention dominates and the ACC wins.
func BenchmarkExp4Servers(b *testing.B) {
	for _, servers := range []int{1, 3} {
		b.Run(map[int]string{1: "one-server", 3: "three-servers"}[servers],
			func(b *testing.B) {
				cfg := benchConfig()
				cfg.Terminals = 48
				cfg.Servers = servers
				comparePoint(b, cfg)
			})
	}
}

// BenchmarkAblationTwoLevel compares the one-level ACC with the earlier
// two-level design (§3.2): without run-time item identity the dispatcher
// pays false conflicts, so the two-level scheduler loses throughput.
func BenchmarkAblationTwoLevel(b *testing.B) {
	for _, sub := range []struct {
		name string
		mode core.Mode
	}{
		{"one-level", core.ModeACC},
		{"two-level", core.ModeTwoLevel},
	} {
		b.Run(sub.name, func(b *testing.B) {
			cfg := benchConfig()
			cfg.Terminals = 32
			cfg.Mode = sub.mode
			var last *experiment.RunResult
			for i := 0; i < b.N; i++ {
				r, err := experiment.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if !r.Consistent {
					b.Fatalf("inconsistent state: %v", r.Violations[0])
				}
				last = r
			}
			b.ReportMetric(last.Throughput, "txn/s")
			b.ReportMetric(float64(last.Mean.Microseconds())/1000, "mean-ms")
		})
	}
}

// BenchmarkAblationEagerLocks compares the implemented dynamic assertional
// locking against the simplified §3.3 algorithm that locks an assertion's
// whole footprint before each step.
func BenchmarkAblationEagerLocks(b *testing.B) {
	for _, sub := range []struct {
		name  string
		eager bool
	}{
		{"dynamic", false},
		{"eager", true},
	} {
		b.Run(sub.name, func(b *testing.B) {
			cfg := benchConfig()
			cfg.Terminals = 32
			cfg.EagerAssertionLocks = sub.eager
			var last *experiment.RunResult
			for i := 0; i < b.N; i++ {
				r, err := experiment.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(last.Throughput, "txn/s")
			b.ReportMetric(float64(last.Mean.Microseconds())/1000, "mean-ms")
		})
	}
}

// BenchmarkAblationStepForce quantifies design decision 3 of DESIGN.md: the
// per-step log force is the ACC's main overhead; removing it (hypothetical
// hardware with free forces) shows the scheduler's intrinsic cost.
func BenchmarkAblationStepForce(b *testing.B) {
	for _, sub := range []struct {
		name  string
		force time.Duration
	}{
		{"forced-steps", 100 * time.Microsecond},
		{"free-forces", 0},
	} {
		b.Run(sub.name, func(b *testing.B) {
			cfg := benchConfig()
			cfg.Terminals = 8
			cfg.ForceLatency = sub.force
			var last *experiment.RunResult
			for i := 0; i < b.N; i++ {
				r, err := experiment.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(last.Throughput, "txn/s")
			b.ReportMetric(float64(last.Mean.Microseconds())/1000, "mean-ms")
		})
	}
}
