package acc_test

import (
	"testing"
	"time"

	"accdb/internal/interference"
	"accdb/internal/spi"
	"accdb/pkg/acc"
)

type bumpArgs struct {
	Account int64
	Home    int
}

// buildBump returns a BuildFunc where each partition owns an accounts table
// holding one row per partition-local account id.
func buildBump(t *testing.T) acc.BuildFunc {
	return func(p int) (*acc.Engine, error) {
		db := acc.NewDB()
		accounts := db.MustCreateTable(spi.MustSchema("accounts", []spi.Column{
			{Name: "id", Kind: spi.KindInt},
			{Name: "balance", Kind: spi.KindInt},
		}, "id"))
		if err := accounts.Insert(spi.Row{spi.Int(p), spi.I64(100)}); err != nil {
			return nil, err
		}
		b := interference.NewBuilder()
		txnBump := b.TxnType("bump", 1)
		stBump := b.StepType("bump")
		eng := acc.New(db, b.Build(),
			acc.WithMode(acc.ModeACC),
			acc.WithWaitTimeout(5*time.Second),
		)
		eng.MustRegister(&acc.TxnType{
			Name: "bump",
			ID:   txnBump,
			Steps: []acc.Step{{
				Name: "bump", Type: stBump,
				Body: func(tc *acc.Ctx) error {
					a := tc.Args().(*bumpArgs)
					return tc.Update("accounts", []spi.Value{spi.I64(a.Account)},
						func(row spi.Row) error {
							row[1] = spi.I64(row[1].Int64() + 1)
							return nil
						})
				},
			}},
		})
		return eng, nil
	}
}

// TestClusterRouting drives the public scale-out surface: NewCluster with
// WithPartitions builds n engines, a Route's Home function steers each
// instance to its partition, and the direct path shows up in ClusterStats.
func TestClusterRouting(t *testing.T) {
	c, err := acc.NewCluster(buildBump(t),
		acc.WithPartitions(2), acc.WithDetectInterval(-1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.Partitions(); got != 2 {
		t.Fatalf("partitions = %d, want 2", got)
	}
	c.SetRoute("bump", acc.Route{
		Home: func(args any) int { return args.(*bumpArgs).Home },
	})

	for p := 0; p < 2; p++ {
		if err := c.Run("bump", &bumpArgs{Account: int64(p), Home: p}); err != nil {
			t.Fatalf("bump on partition %d: %v", p, err)
		}
	}
	var st acc.ClusterStats = c.Snapshot()
	if st.SingleRouted != 2 || st.CrossStarted != 0 {
		t.Fatalf("stats = %+v, want 2 single-routed, 0 cross", st)
	}
	// Each partition's own row moved; the other partition never saw it.
	for p := 0; p < 2; p++ {
		eng := c.Engine(p)
		var bal int64
		err := eng.RunLegacy("read", func(tc *acc.Ctx) error {
			return tc.Scan("accounts", func(row spi.Row) error {
				bal = row[1].Int64()
				return nil
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		if bal != 101 {
			t.Fatalf("partition %d balance = %d, want 101", p, bal)
		}
	}
}

// TestClusterEnvPartitions pins the ACCDB_PARTITIONS default path: without
// WithPartitions the cluster sizes itself from the environment, and an
// unset variable means a plain one-partition system.
func TestClusterEnvPartitions(t *testing.T) {
	t.Setenv("ACCDB_PARTITIONS", "3")
	if got := acc.EnvPartitions(); got != 3 {
		t.Fatalf("EnvPartitions = %d, want 3", got)
	}
	c, err := acc.NewCluster(buildBump(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Partitions(); got != 3 {
		t.Fatalf("partitions = %d, want 3 from ACCDB_PARTITIONS", got)
	}
	c.Close()

	t.Setenv("ACCDB_PARTITIONS", "not-a-number")
	if got := acc.EnvPartitions(); got != 1 {
		t.Fatalf("EnvPartitions = %d, want 1 for garbage input", got)
	}
}
