// Package acc is the stable public facade over the assertional concurrency
// control engine. Application code — and everything outside internal/ —
// should program against this package rather than internal/core: the aliases
// here are the supported surface, so the engine's internals can move without
// breaking callers.
//
// A minimal in-process program looks like:
//
//	db := acc.NewDB()
//	// create tables, build interference tables ...
//	eng := acc.New(db, tables, acc.WithMode(acc.ModeACC))
//	eng.MustRegister(myTxnType)
//	err := eng.RunContext(ctx, "new-order", &args)
//
// RunContext propagates ctx into every lock wait: cancelling the context
// aborts the wait, rolls the transaction back (compensating completed steps
// per §3.4 of the paper), and returns an error wrapping ctx.Err().
// Compensation itself always runs to completion under a background context —
// a cancelled client never leaves exposure marks or reservations behind.
//
// Failures classify with errors.Is against the exported sentinels
// (ErrAborted, ErrDeadlockVictim, ErrLockTimeout, ErrUnknownTxnType,
// ErrEngineClosed); Retryable folds the taxonomy into the one question retry
// loops ask. The accd network server and the accclient pool speak the same
// taxonomy over the wire.
package acc

import (
	// Importing the facade links in the default backends (the "btree" heap
	// store, the "memstore" ordered map, the sharded lock manager), so the
	// zero-config NewDB() path works out of the box.
	_ "accdb/internal/backends"
	"accdb/internal/core"
	"accdb/internal/spi"
)

// Engine schedules registered transaction types over a DB. It is an alias of
// the internal engine, so values interoperate with internal packages.
type Engine = core.Engine

// DB is the partitioned in-memory database the engine schedules over.
type DB = core.DB

// DBOption configures NewDB. See WithBackend and WithStorage.
type DBOption = core.DBOption

// NewDB creates an empty database. With no options it opens the backend
// named by the ACCDB_BACKEND environment variable, defaulting to the
// built-in B+-tree heap store.
func NewDB(opts ...DBOption) *DB { return core.NewDB(opts...) }

// WithBackend selects a registered storage backend by name; see Backends
// for the names linked into this binary.
func WithBackend(name string) DBOption { return core.WithBackend(name) }

// WithStorage supplies a caller-constructed Storage implementation,
// bypassing the registry — the "bring your own backend" path. The Storage,
// Table, and value types re-exported below are the complete vocabulary a
// backend has to implement.
func WithStorage(s Storage) DBOption { return core.WithStore(s) }

// Backends lists the storage backends registered in this binary.
func Backends() []string { return spi.Backends() }

// New creates an engine over db using the design-time interference tables,
// configured by functional options. See the With* options.
var New = core.New

// Option configures an Engine at construction.
type Option = core.Option

// Options is the full configuration record; most callers use the targeted
// With* options instead and reach for WithOptions only when assembling
// configuration dynamically.
type Options = core.Options

// Mode selects the scheduler.
type Mode = core.Mode

// Scheduler modes (see the Mode constants in the engine).
const (
	// ModeACC is the one-level assertional scheduler of §3.2-3.3.
	ModeACC = core.ModeACC
	// ModeBaseline treats the whole transaction as one strict-2PL unit.
	ModeBaseline = core.ModeBaseline
	// ModeTwoLevel is the earlier two-level design kept for ablations.
	ModeTwoLevel = core.ModeTwoLevel
)

// Functional options re-exported from the engine.
var (
	// WithMode selects the scheduler mode.
	WithMode = core.WithMode
	// WithWaitTimeout bounds individual lock waits.
	WithWaitTimeout = core.WithWaitTimeout
	// WithForceLatency sets the simulated log-force I/O time.
	WithForceLatency = core.WithForceLatency
	// WithMaxStepRetries bounds deadlock-victim step restarts.
	WithMaxStepRetries = core.WithMaxStepRetries
	// WithMaxTxnRetries bounds whole-transaction restarts.
	WithMaxTxnRetries = core.WithMaxTxnRetries
	// WithEagerAssertionLocks selects the simplified §3.3 algorithm.
	WithEagerAssertionLocks = core.WithEagerAssertionLocks
	// WithEnv injects execution costs.
	WithEnv = core.WithEnv
	// WithRecordHistory captures a conflict-checkable access history.
	WithRecordHistory = core.WithRecordHistory
	// WithTracer attaches the structured event bus.
	WithTracer = core.WithTracer
	// WithWAL backs the engine with an existing write-ahead log.
	WithWAL = core.WithWAL
	// WithVersionGCInterval sets the version-chain reaper cadence (zero:
	// 100ms default; negative: disabled).
	WithVersionGCInterval = core.WithVersionGCInterval
	// WithOptions replaces the entire Options record at once.
	WithOptions = core.WithOptions
)

// ReadTier selects the consistency level of a read-only transaction run
// through Engine.RunRead / Engine.RunReadContext or a client's RunTier (see
// CONSISTENCY.md for the tier-by-tier guarantees).
type ReadTier = core.ReadTier

// Consistency tiers, weakest coupling to the lock manager first. Only
// TierLocked permits writes; the other tiers read the engine's version
// chains and acquire no locks at all.
const (
	// TierLocked is the default fully locked protocol.
	TierLocked = core.TierLocked
	// TierASAP reads each row's latest exposed version, no cross-row
	// consistency claim.
	TierASAP = core.TierASAP
	// TierReadCommitted gives each statement a consistent exposure-point
	// prefix; statements may see different prefixes.
	TierReadCommitted = core.TierReadCommitted
	// TierSnapshot fixes one commit sequence number for the whole
	// transaction: a stable view, zero locks, never in the waits-for graph.
	TierSnapshot = core.TierSnapshot
)

// ParseReadTier maps a flag string (locked|asap|committed|snapshot) onto a
// tier.
var ParseReadTier = core.ParseReadTier

// Snapshot is a long-lived stable read point from Engine.OpenSnapshot:
// every transaction run through it sees the database as of the CSN captured
// at open. Close it promptly — the version reaper preserves everything an
// open snapshot can still reach.
type Snapshot = core.Snapshot

// TxnType is a registered multi-step transaction: steps, assertions, and
// compensations per §2-3 of the paper.
type TxnType = core.TxnType

// Step is one strict-2PL unit of a decomposed transaction.
type Step = core.Step

// Assertion is a predicate a step exposes for later steps to rely on.
type Assertion = core.Assertion

// Compensation semantically reverses a completed step during rollback.
type Compensation = core.Compensation

// Ctx is the per-step execution context handed to step bodies.
type Ctx = core.Ctx

// Stats aggregates engine counters.
type Stats = core.Stats

// The public error taxonomy. Classify with errors.Is/errors.As.
var (
	// ErrUnknownTxnType reports a Run against an unregistered type name.
	ErrUnknownTxnType = core.ErrUnknownTxnType
	// ErrEngineClosed reports a Run against a closed engine.
	ErrEngineClosed = core.ErrEngineClosed
	// ErrAborted is the root of every final rollback.
	ErrAborted = core.ErrAborted
	// ErrUserAbort is returned by a step body to request rollback.
	ErrUserAbort = core.ErrUserAbort
	// ErrRetriesExhausted reports an exhausted retry budget.
	ErrRetriesExhausted = core.ErrRetriesExhausted
	// ErrDeadlockVictim reports a deadlock-victim abort.
	ErrDeadlockVictim = core.ErrDeadlockVictim
	// ErrLockTimeout reports a lock wait that exceeded its budget.
	ErrLockTimeout = core.ErrLockTimeout
	// ErrReadOnly reports a write attempted inside a versioned-tier
	// read-only transaction.
	ErrReadOnly = core.ErrReadOnly
)

// CompensatedError reports that a transaction was rolled back by running
// compensations for its completed steps (§3.4). It matches ErrAborted under
// errors.Is.
type CompensatedError = core.CompensatedError

// CompensationFailedError reports that a compensation itself could not
// complete; the database may hold exposed uncompensated effects.
type CompensationFailedError = core.CompensationFailedError

// Retryable reports whether err is a transient scheduling outcome that a
// fresh attempt of the same transaction may convert into a commit.
func Retryable(err error) bool { return core.Retryable(err) }

// IsCompensated reports whether err (or anything it wraps) is a
// CompensatedError.
func IsCompensated(err error) bool { return core.IsCompensated(err) }
