// Backend vocabulary: the types a program needs to implement its own
// storage backend (or simply to build rows and schemas). These are aliases
// of the accdb/internal/spi service-provider interface, so a Storage built
// against this package plugs straight into NewDB via WithStorage — or into
// the registry, if the backend package registers itself and the program
// selects it with WithBackend / ACCDB_BACKEND. The behavioural contract is
// documented on the interfaces and in DESIGN.md §15; the conformance suite
// under internal/spi/spitest is the executable version of that contract.
package acc

import (
	"accdb/internal/spi"
)

// Storage is the row-store half of the backend SPI: a named collection of
// tables, safe for concurrent use.
type Storage = spi.Store

// Table is one relation of a Storage. See the interface documentation for
// the full contract (atomicity, pre-image capture, index ordering, and the
// version-chain obligations backing the lock-free read tiers).
type Table = spi.Table

// Capabilities declares the optional engine features a Storage supports;
// the engine warns on configuration a backend cannot honour (see
// Engine.ConfigWarnings).
type Capabilities = spi.Capabilities

// Schema describes a relation: ordered columns plus a primary key.
type Schema = spi.Schema

// Column is one column of a Schema.
type Column = spi.Column

// Kind enumerates the value kinds of the storage model.
type Kind = spi.Kind

// Value kinds.
const (
	KindInt    = spi.KindInt
	KindFloat  = spi.KindFloat
	KindString = spi.KindString
)

// Value is one dynamically typed cell.
type Value = spi.Value

// Row is an ordered tuple of values matching a Schema.
type Row = spi.Row

// Key is an order-preserving encoding of a value tuple; tables are keyed
// and indexed by it.
type Key = spi.Key

// IndexDef declares a secondary index over named columns.
type IndexDef = spi.IndexDef

// CSN is a commit sequence number; see the documentation on spi.CSN for
// the version-chain semantics behind the read tiers.
type CSN = spi.CSN

// VersionStats summarizes a table's version-chain footprint.
type VersionStats = spi.VersionStats

// Value constructors and key codecs, re-exported for building rows and
// probing tables.
var (
	// I64 builds an integer value.
	I64 = spi.I64
	// Int builds an integer value from an int.
	Int = spi.Int
	// F64 builds a float value.
	F64 = spi.F64
	// Str builds a string value.
	Str = spi.Str
	// EncodeKey encodes a value tuple into an order-preserving Key.
	EncodeKey = spi.EncodeKey
	// DecodeKey inverts EncodeKey.
	DecodeKey = spi.DecodeKey
	// NewSchema validates and builds a Schema.
	NewSchema = spi.NewSchema
	// MustSchema is NewSchema that panics; for static schemas.
	MustSchema = spi.MustSchema
)

// Sentinel errors a Storage implementation must wrap (errors.Is) so the
// engine's error taxonomy works unchanged.
var (
	// ErrNotFound reports a lookup for an absent primary key.
	ErrNotFound = spi.ErrNotFound
	// ErrDuplicate reports an insert whose primary key already exists.
	ErrDuplicate = spi.ErrDuplicate
)
