package acc_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"accdb/internal/interference"
	"accdb/internal/spi"
	"accdb/pkg/acc"
)

// moveSys is a minimal two-step system built through the public facade: a
// "move" transaction journals its intent (step 1), then updates an account
// row (step 2); compensation deletes the journal entry.
type moveSys struct {
	eng  *acc.Engine
	comp interference.StepTypeID
}

type moveArgs struct {
	ID      int64
	Account int64
	// BeforeUpdate runs at the top of step 2, after step 1 is durable.
	BeforeUpdate func()
}

func newMoveSys(t *testing.T) *moveSys {
	t.Helper()
	db := acc.NewDB()
	accounts := db.MustCreateTable(spi.MustSchema("accounts", []spi.Column{
		{Name: "id", Kind: spi.KindInt},
		{Name: "balance", Kind: spi.KindInt},
	}, "id"))
	db.MustCreateTable(spi.MustSchema("journal", []spi.Column{
		{Name: "id", Kind: spi.KindInt},
		{Name: "account", Kind: spi.KindInt},
	}, "id"))
	for i := 1; i <= 3; i++ {
		if err := accounts.Insert(spi.Row{spi.Int(i), spi.I64(100)}); err != nil {
			t.Fatal(err)
		}
	}

	b := interference.NewBuilder()
	txnMove := b.TxnType("move", 2)
	stJournal := b.StepType("journal")
	stUpdate := b.StepType("update")
	stComp := b.StepType("comp")

	s := &moveSys{comp: stComp}
	s.eng = acc.New(db, b.Build(),
		acc.WithMode(acc.ModeACC),
		acc.WithWaitTimeout(10*time.Second),
	)
	s.eng.MustRegister(&acc.TxnType{
		Name: "move",
		ID:   txnMove,
		Steps: []acc.Step{
			{
				Name: "journal", Type: stJournal,
				Body: func(tc *acc.Ctx) error {
					a := tc.Args().(*moveArgs)
					return tc.Insert("journal", spi.Row{
						spi.I64(a.ID), spi.I64(a.Account),
					})
				},
			},
			{
				Name: "update", Type: stUpdate,
				Body: func(tc *acc.Ctx) error {
					a := tc.Args().(*moveArgs)
					if a.BeforeUpdate != nil {
						a.BeforeUpdate()
					}
					return tc.Update("accounts", []spi.Value{spi.I64(a.Account)},
						func(row spi.Row) error {
							row[1] = spi.I64(row[1].Int64() + 1)
							return nil
						})
				},
			},
		},
		Comp: &acc.Compensation{
			Type: stComp,
			Body: func(tc *acc.Ctx, completed int) error {
				a := tc.Args().(*moveArgs)
				if completed >= 1 {
					return tc.Delete("journal", spi.I64(a.ID))
				}
				return nil
			},
		},
	})
	return s
}

// TestRunContextCancelCompensates drives the facade's headline contract: a
// caller that cancels its context while the transaction is blocked in a lock
// wait gets the wait aborted, the completed prefix compensated (§3.4), and
// every lock released.
func TestRunContextCancelCompensates(t *testing.T) {
	s := newMoveSys(t)

	// A legacy transaction camps on account 1's write spi.
	held := make(chan struct{})
	release := make(chan struct{})
	blockerDone := make(chan error, 1)
	go func() {
		blockerDone <- s.eng.RunLegacy("blocker", func(tc *acc.Ctx) error {
			err := tc.Update("accounts", []spi.Value{spi.I64(1)},
				func(row spi.Row) error { return nil })
			if err != nil {
				return err
			}
			close(held)
			<-release
			return nil
		})
	}()
	<-held

	// The move journals (step 1 commits its end-of-step record), then
	// blocks behind the blocker's X lock in step 2. Cancel it there.
	ctx, cancel := context.WithCancel(context.Background())
	waiting := make(chan struct{})
	go func() {
		<-waiting
		time.Sleep(20 * time.Millisecond) // let the wait actually park
		cancel()
	}()
	err := s.eng.RunContext(ctx, "move", &moveArgs{
		ID: 7, Account: 1,
		BeforeUpdate: func() { close(waiting) },
	})
	close(release)
	if berr := <-blockerDone; berr != nil {
		t.Fatalf("blocker: %v", berr)
	}

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in chain, got %v", err)
	}
	if !acc.IsCompensated(err) {
		t.Fatalf("want compensated outcome, got %v", err)
	}
	if !errors.Is(err, acc.ErrAborted) {
		t.Fatalf("compensated outcome must match ErrAborted, got %v", err)
	}
	if acc.Retryable(err) {
		t.Fatalf("a cancelled, compensated transaction must not be retryable: %v", err)
	}
	if got := s.eng.Snapshot().Compensations; got != 1 {
		t.Fatalf("compensations = %d, want 1", got)
	}

	// The journal entry was compensated away and all locks released: a
	// fresh run over the same rows commits promptly.
	if err := s.eng.Run("move", &moveArgs{ID: 8, Account: 1}); err != nil {
		t.Fatalf("post-cancel run: %v", err)
	}
	var journaled int
	err = s.eng.RunLegacy("count", func(tc *acc.Ctx) error {
		journaled = 0
		return tc.Scan("journal", func(spi.Row) error {
			journaled++
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if journaled != 1 {
		t.Fatalf("journal rows = %d, want 1 (cancelled entry compensated away)", journaled)
	}
}

// TestRunContextCancelBeforeExposure cancels during step 1: nothing is
// exposed yet, so the engine undoes in place and propagates the bare
// cancellation — no compensation, no user-abort accounting.
func TestRunContextCancelBeforeExposure(t *testing.T) {
	s := newMoveSys(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.eng.RunContext(ctx, "move", &moveArgs{ID: 9, Account: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if acc.IsCompensated(err) {
		t.Fatalf("nothing completed, nothing to compensate: %v", err)
	}
	st := s.eng.Snapshot()
	if st.Compensations != 0 || st.UserAborts != 0 {
		t.Fatalf("stats = %+v, want no compensations and no user aborts", st)
	}
}

// TestFacadeErrors pins the taxonomy behavior callers rely on.
func TestFacadeErrors(t *testing.T) {
	s := newMoveSys(t)

	err := s.eng.Run("no-such-type", nil)
	if !errors.Is(err, acc.ErrUnknownTxnType) {
		t.Fatalf("want ErrUnknownTxnType, got %v", err)
	}

	if !acc.Retryable(acc.ErrDeadlockVictim) || !acc.Retryable(acc.ErrLockTimeout) {
		t.Fatal("deadlock and lock-timeout outcomes must be retryable")
	}
	for _, err := range []error{nil, acc.ErrUserAbort, acc.ErrUnknownTxnType, acc.ErrEngineClosed, context.Canceled} {
		if acc.Retryable(err) {
			t.Fatalf("%v must not be retryable", err)
		}
	}
	// A compensated rollback is final even when its cause was a deadlock.
	comp := &acc.CompensatedError{Txn: "move", Cause: acc.ErrDeadlockVictim}
	if acc.Retryable(comp) {
		t.Fatal("compensated rollback must not be retryable")
	}
	if !errors.Is(comp, acc.ErrAborted) {
		t.Fatal("compensated rollback must match ErrAborted")
	}

	if err := s.eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.eng.Run("move", &moveArgs{ID: 10, Account: 3}); !errors.Is(err, acc.ErrEngineClosed) {
		t.Fatalf("want ErrEngineClosed after Close, got %v", err)
	}
}
