// Scale-out vocabulary: the public surface over internal/partition. A
// Cluster is n independent engines behind a deterministic router and a
// multi-shot commit coordinator (DESIGN.md §16); NewCluster builds one from
// the same BuildFunc loop accd uses, sized by WithPartitions or the
// ACCDB_PARTITIONS environment variable.
package acc

import (
	"time"

	"accdb/internal/partition"
	"accdb/internal/trace"
)

// Cluster is a partitioned engine: n engines behind a key→partition router
// and a multi-shot commit coordinator for the transactions that span
// partitions. Single-partition transactions route whole to their home
// engine at single-engine cost; cross-partition transactions run as
// per-partition shots with a durable decision record and §3.4 compensation
// on abort.
type Cluster = partition.Set

// BuildFunc constructs one partition's engine: its own DB over its own
// backend instance, its own WAL, its transaction types registered. The
// Cluster owns the returned engines and closes them with Close.
type BuildFunc = partition.BuildFunc

// Shot is one per-partition unit of a cross-partition transaction.
type Shot = partition.Shot

// Route declares how instances of one transaction type map onto
// partitions: a home function, and an optional split into remote shots.
type Route = partition.Route

// UndoSpec declares the compensating undo of a shot type, in the §3.4
// saga style: the transaction type that semantically reverses a committed
// shot, and how to derive its arguments.
type UndoSpec = partition.UndoSpec

// ClusterStats aggregates a Cluster's router and coordinator counters.
type ClusterStats = partition.Stats

// ClusterOption configures NewCluster.
type ClusterOption func(*clusterConfig)

type clusterConfig struct {
	n    int
	opts []partition.Option
}

// WithPartitions sets the partition count. Without it, NewCluster sizes
// the cluster from the ACCDB_PARTITIONS environment variable (unset or
// invalid means one partition — a plain single-engine system).
func WithPartitions(n int) ClusterOption {
	return func(c *clusterConfig) { c.n = n }
}

// WithClusterTracer attaches a trace bus to the coordinator's own events
// (coord.*/shot.* kinds); the per-partition engines carry their own
// tracers, attached in the BuildFunc.
func WithClusterTracer(t *trace.Tracer) ClusterOption {
	return func(c *clusterConfig) {
		c.opts = append(c.opts, partition.WithTracer(t))
	}
}

// WithDetectInterval sets the cross-partition deadlock detector's cadence.
// Zero keeps the default; negative disables the background detector.
func WithDetectInterval(d time.Duration) ClusterOption {
	return func(c *clusterConfig) {
		c.opts = append(c.opts, partition.WithDetectInterval(d))
	}
}

// EnvPartitions reads ACCDB_PARTITIONS: the partition count NewCluster,
// accd, and the harnesses default to. Unset, empty, zero, or unparsable
// means 1.
func EnvPartitions() int { return partition.EnvPartitions() }

// NewCluster builds a Cluster, constructing each partition's engine with
// build. The partition count comes from WithPartitions, or failing that
// from ACCDB_PARTITIONS. A one-partition Cluster is a valid degenerate
// case: every transaction takes the direct single-engine path.
func NewCluster(build BuildFunc, opts ...ClusterOption) (*Cluster, error) {
	cfg := clusterConfig{n: partition.EnvPartitions()}
	for _, apply := range opts {
		apply(&cfg)
	}
	return partition.New(cfg.n, build, cfg.opts...)
}
