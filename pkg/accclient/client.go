// Package accclient is the client for accd's wire protocol. A Client owns a
// small pool of TCP connections; requests are pipelined — many in flight per
// connection, correlated by request id — and outcomes that the engine's
// taxonomy marks retryable (deadlock victim, lock timeout) plus admission
// refusals (queue full) are retried automatically under the configured
// policy.
//
// Errors returned by Run reconstruct the server-side taxonomy: errors.Is
// against acc.ErrAborted / acc.ErrDeadlockVictim / acc.ErrLockTimeout /
// acc.ErrUnknownTxnType works across the wire, and acc.IsCompensated
// identifies compensated rollbacks — whose result payload the client still
// decodes, because a compensated transaction may have consumed identifiers
// (a TPC-C order number) the application's bookkeeping needs.
package accclient

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"accdb/internal/core"
	"accdb/internal/server/wire"
)

// Package sentinels for admission and protocol failures. Engine outcomes
// (aborts, deadlocks, timeouts, compensation) map onto the acc taxonomy
// instead.
var (
	// ErrQueueFull reports a request refused by the server's admission
	// control. Nothing executed; the request is safely retryable.
	ErrQueueFull = errors.New("accclient: server queue full")
	// ErrDraining reports a request refused because the server is shutting
	// down. Nothing executed; retry against another server.
	ErrDraining = errors.New("accclient: server draining")
	// ErrBadRequest reports a request the server could not decode.
	ErrBadRequest = errors.New("accclient: bad request")
	// ErrClosed reports a Run on a closed client.
	ErrClosed = errors.New("accclient: client closed")
)

// RetryPolicy bounds automatic retries of retryable outcomes.
type RetryPolicy struct {
	// Max is the number of retries after the first attempt.
	Max int
	// Backoff is the sleep before the first retry; it doubles per retry.
	Backoff time.Duration
}

// Options configures a Client.
type Options struct {
	// PoolSize is the number of TCP connections; requests round-robin over
	// them. Zero means 4.
	PoolSize int
	// Retry bounds automatic retries. The zero policy retries once after
	// 2ms, the paper's deadlock-recurrence rule applied at the client.
	Retry RetryPolicy
	// DialTimeout bounds each connection attempt. Zero means 5s.
	DialTimeout time.Duration
}

// Option mutates Options.
type Option func(*Options)

// WithPoolSize sets the connection pool size.
func WithPoolSize(n int) Option { return func(o *Options) { o.PoolSize = n } }

// WithRetry sets the retry policy.
func WithRetry(p RetryPolicy) Option { return func(o *Options) { o.Retry = p } }

// WithDialTimeout bounds each connection attempt.
func WithDialTimeout(d time.Duration) Option { return func(o *Options) { o.DialTimeout = d } }

// Stats counts client-side request activity.
type Stats struct {
	// Requests is the number of Run calls.
	Requests uint64
	// Attempts is the number of wire round trips (≥ Requests).
	Attempts uint64
	// Retries counts attempts beyond each request's first.
	Retries uint64
	// TransportErrors counts broken-connection failures.
	TransportErrors uint64
}

// Client is a pooled, pipelined connection to one accd server.
type Client struct {
	addr string
	opts Options

	ids  atomic.Uint64
	next atomic.Uint64

	requests        atomic.Uint64
	attempts        atomic.Uint64
	retries         atomic.Uint64
	transportErrors atomic.Uint64

	closed atomic.Bool
	slots  []*slot
}

// slot is one pool entry; the connection is dialed lazily and redialed
// after transport failures.
type slot struct {
	mu sync.Mutex
	c  *conn
}

// Dial creates a client for addr and verifies connectivity with one ping.
func Dial(addr string, opts ...Option) (*Client, error) {
	var o Options
	for _, apply := range opts {
		apply(&o)
	}
	if o.PoolSize <= 0 {
		o.PoolSize = 4
	}
	if o.Retry.Max == 0 && o.Retry.Backoff == 0 {
		o.Retry = RetryPolicy{Max: 1, Backoff: 2 * time.Millisecond}
	}
	if o.DialTimeout == 0 {
		o.DialTimeout = 5 * time.Second
	}
	c := &Client{addr: addr, opts: o, slots: make([]*slot, o.PoolSize)}
	for i := range c.slots {
		c.slots[i] = &slot{}
	}
	if err := c.Ping(context.Background()); err != nil {
		c.Close()
		return nil, fmt.Errorf("accclient: dial %s: %w", addr, err)
	}
	return c, nil
}

// Stats snapshots the client counters.
func (c *Client) Stats() Stats {
	return Stats{
		Requests:        c.requests.Load(),
		Attempts:        c.attempts.Load(),
		Retries:         c.retries.Load(),
		TransportErrors: c.transportErrors.Load(),
	}
}

// Close tears down the pool. In-flight requests fail with transport errors.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	for _, s := range c.slots {
		s.mu.Lock()
		if s.c != nil {
			s.c.shutdown(ErrClosed)
			s.c = nil
		}
		s.mu.Unlock()
	}
	return nil
}

// Ping round-trips a no-op request.
func (c *Client) Ping(ctx context.Context) error {
	_, err := c.roundTrip(ctx, &wire.Request{Op: wire.OpPing})
	return err
}

// Run executes the named transaction type on the server with the given
// argument record. args is marshaled to JSON once; on a final outcome the
// response's work area is unmarshaled back into args, so output fields
// (assigned order numbers, fetched balances) appear in place, exactly as
// with the in-process acc.Engine. Retryable outcomes are retried per the
// policy with exponential backoff; ctx cancels the wait for a response (the
// server finishes or compensates the in-flight attempt on its own).
func (c *Client) Run(ctx context.Context, name string, args any) error {
	c.requests.Add(1)
	var payload []byte
	if args != nil {
		var err error
		if payload, err = json.Marshal(args); err != nil {
			return fmt.Errorf("accclient: marshal %s args: %w", name, err)
		}
	}
	backoff := c.opts.Retry.Backoff
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			if backoff > 0 {
				select {
				case <-time.After(backoff):
				case <-ctx.Done():
					return ctx.Err()
				}
				backoff *= 2
			}
		}
		resp, err := c.roundTrip(ctx, &wire.Request{Op: wire.OpRun, Name: name, Args: payload})
		if err != nil {
			// Transport failure: the attempt's fate is unknown, so blind
			// retry could double-execute a non-idempotent transaction.
			// Surface it; the application decides.
			return err
		}
		err = statusError(name, resp)
		if retryable(err) && attempt < c.opts.Retry.Max && ctx.Err() == nil {
			continue
		}
		if len(resp.Result) > 0 && args != nil {
			if uerr := json.Unmarshal(resp.Result, args); uerr != nil && err == nil {
				err = fmt.Errorf("accclient: decode %s result: %w", name, uerr)
			}
		}
		return err
	}
}

// retryable extends the engine's predicate with client-side admission
// refusals: a queue-full rejection executed nothing, so retrying is safe.
func retryable(err error) bool {
	return core.Retryable(err) || errors.Is(err, ErrQueueFull)
}

// statusError reconstructs an errors.Is-compatible error from a response.
func statusError(name string, resp *wire.Response) error {
	switch resp.Status {
	case wire.StatusOK:
		return nil
	case wire.StatusCompensated:
		return &core.CompensatedError{Txn: name, Cause: errors.New(resp.Msg)}
	case wire.StatusAborted:
		return fmt.Errorf("%w: %s", core.ErrAborted, resp.Msg)
	case wire.StatusDeadlock:
		return fmt.Errorf("%w: %s", core.ErrDeadlockVictim, resp.Msg)
	case wire.StatusLockTimeout:
		return fmt.Errorf("%w: %s", core.ErrLockTimeout, resp.Msg)
	case wire.StatusCanceled:
		return fmt.Errorf("%w: server reported %s", context.Canceled, resp.Msg)
	case wire.StatusUnknownType:
		return fmt.Errorf("%w: %s", core.ErrUnknownTxnType, resp.Msg)
	case wire.StatusQueueFull:
		return ErrQueueFull
	case wire.StatusDraining:
		return fmt.Errorf("%w: %s", ErrDraining, resp.Msg)
	case wire.StatusBadRequest:
		return fmt.Errorf("%w: %s", ErrBadRequest, resp.Msg)
	default:
		return fmt.Errorf("accclient: %s failed: %s (%s)", name, resp.Msg, resp.Status)
	}
}

// roundTrip sends one request over a pooled connection and waits for its
// response or ctx.
func (c *Client) roundTrip(ctx context.Context, req *wire.Request) (*wire.Response, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	c.attempts.Add(1)
	s := c.slots[c.next.Add(1)%uint64(len(c.slots))]
	cn, err := s.get(c)
	if err != nil {
		c.transportErrors.Add(1)
		return nil, err
	}
	req.ID = c.ids.Add(1)
	ch, err := cn.send(req)
	if err != nil {
		c.transportErrors.Add(1)
		s.retire(cn)
		return nil, err
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			c.transportErrors.Add(1)
			s.retire(cn)
			return nil, cn.failure()
		}
		return resp, nil
	case <-ctx.Done():
		cn.forget(req.ID)
		return nil, ctx.Err()
	}
}

// get returns the slot's live connection, dialing if needed.
func (s *slot) get(c *Client) (*conn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.c != nil && !s.c.broken() {
		return s.c, nil
	}
	nc, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("accclient: %w", err)
	}
	s.c = newConn(nc)
	return s.c, nil
}

// retire drops cn from the slot so the next request redials.
func (s *slot) retire(cn *conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.c == cn {
		s.c = nil
	}
	cn.shutdown(nil)
}

// conn is one pooled connection with a demultiplexing reader: responses
// arrive in completion order and are routed to waiters by request id.
type conn struct {
	nc  net.Conn
	wmu sync.Mutex

	mu      sync.Mutex
	pending map[uint64]chan *wire.Response
	err     error
}

func newConn(nc net.Conn) *conn {
	cn := &conn{nc: nc, pending: make(map[uint64]chan *wire.Response)}
	go cn.readLoop()
	return cn
}

func (cn *conn) readLoop() {
	for {
		resp, err := wire.ReadResponse(cn.nc)
		if err != nil {
			cn.shutdown(fmt.Errorf("accclient: connection lost: %w", err))
			return
		}
		cn.mu.Lock()
		ch := cn.pending[resp.ID]
		delete(cn.pending, resp.ID)
		cn.mu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
}

// send registers the request id and writes the frame.
func (cn *conn) send(req *wire.Request) (chan *wire.Response, error) {
	ch := make(chan *wire.Response, 1)
	cn.mu.Lock()
	if cn.err != nil {
		err := cn.err
		cn.mu.Unlock()
		return nil, err
	}
	cn.pending[req.ID] = ch
	cn.mu.Unlock()

	cn.wmu.Lock()
	err := wire.WriteRequest(cn.nc, req)
	cn.wmu.Unlock()
	if err != nil {
		cn.forget(req.ID)
		return nil, fmt.Errorf("accclient: write: %w", err)
	}
	return ch, nil
}

// forget abandons a pending request (ctx cancellation): a late response is
// dropped by the read loop.
func (cn *conn) forget(id uint64) {
	cn.mu.Lock()
	delete(cn.pending, id)
	cn.mu.Unlock()
}

// shutdown breaks the connection and fails every pending waiter by closing
// its channel.
func (cn *conn) shutdown(cause error) {
	cn.mu.Lock()
	if cn.err == nil {
		if cause == nil {
			cause = errors.New("accclient: connection retired")
		}
		cn.err = cause
	}
	pending := cn.pending
	cn.pending = make(map[uint64]chan *wire.Response)
	cn.mu.Unlock()
	cn.nc.Close()
	for _, ch := range pending {
		close(ch)
	}
}

func (cn *conn) broken() bool {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.err != nil
}

func (cn *conn) failure() error {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	if cn.err != nil {
		return cn.err
	}
	return errors.New("accclient: connection lost")
}
