// Package accclient is the client for accd's wire protocol. A Client owns a
// small pool of TCP connections; requests are pipelined — many in flight per
// connection, correlated by request id — and outcomes that the engine's
// taxonomy marks retryable (deadlock victim, lock timeout) plus admission
// refusals (queue full) are retried automatically under the configured
// policy.
//
// Errors returned by Run reconstruct the server-side taxonomy: errors.Is
// against acc.ErrAborted / acc.ErrDeadlockVictim / acc.ErrLockTimeout /
// acc.ErrUnknownTxnType works across the wire, and acc.IsCompensated
// identifies compensated rollbacks — whose result payload the client still
// decodes, because a compensated transaction may have consumed identifiers
// (a TPC-C order number) the application's bookkeeping needs.
package accclient

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"accdb/internal/core"
	"accdb/internal/server/wire"
)

// Package sentinels for admission and protocol failures. Engine outcomes
// (aborts, deadlocks, timeouts, compensation) map onto the acc taxonomy
// instead.
var (
	// ErrQueueFull reports a request refused by the server's admission
	// control. Nothing executed; the request is safely retryable.
	ErrQueueFull = errors.New("accclient: server queue full")
	// ErrDraining reports a request refused because the server is shutting
	// down. Nothing executed; retry against another server.
	ErrDraining = errors.New("accclient: server draining")
	// ErrBadRequest reports a request the server could not decode.
	ErrBadRequest = errors.New("accclient: bad request")
	// ErrClosed reports a Run on a closed client.
	ErrClosed = errors.New("accclient: client closed")
)

// RetryPolicy bounds automatic retries of retryable outcomes.
type RetryPolicy struct {
	// Max is the number of retries after the first attempt.
	Max int
	// Backoff is the sleep before the first retry; it doubles per retry.
	Backoff time.Duration
}

// Options configures a Client.
type Options struct {
	// PoolSize is the number of TCP connections; requests round-robin over
	// them. Zero means 4.
	PoolSize int
	// Retry bounds automatic retries. The zero policy retries once after
	// 2ms, the paper's deadlock-recurrence rule applied at the client.
	Retry RetryPolicy
	// DialTimeout bounds each connection attempt. Zero means 5s.
	DialTimeout time.Duration
	// TraceObserver, when non-nil, receives the trace id assigned to each
	// Run before its first attempt is sent. The id is stable across retries
	// of one logical request and is what the server's latency-anatomy layer
	// keys its spans by, so an application (or test) can correlate its own
	// records with server-side breakdowns.
	TraceObserver func(traceID uint64)
}

// Option mutates Options.
type Option func(*Options)

// WithPoolSize sets the connection pool size.
func WithPoolSize(n int) Option { return func(o *Options) { o.PoolSize = n } }

// WithRetry sets the retry policy.
func WithRetry(p RetryPolicy) Option { return func(o *Options) { o.Retry = p } }

// WithDialTimeout bounds each connection attempt.
func WithDialTimeout(d time.Duration) Option { return func(o *Options) { o.DialTimeout = d } }

// WithTraceObserver registers a hook receiving each Run's trace id.
func WithTraceObserver(fn func(traceID uint64)) Option {
	return func(o *Options) { o.TraceObserver = fn }
}

// Stats counts client-side request activity.
type Stats struct {
	// Requests is the number of Run calls.
	Requests uint64
	// Attempts is the number of wire round trips (≥ Requests).
	Attempts uint64
	// Retries counts attempts beyond each request's first.
	Retries uint64
	// TransportErrors counts broken-connection failures.
	TransportErrors uint64
}

// Client is a pooled, pipelined connection to one accd server.
type Client struct {
	addr string
	opts Options

	ids  atomic.Uint64
	next atomic.Uint64

	// traceBase seeds this client's trace ids: dial-time nanoseconds in the
	// high bits, a per-Run counter in the low traceSeqBits. Two clients of
	// one server draw from disjoint ranges without coordination.
	traceBase uint64
	traces    atomic.Uint64

	requests        atomic.Uint64
	attempts        atomic.Uint64
	retries         atomic.Uint64
	transportErrors atomic.Uint64

	closed atomic.Bool
	slots  []*slot
}

// slot is one pool entry; the connection is dialed lazily and redialed
// after transport failures.
type slot struct {
	mu sync.Mutex
	c  *conn
}

// Dial creates a client for addr and verifies connectivity with one ping.
func Dial(addr string, opts ...Option) (*Client, error) {
	var o Options
	for _, apply := range opts {
		apply(&o)
	}
	if o.PoolSize <= 0 {
		o.PoolSize = 4
	}
	if o.Retry.Max == 0 && o.Retry.Backoff == 0 {
		o.Retry = RetryPolicy{Max: 1, Backoff: 2 * time.Millisecond}
	}
	if o.DialTimeout == 0 {
		o.DialTimeout = 5 * time.Second
	}
	c := &Client{addr: addr, opts: o, slots: make([]*slot, o.PoolSize)}
	c.traceBase = uint64(time.Now().UnixNano()) << traceSeqBits
	if c.traceBase == 0 {
		c.traceBase = 1 << traceSeqBits
	}
	for i := range c.slots {
		c.slots[i] = &slot{}
	}
	if err := c.Ping(context.Background()); err != nil {
		c.Close()
		return nil, fmt.Errorf("accclient: dial %s: %w", addr, err)
	}
	return c, nil
}

// Stats snapshots the client counters.
func (c *Client) Stats() Stats {
	return Stats{
		Requests:        c.requests.Load(),
		Attempts:        c.attempts.Load(),
		Retries:         c.retries.Load(),
		TransportErrors: c.transportErrors.Load(),
	}
}

// Close tears down the pool. In-flight requests fail with transport errors.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	for _, s := range c.slots {
		s.mu.Lock()
		if s.c != nil {
			s.c.shutdown(ErrClosed)
			s.c = nil
		}
		s.mu.Unlock()
	}
	return nil
}

// runState carries one Run's request across attempts: the request header
// plus the buffers its Name and Args fields alias. Pooled, so a
// binary-codec Run allocates nothing on the request path.
type runState struct {
	req     wire.Request
	argBuf  []byte
	nameBuf []byte
}

var runPool = sync.Pool{New: func() any { return new(runState) }}

// Ping round-trips a no-op request.
func (c *Client) Ping(ctx context.Context) error {
	st := runPool.Get().(*runState)
	defer runPool.Put(st)
	st.req = wire.Request{Op: wire.OpPing}
	rf, err := c.roundTrip(ctx, &st.req)
	if rf != nil {
		respPool.Put(rf)
	}
	return err
}

// Run executes the named transaction type on the server with the given
// argument record. A type with a registered wire.ArgCodec travels as a
// fixed-layout binary record through pooled buffers; anything else is
// marshaled to JSON once. On a final outcome the response's work area is
// decoded back into args, so output fields (assigned order numbers, fetched
// balances) appear in place, exactly as with the in-process acc.Engine.
// Retryable outcomes are retried per the policy with exponential backoff;
// ctx cancels the wait for a response (the server finishes or compensates
// the in-flight attempt on its own). A server that rejects the binary
// format — no codec registered on its side — is retried once in JSON, so
// mixed deployments interoperate.
func (c *Client) Run(ctx context.Context, name string, args any) error {
	return c.RunTier(ctx, name, args, core.TierLocked)
}

// RunTier is Run at an explicit consistency tier. TierLocked (the Run
// default) executes the full locked protocol and is the only tier that
// permits writes; the versioned tiers (acc.TierASAP, acc.TierReadCommitted,
// acc.TierSnapshot) take the server's lock-free read path, and a write
// inside the transaction fails the request with a bad-request status
// wrapping acc.ErrReadOnly's message.
func (c *Client) RunTier(ctx context.Context, name string, args any, tier core.ReadTier) error {
	c.requests.Add(1)
	st := runPool.Get().(*runState)
	defer runPool.Put(st)
	st.req = wire.Request{Op: wire.OpRun, Trace: c.nextTrace(), Tier: uint8(tier)}
	if c.opts.TraceObserver != nil {
		c.opts.TraceObserver(st.req.Trace)
	}
	codec := wire.CodecFor(name)
	if codec != nil && args != nil && codec.Handles(args) {
		st.argBuf = codec.Encode(st.argBuf[:0], args)
		st.req.Fmt = wire.FmtBinary
		st.req.Name = codec.NameBytes()
		st.req.Args = st.argBuf
	} else {
		codec = nil
		if err := st.encodeJSON(name, args); err != nil {
			return err
		}
	}
	backoff := c.opts.Retry.Backoff
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			if backoff > 0 {
				select {
				case <-time.After(backoff):
				case <-ctx.Done():
					return ctx.Err()
				}
				backoff *= 2
			}
		}
		rf, err := c.roundTrip(ctx, &st.req)
		if err != nil {
			// Transport failure: the attempt's fate is unknown, so blind
			// retry could double-execute a non-idempotent transaction.
			// Surface it; the application decides.
			return err
		}
		err = statusError(name, &rf.resp)
		if codec != nil && errors.Is(err, ErrBadRequest) {
			// The server has no binary codec for this type (an older
			// build): fall back to JSON and resend. Nothing executed, so
			// the resend is safe.
			respPool.Put(rf)
			codec = nil
			if jerr := st.encodeJSON(name, args); jerr != nil {
				return jerr
			}
			continue
		}
		if retryable(err) && attempt < c.opts.Retry.Max && ctx.Err() == nil {
			respPool.Put(rf)
			continue
		}
		if len(rf.resp.Result) > 0 && args != nil {
			var uerr error
			if rf.resp.Fmt == wire.FmtBinary && codec != nil {
				uerr = codec.Decode(rf.resp.Result, args)
			} else {
				uerr = json.Unmarshal(rf.resp.Result, args)
			}
			if uerr != nil && err == nil {
				err = fmt.Errorf("accclient: decode %s result: %w", name, uerr)
			}
		}
		respPool.Put(rf)
		return err
	}
}

// traceSeqBits is the width of the per-client trace sequence number; about
// a million Runs per client before the window wraps within the base.
const traceSeqBits = 20

// nextTrace returns the next trace id: one per logical Run, stable across
// its retries, never zero.
func (c *Client) nextTrace() uint64 {
	return c.traceBase | (c.traces.Add(1) & (1<<traceSeqBits - 1))
}

// encodeJSON points st's request at a JSON encoding of args.
func (st *runState) encodeJSON(name string, args any) error {
	st.req.Fmt = wire.FmtJSON
	st.nameBuf = append(st.nameBuf[:0], name...)
	st.req.Name = st.nameBuf
	st.req.Args = nil
	if args != nil {
		payload, err := json.Marshal(args)
		if err != nil {
			return fmt.Errorf("accclient: marshal %s args: %w", name, err)
		}
		st.req.Args = payload
	}
	return nil
}

// retryable extends the engine's predicate with client-side admission
// refusals: a queue-full rejection executed nothing, so retrying is safe.
func retryable(err error) bool {
	return core.Retryable(err) || errors.Is(err, ErrQueueFull)
}

// statusError reconstructs an errors.Is-compatible error from a response.
func statusError(name string, resp *wire.Response) error {
	switch resp.Status {
	case wire.StatusOK:
		return nil
	case wire.StatusCompensated:
		return &core.CompensatedError{Txn: name, Cause: errors.New(string(resp.Msg))}
	case wire.StatusAborted:
		return fmt.Errorf("%w: %s", core.ErrAborted, resp.Msg)
	case wire.StatusDeadlock:
		return fmt.Errorf("%w: %s", core.ErrDeadlockVictim, resp.Msg)
	case wire.StatusLockTimeout:
		return fmt.Errorf("%w: %s", core.ErrLockTimeout, resp.Msg)
	case wire.StatusCanceled:
		return fmt.Errorf("%w: server reported %s", context.Canceled, resp.Msg)
	case wire.StatusUnknownType:
		return fmt.Errorf("%w: %s", core.ErrUnknownTxnType, resp.Msg)
	case wire.StatusQueueFull:
		return ErrQueueFull
	case wire.StatusDraining:
		return fmt.Errorf("%w: %s", ErrDraining, resp.Msg)
	case wire.StatusBadRequest:
		return fmt.Errorf("%w: %s", ErrBadRequest, resp.Msg)
	default:
		return fmt.Errorf("accclient: %s failed: %s (%s)", name, resp.Msg, resp.Status)
	}
}

// respFrame is one received response: the decoded header plus the frame
// buffer its Msg and Result fields alias. Pooled; the consumer returns it
// with respPool.Put once done with the aliased fields.
type respFrame struct {
	resp wire.Response
	buf  []byte
}

var respPool = sync.Pool{New: func() any { return new(respFrame) }}

// chanPool recycles response rendezvous channels. A channel is re-pooled
// only after its response was received — a channel abandoned on ctx
// cancellation or closed by a connection shutdown may still be touched by
// the read loop and must go to the garbage collector instead.
var chanPool = sync.Pool{New: func() any { return make(chan *respFrame, 1) }}

// roundTrip sends one request over a pooled connection and waits for its
// response or ctx. The caller owns the returned respFrame and recycles it
// with respPool.Put.
func (c *Client) roundTrip(ctx context.Context, req *wire.Request) (*respFrame, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	c.attempts.Add(1)
	s := c.slots[c.next.Add(1)%uint64(len(c.slots))]
	cn, err := s.get(c)
	if err != nil {
		c.transportErrors.Add(1)
		return nil, err
	}
	req.ID = c.ids.Add(1)
	ch := chanPool.Get().(chan *respFrame)
	if err := cn.send(req, ch); err != nil {
		c.transportErrors.Add(1)
		s.retire(cn)
		return nil, err
	}
	select {
	case rf, ok := <-ch:
		if !ok {
			c.transportErrors.Add(1)
			s.retire(cn)
			return nil, cn.failure()
		}
		chanPool.Put(ch)
		return rf, nil
	case <-ctx.Done():
		cn.forget(req.ID)
		return nil, ctx.Err()
	}
}

// get returns the slot's live connection, dialing if needed.
func (s *slot) get(c *Client) (*conn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.c != nil && !s.c.broken() {
		return s.c, nil
	}
	nc, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("accclient: %w", err)
	}
	s.c = newConn(nc)
	return s.c, nil
}

// retire drops cn from the slot so the next request redials.
func (s *slot) retire(cn *conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.c == cn {
		s.c = nil
	}
	cn.shutdown(nil)
}

// conn is one pooled connection with a demultiplexing reader: responses
// arrive in completion order and are routed to waiters by request id.
// Outgoing frames go through a BatchWriter, so pipelined senders coalesce
// into vectored writes.
type conn struct {
	nc net.Conn
	bw *wire.BatchWriter

	mu      sync.Mutex
	pending map[uint64]chan *respFrame
	err     error
}

func newConn(nc net.Conn) *conn {
	cn := &conn{nc: nc, bw: wire.NewBatchWriter(nc), pending: make(map[uint64]chan *respFrame)}
	go cn.readLoop()
	return cn
}

func (cn *conn) readLoop() {
	for {
		rf := respPool.Get().(*respFrame)
		payload, err := wire.ReadFrame(cn.nc, &rf.buf)
		if err == nil {
			err = wire.DecodeResponse(payload, &rf.resp)
		}
		if err != nil {
			respPool.Put(rf)
			cn.shutdown(fmt.Errorf("accclient: connection lost: %w", err))
			return
		}
		cn.mu.Lock()
		ch := cn.pending[rf.resp.ID]
		delete(cn.pending, rf.resp.ID)
		cn.mu.Unlock()
		if ch != nil {
			ch <- rf
		} else {
			respPool.Put(rf) // waiter gave up (ctx); drop the late response
		}
	}
}

// send registers the request id and enqueues the encoded frame. A write
// failure surfaces asynchronously: the read loop notices the broken
// connection and fails every pending waiter.
func (cn *conn) send(req *wire.Request, ch chan *respFrame) error {
	cn.mu.Lock()
	if cn.err != nil {
		err := cn.err
		cn.mu.Unlock()
		return err
	}
	cn.pending[req.ID] = ch
	cn.mu.Unlock()

	buf := wire.GetBuffer()
	b, err := wire.AppendRequest((*buf)[:0], req)
	if err != nil {
		wire.PutBuffer(buf)
		cn.forget(req.ID)
		return fmt.Errorf("accclient: encode: %w", err)
	}
	*buf = b
	if err := cn.bw.Enqueue(buf); err != nil {
		cn.forget(req.ID)
		return fmt.Errorf("accclient: write: %w", err)
	}
	return nil
}

// forget abandons a pending request (ctx cancellation): a late response is
// dropped by the read loop.
func (cn *conn) forget(id uint64) {
	cn.mu.Lock()
	delete(cn.pending, id)
	cn.mu.Unlock()
}

// shutdown breaks the connection and fails every pending waiter by closing
// its channel. The socket closes before the batch writer so a writer stuck
// in a blocked write errors out instead of stalling the teardown.
func (cn *conn) shutdown(cause error) {
	cn.mu.Lock()
	if cn.err == nil {
		if cause == nil {
			cause = errors.New("accclient: connection retired")
		}
		cn.err = cause
	}
	pending := cn.pending
	cn.pending = make(map[uint64]chan *respFrame)
	cn.mu.Unlock()
	cn.nc.Close()
	cn.bw.Close()
	for _, ch := range pending {
		close(ch)
	}
}

func (cn *conn) broken() bool {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.err != nil
}

func (cn *conn) failure() error {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	if cn.err != nil {
		return cn.err
	}
	return errors.New("accclient: connection lost")
}
