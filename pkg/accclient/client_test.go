package accclient

import (
	"context"
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"accdb/internal/core"
	"accdb/internal/server/wire"
)

// fakeServer speaks the wire protocol with a scripted per-request handler,
// so client behavior (retry policy, status mapping, result decoding) is
// testable without an engine.
type fakeServer struct {
	ln   net.Listener
	runs atomic.Int64 // OpRun frames seen
}

func newFakeServer(t *testing.T, handle func(n int64, req *wire.Request) *wire.Response) *fakeServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := &fakeServer{ln: ln}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				var wmu sync.Mutex
				for {
					req, err := wire.ReadRequest(c)
					if err != nil {
						return
					}
					// Answer out of line so a stalled handler doesn't block
					// later pipelined requests on the same connection.
					go func() {
						var resp *wire.Response
						if req.Op == wire.OpPing {
							resp = &wire.Response{ID: req.ID, Status: wire.StatusOK}
						} else {
							resp = handle(fs.runs.Add(1), req)
							resp.ID = req.ID
						}
						wmu.Lock()
						defer wmu.Unlock()
						wire.WriteResponse(c, resp) //nolint:errcheck
					}()
				}
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return fs
}

type echoArgs struct {
	In  int64
	Out int64
}

// TestRetriesDeadlockVictimExactlyOnce pins the default policy: a deadlock
// outcome is retried exactly once (the paper's recurrence rule applied at
// the client), and the second attempt's success is the caller's result.
func TestRetriesDeadlockVictimExactlyOnce(t *testing.T) {
	fs := newFakeServer(t, func(n int64, req *wire.Request) *wire.Response {
		if n == 1 {
			return &wire.Response{Status: wire.StatusDeadlock, Msg: []byte("victim")}
		}
		return &wire.Response{Status: wire.StatusOK, Result: []byte(`{"In":1,"Out":99}`)}
	})
	cli, err := Dial(fs.ln.Addr().String(), WithPoolSize(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	args := &echoArgs{In: 1}
	if err := cli.Run(context.Background(), "echo", args); err != nil {
		t.Fatalf("run after retry: %v", err)
	}
	if args.Out != 99 {
		t.Fatalf("result not decoded: %+v", args)
	}
	if got := fs.runs.Load(); got != 2 {
		t.Fatalf("server saw %d attempts, want 2 (one retry)", got)
	}
	if st := cli.Stats(); st.Retries != 1 {
		t.Fatalf("client retries = %d, want exactly 1", st.Retries)
	}
}

// TestRetryBudgetExhausted: with the default policy (one retry), a deadlock
// that recurs surfaces as ErrDeadlockVictim after exactly two attempts.
func TestRetryBudgetExhausted(t *testing.T) {
	fs := newFakeServer(t, func(int64, *wire.Request) *wire.Response {
		return &wire.Response{Status: wire.StatusDeadlock, Msg: []byte("victim again")}
	})
	cli, err := Dial(fs.ln.Addr().String(), WithPoolSize(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	err = cli.Run(context.Background(), "echo", &echoArgs{})
	if !errors.Is(err, core.ErrDeadlockVictim) {
		t.Fatalf("want ErrDeadlockVictim across the wire, got %v", err)
	}
	if !core.Retryable(err) {
		t.Fatal("a surfaced deadlock must still classify retryable for the caller")
	}
	if got := fs.runs.Load(); got != 2 {
		t.Fatalf("server saw %d attempts, want 2", got)
	}
}

// TestNoRetryOnFinalOutcomes: aborted and compensated outcomes are final —
// one attempt, error taxonomy reconstructed, compensated result decoded.
func TestNoRetryOnFinalOutcomes(t *testing.T) {
	fs := newFakeServer(t, func(n int64, req *wire.Request) *wire.Response {
		switch string(req.Name) {
		case "aborted":
			return &wire.Response{Status: wire.StatusAborted, Msg: []byte("user said no")}
		default:
			return &wire.Response{
				Status: wire.StatusCompensated, Msg: []byte("rolled back"),
				Result: []byte(`{"In":7,"Out":41}`),
			}
		}
	})
	cli, err := Dial(fs.ln.Addr().String(), WithPoolSize(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	err = cli.Run(context.Background(), "aborted", &echoArgs{})
	if !errors.Is(err, core.ErrAborted) || core.IsCompensated(err) {
		t.Fatalf("want plain abort, got %v", err)
	}

	args := &echoArgs{In: 7}
	err = cli.Run(context.Background(), "compensated", args)
	if !core.IsCompensated(err) {
		t.Fatalf("want compensated outcome, got %v", err)
	}
	if args.Out != 41 {
		t.Fatalf("compensated work area must still decode (consumed identifiers): %+v", args)
	}
	if got := fs.runs.Load(); got != 2 {
		t.Fatalf("server saw %d attempts, want 2 (no retries of final outcomes)", got)
	}
}

// TestQueueFullRetries: admission refusals executed nothing, so the client
// retries them under the same policy.
func TestQueueFullRetries(t *testing.T) {
	fs := newFakeServer(t, func(n int64, req *wire.Request) *wire.Response {
		if n == 1 {
			return &wire.Response{Status: wire.StatusQueueFull}
		}
		return &wire.Response{Status: wire.StatusOK}
	})
	cli, err := Dial(fs.ln.Addr().String(), WithPoolSize(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Run(context.Background(), "echo", &echoArgs{}); err != nil {
		t.Fatalf("queue-full then ok should succeed: %v", err)
	}
	if got := fs.runs.Load(); got != 2 {
		t.Fatalf("server saw %d attempts, want 2", got)
	}
}

// TestCustomRetryPolicy: Max=3 means up to four attempts.
func TestCustomRetryPolicy(t *testing.T) {
	fs := newFakeServer(t, func(n int64, req *wire.Request) *wire.Response {
		if n < 4 {
			return &wire.Response{Status: wire.StatusLockTimeout}
		}
		return &wire.Response{Status: wire.StatusOK}
	})
	cli, err := Dial(fs.ln.Addr().String(), WithPoolSize(1),
		WithRetry(RetryPolicy{Max: 3, Backoff: time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Run(context.Background(), "echo", &echoArgs{}); err != nil {
		t.Fatalf("third retry should succeed: %v", err)
	}
	if st := cli.Stats(); st.Retries != 3 {
		t.Fatalf("retries = %d, want 3", st.Retries)
	}
}

// TestContextCancelsResponseWait: a cancelled context abandons the wait
// without killing the connection for other requests.
func TestContextCancelsResponseWait(t *testing.T) {
	never := make(chan struct{})
	fs := newFakeServer(t, func(n int64, req *wire.Request) *wire.Response {
		if string(req.Name) == "stall" {
			<-never
		}
		return &wire.Response{Status: wire.StatusOK}
	})
	defer close(never)
	cli, err := Dial(fs.ln.Addr().String(), WithPoolSize(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := cli.Run(ctx, "stall", &echoArgs{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	// The connection survives for later requests.
	if err := cli.Run(context.Background(), "echo", &echoArgs{}); err != nil {
		t.Fatalf("connection should survive an abandoned wait: %v", err)
	}
}

// TestUnknownTypeMapped: the taxonomy crosses the wire.
func TestUnknownTypeMapped(t *testing.T) {
	fs := newFakeServer(t, func(int64, *wire.Request) *wire.Response {
		return &wire.Response{Status: wire.StatusUnknownType, Msg: []byte(`unknown transaction type "nope"`)}
	})
	cli, err := Dial(fs.ln.Addr().String(), WithPoolSize(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Run(context.Background(), "nope", nil); !errors.Is(err, core.ErrUnknownTxnType) {
		t.Fatalf("want ErrUnknownTxnType, got %v", err)
	}
	if got := fs.runs.Load(); got != 1 {
		t.Fatalf("unknown type must not be retried: %d attempts", got)
	}
}

type fallbackArgs struct {
	In  int64
	Out int64
}

// TestBinaryFallbackToJSON: a client holding a codec the server lacks (a
// mixed-version deployment) gets StatusBadRequest for the binary format and
// must transparently resend the request as JSON.
func TestBinaryFallbackToJSON(t *testing.T) {
	wire.RegisterArgCodec(&wire.ArgCodec{
		Name:  "fallback_echo",
		New:   func() any { return &fallbackArgs{} },
		Reset: func(v any) { *v.(*fallbackArgs) = fallbackArgs{} },
		Encode: func(dst []byte, v any) []byte {
			a := v.(*fallbackArgs)
			dst = binary.BigEndian.AppendUint64(dst, uint64(a.In))
			return binary.BigEndian.AppendUint64(dst, uint64(a.Out))
		},
		Decode: func(data []byte, v any) error {
			if len(data) != 16 {
				return errors.New("bad length")
			}
			a := v.(*fallbackArgs)
			a.In = int64(binary.BigEndian.Uint64(data))
			a.Out = int64(binary.BigEndian.Uint64(data[8:]))
			return nil
		},
	})
	var sawBinary, sawJSON atomic.Int64
	fs := newFakeServer(t, func(n int64, req *wire.Request) *wire.Response {
		if req.Fmt == wire.FmtBinary {
			// An older server: no codec for this type.
			sawBinary.Add(1)
			return &wire.Response{Status: wire.StatusBadRequest, Msg: []byte(`no binary codec registered for "fallback_echo"`)}
		}
		sawJSON.Add(1)
		return &wire.Response{Status: wire.StatusOK, Fmt: wire.FmtJSON, Result: []byte(`{"In":5,"Out":50}`)}
	})
	cli, err := Dial(fs.ln.Addr().String(), WithPoolSize(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	args := &fallbackArgs{In: 5}
	if err := cli.Run(context.Background(), "fallback_echo", args); err != nil {
		t.Fatalf("binary-refusing server must be retried in JSON: %v", err)
	}
	if args.Out != 50 {
		t.Fatalf("JSON fallback result not decoded: %+v", args)
	}
	if sawBinary.Load() != 1 || sawJSON.Load() != 1 {
		t.Fatalf("want one binary then one JSON attempt, got binary=%d json=%d", sawBinary.Load(), sawJSON.Load())
	}
}

// TestTransportErrorNotRetried: a broken connection surfaces immediately —
// the attempt's fate is unknown, so a blind client-side retry could
// double-execute a non-idempotent transaction.
func TestTransportErrorNotRetried(t *testing.T) {
	fs := newFakeServer(t, func(int64, *wire.Request) *wire.Response {
		return &wire.Response{Status: wire.StatusOK}
	})
	cli, err := Dial(fs.ln.Addr().String(), WithPoolSize(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	fs.ln.Close()
	// Kill the live connection by provoking a read error: close the
	// server-side listener is not enough (the accepted conn lives), so
	// write to a deliberately broken connection state instead — shut the
	// pool's conn down directly.
	cli.slots[0].mu.Lock()
	cn := cli.slots[0].c
	cli.slots[0].mu.Unlock()
	cn.nc.Close()

	err = cli.Run(context.Background(), "echo", &echoArgs{})
	if err == nil {
		t.Fatal("want a transport error after the pool's conn died with the listener gone")
	}
	if st := cli.Stats(); st.Retries != 0 {
		t.Fatalf("transport failures must not be retried, saw %d retries", st.Retries)
	}
}
