package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	"accdb/internal/metrics"
)

// AnatomyConfig configures an Anatomy.
type AnatomyConfig struct {
	// SlowThreshold marks spans at or above this end-to-end latency as slow:
	// they are counted and, when SlowWriter is set, dumped as one JSONL
	// object each. 0 disables the slow path entirely.
	SlowThreshold time.Duration
	// SlowWriter receives the JSONL dump of slow spans. The Anatomy does not
	// close it.
	SlowWriter io.Writer
	// Tracer, when set, receives one KindTxnSpan breakdown event per
	// finished span.
	Tracer *Tracer
	// RingSize is the flight-recorder capacity (default 256).
	RingSize int
}

// defaultRingSize is the flight-recorder capacity when the config leaves it 0.
const defaultRingSize = 256

// SpanRecord is a finished span as retained by the flight recorder: the
// identity, the stage breakdown, and the bounded event history.
type SpanRecord struct {
	Trace   uint64
	Txn     uint64
	Type    string
	Status  string
	When    time.Time // wall-clock span start
	Total   int64     // end-to-end nanoseconds
	Stages  [NumSpanStages]int64
	Events  []SpanEvent
	Dropped uint32
}

// Anatomy is the request-scoped latency-anatomy collector: it pools Spans,
// folds finished spans into per-stage log-bucketed histograms, keeps a
// fixed-size flight-recorder ring of recent spans, and dumps transactions
// exceeding the slow threshold as JSONL. A nil *Anatomy is a valid,
// permanently disabled collector — Start returns a nil *Span and every Span
// method tolerates the nil receiver, so the disabled hot path costs only
// nil checks and zero allocations.
type Anatomy struct {
	cfg  AnatomyConfig
	pool sync.Pool

	mu       sync.Mutex
	stage    [NumSpanStages]metrics.Histogram
	total    metrics.Histogram
	finished uint64
	slowN    uint64
	ring     []SpanRecord
	next     int
	count    int // ring entries populated, ≤ len(ring)
	slowBuf  []byte
	extraBuf []byte
	slowErrs uint64
}

// NewAnatomy creates an anatomy collector.
func NewAnatomy(cfg AnatomyConfig) *Anatomy {
	if cfg.RingSize <= 0 {
		cfg.RingSize = defaultRingSize
	}
	a := &Anatomy{cfg: cfg, ring: make([]SpanRecord, cfg.RingSize)}
	a.pool.New = func() any { return &Span{} }
	return a
}

// Start begins a span for a request first seen at the given instant (zero
// means now) carrying the given wire trace ID. On a nil Anatomy it returns
// nil, which every Span method accepts.
func (a *Anatomy) Start(traceID uint64, at time.Time) *Span {
	if a == nil {
		return nil
	}
	sp := a.pool.Get().(*Span)
	sp.reset(a, traceID, at)
	return sp
}

// finish folds a finished span into the histograms, the flight-recorder
// ring, and — when slow — the JSONL dump, then recycles it.
func (a *Anatomy) finish(sp *Span) {
	slow := a.cfg.SlowThreshold > 0 && sp.total >= int64(a.cfg.SlowThreshold)
	a.mu.Lock()
	for i := range sp.durs {
		if sp.durs[i] > 0 {
			a.stage[i].Observe(time.Duration(sp.durs[i]))
		}
	}
	a.total.Observe(time.Duration(sp.total))
	a.finished++
	rec := &a.ring[a.next]
	a.next = (a.next + 1) % len(a.ring)
	if a.count < len(a.ring) {
		a.count++
	}
	rec.Trace = sp.TraceID
	rec.Txn = sp.TxnID
	rec.Type = sp.Type
	rec.Status = sp.Status
	rec.When = sp.start
	rec.Total = sp.total
	rec.Stages = sp.durs
	rec.Events = append(rec.Events[:0], sp.events...)
	rec.Dropped = sp.dropped
	if slow {
		a.slowN++
		if a.cfg.SlowWriter != nil {
			a.slowBuf = appendSpanJSON(a.slowBuf[:0], rec)
			if _, err := a.cfg.SlowWriter.Write(a.slowBuf); err != nil {
				a.slowErrs++
			}
		}
	}
	var ev Event
	if a.cfg.Tracer != nil {
		a.extraBuf = appendStagePairs(a.extraBuf[:0], &sp.durs)
		ev = Event{
			Kind: KindTxnSpan, Txn: sp.TxnID, Trace: sp.TraceID,
			Shard: -1, Step: -1, Dur: sp.total,
			Item: sp.Type, Mode: sp.Status, Extra: string(a.extraBuf),
		}
	}
	a.mu.Unlock()
	if ev.Kind == KindTxnSpan {
		a.cfg.Tracer.Emit(ev)
	}
	a.pool.Put(sp)
}

// appendStagePairs renders the non-zero stage durations as "stage=ns"
// pairs joined by ';' — the KindTxnSpan Extra payload.
func appendStagePairs(dst []byte, durs *[NumSpanStages]int64) []byte {
	for i, d := range durs {
		if d == 0 {
			continue
		}
		if len(dst) > 0 {
			dst = append(dst, ';')
		}
		dst = append(dst, SpanStage(i).String()...)
		dst = append(dst, '=')
		dst = strconv.AppendInt(dst, d, 10)
	}
	return dst
}

// appendSpanJSON renders one flight-recorder record as a JSONL line.
func appendSpanJSON(dst []byte, rec *SpanRecord) []byte {
	dst = append(dst, `{"when":`...)
	dst = strconv.AppendQuote(dst, rec.When.Format(time.RFC3339Nano))
	dst = append(dst, `,"trace":`...)
	dst = strconv.AppendUint(dst, rec.Trace, 10)
	dst = append(dst, `,"txn":`...)
	dst = strconv.AppendUint(dst, rec.Txn, 10)
	dst = append(dst, `,"type":`...)
	dst = strconv.AppendQuote(dst, rec.Type)
	dst = append(dst, `,"status":`...)
	dst = strconv.AppendQuote(dst, rec.Status)
	dst = append(dst, `,"total":`...)
	dst = strconv.AppendInt(dst, rec.Total, 10)
	dst = append(dst, `,"stages":{`...)
	first := true
	for i, d := range rec.Stages {
		if d == 0 {
			continue
		}
		if !first {
			dst = append(dst, ',')
		}
		first = false
		dst = strconv.AppendQuote(dst, SpanStage(i).String())
		dst = append(dst, ':')
		dst = strconv.AppendInt(dst, d, 10)
	}
	dst = append(dst, `},"events":[`...)
	for i := range rec.Events {
		e := &rec.Events[i]
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, `{"ts":`...)
		dst = strconv.AppendInt(dst, e.TS, 10)
		dst = append(dst, `,"kind":`...)
		dst = strconv.AppendQuote(dst, e.Kind.String())
		if e.Mode != "" {
			dst = append(dst, `,"mode":`...)
			dst = strconv.AppendQuote(dst, e.Mode)
		}
		if e.Item != "" {
			dst = append(dst, `,"item":`...)
			dst = strconv.AppendQuote(dst, e.Item)
		}
		if e.Dur != 0 {
			dst = append(dst, `,"dur":`...)
			dst = strconv.AppendInt(dst, e.Dur, 10)
		}
		dst = append(dst, '}')
	}
	dst = append(dst, ']')
	if rec.Dropped > 0 {
		dst = append(dst, `,"dropped":`...)
		dst = strconv.AppendUint(dst, uint64(rec.Dropped), 10)
	}
	return append(dst, "}\n"...)
}

// Finished reports the number of spans folded in.
func (a *Anatomy) Finished() uint64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.finished
}

// SlowCount reports spans at or above the slow threshold.
func (a *Anatomy) SlowCount() uint64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.slowN
}

// Recent returns copies of the flight-recorder entries, most recent last.
func (a *Anatomy) Recent() []SpanRecord {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]SpanRecord, 0, a.count)
	for i := 0; i < a.count; i++ {
		idx := (a.next - a.count + i + len(a.ring)) % len(a.ring)
		rec := a.ring[idx]
		rec.Events = append([]SpanEvent(nil), rec.Events...)
		out = append(out, rec)
	}
	return out
}

// WriteMetrics renders the per-stage histograms as Prometheus text series:
// accdb_txn_stage_seconds{stage,quantile} summaries plus _count and _sum,
// and the accdb_txn_anatomy_* counters.
func (a *Anatomy) WriteMetrics(w io.Writer) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	fmt.Fprintf(w, "# HELP accdb_txn_stage_seconds Per-stage transaction latency anatomy.\n")
	fmt.Fprintf(w, "# TYPE accdb_txn_stage_seconds summary\n")
	emit := func(name string, h *metrics.Histogram) {
		if h.Count() == 0 {
			return
		}
		for _, q := range []float64{0.5, 0.9, 0.99} {
			fmt.Fprintf(w, "accdb_txn_stage_seconds{stage=%q,quantile=\"%g\"} %.9f\n",
				name, q, h.Quantile(q).Seconds())
		}
		fmt.Fprintf(w, "accdb_txn_stage_seconds_count{stage=%q} %d\n", name, h.Count())
		fmt.Fprintf(w, "accdb_txn_stage_seconds_sum{stage=%q} %.9f\n",
			name, h.Sum().Seconds())
	}
	for i := range a.stage {
		emit(SpanStage(i).String(), &a.stage[i])
	}
	emit("total", &a.total)
	fmt.Fprintf(w, "# HELP accdb_txn_anatomy_finished_total Spans folded into the anatomy.\n")
	fmt.Fprintf(w, "# TYPE accdb_txn_anatomy_finished_total counter\naccdb_txn_anatomy_finished_total %d\n", a.finished)
	fmt.Fprintf(w, "# HELP accdb_txn_anatomy_slow_total Spans at or above the slow threshold.\n")
	fmt.Fprintf(w, "# TYPE accdb_txn_anatomy_slow_total counter\naccdb_txn_anatomy_slow_total %d\n", a.slowN)
}

// WriteText renders the live anatomy for /debug/anatomy: per-stage
// count/p50/p90/p99/max, the end-to-end row, and the slowest recent spans.
func (a *Anatomy) WriteText(w io.Writer) {
	if a == nil {
		fmt.Fprintln(w, "anatomy disabled")
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	fmt.Fprintf(w, "latency anatomy: %d spans, %d slow (threshold %v)\n\n",
		a.finished, a.slowN, a.cfg.SlowThreshold)
	fmt.Fprintf(w, "%-14s %10s %12s %12s %12s %12s\n", "stage", "count", "p50", "p90", "p99", "max")
	row := func(name string, h *metrics.Histogram) {
		if h.Count() == 0 {
			return
		}
		fmt.Fprintf(w, "%-14s %10d %12v %12v %12v %12v\n", name, h.Count(),
			h.Quantile(0.5).Round(time.Microsecond), h.Quantile(0.9).Round(time.Microsecond),
			h.Quantile(0.99).Round(time.Microsecond), h.Max().Round(time.Microsecond))
	}
	for i := range a.stage {
		row(SpanStage(i).String(), &a.stage[i])
	}
	row("total", &a.total)

	type slowRec struct {
		idx   int
		total int64
	}
	slow := make([]slowRec, 0, a.count)
	for i := 0; i < a.count; i++ {
		idx := (a.next - a.count + i + len(a.ring)) % len(a.ring)
		slow = append(slow, slowRec{idx, a.ring[idx].Total})
	}
	sort.Slice(slow, func(i, j int) bool { return slow[i].total > slow[j].total })
	if len(slow) > 10 {
		slow = slow[:10]
	}
	if len(slow) > 0 {
		fmt.Fprintf(w, "\nslowest recent spans:\n")
		for _, s := range slow {
			rec := &a.ring[s.idx]
			top, topDur := "", int64(0)
			for i, d := range rec.Stages {
				if d > topDur {
					top, topDur = SpanStage(i).String(), d
				}
			}
			fmt.Fprintf(w, "  trace=%d txn=%d type=%-14s status=%-12s total=%-12v top=%s (%v)\n",
				rec.Trace, rec.Txn, rec.Type, rec.Status,
				time.Duration(rec.Total).Round(time.Microsecond),
				top, time.Duration(topDur).Round(time.Microsecond))
		}
	}
}
