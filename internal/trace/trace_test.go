package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestMemorySinkRoundTrip(t *testing.T) {
	sink := NewMemorySink(1024)
	tr := New(sink)
	ev := Ev(KindLockAcquire, 7)
	ev.Mode, ev.Item, ev.Shard = "X", "stock[row/01]", 3
	tr.Emit(ev)
	tr.Flush()
	got := sink.Events()
	if len(got) != 1 {
		t.Fatalf("events = %d, want 1", len(got))
	}
	if got[0].Kind != KindLockAcquire || got[0].Txn != 7 || got[0].Mode != "X" ||
		got[0].Item != "stock[row/01]" || got[0].Shard != 3 || got[0].Step != -1 {
		t.Fatalf("event = %+v", got[0])
	}
	if got[0].TS == 0 {
		t.Fatal("TS not stamped")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMemorySinkRingEviction(t *testing.T) {
	sink := NewMemorySink(4)
	for i := 0; i < 10; i++ {
		ev := Ev(KindWALAppend, uint64(i))
		ev.TS = int64(i + 1)
		if err := sink.Write([]Event{ev}); err != nil {
			t.Fatal(err)
		}
	}
	got := sink.Events()
	if len(got) != 4 {
		t.Fatalf("retained = %d, want 4", len(got))
	}
	for i, ev := range got {
		if want := uint64(6 + i); ev.Txn != want {
			t.Fatalf("events[%d].Txn = %d, want %d (oldest-first)", i, ev.Txn, want)
		}
	}
	if sink.Total() != 10 {
		t.Fatalf("Total = %d", sink.Total())
	}
}

func TestConcurrentEmit(t *testing.T) {
	sink := NewMemorySink(1 << 16)
	tr := New(sink)
	const goroutines, per = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ev := Ev(KindLockAcquire, uint64(g*per+i))
				ev.Mode = "S"
				tr.Emit(ev)
			}
		}(g)
	}
	wg.Wait()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Emitted(); got != goroutines*per {
		t.Fatalf("Emitted = %d, want %d", got, goroutines*per)
	}
	if got := sink.Total() + tr.Drops(); got != goroutines*per {
		t.Fatalf("delivered(%d) + dropped(%d) = %d, want %d",
			sink.Total(), tr.Drops(), got, goroutines*per)
	}
}

// blockingSink stalls every write until released, forcing the handoff queue
// to fill so backpressure drops become observable.
type blockingSink struct {
	release chan struct{}
	written chan int
}

func (s *blockingSink) Write(batch []Event) error {
	<-s.release
	s.written <- len(batch)
	return nil
}

func (s *blockingSink) Close() error { return nil }

func TestBackpressureDropsAreCounted(t *testing.T) {
	sink := &blockingSink{
		release: make(chan struct{}),
		written: make(chan int, 1<<20),
	}
	tr := New(sink)
	// Saturate: one batch stalls in the sink, queueCap batches fill the
	// queue, the rest must be dropped. Spread across txn IDs to fill every
	// stripe.
	const total = (queueCap + 64) * stripeCap * 2
	for i := 0; i < total; i++ {
		tr.Emit(Ev(KindWALAppend, uint64(i)))
	}
	if tr.Drops() == 0 {
		t.Fatal("no drops recorded under a stalled sink")
	}
	close(sink.release)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	delivered := 0
	close(sink.written)
	for n := range sink.written {
		delivered += n
	}
	if got := uint64(delivered) + tr.Drops(); got != tr.Emitted() {
		t.Fatalf("delivered(%d) + dropped(%d) = %d, want emitted %d",
			delivered, tr.Drops(), got, tr.Emitted())
	}
}

func TestEmitAfterCloseDrops(t *testing.T) {
	tr := New(NewMemorySink(16))
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	tr.Emit(Ev(KindTxnBegin, 1))
	if tr.Drops() != 1 {
		t.Fatalf("Drops = %d, want 1", tr.Drops())
	}
}

// errSink fails every write so sink-error accounting is observable.
type errSink struct{}

func (errSink) Write([]Event) error { return errors.New("sink: boom") }
func (errSink) Close() error        { return nil }

func TestSinkErrorsCounted(t *testing.T) {
	tr := New(errSink{})
	tr.Emit(Ev(KindTxnBegin, 1))
	tr.Flush()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.SinkErrors() == 0 {
		t.Fatal("sink error not counted")
	}
}

func TestJSONLSinkOutput(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	tr := New(sink)
	ev := Ev(KindLockGrant, 42)
	ev.Mode, ev.Item, ev.Shard, ev.Dur, ev.Extra = "A", `district[row/"k"]`, 5, 1500, "assert:1"
	tr.Emit(ev)
	ev2 := Ev(KindStepBegin, 42)
	ev2.Step = 2
	tr.Emit(ev2)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	scan := bufio.NewScanner(&buf)
	var lines []map[string]any
	for scan.Scan() {
		var m map[string]any
		if err := json.Unmarshal(scan.Bytes(), &m); err != nil {
			t.Fatalf("line %q: %v", scan.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	if lines[0]["kind"] != "lock.grant" || lines[0]["mode"] != "A" ||
		lines[0]["item"] != `district[row/"k"]` || lines[0]["dur"] != float64(1500) {
		t.Fatalf("line 0 = %v", lines[0])
	}
	if _, hasStep := lines[0]["step"]; hasStep {
		t.Fatal("non-step event serialized a step field")
	}
	if lines[1]["step"] != float64(2) {
		t.Fatalf("line 1 = %v", lines[1])
	}
}

// goldenEvents is a fixed scenario covering instants, slices, and every
// escape-worthy tag; timestamps are pinned so the output is deterministic.
func goldenEvents() []Event {
	mk := func(kind Kind, txn uint64, ts, dur int64) Event {
		ev := Ev(kind, txn)
		ev.TS, ev.Dur = ts, dur
		return ev
	}
	begin := mk(KindTxnBegin, 1, 1_000_000, 0)
	begin.Item = "new_order"
	step := mk(KindStepBegin, 1, 2_000_000, 0)
	step.Step = 0
	acq := mk(KindLockAcquire, 1, 3_000_000, 0)
	acq.Mode, acq.Item, acq.Shard = "IX", "stock", 2
	wait := mk(KindLockWait, 2, 4_000_000, 0)
	wait.Mode, wait.Item, wait.Shard = "X", `stock[row/3132]`, 2
	grant := mk(KindLockGrant, 2, 9_000_000, 5_000_000)
	grant.Mode, grant.Item, grant.Shard = "X", `stock[row/3132]`, 2
	victim := mk(KindDeadlockVictim, 3, 9_500_000, 0)
	victim.Extra = "self"
	force := mk(KindWALForce, 1, 10_000_000, 100_000)
	stepEnd := mk(KindStepEnd, 1, 11_000_000, 9_000_000)
	stepEnd.Step = 0
	commit := mk(KindTxnCommit, 1, 12_000_000, 11_000_000)
	return []Event{begin, step, acq, wait, grant, victim, force, stepEnd, commit}
}

func TestChromeSinkGolden(t *testing.T) {
	var buf bytes.Buffer
	sink := NewChromeSink(&buf)
	if err := sink.Write(goldenEvents()); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	// The output must be valid JSON of the trace_event array form.
	var parsed []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v", err)
	}
	if len(parsed) != len(goldenEvents()) {
		t.Fatalf("parsed %d trace events, want %d", len(parsed), len(goldenEvents()))
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	want, err := os.ReadFile(golden)
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if werr := os.WriteFile(golden, buf.Bytes(), 0o644); werr != nil {
			t.Fatal(werr)
		}
		t.Skip("golden updated")
	}
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(bytes.TrimSpace(want), bytes.TrimSpace(buf.Bytes())) {
		t.Fatalf("chrome trace diverged from golden file\n got: %s\nwant: %s", buf.Bytes(), want)
	}
}

func TestChromeSinkEmpty(t *testing.T) {
	var buf bytes.Buffer
	sink := NewChromeSink(&buf)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	var parsed []any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil || len(parsed) != 0 {
		t.Fatalf("empty chrome trace = %q (err %v)", buf.Bytes(), err)
	}
}

func TestFlushIsPromptUnderLoad(t *testing.T) {
	sink := NewMemorySink(1 << 12)
	tr := New(sink)
	for i := 0; i < 100; i++ {
		tr.Emit(Ev(KindTxnBegin, uint64(i)))
	}
	done := make(chan struct{})
	go func() { tr.Flush(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Flush did not complete")
	}
	if sink.Total() != 100 {
		t.Fatalf("Total = %d after Flush, want 100", sink.Total())
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}
