package trace

import (
	"bufio"
	"io"
	"strconv"
	"sync"
)

// ChromeSink encodes events in the Chrome trace_event JSON array format, so
// a run can be opened directly in chrome://tracing or Perfetto. Each
// transaction maps to a track (tid = txn id); events with a duration render
// as complete ("ph":"X") slices ending at the event's timestamp, the rest as
// instants ("ph":"i").
//
// The format reference is the "Trace Event Format" document; only the small
// subset below is emitted.
type ChromeSink struct {
	w     *bufio.Writer
	c     io.Closer
	mu    sync.Mutex
	first bool
}

// NewChromeSink creates a Chrome trace sink over w. If w is an io.Closer it
// is closed by Close.
func NewChromeSink(w io.Writer) *ChromeSink {
	s := &ChromeSink{w: bufio.NewWriterSize(w, 1<<16), first: true}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Write implements Sink.
func (s *ChromeSink) Write(batch []Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var buf []byte
	for _, ev := range batch {
		buf = buf[:0]
		if s.first {
			buf = append(buf, "[\n"...)
			s.first = false
		} else {
			buf = append(buf, ",\n"...)
		}
		buf = appendChromeJSON(buf, ev)
		if _, err := s.w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// Close terminates the JSON array and releases the writer.
func (s *ChromeSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.first {
		_, err = s.w.WriteString("[]\n")
	} else {
		_, err = s.w.WriteString("\n]\n")
	}
	if ferr := s.w.Flush(); err == nil {
		err = ferr
	}
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// appendChromeJSON renders one trace_event object. Timestamps are in
// microseconds per the format; durations likewise. A duration event's TS is
// its end, so the slice start is TS-Dur.
func appendChromeJSON(dst []byte, ev Event) []byte {
	durUS := ev.Dur / 1000
	tsUS := ev.TS / 1000
	dst = append(dst, `{"name":`...)
	dst = strconv.AppendQuote(dst, ev.Kind.String())
	dst = append(dst, `,"cat":`...)
	dst = strconv.AppendQuote(dst, chromeCategory(ev.Kind))
	if durationKind(ev.Kind) && durUS > 0 {
		dst = append(dst, `,"ph":"X","ts":`...)
		dst = strconv.AppendInt(dst, tsUS-durUS, 10)
		dst = append(dst, `,"dur":`...)
		dst = strconv.AppendInt(dst, durUS, 10)
	} else {
		dst = append(dst, `,"ph":"i","s":"t","ts":`...)
		dst = strconv.AppendInt(dst, tsUS, 10)
	}
	dst = append(dst, `,"pid":1,"tid":`...)
	dst = strconv.AppendUint(dst, ev.Txn, 10)
	dst = append(dst, `,"args":{`...)
	argFirst := true
	arg := func(k, v string) {
		if !argFirst {
			dst = append(dst, ',')
		}
		argFirst = false
		dst = strconv.AppendQuote(dst, k)
		dst = append(dst, ':')
		dst = strconv.AppendQuote(dst, v)
	}
	if ev.Trace != 0 {
		arg("trace", strconv.FormatUint(ev.Trace, 10))
	}
	if ev.Mode != "" {
		arg("mode", ev.Mode)
	}
	if ev.Item != "" {
		arg("item", ev.Item)
	}
	if ev.Shard >= 0 {
		arg("shard", strconv.Itoa(int(ev.Shard)))
	}
	if ev.Step >= 0 {
		arg("step", strconv.Itoa(int(ev.Step)))
	}
	if ev.Extra != "" {
		arg("extra", ev.Extra)
	}
	return append(dst, "}}"...)
}

// durationKind reports whether the kind's Dur field is a duration (vs a
// size) and should render as a slice.
func durationKind(k Kind) bool {
	switch k {
	case KindTxnCommit, KindStepEnd, KindCompDone, KindLockGrant,
		KindLockTimeout, KindLockAbort, KindWALForce, KindRPCEnd, KindTxnSpan:
		return true
	}
	return false
}

// chromeCategory groups kinds into tracks-friendly categories.
func chromeCategory(k Kind) string {
	switch k {
	case KindTxnBegin, KindTxnCommit, KindTxnAbort, KindTxnSpan:
		return "txn"
	case KindStepBegin, KindStepEnd, KindStepRetry:
		return "step"
	case KindAssertCheck:
		return "assert"
	case KindCompBegin, KindCompDone:
		return "comp"
	case KindLockAcquire, KindLockWait, KindLockGrant, KindLockUpgrade,
		KindLockTimeout, KindLockAbort, KindDeadlockVictim:
		return "lock"
	case KindWALAppend, KindWALForce:
		return "wal"
	case KindRPCBegin, KindRPCEnd, KindRPCReject:
		return "rpc"
	}
	return "misc"
}
