package trace

import (
	"bufio"
	"io"
	"strconv"
	"sync"
)

// Sink consumes event batches from the tracer's drainer. Write is called
// from a single goroutine; Close is called once, after the last Write.
// Implementations that also expose read APIs (MemorySink) must synchronize
// internally.
type Sink interface {
	Write(batch []Event) error
	Close() error
}

// MemorySink retains the most recent events in a bounded ring. It backs
// tests and the live debug endpoints.
type MemorySink struct {
	mu     sync.Mutex
	ring   []Event
	next   int
	filled bool
	total  uint64
}

// NewMemorySink creates a ring retaining up to capacity events (minimum 1).
func NewMemorySink(capacity int) *MemorySink {
	if capacity < 1 {
		capacity = 1
	}
	return &MemorySink{ring: make([]Event, capacity)}
}

// Write implements Sink.
func (s *MemorySink) Write(batch []Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ev := range batch {
		s.ring[s.next] = ev
		s.next++
		if s.next == len(s.ring) {
			s.next, s.filled = 0, true
		}
	}
	s.total += uint64(len(batch))
	return nil
}

// Close implements Sink.
func (s *MemorySink) Close() error { return nil }

// Events returns the retained events, oldest first.
func (s *MemorySink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.filled {
		return append([]Event(nil), s.ring[:s.next]...)
	}
	out := make([]Event, 0, len(s.ring))
	out = append(out, s.ring[s.next:]...)
	return append(out, s.ring[:s.next]...)
}

// Total returns the number of events ever written, including ones the ring
// has since evicted.
func (s *MemorySink) Total() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// JSONLSink encodes each event as one JSON object per line. The encoder is
// hand-rolled: the bus must not make the observed system pay encoding/json's
// reflection on every event.
type JSONLSink struct {
	w  *bufio.Writer
	c  io.Closer
	mu sync.Mutex
}

// NewJSONLSink creates a JSONL sink over w. If w is an io.Closer it is
// closed by Close.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{w: bufio.NewWriterSize(w, 1<<16)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Write implements Sink.
func (s *JSONLSink) Write(batch []Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var buf []byte
	for _, ev := range batch {
		buf = appendEventJSON(buf[:0], ev)
		buf = append(buf, '\n')
		if _, err := s.w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// Close implements Sink.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.w.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// appendEventJSON renders ev as a single-line JSON object. Zero-valued
// optional fields are omitted so traces stay compact.
func appendEventJSON(dst []byte, ev Event) []byte {
	dst = append(dst, `{"ts":`...)
	dst = strconv.AppendInt(dst, ev.TS, 10)
	dst = append(dst, `,"kind":`...)
	dst = strconv.AppendQuote(dst, ev.Kind.String())
	if ev.Txn != 0 {
		dst = append(dst, `,"txn":`...)
		dst = strconv.AppendUint(dst, ev.Txn, 10)
	}
	if ev.Trace != 0 {
		dst = append(dst, `,"trace":`...)
		dst = strconv.AppendUint(dst, ev.Trace, 10)
	}
	if ev.Step >= 0 {
		dst = append(dst, `,"step":`...)
		dst = strconv.AppendInt(dst, int64(ev.Step), 10)
	}
	if ev.Shard >= 0 {
		dst = append(dst, `,"shard":`...)
		dst = strconv.AppendInt(dst, int64(ev.Shard), 10)
	}
	if ev.Mode != "" {
		dst = append(dst, `,"mode":`...)
		dst = strconv.AppendQuote(dst, ev.Mode)
	}
	if ev.Item != "" {
		dst = append(dst, `,"item":`...)
		dst = strconv.AppendQuote(dst, ev.Item)
	}
	if ev.Dur != 0 {
		dst = append(dst, `,"dur":`...)
		dst = strconv.AppendInt(dst, ev.Dur, 10)
	}
	if ev.Extra != "" {
		dst = append(dst, `,"extra":`...)
		dst = strconv.AppendQuote(dst, ev.Extra)
	}
	return append(dst, '}')
}
