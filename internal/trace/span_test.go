package trace

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"
	"time"
)

// exerciseSpan drives one span through the full server-shaped lifecycle.
func exerciseSpan(a *Anatomy) {
	sp := a.Start(42, time.Time{})
	sp.Next(StageQueue)
	sp.Next(StageDecode)
	sp.EnterEngine()
	sp.SetTxn(7, "new_order")
	sp.Event(KindTxnBegin, "", "new_order", 0)
	sp.Add(StageLockA, 1000)
	sp.Event(KindLockGrant, "A", "stock[row/1]", 1000)
	sp.Add(StageWALAppend, 500)
	sp.Add(StageGroupCommit, 2000)
	sp.Event(KindTxnCommit, "", "new_order", 0)
	sp.ExitEngine()
	sp.SetStatus("ok")
	sp.Next(StageEncode)
	sp.Finish()
}

// TestSpanAllocFree is the CI allocation guard for the latency-anatomy layer
// (run via -run 'AllocFree'): a disabled anatomy must cost zero allocations,
// and the enabled steady state (pooled spans, retained event capacity,
// reused ring slots) at most two per transaction.
func TestSpanAllocFree(t *testing.T) {
	var off *Anatomy
	disabled := testing.AllocsPerRun(200, func() { exerciseSpan(off) })
	if disabled != 0 {
		t.Errorf("disabled anatomy: %.2f allocs/op, want 0", disabled)
	}

	on := NewAnatomy(AnatomyConfig{RingSize: 8})
	for i := 0; i < 32; i++ {
		exerciseSpan(on) // charge the pool and the ring's event slices
	}
	enabled := testing.AllocsPerRun(200, func() { exerciseSpan(on) })
	if enabled > 2 {
		t.Errorf("enabled anatomy: %.2f allocs/op, want <= 2", enabled)
	}

	tr := New(NewJSONLSink(io.Discard))
	defer tr.Close()
	withTracer := NewAnatomy(AnatomyConfig{RingSize: 8, Tracer: tr})
	for i := 0; i < 32; i++ {
		exerciseSpan(withTracer)
	}
	traced := testing.AllocsPerRun(200, func() { exerciseSpan(withTracer) })
	if traced > 2 {
		t.Errorf("enabled anatomy with tracer: %.2f allocs/op, want <= 2", traced)
	}
}

func TestSpanStagesSumToTotal(t *testing.T) {
	a := NewAnatomy(AnatomyConfig{})
	sp := a.Start(9, time.Time{})
	time.Sleep(2 * time.Millisecond)
	sp.Next(StageQueue)
	time.Sleep(time.Millisecond)
	sp.Next(StageDecode)
	sp.EnterEngine()
	sp.SetTxn(1, "payment")
	time.Sleep(3 * time.Millisecond)
	sp.ExitEngine()
	sp.SetStatus("ok")
	time.Sleep(time.Millisecond)
	sp.Next(StageEncode)
	sp.Finish()

	recent := a.Recent()
	if len(recent) != 1 {
		t.Fatalf("got %d records, want 1", len(recent))
	}
	rec := recent[0]
	var sum int64
	for _, d := range rec.Stages {
		sum += d
	}
	if rec.Total <= 0 {
		t.Fatalf("non-positive total %d", rec.Total)
	}
	diff := rec.Total - sum
	if diff < 0 {
		diff = -diff
	}
	if diff > rec.Total/20 {
		t.Errorf("stage sum %d vs total %d: off by more than 5%%", sum, rec.Total)
	}
	if rec.Stages[StageQueue] < int64(time.Millisecond) {
		t.Errorf("queue stage %v, want >= 2ms elapsed", time.Duration(rec.Stages[StageQueue]))
	}
	if rec.Stages[StageExec] < int64(2*time.Millisecond) {
		t.Errorf("exec stage %v, want >= 3ms engine wall", time.Duration(rec.Stages[StageExec]))
	}
}

// TestSpanExecExcludesInnerStages checks the defining property of StageExec:
// engine wall time minus the lock/WAL/group-commit durations charged via Add.
func TestSpanExecExcludesInnerStages(t *testing.T) {
	a := NewAnatomy(AnatomyConfig{})
	sp := a.Start(1, time.Time{})
	sp.Next(StageQueue)
	sp.EnterEngine()
	start := time.Now()
	time.Sleep(4 * time.Millisecond)
	wall := int64(time.Since(start))
	// Pretend half the engine wall was a lock wait.
	sp.Add(StageLockD, wall/2)
	sp.ExitEngine()
	sp.Finish()

	rec := a.Recent()[0]
	if rec.Stages[StageExec] >= wall {
		t.Errorf("exec %d not reduced below wall %d by inner lock stage", rec.Stages[StageExec], wall)
	}
	if rec.Stages[StageLockD] != wall/2 {
		t.Errorf("lock_d = %d, want %d", rec.Stages[StageLockD], wall/2)
	}
}

func TestAnatomySlowDump(t *testing.T) {
	var buf bytes.Buffer
	a := NewAnatomy(AnatomyConfig{SlowThreshold: time.Nanosecond, SlowWriter: &buf})
	exerciseSpan(a)
	exerciseSpan(a)
	if got := a.SlowCount(); got != 2 {
		t.Fatalf("SlowCount = %d, want 2", got)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2", len(lines))
	}
	for _, line := range lines {
		var rec struct {
			Trace  uint64           `json:"trace"`
			Txn    uint64           `json:"txn"`
			Type   string           `json:"type"`
			Status string           `json:"status"`
			Total  int64            `json:"total"`
			Stages map[string]int64 `json:"stages"`
			Events []struct {
				TS   int64  `json:"ts"`
				Kind string `json:"kind"`
				Mode string `json:"mode"`
				Item string `json:"item"`
			} `json:"events"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("invalid JSONL %q: %v", line, err)
		}
		if rec.Trace != 42 || rec.Txn != 7 || rec.Type != "new_order" || rec.Status != "ok" {
			t.Errorf("identity mangled: %+v", rec)
		}
		// The synthetic Add'ed durations can exceed the span's real wall time,
		// so no sum==total assertion here — the loopback end-to-end test owns
		// that property with genuine timings.
		if rec.Stages["lock_a"] != 1000 || rec.Stages["group_commit"] != 2000 {
			t.Errorf("stages mangled: %v", rec.Stages)
		}
		foundWait := false
		for _, e := range rec.Events {
			if e.Kind == "lock.grant" && e.Mode == "A" && e.Item == "stock[row/1]" {
				foundWait = true
			}
		}
		if !foundWait {
			t.Errorf("lock wait missing from event history: %v", rec.Events)
		}
	}
}

func TestAnatomyTxnSpanEvent(t *testing.T) {
	sink := NewMemorySink(64)
	tr := New(sink)
	a := NewAnatomy(AnatomyConfig{Tracer: tr})
	exerciseSpan(a)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var got *Event
	for _, ev := range sink.Events() {
		if ev.Kind == KindTxnSpan {
			e := ev
			got = &e
		}
	}
	if got == nil {
		t.Fatal("no txn.span event emitted")
	}
	if got.Txn != 7 || got.Trace != 42 || got.Item != "new_order" || got.Mode != "ok" {
		t.Errorf("txn.span identity mangled: %+v", got)
	}
	if !bytes.Contains([]byte(got.Extra), []byte("lock_a=1000")) ||
		!bytes.Contains([]byte(got.Extra), []byte("group_commit=2000")) {
		t.Errorf("txn.span Extra missing stage pairs: %q", got.Extra)
	}
}

func TestAnatomyRingOverwrite(t *testing.T) {
	a := NewAnatomy(AnatomyConfig{RingSize: 4})
	for i := 0; i < 10; i++ {
		sp := a.Start(uint64(100+i), time.Time{})
		sp.Finish()
	}
	recent := a.Recent()
	if len(recent) != 4 {
		t.Fatalf("ring holds %d, want 4", len(recent))
	}
	for i, rec := range recent {
		if want := uint64(106 + i); rec.Trace != want {
			t.Errorf("recent[%d].Trace = %d, want %d", i, rec.Trace, want)
		}
	}
	if a.Finished() != 10 {
		t.Errorf("Finished = %d, want 10", a.Finished())
	}
}

func TestSpanEventOverflow(t *testing.T) {
	a := NewAnatomy(AnatomyConfig{})
	sp := a.Start(1, time.Time{})
	for i := 0; i < spanEventCap+5; i++ {
		sp.Event(KindStepBegin, "", "s", 0)
	}
	sp.Finish()
	rec := a.Recent()[0]
	if len(rec.Events) != spanEventCap {
		t.Errorf("kept %d events, want %d", len(rec.Events), spanEventCap)
	}
	if rec.Dropped != 5 {
		t.Errorf("dropped = %d, want 5", rec.Dropped)
	}
}

func TestAnatomyWriteMetrics(t *testing.T) {
	a := NewAnatomy(AnatomyConfig{})
	exerciseSpan(a)
	var buf bytes.Buffer
	a.WriteMetrics(&buf)
	out := buf.String()
	for _, want := range []string{
		`accdb_txn_stage_seconds{stage="lock_a",quantile="0.5"}`,
		`accdb_txn_stage_seconds_count{stage="total"} 1`,
		"accdb_txn_anatomy_finished_total 1",
	} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
	var text bytes.Buffer
	a.WriteText(&text)
	if !bytes.Contains(text.Bytes(), []byte("group_commit")) {
		t.Errorf("WriteText missing stage table:\n%s", text.String())
	}
}
