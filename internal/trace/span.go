package trace

import "time"

// SpanStage indexes one timed segment of a transaction's end-to-end path.
// The taxonomy follows the request through every hop: admission queue,
// argument decode, the three assertional lock classes plus conventional
// waits (A/D/C as in DESIGN.md §9), step execution, WAL append, the
// group-commit window, result encode, and the batched write-out. Stages are
// disjoint by construction — StageExec is engine wall time minus the inner
// lock/WAL stages — so a span's stage durations sum to its end-to-end
// latency.
type SpanStage uint8

// The stages, in pipeline order.
const (
	StageQueue       SpanStage = iota // frame read → handler goroutine running
	StageDecode                       // argument decode (binary codec or JSON)
	StageLockConv                     // conventional-mode lock waits
	StageLockA                        // assertional (A-mode) lock waits
	StageLockD                        // exposure (D-mode) lock waits
	StageLockC                        // compensation-reservation (C-mode) lock waits
	StageExec                         // step execution: engine wall time minus inner stages
	StageWALAppend                    // WAL record append (in-memory image)
	StageGroupCommit                  // ForceTo: group-commit window wait + log sync
	StageEncode                       // result encode
	StageFlush                        // batch write-out to the socket
	NumSpanStages                     // count; not a stage
)

var spanStageNames = [NumSpanStages]string{
	"queue", "decode", "lock_conv", "lock_a", "lock_d", "lock_c",
	"exec", "wal_append", "group_commit", "encode", "flush",
}

// String returns the stage's snake_case name as used in metrics labels and
// JSONL keys.
func (s SpanStage) String() string {
	if s < NumSpanStages {
		return spanStageNames[s]
	}
	return "stage(?)"
}

// SpanEvent is one entry of a span's bounded trace-event history: what
// happened (a trace Kind), when relative to the span's start, and — for lock
// waits — the mode waited in and the item waited on.
type SpanEvent struct {
	TS   int64 // nanoseconds since the span started
	Kind Kind
	Mode string
	Item string
	Dur  int64 // duration in nanoseconds, when the kind carries one
}

// spanEventCap bounds the per-span event history. A TPC-C transaction emits
// a few dozen events end to end; anything past the cap is counted in
// Dropped rather than grown, keeping pooled spans allocation-free.
const spanEventCap = 48

// Span accumulates the latency anatomy of one request as it crosses the
// client/server/engine stack. All methods are nil-receiver safe, so callers
// thread a possibly-nil *Span unconditionally and disabled tracing costs a
// single predictable branch per call site.
//
// A span is owned by exactly one goroutine at a time: the session handler
// until the response is enqueued, then the BatchWriter loop (the enqueue
// mutex provides the happens-before edge), so no field needs atomics.
type Span struct {
	anatomy *Anatomy

	// TraceID is the client-assigned wire trace ID; TxnID the engine's
	// transaction ID (last attempt wins under retry).
	TraceID uint64
	TxnID   uint64
	// Type is the transaction type name; Status the final wire status.
	// Both are interned strings — recording them never allocates.
	Type   string
	Status string

	start   time.Time // wall-clock span start (frame read)
	mark    time.Time // last stage boundary, advanced by Next
	engAt   time.Time // EnterEngine timestamp
	engInner int64    // inner-stage sum snapshot at EnterEngine
	durs    [NumSpanStages]int64
	total   int64

	events  []SpanEvent
	dropped uint32
}

// Next closes the contiguous stage that began at the previous boundary,
// charging the elapsed time to it, and opens the next one.
func (sp *Span) Next(stage SpanStage) {
	if sp == nil {
		return
	}
	now := time.Now()
	sp.durs[stage] += int64(now.Sub(sp.mark))
	sp.mark = now
}

// Add charges an absolute duration to an inner stage (lock waits, WAL
// appends, the group-commit window) without moving the boundary mark.
func (sp *Span) Add(stage SpanStage, d int64) {
	if sp == nil {
		return
	}
	sp.durs[stage] += d
}

// EnterEngine marks the handoff into the engine. The decode stage must have
// been closed with Next first.
func (sp *Span) EnterEngine() {
	if sp == nil {
		return
	}
	sp.engAt = time.Now()
	sp.engInner = sp.innerSum()
}

// ExitEngine closes the engine segment: everything the engine spent that was
// not charged to an inner stage (lock waits, WAL, group commit) becomes
// StageExec, and the boundary mark moves so the next Next measures encode.
func (sp *Span) ExitEngine() {
	if sp == nil {
		return
	}
	now := time.Now()
	exec := int64(now.Sub(sp.engAt)) - (sp.innerSum() - sp.engInner)
	if exec > 0 {
		sp.durs[StageExec] += exec
	}
	sp.mark = now
}

func (sp *Span) innerSum() int64 {
	return sp.durs[StageLockConv] + sp.durs[StageLockA] + sp.durs[StageLockD] +
		sp.durs[StageLockC] + sp.durs[StageWALAppend] + sp.durs[StageGroupCommit]
}

// SetTxn records the engine identity once the transaction is admitted. Under
// whole-transaction retry the last attempt wins.
func (sp *Span) SetTxn(id uint64, typeName string) {
	if sp == nil {
		return
	}
	sp.TxnID = id
	sp.Type = typeName
}

// SetStatus records the final wire status name (an interned constant).
func (sp *Span) SetStatus(s string) {
	if sp == nil {
		return
	}
	sp.Status = s
}

// Event appends one entry to the span's bounded trace-event history.
func (sp *Span) Event(kind Kind, mode, item string, dur int64) {
	if sp == nil {
		return
	}
	if len(sp.events) >= spanEventCap {
		sp.dropped++
		return
	}
	if sp.events == nil {
		sp.events = make([]SpanEvent, 0, spanEventCap)
	}
	sp.events = append(sp.events, SpanEvent{
		TS: int64(time.Since(sp.start)), Kind: kind, Mode: mode, Item: item, Dur: dur,
	})
}

// Finish closes the span: the time since the last boundary is charged to
// StageFlush, the total is computed, and the span is handed back to its
// Anatomy (histograms, flight-recorder ring, slow-transaction dump) and
// returned to the pool. The span must not be touched after Finish.
func (sp *Span) Finish() {
	if sp == nil {
		return
	}
	now := time.Now()
	sp.durs[StageFlush] += int64(now.Sub(sp.mark))
	sp.total = int64(now.Sub(sp.start))
	sp.anatomy.finish(sp)
}

// Stage returns the accumulated duration of one stage.
func (sp *Span) Stage(s SpanStage) int64 {
	if sp == nil {
		return 0
	}
	return sp.durs[s]
}

// reset prepares a pooled span for reuse, retaining the events capacity.
func (sp *Span) reset(a *Anatomy, traceID uint64, at time.Time) {
	sp.anatomy = a
	sp.TraceID = traceID
	sp.TxnID = 0
	sp.Type = ""
	sp.Status = ""
	if at.IsZero() {
		at = time.Now()
	}
	sp.start = at
	sp.mark = at
	sp.engAt = time.Time{}
	sp.engInner = 0
	sp.durs = [NumSpanStages]int64{}
	sp.total = 0
	sp.events = sp.events[:0]
	sp.dropped = 0
}
