// Package trace is the engine-wide structured event bus. Every layer of the
// system — the scheduler in internal/core, the lock manager in internal/lock,
// the write-ahead log in internal/wal — emits typed events into a Tracer, and
// pluggable sinks consume them: an in-memory ring for tests and debug
// endpoints, JSONL for offline analysis, and the Chrome trace_event format
// for chrome://tracing / Perfetto timelines.
//
// The paper's evaluation (§5, Figures 2-4) is an exercise in attributing
// response time to mechanisms — lock waits, interference rejections,
// compensations. The bus exists so the reproduction can make the same
// attribution on live runs instead of inferring it from end-to-end summaries.
//
// Design constraints, in order:
//
//  1. Disabled tracing must cost nothing. Emit sites hold a *Tracer that is
//     nil when tracing is off and guard every emission with a nil check; the
//     disabled path is one predictable branch (see BenchmarkTraceDisabled in
//     internal/lock).
//  2. Enabled tracing must not serialize the system it observes. Events are
//     appended to striped bounded buffers (stripe chosen by transaction ID,
//     so one transaction's events stay ordered within a stripe), and a
//     single background drainer hands full batches to the sink.
//  3. The bus never blocks the engine on a slow sink. When the drainer falls
//     behind and the handoff queue is full, whole batches are dropped and
//     counted; Drops() reports the loss honestly instead of stalling a
//     terminal mid-transaction.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Kind enumerates event types. The taxonomy is documented in DESIGN.md §9.
type Kind uint8

const (
	// KindTxnBegin marks the start of a transaction instance. Item carries
	// the transaction type name.
	KindTxnBegin Kind = iota + 1
	// KindTxnCommit marks commit; Dur is the transaction's total lifetime.
	KindTxnCommit
	// KindTxnAbort marks an abort without compensation (no completed steps
	// or baseline rollback); Extra carries the cause.
	KindTxnAbort
	// KindStepBegin marks the start of forward step Step.
	KindStepBegin
	// KindStepEnd marks successful completion of forward step Step; Dur is
	// the step's duration.
	KindStepEnd
	// KindStepRetry marks a forward step restarting after a scheduling
	// abort (deadlock victim, cancelled or timed-out wait); Extra carries
	// the triggering error.
	KindStepRetry
	// KindAssertCheck marks an assertional lock attachment: the one-level
	// ACC checking a step's active assertion against an item it touches.
	// Item is the locked item, Extra the assertion name.
	KindAssertCheck
	// KindCompBegin marks the start of a compensating step; Step is the
	// number of completed forward steps being compensated.
	KindCompBegin
	// KindCompDone marks successful completion of compensation; Dur spans
	// the compensating step.
	KindCompDone
	// KindLockAcquire marks a lock granted without waiting. Mode is the
	// granted mode tag: the conventional IS/IX/S/SIX/X, or the paper's A
	// (assertional lock), D (displayed/exposed intermediate state mark), C
	// (compensation reservation).
	KindLockAcquire
	// KindLockWait marks a request blocking; the matching grant, timeout or
	// victim event carries the wait duration.
	KindLockWait
	// KindLockGrant marks a previously blocked request being granted; Dur
	// is the time spent waiting.
	KindLockGrant
	// KindLockUpgrade marks a mode conversion (e.g. S→X) on an already held
	// item; Extra records "old->new".
	KindLockUpgrade
	// KindLockTimeout marks a wait abandoned by the wait-budget safety net;
	// Dur is the time waited.
	KindLockTimeout
	// KindLockAbort marks a wait cancelled from outside (CancelWait or an
	// externally killed victim); Dur is the time waited.
	KindLockAbort
	// KindDeadlockVictim marks a request aborted to break a waits-for
	// cycle. Extra is "self" when the requester completed the cycle and
	// aborted itself, "for-compensation" when a forward waiter was killed
	// so a compensating step could proceed (§3.4).
	KindDeadlockVictim
	// KindWALAppend marks one log record appended; Mode carries the record
	// type tag, Dur the record's encoded size in bytes.
	KindWALAppend
	// KindWALForce marks a log force; Dur is the force latency paid.
	KindWALForce
	// KindRPCBegin marks a network request admitted by the accd server;
	// Item carries the transaction type name, Extra the remote address.
	KindRPCBegin
	// KindRPCEnd marks an admitted network request completing; Dur is the
	// server-side latency, Extra the wire status it answered with.
	KindRPCEnd
	// KindRPCReject marks a request refused before execution; Extra is the
	// refusal cause ("queue-full", "draining", "unknown-type", "bad-request").
	KindRPCReject
	// KindRPCError marks a server-side failure while answering an executed
	// request — e.g. the result work area failed to re-encode. The request
	// itself ran; Extra elaborates what went wrong afterwards.
	KindRPCError
	// KindTxnSpan is the latency-anatomy breakdown emitted once per finished
	// request span: Dur is the end-to-end latency, Item the transaction type,
	// Mode the final wire status, and Extra the non-zero per-stage durations
	// as "stage=ns;..." pairs (stage taxonomy in DESIGN.md §13).
	KindTxnSpan
	// KindSnapshotOpen marks a snapshot-tier read point registering; Txn is
	// the snapshot id, Dur the CSN it reads as of.
	KindSnapshotOpen
	// KindSnapshotClose marks a snapshot deregistering; Txn is the snapshot
	// id, Dur how long it was held.
	KindSnapshotClose
	// KindSnapshotGC marks a version-chain reaper pass that reclaimed
	// something; Txn is the floor CSN, Dur the versions pruned, Extra the
	// chains dropped.
	KindSnapshotGC
	// KindCoordBegin marks a cross-partition transaction starting: Txn is
	// the global id, Item the home transaction type, Extra the home
	// partition ("p3").
	KindCoordBegin
	// KindCoordCommit marks a global transaction completing all shots; Dur
	// is the end-to-end latency.
	KindCoordCommit
	// KindCoordAbort marks a global transaction rolled back, its completed
	// shots compensated; Extra carries the cause.
	KindCoordAbort
	// KindShotBegin marks one shot dispatching to a partition: Txn is the
	// global id, Step the shot index, Item the shot type, Extra the target
	// partition.
	KindShotBegin
	// KindShotEnd marks a shot's local commit; Dur is the shot latency.
	KindShotEnd
	// KindShotUndo marks the compensating undo of a committed shot during
	// global rollback or recovery; Step is the shot index being undone.
	KindShotUndo
	// KindCrossDeadlock marks the cross-partition deadlock detector breaking
	// a cycle: Txn is the victim's global id, Extra the cycle members.
	KindCrossDeadlock

	kindMax
)

var kindNames = [...]string{
	KindTxnBegin:       "txn.begin",
	KindTxnCommit:      "txn.commit",
	KindTxnAbort:       "txn.abort",
	KindStepBegin:      "step.begin",
	KindStepEnd:        "step.end",
	KindStepRetry:      "step.retry",
	KindAssertCheck:    "assert.check",
	KindCompBegin:      "comp.begin",
	KindCompDone:       "comp.done",
	KindLockAcquire:    "lock.acquire",
	KindLockWait:       "lock.wait",
	KindLockGrant:      "lock.grant",
	KindLockUpgrade:    "lock.upgrade",
	KindLockTimeout:    "lock.timeout",
	KindLockAbort:      "lock.abort",
	KindDeadlockVictim: "lock.victim",
	KindWALAppend:      "wal.append",
	KindWALForce:       "wal.force",
	KindRPCBegin:       "rpc.begin",
	KindRPCEnd:         "rpc.end",
	KindRPCReject:      "rpc.reject",
	KindRPCError:       "rpc.error",
	KindTxnSpan:        "txn.span",
	KindSnapshotOpen:   "read.snapshot.open",
	KindSnapshotClose:  "read.snapshot.close",
	KindSnapshotGC:     "read.snapshot.gc",
	KindCoordBegin:     "coord.begin",
	KindCoordCommit:    "coord.commit",
	KindCoordAbort:     "coord.abort",
	KindShotBegin:      "shot.begin",
	KindShotEnd:        "shot.end",
	KindShotUndo:       "shot.undo",
	KindCrossDeadlock:  "coord.deadlock",
}

// String names the kind as it appears in sink output.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one bus record. The struct is fixed-size apart from its three
// string tags, which emit sites fill from interned constants where possible
// (mode and kind tags never allocate; item rendering allocates only when
// tracing is enabled).
type Event struct {
	// TS is nanoseconds since the tracer's epoch.
	TS int64
	// Dur is a duration or size in the event's units (see Kind docs).
	Dur int64
	// Txn is the transaction instance ID, 0 when not transaction-scoped.
	Txn uint64
	// Trace is the client-assigned wire trace ID carried in the request
	// header, 0 for in-process or pre-v3 traffic. It is what stitches one
	// request's client, server, and engine events together.
	Trace uint64
	// Kind is the event type.
	Kind Kind
	// Shard is the lock-table shard index, -1 when not lock-scoped.
	Shard int16
	// Step is the forward-step index, -1 when not step-scoped.
	Step int16
	// Mode is a small tag: lock mode (IS/IX/S/SIX/X/A/D/C) or WAL record
	// type.
	Mode string
	// Item names the subject: a lock item, transaction type, or assertion.
	Item string
	// Extra carries event-specific detail (cause, conversion, victim rule).
	Extra string
}

// Ev builds an event with the not-applicable markers (-1) preset for Shard
// and Step, so emit sites only fill what their layer knows.
func Ev(kind Kind, txn uint64) Event {
	return Event{Kind: kind, Txn: txn, Shard: -1, Step: -1}
}

// stripeCount is the number of independently latched emit buffers.
// Transactions hash onto stripes, so concurrent terminals rarely contend on
// the same buffer mutex.
const stripeCount = 16

// stripeCap is each stripe's buffer capacity. A full stripe is handed to the
// drainer as one batch.
const stripeCap = 512

// queueCap bounds the batch handoff queue between emitters and the drainer;
// beyond it batches are dropped and counted.
const queueCap = 64

type stripe struct {
	mu  sync.Mutex
	buf []Event
	_   [64]byte // keep neighbouring stripe mutexes off one cache line
}

type batch struct {
	events []Event
	done   chan struct{} // non-nil: flush sentinel, closed when processed
	stop   bool          // drainer exit sentinel (Close)
}

// Tracer is the event bus. A nil *Tracer is a valid, permanently disabled
// tracer as far as emit sites are concerned (they nil-check before calling
// any method); all methods below assume a non-nil receiver.
type Tracer struct {
	epoch   time.Time
	sink    Sink
	stripes [stripeCount]stripe
	queue   chan batch
	wg      sync.WaitGroup

	dropped  atomic.Uint64
	emitted  atomic.Uint64
	sinkErrs atomic.Uint64

	closed atomic.Bool
	free   sync.Pool // recycles drained []Event backing arrays
}

// New creates a tracer feeding sink and starts its drainer. The caller must
// Close it to flush buffered events and release the sink.
func New(sink Sink) *Tracer {
	t := &Tracer{
		epoch: time.Now(),
		sink:  sink,
		queue: make(chan batch, queueCap),
		free: sync.Pool{New: func() any {
			return make([]Event, 0, stripeCap)
		}},
	}
	for i := range t.stripes {
		t.stripes[i].buf = make([]Event, 0, stripeCap)
	}
	t.wg.Add(1)
	go t.drain()
	return t
}

// Now returns the event timestamp for the current instant.
func (t *Tracer) Now() int64 { return int64(time.Since(t.epoch)) }

// Emit records one event. ev.TS is stamped here if zero. Emit never blocks
// on the sink: when the drainer cannot keep up the event (or a displaced
// batch) is dropped and counted.
func (t *Tracer) Emit(ev Event) {
	if t.closed.Load() {
		t.dropped.Add(1)
		return
	}
	if ev.TS == 0 {
		ev.TS = t.Now()
	}
	t.emitted.Add(1)
	s := &t.stripes[ev.Txn%stripeCount]
	s.mu.Lock()
	s.buf = append(s.buf, ev)
	if len(s.buf) < stripeCap {
		s.mu.Unlock()
		return
	}
	full := s.buf
	s.buf = t.free.Get().([]Event)[:0]
	s.mu.Unlock()
	t.enqueue(batch{events: full})
}

// enqueue hands a batch to the drainer without blocking; a full queue drops
// the batch.
func (t *Tracer) enqueue(b batch) {
	select {
	case t.queue <- b:
	default:
		t.dropped.Add(uint64(len(b.events)))
		t.free.Put(b.events[:0])
		if b.done != nil {
			close(b.done)
		}
	}
}

// drain is the single consumer: it forwards batches to the sink in arrival
// order and recycles their backing arrays. The queue channel is never
// closed — Close sends a stop sentinel instead — so a racing Emit can never
// panic on a closed channel; at worst its batch sits unread and is bounded
// by the queue capacity.
func (t *Tracer) drain() {
	defer t.wg.Done()
	for b := range t.queue {
		if len(b.events) > 0 {
			if err := t.sink.Write(b.events); err != nil {
				t.sinkErrs.Add(1)
			}
			t.free.Put(b.events[:0])
		}
		if b.done != nil {
			close(b.done)
		}
		if b.stop {
			return
		}
	}
}

// Flush pushes every buffered event through to the sink and waits for the
// drainer to process them. Events emitted concurrently with Flush may or may
// not be included.
func (t *Tracer) Flush() {
	if t.closed.Load() {
		return
	}
	for i := range t.stripes {
		s := &t.stripes[i]
		s.mu.Lock()
		if len(s.buf) > 0 {
			full := s.buf
			s.buf = t.free.Get().([]Event)[:0]
			s.mu.Unlock()
			t.enqueue(batch{events: full})
			continue
		}
		s.mu.Unlock()
	}
	done := make(chan struct{})
	t.queue <- batch{done: done} // blocking: the sentinel must be processed
	<-done
}

// Close flushes, stops the drainer, and closes the sink. Emissions after
// Close are counted as drops.
func (t *Tracer) Close() error {
	if !t.closed.CompareAndSwap(false, true) {
		return nil
	}
	// Drain the stripes directly: Emit now drops, so the buffers are quiet.
	for i := range t.stripes {
		s := &t.stripes[i]
		s.mu.Lock()
		if len(s.buf) > 0 {
			t.queue <- batch{events: s.buf} // blocking: final flush must land
			s.buf = nil
		}
		s.mu.Unlock()
	}
	t.queue <- batch{stop: true}
	t.wg.Wait()
	return t.sink.Close()
}

// Drops reports events lost to backpressure (drainer behind) or emitted
// after Close.
func (t *Tracer) Drops() uint64 { return t.dropped.Load() }

// Emitted reports events accepted by Emit (including ones later dropped).
func (t *Tracer) Emitted() uint64 { return t.emitted.Load() }

// SinkErrors reports batches the sink rejected.
func (t *Tracer) SinkErrors() uint64 { return t.sinkErrs.Load() }
