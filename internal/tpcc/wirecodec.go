// Binary wire codecs for the TPC-C argument records. Each transaction
// type's args travel between accclient and accd as a fixed-layout record —
// 8-byte big-endian int64 scalars, u16-counted strings and slices — instead
// of JSON, encoded into pooled buffers and decoded in place into pooled
// records, so the network hot path allocates nothing per request. The
// layouts are registered with internal/server/wire at init time; both ends
// of the connection pick them up from the same registry.
//
// These codecs serve the wire only. The WAL work-area encodings in args.go
// (spi.MarshalRow) are a separate, stable format — recovery replays
// old log records, so the two must not be conflated.

package tpcc

import (
	"encoding/binary"
	"fmt"

	"accdb/internal/server/wire"
)

var wireOrder = binary.BigEndian

func putI64(dst []byte, v int64) []byte { return wireOrder.AppendUint64(dst, uint64(v)) }

func putI64s(dst []byte, vs []int64) []byte {
	dst = wireOrder.AppendUint16(dst, uint16(len(vs)))
	for _, v := range vs {
		dst = wireOrder.AppendUint64(dst, uint64(v))
	}
	return dst
}

func putStr(dst []byte, s string) []byte {
	dst = wireOrder.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

// reader cursors through a binary record with saturating bounds checks: a
// failed read sets ok=false and every later read returns zero, so decode
// bodies stay straight-line and check ok once at the end.
type reader struct {
	data []byte
	ok   bool
}

func (r *reader) i64() int64 {
	if !r.ok || len(r.data) < 8 {
		r.ok = false
		return 0
	}
	v := int64(wireOrder.Uint64(r.data))
	r.data = r.data[8:]
	return v
}

func (r *reader) count() int {
	if !r.ok || len(r.data) < 2 {
		r.ok = false
		return 0
	}
	n := int(wireOrder.Uint16(r.data))
	r.data = r.data[2:]
	return n
}

// i64s reads a counted vector into dst's storage, preserving nil-ness for
// an empty vector so decode(encode(x)) matches the JSON path exactly.
func (r *reader) i64s(dst []int64) []int64 {
	n := r.count()
	if !r.ok || len(r.data) < 8*n {
		r.ok = false
		return dst[:0]
	}
	if n == 0 {
		if dst == nil {
			return nil
		}
		return dst[:0]
	}
	dst = dst[:0]
	for i := 0; i < n; i++ {
		dst = append(dst, int64(wireOrder.Uint64(r.data)))
		r.data = r.data[8:]
	}
	return dst
}

func (r *reader) strMid() string {
	n := r.count()
	if !r.ok || len(r.data) < n {
		r.ok = false
		return ""
	}
	s := string(r.data[:n])
	r.data = r.data[n:]
	return s
}

func (r *reader) done() error {
	if !r.ok {
		return fmt.Errorf("tpcc: truncated binary args")
	}
	if len(r.data) != 0 {
		return fmt.Errorf("tpcc: %d trailing bytes in binary args", len(r.data))
	}
	return nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

func init() {
	wire.RegisterArgCodec(&wire.ArgCodec{
		Name: "new_order",
		New:  func() any { return &NewOrderArgs{} },
		Reset: func(v any) {
			*v.(*NewOrderArgs) = NewOrderArgs{Lines: v.(*NewOrderArgs).Lines[:0], Filled: v.(*NewOrderArgs).Filled[:0], Amounts: v.(*NewOrderArgs).Amounts[:0]}
		},
		Encode: func(dst []byte, v any) []byte {
			a := v.(*NewOrderArgs)
			dst = putI64(dst, a.WID)
			dst = putI64(dst, a.DID)
			dst = putI64(dst, a.CID)
			dst = putI64(dst, a.ONum)
			dst = putI64(dst, a.WTax)
			dst = putI64(dst, a.DTax)
			dst = putI64(dst, a.CDiscount)
			dst = putI64(dst, a.Total)
			dst = append(dst, boolByte(a.InvalidItem))
			dst = append(dst, boolByte(a.FailFinal))
			dst = wireOrder.AppendUint16(dst, uint16(len(a.Lines)))
			for _, l := range a.Lines {
				dst = putI64(dst, l.ItemID)
				dst = putI64(dst, l.SupplyW)
				dst = putI64(dst, l.Quantity)
			}
			dst = putI64s(dst, a.Filled)
			dst = putI64s(dst, a.Amounts)
			return dst
		},
		Decode: func(data []byte, v any) error {
			a := v.(*NewOrderArgs)
			r := reader{data: data, ok: true}
			a.WID = r.i64()
			a.DID = r.i64()
			a.CID = r.i64()
			a.ONum = r.i64()
			a.WTax = r.i64()
			a.DTax = r.i64()
			a.CDiscount = r.i64()
			a.Total = r.i64()
			if r.ok && len(r.data) >= 2 {
				a.InvalidItem = r.data[0] == 1
				a.FailFinal = r.data[1] == 1
				r.data = r.data[2:]
			} else {
				r.ok = false
			}
			nLines := r.count()
			if !r.ok || len(r.data) < 24*nLines {
				return fmt.Errorf("tpcc: truncated new_order lines")
			}
			if nLines == 0 {
				if a.Lines != nil {
					a.Lines = a.Lines[:0]
				}
			} else {
				a.Lines = a.Lines[:0]
				for i := 0; i < nLines; i++ {
					a.Lines = append(a.Lines, OrderLineReq{
						ItemID:   r.i64(),
						SupplyW:  r.i64(),
						Quantity: r.i64(),
					})
				}
			}
			a.Filled = r.i64s(a.Filled)
			a.Amounts = r.i64s(a.Amounts)
			return r.done()
		},
	})

	wire.RegisterArgCodec(&wire.ArgCodec{
		Name:  "payment",
		New:   func() any { return &PaymentArgs{} },
		Reset: func(v any) { *v.(*PaymentArgs) = PaymentArgs{} },
		Encode: func(dst []byte, v any) []byte {
			a := v.(*PaymentArgs)
			dst = putI64(dst, a.WID)
			dst = putI64(dst, a.DID)
			dst = putI64(dst, a.CWID)
			dst = putI64(dst, a.CDID)
			dst = putI64(dst, a.CID)
			dst = putI64(dst, a.Amount)
			dst = putI64(dst, a.HID)
			dst = putI64(dst, a.Date)
			dst = putI64(dst, a.ResolvedCID)
			dst = putStr(dst, a.CLast)
			return dst
		},
		Decode: func(data []byte, v any) error {
			a := v.(*PaymentArgs)
			r := reader{data: data, ok: true}
			a.WID = r.i64()
			a.DID = r.i64()
			a.CWID = r.i64()
			a.CDID = r.i64()
			a.CID = r.i64()
			a.Amount = r.i64()
			a.HID = r.i64()
			a.Date = r.i64()
			a.ResolvedCID = r.i64()
			a.CLast = r.strMid()
			return r.done()
		},
	})

	wire.RegisterArgCodec(&wire.ArgCodec{
		Name: "delivery",
		New:  func() any { return &DeliveryArgs{} },
		Reset: func(v any) {
			*v.(*DeliveryArgs) = DeliveryArgs{Claimed: v.(*DeliveryArgs).Claimed[:0], Amounts: v.(*DeliveryArgs).Amounts[:0], Customers: v.(*DeliveryArgs).Customers[:0]}
		},
		Encode: func(dst []byte, v any) []byte {
			a := v.(*DeliveryArgs)
			dst = putI64(dst, a.WID)
			dst = putI64(dst, a.Carrier)
			dst = putI64(dst, a.Date)
			dst = putI64s(dst, a.Claimed)
			dst = putI64s(dst, a.Amounts)
			dst = putI64s(dst, a.Customers)
			return dst
		},
		Decode: func(data []byte, v any) error {
			a := v.(*DeliveryArgs)
			r := reader{data: data, ok: true}
			a.WID = r.i64()
			a.Carrier = r.i64()
			a.Date = r.i64()
			a.Claimed = r.i64s(a.Claimed)
			a.Amounts = r.i64s(a.Amounts)
			a.Customers = r.i64s(a.Customers)
			return r.done()
		},
	})

	wire.RegisterArgCodec(&wire.ArgCodec{
		Name:  "order_status",
		New:   func() any { return &OrderStatusArgs{} },
		Reset: func(v any) { *v.(*OrderStatusArgs) = OrderStatusArgs{} },
		Encode: func(dst []byte, v any) []byte {
			a := v.(*OrderStatusArgs)
			dst = putI64(dst, a.WID)
			dst = putI64(dst, a.DID)
			dst = putI64(dst, a.CID)
			dst = putStr(dst, a.CLast)
			return dst
		},
		Decode: func(data []byte, v any) error {
			a := v.(*OrderStatusArgs)
			r := reader{data: data, ok: true}
			a.WID = r.i64()
			a.DID = r.i64()
			a.CID = r.i64()
			a.CLast = r.strMid()
			return r.done()
		},
	})

	wire.RegisterArgCodec(&wire.ArgCodec{
		Name:  "stock_level",
		New:   func() any { return &StockLevelArgs{} },
		Reset: func(v any) { *v.(*StockLevelArgs) = StockLevelArgs{} },
		Encode: func(dst []byte, v any) []byte {
			a := v.(*StockLevelArgs)
			dst = putI64(dst, a.WID)
			dst = putI64(dst, a.DID)
			dst = putI64(dst, a.Threshold)
			dst = putI64(dst, a.Orders)
			return dst
		},
		Decode: func(data []byte, v any) error {
			a := v.(*StockLevelArgs)
			r := reader{data: data, ok: true}
			a.WID = r.i64()
			a.DID = r.i64()
			a.Threshold = r.i64()
			a.Orders = r.i64()
			return r.done()
		},
	})
}
