package tpcc

import (
	"errors"
	"fmt"
	"sort"

	"accdb/internal/core"
	"accdb/internal/spi"
)

// Column ordinals, resolved once against the schemas.
var (
	colWTax = warehouseSchema.MustCol("w_tax")
	colWYTD = warehouseSchema.MustCol("w_ytd")

	colDTax  = districtSchema.MustCol("d_tax")
	colDYTD  = districtSchema.MustCol("d_ytd")
	colDNext = districtSchema.MustCol("d_next_o_id")

	colCID       = customerSchema.MustCol("c_id")
	colCFirst    = customerSchema.MustCol("c_first")
	colCCredit   = customerSchema.MustCol("c_credit")
	colCDiscount = customerSchema.MustCol("c_discount")
	colCBalance  = customerSchema.MustCol("c_balance")
	colCYTDPay   = customerSchema.MustCol("c_ytd_payment")
	colCPayCnt   = customerSchema.MustCol("c_payment_cnt")
	colCDlvCnt   = customerSchema.MustCol("c_delivery_cnt")
	colCData     = customerSchema.MustCol("c_data")

	colNoOID = newOrderSchema.MustCol("no_o_id")

	colOID      = ordersSchema.MustCol("o_id")
	colOCID     = ordersSchema.MustCol("o_c_id")
	colOCarrier = ordersSchema.MustCol("o_carrier_id")
	colOOLCnt   = ordersSchema.MustCol("o_ol_cnt")

	colOLNumber   = orderLineSchema.MustCol("ol_number")
	colOLItem     = orderLineSchema.MustCol("ol_i_id")
	colOLSupplyW  = orderLineSchema.MustCol("ol_supply_w_id")
	colOLDelivery = orderLineSchema.MustCol("ol_delivery_d")
	colOLQty      = orderLineSchema.MustCol("ol_quantity")
	colOLAmount   = orderLineSchema.MustCol("ol_amount")

	colIPrice = itemSchema.MustCol("i_price")

	colSQty      = stockSchema.MustCol("s_quantity")
	colSYTD      = stockSchema.MustCol("s_ytd")
	colSOrderCnt = stockSchema.MustCol("s_order_cnt")
)

func i64(v int64) spi.Value { return spi.I64(v) }

// Registration binds the TPC-C transaction types to an engine.
type Registration struct {
	Types *Types
	Scale Scale

	// partitions is the partition count of the deployment this engine
	// belongs to (1 = a plain single-engine system). Warehouses map to
	// partitions by PartitionOf; a new-order line whose supply warehouse
	// lives in another partition is entered locally but its stock update
	// runs as a remote shot (the NOR step's hook).
	partitions int

	aNoOpen   *core.Assertion
	aDlvClaim *core.Assertion
}

// Register declares the five decomposed TPC-C transactions on the engine.
func Register(eng *core.Engine, types *Types, scale Scale) (*Registration, error) {
	return RegisterPartitioned(eng, types, scale, 1)
}

// RegisterPartitioned is Register for one engine of a partitioned
// deployment: the five transaction types become partition-aware (remote
// stock lines are delegated to the NOR hook step), and the no_stock /
// no_stock_undo shot types are additionally registered so this engine can
// execute and recover shots of cross-partition new-orders.
func RegisterPartitioned(eng *core.Engine, types *Types, scale Scale, partitions int) (*Registration, error) {
	if partitions < 1 {
		partitions = 1
	}
	reg := &Registration{Types: types, Scale: scale, partitions: partitions}
	reg.buildAssertions()
	tts := []*core.TxnType{
		reg.newOrderType(), reg.paymentType(), reg.deliveryType(),
		reg.orderStatusType(), reg.stockLevelType(),
	}
	if partitions > 1 {
		tts = append(tts, reg.noStockType(), reg.noStockUndoType())
	}
	for _, tt := range tts {
		if err := eng.Register(tt); err != nil {
			return nil, err
		}
	}
	return reg, nil
}

// PartitionOf maps a warehouse to its partition: warehouses stripe
// round-robin so any partition count divides the load evenly.
func PartitionOf(wid int64, partitions int) int {
	if partitions <= 1 {
		return 0
	}
	return int((wid - 1) % int64(partitions))
}

// isLocal reports whether a supply warehouse lives in the same partition as
// the order's home warehouse.
func (reg *Registration) isLocal(homeW, supplyW int64) bool {
	return reg.partitions <= 1 ||
		PartitionOf(homeW, reg.partitions) == PartitionOf(supplyW, reg.partitions)
}

// buildAssertions constructs the interstep assertion declarations.
//
// A_NO_OPEN is the TPC-C analogue of the paper's I1^o_num (§4): while a
// new-order is between steps, its order exists, has exactly the lines
// entered so far, and is undelivered. Its footprint is the instance's own
// orders row, new_order row, and order_line partition — locking them
// assertionally is what stops a delivery from claiming a half-entered order.
//
// A_DLV_CLAIM protects a delivery between claiming an order (D1) and
// applying its updates (D2): the claimed orders row and order_line
// partition must not change underneath it.
func (reg *Registration) buildAssertions() {
	reg.aNoOpen = &core.Assertion{
		ID:   reg.Types.ANoOpen,
		Name: "A_NO_OPEN",
		Covers: func(args any, item spi.Item) bool {
			a := args.(*NewOrderArgs)
			if a.ONum == 0 {
				return false // order id not assigned yet
			}
			key := spi.EncodeKey(i64(a.WID), i64(a.DID), i64(a.ONum))
			switch {
			case item.Table == TOrders && item.Level == spi.LevelRow:
				return item.Key == key
			case item.Table == TNewOrder && item.Level == spi.LevelRow:
				return item.Key == key
			case item.Table == TOrderLine && item.Level == spi.LevelPartition:
				return item.Key == key
			}
			return false
		},
		Items: func(args any) []spi.Item {
			a := args.(*NewOrderArgs)
			if a.ONum == 0 {
				return nil // the §3.2 false-conflict case: identity unknown
			}
			key := spi.EncodeKey(i64(a.WID), i64(a.DID), i64(a.ONum))
			return []spi.Item{
				spi.RowItem(TOrders, key),
				spi.RowItem(TNewOrder, key),
				spi.PartitionItem(TOrderLine, key),
			}
		},
	}
	reg.aDlvClaim = &core.Assertion{
		ID:   reg.Types.ADlvClaim,
		Name: "A_DLV_CLAIM",
		Covers: func(args any, item spi.Item) bool {
			a := args.(*DeliveryArgs)
			for d, o := range a.Claimed {
				if o == 0 {
					continue
				}
				key := spi.EncodeKey(i64(a.WID), i64(int64(d+1)), i64(o))
				if item.Table == TOrders && item.Level == spi.LevelRow && item.Key == key {
					return true
				}
				if item.Table == TOrderLine && item.Level == spi.LevelPartition && item.Key == key {
					return true
				}
			}
			return false
		},
		Items: func(args any) []spi.Item {
			a := args.(*DeliveryArgs)
			var out []spi.Item
			for d, o := range a.Claimed {
				if o == 0 {
					continue
				}
				key := spi.EncodeKey(i64(a.WID), i64(int64(d+1)), i64(o))
				out = append(out,
					spi.RowItem(TOrders, key),
					spi.PartitionItem(TOrderLine, key))
			}
			return out
		},
	}
}

// --- new-order -------------------------------------------------------------

func (reg *Registration) newOrderType() *core.TxnType {
	t := reg.Types
	return &core.TxnType{
		Name:                  "new_order",
		ID:                    t.NewOrder,
		InterStatementCompute: true,
		MakeSteps: func(args any) []core.Step {
			a := args.(*NewOrderArgs)
			steps := make([]core.Step, 0, len(a.Lines)+3)
			steps = append(steps, core.Step{
				Name: "NO1", Type: t.NO1, Body: reg.noSetup,
			})
			remote := false
			for i := range a.Lines {
				if !reg.isLocal(a.WID, a.Lines[i].SupplyW) {
					remote = true
				}
				steps = append(steps, core.Step{
					Name: fmt.Sprintf("NO2[%d]", i+1), Type: t.NO2,
					Pre:  []*core.Assertion{reg.aNoOpen},
					Body: reg.noLine(i),
				})
			}
			if remote {
				// Only instances that actually cross partitions pay for the
				// hook step (and its end-of-step force): the single-partition
				// hot path keeps the exact step sequence it always had.
				steps = append(steps, core.Step{
					Name: "NOR", Type: t.NOR,
					Pre:  []*core.Assertion{reg.aNoOpen},
					Body: reg.noRemote,
				})
			}
			steps = append(steps, core.Step{
				Name: "NOF", Type: t.NOF,
				Pre:  []*core.Assertion{reg.aNoOpen},
				Body: reg.noFinalize,
			})
			return steps
		},
		Comp: &core.Compensation{
			Type: t.CSNewOrder,
			Body: reg.noCompensate,
		},
		EncodeArgs: encodeNewOrder,
		AppendArgs: appendNewOrder,
		DecodeArgs: decodeNewOrder,
	}
}

// noSetup is NO1: read warehouse and customer rates, take the next order
// number from the district (the hot-spot counter of §5.1), and enter the
// order and its new_order queue entry.
func (reg *Registration) noSetup(tc *core.Ctx) error {
	a := tc.Args().(*NewOrderArgs)
	wrow, err := tc.Get(TWarehouse, i64(a.WID))
	if err != nil {
		return err
	}
	a.WTax = wrow[colWTax].Int64()
	err = tc.Update(TDistrict, []spi.Value{i64(a.WID), i64(a.DID)}, func(row spi.Row) error {
		a.DTax = row[colDTax].Int64()
		a.ONum = row[colDNext].Int64()
		row[colDNext] = i64(a.ONum + 1)
		return nil
	})
	if err != nil {
		return err
	}
	crow, err := tc.Get(TCustomer, i64(a.WID), i64(a.DID), i64(a.CID))
	if err != nil {
		return err
	}
	a.CDiscount = crow[colCDiscount].Int64()
	if err := tc.Insert(TOrders, spi.Row{
		i64(a.WID), i64(a.DID), i64(a.ONum), i64(a.CID),
		i64(0), i64(0), i64(int64(len(a.Lines))), i64(1),
	}); err != nil {
		return err
	}
	return tc.Insert(TNewOrder, spi.Row{i64(a.WID), i64(a.DID), i64(a.ONum)})
}

// noLine is NO2: one order line — read the item, deplete the stock by the
// TPC-C rule, and enter the line. The benchmark's 1% rollback fires here on
// the final line via an unused item number (§2.4.1.4), after earlier lines'
// steps completed — which is exactly what forces compensation under the ACC.
func (reg *Registration) noLine(i int) func(*core.Ctx) error {
	return func(tc *core.Ctx) error {
		a := tc.Args().(*NewOrderArgs)
		l := a.Lines[i]
		irow, err := tc.Get(TItem, i64(l.ItemID))
		if err != nil {
			if errors.Is(err, spi.ErrNotFound) {
				return tc.Abort("unused item number")
			}
			return err
		}
		price := irow[colIPrice].Int64()
		if reg.isLocal(a.WID, l.SupplyW) {
			var taken int64
			err = tc.Update(TStock, []spi.Value{i64(l.SupplyW), i64(l.ItemID)}, func(row spi.Row) error {
				q := row[colSQty].Int64()
				var nq int64
				if q >= l.Quantity+10 {
					nq = q - l.Quantity
				} else {
					nq = q - l.Quantity + 91
				}
				taken = q - nq
				row[colSQty] = i64(nq)
				row[colSYTD] = i64(row[colSYTD].Int64() + l.Quantity)
				row[colSOrderCnt] = i64(row[colSOrderCnt].Int64() + 1)
				return nil
			})
			if err != nil {
				return err
			}
			a.Filled[i] = taken
		}
		// A remote-partition supply line defers its stock update to the
		// no_stock shot the NOR step runs on the owning partition; the item
		// price comes from the local replica (items are loaded identically
		// into every partition), and the order line itself always lives with
		// the order.
		amount := l.Quantity * price
		if err := tc.Insert(TOrderLine, spi.Row{
			i64(a.WID), i64(a.DID), i64(a.ONum), i64(int64(i + 1)),
			i64(l.ItemID), i64(l.SupplyW), i64(0), i64(l.Quantity), i64(amount),
			spi.Str(""),
		}); err != nil {
			return err
		}
		a.Amounts[i] = amount
		return nil
	}
}

// noFinalize is NOF: total the lines and apply discount and taxes — the step
// that restores the order-level conjunct of I (all lines present).
func (reg *Registration) noFinalize(tc *core.Ctx) error {
	a := tc.Args().(*NewOrderArgs)
	if a.FailFinal {
		// The end-of-transaction rollback variant: every line step — and, in a
		// partitioned run, every remote shot — has committed by now, so this
		// abort drives the full compensation path.
		return tc.Abort("rollback at order finish")
	}
	var sum int64
	err := tc.ScanPartition(TOrderLine,
		[]spi.Value{i64(a.WID), i64(a.DID), i64(a.ONum)},
		func(row spi.Row) error {
			sum += row[colOLAmount].Int64()
			return nil
		})
	if err != nil {
		return err
	}
	// total = sum * (1 - discount) * (1 + w_tax + d_tax), rates in basis points.
	a.Total = sum * (10000 - a.CDiscount) / 10000 * (10000 + a.WTax + a.DTax) / 10000
	return nil
}

// noCompensate semantically undoes a partial new-order: restock every
// entered line, remove the lines, and remove the order and its queue entry.
// The district's order counter is NOT decremented — later orders exist — so
// the compensated number remains as a hole, exactly the outcome §4 derives.
func (reg *Registration) noCompensate(tc *core.Ctx, completed int) error {
	a := tc.Args().(*NewOrderArgs)
	if completed < 1 || a.ONum == 0 {
		return nil
	}
	lines := completed - 1
	if lines > len(a.Lines) {
		lines = len(a.Lines)
	}
	// Restock in item order: concurrent compensations then acquire their
	// stock locks in the same order and cannot deadlock with each other.
	order := make([]int, lines)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		return a.Lines[order[x]].ItemID < a.Lines[order[y]].ItemID
	})
	for _, i := range order {
		l := a.Lines[i]
		if reg.isLocal(a.WID, l.SupplyW) {
			taken, qty := a.Filled[i], l.Quantity
			err := tc.Update(TStock, []spi.Value{i64(l.SupplyW), i64(l.ItemID)}, func(row spi.Row) error {
				row[colSQty] = i64(row[colSQty].Int64() + taken)
				row[colSYTD] = i64(row[colSYTD].Int64() - qty)
				row[colSOrderCnt] = i64(row[colSOrderCnt].Int64() - 1)
				return nil
			})
			if err != nil {
				return err
			}
		}
		// A remote line's stock lives in another partition: the coordinator
		// reverses it with a no_stock_undo shot; here only the entered line
		// itself is removed.
		if err := tc.Delete(TOrderLine, i64(a.WID), i64(a.DID), i64(a.ONum), i64(int64(i+1))); err != nil {
			return err
		}
	}
	if err := tc.Delete(TNewOrder, i64(a.WID), i64(a.DID), i64(a.ONum)); err != nil &&
		!errors.Is(err, spi.ErrNotFound) {
		return err
	}
	if err := tc.Delete(TOrders, i64(a.WID), i64(a.DID), i64(a.ONum)); err != nil &&
		!errors.Is(err, spi.ErrNotFound) {
		return err
	}
	return nil
}

// --- payment ---------------------------------------------------------------

// paymentType orders the steps customer -> district -> warehouse: the
// hottest row (the warehouse, which every transaction in the warehouse
// touches) is updated last, so even the baseline holds it only across the
// final statement and the commit force. This is the standard TPC-C
// implementation discipline; the contention the paper analyses is then the
// district tuple, where new-order's counter increment and payment's
// year-to-date update genuinely collide (§5.1).
func (reg *Registration) paymentType() *core.TxnType {
	t := reg.Types
	return &core.TxnType{
		Name: "payment",
		ID:   t.Payment,
		Steps: []core.Step{
			{Name: "P1", Type: t.P1, Body: reg.payCustomer},
			{Name: "P2", Type: t.P2, Body: reg.payDistrict},
			{Name: "P3", Type: t.P3, Body: reg.payWarehouse},
		},
		Comp: &core.Compensation{
			Type: t.CSPayment,
			Body: reg.payCompensate,
		},
		EncodeArgs: encodePayment,
		AppendArgs: appendPayment,
		DecodeArgs: decodePayment,
	}
}

func (reg *Registration) payWarehouse(tc *core.Ctx) error {
	a := tc.Args().(*PaymentArgs)
	return tc.Update(TWarehouse, []spi.Value{i64(a.WID)}, func(row spi.Row) error {
		row[colWYTD] = i64(row[colWYTD].Int64() + a.Amount)
		return nil
	})
}

func (reg *Registration) payDistrict(tc *core.Ctx) error {
	a := tc.Args().(*PaymentArgs)
	return tc.Update(TDistrict, []spi.Value{i64(a.WID), i64(a.DID)}, func(row spi.Row) error {
		row[colDYTD] = i64(row[colDYTD].Int64() + a.Amount)
		return nil
	})
}

// resolveCustomer implements the benchmark's 60/40 selection: by last name
// (the row whose c_first is the ceiling-median among the matches) or by id.
func resolveCustomer(tc *core.Ctx, wid, did int64, cid int64, clast string) (int64, error) {
	if clast == "" {
		return cid, nil
	}
	rows, err := tc.LookupByIndex(TCustomer, IdxCustomerByLast,
		[]spi.Value{i64(wid), i64(did), spi.Str(clast)})
	if err != nil {
		return 0, err
	}
	if len(rows) == 0 {
		return cid, nil // fall back to the id the generator always supplies
	}
	sort.Slice(rows, func(i, j int) bool {
		return rows[i][colCFirst].Text() < rows[j][colCFirst].Text()
	})
	return rows[len(rows)/2][colCID].Int64(), nil
}

func (reg *Registration) payCustomer(tc *core.Ctx) error {
	a := tc.Args().(*PaymentArgs)
	cid, err := resolveCustomer(tc, a.CWID, a.CDID, a.CID, a.CLast)
	if err != nil {
		return err
	}
	a.ResolvedCID = cid
	err = tc.Update(TCustomer, []spi.Value{i64(a.CWID), i64(a.CDID), i64(cid)}, func(row spi.Row) error {
		row[colCBalance] = i64(row[colCBalance].Int64() - a.Amount)
		row[colCYTDPay] = i64(row[colCYTDPay].Int64() + a.Amount)
		row[colCPayCnt] = i64(row[colCPayCnt].Int64() + 1)
		if row[colCCredit].Text() == "BC" {
			data := fmt.Sprintf("%d %d %d %d %d %d|%s",
				cid, a.CDID, a.CWID, a.DID, a.WID, a.Amount, row[colCData].Text())
			if len(data) > 500 {
				data = data[:500]
			}
			row[colCData] = spi.Str(data)
		}
		return nil
	})
	if err != nil {
		return err
	}
	return tc.Insert(THistory, spi.Row{
		i64(a.HID), i64(cid), i64(a.CDID), i64(a.CWID),
		i64(a.DID), i64(a.WID), i64(a.Date), i64(a.Amount), spi.Str(""),
	})
}

// payCompensate reverses the completed steps: the customer update and the
// history record (step 1), then the district year-to-date (step 2). The
// warehouse step is last, so a completed warehouse step means the
// transaction committed and compensation is never invoked for it.
func (reg *Registration) payCompensate(tc *core.Ctx, completed int) error {
	a := tc.Args().(*PaymentArgs)
	if completed >= 1 {
		err := tc.Update(TCustomer, []spi.Value{i64(a.CWID), i64(a.CDID), i64(a.ResolvedCID)}, func(row spi.Row) error {
			row[colCBalance] = i64(row[colCBalance].Int64() + a.Amount)
			row[colCYTDPay] = i64(row[colCYTDPay].Int64() - a.Amount)
			row[colCPayCnt] = i64(row[colCPayCnt].Int64() - 1)
			return nil
		})
		if err != nil {
			return err
		}
		if err := tc.Delete(THistory, i64(a.HID)); err != nil &&
			!errors.Is(err, spi.ErrNotFound) {
			return err
		}
	}
	if completed >= 2 {
		err := tc.Update(TDistrict, []spi.Value{i64(a.WID), i64(a.DID)}, func(row spi.Row) error {
			row[colDYTD] = i64(row[colDYTD].Int64() - a.Amount)
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}
