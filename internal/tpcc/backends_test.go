package tpcc

// The TPC-C battery — including the full consistency checks — runs over
// whichever backend the registry selects (ACCDB_BACKEND, btree by default);
// CI's backend matrix exercises every registered store.
import (
	_ "accdb/internal/backends"
)
