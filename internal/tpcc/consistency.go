package tpcc

import (
	"fmt"

	"accdb/internal/core"
	"accdb/internal/spi"
)

// The twelve-component consistency constraint (TPC-C §3.3.2) — the paper's
// "I ... has twelve components". CheckConsistency evaluates all twelve
// against a quiescent database, plus a thirteenth condition of our own that
// ties stock year-to-date totals to the order lines that consumed them —
// the invariant a partitioned deployment's remote-stock shots must
// preserve across partition boundaries. Semantic correctness (§3.1)
// demands exactly this: when the system quiesces, I is true, even though
// individual ACC schedules were not serializable.
//
// Conditions 2 and 3 concern the consecutive numbering of orders; a
// compensated new-order legitimately leaves a hole (§4 derives this as the
// correct result of compensation), so the checker accepts the holes the
// workload recorded and verifies everything else is contiguous.

// CheckConsistency runs all thirteen checks and returns every violation.
// holes may be nil when no new-order was ever compensated.
func CheckConsistency(db *core.DB, s Scale, holes map[DistrictKey]map[int64]bool) []error {
	return runChecks(&checker{cats: []spi.Store{db.Store()}, scale: s, holes: holes})
}

func runChecks(c *checker) []error {
	var errs []error
	for i, check := range []func() []error{
		c.check1, c.check2, c.check3, c.check4, c.check5, c.check6,
		c.check7, c.check8, c.check9, c.check10, c.check11, c.check12,
		c.check13,
	} {
		for _, err := range check() {
			errs = append(errs, fmt.Errorf("consistency %d: %w", i+1, err))
		}
	}
	return errs
}

// checker aggregates over one store, or over every partition's store of a
// partitioned deployment — the tables' rows are disjoint by warehouse (the
// replicated read-only item table is never scanned), so multi-store scans
// feed the same maps single-store scans do.
type checker struct {
	cats  []spi.Store
	scale Scale
	holes map[DistrictKey]map[int64]bool
}

func (c *checker) isHole(w, d, o int64) bool {
	if c.holes == nil {
		return false
	}
	return c.holes[DistrictKey{w, d}][o]
}

func (c *checker) scan(table string, visit func(spi.Row)) {
	for _, cat := range c.cats {
		cat.Table(table).Scan(func(_ spi.Key, row spi.Row) bool {
			visit(row)
			return true
		})
	}
}

// orderKey identifies an order.
type orderKey struct{ w, d, o int64 }

// check1: W_YTD = sum(D_YTD) per warehouse.
func (c *checker) check1() []error {
	dSum := map[int64]int64{}
	c.scan(TDistrict, func(r spi.Row) { dSum[r[0].Int64()] += r[colDYTD].Int64() })
	var errs []error
	c.scan(TWarehouse, func(r spi.Row) {
		w, ytd := r[0].Int64(), r[colWYTD].Int64()
		if dSum[w] != ytd {
			errs = append(errs, fmt.Errorf("warehouse %d: w_ytd=%d, sum(d_ytd)=%d", w, ytd, dSum[w]))
		}
	})
	return errs
}

// districtOrders gathers order ids per district.
func (c *checker) districtOrders() map[DistrictKey][]int64 {
	out := map[DistrictKey][]int64{}
	c.scan(TOrders, func(r spi.Row) {
		k := DistrictKey{r[0].Int64(), r[1].Int64()}
		out[k] = append(out[k], r[colOID].Int64())
	})
	return out
}

// check2: every order id in [1, d_next_o_id) exists or is a compensation
// hole, and none beyond exists (subsumes D_NEXT_O_ID - 1 = max(O_ID)).
func (c *checker) check2() []error {
	orders := map[orderKey]bool{}
	c.scan(TOrders, func(r spi.Row) {
		orders[orderKey{r[0].Int64(), r[1].Int64(), r[colOID].Int64()}] = true
	})
	var errs []error
	c.scan(TDistrict, func(r spi.Row) {
		w, d, next := r[0].Int64(), r[1].Int64(), r[colDNext].Int64()
		for o := int64(1); o < next; o++ {
			if !orders[orderKey{w, d, o}] && !c.isHole(w, d, o) {
				errs = append(errs, fmt.Errorf("district (%d,%d): order %d missing (next=%d)", w, d, o, next))
			}
		}
	})
	for k := range orders {
		if c.isHole(k.w, k.d, k.o) {
			errs = append(errs, fmt.Errorf("district (%d,%d): compensated order %d still present", k.w, k.d, k.o))
		}
	}
	return errs
}

// check3: the new_order ids of a district are contiguous between their min
// and max, modulo compensation holes.
func (c *checker) check3() []error {
	queues := map[DistrictKey]map[int64]bool{}
	c.scan(TNewOrder, func(r spi.Row) {
		k := DistrictKey{r[0].Int64(), r[1].Int64()}
		if queues[k] == nil {
			queues[k] = map[int64]bool{}
		}
		queues[k][r[colNoOID].Int64()] = true
	})
	var errs []error
	for k, q := range queues {
		lo, hi := int64(1<<62), int64(0)
		for o := range q {
			if o < lo {
				lo = o
			}
			if o > hi {
				hi = o
			}
		}
		for o := lo; o <= hi; o++ {
			if !q[o] && !c.isHole(k.W, k.D, o) {
				errs = append(errs, fmt.Errorf("district (%d,%d): new_order gap at %d in [%d,%d]", k.W, k.D, o, lo, hi))
			}
		}
	}
	return errs
}

// check4: sum(o_ol_cnt) = count(order_line) per district.
func (c *checker) check4() []error {
	want := map[DistrictKey]int64{}
	c.scan(TOrders, func(r spi.Row) {
		want[DistrictKey{r[0].Int64(), r[1].Int64()}] += r[colOOLCnt].Int64()
	})
	got := map[DistrictKey]int64{}
	c.scan(TOrderLine, func(r spi.Row) {
		got[DistrictKey{r[0].Int64(), r[1].Int64()}]++
	})
	var errs []error
	for k, w := range want {
		if got[k] != w {
			errs = append(errs, fmt.Errorf("district (%d,%d): sum(o_ol_cnt)=%d, count(ol)=%d", k.W, k.D, w, got[k]))
		}
	}
	return errs
}

// check5: an order has a null carrier iff it is in the new_order queue.
func (c *checker) check5() []error {
	queued := map[orderKey]bool{}
	c.scan(TNewOrder, func(r spi.Row) {
		queued[orderKey{r[0].Int64(), r[1].Int64(), r[colNoOID].Int64()}] = true
	})
	var errs []error
	c.scan(TOrders, func(r spi.Row) {
		k := orderKey{r[0].Int64(), r[1].Int64(), r[colOID].Int64()}
		undelivered := r[colOCarrier].Int64() == 0
		if undelivered != queued[k] {
			errs = append(errs, fmt.Errorf("order (%d,%d,%d): carrier=%d queued=%v",
				k.w, k.d, k.o, r[colOCarrier].Int64(), queued[k]))
		}
	})
	return errs
}

// check6: o_ol_cnt equals the order's actual line count.
func (c *checker) check6() []error {
	counts := map[orderKey]int64{}
	c.scan(TOrderLine, func(r spi.Row) {
		counts[orderKey{r[0].Int64(), r[1].Int64(), r[2].Int64()}]++
	})
	var errs []error
	c.scan(TOrders, func(r spi.Row) {
		k := orderKey{r[0].Int64(), r[1].Int64(), r[colOID].Int64()}
		if counts[k] != r[colOOLCnt].Int64() {
			errs = append(errs, fmt.Errorf("order (%d,%d,%d): o_ol_cnt=%d, lines=%d",
				k.w, k.d, k.o, r[colOOLCnt].Int64(), counts[k]))
		}
	})
	return errs
}

// check7: a line has a delivery date iff its order was delivered.
func (c *checker) check7() []error {
	delivered := map[orderKey]bool{}
	c.scan(TOrders, func(r spi.Row) {
		delivered[orderKey{r[0].Int64(), r[1].Int64(), r[colOID].Int64()}] = r[colOCarrier].Int64() != 0
	})
	var errs []error
	c.scan(TOrderLine, func(r spi.Row) {
		k := orderKey{r[0].Int64(), r[1].Int64(), r[2].Int64()}
		has := r[colOLDelivery].Int64() != 0
		if has != delivered[k] {
			errs = append(errs, fmt.Errorf("order line (%d,%d,%d,%d): delivery_d=%d but order delivered=%v",
				k.w, k.d, k.o, r[colOLNumber].Int64(), r[colOLDelivery].Int64(), delivered[k]))
		}
	})
	return errs
}

// check8: W_YTD = sum(H_AMOUNT) per warehouse.
func (c *checker) check8() []error {
	hSum := map[int64]int64{}
	c.scan(THistory, func(r spi.Row) { hSum[r[5].Int64()] += r[7].Int64() })
	var errs []error
	c.scan(TWarehouse, func(r spi.Row) {
		w := r[0].Int64()
		if r[colWYTD].Int64() != hSum[w] {
			errs = append(errs, fmt.Errorf("warehouse %d: w_ytd=%d, sum(h_amount)=%d", w, r[colWYTD].Int64(), hSum[w]))
		}
	})
	return errs
}

// check9: D_YTD = sum(H_AMOUNT) per district.
func (c *checker) check9() []error {
	hSum := map[DistrictKey]int64{}
	c.scan(THistory, func(r spi.Row) {
		hSum[DistrictKey{r[5].Int64(), r[4].Int64()}] += r[7].Int64()
	})
	var errs []error
	c.scan(TDistrict, func(r spi.Row) {
		k := DistrictKey{r[0].Int64(), r[1].Int64()}
		if r[colDYTD].Int64() != hSum[k] {
			errs = append(errs, fmt.Errorf("district (%d,%d): d_ytd=%d, sum(h_amount)=%d", k.W, k.D, r[colDYTD].Int64(), hSum[k]))
		}
	})
	return errs
}

// customerKey identifies a customer.
type customerKey struct{ w, d, c int64 }

// deliveredAmounts sums delivered order-line amounts per customer.
func (c *checker) deliveredAmounts() map[customerKey]int64 {
	owner := map[orderKey]int64{}
	c.scan(TOrders, func(r spi.Row) {
		owner[orderKey{r[0].Int64(), r[1].Int64(), r[colOID].Int64()}] = r[colOCID].Int64()
	})
	out := map[customerKey]int64{}
	c.scan(TOrderLine, func(r spi.Row) {
		if r[colOLDelivery].Int64() == 0 {
			return
		}
		k := orderKey{r[0].Int64(), r[1].Int64(), r[2].Int64()}
		out[customerKey{k.w, k.d, owner[k]}] += r[colOLAmount].Int64()
	})
	return out
}

// check10: C_BALANCE = sum(delivered OL_AMOUNT) - sum(H_AMOUNT) per customer.
func (c *checker) check10() []error {
	delivered := c.deliveredAmounts()
	paid := map[customerKey]int64{}
	c.scan(THistory, func(r spi.Row) {
		paid[customerKey{r[3].Int64(), r[2].Int64(), r[1].Int64()}] += r[7].Int64()
	})
	var errs []error
	c.scan(TCustomer, func(r spi.Row) {
		k := customerKey{r[0].Int64(), r[1].Int64(), r[2].Int64()}
		want := delivered[k] - paid[k]
		if r[colCBalance].Int64() != want {
			errs = append(errs, fmt.Errorf("customer (%d,%d,%d): c_balance=%d, want %d",
				k.w, k.d, k.c, r[colCBalance].Int64(), want))
		}
	})
	return errs
}

// check11: per district, count(orders) - count(new_order) equals the number
// of delivered orders seeded at load (delivery moves orders out of the
// queue; new-order and compensation change both counts together).
func (c *checker) check11() []error {
	oCnt := map[DistrictKey]int64{}
	c.scan(TOrders, func(r spi.Row) { oCnt[DistrictKey{r[0].Int64(), r[1].Int64()}]++ })
	noCnt := map[DistrictKey]int64{}
	c.scan(TNewOrder, func(r spi.Row) { noCnt[DistrictKey{r[0].Int64(), r[1].Int64()}]++ })
	delivered := map[DistrictKey]int64{}
	c.scan(TOrders, func(r spi.Row) {
		if r[colOCarrier].Int64() != 0 {
			delivered[DistrictKey{r[0].Int64(), r[1].Int64()}]++
		}
	})
	var errs []error
	for k, n := range oCnt {
		if n-noCnt[k] != delivered[k] {
			errs = append(errs, fmt.Errorf("district (%d,%d): orders=%d new_orders=%d delivered=%d",
				k.W, k.D, n, noCnt[k], delivered[k]))
		}
	}
	return errs
}

// check13: S_YTD = sum(OL_QUANTITY) over the order lines entered at run
// time whose supply warehouse is that stock row's, wherever those lines
// live. The loader starts s_ytd at zero and seeds only pre-numbered orders,
// so run-time lines (o_id past the seeded range) account for every unit of
// s_ytd; a compensated order contributes nothing (its lines are deleted and
// its stock restored). In a partitioned deployment the lines of a remote
// supply warehouse live in the ORDER's partition while the stock lives in
// the SUPPLY warehouse's — this is the condition that catches a lost or
// double-applied remote-stock shot.
func (c *checker) check13() []error {
	type stockKey struct{ w, i int64 }
	want := map[stockKey]int64{}
	initial := int64(c.scale.InitialOrdersPerDistrict)
	c.scan(TOrderLine, func(r spi.Row) {
		if r[2].Int64() <= initial {
			return // seeded order line: predates stock accounting
		}
		want[stockKey{r[colOLSupplyW].Int64(), r[colOLItem].Int64()}] += r[colOLQty].Int64()
	})
	var errs []error
	c.scan(TStock, func(r spi.Row) {
		k := stockKey{r[0].Int64(), r[1].Int64()}
		if r[colSYTD].Int64() != want[k] {
			errs = append(errs, fmt.Errorf("stock (%d,%d): s_ytd=%d, sum(ol_quantity)=%d",
				k.w, k.i, r[colSYTD].Int64(), want[k]))
		}
		delete(want, k)
	})
	for k, q := range want {
		errs = append(errs, fmt.Errorf("stock (%d,%d): missing row but %d units ordered", k.w, k.i, q))
	}
	return errs
}

// check12: C_BALANCE + C_YTD_PAYMENT = sum(delivered OL_AMOUNT) per customer.
func (c *checker) check12() []error {
	delivered := c.deliveredAmounts()
	var errs []error
	c.scan(TCustomer, func(r spi.Row) {
		k := customerKey{r[0].Int64(), r[1].Int64(), r[2].Int64()}
		got := r[colCBalance].Int64() + r[colCYTDPay].Int64()
		if got != delivered[k] {
			errs = append(errs, fmt.Errorf("customer (%d,%d,%d): balance+ytd=%d, delivered=%d",
				k.w, k.d, k.c, got, delivered[k]))
		}
	})
	return errs
}
