package tpcc

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"

	"accdb/internal/core"
	"accdb/internal/metrics"
	"accdb/internal/sim"
	"accdb/internal/spi"
)

// Mix is the transaction mix in percent; it must sum to 100. The default is
// the benchmark's minimum-compliant mix.
type Mix struct {
	NewOrder    int
	Payment     int
	OrderStatus int
	Delivery    int
	StockLevel  int
}

// DefaultMix is the TPC-C §5.2.3 mix.
func DefaultMix() Mix {
	return Mix{NewOrder: 45, Payment: 43, OrderStatus: 4, Delivery: 4, StockLevel: 4}
}

// ReadHeavyMix inverts the benchmark toward its read-only probes: mostly
// order-status and stock-level with a thin writer stream keeping the
// version chains churning. This is the mix the read-tier experiments run —
// it is where routing reads off the lock manager should show.
func ReadHeavyMix() Mix {
	return Mix{NewOrder: 10, Payment: 8, OrderStatus: 41, Delivery: 0, StockLevel: 41}
}

// WorkloadConfig parameterizes input generation.
type WorkloadConfig struct {
	Scale Scale
	Mix   Mix
	// DistrictSkew is the extra probability mass on district 1 for
	// new-order and payment (0 = the uniform "Standard" curve of Figure 2;
	// 0.5 reproduces the "Skewed" curve's hot district).
	DistrictSkew float64
	// RollbackPercent is the share of new-orders that must abort via an
	// unused item number (the benchmark requires 1).
	RollbackPercent int
	// StockLevelOrders is how many recent orders stock-level inspects
	// (spec: 20; scaled down with the database).
	StockLevelOrders int
	// ReadTier, when not core.TierLocked, routes the read-only transaction
	// types (order-status, stock-level) through the engine's lock-free
	// versioned read path at that tier; writers are unaffected.
	ReadTier core.ReadTier
	// RemotePercent is the share of new-orders that include one line
	// supplied by a different warehouse (the spec's §2.4.1.5 remote-supply
	// rule, dialed up by the partitioned experiments — in a partitioned
	// deployment a remote warehouse in another partition turns the order
	// into a cross-partition transaction). Ignored with one warehouse.
	RemotePercent int
}

// DefaultWorkloadConfig returns the standard configuration for a scale.
func DefaultWorkloadConfig(s Scale) WorkloadConfig {
	return WorkloadConfig{
		Scale:            s,
		Mix:              DefaultMix(),
		RollbackPercent:  1,
		StockLevelOrders: 10,
	}
}

// RunFunc executes one transaction by type name: the in-process engine's
// Run, or a network client's. The argument record doubles as the work area,
// so the executor must leave output fields (an assigned order number)
// visible in it — the accclient pool does, by decoding the response's
// re-encoded work area back into args.
type RunFunc func(name string, args any) error

// ReadRunFunc executes one read-only transaction at a consistency tier: the
// engine's RunRead, or a network client's RunTier.
type ReadRunFunc func(name string, args any, tier core.ReadTier) error

// Workload generates TPC-C transactions against a RunFunc. It also tracks
// the order-number holes left by compensated new-orders, which the
// consistency checker needs to verify the numbering conditions.
type Workload struct {
	run     RunFunc
	runRead ReadRunFunc // nil: read-only types use run regardless of tier
	cfg     WorkloadConfig

	hID atomic.Int64

	mu    sync.Mutex
	holes map[DistrictKey]map[int64]bool
}

// DistrictKey identifies a district.
type DistrictKey struct {
	W, D int64
}

// NewWorkload binds a generator to an engine whose database was loaded at
// cfg.Scale and whose transaction types are registered.
func NewWorkload(eng *core.Engine, cfg WorkloadConfig) *Workload {
	w := NewRemoteWorkload(eng.Run, cfg)
	w.runRead = eng.RunRead
	return w
}

// NewRemoteWorkload binds a generator to an arbitrary executor — the TPC-C
// driver's -net mode passes an accclient pool's Run here and the terminals
// become network clients of accd.
func NewRemoteWorkload(run RunFunc, cfg WorkloadConfig) *Workload {
	w := &Workload{run: run, cfg: cfg, holes: make(map[DistrictKey]map[int64]bool)}
	w.hID.Store(int64(cfg.Scale.Warehouses*cfg.Scale.Districts*cfg.Scale.CustomersPerDistrict) + 1)
	return w
}

// SetReadRunner installs the tiered executor a remote workload routes its
// read-only types through when cfg.ReadTier is not TierLocked (the -net
// driver passes the accclient pool's RunTier).
func (w *Workload) SetReadRunner(run ReadRunFunc) { w.runRead = run }

// readOnlyType reports whether the named transaction type never writes —
// the types eligible for the versioned read tiers.
func readOnlyType(name string) bool {
	return name == "order_status" || name == "stock_level"
}

// Holes returns the compensated order numbers per district.
func (w *Workload) Holes() map[DistrictKey]map[int64]bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make(map[DistrictKey]map[int64]bool, len(w.holes))
	for k, v := range w.holes {
		m := make(map[int64]bool, len(v))
		for o := range v {
			m[o] = true
		}
		out[k] = m
	}
	return out
}

func (w *Workload) addHole(wid, did, o int64) {
	if o == 0 {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	k := DistrictKey{wid, did}
	m, ok := w.holes[k]
	if !ok {
		m = make(map[int64]bool)
		w.holes[k] = m
	}
	m[o] = true
}

// warehouse draws a home warehouse id uniformly.
func (w *Workload) warehouse(r *rand.Rand) int64 {
	if w.cfg.Scale.Warehouses <= 1 {
		return 1
	}
	return randRange(r, 1, int64(w.cfg.Scale.Warehouses))
}

// remoteWarehouse draws a warehouse different from home.
func (w *Workload) remoteWarehouse(r *rand.Rand, home int64) int64 {
	n := int64(w.cfg.Scale.Warehouses)
	v := randRange(r, 1, n-1)
	if v >= home {
		v++
	}
	return v
}

// district draws a district id, honouring the skew knob.
func (w *Workload) district(r *rand.Rand) int64 {
	if w.cfg.DistrictSkew > 0 && r.Float64() < w.cfg.DistrictSkew {
		return 1
	}
	return randRange(r, 1, int64(w.cfg.Scale.Districts))
}

func (w *Workload) customer(r *rand.Rand) int64 {
	return nuRand(r, 1023, cID, 1, int64(w.cfg.Scale.CustomersPerDistrict))
}

func (w *Workload) item(r *rand.Rand) int64 {
	return nuRand(r, 8191, cItem, 1, int64(w.cfg.Scale.Items))
}

// NewOrderArgs draws the inputs of one new-order (§2.4.1).
func (w *Workload) NewOrderArgs(r *rand.Rand) *NewOrderArgs {
	a := &NewOrderArgs{
		WID: w.warehouse(r), DID: w.district(r), CID: w.customer(r),
	}
	n := randRange(r, 5, 15)
	a.Lines = make([]OrderLineReq, n)
	for i := range a.Lines {
		a.Lines[i] = OrderLineReq{
			ItemID:   w.item(r),
			SupplyW:  a.WID, // home-supplied unless the remote roll below hits
			Quantity: randRange(r, 1, 10),
		}
	}
	remote := w.cfg.Scale.Warehouses > 1 && w.cfg.RemotePercent > 0 &&
		r.Intn(100) < w.cfg.RemotePercent
	if remote {
		a.Lines[int(randRange(r, 1, int64(n)))-1].SupplyW = w.remoteWarehouse(r, a.WID)
	}
	if w.cfg.RollbackPercent > 0 && r.Intn(100) < w.cfg.RollbackPercent {
		if remote {
			// A remote order rolls back in the finish step, after its lines
			// (and, partitioned, its remote-stock shots) committed — the
			// spec's end-of-transaction rollback, and the path that forces
			// cross-partition compensation.
			a.FailFinal = true
		} else {
			a.InvalidItem = true
			a.Lines[n-1].ItemID = int64(w.cfg.Scale.Items) + 1 // unused item number
		}
	}
	a.Filled = make([]int64, n)
	a.Amounts = make([]int64, n)
	return a
}

// PaymentArgs draws the inputs of one payment (§2.5.1).
func (w *Workload) PaymentArgs(r *rand.Rand) *PaymentArgs {
	a := &PaymentArgs{
		WID: w.warehouse(r), DID: w.district(r),
		Amount: randRange(r, 100, 500000),
		HID:    w.hID.Add(1),
	}
	// 85% home district customer; 15% a different district. The customer
	// always shares the warehouse (and thus the partition): the partitioned
	// deployment crosses partitions through new-order supply lines only.
	a.CWID = a.WID
	if r.Intn(100) < 85 {
		a.CDID = a.DID
	} else {
		a.CDID = randRange(r, 1, int64(w.cfg.Scale.Districts))
	}
	a.CID = w.customer(r)
	if r.Intn(100) < 60 {
		a.CLast = randLastName(r)
	}
	return a
}

// OrderStatusArgs draws the inputs of one order-status (§2.6.1).
func (w *Workload) OrderStatusArgs(r *rand.Rand) *OrderStatusArgs {
	a := &OrderStatusArgs{WID: w.warehouse(r), DID: w.district(r), CID: w.customer(r)}
	if r.Intn(100) < 60 {
		a.CLast = randLastName(r)
	}
	return a
}

// DeliveryArgs draws the inputs of one delivery (§2.7.1).
func (w *Workload) DeliveryArgs(r *rand.Rand) *DeliveryArgs {
	d := w.cfg.Scale.Districts
	return &DeliveryArgs{
		WID: w.warehouse(r), Carrier: randRange(r, 1, 10), Date: 1,
		Claimed:   make([]int64, d),
		Amounts:   make([]int64, d),
		Customers: make([]int64, d),
	}
}

// StockLevelArgs draws the inputs of one stock-level (§2.8.1). Each terminal
// is associated with one district, per the spec.
func (w *Workload) StockLevelArgs(r *rand.Rand, terminal int) *StockLevelArgs {
	return &StockLevelArgs{
		WID:       w.warehouse(r),
		DID:       int64(terminal%w.cfg.Scale.Districts) + 1,
		Threshold: randRange(r, 10, 20),
		Orders:    int64(w.cfg.StockLevelOrders),
	}
}

// DrawArgs draws the next transaction from the mix and returns its type
// name and a fresh argument record without executing it — for drivers that
// carry the request themselves (the wire-protocol tests and benchmark
// harness encode the record and ship it to accd).
func (w *Workload) DrawArgs(r *rand.Rand, terminal int) (string, any) {
	m := w.cfg.Mix
	roll := r.Intn(100)
	switch {
	case roll < m.NewOrder:
		return "new_order", w.NewOrderArgs(r)
	case roll < m.NewOrder+m.Payment:
		return "payment", w.PaymentArgs(r)
	case roll < m.NewOrder+m.Payment+m.OrderStatus:
		return "order_status", w.OrderStatusArgs(r)
	case roll < m.NewOrder+m.Payment+m.OrderStatus+m.Delivery:
		return "delivery", w.DeliveryArgs(r)
	default:
		return "stock_level", w.StockLevelArgs(r, terminal)
	}
}

// Next implements sim.Generator: it draws a transaction type from the mix
// and returns a runnable instance.
func (w *Workload) Next(r *rand.Rand, terminal int) sim.Txn {
	name, args := w.DrawArgs(r, terminal)
	if a, ok := args.(*NewOrderArgs); ok {
		return sim.Txn{Type: name, Run: func() (metrics.Outcome, error) {
			err := w.run(name, a)
			if core.IsCompensated(err) {
				// Compensation leaves the order number as a hole (§4); a
				// plain abort restored the counter, so no hole.
				w.addHole(a.WID, a.DID, a.ONum)
			}
			return outcome(err)
		}}
	}
	if w.cfg.ReadTier != core.TierLocked && w.runRead != nil && readOnlyType(name) {
		tier := w.cfg.ReadTier
		return sim.Txn{Type: name, Run: func() (metrics.Outcome, error) {
			return outcome(w.runRead(name, args, tier))
		}}
	}
	return sim.Txn{Type: name, Run: func() (metrics.Outcome, error) {
		return outcome(w.run(name, args))
	}}
}

func outcome(err error) (metrics.Outcome, error) {
	switch {
	case err == nil:
		return metrics.Committed, nil
	case core.IsCompensated(err) || errors.Is(err, core.ErrUserAbort):
		return metrics.RolledBack, nil
	case errors.Is(err, spi.ErrDeadlock):
		// Abandoned as a deadlock victim after the retry budget.
		return metrics.Deadlocked, err
	case errors.Is(err, spi.ErrTimeout):
		return metrics.TimedOut, err
	default:
		return metrics.Failed, err
	}
}
