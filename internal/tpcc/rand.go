// Package tpcc implements the TPC-C workload the paper used to evaluate the
// ACC (§5.1): the nine tables, scaled data generation, the five transaction
// types decomposed into steps per the paper's analysis, their compensating
// steps, the interference tables, and checkers for the twelve-component
// consistency constraint.
package tpcc

import "math/rand"

// Non-uniform random constants (TPC-C §2.1.6). Chosen once per database
// load; kept fixed so runs are comparable.
const (
	cLast = 113
	cID   = 251
	cItem = 2749
)

// nuRand is the TPC-C NURand(A, x, y) non-uniform distribution.
func nuRand(r *rand.Rand, a, c, x, y int64) int64 {
	return (((randRange(r, 0, a) | randRange(r, x, y)) + c) % (y - x + 1)) + x
}

// randRange returns a uniform integer in [lo, hi].
func randRange(r *rand.Rand, lo, hi int64) int64 {
	return lo + r.Int63n(hi-lo+1)
}

// lastNameSyllables are the TPC-C §4.3.2.3 name fragments.
var lastNameSyllables = [...]string{
	"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
}

// lastName builds the customer last name for a number in [0, 999].
func lastName(num int64) string {
	return lastNameSyllables[num/100] + lastNameSyllables[(num/10)%10] + lastNameSyllables[num%10]
}

// randLastName draws a non-uniform last-name number for run-time lookups.
func randLastName(r *rand.Rand) string {
	return lastName(nuRand(r, 255, cLast, 0, 999))
}

const letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"

// aString is the TPC-C random alphanumeric string of length in [lo, hi].
func aString(r *rand.Rand, lo, hi int64) string {
	n := randRange(r, lo, hi)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[r.Intn(len(letters))]
	}
	return string(b)
}

// nString is the TPC-C random numeric string of length in [lo, hi].
func nString(r *rand.Rand, lo, hi int64) string {
	n := randRange(r, lo, hi)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('0' + r.Intn(10))
	}
	return string(b)
}

// zipCode is the TPC-C §4.3.2.7 zip: 4 random digits + "11111".
func zipCode(r *rand.Rand) string { return nString(r, 4, 4) + "11111" }
