package tpcc

import (
	"fmt"
	"math/rand"

	"accdb/internal/core"
	"accdb/internal/spi"
)

// Scale holds the database cardinalities. The paper ran one warehouse with
// ten districts; the remaining cardinalities default to a laptop-scale
// reduction of the spec's (3000 customers, 100k items) that preserves the
// contention structure — the hot items are the warehouse row, the district
// rows, and the NURand-skewed stock rows, all of which survive scaling.
type Scale struct {
	Warehouses           int
	Districts            int
	CustomersPerDistrict int
	Items                int
	// InitialOrdersPerDistrict seeds the order history; the most recent
	// NewOrderBacklog of them start undelivered (spec: last 900 of 3000).
	InitialOrdersPerDistrict int
	NewOrderBacklog          int
}

// DefaultScale mirrors the paper's single-warehouse configuration at reduced
// cardinality.
func DefaultScale() Scale {
	return Scale{
		Warehouses:               1,
		Districts:                10,
		CustomersPerDistrict:     120,
		Items:                    1000,
		InitialOrdersPerDistrict: 120,
		NewOrderBacklog:          40,
	}
}

// initialDYTD is each district's starting year-to-date total: one 10.00
// payment per customer, which makes consistency conditions 8 and 9 exact
// from the start (§3.3.2 of the TPC-C spec does the same).
func (s Scale) initialDYTD() int64 { return int64(s.CustomersPerDistrict) * 1000 }

// Load populates db with a deterministic TPC-C initial state. It writes
// through the storage layer directly (the archive copy the recovery path
// assumes), not through a scheduler.
func Load(db *core.DB, s Scale, seed int64) error {
	return loadWarehouses(db, s, seed, nil)
}

// loadWarehouses is Load restricted to the warehouses owns accepts (nil =
// all). The item table is always loaded in full: it is read-only, and a
// partitioned deployment replicates it so every partition prices its order
// lines locally.
func loadWarehouses(db *core.DB, s Scale, seed int64, owns func(w int) bool) error {
	if s.Warehouses < 1 || s.Districts < 1 || s.CustomersPerDistrict < 1 ||
		s.Items < 1 || s.InitialOrdersPerDistrict < 1 {
		return fmt.Errorf("tpcc: invalid scale %+v", s)
	}
	if s.NewOrderBacklog > s.InitialOrdersPerDistrict {
		return fmt.Errorf("tpcc: backlog %d exceeds initial orders %d",
			s.NewOrderBacklog, s.InitialOrdersPerDistrict)
	}
	r := rand.New(rand.NewSource(seed))
	cat := db.Store()

	items := cat.Table(TItem)
	for i := 1; i <= s.Items; i++ {
		data := aString(r, 26, 50)
		if r.Intn(10) == 0 { // 10% "ORIGINAL"
			data = "ORIGINAL" + data[8:]
		}
		if err := items.Insert(spi.Row{
			spi.Int(i), spi.I64(randRange(r, 1, 10000)),
			spi.Str(aString(r, 14, 24)),
			spi.I64(randRange(r, 100, 10000)), // $1.00 - $100.00
			spi.Str(data),
		}); err != nil {
			return err
		}
	}

	hID := int64(0)
	for w := 1; w <= s.Warehouses; w++ {
		if owns != nil && !owns(w) {
			continue
		}
		wYTD := int64(s.Districts) * s.initialDYTD()
		if err := cat.Table(TWarehouse).Insert(spi.Row{
			spi.Int(w), spi.Str(aString(r, 6, 10)),
			spi.Str(aString(r, 10, 20)), spi.Str(aString(r, 10, 20)),
			spi.Str(aString(r, 10, 20)), spi.Str(aString(r, 2, 2)),
			spi.Str(zipCode(r)),
			spi.I64(randRange(r, 0, 2000)), // 0-20.00% in bp
			spi.I64(wYTD),
		}); err != nil {
			return err
		}
		stock := cat.Table(TStock)
		for i := 1; i <= s.Items; i++ {
			data := aString(r, 26, 50)
			if r.Intn(10) == 0 {
				data = "ORIGINAL" + data[8:]
			}
			if err := stock.Insert(spi.Row{
				spi.Int(w), spi.Int(i),
				spi.I64(randRange(r, 10, 100)),
				spi.Str(aString(r, 24, 24)),
				spi.I64(0), spi.I64(0), spi.I64(0),
				spi.Str(data),
			}); err != nil {
				return err
			}
		}
		for d := 1; d <= s.Districts; d++ {
			if err := loadDistrict(db, s, r, w, d, &hID); err != nil {
				return err
			}
		}
	}
	return nil
}

func loadDistrict(db *core.DB, s Scale, r *rand.Rand, w, d int, hID *int64) error {
	cat := db.Store()
	if err := cat.Table(TDistrict).Insert(spi.Row{
		spi.Int(w), spi.Int(d),
		spi.Str(aString(r, 6, 10)),
		spi.Str(aString(r, 10, 20)), spi.Str(aString(r, 10, 20)),
		spi.Str(aString(r, 2, 2)), spi.Str(zipCode(r)),
		spi.I64(randRange(r, 0, 2000)),
		spi.I64(s.initialDYTD()),
		spi.Int(s.InitialOrdersPerDistrict + 1), // d_next_o_id
	}); err != nil {
		return err
	}

	customers := cat.Table(TCustomer)
	history := cat.Table(THistory)
	for c := 1; c <= s.CustomersPerDistrict; c++ {
		var last string
		if c <= 1000 {
			last = lastName(int64(c - 1))
		} else {
			last = lastName(nuRand(r, 255, cLast, 0, 999))
		}
		credit := "GC"
		if r.Intn(10) == 0 { // 10% bad credit
			credit = "BC"
		}
		if err := customers.Insert(spi.Row{
			spi.Int(w), spi.Int(d), spi.Int(c),
			spi.Str(aString(r, 8, 16)), spi.Str("OE"), spi.Str(last),
			spi.Str(aString(r, 10, 20)), spi.Str(aString(r, 10, 20)),
			spi.Str(aString(r, 2, 2)), spi.Str(zipCode(r)),
			spi.Str(nString(r, 16, 16)),
			spi.I64(0), spi.Str(credit),
			spi.I64(5000000), // $50,000.00 credit limit
			spi.I64(randRange(r, 0, 5000)),
			spi.I64(-1000), // c_balance = -10.00
			spi.I64(1000),  // c_ytd_payment = 10.00
			spi.I64(1), spi.I64(0),
			spi.Str(aString(r, 30, 50)),
		}); err != nil {
			return err
		}
		*hID++
		if err := history.Insert(spi.Row{
			spi.I64(*hID),
			spi.Int(c), spi.Int(d), spi.Int(w),
			spi.Int(d), spi.Int(w),
			spi.I64(0), spi.I64(1000), spi.Str(aString(r, 12, 24)),
		}); err != nil {
			return err
		}
	}

	orders := cat.Table(TOrders)
	orderLines := cat.Table(TOrderLine)
	newOrders := cat.Table(TNewOrder)
	// Customers are assigned to the initial orders by a random permutation
	// (spec §4.3.3.1), wrapping when there are more orders than customers.
	perm := r.Perm(s.CustomersPerDistrict)
	deliveredCut := s.InitialOrdersPerDistrict - s.NewOrderBacklog
	for o := 1; o <= s.InitialOrdersPerDistrict; o++ {
		cID := perm[(o-1)%len(perm)] + 1
		olCnt := randRange(r, 5, 15)
		carrier := int64(0)
		if o <= deliveredCut {
			carrier = randRange(r, 1, 10)
		}
		if err := orders.Insert(spi.Row{
			spi.Int(w), spi.Int(d), spi.Int(o),
			spi.Int(cID), spi.I64(0), spi.I64(carrier),
			spi.I64(olCnt), spi.I64(1),
		}); err != nil {
			return err
		}
		for l := int64(1); l <= olCnt; l++ {
			amount, deliveryD := int64(0), int64(1)
			if o > deliveredCut {
				amount = randRange(r, 1, 999999)
				deliveryD = 0
			}
			if err := orderLines.Insert(spi.Row{
				spi.Int(w), spi.Int(d), spi.Int(o), spi.I64(l),
				spi.I64(randRange(r, 1, int64(s.Items))), spi.Int(w),
				spi.I64(deliveryD), spi.I64(5), spi.I64(amount),
				spi.Str(aString(r, 24, 24)),
			}); err != nil {
				return err
			}
		}
		if o > deliveredCut {
			if err := newOrders.Insert(spi.Row{
				spi.Int(w), spi.Int(d), spi.Int(o),
			}); err != nil {
				return err
			}
		}
	}
	return nil
}
