package tpcc

import (
	"math/rand"
	"testing"
	"time"

	"accdb/internal/core"
	"accdb/internal/spi"
)

func TestNURandBounds(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		if v := nuRand(r, 1023, cID, 1, 3000); v < 1 || v > 3000 {
			t.Fatalf("NURand out of range: %d", v)
		}
		if v := nuRand(r, 8191, cItem, 1, 100000); v < 1 || v > 100000 {
			t.Fatalf("NURand item out of range: %d", v)
		}
	}
}

func TestNURandIsNonUniform(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[nuRand(r, 8191, cItem, 0, 99)]++
	}
	min, max := counts[0], counts[0]
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if float64(max) < 1.5*float64(min) {
		t.Fatalf("distribution looks uniform: min=%d max=%d", min, max)
	}
}

func TestLastName(t *testing.T) {
	if lastName(0) != "BARBARBAR" {
		t.Fatalf("lastName(0) = %q", lastName(0))
	}
	if lastName(371) != "PRICALLYOUGHT" {
		t.Fatalf("lastName(371) = %q", lastName(371))
	}
	if lastName(999) != "EINGEINGEING" {
		t.Fatalf("lastName(999) = %q", lastName(999))
	}
}

func TestRandomStrings(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		s := aString(r, 5, 10)
		if len(s) < 5 || len(s) > 10 {
			t.Fatalf("aString length %d", len(s))
		}
		n := nString(r, 4, 4)
		if len(n) != 4 {
			t.Fatalf("nString length %d", len(n))
		}
		for _, c := range n {
			if c < '0' || c > '9' {
				t.Fatalf("nString non-digit %q", n)
			}
		}
		if z := zipCode(r); len(z) != 9 {
			t.Fatalf("zip %q", z)
		}
	}
}

func TestElevenForwardStepTypes(t *testing.T) {
	// The paper: "Eleven distinct forward step types were defined."
	types := BuildTypes()
	forward := map[string]bool{}
	for _, id := range []struct {
		name string
		id   any
	}{
		{"NO1", types.NO1}, {"NO2", types.NO2}, {"NOF", types.NOF},
		{"P1", types.P1}, {"P2", types.P2}, {"P3", types.P3},
		{"D1", types.D1}, {"D2", types.D2}, {"DF", types.DF},
		{"OS", types.OS}, {"SL", types.SL},
	} {
		forward[id.name] = true
	}
	if len(forward) != 11 {
		t.Fatalf("%d forward step types, want 11", len(forward))
	}
}

func TestWorkloadGeneration(t *testing.T) {
	scale := DefaultScale()
	_, w := testSystem(t, core.ModeACC, scale)
	r := rand.New(rand.NewSource(9))
	sawRollback := false
	for i := 0; i < 2000; i++ {
		a := w.NewOrderArgs(r)
		if a.DID < 1 || a.DID > int64(scale.Districts) {
			t.Fatalf("district %d", a.DID)
		}
		if len(a.Lines) < 5 || len(a.Lines) > 15 {
			t.Fatalf("lines %d", len(a.Lines))
		}
		for j, l := range a.Lines {
			bad := l.ItemID < 1 || l.ItemID > int64(scale.Items)
			if bad && !(a.InvalidItem && j == len(a.Lines)-1) {
				t.Fatalf("item %d", l.ItemID)
			}
		}
		if a.InvalidItem {
			sawRollback = true
		}
		p := w.PaymentArgs(r)
		if p.Amount < 100 || p.Amount > 500000 {
			t.Fatalf("amount %d", p.Amount)
		}
		sl := w.StockLevelArgs(r, i)
		if sl.Threshold < 10 || sl.Threshold > 20 {
			t.Fatalf("threshold %d", sl.Threshold)
		}
	}
	if !sawRollback {
		t.Fatal("1%% rollback never generated in 2000 draws")
	}
}

func TestWorkloadMixRatios(t *testing.T) {
	_, w := testSystem(t, core.ModeACC, smallScale())
	r := rand.New(rand.NewSource(11))
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[w.Next(r, i).Type]++
	}
	for typ, pct := range map[string]int{
		"new_order": 45, "payment": 43, "order_status": 4, "delivery": 4, "stock_level": 4,
	} {
		got := float64(counts[typ]) / n * 100
		if got < float64(pct)-2 || got > float64(pct)+2 {
			t.Errorf("%s: %.1f%%, want ~%d%%", typ, got, pct)
		}
	}
}

func TestDistrictSkew(t *testing.T) {
	scale := smallScale()
	db := core.NewDB()
	CreateSchema(db)
	Load(db, scale, 1)
	types := BuildTypes()
	eng := core.New(db, types.Tables)
	Register(eng, types, scale)
	cfg := DefaultWorkloadConfig(scale)
	cfg.DistrictSkew = 0.5
	w := NewWorkload(eng, cfg)
	r := rand.New(rand.NewSource(13))
	hot := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if w.NewOrderArgs(r).DID == 1 {
			hot++
		}
	}
	frac := float64(hot) / n
	if frac < 0.55 || frac > 0.70 { // 0.5 + 0.5/districts ≈ 0.625
		t.Fatalf("hot district fraction %.2f", frac)
	}
}

func TestConsistencyCheckerDetectsCorruption(t *testing.T) {
	eng, w := testSystem(t, core.ModeACC, smallScale())
	runMix(t, eng, w, 2, 40, 21)
	if errs := CheckConsistency(eng.DB(), w.cfg.Scale, w.Holes()); len(errs) != 0 {
		t.Fatalf("clean state flagged: %v", errs[0])
	}
	// Corrupt: delete one order line behind the engine's back.
	ol := eng.DB().Table(TOrderLine)
	var victim spi.Key
	ol.Scan(func(pk spi.Key, _ spi.Row) bool {
		victim = pk
		return false
	})
	if _, err := ol.Delete(victim); err != nil {
		t.Fatal(err)
	}
	errs := CheckConsistency(eng.DB(), w.cfg.Scale, w.Holes())
	if len(errs) == 0 {
		t.Fatal("corruption not detected")
	}
	// Conditions 4 and 6 both see the missing line.
	found4, found6 := false, false
	for _, err := range errs {
		msg := err.Error()
		if len(msg) >= 13 && msg[:13] == "consistency 4" {
			found4 = true
		}
		if len(msg) >= 13 && msg[:13] == "consistency 6" {
			found6 = true
		}
	}
	if !found4 || !found6 {
		t.Fatalf("wrong conditions fired: %v", errs)
	}
}

func TestConsistencyCheckerDetectsYTDDrift(t *testing.T) {
	eng, w := testSystem(t, core.ModeACC, smallScale())
	// Corrupt w_ytd.
	wt := eng.DB().Table(TWarehouse)
	pk := spi.EncodeKey(spi.I64(1))
	row, _ := wt.Get(pk)
	row[colWYTD] = spi.I64(row[colWYTD].Int64() + 1)
	wt.Update(pk, row)
	errs := CheckConsistency(eng.DB(), w.cfg.Scale, w.Holes())
	if len(errs) == 0 {
		t.Fatal("YTD drift not detected")
	}
}

// TestACCNonSerializableButConsistent drives the decomposed mix hard enough
// that the committed history is (almost always) not conflict serializable,
// while all twelve consistency conditions still hold — the paper's central
// claim in one test.
func TestACCNonSerializableButConsistent(t *testing.T) {
	scale := smallScale()
	db := core.NewDB()
	if err := CreateSchema(db); err != nil {
		t.Fatal(err)
	}
	if err := Load(db, scale, 42); err != nil {
		t.Fatal(err)
	}
	types := BuildTypes()
	eng := core.New(db, types.Tables,
		core.WithMode(core.ModeACC),
		core.WithWaitTimeout(20*time.Second),
		core.WithRecordHistory(true),
	)
	if _, err := Register(eng, types, scale); err != nil {
		t.Fatal(err)
	}
	w := NewWorkload(eng, DefaultWorkloadConfig(scale))
	runMix(t, eng, w, 8, 60, 31)
	checkAll(t, eng, w)
	if eng.History().ConflictSerializable() {
		t.Log("note: this run happened to be serializable (rare but possible)")
	}
}

func TestTPCCCrashRecovery(t *testing.T) {
	scale := smallScale()
	eng, w := testSystem(t, core.ModeACC, scale)
	runMix(t, eng, w, 4, 40, 17)
	// "Crash": rebuild a fresh system over the same base load and replay the
	// durable log.
	img := eng.Log().DurableBytes()
	db2 := core.NewDB()
	if err := CreateSchema(db2); err != nil {
		t.Fatal(err)
	}
	if err := Load(db2, scale, 42); err != nil { // same seed: the archive copy
		t.Fatal(err)
	}
	types := BuildTypes()
	eng2 := core.New(db2, types.Tables, core.WithMode(core.ModeACC))
	if _, err := Register(eng2, types, scale); err != nil {
		t.Fatal(err)
	}
	res, err := eng2.Recover(img)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Fatal("no transactions recovered")
	}
	// The recovered database must satisfy all twelve conditions; the holes
	// set must include compensations performed during recovery, so rebuild
	// it from both sources.
	holes := w.Holes()
	for _, a := range res.Analysis.Pending() {
		if a.Type == "new_order" {
			args, err := eng2.Type("new_order").DecodeArgs(a.WorkArea)
			if err != nil {
				t.Fatal(err)
			}
			na := args.(*NewOrderArgs)
			k := DistrictKey{na.WID, na.DID}
			if holes[k] == nil {
				holes[k] = map[int64]bool{}
			}
			holes[k][na.ONum] = true
		}
	}
	errs := CheckConsistency(db2, scale, holes)
	for i, err := range errs {
		if i > 5 {
			break
		}
		t.Error(err)
	}
}

func TestLegacyTransactionOnTPCC(t *testing.T) {
	eng, w := testSystem(t, core.ModeACC, smallScale())
	runMix(t, eng, w, 2, 20, 19)
	// An undecomposed analytic query runs against the quiescent store and
	// sees a consistent snapshot.
	var orders, lines int64
	err := eng.RunLegacy("count", func(tc *core.Ctx) error {
		orders, lines = 0, 0
		if err := tc.Scan(TOrders, func(row spi.Row) error {
			orders += row[colOOLCnt].Int64()
			return nil
		}); err != nil {
			return err
		}
		return tc.Scan(TOrderLine, func(spi.Row) error {
			lines++
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if orders != lines {
		t.Fatalf("legacy read inconsistent state: sum(ol_cnt)=%d lines=%d", orders, lines)
	}
}

func TestBaselineRollbackRestoresCounter(t *testing.T) {
	// Under the serializable baseline, the 1%-rollback new-order restores
	// d_next_o_id (no hole); under the ACC it leaves a hole. Both keep I.
	scale := smallScale()
	eng, w := testSystem(t, core.ModeBaseline, scale)
	r := rand.New(rand.NewSource(23))
	a := w.NewOrderArgs(r)
	a.InvalidItem = true
	a.Lines[len(a.Lines)-1].ItemID = int64(scale.Items) + 1
	before, _ := eng.DB().Table(TDistrict).Get(spi.EncodeKey(i64(1), i64(a.DID)))
	if err := eng.Run("new_order", a); err == nil {
		t.Fatal("invalid item should abort")
	}
	after, _ := eng.DB().Table(TDistrict).Get(spi.EncodeKey(i64(1), i64(a.DID)))
	if before[colDNext].Int64() != after[colDNext].Int64() {
		t.Fatal("baseline rollback must restore the order counter")
	}
	checkAll(t, eng, w)
}
