package tpcc

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"accdb/internal/core"
	"accdb/internal/metrics"
	"accdb/internal/sim"
	"accdb/internal/spi"
)

func TestStressMixACC(t *testing.T) {
	eng, w := testSystem(t, 0, DefaultScale())
	runMix(t, eng, w, 24, 60, 99)
	checkAll(t, eng, w)
}

// TestStressMixACCWithEnv stretches lock-hold windows with real service
// times, which is what surfaces interleaving bugs.
func TestStressMixACCWithEnv(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test with real service times")
	}
	scale := DefaultScale()
	db := core.NewDB()
	if err := CreateSchema(db); err != nil {
		t.Fatal(err)
	}
	if err := Load(db, scale, 42); err != nil {
		t.Fatal(err)
	}
	types := BuildTypes()
	eng := core.New(db, types.Tables,
		core.WithMode(core.ModeACC),
		core.WithWaitTimeout(20*time.Second),
		core.WithForceLatency(20*time.Microsecond),
		core.WithEnv(sim.NewEnv(3, 50*time.Microsecond, 0)),
	)
	if _, err := Register(eng, types, scale); err != nil {
		t.Fatal(err)
	}
	w := NewWorkload(eng, DefaultWorkloadConfig(scale))

	// Track every new_order instance outcome by ONum.
	var mu sync.Mutex
	outcomes := map[int64]string{}
	committed := map[[2]int64]int{} // (did, onum) -> count
	var wg sync.WaitGroup
	for g := 0; g < 24; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(7 + int64(g)))
			for i := 0; i < 40; i++ {
				var lastNO *NewOrderArgs
				txn := w.Next(r, g)
				if txn.Type == "new_order" {
					lastNO = w.NewOrderArgs(r)
					a := lastNO
					txn.Run = func() (metrics.Outcome, error) {
						err := eng.Run("new_order", a)
						if core.IsCompensated(err) {
							w.addHole(a.WID, a.DID, a.ONum)
						}
						return outcome(err)
					}
				}
				out, err := txn.Run()
				if out == metrics.Failed {
					mu.Lock()
					outcomes[-int64(g*1000+i)] = fmt.Sprintf("%s FAILED: %v", txn.Type, err)
					mu.Unlock()
				}
				if lastNO != nil && out == metrics.Committed {
					mu.Lock()
					committed[[2]int64{lastNO.DID, lastNO.ONum}]++
					mu.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()
	errs := CheckConsistency(eng.DB(), scale, w.Holes())
	holes := w.Holes()
	bad := 0
	for _, err := range errs {
		if bad < 5 {
			t.Log(err)
		}
		bad++
	}
	// For a few violating orders, dump their state.
	ot := eng.DB().Table(TOrders)
	shown := 0
	ot.Scan(func(_ spi.Key, row spi.Row) bool {
		wid, did, o := row[0].Int64(), row[1].Int64(), row[2].Int64()
		cnt := row[colOOLCnt].Int64()
		lines := int64(0)
		eng.DB().Table(TOrderLine).Scan(func(_ spi.Key, lr spi.Row) bool {
			if lr[0].Int64() == wid && lr[1].Int64() == did && lr[2].Int64() == o {
				lines++
			}
			return true
		})
		if cnt != lines && shown < 5 {
			shown++
			noExists := eng.DB().Table(TNewOrder).Exists(spi.EncodeKey(row[0], row[1], row[2]))
			t.Logf("order (%d,%d,%d): cnt=%d lines=%d carrier=%d queued=%v hole=%v",
				wid, did, o, cnt, lines, row[colOCarrier].Int64(), noExists, holes[DistrictKey{wid, did}][o])
		}
		return true
	})
	mu.Lock()
	n := 0
	for _, msg := range outcomes {
		if n < 10 {
			t.Log(msg)
		}
		n++
	}
	mu.Unlock()
	st := eng.Snapshot()
	ls := eng.Locks().Stats()
	t.Logf("violations=%d failedTxns=%d commits=%d aborts=%d comps=%d stepRetries=%d txnRetries=%d deadlocks=%d victimsForComp=%d",
		bad, n, st.Commits, st.UserAborts, st.Compensations, st.StepRetries, st.TxnRetries, ls.Deadlocks, ls.VictimsForComp)
	if bad > 0 {
		t.Fail()
	}
}
