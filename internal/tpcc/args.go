package tpcc

import (
	"encoding/binary"
	"fmt"

	"accdb/internal/spi"
)

// The append-form encoders below write spi.MarshalRow's exact byte
// format (uvarint column count, then kind byte + payload per column)
// without materializing the intermediate Row, so the engine's end-of-step
// hot path serializes work areas into a reused scratch with no per-step
// allocation. decode* keep reading through UnmarshalRow, which also keeps
// old log images replayable.

// colI64 appends one KindInt column.
func colI64(dst []byte, v int64) []byte {
	dst = append(dst, byte(spi.KindInt))
	return binary.AppendVarint(dst, v)
}

// colStr appends one KindString column.
func colStr(dst []byte, s string) []byte {
	dst = append(dst, byte(spi.KindString))
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// Argument structs double as the transactions' work areas (§3.4, §5): steps
// record into them the state a compensating step needs (assigned order
// number, quantities actually taken from stock, claimed orders). The encode
// functions serialize them into the forced end-of-step records so crash
// recovery can compensate.

// OrderLineReq is one requested line of a new-order.
type OrderLineReq struct {
	ItemID   int64
	SupplyW  int64
	Quantity int64
}

// NewOrderArgs parameterizes a new-order transaction.
type NewOrderArgs struct {
	WID, DID, CID int64
	Lines         []OrderLineReq
	// InvalidItem makes the last line reference a nonexistent item, forcing
	// the 1% rollback the benchmark requires (§2.4.1.4), which under the ACC
	// exercises compensation: the abort happens while ordering the final
	// item, after earlier lines committed their steps.
	InvalidItem bool
	// FailFinal rolls back in the finish step instead — after every line and
	// any remote-stock shot committed. The spec's rollback happens at the end
	// of the transaction; in a partitioned deployment this is the variant
	// that forces the coordinator's cross-partition compensation path.
	FailFinal bool

	// Work area, filled by the forward steps.
	ONum      int64
	WTax      int64
	DTax      int64
	CDiscount int64
	Filled    []int64 // per line: stock quantity deducted
	Amounts   []int64 // per line: ol_amount
	Total     int64
}

func encodeNewOrder(v any) []byte { return appendNewOrder(nil, v) }

func appendNewOrder(dst []byte, v any) []byte {
	a := v.(*NewOrderArgs)
	inv := int64(0)
	if a.InvalidItem {
		inv = 1
	}
	ff := int64(0)
	if a.FailFinal {
		ff = 1
	}
	dst = binary.AppendUvarint(dst, uint64(11+5*len(a.Lines)))
	dst = colI64(dst, a.WID)
	dst = colI64(dst, a.DID)
	dst = colI64(dst, a.CID)
	dst = colI64(dst, a.ONum)
	dst = colI64(dst, a.WTax)
	dst = colI64(dst, a.DTax)
	dst = colI64(dst, a.CDiscount)
	dst = colI64(dst, a.Total)
	dst = colI64(dst, inv)
	dst = colI64(dst, ff)
	dst = colI64(dst, int64(len(a.Lines)))
	for i, l := range a.Lines {
		filled, amount := int64(0), int64(0)
		if i < len(a.Filled) {
			filled = a.Filled[i]
		}
		if i < len(a.Amounts) {
			amount = a.Amounts[i]
		}
		dst = colI64(dst, l.ItemID)
		dst = colI64(dst, l.SupplyW)
		dst = colI64(dst, l.Quantity)
		dst = colI64(dst, filled)
		dst = colI64(dst, amount)
	}
	return dst
}

func decodeNewOrder(data []byte) (any, error) {
	row, _, err := spi.UnmarshalRow(data)
	if err != nil {
		return nil, err
	}
	if len(row) < 11 {
		return nil, fmt.Errorf("tpcc: short new-order work area")
	}
	a := &NewOrderArgs{
		WID: row[0].Int64(), DID: row[1].Int64(), CID: row[2].Int64(),
		ONum: row[3].Int64(), WTax: row[4].Int64(), DTax: row[5].Int64(),
		CDiscount: row[6].Int64(), Total: row[7].Int64(),
		InvalidItem: row[8].Int64() == 1,
		FailFinal:   row[9].Int64() == 1,
	}
	n := int(row[10].Int64())
	if len(row) != 11+5*n {
		return nil, fmt.Errorf("tpcc: malformed new-order work area")
	}
	for i := 0; i < n; i++ {
		base := 11 + 5*i
		a.Lines = append(a.Lines, OrderLineReq{
			ItemID: row[base].Int64(), SupplyW: row[base+1].Int64(),
			Quantity: row[base+2].Int64(),
		})
		a.Filled = append(a.Filled, row[base+3].Int64())
		a.Amounts = append(a.Amounts, row[base+4].Int64())
	}
	return a, nil
}

// PaymentArgs parameterizes a payment transaction. The customer is selected
// by last name when CLast is non-empty (60% of the time per the benchmark),
// by id otherwise.
type PaymentArgs struct {
	WID, DID   int64
	CWID, CDID int64
	CID        int64
	CLast      string
	Amount     int64
	HID        int64
	Date       int64

	// Work area.
	ResolvedCID int64
}

func encodePayment(v any) []byte { return appendPayment(nil, v) }

func appendPayment(dst []byte, v any) []byte {
	a := v.(*PaymentArgs)
	dst = binary.AppendUvarint(dst, 10)
	dst = colI64(dst, a.WID)
	dst = colI64(dst, a.DID)
	dst = colI64(dst, a.CWID)
	dst = colI64(dst, a.CDID)
	dst = colI64(dst, a.CID)
	dst = colStr(dst, a.CLast)
	dst = colI64(dst, a.Amount)
	dst = colI64(dst, a.HID)
	dst = colI64(dst, a.Date)
	return colI64(dst, a.ResolvedCID)
}

func decodePayment(data []byte) (any, error) {
	row, _, err := spi.UnmarshalRow(data)
	if err != nil {
		return nil, err
	}
	if len(row) != 10 {
		return nil, fmt.Errorf("tpcc: malformed payment work area")
	}
	return &PaymentArgs{
		WID: row[0].Int64(), DID: row[1].Int64(), CWID: row[2].Int64(),
		CDID: row[3].Int64(), CID: row[4].Int64(), CLast: row[5].Text(),
		Amount: row[6].Int64(), HID: row[7].Int64(), Date: row[8].Int64(),
		ResolvedCID: row[9].Int64(),
	}, nil
}

// DeliveryArgs parameterizes a delivery transaction over all districts of a
// warehouse.
type DeliveryArgs struct {
	WID     int64
	Carrier int64
	Date    int64

	// Work area, one slot per district (index d-1).
	Claimed   []int64 // claimed o_id, 0 = district had no pending order
	Amounts   []int64 // order total credited to the customer
	Customers []int64 // customer of the claimed order
}

func (a *DeliveryArgs) districts() int { return len(a.Claimed) }

func encodeDelivery(v any) []byte { return appendDelivery(nil, v) }

func appendDelivery(dst []byte, v any) []byte {
	a := v.(*DeliveryArgs)
	dst = binary.AppendUvarint(dst, uint64(4+3*len(a.Claimed)))
	dst = colI64(dst, a.WID)
	dst = colI64(dst, a.Carrier)
	dst = colI64(dst, a.Date)
	dst = colI64(dst, int64(len(a.Claimed)))
	for i := range a.Claimed {
		dst = colI64(dst, a.Claimed[i])
		dst = colI64(dst, a.Amounts[i])
		dst = colI64(dst, a.Customers[i])
	}
	return dst
}

func decodeDelivery(data []byte) (any, error) {
	row, _, err := spi.UnmarshalRow(data)
	if err != nil {
		return nil, err
	}
	if len(row) < 4 {
		return nil, fmt.Errorf("tpcc: short delivery work area")
	}
	a := &DeliveryArgs{
		WID: row[0].Int64(), Carrier: row[1].Int64(), Date: row[2].Int64(),
	}
	n := int(row[3].Int64())
	if len(row) != 4+3*n {
		return nil, fmt.Errorf("tpcc: malformed delivery work area")
	}
	for i := 0; i < n; i++ {
		base := 4 + 3*i
		a.Claimed = append(a.Claimed, row[base].Int64())
		a.Amounts = append(a.Amounts, row[base+1].Int64())
		a.Customers = append(a.Customers, row[base+2].Int64())
	}
	return a, nil
}

// OrderStatusArgs parameterizes an order-status transaction.
type OrderStatusArgs struct {
	WID, DID int64
	CID      int64
	CLast    string
}

// StockLevelArgs parameterizes a stock-level transaction; Orders is the
// number of most-recent orders to examine (the spec's 20, scaled).
type StockLevelArgs struct {
	WID, DID  int64
	Threshold int64
	Orders    int64
}
