package tpcc

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"accdb/internal/core"
	"accdb/internal/metrics"
)

// testSystem assembles a loaded TPC-C database with registered transactions.
func testSystem(t *testing.T, mode core.Mode, scale Scale) (*core.Engine, *Workload) {
	t.Helper()
	db := core.NewDB()
	if err := CreateSchema(db); err != nil {
		t.Fatal(err)
	}
	if err := Load(db, scale, 42); err != nil {
		t.Fatal(err)
	}
	types := BuildTypes()
	eng := core.New(db, types.Tables,
		core.WithMode(mode),
		core.WithWaitTimeout(20*time.Second),
	)
	if _, err := Register(eng, types, scale); err != nil {
		t.Fatal(err)
	}
	w := NewWorkload(eng, DefaultWorkloadConfig(scale))
	return eng, w
}

func smallScale() Scale {
	return Scale{
		Warehouses: 1, Districts: 4, CustomersPerDistrict: 20,
		Items: 50, InitialOrdersPerDistrict: 20, NewOrderBacklog: 8,
	}
}

func checkAll(t *testing.T, eng *core.Engine, w *Workload) {
	t.Helper()
	errs := CheckConsistency(eng.DB(), w.cfg.Scale, w.Holes())
	for i, err := range errs {
		if i > 10 {
			t.Fatalf("... and %d more", len(errs)-i)
		}
		t.Error(err)
	}
}

func TestLoadIsConsistent(t *testing.T) {
	eng, w := testSystem(t, core.ModeACC, smallScale())
	checkAll(t, eng, w)
}

func runMix(t *testing.T, eng *core.Engine, w *Workload, goroutines, perG int, seed int64) {
	t.Helper()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed + int64(g)))
			for i := 0; i < perG; i++ {
				txn := w.Next(r, g)
				if out, err := txn.Run(); out == metrics.Failed {
					t.Errorf("%s failed: %v", txn.Type, err)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestSerialMixACC(t *testing.T) {
	eng, w := testSystem(t, core.ModeACC, smallScale())
	runMix(t, eng, w, 1, 300, 7)
	checkAll(t, eng, w)
	if got := eng.Snapshot().Commits; got == 0 {
		t.Fatal("no commits")
	}
}

func TestConcurrentMixACC(t *testing.T) {
	eng, w := testSystem(t, core.ModeACC, smallScale())
	runMix(t, eng, w, 8, 80, 11)
	checkAll(t, eng, w)
}

func TestConcurrentMixBaseline(t *testing.T) {
	eng, w := testSystem(t, core.ModeBaseline, smallScale())
	runMix(t, eng, w, 8, 80, 13)
	checkAll(t, eng, w)
}

func TestConcurrentMixTwoLevel(t *testing.T) {
	eng, w := testSystem(t, core.ModeTwoLevel, smallScale())
	runMix(t, eng, w, 6, 40, 17)
	checkAll(t, eng, w)
}
