package tpcc

import (
	"accdb/internal/core"
)

// ArgsPrototypes returns a fresh-argument-record factory per transaction
// type, for accd's request decoder: the server must unmarshal a request's
// JSON into the concrete record the transaction bodies type-assert.
func ArgsPrototypes() map[string]func() any {
	return map[string]func() any{
		"new_order":    func() any { return &NewOrderArgs{} },
		"payment":      func() any { return &PaymentArgs{} },
		"order_status": func() any { return &OrderStatusArgs{} },
		"delivery":     func() any { return &DeliveryArgs{} },
		"stock_level":  func() any { return &StockLevelArgs{} },
	}
}

// HoleTracker accumulates the order-number holes left by compensated
// new-orders, observed server-side through the accd OnOutcome hook. After a
// drain, accd hands Holes to CheckConsistency — the same bookkeeping the
// in-process Workload does for the terminals it drives directly.
type HoleTracker struct {
	w Workload // reuse the workload's hole map and locking
}

// NewHoleTracker returns an empty tracker.
func NewHoleTracker() *HoleTracker {
	return &HoleTracker{w: Workload{holes: make(map[DistrictKey]map[int64]bool)}}
}

// Observe records args of a compensated new-order; it matches the
// server.Config.OnOutcome signature. Safe for concurrent use.
func (t *HoleTracker) Observe(txnType string, args any, err error) {
	if txnType != "new_order" || !core.IsCompensated(err) {
		return
	}
	if a, ok := args.(*NewOrderArgs); ok {
		t.w.addHole(a.WID, a.DID, a.ONum)
	}
}

// Holes returns the compensated order numbers per district.
func (t *HoleTracker) Holes() map[DistrictKey]map[int64]bool {
	return t.w.Holes()
}
