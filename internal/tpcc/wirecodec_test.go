package tpcc

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"accdb/internal/server/wire"
)

// randArgs builds one randomized instance per registered type, including
// degenerate shapes (empty slices, empty strings, negative and extreme
// values) the fixed layouts must carry exactly.
func randArgs(rng *rand.Rand) map[string]any {
	i64 := func() int64 { return rng.Int63() - rng.Int63() }
	str := func() string {
		// Printable ASCII only: JSON replaces invalid UTF-8 with U+FFFD,
		// and the comparison is against the JSON path.
		n := rng.Intn(17)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(' ' + rng.Intn(95))
		}
		return string(b)
	}
	vec := func() []int64 {
		n := rng.Intn(6)
		if n == 0 && rng.Intn(2) == 0 {
			return nil
		}
		v := make([]int64, n)
		for i := range v {
			v[i] = i64()
		}
		return v
	}
	no := &NewOrderArgs{
		WID: i64(), DID: i64(), CID: i64(),
		InvalidItem: rng.Intn(2) == 1,
		ONum:        i64(), WTax: i64(), DTax: i64(), CDiscount: i64(),
		Filled: vec(), Amounts: vec(), Total: i64(),
	}
	for i, n := 0, rng.Intn(5); i < n; i++ {
		no.Lines = append(no.Lines, OrderLineReq{ItemID: i64(), SupplyW: i64(), Quantity: i64()})
	}
	return map[string]any{
		"new_order": no,
		"payment": &PaymentArgs{
			WID: i64(), DID: i64(), CWID: i64(), CDID: i64(), CID: i64(),
			CLast: str(), Amount: i64(), HID: i64(), Date: i64(), ResolvedCID: i64(),
		},
		"delivery": &DeliveryArgs{
			WID: i64(), Carrier: i64(), Date: i64(),
			Claimed: vec(), Amounts: vec(), Customers: vec(),
		},
		"order_status": &OrderStatusArgs{WID: i64(), DID: i64(), CID: i64(), CLast: str()},
		"stock_level":  &StockLevelArgs{WID: i64(), DID: i64(), Threshold: i64(), Orders: i64()},
	}
}

// canonical renders an args record with nil and empty slices identified, so
// the binary path (which does not distinguish them) can be compared against
// the JSON path (which does).
func canonical(t *testing.T, v any) string {
	t.Helper()
	rv := reflect.ValueOf(v).Elem()
	cp := reflect.New(rv.Type())
	cp.Elem().Set(rv)
	for i := 0; i < cp.Elem().NumField(); i++ {
		f := cp.Elem().Field(i)
		if f.Kind() == reflect.Slice && f.IsNil() {
			f.Set(reflect.MakeSlice(f.Type(), 0, 0))
		}
	}
	b, err := json.Marshal(cp.Interface())
	if err != nil {
		t.Fatalf("canonical marshal: %v", err)
	}
	return string(b)
}

// TestBinaryCodecRoundTrip checks, for every registered TPC-C type, that
// the binary wire layout carries exactly what the JSON path carries:
// decode(encode(x)) == x and == jsonRoundTrip(x) for randomized records.
func TestBinaryCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for iter := 0; iter < 200; iter++ {
		for name, orig := range randArgs(rng) {
			c := wire.CodecFor(name)
			if c == nil {
				t.Fatalf("no codec registered for %q", name)
			}
			if !c.Handles(orig) {
				t.Fatalf("%s codec does not handle its own type %T", name, orig)
			}
			enc := c.Encode(nil, orig)
			dec := c.GetArgs()
			if err := c.Decode(enc, dec); err != nil {
				t.Fatalf("%s: decode: %v", name, err)
			}
			want := canonical(t, orig)
			if got := canonical(t, dec); got != want {
				t.Fatalf("%s: binary round trip diverged\n got %s\nwant %s", name, got, want)
			}
			jb, err := json.Marshal(orig)
			if err != nil {
				t.Fatal(err)
			}
			jdec := c.GetArgs()
			if err := json.Unmarshal(jb, jdec); err != nil {
				t.Fatal(err)
			}
			if got := canonical(t, jdec); got != want {
				t.Fatalf("%s: JSON round trip diverged\n got %s\nwant %s", name, got, want)
			}
			c.PutArgs(dec)
			c.PutArgs(jdec)
		}
	}
}

// TestBinaryCodecInPlaceReuse decodes records of shrinking and growing
// sizes into the same pooled instance: leftover state from a previous
// decode must never leak through.
func TestBinaryCodecInPlaceReuse(t *testing.T) {
	c := wire.CodecFor("new_order")
	big := &NewOrderArgs{
		WID: 1, Lines: []OrderLineReq{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}},
		Filled: []int64{10, 20, 30}, Amounts: []int64{1, 2, 3}, Total: 99,
	}
	small := &NewOrderArgs{WID: 2, Lines: []OrderLineReq{{9, 9, 9}}, Filled: []int64{5}, Amounts: []int64{6}}
	dst := c.GetArgs()
	for i := 0; i < 4; i++ {
		src := big
		if i%2 == 1 {
			src = small
		}
		c.Reset(dst)
		if err := c.Decode(c.Encode(nil, src), dst); err != nil {
			t.Fatal(err)
		}
		if got, want := canonical(t, dst), canonical(t, src); got != want {
			t.Fatalf("reuse iteration %d:\n got %s\nwant %s", i, got, want)
		}
	}
	c.PutArgs(dst)
}

// TestBinaryCodecEncodeAllocFree asserts encoding into a pooled buffer and
// decoding into a pooled record allocate nothing once warm — the property
// the server and client hot paths rely on.
func TestBinaryCodecEncodeAllocFree(t *testing.T) {
	c := wire.CodecFor("new_order")
	src := &NewOrderArgs{
		WID: 3, DID: 4, CID: 5,
		Lines:  []OrderLineReq{{1, 1, 5}, {2, 1, 3}},
		Filled: []int64{5, 3}, Amounts: []int64{50, 30}, Total: 80,
	}
	buf := wire.GetBuffer()
	defer wire.PutBuffer(buf)
	dst := c.GetArgs().(*NewOrderArgs)
	defer c.PutArgs(dst)
	run := func() {
		*buf = c.Encode((*buf)[:0], src)
		c.Reset(dst)
		if err := c.Decode(*buf, dst); err != nil {
			t.Fatal(err)
		}
	}
	run()
	if allocs := testing.AllocsPerRun(200, run); allocs != 0 {
		t.Fatalf("binary codec allocates %.1f objects per round trip, want 0", allocs)
	}
}

// FuzzBinaryArgsDecode feeds hostile payloads to every registered codec:
// decode must reject or accept without panicking, and anything accepted
// must re-encode cleanly.
func FuzzBinaryArgsDecode(f *testing.F) {
	names := []string{"new_order", "payment", "delivery", "order_status", "stock_level"}
	rng := rand.New(rand.NewSource(7))
	for name, v := range randArgs(rng) {
		c := wire.CodecFor(name)
		f.Add(name, c.Encode(nil, v))
	}
	f.Add("payment", []byte{})
	f.Add("delivery", []byte{0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, name string, data []byte) {
		var c *wire.ArgCodec
		for _, n := range names {
			if n == name {
				c = wire.CodecFor(n)
			}
		}
		if c == nil {
			return
		}
		v := c.GetArgs()
		defer c.PutArgs(v)
		if err := c.Decode(data, v); err != nil {
			return
		}
		enc := c.Encode(nil, v)
		w := c.GetArgs()
		defer c.PutArgs(w)
		if err := c.Decode(enc, w); err != nil {
			t.Fatalf("%s: re-decode of accepted record failed: %v", name, err)
		}
	})
}
