package tpcc

import (
	"accdb/internal/core"
	"accdb/internal/spi"
)

// Table names.
const (
	TWarehouse = "warehouse"
	TDistrict  = "district"
	TCustomer  = "customer"
	THistory   = "history"
	TNewOrder  = "new_order"
	TOrders    = "orders"
	TOrderLine = "order_line"
	TItem      = "item"
	TStock     = "stock"
)

// Secondary index names.
const (
	IdxCustomerByLast = "by_last"
	IdxOrdersByCust   = "by_cust"
	IdxNewOrderByDist = "by_dist"
)

// Monetary values are stored in cents and rates (tax, discount) in basis
// points, so the consistency conditions are exact integer identities.

var (
	warehouseSchema = spi.MustSchema(TWarehouse, []spi.Column{
		{Name: "w_id", Kind: spi.KindInt},
		{Name: "w_name", Kind: spi.KindString},
		{Name: "w_street_1", Kind: spi.KindString},
		{Name: "w_street_2", Kind: spi.KindString},
		{Name: "w_city", Kind: spi.KindString},
		{Name: "w_state", Kind: spi.KindString},
		{Name: "w_zip", Kind: spi.KindString},
		{Name: "w_tax", Kind: spi.KindInt},
		{Name: "w_ytd", Kind: spi.KindInt},
	}, "w_id")

	districtSchema = spi.MustSchema(TDistrict, []spi.Column{
		{Name: "d_w_id", Kind: spi.KindInt},
		{Name: "d_id", Kind: spi.KindInt},
		{Name: "d_name", Kind: spi.KindString},
		{Name: "d_street_1", Kind: spi.KindString},
		{Name: "d_city", Kind: spi.KindString},
		{Name: "d_state", Kind: spi.KindString},
		{Name: "d_zip", Kind: spi.KindString},
		{Name: "d_tax", Kind: spi.KindInt},
		{Name: "d_ytd", Kind: spi.KindInt},
		{Name: "d_next_o_id", Kind: spi.KindInt},
	}, "d_w_id", "d_id")

	customerSchema = spi.MustSchema(TCustomer, []spi.Column{
		{Name: "c_w_id", Kind: spi.KindInt},
		{Name: "c_d_id", Kind: spi.KindInt},
		{Name: "c_id", Kind: spi.KindInt},
		{Name: "c_first", Kind: spi.KindString},
		{Name: "c_middle", Kind: spi.KindString},
		{Name: "c_last", Kind: spi.KindString},
		{Name: "c_street_1", Kind: spi.KindString},
		{Name: "c_city", Kind: spi.KindString},
		{Name: "c_state", Kind: spi.KindString},
		{Name: "c_zip", Kind: spi.KindString},
		{Name: "c_phone", Kind: spi.KindString},
		{Name: "c_since", Kind: spi.KindInt},
		{Name: "c_credit", Kind: spi.KindString},
		{Name: "c_credit_lim", Kind: spi.KindInt},
		{Name: "c_discount", Kind: spi.KindInt},
		{Name: "c_balance", Kind: spi.KindInt},
		{Name: "c_ytd_payment", Kind: spi.KindInt},
		{Name: "c_payment_cnt", Kind: spi.KindInt},
		{Name: "c_delivery_cnt", Kind: spi.KindInt},
		{Name: "c_data", Kind: spi.KindString},
	}, "c_w_id", "c_d_id", "c_id")

	historySchema = spi.MustSchema(THistory, []spi.Column{
		{Name: "h_id", Kind: spi.KindInt},
		{Name: "h_c_id", Kind: spi.KindInt},
		{Name: "h_c_d_id", Kind: spi.KindInt},
		{Name: "h_c_w_id", Kind: spi.KindInt},
		{Name: "h_d_id", Kind: spi.KindInt},
		{Name: "h_w_id", Kind: spi.KindInt},
		{Name: "h_date", Kind: spi.KindInt},
		{Name: "h_amount", Kind: spi.KindInt},
		{Name: "h_data", Kind: spi.KindString},
	}, "h_id")

	newOrderSchema = spi.MustSchema(TNewOrder, []spi.Column{
		{Name: "no_w_id", Kind: spi.KindInt},
		{Name: "no_d_id", Kind: spi.KindInt},
		{Name: "no_o_id", Kind: spi.KindInt},
	}, "no_w_id", "no_d_id", "no_o_id")

	ordersSchema = spi.MustSchema(TOrders, []spi.Column{
		{Name: "o_w_id", Kind: spi.KindInt},
		{Name: "o_d_id", Kind: spi.KindInt},
		{Name: "o_id", Kind: spi.KindInt},
		{Name: "o_c_id", Kind: spi.KindInt},
		{Name: "o_entry_d", Kind: spi.KindInt},
		{Name: "o_carrier_id", Kind: spi.KindInt}, // 0 = not delivered
		{Name: "o_ol_cnt", Kind: spi.KindInt},
		{Name: "o_all_local", Kind: spi.KindInt},
	}, "o_w_id", "o_d_id", "o_id")

	orderLineSchema = spi.MustSchema(TOrderLine, []spi.Column{
		{Name: "ol_w_id", Kind: spi.KindInt},
		{Name: "ol_d_id", Kind: spi.KindInt},
		{Name: "ol_o_id", Kind: spi.KindInt},
		{Name: "ol_number", Kind: spi.KindInt},
		{Name: "ol_i_id", Kind: spi.KindInt},
		{Name: "ol_supply_w_id", Kind: spi.KindInt},
		{Name: "ol_delivery_d", Kind: spi.KindInt}, // 0 = not delivered
		{Name: "ol_quantity", Kind: spi.KindInt},
		{Name: "ol_amount", Kind: spi.KindInt},
		{Name: "ol_dist_info", Kind: spi.KindString},
	}, "ol_w_id", "ol_d_id", "ol_o_id", "ol_number")

	itemSchema = spi.MustSchema(TItem, []spi.Column{
		{Name: "i_id", Kind: spi.KindInt},
		{Name: "i_im_id", Kind: spi.KindInt},
		{Name: "i_name", Kind: spi.KindString},
		{Name: "i_price", Kind: spi.KindInt},
		{Name: "i_data", Kind: spi.KindString},
	}, "i_id")

	stockSchema = spi.MustSchema(TStock, []spi.Column{
		{Name: "s_w_id", Kind: spi.KindInt},
		{Name: "s_i_id", Kind: spi.KindInt},
		{Name: "s_quantity", Kind: spi.KindInt},
		{Name: "s_dist_info", Kind: spi.KindString},
		{Name: "s_ytd", Kind: spi.KindInt},
		{Name: "s_order_cnt", Kind: spi.KindInt},
		{Name: "s_remote_cnt", Kind: spi.KindInt},
		{Name: "s_data", Kind: spi.KindString},
	}, "s_w_id", "s_i_id")
)

// CreateSchema builds the nine TPC-C tables in db with the partition
// granules the decomposition relies on:
//
//   - orders is partitioned per district (the unit order-status scans and
//     new-order appends to — the page-lock analogue);
//   - order_line is partitioned per order (the unit the interstep
//     assertions quantify over);
//   - new_order is deliberately NOT partitioned: delivery pops the head of
//     the queue while new-order appends at the tail, and in Ingres those
//     land on different index pages, so they must not collide on a shared
//     granule. Claims and inserts use row locks via the by_dist index.
//
// Secondary indexes support the customer-by-last-name, orders-by-customer
// and queue-head lookups.
func CreateSchema(db *core.DB) error {
	if _, err := db.CreateTable(warehouseSchema); err != nil {
		return err
	}
	if _, err := db.CreateTable(districtSchema); err != nil {
		return err
	}
	ct, err := db.CreateTable(customerSchema)
	if err != nil {
		return err
	}
	if err := ct.AddIndex(spi.IndexDef{
		Name: IdxCustomerByLast, Columns: []string{"c_w_id", "c_d_id", "c_last"},
	}); err != nil {
		return err
	}
	if _, err := db.CreateTable(historySchema); err != nil {
		return err
	}
	nt, err := db.CreateTable(newOrderSchema)
	if err != nil {
		return err
	}
	if err := nt.AddIndex(spi.IndexDef{
		Name: IdxNewOrderByDist, Columns: []string{"no_w_id", "no_d_id"},
	}); err != nil {
		return err
	}
	ot, err := db.CreateTable(ordersSchema, "o_w_id", "o_d_id")
	if err != nil {
		return err
	}
	if err := ot.AddIndex(spi.IndexDef{
		Name: IdxOrdersByCust, Columns: []string{"o_w_id", "o_d_id", "o_c_id"},
	}); err != nil {
		return err
	}
	if _, err := db.CreateTable(orderLineSchema, "ol_w_id", "ol_d_id", "ol_o_id"); err != nil {
		return err
	}
	if _, err := db.CreateTable(itemSchema); err != nil {
		return err
	}
	if _, err := db.CreateTable(stockSchema); err != nil {
		return err
	}
	return nil
}
