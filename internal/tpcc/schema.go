package tpcc

import (
	"accdb/internal/core"
	"accdb/internal/storage"
)

// Table names.
const (
	TWarehouse = "warehouse"
	TDistrict  = "district"
	TCustomer  = "customer"
	THistory   = "history"
	TNewOrder  = "new_order"
	TOrders    = "orders"
	TOrderLine = "order_line"
	TItem      = "item"
	TStock     = "stock"
)

// Secondary index names.
const (
	IdxCustomerByLast = "by_last"
	IdxOrdersByCust   = "by_cust"
	IdxNewOrderByDist = "by_dist"
)

// Monetary values are stored in cents and rates (tax, discount) in basis
// points, so the consistency conditions are exact integer identities.

var (
	warehouseSchema = storage.MustSchema(TWarehouse, []storage.Column{
		{Name: "w_id", Kind: storage.KindInt},
		{Name: "w_name", Kind: storage.KindString},
		{Name: "w_street_1", Kind: storage.KindString},
		{Name: "w_street_2", Kind: storage.KindString},
		{Name: "w_city", Kind: storage.KindString},
		{Name: "w_state", Kind: storage.KindString},
		{Name: "w_zip", Kind: storage.KindString},
		{Name: "w_tax", Kind: storage.KindInt},
		{Name: "w_ytd", Kind: storage.KindInt},
	}, "w_id")

	districtSchema = storage.MustSchema(TDistrict, []storage.Column{
		{Name: "d_w_id", Kind: storage.KindInt},
		{Name: "d_id", Kind: storage.KindInt},
		{Name: "d_name", Kind: storage.KindString},
		{Name: "d_street_1", Kind: storage.KindString},
		{Name: "d_city", Kind: storage.KindString},
		{Name: "d_state", Kind: storage.KindString},
		{Name: "d_zip", Kind: storage.KindString},
		{Name: "d_tax", Kind: storage.KindInt},
		{Name: "d_ytd", Kind: storage.KindInt},
		{Name: "d_next_o_id", Kind: storage.KindInt},
	}, "d_w_id", "d_id")

	customerSchema = storage.MustSchema(TCustomer, []storage.Column{
		{Name: "c_w_id", Kind: storage.KindInt},
		{Name: "c_d_id", Kind: storage.KindInt},
		{Name: "c_id", Kind: storage.KindInt},
		{Name: "c_first", Kind: storage.KindString},
		{Name: "c_middle", Kind: storage.KindString},
		{Name: "c_last", Kind: storage.KindString},
		{Name: "c_street_1", Kind: storage.KindString},
		{Name: "c_city", Kind: storage.KindString},
		{Name: "c_state", Kind: storage.KindString},
		{Name: "c_zip", Kind: storage.KindString},
		{Name: "c_phone", Kind: storage.KindString},
		{Name: "c_since", Kind: storage.KindInt},
		{Name: "c_credit", Kind: storage.KindString},
		{Name: "c_credit_lim", Kind: storage.KindInt},
		{Name: "c_discount", Kind: storage.KindInt},
		{Name: "c_balance", Kind: storage.KindInt},
		{Name: "c_ytd_payment", Kind: storage.KindInt},
		{Name: "c_payment_cnt", Kind: storage.KindInt},
		{Name: "c_delivery_cnt", Kind: storage.KindInt},
		{Name: "c_data", Kind: storage.KindString},
	}, "c_w_id", "c_d_id", "c_id")

	historySchema = storage.MustSchema(THistory, []storage.Column{
		{Name: "h_id", Kind: storage.KindInt},
		{Name: "h_c_id", Kind: storage.KindInt},
		{Name: "h_c_d_id", Kind: storage.KindInt},
		{Name: "h_c_w_id", Kind: storage.KindInt},
		{Name: "h_d_id", Kind: storage.KindInt},
		{Name: "h_w_id", Kind: storage.KindInt},
		{Name: "h_date", Kind: storage.KindInt},
		{Name: "h_amount", Kind: storage.KindInt},
		{Name: "h_data", Kind: storage.KindString},
	}, "h_id")

	newOrderSchema = storage.MustSchema(TNewOrder, []storage.Column{
		{Name: "no_w_id", Kind: storage.KindInt},
		{Name: "no_d_id", Kind: storage.KindInt},
		{Name: "no_o_id", Kind: storage.KindInt},
	}, "no_w_id", "no_d_id", "no_o_id")

	ordersSchema = storage.MustSchema(TOrders, []storage.Column{
		{Name: "o_w_id", Kind: storage.KindInt},
		{Name: "o_d_id", Kind: storage.KindInt},
		{Name: "o_id", Kind: storage.KindInt},
		{Name: "o_c_id", Kind: storage.KindInt},
		{Name: "o_entry_d", Kind: storage.KindInt},
		{Name: "o_carrier_id", Kind: storage.KindInt}, // 0 = not delivered
		{Name: "o_ol_cnt", Kind: storage.KindInt},
		{Name: "o_all_local", Kind: storage.KindInt},
	}, "o_w_id", "o_d_id", "o_id")

	orderLineSchema = storage.MustSchema(TOrderLine, []storage.Column{
		{Name: "ol_w_id", Kind: storage.KindInt},
		{Name: "ol_d_id", Kind: storage.KindInt},
		{Name: "ol_o_id", Kind: storage.KindInt},
		{Name: "ol_number", Kind: storage.KindInt},
		{Name: "ol_i_id", Kind: storage.KindInt},
		{Name: "ol_supply_w_id", Kind: storage.KindInt},
		{Name: "ol_delivery_d", Kind: storage.KindInt}, // 0 = not delivered
		{Name: "ol_quantity", Kind: storage.KindInt},
		{Name: "ol_amount", Kind: storage.KindInt},
		{Name: "ol_dist_info", Kind: storage.KindString},
	}, "ol_w_id", "ol_d_id", "ol_o_id", "ol_number")

	itemSchema = storage.MustSchema(TItem, []storage.Column{
		{Name: "i_id", Kind: storage.KindInt},
		{Name: "i_im_id", Kind: storage.KindInt},
		{Name: "i_name", Kind: storage.KindString},
		{Name: "i_price", Kind: storage.KindInt},
		{Name: "i_data", Kind: storage.KindString},
	}, "i_id")

	stockSchema = storage.MustSchema(TStock, []storage.Column{
		{Name: "s_w_id", Kind: storage.KindInt},
		{Name: "s_i_id", Kind: storage.KindInt},
		{Name: "s_quantity", Kind: storage.KindInt},
		{Name: "s_dist_info", Kind: storage.KindString},
		{Name: "s_ytd", Kind: storage.KindInt},
		{Name: "s_order_cnt", Kind: storage.KindInt},
		{Name: "s_remote_cnt", Kind: storage.KindInt},
		{Name: "s_data", Kind: storage.KindString},
	}, "s_w_id", "s_i_id")
)

// CreateSchema builds the nine TPC-C tables in db with the partition
// granules the decomposition relies on:
//
//   - orders is partitioned per district (the unit order-status scans and
//     new-order appends to — the page-lock analogue);
//   - order_line is partitioned per order (the unit the interstep
//     assertions quantify over);
//   - new_order is deliberately NOT partitioned: delivery pops the head of
//     the queue while new-order appends at the tail, and in Ingres those
//     land on different index pages, so they must not collide on a shared
//     granule. Claims and inserts use row locks via the by_dist index.
//
// Secondary indexes support the customer-by-last-name, orders-by-customer
// and queue-head lookups.
func CreateSchema(db *core.DB) error {
	if _, err := db.CreateTable(warehouseSchema); err != nil {
		return err
	}
	if _, err := db.CreateTable(districtSchema); err != nil {
		return err
	}
	ct, err := db.CreateTable(customerSchema)
	if err != nil {
		return err
	}
	if err := ct.AddIndex(storage.IndexDef{
		Name: IdxCustomerByLast, Columns: []string{"c_w_id", "c_d_id", "c_last"},
	}); err != nil {
		return err
	}
	if _, err := db.CreateTable(historySchema); err != nil {
		return err
	}
	nt, err := db.CreateTable(newOrderSchema)
	if err != nil {
		return err
	}
	if err := nt.AddIndex(storage.IndexDef{
		Name: IdxNewOrderByDist, Columns: []string{"no_w_id", "no_d_id"},
	}); err != nil {
		return err
	}
	ot, err := db.CreateTable(ordersSchema, "o_w_id", "o_d_id")
	if err != nil {
		return err
	}
	if err := ot.AddIndex(storage.IndexDef{
		Name: IdxOrdersByCust, Columns: []string{"o_w_id", "o_d_id", "o_c_id"},
	}); err != nil {
		return err
	}
	if _, err := db.CreateTable(orderLineSchema, "ol_w_id", "ol_d_id", "ol_o_id"); err != nil {
		return err
	}
	if _, err := db.CreateTable(itemSchema); err != nil {
		return err
	}
	if _, err := db.CreateTable(stockSchema); err != nil {
		return err
	}
	return nil
}
