package tpcc

import (
	"accdb/internal/interference"
)

// Types bundles the design-time artifacts of the TPC-C decomposition: the
// transaction, step and assertion identifiers and the interference tables
// built from the analysis below. This is the product of §5.1's "each
// transaction type within the TPC-C benchmark was analyzed and decomposed
// into steps"; it defines eleven distinct forward step types, as the paper
// reports, plus three compensating step types.
type Types struct {
	Tables *interference.Tables

	// Transaction types.
	NewOrder, Payment, Delivery, OrderStatus, StockLevel interference.TxnTypeID

	// Shot transaction types of the partitioned deployment (DESIGN.md §16):
	// no_stock is the remote-stock shot of a cross-partition new-order, and
	// no_stock_undo its compensating reversal.
	NoStock, NoStockUndo interference.TxnTypeID

	// Forward step types (eleven).
	NO1, NO2, NOF interference.StepTypeID // new-order: setup, per-line, finalize
	P1, P2, P3    interference.StepTypeID // payment: customer+history, district, warehouse
	D1, D2, DF    interference.StepTypeID // delivery: claim, apply (per district), finalize
	OS            interference.StepTypeID // order-status (single step)
	SL            interference.StepTypeID // stock-level (single step)

	// Partitioned-deployment step types: NOR is new-order's remote-shot hook
	// step (no data access of its own), NOS the remote stock update, NOSU
	// its undo.
	NOR, NOS, NOSU interference.StepTypeID

	// Compensating step types.
	CSNewOrder, CSPayment, CSDelivery interference.StepTypeID

	// Interstep assertion types.
	ANoOpen   interference.AssertionID // "order o is still open and built up to line i"
	ADlvClaim interference.AssertionID // "claimed order o is delivered-in-progress by me"
}

// BuildTypes runs the design-time analysis and returns the tables.
//
// The analysis (following §4 and §5.1):
//
// Assertional interference — both assertions range only over items private
// to their owning instance (its own orders/new_order rows and order_line
// partition), so the conservative default (every step type interferes) is
// kept: a conflict materializes at run time only when another transaction's
// step writes those very items, which is exactly the delivery-vs-open-order
// collision the assertions exist to block. No NoInterference entries are
// needed for concurrency, because the one-level ACC resolves instance
// identity at the items themselves.
//
// Interleaving (exposure) — this is where the measured concurrency comes
// from. The analysis proves which step types may observe another transaction
// type's intermediate state:
//
//   - new-order, payment and stock-level steps interleave freely with
//     new-order, payment and delivery: the district row conflict between
//     new-order (d_next_o_id) and payment (d_ytd) is the paper's worked
//     example of updates that do not interfere, warehouse w_ytd vs w_tax
//     reads likewise, stock updates commute, and stock-level is explicitly
//     permitted read-committed by the benchmark.
//   - delivery steps interleave with payment (commuting customer-balance
//     updates) but NOT with new-order: delivery must never claim a
//     half-entered order (that is assertion ANoOpen's job, backed by the
//     exposure rule).
//   - order-status interleaves with nothing (the benchmark demands
//     serializable reads), and undecomposed/legacy transactions are blocked
//     from all intermediate state by the conservative default.
func BuildTypes() *Types {
	b := interference.NewBuilder()
	t := &Types{}

	t.NewOrder = b.TxnType("new_order", 0) // step count varies per instance
	t.Payment = b.TxnType("payment", 3)    //
	t.Delivery = b.TxnType("delivery", 0)  // 2 per district + finalize
	t.OrderStatus = b.TxnType("order_status", 1)
	t.StockLevel = b.TxnType("stock_level", 1)
	t.NoStock = b.TxnType("no_stock", 1)
	t.NoStockUndo = b.TxnType("no_stock_undo", 1)

	t.NO1 = b.StepType("NO1/setup")
	t.NO2 = b.StepType("NO2/order-line")
	t.NOF = b.StepType("NOF/finalize")
	t.P1 = b.StepType("P1/customer")
	t.P2 = b.StepType("P2/district")
	t.P3 = b.StepType("P3/warehouse")
	t.D1 = b.StepType("D1/claim")
	t.D2 = b.StepType("D2/apply")
	t.DF = b.StepType("DF/finalize")
	t.OS = b.StepType("OS")
	t.SL = b.StepType("SL")
	t.NOR = b.StepType("NOR/remote-shots")
	t.NOS = b.StepType("NOS/remote-stock")
	t.NOSU = b.StepType("NOSU/remote-stock-undo")
	t.CSNewOrder = b.StepType("CS/new_order")
	t.CSPayment = b.StepType("CS/payment")
	t.CSDelivery = b.StepType("CS/delivery")

	t.ANoOpen = b.Assertion("A_NO_OPEN")
	t.ADlvClaim = b.Assertion("A_DLV_CLAIM")

	// Assertional interference. §4's analysis carries over: "no inter-step
	// assertion [of new_order] is interfered with by any step of another
	// instance of new_order" — each instance writes only its own order's
	// rows, whose numbers the district counter keeps distinct. The same
	// instance-distinctness argument clears payment (disjoint tables), the
	// read-only steps, and the compensations. What remains interfering with
	// A_NO_OPEN is exactly delivery (D1 claims and D2 rewrites an order,
	// and CS/delivery re-opens one) — the hazard the assertion exists for —
	// plus legacy steps via the conservative default.
	// The partitioned shot steps touch only stock rows (NOS/NOSU) or nothing
	// at all (NOR, pure coordination), none of which appear in either
	// assertion's footprint.
	safeNO := []interference.StepTypeID{
		t.NO1, t.NO2, t.NOF, t.NOR, t.NOS, t.NOSU, t.P1, t.P2, t.P3, t.OS, t.SL,
		t.CSNewOrder, t.CSPayment,
	}
	for _, s := range safeNO {
		b.NoInterference(s, t.ANoOpen)
	}
	// A_DLV_CLAIM: a claimed order is out of the queue, so no other delivery
	// can claim it and no new-order can collide with its (older) number.
	safeDLV := []interference.StepTypeID{
		t.NO1, t.NO2, t.NOF, t.NOR, t.NOS, t.NOSU, t.P1, t.P2, t.P3, t.OS, t.SL,
		t.D1, t.D2, t.DF, t.CSNewOrder, t.CSPayment, t.CSDelivery,
	}
	for _, s := range safeDLV {
		b.NoInterference(s, t.ADlvClaim)
	}

	// Interleaving permissions derived above. NOR/NOS ride with the new-order
	// family: a remote stock shot commutes with other stock updates exactly
	// as NO2 does, and the hook step reads no data at all. NOSU interleaves
	// everywhere for the same reason the compensating steps do — an undo
	// shot is compensation and must never wait out an exposure mark.
	free := []interference.StepTypeID{t.NO1, t.NO2, t.NOF, t.NOR, t.NOS, t.P1, t.P2, t.P3, t.SL}
	holders := []interference.TxnTypeID{t.NewOrder, t.Payment, t.Delivery, t.NoStock, t.NoStockUndo}
	for _, step := range free {
		for _, h := range holders {
			b.AllowInterleaveEverywhere(step, h)
		}
	}
	for _, step := range []interference.StepTypeID{t.D1, t.D2, t.DF} {
		b.AllowInterleaveEverywhere(step, t.Payment)
	}
	// Compensating steps touch only items their own forward steps wrote, so
	// another transaction's intermediate state cannot mislead them; they
	// must interleave everywhere or a compensation could block on a retained
	// exposure mark and never finish — the unresolvable-deadlock §3.4 rules
	// out. (A compensating delivery re-inserting a new_order row must not
	// wait out an open new-order's exposure on the queue partition, and vice
	// versa.)
	for _, cs := range []interference.StepTypeID{t.CSNewOrder, t.CSPayment, t.CSDelivery, t.NOSU} {
		for _, h := range holders {
			b.AllowInterleaveEverywhere(cs, h)
		}
	}

	t.Tables = b.Build()
	return t
}
