package tpcc

import (
	"fmt"

	"accdb/internal/core"
	"accdb/internal/spi"
)

// --- delivery ----------------------------------------------------------------

// deliveryType builds the long-running delivery transaction: for every
// district, a claim step (D1) pops the oldest queued order and an apply step
// (D2) delivers it, then a finalize step (DF) closes the batch. Decomposing
// per district is what lets other work proceed in districts the delivery has
// already passed — the headline effect of Figure 3.
func (reg *Registration) deliveryType() *core.TxnType {
	t := reg.Types
	steps := make([]core.Step, 0, 2*reg.Scale.Districts+1)
	for d := 1; d <= reg.Scale.Districts; d++ {
		steps = append(steps, core.Step{
			Name: fmt.Sprintf("D1[%d]", d), Type: t.D1,
			Body: reg.dlvClaim(int64(d)),
		})
		steps = append(steps, core.Step{
			Name: fmt.Sprintf("D2[%d]", d), Type: t.D2,
			Pre:  []*core.Assertion{reg.aDlvClaim},
			Body: reg.dlvApply(int64(d)),
		})
	}
	steps = append(steps, core.Step{Name: "DF", Type: t.DF, Body: reg.dlvFinalize})
	return &core.TxnType{
		Name:                  "delivery",
		ID:                    t.Delivery,
		InterStatementCompute: true,
		Steps:                 steps,
		Comp: &core.Compensation{
			Type: t.CSDelivery,
			Body: reg.dlvCompensate,
		},
		EncodeArgs: encodeDelivery,
		AppendArgs: appendDelivery,
		DecodeArgs: decodeDelivery,
	}
}

// dlvClaim is D1: pop the oldest new_order entry of the district, if any.
// The claim works at row granularity through the by_dist index head — a
// delivery popping the queue head must not collide with new-orders appending
// at the tail (they use different index pages in the modelled system). An
// in-flight new-order's queue entry carries its exposure mark, so the claim
// can never steal a half-entered order.
func (reg *Registration) dlvClaim(d int64) func(*core.Ctx) error {
	return func(tc *core.Ctx) error {
		a := tc.Args().(*DeliveryArgs)
		row, err := tc.ClaimMin(TNewOrder, IdxNewOrderByDist,
			[]spi.Value{i64(a.WID), i64(d)})
		if err != nil {
			return err
		}
		if row != nil {
			a.Claimed[d-1] = row[colNoOID].Int64()
		} else {
			a.Claimed[d-1] = 0
		}
		return nil
	}
}

// dlvApply is D2: mark the claimed order delivered, stamp its lines, total
// their amounts, and credit the customer.
func (reg *Registration) dlvApply(d int64) func(*core.Ctx) error {
	return func(tc *core.Ctx) error {
		a := tc.Args().(*DeliveryArgs)
		o := a.Claimed[d-1]
		if o == 0 {
			return nil // district had no pending order: a skipped delivery
		}
		var cid int64
		err := tc.Update(TOrders, []spi.Value{i64(a.WID), i64(d), i64(o)}, func(row spi.Row) error {
			cid = row[colOCID].Int64()
			row[colOCarrier] = i64(a.Carrier)
			return nil
		})
		if err != nil {
			return err
		}
		var total int64
		err = tc.UpdateWhere(TOrderLine,
			[]spi.Value{i64(a.WID), i64(d), i64(o)},
			func(row spi.Row) (spi.Row, error) {
				total += row[colOLAmount].Int64()
				row[colOLDelivery] = i64(a.Date)
				return row, nil
			})
		if err != nil {
			return err
		}
		a.Amounts[d-1] = total
		a.Customers[d-1] = cid
		return tc.Update(TCustomer, []spi.Value{i64(a.WID), i64(d), i64(cid)}, func(row spi.Row) error {
			row[colCBalance] = i64(row[colCBalance].Int64() + total)
			row[colCDlvCnt] = i64(row[colCDlvCnt].Int64() + 1)
			return nil
		})
	}
}

// dlvFinalize is DF: the batch bookkeeping step (the benchmark records
// skipped deliveries in a result file; nothing in the database changes).
func (reg *Registration) dlvFinalize(tc *core.Ctx) error { return nil }

// dlvCompensate reverses the districts the delivery completed and
// un-claims a district caught between D1 and D2.
func (reg *Registration) dlvCompensate(tc *core.Ctx, completed int) error {
	a := tc.Args().(*DeliveryArgs)
	full := completed / 2    // districts with both D1 and D2 done
	half := completed%2 == 1 // one district claimed but not applied
	for d := int64(1); d <= int64(full); d++ {
		o := a.Claimed[d-1]
		if o == 0 {
			continue
		}
		err := tc.Update(TOrders, []spi.Value{i64(a.WID), i64(d), i64(o)}, func(row spi.Row) error {
			row[colOCarrier] = i64(0)
			return nil
		})
		if err != nil {
			return err
		}
		err = tc.UpdateWhere(TOrderLine,
			[]spi.Value{i64(a.WID), i64(d), i64(o)},
			func(row spi.Row) (spi.Row, error) {
				row[colOLDelivery] = i64(0)
				return row, nil
			})
		if err != nil {
			return err
		}
		amount, cid := a.Amounts[d-1], a.Customers[d-1]
		err = tc.Update(TCustomer, []spi.Value{i64(a.WID), i64(d), i64(cid)}, func(row spi.Row) error {
			row[colCBalance] = i64(row[colCBalance].Int64() - amount)
			row[colCDlvCnt] = i64(row[colCDlvCnt].Int64() - 1)
			return nil
		})
		if err != nil {
			return err
		}
		if err := tc.Insert(TNewOrder, spi.Row{i64(a.WID), i64(d), i64(o)}); err != nil {
			return err
		}
	}
	if half {
		d := int64(full + 1)
		if o := a.Claimed[d-1]; o != 0 {
			if err := tc.Insert(TNewOrder, spi.Row{i64(a.WID), i64(d), i64(o)}); err != nil {
				return err
			}
		}
	}
	return nil
}

// --- order-status ------------------------------------------------------------

// orderStatusType is the read-only single-step order-status transaction; the
// benchmark requires it serializable, which the conservative interleaving
// default provides.
func (reg *Registration) orderStatusType() *core.TxnType {
	t := reg.Types
	return &core.TxnType{
		Name:  "order_status",
		ID:    t.OrderStatus,
		Steps: []core.Step{{Name: "OS", Type: t.OS, Body: reg.orderStatus}},
	}
}

func (reg *Registration) orderStatus(tc *core.Ctx) error {
	a := tc.Args().(*OrderStatusArgs)
	cid, err := resolveCustomer(tc, a.WID, a.DID, a.CID, a.CLast)
	if err != nil {
		return err
	}
	if _, err := tc.Get(TCustomer, i64(a.WID), i64(a.DID), i64(cid)); err != nil {
		return err
	}
	rows, err := tc.LookupByIndex(TOrders, IdxOrdersByCust,
		[]spi.Value{i64(a.WID), i64(a.DID), i64(cid)})
	if err != nil {
		return err
	}
	if len(rows) == 0 {
		return nil
	}
	latest := int64(0)
	for _, row := range rows {
		if o := row[colOID].Int64(); o > latest {
			latest = o
		}
	}
	return tc.ScanPartition(TOrderLine,
		[]spi.Value{i64(a.WID), i64(a.DID), i64(latest)},
		func(spi.Row) error { return nil })
}

// --- stock-level -------------------------------------------------------------

// stockLevelType is the single-step stock-level transaction. The benchmark
// allows it to run read-committed; its interleave permissions encode exactly
// that, so it reads through exposure marks instead of stalling the district.
func (reg *Registration) stockLevelType() *core.TxnType {
	t := reg.Types
	return &core.TxnType{
		Name:  "stock_level",
		ID:    t.StockLevel,
		Steps: []core.Step{{Name: "SL", Type: t.SL, Body: reg.stockLevel}},
	}
}

func (reg *Registration) stockLevel(tc *core.Ctx) error {
	a := tc.Args().(*StockLevelArgs)
	drow, err := tc.Get(TDistrict, i64(a.WID), i64(a.DID))
	if err != nil {
		return err
	}
	next := drow[colDNext].Int64()
	lo := next - a.Orders
	if lo < 1 {
		lo = 1
	}
	items := make(map[int64]bool)
	for o := lo; o < next; o++ {
		err := tc.ScanPartition(TOrderLine,
			[]spi.Value{i64(a.WID), i64(a.DID), i64(o)},
			func(row spi.Row) error {
				items[row[colOLItem].Int64()] = true
				return nil
			})
		if err != nil {
			return err
		}
	}
	keys := make([][]spi.Value, 0, len(items))
	for item := range items {
		keys = append(keys, []spi.Value{i64(a.WID), i64(item)})
	}
	rows, err := tc.GetMany(TStock, keys)
	if err != nil {
		return err
	}
	low := 0
	for _, row := range rows {
		if row[colSQty].Int64() < a.Threshold {
			low++
		}
	}
	_ = low // reported to the terminal; nothing stored
	return nil
}
