package tpcc

import (
	"accdb/internal/core"
)

// Recovery-time consistency accounting. Conditions 2 and 3 of the TPC-C
// constraint verify consecutive order numbering, and a compensated
// new-order legitimately leaves a hole (§4 of the paper): the order number
// was consumed, the order itself semantically undone. A live Workload
// tracks its own holes as compensations happen; after a crash that record
// is gone, but the log is not — every compensated new-order's end-of-step
// work area carries its assigned order number.

// HolesFromRecovery derives the per-district order-number holes implied by
// a recovered log: every new_order compensated either before the crash
// (its compensation-done record is durable) or during recovery itself.
// Plain aborts (no completed step) restored the order counter in place and
// leave no hole; committed new-orders left real orders. The result feeds
// CheckConsistency on the recovered database.
func HolesFromRecovery(res *core.RecoverResult) map[DistrictKey]map[int64]bool {
	holes := make(map[DistrictKey]map[int64]bool)
	add := func(a *NewOrderArgs) {
		if a.ONum == 0 {
			return // compensated before an order number was assigned
		}
		k := DistrictKey{a.WID, a.DID}
		m, ok := holes[k]
		if !ok {
			m = make(map[int64]bool)
			holes[k] = m
		}
		m[a.ONum] = true
	}
	for _, t := range res.Analysis.Txns {
		if t.Type != "new_order" || !t.Compensated {
			continue
		}
		if v, err := decodeNewOrder(t.WorkArea); err == nil {
			add(v.(*NewOrderArgs))
		}
	}
	for _, ct := range res.CompensatedTxns {
		if ct.Type != "new_order" {
			continue
		}
		if a, ok := ct.Args.(*NewOrderArgs); ok {
			add(a)
		}
	}
	return holes
}

// MergeHoles seeds the workload's hole record with holes recovered from a
// log, so a post-recovery run reports the union to the consistency checker.
func (w *Workload) MergeHoles(h map[DistrictKey]map[int64]bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for k, m := range h {
		dst, ok := w.holes[k]
		if !ok {
			dst = make(map[int64]bool, len(m))
			w.holes[k] = dst
		}
		for o := range m {
			dst[o] = true
		}
	}
}

// AdvanceHistoryID moves the payment history-ID counter forward so a
// workload resumed over a recovered database cannot collide with history
// rows the replayed log already inserted.
func (w *Workload) AdvanceHistoryID(delta int64) { w.hID.Add(delta) }
