package tpcc

import (
	"encoding/binary"
	"fmt"
	"sort"

	"accdb/internal/core"
	"accdb/internal/partition"
	"accdb/internal/spi"
)

// Partitioned TPC-C (DESIGN.md §16). Warehouses stripe over partitions
// (PartitionOf); every table row lives with its warehouse except item,
// which is read-only and replicated into every partition by the loader. A
// new-order whose supply warehouses all share the home partition runs
// exactly as before; one with remote supply lines becomes a cross-partition
// transaction — the home transaction enters the order and its lines and
// updates local stock, while each remote partition's stock updates run as
// one no_stock shot. The shot's compensating undo (no_stock_undo) restocks
// from the quantities the shot actually took, recorded in its work area.

// noRemote is the NOR step: the hook the partition coordinator planted in
// the context runs the instance's remote shots while this transaction holds
// its exposure marks. On a single engine (no coordinator) it is a no-op, so
// the type definition runs unchanged outside a partitioned deployment.
func (reg *Registration) noRemote(tc *core.Ctx) error {
	hook, ok := partition.HookFrom(tc.Context())
	if !ok {
		return nil
	}
	return hook()
}

// NoStockArgs parameterizes one no_stock shot: the remote-partition supply
// lines of a single new-order that land on one partition.
type NoStockArgs struct {
	// WID is the order's home warehouse (diagnostics; every line's SupplyW
	// names the warehouse actually updated).
	WID   int64
	Lines []OrderLineReq

	// Work area: per line, the stock quantity actually deducted — what the
	// undo must restore.
	Filled []int64
}

func encodeNoStock(v any) []byte { return appendNoStock(nil, v) }

func appendNoStock(dst []byte, v any) []byte {
	a := v.(*NoStockArgs)
	dst = binary.AppendUvarint(dst, uint64(2+4*len(a.Lines)))
	dst = colI64(dst, a.WID)
	dst = colI64(dst, int64(len(a.Lines)))
	for i, l := range a.Lines {
		filled := int64(0)
		if i < len(a.Filled) {
			filled = a.Filled[i]
		}
		dst = colI64(dst, l.ItemID)
		dst = colI64(dst, l.SupplyW)
		dst = colI64(dst, l.Quantity)
		dst = colI64(dst, filled)
	}
	return dst
}

func decodeNoStock(data []byte) (any, error) {
	row, _, err := spi.UnmarshalRow(data)
	if err != nil {
		return nil, err
	}
	if len(row) < 2 {
		return nil, fmt.Errorf("tpcc: short no_stock work area")
	}
	a := &NoStockArgs{WID: row[0].Int64()}
	n := int(row[1].Int64())
	if len(row) != 2+4*n {
		return nil, fmt.Errorf("tpcc: malformed no_stock work area")
	}
	for i := 0; i < n; i++ {
		base := 2 + 4*i
		a.Lines = append(a.Lines, OrderLineReq{
			ItemID: row[base].Int64(), SupplyW: row[base+1].Int64(),
			Quantity: row[base+2].Int64(),
		})
		a.Filled = append(a.Filled, row[base+3].Int64())
	}
	return a, nil
}

// noStockType is the remote-stock shot: deplete each line's stock by the
// TPC-C rule, recording the quantities taken. Single-step, so it needs no
// compensation of its own — the global rollback runs no_stock_undo instead.
func (reg *Registration) noStockType() *core.TxnType {
	t := reg.Types
	return &core.TxnType{
		Name:       "no_stock",
		ID:         t.NoStock,
		Steps:      []core.Step{{Name: "NOS", Type: t.NOS, Body: reg.noStockApply}},
		EncodeArgs: encodeNoStock,
		AppendArgs: appendNoStock,
		DecodeArgs: decodeNoStock,
	}
}

func (reg *Registration) noStockApply(tc *core.Ctx) error {
	a := tc.Args().(*NoStockArgs)
	// Item order, like the compensating restock: concurrent shots then take
	// their stock locks in one global order within the partition.
	order := lineOrder(a.Lines)
	for _, i := range order {
		l := a.Lines[i]
		var taken int64
		err := tc.Update(TStock, []spi.Value{i64(l.SupplyW), i64(l.ItemID)}, func(row spi.Row) error {
			q := row[colSQty].Int64()
			var nq int64
			if q >= l.Quantity+10 {
				nq = q - l.Quantity
			} else {
				nq = q - l.Quantity + 91
			}
			taken = q - nq
			row[colSQty] = i64(nq)
			row[colSYTD] = i64(row[colSYTD].Int64() + l.Quantity)
			row[colSOrderCnt] = i64(row[colSOrderCnt].Int64() + 1)
			return nil
		})
		if err != nil {
			return err
		}
		a.Filled[i] = taken
	}
	return nil
}

// noStockUndoType semantically reverses a committed no_stock shot: restore
// the exact quantities its work area says were taken.
func (reg *Registration) noStockUndoType() *core.TxnType {
	t := reg.Types
	return &core.TxnType{
		Name:       "no_stock_undo",
		ID:         t.NoStockUndo,
		Steps:      []core.Step{{Name: "NOSU", Type: t.NOSU, Body: reg.noStockRevert}},
		EncodeArgs: encodeNoStock,
		AppendArgs: appendNoStock,
		DecodeArgs: decodeNoStock,
	}
}

func (reg *Registration) noStockRevert(tc *core.Ctx) error {
	a := tc.Args().(*NoStockArgs)
	order := lineOrder(a.Lines)
	for _, i := range order {
		l := a.Lines[i]
		taken, qty := a.Filled[i], l.Quantity
		err := tc.Update(TStock, []spi.Value{i64(l.SupplyW), i64(l.ItemID)}, func(row spi.Row) error {
			row[colSQty] = i64(row[colSQty].Int64() + taken)
			row[colSYTD] = i64(row[colSYTD].Int64() - qty)
			row[colSOrderCnt] = i64(row[colSOrderCnt].Int64() - 1)
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func lineOrder(lines []OrderLineReq) []int {
	order := make([]int, len(lines))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool { return lines[order[x]].ItemID < lines[order[y]].ItemID })
	return order
}

// InstallRoutes declares the TPC-C routing on a partition set: every
// transaction type homes on its warehouse's partition, and new-order splits
// its remote-partition supply lines into one no_stock shot per partition,
// undone by no_stock_undo. Call after RegisterPartitioned ran on each of
// the set's engines.
func InstallRoutes(set *partition.Set) {
	parts := set.Partitions()
	byWID := func(wid int64) int { return PartitionOf(wid, parts) }
	set.SetRoute("new_order", partition.Route{
		Home: func(args any) int { return byWID(args.(*NewOrderArgs).WID) },
		Split: func(args any) []partition.Shot {
			a := args.(*NewOrderArgs)
			home := byWID(a.WID)
			grouped := make(map[int]*NoStockArgs)
			for _, l := range a.Lines {
				p := byWID(l.SupplyW)
				if p == home {
					continue
				}
				g := grouped[p]
				if g == nil {
					g = &NoStockArgs{WID: a.WID}
					grouped[p] = g
				}
				g.Lines = append(g.Lines, l)
			}
			if len(grouped) == 0 {
				return nil
			}
			// Ascending partition order: every cross-partition new-order
			// visits partitions in the same sequence.
			ps := make([]int, 0, len(grouped))
			for p := range grouped {
				ps = append(ps, p)
			}
			sort.Ints(ps)
			shots := make([]partition.Shot, 0, len(ps))
			for _, p := range ps {
				g := grouped[p]
				g.Filled = make([]int64, len(g.Lines))
				shots = append(shots, partition.Shot{Partition: p, Type: "no_stock", Args: g})
			}
			return shots
		},
	})
	set.SetRoute("payment", partition.Route{
		Home: func(args any) int { return byWID(args.(*PaymentArgs).WID) },
	})
	set.SetRoute("delivery", partition.Route{
		Home: func(args any) int { return byWID(args.(*DeliveryArgs).WID) },
	})
	set.SetRoute("order_status", partition.Route{
		Home: func(args any) int { return byWID(args.(*OrderStatusArgs).WID) },
	})
	set.SetRoute("stock_level", partition.Route{
		Home: func(args any) int { return byWID(args.(*StockLevelArgs).WID) },
	})
	homeBySupply := func(args any) int {
		a := args.(*NoStockArgs)
		if len(a.Lines) == 0 {
			return 0
		}
		return byWID(a.Lines[0].SupplyW)
	}
	set.SetRoute("no_stock", partition.Route{Home: homeBySupply})
	set.SetRoute("no_stock_undo", partition.Route{Home: homeBySupply})
	// The forward shot's args double as the undo's: its work area carries
	// the filled quantities by the time an undo can run.
	set.SetUndo("no_stock", partition.UndoSpec{Type: "no_stock_undo"})
}

// LoadPartition populates one partition's database: the full item table
// (replicated, read-only) plus every warehouse the partition owns. With one
// partition it is exactly Load.
func LoadPartition(db *core.DB, s Scale, seed int64, part, parts int) error {
	if parts <= 1 {
		return Load(db, s, seed)
	}
	return loadWarehouses(db, s, seed, func(w int) bool {
		return PartitionOf(int64(w), parts) == part
	})
}

// CheckConsistencyPartitioned evaluates the full consistency battery over a
// partitioned deployment: each check's aggregation runs across every
// partition's store (rows are disjoint by warehouse), which is what lets
// condition 13 tie order lines in one partition to stock in another.
func CheckConsistencyPartitioned(dbs []*core.DB, s Scale, holes map[DistrictKey]map[int64]bool) []error {
	cats := make([]spi.Store, len(dbs))
	for i, db := range dbs {
		cats[i] = db.Store()
	}
	return runChecks(&checker{cats: cats, scale: s, holes: holes})
}
