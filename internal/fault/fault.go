// Package fault provides named, deterministic fault-injection points for
// crash-recovery testing. Layers that touch durable state declare points
// (fault.Declare) and consult them on their hot paths (fault.Point); a test
// arms a Controller with the effect it wants — a simulated crash, a torn
// (partial) write, an I/O error, or a delay — on the Nth hit of a point.
//
// Two properties drive the design:
//
//   - Disabled injection must cost nothing. When no Controller is active,
//     Point is a single atomic pointer load and a predicted nil-check —
//     exactly the nil-guard discipline the trace bus uses. Production code
//     never pays for the crash matrix.
//   - Armed injection must be deterministic. The controller's decisions
//     (which hit fires, what fraction of a torn write survives, how long a
//     delay lasts) derive from its seed and its hit counters alone, so a
//     failing crash-matrix case replays exactly from its (point, seed, n)
//     triple.
//
// A "crash" here is simulated, not a process kill: the point's owner reacts
// to the Crash outcome by freezing its durable state (see wal.Log.Crash),
// after which nothing later persists — the same prefix-of-the-log world a
// kill -9 leaves behind, but deterministic and runnable under -race inside
// one test process.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Effect is what an armed point does when it fires.
type Effect int

const (
	// None is the zero effect: the point is not armed.
	None Effect = iota
	// Crash simulates a process kill at the point: the owner must freeze
	// its durable state. The controller's Crashed channel closes.
	Crash
	// Torn simulates a partial (torn) write: the owner persists only
	// Outcome.KeepFrac of the in-flight bytes, then freezes as for Crash.
	Torn
	// Error makes the operation at the point fail with Outcome.Err.
	Error
	// Delay stalls the point for Outcome.Delay, widening race windows.
	Delay
)

// String names the effect.
func (e Effect) String() string {
	switch e {
	case None:
		return "none"
	case Crash:
		return "crash"
	case Torn:
		return "torn"
	case Error:
		return "error"
	case Delay:
		return "delay"
	default:
		return fmt.Sprintf("Effect(%d)", int(e))
	}
}

// Outcome is what a fired point must do. The zero Outcome (Effect None)
// means "proceed normally" and is what every un-armed or inactive point
// returns.
type Outcome struct {
	Effect Effect
	// KeepFrac, for Torn, is the fraction of the in-flight write to
	// persist before freezing (0 ≤ KeepFrac < 1), drawn from the
	// controller's seeded generator.
	KeepFrac float64
	// Delay, for Delay, is how long to stall.
	Delay time.Duration
	// Err, for Error, is the injected failure.
	Err error
}

// Spec arms one point on a Controller.
type Spec struct {
	// Effect is what happens when the point fires.
	Effect Effect
	// Nth fires the effect on the nth hit of the point (1-based). 0 means
	// every hit — only sensible for Delay.
	Nth uint64
	// Delay is the stall duration for Effect Delay (default 200µs).
	Delay time.Duration
}

// Info describes a declared injection point.
type Info struct {
	// Name identifies the point ("wal.sync.crash"). By convention the last
	// segment names the natural effect: crash, partial (torn), error, delay.
	Name string
	// Effect is the point's natural effect — what the crash matrix arms it
	// with.
	Effect Effect
	// Desc says what real-world failure the point simulates.
	Desc string
}

// registry holds every declared point; populated by package inits of the
// layers that own the points, read by the crash matrix.
var (
	regMu    sync.Mutex
	registry = make(map[string]Info)
)

// Declare registers an injection point so the crash matrix can enumerate
// it. Redeclaring a name replaces the entry (harmless; declarations are
// static). Call from package init.
func Declare(name string, effect Effect, desc string) {
	regMu.Lock()
	registry[name] = Info{Name: name, Effect: effect, Desc: desc}
	regMu.Unlock()
}

// Points returns every declared point, sorted by name for deterministic
// iteration.
func Points() []Info {
	regMu.Lock()
	out := make([]Info, 0, len(registry))
	for _, p := range registry {
		out = append(out, p)
	}
	regMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// active is the currently installed controller; nil disables every point.
var active atomic.Pointer[Controller]

// Point is the hot-path injection check. With no active controller it is a
// single atomic load returning the zero Outcome; with one, it counts the
// hit and returns the armed effect if this hit triggers it.
func Point(name string) Outcome {
	c := active.Load()
	if c == nil {
		return Outcome{}
	}
	return c.hit(name)
}

// Enabled reports whether a controller is active (used to gate test-only
// diagnostics, never correctness).
func Enabled() bool { return active.Load() != nil }

// Controller arms points and decides, deterministically from its seed and
// hit counters, when and how they fire. One controller is active at a time
// (Activate/Deactivate); the crash matrix runs points sequentially.
type Controller struct {
	mu    sync.Mutex
	rng   *rand.Rand
	armed map[string]*armedPoint
	hits  map[string]uint64

	crashed   chan struct{}
	crashOnce sync.Once
	// firedName records which point tripped the crash, for diagnostics.
	firedName atomic.Value
}

type armedPoint struct {
	spec  Spec
	fired bool
	// decided outcomes are pre-drawn at Arm time so firing order across
	// goroutines cannot perturb the random stream.
	keepFrac float64
	delay    time.Duration
}

// NewController creates a controller whose random choices derive only from
// seed.
func NewController(seed int64) *Controller {
	return &Controller{
		rng:     rand.New(rand.NewSource(seed)),
		armed:   make(map[string]*armedPoint),
		hits:    make(map[string]uint64),
		crashed: make(chan struct{}),
	}
}

// Arm installs spec on the named point. Random parameters (torn-write
// fraction, delay jitter) are drawn immediately from the controller's seed
// so concurrent firing order cannot change them.
func (c *Controller) Arm(name string, spec Spec) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ap := &armedPoint{spec: spec}
	ap.keepFrac = c.rng.Float64() * 0.95 // never keep everything: the write must tear
	d := spec.Delay
	if d == 0 {
		d = 200 * time.Microsecond
	}
	ap.delay = d + time.Duration(c.rng.Int63n(int64(d)+1))
	c.armed[name] = ap
}

// Activate installs the controller globally; every Point call consults it
// until Deactivate. Activating while another controller is active replaces
// it (the crash matrix is sequential; concurrent controllers are a test
// bug).
func (c *Controller) Activate() { active.Store(c) }

// Deactivate removes any active controller, restoring the zero-cost path.
func Deactivate() { active.Store(nil) }

// Crashed returns a channel closed when any armed Crash/Torn/Error effect
// fires — the harness's signal to stop the workload and begin recovery.
func (c *Controller) Crashed() <-chan struct{} { return c.crashed }

// FiredPoint returns the name of the point whose one-shot effect fired, or
// "" if none has.
func (c *Controller) FiredPoint() string {
	if v := c.firedName.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// Hits returns how many times the named point has been hit.
func (c *Controller) Hits(name string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits[name]
}

// InjectedError is the error type carried by Outcome.Err, so owners and
// tests can recognize injected failures.
type InjectedError struct{ Pointname string }

// Error implements error.
func (e *InjectedError) Error() string {
	return fmt.Sprintf("fault: injected I/O error at %s", e.Pointname)
}

func (c *Controller) hit(name string) Outcome {
	c.mu.Lock()
	c.hits[name]++
	n := c.hits[name]
	ap := c.armed[name]
	if ap == nil || ap.fired || (ap.spec.Nth != 0 && n != ap.spec.Nth) {
		c.mu.Unlock()
		return Outcome{}
	}
	if ap.spec.Nth != 0 {
		ap.fired = true // one-shot
	}
	out := Outcome{Effect: ap.spec.Effect}
	switch ap.spec.Effect {
	case Torn:
		out.KeepFrac = ap.keepFrac
	case Delay:
		out.Delay = ap.delay
	case Error:
		out.Err = &InjectedError{Pointname: name}
	}
	c.mu.Unlock()
	// One-shot destructive effects announce the simulated crash exactly
	// once, outside the mutex.
	switch ap.spec.Effect {
	case Crash, Torn, Error:
		c.crashOnce.Do(func() {
			c.firedName.Store(name)
			close(c.crashed)
		})
	}
	return out
}
