package fault

import (
	"errors"
	"testing"
	"time"
)

func TestDisabledPointIsZero(t *testing.T) {
	Deactivate()
	if o := Point("nope"); o.Effect != None {
		t.Fatalf("inactive point returned %v", o)
	}
}

func TestNthHitFiresOnce(t *testing.T) {
	c := NewController(1)
	c.Arm("p", Spec{Effect: Crash, Nth: 3})
	c.Activate()
	defer Deactivate()
	for i := 1; i <= 5; i++ {
		o := Point("p")
		if (i == 3) != (o.Effect == Crash) {
			t.Fatalf("hit %d: effect %v", i, o.Effect)
		}
	}
	select {
	case <-c.Crashed():
	default:
		t.Fatal("Crashed channel not closed after crash fired")
	}
	if c.FiredPoint() != "p" {
		t.Fatalf("FiredPoint = %q", c.FiredPoint())
	}
	if c.Hits("p") != 5 {
		t.Fatalf("Hits = %d", c.Hits("p"))
	}
}

func TestDeterministicTornFraction(t *testing.T) {
	frac := func() float64 {
		c := NewController(42)
		c.Arm("p", Spec{Effect: Torn, Nth: 1})
		c.Activate()
		defer Deactivate()
		return Point("p").KeepFrac
	}
	a, b := frac(), frac()
	if a != b {
		t.Fatalf("same seed drew different fractions: %v vs %v", a, b)
	}
	if a < 0 || a >= 1 {
		t.Fatalf("KeepFrac out of range: %v", a)
	}
}

func TestErrorOutcomeTyped(t *testing.T) {
	c := NewController(7)
	c.Arm("io", Spec{Effect: Error, Nth: 1})
	c.Activate()
	defer Deactivate()
	o := Point("io")
	var ie *InjectedError
	if !errors.As(o.Err, &ie) || ie.Pointname != "io" {
		t.Fatalf("expected InjectedError for io, got %v", o.Err)
	}
}

func TestDelayFiresEveryHitWhenNthZero(t *testing.T) {
	c := NewController(9)
	c.Arm("d", Spec{Effect: Delay, Nth: 0, Delay: time.Microsecond})
	c.Activate()
	defer Deactivate()
	for i := 0; i < 3; i++ {
		if o := Point("d"); o.Effect != Delay || o.Delay <= 0 {
			t.Fatalf("hit %d: %+v", i, o)
		}
	}
	select {
	case <-c.Crashed():
		t.Fatal("delay must not crash")
	default:
	}
}

func TestDeclareAndPoints(t *testing.T) {
	Declare("zz.test.crash", Crash, "test point")
	found := false
	for _, p := range Points() {
		if p.Name == "zz.test.crash" {
			found = true
			if p.Effect != Crash {
				t.Fatalf("effect = %v", p.Effect)
			}
		}
	}
	if !found {
		t.Fatal("declared point not enumerated")
	}
}
