// Package backends links the default SPI backend implementations into a
// binary. Importing it for side effect registers the B+-tree heap store
// ("btree"), the simple ordered-map store ("memstore"), and the sharded
// lock manager with the accdb/internal/spi registry:
//
//	import _ "accdb/internal/backends"
//
// Composition roots (pkg/acc, the cmd binaries, the examples) blank-import
// this package; internal/core itself deliberately does not, so the scheduler
// stays free of any dependency on concrete backends (see tools/doccheck
// -boundary). A program embedding the engine over a custom spi.Store can
// skip this import entirely and use core.WithStore.
package backends

import (
	_ "accdb/internal/lock"     // registers the default spi.LockService
	_ "accdb/internal/memstore" // registers the "memstore" row store
	_ "accdb/internal/storage"  // registers the "btree" row store
)
