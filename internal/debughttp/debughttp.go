// Package debughttp is the shared debug/observability HTTP endpoint both
// accbench and accd mount behind their -metrics-addr flags:
//
//	/metrics         engine, lock, WAL, trace, latency-anatomy and (when
//	                 wired) per-RPC counters in Prometheus text exposition
//	                 format
//	/debug/locks     lock-table snapshot: per-shard held locks (with the
//	                 paper's A/D/C kinds) and wait queues, as text
//	/debug/waitsfor  the waits-for graph in Graphviz DOT form
//	/debug/anatomy   live per-stage latency breakdown (p50/p90/p99) plus the
//	                 flight recorder's slowest recent transactions, as text
//	/debug/pprof/*   the standard Go profiler endpoints
//
// The engine pointer is swapped atomically each time the owner builds a
// fresh system (accbench builds one per sweep point per mode), so the
// endpoints always observe the system currently under load.
package debughttp

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"accdb/internal/core"
	"accdb/internal/trace"
)

// Server owns the debug endpoints. Configure with New and the setters, then
// Start it; the zero-value fields simply omit their sections.
type Server struct {
	tracer  *trace.Tracer
	anatomy *trace.Anatomy
	eng     atomic.Pointer[core.Engine]

	// rpc, when non-nil, appends the owner's RPC-layer series to /metrics
	// (accd passes the network server's WriteMetrics). A func field instead
	// of an interface keeps this package independent of internal/server.
	rpc func(io.Writer)

	// extra, when non-nil, appends a further owner-defined /metrics section
	// (accd passes the partition set's WriteMetrics in a partitioned
	// deployment).
	extra func(io.Writer)
}

// New creates a debug server over the given (possibly nil) trace bus and
// latency-anatomy recorder.
func New(tr *trace.Tracer, an *trace.Anatomy) *Server {
	return &Server{tracer: tr, anatomy: an}
}

// SetEngine publishes the engine currently under load.
func (s *Server) SetEngine(e *core.Engine) { s.eng.Store(e) }

// SetRPCMetrics registers an extra /metrics section writer (the network
// server's admission and per-type latency series). Call before Start.
func (s *Server) SetRPCMetrics(fn func(io.Writer)) { s.rpc = fn }

// SetExtraMetrics registers one more /metrics section writer (the partition
// set's routing and coordinator series). Call before Start.
func (s *Server) SetExtraMetrics(fn func(io.Writer)) { s.extra = fn }

// Start listens on addr and serves in the background. The listener error is
// returned synchronously so a bad -metrics-addr fails fast.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.metrics)
	mux.HandleFunc("/debug/locks", s.locks)
	mux.HandleFunc("/debug/waitsfor", s.waitsFor)
	mux.HandleFunc("/debug/anatomy", s.anatomyText)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return nil
}

// metrics renders the counters in the Prometheus text exposition format.
func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	eng := s.eng.Load()
	if eng != nil {
		es := eng.Snapshot()
		counter("accdb_txn_commits_total", "Committed transactions.", es.Commits)
		counter("accdb_txn_user_aborts_total", "User-initiated aborts.", es.UserAborts)
		counter("accdb_txn_compensations_total", "Compensated rollbacks.", es.Compensations)
		counter("accdb_txn_comp_failures_total", "Failed compensations.", es.CompFailures)
		counter("accdb_txn_step_retries_total", "Forward-step retries after scheduling aborts.", es.StepRetries)
		counter("accdb_txn_retries_total", "Whole-transaction restarts.", es.TxnRetries)

		ls := eng.Locks().Stats()
		counter("accdb_lock_acquisitions_total", "Lock acquisitions.", ls.Acquisitions)
		counter("accdb_lock_waits_total", "Blocked lock requests.", ls.Waits)
		fmt.Fprintf(w, "# HELP accdb_lock_wait_seconds_total Total time spent blocked on locks.\n"+
			"# TYPE accdb_lock_wait_seconds_total counter\naccdb_lock_wait_seconds_total %g\n",
			float64(ls.WaitNanos)/1e9)
		counter("accdb_lock_deadlocks_total", "Deadlocks detected.", ls.Deadlocks)
		counter("accdb_lock_victims_for_comp_total", "Forward steps aborted for a compensation.", ls.VictimsForComp)

		snap := eng.Locks().Snapshot()
		gauge("accdb_lock_held_grants", "Currently held lock-table entries.", snap.GrantCount())
		gauge("accdb_lock_waiters", "Currently blocked lock requests.", snap.WaiterCount())
		gauge("accdb_lock_waitsfor_edges", "Current waits-for graph edges.", len(snap.Edges))

		ws := eng.Log().Snapshot()
		counter("accdb_wal_records_total", "Log records appended.", ws.Records)
		counter("accdb_wal_forces_total", "Log forces.", ws.Forces)
		counter("accdb_wal_bytes_total", "Encoded log bytes.", ws.Bytes)

		vm := eng.Versions()
		counter("accdb_read_csn", "Current commit sequence number.", vm.CSN)
		counter("accdb_read_versions_published_total", "Row versions published to chains.", vm.Published)
		counter("accdb_read_snapshots_opened_total", "Snapshot read points ever opened.", vm.SnapshotsOpened)
		gauge("accdb_read_snapshots_live", "Currently open snapshots.", vm.LiveSnapshots)
		counter("accdb_read_gc_runs_total", "Version-chain reaper passes.", vm.GCRuns)
		counter("accdb_read_gc_pruned_total", "Versions reclaimed by the reaper.", vm.GCPruned)
		counter("accdb_read_gc_dropped_total", "Whole chains dropped by the reaper.", vm.GCDropped)
		gauge("accdb_read_version_chains", "Keys currently carrying a version chain.", vm.Chains)
		gauge("accdb_read_chain_versions", "Total chain entries across all keys.", vm.ChainVersions)

		for tier, sum := range eng.ReadTierSummaries() {
			fmt.Fprintf(w, "# HELP accdb_read_txn_seconds Read-only transaction latency quantiles by tier.\n"+
				"# TYPE accdb_read_txn_seconds summary\n"+
				"accdb_read_txn_seconds{tier=%q,quantile=\"0.5\"} %g\n"+
				"accdb_read_txn_seconds{tier=%q,quantile=\"0.95\"} %g\n"+
				"accdb_read_txn_seconds{tier=%q,quantile=\"0.99\"} %g\n"+
				"accdb_read_txn_seconds_count{tier=%q} %d\n",
				tier, sum.P50.Seconds(), tier, sum.P95.Seconds(),
				tier, sum.P99.Seconds(), tier, sum.Count)
		}
	}
	if s.tracer != nil {
		counter("accdb_trace_emitted_total", "Events accepted by the trace bus.", s.tracer.Emitted())
		counter("accdb_trace_dropped_total", "Events dropped by trace backpressure.", s.tracer.Drops())
		counter("accdb_trace_sink_errors_total", "Trace batches the sink rejected.", s.tracer.SinkErrors())
	}
	if s.anatomy != nil {
		s.anatomy.WriteMetrics(w)
	}
	if s.rpc != nil {
		s.rpc(w)
	}
	if s.extra != nil {
		s.extra(w)
	}
}

// locks renders the lock-table snapshot as text.
func (s *Server) locks(w http.ResponseWriter, _ *http.Request) {
	eng := s.eng.Load()
	if eng == nil {
		http.Error(w, "no engine under load yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, eng.Locks().Snapshot().String())
}

// waitsFor renders the waits-for graph as Graphviz DOT.
func (s *Server) waitsFor(w http.ResponseWriter, _ *http.Request) {
	eng := s.eng.Load()
	if eng == nil {
		http.Error(w, "no engine under load yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/vnd.graphviz")
	fmt.Fprint(w, eng.Locks().Snapshot().DOT())
}

// anatomyText renders the live per-stage latency breakdown.
func (s *Server) anatomyText(w http.ResponseWriter, _ *http.Request) {
	if s.anatomy == nil {
		http.Error(w, "latency anatomy disabled", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.anatomy.WriteText(w)
}
