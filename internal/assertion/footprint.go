package assertion

import "sort"

// Footprint is the design-time read set of an assertion: which columns of
// which tables its truth depends on, and over which tables it quantifies
// (so that inserts and deletes — not just updates — can invalidate it).
type Footprint struct {
	// Columns maps table -> set of referenced column names. Binding columns
	// are included: changing them moves rows in or out of the range.
	Columns map[string]map[string]bool
	// Quantified marks tables whose row *membership* the assertion depends
	// on (ForAll/Exists/CountEq/SumLE ranges).
	Quantified map[string]bool
}

// FootprintOf extracts the footprint of an assertion expression.
func FootprintOf(e Expr) *Footprint {
	f := &Footprint{
		Columns:    make(map[string]map[string]bool),
		Quantified: make(map[string]bool),
	}
	f.walkExpr(e)
	return f
}

func (f *Footprint) addCol(table, col string) {
	m, ok := f.Columns[table]
	if !ok {
		m = make(map[string]bool)
		f.Columns[table] = m
	}
	m[col] = true
}

func (f *Footprint) walkTerm(t Term) {
	if c, ok := t.(Col); ok {
		f.addCol(c.Table, c.Column)
	}
}

func (f *Footprint) walkWhere(table string, where []Binding) {
	f.Quantified[table] = true
	for _, w := range where {
		f.addCol(table, w.Column)
		f.walkTerm(w.Value)
	}
}

func (f *Footprint) walkExpr(e Expr) {
	switch x := e.(type) {
	case Cmp:
		f.walkTerm(x.L)
		f.walkTerm(x.R)
	case And:
		for _, s := range x.Exprs {
			f.walkExpr(s)
		}
	case Or:
		for _, s := range x.Exprs {
			f.walkExpr(s)
		}
	case Not:
		f.walkExpr(x.E)
	case ForAll:
		f.walkWhere(x.Table, x.Where)
		f.walkExpr(x.Body)
	case Exists:
		f.walkWhere(x.Table, x.Where)
		if x.Body != nil {
			f.walkExpr(x.Body)
		}
	case CountEq:
		f.walkWhere(x.Table, x.Where)
		f.walkTerm(x.Equals)
	case SumLE:
		f.walkWhere(x.Table, x.Where)
		f.addCol(x.Table, x.Column)
		f.walkTerm(x.Max)
	}
}

// Tables returns the referenced tables in sorted order.
func (f *Footprint) Tables() []string {
	var out []string
	for t := range f.Columns {
		out = append(out, t)
	}
	for t := range f.Quantified {
		if _, ok := f.Columns[t]; !ok {
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}
