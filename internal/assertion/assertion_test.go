package assertion

import (
	"strings"
	"testing"
	"testing/quick"

	"accdb/internal/spi"
	"accdb/internal/storage"
)

// fixture: accounts(id, owner, balance) and holds(owner, total).
func fixture(t *testing.T) spi.Store {
	t.Helper()
	cat := storage.NewStore()
	acc, err := cat.Create(storage.MustSchema("accounts", []storage.Column{
		{Name: "id", Kind: storage.KindInt},
		{Name: "owner", Kind: storage.KindString},
		{Name: "balance", Kind: storage.KindInt},
	}, "id"))
	if err != nil {
		t.Fatal(err)
	}
	rows := []storage.Row{
		{storage.I64(1), storage.Str("ann"), storage.I64(100)},
		{storage.I64(2), storage.Str("ann"), storage.I64(50)},
		{storage.I64(3), storage.Str("bob"), storage.I64(-20)},
	}
	for _, r := range rows {
		if err := acc.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

func eval(t *testing.T, e Expr, cat spi.Store, env Env) bool {
	t.Helper()
	got, err := Eval(e, cat, env)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return got
}

func TestCmpOperators(t *testing.T) {
	cat := fixture(t)
	cases := []struct {
		op   CmpOp
		l, r int64
		want bool
	}{
		{EQ, 1, 1, true}, {EQ, 1, 2, false},
		{NE, 1, 2, true}, {NE, 2, 2, false},
		{LT, 1, 2, true}, {LT, 2, 2, false},
		{LE, 2, 2, true}, {LE, 3, 2, false},
		{GT, 3, 2, true}, {GT, 2, 2, false},
		{GE, 2, 2, true}, {GE, 1, 2, false},
	}
	for _, c := range cases {
		e := Cmp{Op: c.op, L: I64(c.l), R: I64(c.r)}
		if got := eval(t, e, cat, nil); got != c.want {
			t.Errorf("%s = %v, want %v", e, got, c.want)
		}
	}
}

func TestLogicalConnectives(t *testing.T) {
	cat := fixture(t)
	tr := Cmp{Op: EQ, L: I64(1), R: I64(1)}
	fa := Cmp{Op: EQ, L: I64(1), R: I64(2)}
	if !eval(t, And{[]Expr{tr, tr}}, cat, nil) || eval(t, And{[]Expr{tr, fa}}, cat, nil) {
		t.Error("And broken")
	}
	if !eval(t, Or{[]Expr{fa, tr}}, cat, nil) || eval(t, Or{[]Expr{fa, fa}}, cat, nil) {
		t.Error("Or broken")
	}
	if !eval(t, Not{fa}, cat, nil) || eval(t, Not{tr}, cat, nil) {
		t.Error("Not broken")
	}
}

func TestQuantifiers(t *testing.T) {
	cat := fixture(t)
	// ∀ accounts: balance >= -20 — true.
	all := ForAll{Table: "accounts", Body: Cmp{
		Op: GE, L: Col{"accounts", "balance"}, R: I64(-20),
	}}
	if !eval(t, all, cat, nil) {
		t.Error("ForAll should hold")
	}
	// ∀ accounts: balance >= 0 — false (bob).
	pos := ForAll{Table: "accounts", Body: Cmp{
		Op: GE, L: Col{"accounts", "balance"}, R: I64(0),
	}}
	if eval(t, pos, cat, nil) {
		t.Error("ForAll should fail on bob")
	}
	// Bounded ∀: ann's accounts are all positive.
	annPos := ForAll{
		Table: "accounts",
		Where: []Binding{{Column: "owner", Value: Const{storage.Str("ann")}}},
		Body:  Cmp{Op: GT, L: Col{"accounts", "balance"}, R: I64(0)},
	}
	if !eval(t, annPos, cat, nil) {
		t.Error("bounded ForAll should hold")
	}
	// ∃ an account with balance 50.
	ex := Exists{Table: "accounts", Body: Cmp{
		Op: EQ, L: Col{"accounts", "balance"}, R: I64(50),
	}}
	if !eval(t, ex, cat, nil) {
		t.Error("Exists should hold")
	}
	// Plain existence with binding.
	if !eval(t, Exists{Table: "accounts", Where: []Binding{{Column: "owner", Value: Const{storage.Str("bob")}}}}, cat, nil) {
		t.Error("plain Exists should hold")
	}
	if eval(t, Exists{Table: "accounts", Where: []Binding{{Column: "owner", Value: Const{storage.Str("eve")}}}}, cat, nil) {
		t.Error("Exists for eve should fail")
	}
	// ForAll over an empty range is vacuously true.
	if !eval(t, ForAll{
		Table: "accounts",
		Where: []Binding{{Column: "owner", Value: Const{storage.Str("eve")}}},
		Body:  Cmp{Op: EQ, L: I64(1), R: I64(2)},
	}, cat, nil) {
		t.Error("vacuous ForAll should hold")
	}
}

func TestCountAndSum(t *testing.T) {
	cat := fixture(t)
	if !eval(t, CountEq{
		Table:  "accounts",
		Where:  []Binding{{Column: "owner", Value: Const{storage.Str("ann")}}},
		Equals: I64(2),
	}, cat, nil) {
		t.Error("CountEq should hold")
	}
	if eval(t, CountEq{Table: "accounts", Equals: I64(2)}, cat, nil) {
		t.Error("unbounded CountEq should be 3")
	}
	if !eval(t, SumLE{
		Table: "accounts", Column: "balance", Max: I64(130),
	}, cat, nil) {
		t.Error("SumLE 130 should hold (sum=130)")
	}
	if eval(t, SumLE{Table: "accounts", Column: "balance", Max: I64(129)}, cat, nil) {
		t.Error("SumLE 129 should fail")
	}
}

func TestParams(t *testing.T) {
	cat := fixture(t)
	e := Exists{
		Table: "accounts",
		Where: []Binding{{Column: "owner", Value: Param{"who"}}},
	}
	if !eval(t, e, cat, Env{"who": storage.Str("ann")}) {
		t.Error("param binding failed")
	}
	if _, err := Eval(e, cat, nil); err == nil {
		t.Error("unbound param accepted")
	}
}

func TestEvalErrors(t *testing.T) {
	cat := fixture(t)
	if _, err := Eval(Exists{Table: "nope"}, cat, nil); err == nil {
		t.Error("missing table accepted")
	}
	if _, err := Eval(ForAll{Table: "accounts", Body: Cmp{
		Op: EQ, L: Col{"accounts", "nope"}, R: I64(1),
	}}, cat, nil); err == nil {
		t.Error("missing column accepted")
	}
	if _, err := Eval(Cmp{Op: EQ, L: Col{"accounts", "balance"}, R: I64(1)}, cat, nil); err == nil {
		t.Error("column outside quantifier accepted")
	}
	if _, err := Eval(Exists{Table: "accounts", Where: []Binding{{Column: "ghost", Value: I64(1)}}}, cat, nil); err == nil {
		t.Error("binding on missing column accepted")
	}
}

func TestNestedQuantifierBinding(t *testing.T) {
	cat := fixture(t)
	// ∀ a in accounts: ∃ b in accounts with same owner and balance >= a's —
	// true (each owner's max account witnesses).
	e := ForAll{Table: "accounts", Body: Exists{
		Table: "accounts", // shadowing the same table inside
		Where: []Binding{},
		Body:  Cmp{Op: GE, L: Col{"accounts", "balance"}, R: I64(-20)},
	}}
	if !eval(t, e, cat, nil) {
		t.Error("nested quantifier evaluation failed")
	}
}

func TestCountEqQuick(t *testing.T) {
	// Property: CountEq(owner=X, n) holds iff exactly n rows match.
	cat := fixture(t)
	counts := map[string]int64{"ann": 2, "bob": 1, "eve": 0}
	f := func(pick uint8, n int8) bool {
		owners := []string{"ann", "bob", "eve"}
		owner := owners[int(pick)%3]
		want := counts[owner] == int64(n)
		got, err := Eval(CountEq{
			Table:  "accounts",
			Where:  []Binding{{Column: "owner", Value: Const{storage.Str(owner)}}},
			Equals: I64(int64(n)),
		}, cat, nil)
		return err == nil && got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	e := ForAll{
		Table: "orders",
		Body: CountEq{
			Table:  "orderlines",
			Where:  []Binding{{Column: "order_id", Value: Col{"orders", "order_id"}}},
			Equals: Col{"orders", "n"},
		},
	}
	s := e.String()
	for _, frag := range []string{"∀ orders", "orderlines", "order_id=orders.order_id"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
	cmp := Cmp{Op: LE, L: Param{"x"}, R: I64(3)}
	if cmp.String() != "$x ≤ 3" {
		t.Errorf("Cmp string = %q", cmp.String())
	}
}

func TestFootprintExtraction(t *testing.T) {
	e := And{[]Expr{
		ForAll{
			Table: "orders",
			Where: []Binding{{Column: "region", Value: Param{"r"}}},
			Body: CountEq{
				Table:  "orderlines",
				Where:  []Binding{{Column: "order_id", Value: Col{"orders", "order_id"}}},
				Equals: Col{"orders", "n_items"},
			},
		},
		SumLE{Table: "stock", Column: "level", Max: I64(100)},
		Not{Exists{Table: "audit"}},
	}}
	fp := FootprintOf(e)
	wantTables := []string{"audit", "orderlines", "orders", "stock"}
	got := fp.Tables()
	if len(got) != len(wantTables) {
		t.Fatalf("Tables() = %v", got)
	}
	for i := range wantTables {
		if got[i] != wantTables[i] {
			t.Fatalf("Tables() = %v, want %v", got, wantTables)
		}
	}
	for table, col := range map[string]string{
		"orders":     "region",
		"orderlines": "order_id",
		"stock":      "level",
	} {
		if !fp.Columns[table][col] {
			t.Errorf("footprint missing %s.%s", table, col)
		}
	}
	if !fp.Columns["orders"]["n_items"] || !fp.Columns["orders"]["order_id"] {
		t.Error("column references through terms missing")
	}
	for _, q := range []string{"orders", "orderlines", "stock", "audit"} {
		if !fp.Quantified[q] {
			t.Errorf("%s should be quantified", q)
		}
	}
}
