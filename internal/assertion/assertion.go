// Package assertion implements the formal assertion language of §3.1: the
// pre- and postconditions from which transactions are specified and the
// interstep assertions that the ACC protects.
//
// The package serves the two design-time roles the paper gives assertions:
//
//   - footprint extraction (Footprint) feeds the interference analyzer in
//     package interference, which decides at design time whether a step can
//     invalidate an assertion;
//   - evaluation (Eval) lets tests check semantic correctness — that every
//     transaction's postcondition and the database consistency constraint
//     hold — against a quiescent database.
//
// The run-time scheduler never evaluates assertions; it only looks up the
// design-time tables, exactly as the paper prescribes ("the locking
// algorithm never checks the value of an item").
package assertion

import (
	"fmt"
	"strings"

	"accdb/internal/spi"
)

// Term is a value-producing expression: a column of the row bound by the
// nearest enclosing quantifier, a transaction parameter, or a constant.
type Term interface {
	fmt.Stringer
	term()
}

// Col references a column of the row bound by the enclosing quantifier over
// Table.
type Col struct {
	Table  string
	Column string
}

func (Col) term()            {}
func (c Col) String() string { return c.Table + "." + c.Column }

// Param references a transaction argument by name.
type Param struct{ Name string }

func (Param) term()            {}
func (p Param) String() string { return "$" + p.Name }

// Const is a literal value.
type Const struct{ V spi.Value }

func (Const) term()            {}
func (c Const) String() string { return c.V.String() }

// I64 is shorthand for an integer constant term.
func I64(v int64) Const { return Const{spi.I64(v)} }

// Expr is a boolean assertion expression.
type Expr interface {
	fmt.Stringer
	expr()
}

// CmpOp enumerates comparison operators.
type CmpOp uint8

// Comparison operators.
const (
	EQ CmpOp = iota + 1
	NE
	LT
	LE
	GT
	GE
)

// String renders the operator.
func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "≠"
	case LT:
		return "<"
	case LE:
		return "≤"
	case GT:
		return ">"
	case GE:
		return "≥"
	default:
		return "?"
	}
}

// Cmp compares two terms.
type Cmp struct {
	Op   CmpOp
	L, R Term
}

func (Cmp) expr()            {}
func (c Cmp) String() string { return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R) }

// And is conjunction.
type And struct{ Exprs []Expr }

func (And) expr() {}
func (a And) String() string {
	parts := make([]string, len(a.Exprs))
	for i, e := range a.Exprs {
		parts[i] = e.String()
	}
	return "(" + strings.Join(parts, " ∧ ") + ")"
}

// Or is disjunction.
type Or struct{ Exprs []Expr }

func (Or) expr() {}
func (o Or) String() string {
	parts := make([]string, len(o.Exprs))
	for i, e := range o.Exprs {
		parts[i] = e.String()
	}
	return "(" + strings.Join(parts, " ∨ ") + ")"
}

// Not is negation.
type Not struct{ E Expr }

func (Not) expr()            {}
func (n Not) String() string { return "¬" + n.E.String() }

// Binding restricts a quantifier's range: rows whose Column equals the term.
type Binding struct {
	Column string
	Value  Term
}

// ForAll quantifies Body over every row of Table satisfying Where.
type ForAll struct {
	Table string
	Where []Binding
	Body  Expr
}

func (ForAll) expr() {}
func (f ForAll) String() string {
	return fmt.Sprintf("(∀ %s%s) %s", f.Table, whereString(f.Where), f.Body)
}

// Exists asserts that some row of Table satisfies Where and Body.
type Exists struct {
	Table string
	Where []Binding
	Body  Expr // may be nil: plain existence
}

func (Exists) expr() {}
func (e Exists) String() string {
	if e.Body == nil {
		return fmt.Sprintf("(∃ %s%s)", e.Table, whereString(e.Where))
	}
	return fmt.Sprintf("(∃ %s%s) %s", e.Table, whereString(e.Where), e.Body)
}

// CountEq asserts that the number of rows of Table satisfying Where equals
// the term — the form of the paper's I1 ("the number of tuples in
// orderlines ... equals num_distinct_items").
type CountEq struct {
	Table  string
	Where  []Binding
	Equals Term
}

func (CountEq) expr() {}
func (c CountEq) String() string {
	return fmt.Sprintf("|{%s%s}| = %s", c.Table, whereString(c.Where), c.Equals)
}

// SumLE asserts that the sum of Column over the rows of Table satisfying
// Where is at most the term (used for stock-style resource constraints).
type SumLE struct {
	Table  string
	Column string
	Where  []Binding
	Max    Term
}

func (SumLE) expr() {}
func (s SumLE) String() string {
	return fmt.Sprintf("Σ %s.%s%s ≤ %s", s.Table, s.Column, whereString(s.Where), s.Max)
}

func whereString(ws []Binding) string {
	if len(ws) == 0 {
		return ""
	}
	parts := make([]string, len(ws))
	for i, w := range ws {
		parts[i] = fmt.Sprintf("%s=%s", w.Column, w.Value)
	}
	return " | " + strings.Join(parts, ",")
}
