package assertion

import (
	"fmt"

	"accdb/internal/spi"
)

// Env supplies transaction arguments to Param terms during evaluation.
type Env map[string]spi.Value

// Eval evaluates the assertion against a row store. The database should be
// quiescent (semantic correctness is defined at commit points and
// quiescence, §3.1); tests arrange that. Row-binding terms resolve against
// the row bound by the nearest enclosing quantifier over their table.
func Eval(e Expr, store spi.Store, env Env) (bool, error) {
	ev := &evaluator{store: store, env: env, bound: make(map[string]spi.Row)}
	return ev.eval(e)
}

type evaluator struct {
	store spi.Store
	env   Env
	bound map[string]spi.Row // table -> currently bound row
}

func (ev *evaluator) eval(e Expr) (bool, error) {
	switch x := e.(type) {
	case Cmp:
		l, err := ev.term(x.L)
		if err != nil {
			return false, err
		}
		r, err := ev.term(x.R)
		if err != nil {
			return false, err
		}
		c := l.Compare(r)
		switch x.Op {
		case EQ:
			return c == 0, nil
		case NE:
			return c != 0, nil
		case LT:
			return c < 0, nil
		case LE:
			return c <= 0, nil
		case GT:
			return c > 0, nil
		case GE:
			return c >= 0, nil
		}
		return false, fmt.Errorf("assertion: bad comparison op %d", x.Op)
	case And:
		for _, sub := range x.Exprs {
			ok, err := ev.eval(sub)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	case Or:
		for _, sub := range x.Exprs {
			ok, err := ev.eval(sub)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	case Not:
		ok, err := ev.eval(x.E)
		return !ok, err
	case ForAll:
		all := true
		err := ev.scan(x.Table, x.Where, func(row spi.Row) (bool, error) {
			prev, had := ev.bound[x.Table]
			ev.bound[x.Table] = row
			ok, err := ev.eval(x.Body)
			if had {
				ev.bound[x.Table] = prev
			} else {
				delete(ev.bound, x.Table)
			}
			if err != nil {
				return false, err
			}
			if !ok {
				all = false
				return false, nil
			}
			return true, nil
		})
		return all, err
	case Exists:
		found := false
		err := ev.scan(x.Table, x.Where, func(row spi.Row) (bool, error) {
			if x.Body != nil {
				prev, had := ev.bound[x.Table]
				ev.bound[x.Table] = row
				ok, err := ev.eval(x.Body)
				if had {
					ev.bound[x.Table] = prev
				} else {
					delete(ev.bound, x.Table)
				}
				if err != nil {
					return false, err
				}
				if !ok {
					return true, nil
				}
			}
			found = true
			return false, nil
		})
		return found, err
	case CountEq:
		n := int64(0)
		err := ev.scan(x.Table, x.Where, func(spi.Row) (bool, error) {
			n++
			return true, nil
		})
		if err != nil {
			return false, err
		}
		want, err := ev.term(x.Equals)
		if err != nil {
			return false, err
		}
		return want.K == spi.KindInt && want.I == n, nil
	case SumLE:
		t := ev.store.Table(x.Table)
		if t == nil {
			return false, fmt.Errorf("assertion: no table %q", x.Table)
		}
		col := t.Schema().Col(x.Column)
		if col < 0 {
			return false, fmt.Errorf("assertion: no column %s.%s", x.Table, x.Column)
		}
		var sum int64
		err := ev.scan(x.Table, x.Where, func(row spi.Row) (bool, error) {
			sum += row[col].Int64()
			return true, nil
		})
		if err != nil {
			return false, err
		}
		max, err := ev.term(x.Max)
		if err != nil {
			return false, err
		}
		return sum <= max.Int64(), nil
	default:
		return false, fmt.Errorf("assertion: unknown expression %T", e)
	}
}

func (ev *evaluator) term(t Term) (spi.Value, error) {
	switch x := t.(type) {
	case Const:
		return x.V, nil
	case Param:
		v, ok := ev.env[x.Name]
		if !ok {
			return spi.Value{}, fmt.Errorf("assertion: unbound parameter $%s", x.Name)
		}
		return v, nil
	case Col:
		row, ok := ev.bound[x.Table]
		if !ok {
			return spi.Value{}, fmt.Errorf("assertion: column %s.%s outside a quantifier over %s",
				x.Table, x.Column, x.Table)
		}
		t := ev.store.Table(x.Table)
		col := t.Schema().Col(x.Column)
		if col < 0 {
			return spi.Value{}, fmt.Errorf("assertion: no column %s.%s", x.Table, x.Column)
		}
		return row[col], nil
	default:
		return spi.Value{}, fmt.Errorf("assertion: unknown term %T", t)
	}
}

// scan visits rows of table matching the bindings; visit returns (continue,
// error).
func (ev *evaluator) scan(table string, where []Binding, visit func(spi.Row) (bool, error)) error {
	t := ev.store.Table(table)
	if t == nil {
		return fmt.Errorf("assertion: no table %q", table)
	}
	type match struct {
		col int
		v   spi.Value
	}
	matches := make([]match, len(where))
	for i, w := range where {
		col := t.Schema().Col(w.Column)
		if col < 0 {
			return fmt.Errorf("assertion: no column %s.%s", table, w.Column)
		}
		v, err := ev.term(w.Value)
		if err != nil {
			return err
		}
		matches[i] = match{col, v}
	}
	var serr error
	t.Scan(func(_ spi.Key, row spi.Row) bool {
		for _, m := range matches {
			if !row[m.col].Equal(m.v) {
				return true
			}
		}
		cont, err := visit(row)
		if err != nil {
			serr = err
			return false
		}
		return cont
	})
	return serr
}
