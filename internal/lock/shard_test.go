package lock

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"accdb/internal/storage"
)

// itemsInDistinctShards returns n row items that all hash to different
// shards of m (so the tests provably exercise cross-shard paths).
func itemsInDistinctShards(t *testing.T, m *Manager, n int) []Item {
	t.Helper()
	if m.ShardCount() < n {
		t.Fatalf("manager has %d shards, need %d", m.ShardCount(), n)
	}
	seen := make(map[int]bool)
	var out []Item
	for i := 0; len(out) < n && i < 100000; i++ {
		it := RowItem("t", storage.Key(fmt.Sprintf("key-%d", i)))
		idx := m.shardIndex(it)
		if !seen[idx] {
			seen[idx] = true
			out = append(out, it)
		}
	}
	if len(out) < n {
		t.Fatalf("could not find %d items in distinct shards", n)
	}
	return out
}

func TestShardRoutingSpreadsItems(t *testing.T) {
	m := NewManager(newStub())
	if m.ShardCount() < 16 {
		t.Fatalf("default shard count %d < 16", m.ShardCount())
	}
	counts := make(map[int]int)
	for i := 0; i < 4096; i++ {
		counts[m.shardIndex(RowItem("warehouse", storage.Key(fmt.Sprintf("w%d", i))))]++
	}
	if len(counts) < m.ShardCount()/2 {
		t.Fatalf("4096 keys landed on only %d of %d shards", len(counts), m.ShardCount())
	}
}

// TestCrossShardDeadlock builds a two-transaction cycle whose items live in
// different shards; the cycle closer must still be chosen as the victim.
func TestCrossShardDeadlock(t *testing.T) {
	m := NewManager(newStub())
	its := itemsInDistinctShards(t, m, 2)
	a, b := its[0], its[1]
	t1, t2 := NewTxnInfo(1, 1), NewTxnInfo(2, 1)
	m.Acquire(t1, a, conv(ModeX))
	m.Acquire(t2, b, conv(ModeX))
	got1 := make(chan error, 1)
	go func() { got1 <- m.Acquire(t1, b, conv(ModeX)) }()
	time.Sleep(20 * time.Millisecond)
	// t2 closes the cycle across shard boundaries and must be the victim.
	if err := m.Acquire(t2, a, conv(ModeX)); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("cross-shard cycle closer got %v, want ErrDeadlock", err)
	}
	m.ReleaseAll(t2)
	if err := <-got1; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(t1)
	if m.Stats().Deadlocks == 0 {
		t.Fatal("cross-shard deadlock not counted")
	}
}

// TestCrossShardDeadlockThreeWay runs a three-transaction cycle spanning
// three shards (t1→t2→t3→t1).
func TestCrossShardDeadlockThreeWay(t *testing.T) {
	m := NewManager(newStub())
	its := itemsInDistinctShards(t, m, 3)
	a, b, c := its[0], its[1], its[2]
	t1, t2, t3 := NewTxnInfo(1, 1), NewTxnInfo(2, 1), NewTxnInfo(3, 1)
	m.Acquire(t1, a, conv(ModeX))
	m.Acquire(t2, b, conv(ModeX))
	m.Acquire(t3, c, conv(ModeX))
	got1 := make(chan error, 1)
	go func() { got1 <- m.Acquire(t1, b, conv(ModeX)) }() // t1 → t2
	time.Sleep(20 * time.Millisecond)
	got2 := make(chan error, 1)
	go func() { got2 <- m.Acquire(t2, c, conv(ModeX)) }() // t2 → t3
	time.Sleep(20 * time.Millisecond)
	// t3 → t1 closes the three-shard cycle.
	if err := m.Acquire(t3, a, conv(ModeX)); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("three-way cycle closer got %v, want ErrDeadlock", err)
	}
	m.ReleaseAll(t3)
	if err := <-got2; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(t2)
	if err := <-got1; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(t1)
}

// TestCrossShardCompensatingNeverVictim verifies the §3.4 victim rule
// across shard boundaries: when a compensating step closes a cross-shard
// cycle, a forward waiter on the cycle is aborted instead.
func TestCrossShardCompensatingNeverVictim(t *testing.T) {
	m := NewManager(newStub())
	its := itemsInDistinctShards(t, m, 2)
	a, b := its[0], its[1]
	cs, fw := NewTxnInfo(1, 1), NewTxnInfo(2, 1)
	m.Acquire(cs, a, conv(ModeX))
	m.Acquire(fw, b, conv(ModeX))
	fwDone := make(chan error, 1)
	go func() { fwDone <- m.Acquire(fw, a, conv(ModeX)) }() // fw waits on cs
	time.Sleep(20 * time.Millisecond)
	csDone := make(chan error, 1)
	go func() {
		csDone <- m.Acquire(cs, b, Request{Mode: ModeX, Step: 1, Compensating: true})
	}()
	if err := <-fwDone; !errors.Is(err, ErrAborted) {
		t.Fatalf("forward waiter got %v, want ErrAborted", err)
	}
	m.ReleaseAll(fw)
	if err := <-csDone; err != nil {
		t.Fatal(err)
	}
	if m.Stats().VictimsForComp != 1 {
		t.Fatalf("VictimsForComp = %d, want 1", m.Stats().VictimsForComp)
	}
}

// TestCancelWaitVsTimeoutRace hammers CancelWait against WaitTimeout expiry
// on the same waiter; run under -race it proves a waiter has exactly one
// outcome and the queue stays clean whichever side wins.
func TestCancelWaitVsTimeoutRace(t *testing.T) {
	m := NewManager(newStub())
	m.WaitTimeout = time.Millisecond
	it := item("contended")
	holder := NewTxnInfo(1, 1)
	if err := m.Acquire(holder, it, conv(ModeX)); err != nil {
		t.Fatal(err)
	}
	const rounds = 300
	for i := 0; i < rounds; i++ {
		blocked := NewTxnInfo(TxnID(i+10), 1)
		done := make(chan error, 1)
		go func() { done <- m.Acquire(blocked, it, conv(ModeX)) }()
		var wg sync.WaitGroup
		for c := 0; c < 2; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				m.CancelWait(blocked.ID)
			}()
		}
		err := <-done
		wg.Wait()
		if err == nil {
			t.Fatal("acquired X while another X was held")
		}
		if !errors.Is(err, ErrTimeout) && !errors.Is(err, ErrAborted) {
			t.Fatalf("unexpected outcome: %v", err)
		}
	}
	// Whatever interleavings occurred, the queue must be clean: releasing
	// the holder lets a fresh acquirer through immediately.
	m.ReleaseAll(holder)
	probe := NewTxnInfo(999999, 1)
	if err := m.Acquire(probe, it, conv(ModeX)); err != nil {
		t.Fatalf("queue not clean after race rounds: %v", err)
	}
	st := m.Stats()
	if st.Waits == 0 || st.WaitNanos == 0 {
		t.Fatalf("wait stats lost on timeout/cancel paths: %+v", st)
	}
}

// TestTimedOutWaitsAttributed pins the satellite fix: a wait that ends in
// ErrTimeout must still contribute to WaitNanos and the per-class tallies.
func TestTimedOutWaitsAttributed(t *testing.T) {
	m := NewManager(newStub())
	m.WaitTimeout = 5 * time.Millisecond
	it := item("hot")
	holder := NewTxnInfo(1, 1)
	m.Acquire(holder, it, conv(ModeX))
	w := NewTxnInfo(2, 1)
	if err := m.Acquire(w, it, conv(ModeX)); !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
	st := m.Stats()
	if st.WaitNanos == 0 {
		t.Fatal("timed-out wait missing from WaitNanos")
	}
	classes := m.ByClass()
	cs, ok := classes[it.Table+"/"+it.Level.String()+"/"+ModeX.String()]
	if !ok || cs.Waits != 1 || cs.WaitNanos == 0 {
		t.Fatalf("timed-out wait missing from per-class stats: %+v", classes)
	}
}

// TestParallelAcquireAcrossShards is a smoke test that concurrent
// transactions on different shards proceed and release cleanly.
func TestParallelAcquireAcrossShards(t *testing.T) {
	m := NewManager(newStub())
	m.WaitTimeout = 5 * time.Second
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				txn := NewTxnInfo(TxnID(g*1000+i+1), 1)
				it := RowItem("t", storage.Key(fmt.Sprintf("g%d-k%d", g, i%37)))
				if err := m.Acquire(txn, it, conv(ModeX)); err != nil {
					t.Error(err)
					return
				}
				m.ReleaseAll(txn)
			}
		}(g)
	}
	wg.Wait()
	probe := NewTxnInfo(777777, 1)
	for g := 0; g < 8; g++ {
		for i := 0; i < 37; i++ {
			it := RowItem("t", storage.Key(fmt.Sprintf("g%d-k%d", g, i)))
			if err := m.Acquire(probe, it, conv(ModeX)); err != nil {
				t.Fatalf("leaked lock on %v: %v", it, err)
			}
		}
	}
}
