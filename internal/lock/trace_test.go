package lock

import (
	"errors"
	"strings"
	"testing"
	"time"

	"accdb/internal/trace"
)

// collect flushes the tracer and indexes its events by kind.
func collect(tr *trace.Tracer, sink *trace.MemorySink) map[trace.Kind][]trace.Event {
	tr.Flush()
	out := make(map[trace.Kind][]trace.Event)
	for _, ev := range sink.Events() {
		out[ev.Kind] = append(out[ev.Kind], ev)
	}
	return out
}

func TestTraceLockLifecycleEvents(t *testing.T) {
	sink := trace.NewMemorySink(4096)
	tr := trace.New(sink)
	defer tr.Close()
	m := NewManager(newStub())
	m.SetTracer(tr)

	t1, t2 := NewTxnInfo(1, 1), NewTxnInfo(2, 1)
	it := item("a")

	// Immediate grant.
	if err := m.Acquire(t1, it, conv(ModeS)); err != nil {
		t.Fatal(err)
	}
	// Immediate conversion S→X.
	if err := m.Acquire(t1, it, conv(ModeX)); err != nil {
		t.Fatal(err)
	}
	// Contended request: wait then grant.
	done := make(chan error, 1)
	go func() { done <- m.Acquire(t2, it, conv(ModeS)) }()
	time.Sleep(20 * time.Millisecond)
	m.ReleaseAll(t1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	byKind := collect(tr, sink)
	acq := byKind[trace.KindLockAcquire]
	if len(acq) == 0 {
		t.Fatal("no lock.acquire event")
	}
	if acq[0].Mode != "S" || acq[0].Item != it.String() || acq[0].Shard < 0 {
		t.Fatalf("acquire event = %+v", acq[0])
	}
	up := byKind[trace.KindLockUpgrade]
	if len(up) != 1 || up[0].Extra != "S->X" {
		t.Fatalf("upgrade events = %+v", up)
	}
	if len(byKind[trace.KindLockWait]) != 1 {
		t.Fatalf("wait events = %+v", byKind[trace.KindLockWait])
	}
	gr := byKind[trace.KindLockGrant]
	if len(gr) != 1 || gr[0].Txn != 2 || gr[0].Dur <= 0 {
		t.Fatalf("grant events = %+v", gr)
	}
}

func TestTraceDeadlockVictimAndADCModes(t *testing.T) {
	o := newStub()
	sink := trace.NewMemorySink(4096)
	tr := trace.New(sink)
	defer tr.Close()
	m := NewManager(o)
	m.SetTracer(tr)

	// A/D/C attachments carry the paper's mode tags.
	holder := NewTxnInfo(1, 1)
	it := item("x")
	if err := m.Acquire(holder, it, Request{Mode: ModeA, Step: 1, Assertion: 7}); err != nil {
		t.Fatal(err)
	}
	m.AttachExposure(holder, it)
	m.AttachReservation(holder, it, 99)

	// Self-victim deadlock: t2 closes the cycle with t3.
	t2, t3 := NewTxnInfo(2, 1), NewTxnInfo(3, 1)
	a, b := item("a"), item("b")
	m.Acquire(t2, a, conv(ModeX))
	m.Acquire(t3, b, conv(ModeX))
	got := make(chan error, 1)
	go func() { got <- m.Acquire(t2, b, conv(ModeX)) }()
	time.Sleep(20 * time.Millisecond)
	if err := m.Acquire(t3, a, conv(ModeX)); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("got %v, want ErrDeadlock", err)
	}
	m.ReleaseAll(t3)
	if err := <-got; err != nil {
		t.Fatal(err)
	}

	byKind := collect(tr, sink)
	modes := make(map[string]bool)
	for _, ev := range byKind[trace.KindLockAcquire] {
		modes[ev.Mode] = true
	}
	for _, want := range []string{"A", "D", "C"} {
		if !modes[want] {
			t.Fatalf("no lock.acquire with mode %q (modes seen: %v)", want, modes)
		}
	}
	victims := byKind[trace.KindDeadlockVictim]
	if len(victims) == 0 {
		t.Fatal("no lock.victim event")
	}
	if victims[0].Extra != "self" || victims[0].Txn != 3 {
		t.Fatalf("victim event = %+v", victims[0])
	}
}

func TestTraceTimeoutAndCancelEvents(t *testing.T) {
	sink := trace.NewMemorySink(1024)
	tr := trace.New(sink)
	defer tr.Close()
	m := NewManager(newStub())
	m.SetTracer(tr)
	m.WaitTimeout = 30 * time.Millisecond

	t1, t2 := NewTxnInfo(1, 1), NewTxnInfo(2, 1)
	it := item("x")
	m.Acquire(t1, it, conv(ModeX))
	if err := m.Acquire(t2, it, conv(ModeX)); !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	}

	m.WaitTimeout = 0
	t3 := NewTxnInfo(3, 1)
	done := make(chan error, 1)
	go func() { done <- m.Acquire(t3, it, conv(ModeX)) }()
	time.Sleep(20 * time.Millisecond)
	m.CancelWait(3)
	if err := <-done; !errors.Is(err, ErrAborted) {
		t.Fatalf("got %v, want ErrAborted", err)
	}

	byKind := collect(tr, sink)
	to := byKind[trace.KindLockTimeout]
	if len(to) == 0 || to[0].Txn != 2 || to[0].Dur <= 0 {
		t.Fatalf("timeout events = %+v", to)
	}
	ab := byKind[trace.KindLockAbort]
	found := false
	for _, ev := range ab {
		if ev.Txn == 3 && ev.Extra == "cancel" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no cancel abort event for txn 3: %+v", ab)
	}
}

func TestSnapshotDumpsGrantsWaitersAndEdges(t *testing.T) {
	o := newStub()
	m := NewManager(o)
	t1, t2 := NewTxnInfo(1, 1), NewTxnInfo(2, 2)
	it := item("hot")

	m.Acquire(t1, it, conv(ModeX))
	m.Acquire(t1, it, Request{Mode: ModeA, Step: 1, Assertion: 7})
	m.AttachExposure(t1, it)
	m.AttachReservation(t1, it, 99)

	done := make(chan error, 1)
	go func() { done <- m.Acquire(t2, it, conv(ModeS)) }()
	waitUntil(t, func() bool { return m.Snapshot().WaiterCount() == 1 })

	snap := m.Snapshot()
	if snap.GrantCount() != 4 {
		t.Fatalf("GrantCount = %d, want 4 (X, A, D, C)", snap.GrantCount())
	}
	kinds := make(map[string]bool)
	var itemName string
	for _, sh := range snap.Shards {
		for _, is := range sh.Items {
			itemName = is.Item.String()
			for _, g := range is.Grants {
				kinds[g.Kind] = true
				if g.Kind == "A" && g.Assertion != 7 {
					t.Fatalf("A grant assertion = %d, want 7", g.Assertion)
				}
			}
			if len(is.Queue) != 1 || is.Queue[0].Txn != 2 || is.Queue[0].Mode != "S" {
				t.Fatalf("queue = %+v", is.Queue)
			}
		}
	}
	for _, want := range []string{"lock", "A", "D", "C"} {
		if !kinds[want] {
			t.Fatalf("grant kind %q missing (have %v)", want, kinds)
		}
	}
	if itemName != it.String() {
		t.Fatalf("item = %q, want %q", itemName, it.String())
	}
	if len(snap.Edges) != 1 || snap.Edges[0].From != 2 || snap.Edges[0].To != 1 {
		t.Fatalf("edges = %+v", snap.Edges)
	}

	dot := snap.DOT()
	for _, want := range []string{"digraph waitsfor", "t2 -> t1", it.String()} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	text := snap.String()
	for _, want := range []string{"held T1 X", "held T1 A(assertion=7)", "held T1 D", "held T1 C", "wait T2 S", "T2 waits-for T1"} {
		if !strings.Contains(text, want) {
			t.Fatalf("String missing %q:\n%s", want, text)
		}
	}

	m.ReleaseAll(t1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(t2)
	empty := m.Snapshot()
	if empty.GrantCount() != 0 || empty.WaiterCount() != 0 || len(empty.Edges) != 0 {
		t.Fatalf("snapshot after release = %+v", empty)
	}
	if !strings.Contains(empty.DOT(), "digraph waitsfor") {
		t.Fatal("empty DOT not a valid digraph")
	}
}

// waitUntil polls cond for up to a second; the snapshot of a concurrent
// waiter needs the goroutine to have enqueued first.
func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

// BenchmarkTraceDisabled measures the uncontended Acquire+Release path with
// tracing off — the nil-tracer branch must stay in the noise (<2 ns/op added
// versus the pre-tracing numbers in EXPERIMENTS.md). Compare with
// BenchmarkTraceEnabled to see the enabled-path cost.
func BenchmarkTraceDisabled(b *testing.B) {
	m := NewManager(newStub())
	txn := NewTxnInfo(1, 1)
	it := item("bench")
	req := conv(ModeS)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Acquire(txn, it, req); err != nil {
			b.Fatal(err)
		}
		m.ReleaseAll(txn)
	}
}

func BenchmarkTraceEnabled(b *testing.B) {
	sink := trace.NewMemorySink(1024)
	tr := trace.New(sink)
	defer tr.Close()
	m := NewManager(newStub())
	m.SetTracer(tr)
	txn := NewTxnInfo(1, 1)
	it := item("bench")
	req := conv(ModeS)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Acquire(txn, it, req); err != nil {
			b.Fatal(err)
		}
		m.ReleaseAll(txn)
	}
}
