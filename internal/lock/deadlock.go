package lock

import "accdb/internal/trace"

// Deadlock handling (§3.4 of the paper).
//
// A deadlock is detected by finding a cycle in the waits-for graph at the
// moment a request blocks; the victim is the request that completes the
// cycle, which the engine answers by aborting and retrying just that step.
// If the victim is a compensating step, it must not be aborted: instead the
// manager aborts forward-step waiters on the cycle until the compensation
// can make progress ("when a compensating step completes a deadlock cycle,
// it is not itself aborted, but rather, the ACC aborts all steps that are
// delaying it").
//
// Under the sharded lock table the waits-for graph spans shards. Detection
// walks it one shard latch at a time: the registry resolves a blocked
// transaction to its waiter, and each waiter's current blockers are
// recomputed under that waiter's own shard latch. Because no two latches
// are ever held together, the walk observes the graph edge-by-edge rather
// than atomically; that is sound because
//
//   - a real deadlock cycle is stable — every member stays blocked until a
//     victim is removed — so the walk, which runs after the enqueuing
//     waiter has published itself, always sees a complete cycle (the last
//     member to publish is the one whose detection closes it);
//   - a cycle that dissolves mid-walk can at worst produce a spurious
//     victim, which is safe: the victim aborts and retries its step, the
//     same outcome as any genuine deadlock.

// resolveDeadlock checks whether the freshly enqueued waiter w completes a
// waits-for cycle and applies the victim policy. It returns ErrDeadlock if w
// itself must abort. Called with no latches held; w must already be
// published in the registry.
func (m *Manager) resolveDeadlock(w *waiter) error {
	for {
		w.sh.mu.Lock()
		settled := w.granted || w.err != nil
		w.sh.mu.Unlock()
		if settled {
			// Removing a victim re-ran the grant pass and resolved w.
			return nil
		}
		cycle := m.findCycle(w)
		if cycle == nil {
			return nil
		}
		w.sh.stats.deadlocks.Add(1)
		if !w.req.Compensating {
			return ErrDeadlock
		}
		victim := (*waiter)(nil)
		for _, v := range cycle {
			if v != w && !v.req.Compensating {
				victim = v
				break
			}
		}
		if victim == nil {
			// Every member of the cycle is compensating. The reservation
			// locks are designed to make this impossible; if it happens the
			// compensating requester aborts to keep the system live.
			return ErrDeadlock
		}
		vs := victim.sh
		vs.mu.Lock()
		killed := false
		if !victim.granted && victim.err == nil {
			victim.err = ErrAborted
			m.removeWaiter(vs, victim)
			victim.ch <- struct{}{}
			vs.stats.victimsForComp.Add(1)
			killed = true
		}
		vs.mu.Unlock()
		if killed && m.tracer != nil {
			m.emitLock(trace.KindDeadlockVictim, victim.txn.ID, victim.item, vs,
				victim.req.Mode.String(), 0, "for-compensation")
		}
		// Re-check: w may sit on several overlapping cycles.
	}
}

// findCycle searches for a waits-for path from one of w's blockers back to
// w's transaction. It returns the waiters on the cycle (starting with w), or
// nil. Called with no latches held.
func (m *Manager) findCycle(w *waiter) []*waiter {
	target := w.txn.ID
	visited := make(map[TxnID]bool)
	var path []*waiter
	var dfs func(cur *waiter) bool
	dfs = func(cur *waiter) bool {
		path = append(path, cur)
		for _, b := range m.blockerTxns(cur) {
			if b == target {
				return true
			}
			if visited[b] {
				continue
			}
			visited[b] = true
			if next := m.reg.get(b); next != nil {
				if dfs(next) {
					return true
				}
			}
		}
		path = path[:len(path)-1]
		return false
	}
	if dfs(w) {
		return path
	}
	return nil
}

// blockerTxns lists the transactions w currently waits for: holders of
// conflicting grants on its item, and earlier conflicting waiters in its
// queue. It takes (and releases) w's shard latch; a waiter that has already
// been granted or aborted contributes no edges.
func (m *Manager) blockerTxns(w *waiter) []TxnID {
	sh := w.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if w.granted || w.err != nil {
		return nil
	}
	st, ok := sh.items[w.item]
	if !ok {
		return nil
	}
	return m.blockersLocked(w, st)
}

// blockersLocked computes w's current blockers from its item's state. Caller
// holds w's shard latch. Shared by deadlock detection and the waits-for
// snapshot (snapshot.go).
func (m *Manager) blockersLocked(w *waiter, st *lockState) []TxnID {
	seen := make(map[TxnID]bool)
	var out []TxnID
	add := func(id TxnID) {
		if id != w.txn.ID && !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	for _, g := range st.grants {
		if m.conflictsWithGrant(w.txn, w.req, g) {
			add(g.txn.ID)
		}
	}
	for _, q := range st.queue {
		if q == w {
			break
		}
		if q.err == nil && !q.granted && m.conflictsWithWaiter(w.txn, w.req, q) {
			add(q.txn.ID)
		}
	}
	return out
}
