package lock

// Deadlock handling (§3.4 of the paper).
//
// A deadlock is detected by finding a cycle in the waits-for graph at the
// moment a request blocks; the victim is the request that completes the
// cycle, which the engine answers by aborting and retrying just that step.
// If the victim is a compensating step, it must not be aborted: instead the
// manager aborts forward-step waiters on the cycle until the compensation
// can make progress ("when a compensating step completes a deadlock cycle,
// it is not itself aborted, but rather, the ACC aborts all steps that are
// delaying it").

// resolveDeadlock checks whether the freshly enqueued waiter w completes a
// waits-for cycle and applies the victim policy. It returns ErrDeadlock if w
// itself must abort. Caller holds mu.
func (m *Manager) resolveDeadlock(w *waiter) error {
	for {
		if w.granted || w.err != nil {
			// Removing a victim re-ran the grant pass and resolved w.
			return nil
		}
		cycle := m.findCycle(w)
		if cycle == nil {
			return nil
		}
		m.stats.Deadlocks++
		if !w.req.Compensating {
			return ErrDeadlock
		}
		victim := (*waiter)(nil)
		for _, v := range cycle {
			if v != w && !v.req.Compensating {
				victim = v
				break
			}
		}
		if victim == nil {
			// Every member of the cycle is compensating. The reservation
			// locks are designed to make this impossible; if it happens the
			// compensating requester aborts to keep the system live.
			return ErrDeadlock
		}
		victim.err = ErrAborted
		m.removeWaiter(victim)
		victim.ch <- struct{}{}
		m.stats.VictimsForComp++
		// Re-check: w may sit on several overlapping cycles.
	}
}

// findCycle searches for a waits-for path from one of w's blockers back to
// w's transaction. It returns the waiters on the cycle (starting with w), or
// nil. Caller holds mu.
func (m *Manager) findCycle(w *waiter) []*waiter {
	target := w.txn.ID
	visited := make(map[TxnID]bool)
	var path []*waiter
	var dfs func(cur *waiter) bool
	dfs = func(cur *waiter) bool {
		path = append(path, cur)
		for _, b := range m.blockerTxns(cur) {
			if b == target {
				return true
			}
			if visited[b] {
				continue
			}
			visited[b] = true
			if next, ok := m.waiting[b]; ok && next.err == nil && !next.granted {
				if dfs(next) {
					return true
				}
			}
		}
		path = path[:len(path)-1]
		return false
	}
	if dfs(w) {
		return path
	}
	return nil
}

// blockerTxns lists the transactions w currently waits for: holders of
// conflicting grants on its item, and earlier conflicting waiters in its
// queue. Caller holds mu.
func (m *Manager) blockerTxns(w *waiter) []TxnID {
	st, ok := m.items[w.item]
	if !ok {
		return nil
	}
	seen := make(map[TxnID]bool)
	var out []TxnID
	add := func(id TxnID) {
		if id != w.txn.ID && !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	for _, g := range st.grants {
		if m.conflictsWithGrant(w.txn, w.req, g) {
			add(g.txn.ID)
		}
	}
	for _, q := range st.queue {
		if q == w {
			break
		}
		if q.err == nil && !q.granted && m.conflictsWithWaiter(w.txn, w.req, q) {
			add(q.txn.ID)
		}
	}
	return out
}
