package lock

import (
	"fmt"
	"sync"
	"testing"

	"accdb/internal/storage"
)

// BenchmarkLockShards measures raw Acquire/ReleaseAll throughput of the
// sharded lock table against the single-latch (shards=1) configuration, at
// 1, 8 and 32 goroutines, under a uniform key distribution (conflicts
// rare — the latch itself is the only shared state) and a skewed one (90%
// of requests on 8 hot keys, so real lock conflicts and waits dominate).
//
// The paper-figure benchmarks in /bench_test.go measure end-to-end effects;
// this one isolates the lock-manager hot path.
func BenchmarkLockShards(b *testing.B) {
	const keySpace = 4096
	items := make([]Item, keySpace)
	for i := range items {
		items[i] = RowItem("bench", storage.Key(fmt.Sprintf("k%06d", i)))
	}
	for _, dist := range []struct {
		name string
		skew bool
	}{
		{"uniform", false},
		{"skewed", true},
	} {
		for _, goroutines := range []int{1, 8, 32} {
			for _, cfg := range []struct {
				name   string
				shards int
			}{
				{"single-latch", 1},
				{"sharded", 0}, // 0 → default shard count
			} {
				name := fmt.Sprintf("%s/%dgoroutines/%s", dist.name, goroutines, cfg.name)
				b.Run(name, func(b *testing.B) {
					var m *Manager
					if cfg.shards == 0 {
						m = NewManager(newStub())
					} else {
						m = NewManagerWithShards(newStub(), cfg.shards)
					}
					benchAcquireRelease(b, m, goroutines, items, dist.skew)
				})
			}
		}
	}
}

func benchAcquireRelease(b *testing.B, m *Manager, goroutines int, items []Item, skew bool) {
	per := b.N/goroutines + 1
	b.ResetTimer()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Per-goroutine xorshift PRNG: no shared rand state.
			rng := uint64(g)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
			base := TxnID(g) * 1_000_000_000
			for i := 0; i < per; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				var it Item
				mode := ModeX
				if skew && rng%10 < 9 {
					// Hot set: mostly readers, occasional writer, so the
					// bench exercises both grant sharing and real waits.
					it = items[rng%8]
					if rng%100 < 5 {
						mode = ModeX
					} else {
						mode = ModeS
					}
				} else {
					it = items[rng%uint64(len(items))]
				}
				txn := NewTxnInfo(base+TxnID(i)+1, 1)
				if err := m.Acquire(txn, it, Request{Mode: mode, Step: 1}); err != nil {
					b.Error(err)
					return
				}
				m.ReleaseAll(txn)
			}
		}(g)
	}
	wg.Wait()
}
