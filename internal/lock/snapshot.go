package lock

import (
	"fmt"
	"sort"
	"strings"
)

// Lock-table introspection. Snapshot walks the table one shard latch at a
// time (preserving the single-latch invariant) and returns a structural dump:
// every held entry — conventional modes and the paper's A/D/C kinds — every
// wait queue, and the waits-for edges recomputed exactly as deadlock
// detection sees them. The dump is advisory: shards are observed at slightly
// different instants, which is the same consistency deadlock detection
// itself settles for.

// TableSnapshot is a point-in-time structural dump of the lock table.
type TableSnapshot struct {
	// Shards lists only shards with at least one populated item.
	Shards []ShardSnapshot
	// Edges is the waits-for graph: Edges[i].From waits for Edges[i].To.
	Edges []WaitEdge
}

// ShardSnapshot dumps one lock-table partition.
type ShardSnapshot struct {
	Index int
	Items []ItemSnapshot
}

// ItemSnapshot dumps one item's grant list and wait queue.
type ItemSnapshot struct {
	Item   Item
	Grants []GrantSnapshot
	Queue  []WaitSnapshot
}

// GrantSnapshot describes one held entry. Kind is "lock" for conventional
// entries, or the paper's tags: "A" (assertional), "D" (exposure mark),
// "C" (compensation reservation). Mode carries the conventional mode for
// "lock" entries and repeats the tag otherwise.
type GrantSnapshot struct {
	Txn       TxnID
	Kind      string
	Mode      string
	Assertion int // assertion ID for "A" entries, else -1
}

// WaitSnapshot describes one queued (still blocked) request.
type WaitSnapshot struct {
	Txn          TxnID
	Mode         string
	Compensating bool
	Conversion   bool
}

// WaitEdge is one waits-for edge, annotated with the contested item.
type WaitEdge struct {
	From TxnID
	To   TxnID
	Item Item
}

// Snapshot dumps the lock table's current structure. It takes each shard
// latch in turn (never two at once) and recomputes waits-for edges with the
// same blockersLocked pass deadlock detection uses, so the dump shows the
// graph as the detector would see it.
func (m *Manager) Snapshot() *TableSnapshot {
	snap := &TableSnapshot{}
	for _, sh := range m.shards {
		sh.mu.Lock()
		var ss ShardSnapshot
		ss.Index = int(sh.idx)
		for item, st := range sh.items {
			if len(st.grants) == 0 && len(st.queue) == 0 {
				continue // retained-empty state
			}
			is := ItemSnapshot{Item: item}
			for _, g := range st.grants {
				is.Grants = append(is.Grants, snapGrant(g))
			}
			for _, w := range st.queue {
				if w.granted || w.err != nil {
					continue
				}
				is.Queue = append(is.Queue, WaitSnapshot{
					Txn:          w.txn.ID,
					Mode:         w.req.Mode.String(),
					Compensating: w.req.Compensating,
					Conversion:   w.conv,
				})
				for _, b := range m.blockersLocked(w, st) {
					snap.Edges = append(snap.Edges, WaitEdge{From: w.txn.ID, To: b, Item: item})
				}
			}
			ss.Items = append(ss.Items, is)
		}
		sh.mu.Unlock()
		if len(ss.Items) > 0 {
			// Map iteration order is random; sort for stable output.
			sort.Slice(ss.Items, func(i, j int) bool {
				a, b := ss.Items[i].Item, ss.Items[j].Item
				if a.Table != b.Table {
					return a.Table < b.Table
				}
				if a.Level != b.Level {
					return a.Level < b.Level
				}
				return string(a.Key) < string(b.Key)
			})
			snap.Shards = append(snap.Shards, ss)
		}
	}
	sort.Slice(snap.Edges, func(i, j int) bool {
		if snap.Edges[i].From != snap.Edges[j].From {
			return snap.Edges[i].From < snap.Edges[j].From
		}
		return snap.Edges[i].To < snap.Edges[j].To
	})
	return snap
}

func snapGrant(g *grant) GrantSnapshot {
	gs := GrantSnapshot{Txn: g.txn.ID, Assertion: -1}
	switch g.kind {
	case kindConventional:
		gs.Kind = "lock"
		gs.Mode = g.mode.String()
	case kindAssertional:
		gs.Kind = "A"
		gs.Mode = "A"
		gs.Assertion = int(g.assertion)
	case kindExposure:
		gs.Kind = tagExposure
		gs.Mode = tagExposure
	case kindReservation:
		gs.Kind = tagReservation
		gs.Mode = tagReservation
	}
	return gs
}

// GrantCount totals held entries across the dump.
func (s *TableSnapshot) GrantCount() int {
	n := 0
	for _, sh := range s.Shards {
		for _, it := range sh.Items {
			n += len(it.Grants)
		}
	}
	return n
}

// WaiterCount totals blocked requests across the dump.
func (s *TableSnapshot) WaiterCount() int {
	n := 0
	for _, sh := range s.Shards {
		for _, it := range sh.Items {
			n += len(it.Queue)
		}
	}
	return n
}

// DOT renders the waits-for graph in Graphviz DOT form. Blocked transactions
// and their blockers appear as nodes; each edge is labelled with the
// contested item. An empty graph still renders a valid digraph.
func (s *TableSnapshot) DOT() string {
	var b strings.Builder
	b.WriteString("digraph waitsfor {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=circle];\n")
	seen := make(map[TxnID]bool)
	node := func(t TxnID) {
		if !seen[t] {
			seen[t] = true
			fmt.Fprintf(&b, "  t%d [label=\"T%d\"];\n", t, t)
		}
	}
	for _, e := range s.Edges {
		node(e.From)
		node(e.To)
	}
	for _, e := range s.Edges {
		fmt.Fprintf(&b, "  t%d -> t%d [label=%q];\n", e.From, e.To, e.Item.String())
	}
	b.WriteString("}\n")
	return b.String()
}

// String renders the dump as indented text for debug endpoints and logs.
func (s *TableSnapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "lock table: %d grants, %d waiters, %d waits-for edges\n",
		s.GrantCount(), s.WaiterCount(), len(s.Edges))
	for _, sh := range s.Shards {
		fmt.Fprintf(&b, "shard %d:\n", sh.Index)
		for _, it := range sh.Items {
			fmt.Fprintf(&b, "  %s:\n", it.Item)
			for _, g := range it.Grants {
				if g.Kind == "A" {
					fmt.Fprintf(&b, "    held T%d A(assertion=%d)\n", g.Txn, g.Assertion)
				} else if g.Kind == "lock" {
					fmt.Fprintf(&b, "    held T%d %s\n", g.Txn, g.Mode)
				} else {
					fmt.Fprintf(&b, "    held T%d %s\n", g.Txn, g.Kind)
				}
			}
			for _, w := range it.Queue {
				flags := ""
				if w.Conversion {
					flags += " conversion"
				}
				if w.Compensating {
					flags += " compensating"
				}
				fmt.Fprintf(&b, "    wait T%d %s%s\n", w.Txn, w.Mode, flags)
			}
		}
	}
	for _, e := range s.Edges {
		fmt.Fprintf(&b, "T%d waits-for T%d on %s\n", e.From, e.To, e.Item)
	}
	return b.String()
}
