package lock

import (
	"accdb/internal/spi"
	"sort"
)

// Lock-table introspection. Snapshot walks the table one shard latch at a
// time (preserving the single-latch invariant) and returns a structural dump:
// every held entry — conventional modes and the paper's A/D/C kinds — every
// wait queue, and the waits-for edges recomputed exactly as deadlock
// detection sees them. The dump is advisory: shards are observed at slightly
// different instants, which is the same consistency deadlock detection
// itself settles for. The dump's data types and renderers live in the SPI
// (spi/locksnap.go) so any LockService implementation can produce them.

// TableSnapshot is a point-in-time structural dump of the lock table.
type TableSnapshot = spi.TableSnapshot

// ShardSnapshot dumps one lock-table partition.
type ShardSnapshot = spi.ShardSnapshot

// ItemSnapshot dumps one item's grant list and wait queue.
type ItemSnapshot = spi.ItemSnapshot

// GrantSnapshot describes one held entry (see spi.GrantSnapshot).
type GrantSnapshot = spi.GrantSnapshot

// WaitSnapshot describes one queued (still blocked) request.
type WaitSnapshot = spi.WaitSnapshot

// WaitEdge is one waits-for edge, annotated with the contested item.
type WaitEdge = spi.WaitEdge

// Snapshot dumps the lock table's current structure. It takes each shard
// latch in turn (never two at once) and recomputes waits-for edges with the
// same blockersLocked pass deadlock detection uses, so the dump shows the
// graph as the detector would see it.
func (m *Manager) Snapshot() *TableSnapshot {
	snap := &TableSnapshot{}
	for _, sh := range m.shards {
		sh.mu.Lock()
		var ss ShardSnapshot
		ss.Index = int(sh.idx)
		for item, st := range sh.items {
			if len(st.grants) == 0 && len(st.queue) == 0 {
				continue // retained-empty state
			}
			is := ItemSnapshot{Item: item}
			for _, g := range st.grants {
				is.Grants = append(is.Grants, snapGrant(g))
			}
			for _, w := range st.queue {
				if w.granted || w.err != nil {
					continue
				}
				is.Queue = append(is.Queue, WaitSnapshot{
					Txn:          w.txn.ID,
					Mode:         w.req.Mode.String(),
					Compensating: w.req.Compensating,
					Conversion:   w.conv,
				})
				for _, b := range m.blockersLocked(w, st) {
					snap.Edges = append(snap.Edges, WaitEdge{From: w.txn.ID, To: b, Item: item})
				}
			}
			ss.Items = append(ss.Items, is)
		}
		sh.mu.Unlock()
		if len(ss.Items) > 0 {
			// Map iteration order is random; sort for stable output.
			sort.Slice(ss.Items, func(i, j int) bool {
				a, b := ss.Items[i].Item, ss.Items[j].Item
				if a.Table != b.Table {
					return a.Table < b.Table
				}
				if a.Level != b.Level {
					return a.Level < b.Level
				}
				return string(a.Key) < string(b.Key)
			})
			snap.Shards = append(snap.Shards, ss)
		}
	}
	sort.Slice(snap.Edges, func(i, j int) bool {
		if snap.Edges[i].From != snap.Edges[j].From {
			return snap.Edges[i].From < snap.Edges[j].From
		}
		return snap.Edges[i].To < snap.Edges[j].To
	})
	return snap
}

func snapGrant(g *grant) GrantSnapshot {
	gs := GrantSnapshot{Txn: g.txn.ID, Assertion: -1}
	switch g.kind {
	case kindConventional:
		gs.Kind = "lock"
		gs.Mode = g.mode.String()
	case kindAssertional:
		gs.Kind = "A"
		gs.Mode = "A"
		gs.Assertion = int(g.assertion)
	case kindExposure:
		gs.Kind = tagExposure
		gs.Mode = tagExposure
	case kindReservation:
		gs.Kind = tagReservation
		gs.Mode = tagReservation
	}
	return gs
}
