package lock

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"accdb/internal/interference"
)

// stubOracle gives tests precise control over interference answers. It is
// mutex-guarded because tests flip answers while concurrent Acquires are
// blocked on the manager.
type stubOracle struct {
	mu         sync.Mutex
	interferes map[[2]int32]bool // (step, assertion)
	prefixSafe map[[2]int32]bool // (txnType, assertion) ignoring step count
	interleave map[[2]int32]bool // (step, holderType)
}

func newStub() *stubOracle {
	return &stubOracle{
		interferes: map[[2]int32]bool{},
		prefixSafe: map[[2]int32]bool{},
		interleave: map[[2]int32]bool{},
	}
}

func (o *stubOracle) set(m map[[2]int32]bool, a, b int32, v bool) {
	o.mu.Lock()
	m[[2]int32{a, b}] = v
	o.mu.Unlock()
}

func (o *stubOracle) setInterferes(s, a int32, v bool) { o.set(o.interferes, s, a, v) }
func (o *stubOracle) setPrefixSafe(t, a int32, v bool) { o.set(o.prefixSafe, t, a, v) }
func (o *stubOracle) setInterleave(s, h int32, v bool) { o.set(o.interleave, s, h, v) }

func (o *stubOracle) get(m map[[2]int32]bool, a, b int32) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return m[[2]int32{a, b}]
}

func (o *stubOracle) Interferes(s interference.StepTypeID, a interference.AssertionID) bool {
	return o.get(o.interferes, int32(s), int32(a))
}
func (o *stubOracle) PrefixInterferes(t interference.TxnTypeID, _ int, a interference.AssertionID) bool {
	return !o.get(o.prefixSafe, int32(t), int32(a))
}
func (o *stubOracle) MayInterleave(s interference.StepTypeID, h interference.TxnTypeID, _ int) bool {
	return o.get(o.interleave, int32(s), int32(h))
}

func item(name string) Item { return RowItem(name, "k") }

func conv(mode Mode) Request { return Request{Mode: mode, Step: 1} }

func TestConventionalCompatMatrix(t *testing.T) {
	want := map[[2]Mode]bool{
		{ModeIS, ModeIS}: true, {ModeIS, ModeIX}: true, {ModeIS, ModeS}: true, {ModeIS, ModeSIX}: true, {ModeIS, ModeX}: false,
		{ModeIX, ModeIS}: true, {ModeIX, ModeIX}: true, {ModeIX, ModeS}: false, {ModeIX, ModeSIX}: false, {ModeIX, ModeX}: false,
		{ModeS, ModeIS}: true, {ModeS, ModeIX}: false, {ModeS, ModeS}: true, {ModeS, ModeSIX}: false, {ModeS, ModeX}: false,
		{ModeSIX, ModeIS}: true, {ModeSIX, ModeIX}: false, {ModeSIX, ModeS}: false, {ModeSIX, ModeSIX}: false, {ModeSIX, ModeX}: false,
		{ModeX, ModeIS}: false, {ModeX, ModeIX}: false, {ModeX, ModeS}: false, {ModeX, ModeSIX}: false, {ModeX, ModeX}: false,
	}
	for pair, compat := range want {
		if got := conventionalCompat(pair[0], pair[1]); got != compat {
			t.Errorf("compat(%v,%v) = %v, want %v", pair[0], pair[1], got, compat)
		}
	}
}

// The compatibility matrix must be symmetric.
func TestConventionalCompatSymmetricQuick(t *testing.T) {
	modes := []Mode{ModeIS, ModeIX, ModeS, ModeSIX, ModeX}
	f := func(i, j uint8) bool {
		a, b := modes[int(i)%len(modes)], modes[int(j)%len(modes)]
		return conventionalCompat(a, b) == conventionalCompat(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// sup must be an upper bound of both arguments and idempotent.
func TestSupQuick(t *testing.T) {
	modes := []Mode{ModeIS, ModeIX, ModeS, ModeSIX, ModeX}
	f := func(i, j uint8) bool {
		a, b := modes[int(i)%len(modes)], modes[int(j)%len(modes)]
		s := sup(a, b)
		return covers(s, a) && covers(s, b) && sup(a, a) == a && sup(s, a) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSharedGrantsCoexist(t *testing.T) {
	m := NewManager(newStub())
	t1, t2 := NewTxnInfo(1, 1), NewTxnInfo(2, 1)
	it := item("a")
	if err := m.Acquire(t1, it, conv(ModeS)); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(t2, it, conv(ModeS)); err != nil {
		t.Fatal(err)
	}
}

func TestExclusiveBlocksAndReleases(t *testing.T) {
	m := NewManager(newStub())
	t1, t2 := NewTxnInfo(1, 1), NewTxnInfo(2, 1)
	it := item("a")
	if err := m.Acquire(t1, it, conv(ModeX)); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- m.Acquire(t2, it, conv(ModeX)) }()
	select {
	case err := <-got:
		t.Fatalf("second X granted while first held: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	m.ReleaseAll(t1)
	if err := <-got; err != nil {
		t.Fatal(err)
	}
}

func TestReentrancyAndConversion(t *testing.T) {
	m := NewManager(newStub())
	t1 := NewTxnInfo(1, 1)
	it := item("a")
	// S then S: no-op. S then X: conversion. X then S: covered.
	for _, mode := range []Mode{ModeS, ModeS, ModeX, ModeS, ModeIS, ModeIX} {
		if err := m.Acquire(t1, it, conv(mode)); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
	}
	if !m.HoldsConventional(1, it, ModeX) {
		t.Fatal("conversion to X lost")
	}
}

func TestConversionSIX(t *testing.T) {
	m := NewManager(newStub())
	t1 := NewTxnInfo(1, 1)
	tbl := TableItem("t")
	if err := m.Acquire(t1, tbl, conv(ModeS)); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(t1, tbl, conv(ModeIX)); err != nil {
		t.Fatal(err)
	}
	if !m.HoldsConventional(1, tbl, ModeSIX) {
		t.Fatal("S + IX should convert to SIX")
	}
}

func TestConversionWaitsForOtherReaders(t *testing.T) {
	m := NewManager(newStub())
	t1, t2 := NewTxnInfo(1, 1), NewTxnInfo(2, 1)
	it := item("a")
	m.Acquire(t1, it, conv(ModeS))
	m.Acquire(t2, it, conv(ModeS))
	done := make(chan error, 1)
	go func() { done <- m.Acquire(t1, it, conv(ModeX)) }()
	select {
	case <-done:
		t.Fatal("upgrade granted while another reader held S")
	case <-time.After(30 * time.Millisecond):
	}
	m.ReleaseAll(t2)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestFIFOFairnessNoWriterStarvation(t *testing.T) {
	m := NewManager(newStub())
	it := item("a")
	r1 := NewTxnInfo(1, 1)
	m.Acquire(r1, it, conv(ModeS))
	// Writer queues.
	wDone := make(chan error, 1)
	w := NewTxnInfo(2, 1)
	go func() { wDone <- m.Acquire(w, it, conv(ModeX)) }()
	time.Sleep(20 * time.Millisecond)
	// A later reader must queue behind the writer, not jump it.
	rDone := make(chan error, 1)
	r2 := NewTxnInfo(3, 1)
	go func() { rDone <- m.Acquire(r2, it, conv(ModeS)) }()
	select {
	case <-rDone:
		t.Fatal("late reader jumped the queued writer")
	case <-time.After(30 * time.Millisecond):
	}
	m.ReleaseAll(r1)
	if err := <-wDone; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(w)
	if err := <-rDone; err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockVictimIsCycleCloser(t *testing.T) {
	m := NewManager(newStub())
	t1, t2 := NewTxnInfo(1, 1), NewTxnInfo(2, 1)
	a, b := item("a"), item("b")
	m.Acquire(t1, a, conv(ModeX))
	m.Acquire(t2, b, conv(ModeX))
	got1 := make(chan error, 1)
	go func() { got1 <- m.Acquire(t1, b, conv(ModeX)) }()
	time.Sleep(20 * time.Millisecond)
	// t2 closes the cycle and must be the victim.
	err := m.Acquire(t2, a, conv(ModeX))
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("cycle closer got %v, want ErrDeadlock", err)
	}
	// t1 is still waiting; releasing t2 frees it.
	m.ReleaseAll(t2)
	if err := <-got1; err != nil {
		t.Fatal(err)
	}
	if m.Stats().Deadlocks == 0 {
		t.Fatal("deadlock not counted")
	}
}

func TestCompensatingStepNeverVictim(t *testing.T) {
	m := NewManager(newStub())
	cs, fw := NewTxnInfo(1, 1), NewTxnInfo(2, 1)
	a, b := item("a"), item("b")
	m.Acquire(cs, a, conv(ModeX))
	m.Acquire(fw, b, conv(ModeX))
	fwDone := make(chan error, 1)
	go func() { fwDone <- m.Acquire(fw, a, conv(ModeX)) }() // fw waits on cs
	time.Sleep(20 * time.Millisecond)
	// The compensating step closes the cycle: the forward waiter dies, not it.
	req := Request{Mode: ModeX, Step: 1, Compensating: true}
	csDone := make(chan error, 1)
	go func() { csDone <- m.Acquire(cs, b, req) }()
	if err := <-fwDone; !errors.Is(err, ErrAborted) {
		t.Fatalf("forward waiter got %v, want ErrAborted", err)
	}
	// After the forward txn releases, the compensating request completes.
	m.ReleaseAll(fw)
	if err := <-csDone; err != nil {
		t.Fatal(err)
	}
	if m.Stats().VictimsForComp != 1 {
		t.Fatalf("VictimsForComp = %d", m.Stats().VictimsForComp)
	}
}

func TestAssertionalLockBlocksInterferingWriter(t *testing.T) {
	o := newStub()
	o.setInterferes(7, 42, true) // step 7 interferes with assertion 42
	m := NewManager(o)
	holder, writer := NewTxnInfo(1, 1), NewTxnInfo(2, 1)
	it := item("x")
	if err := m.Acquire(holder, it, Request{Mode: ModeA, Step: 1, Assertion: 42}); err != nil {
		t.Fatal(err)
	}
	// A non-interfering writer passes.
	ok := NewTxnInfo(3, 1)
	if err := m.Acquire(ok, it, Request{Mode: ModeX, Step: 9}); err != nil {
		t.Fatalf("non-interfering writer blocked: %v", err)
	}
	m.ReleaseAll(ok)
	// The interfering writer waits until the assertion is released.
	done := make(chan error, 1)
	go func() { done <- m.Acquire(writer, it, Request{Mode: ModeX, Step: 7}) }()
	select {
	case <-done:
		t.Fatal("interfering writer not blocked by assertional lock")
	case <-time.After(30 * time.Millisecond):
	}
	m.ReleaseAssertion(holder, 42)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestAssertionalLocksNeverConflictWithEachOtherOrReaders(t *testing.T) {
	o := newStub()
	o.setInterferes(1, 1, true)
	m := NewManager(o)
	t1, t2, t3 := NewTxnInfo(1, 1), NewTxnInfo(2, 1), NewTxnInfo(3, 1)
	it := item("x")
	if err := m.Acquire(t1, it, Request{Mode: ModeA, Step: 1, Assertion: 1}); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(t2, it, Request{Mode: ModeA, Step: 1, Assertion: 2}); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(t3, it, Request{Mode: ModeS, Step: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestExposureIsolatesUndeclaredSteps(t *testing.T) {
	o := newStub()
	o.setInterleave(5, 1, true) // step 5 may see txn type 1's state
	m := NewManager(o)
	holder := NewTxnInfo(1, 1) // txn type 1
	it := item("x")
	m.AttachExposure(holder, it)
	// Declared step passes.
	friend := NewTxnInfo(2, 2)
	if err := m.Acquire(friend, it, Request{Mode: ModeS, Step: 5}); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(friend)
	// A legacy step blocks until the holder commits.
	legacy := NewTxnInfo(3, interference.LegacyTxn)
	done := make(chan error, 1)
	go func() {
		done <- m.Acquire(legacy, it, Request{Mode: ModeS, Step: interference.LegacyStep})
	}()
	select {
	case <-done:
		t.Fatal("legacy step read exposed intermediate state")
	case <-time.After(30 * time.Millisecond):
	}
	m.ReleaseAll(holder)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestExposureIntentionModesPass(t *testing.T) {
	m := NewManager(newStub())
	holder := NewTxnInfo(1, 1)
	it := PartitionItem("t", "p")
	m.AttachExposure(holder, it)
	other := NewTxnInfo(2, 2)
	if err := m.Acquire(other, it, Request{Mode: ModeIX, Step: 9}); err != nil {
		t.Fatal("IX should pass exposure (checked at finer granule)")
	}
}

func TestExposureBreakpointSensitivity(t *testing.T) {
	o := newStub()
	m := NewManager(o)
	holder := NewTxnInfo(1, 1)
	it := item("x")
	m.AttachExposure(holder, it)
	reader := NewTxnInfo(2, 2)
	done := make(chan error, 1)
	go func() { done <- m.Acquire(reader, it, Request{Mode: ModeS, Step: 5}) }()
	select {
	case <-done:
		t.Fatal("reader passed disallowed breakpoint")
	case <-time.After(30 * time.Millisecond):
	}
	// Allow interleaving (as if the next breakpoint's table entry differed),
	// advance the holder, and release a step: the waiter must be re-examined.
	o.setInterleave(5, 1, true)
	holder.AdvanceStep()
	m.ReleaseConventional(holder) // triggers the grant pass at step boundary
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestReservationBlocksInterferingAssertion(t *testing.T) {
	o := newStub()
	o.setInterferes(99, 7, true) // CS type 99 interferes with assertion 7
	m := NewManager(o)
	owner := NewTxnInfo(1, 1)
	it := item("x")
	m.AttachReservation(owner, it, 99)
	// Interfering assertional request blocks.
	other := NewTxnInfo(2, 2)
	done := make(chan error, 1)
	go func() { done <- m.Acquire(other, it, Request{Mode: ModeA, Step: 3, Assertion: 7}) }()
	select {
	case <-done:
		t.Fatal("assertion the compensation would invalidate was granted")
	case <-time.After(30 * time.Millisecond):
	}
	m.ReleaseAll(owner)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Non-interfering assertion passes.
	m.AttachReservation(owner, it, 99)
	third := NewTxnInfo(3, 2)
	if err := m.Acquire(third, it, Request{Mode: ModeA, Step: 3, Assertion: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestAssertionVsExposurePrefixCheck(t *testing.T) {
	o := newStub()
	o.setPrefixSafe(1, 7, true) // txn type 1's prefixes leave assertion 7 true
	m := NewManager(o)
	holder := NewTxnInfo(1, 1)
	it := item("x")
	m.AttachExposure(holder, it)
	// Safe-prefix assertion is granted over the exposure.
	safe := NewTxnInfo(2, 2)
	if err := m.Acquire(safe, it, Request{Mode: ModeA, Step: 3, Assertion: 7}); err != nil {
		t.Fatal(err)
	}
	// Unknown assertion conservatively blocks.
	unsafe := NewTxnInfo(3, 2)
	done := make(chan error, 1)
	go func() { done <- m.Acquire(unsafe, it, Request{Mode: ModeA, Step: 3, Assertion: 8}) }()
	select {
	case <-done:
		t.Fatal("assertion locked over interfering prefix")
	case <-time.After(30 * time.Millisecond):
	}
	m.ReleaseAll(holder)
	<-done
}

func TestReleaseStepAbortKeepsAssertionsDropsStepMarks(t *testing.T) {
	m := NewManager(newStub())
	txn := NewTxnInfo(1, 1)
	it := item("x")
	m.Acquire(txn, it, Request{Mode: ModeA, Step: 1, Assertion: 7})
	m.Acquire(txn, it, conv(ModeX))
	txn.SetCompletedSteps(2)
	m.AttachExposure(txn, it) // stepSeq = 2 (current step)
	m.ReleaseStepAbort(txn)
	// Conventional and this step's exposure gone; assertional retained.
	if m.HoldsConventional(1, it, ModeS) {
		t.Fatal("conventional lock survived step abort")
	}
	items := m.HeldItems(1)
	if len(items) != 1 {
		t.Fatalf("held items after abort: %v", items)
	}
	// Exposure from an earlier step survives a later step's abort.
	txn2 := NewTxnInfo(2, 1)
	m.AttachExposure(txn2, it) // at step 0
	txn2.SetCompletedSteps(3)
	m.ReleaseStepAbort(txn2)
	legacy := NewTxnInfo(9, interference.LegacyTxn)
	done := make(chan error, 1)
	go func() {
		done <- m.Acquire(legacy, it, Request{Mode: ModeX, Step: interference.LegacyStep})
	}()
	select {
	case <-done:
		t.Fatal("early-step exposure dropped by later step abort")
	case <-time.After(30 * time.Millisecond):
	}
	m.ReleaseAll(txn2)
	m.ReleaseAll(txn)
	<-done
}

func TestCancelWait(t *testing.T) {
	m := NewManager(newStub())
	t1, t2 := NewTxnInfo(1, 1), NewTxnInfo(2, 1)
	it := item("x")
	m.Acquire(t1, it, conv(ModeX))
	done := make(chan error, 1)
	go func() { done <- m.Acquire(t2, it, conv(ModeX)) }()
	time.Sleep(20 * time.Millisecond)
	m.CancelWait(2)
	if err := <-done; !errors.Is(err, ErrAborted) {
		t.Fatalf("got %v, want ErrAborted", err)
	}
}

func TestWaitTimeout(t *testing.T) {
	m := NewManager(newStub())
	m.WaitTimeout = 30 * time.Millisecond
	t1, t2 := NewTxnInfo(1, 1), NewTxnInfo(2, 1)
	it := item("x")
	m.Acquire(t1, it, conv(ModeX))
	start := time.Now()
	err := m.Acquire(t2, it, conv(ModeX))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("timeout took too long")
	}
	// After the timeout the queue must be clean: release and retry works.
	m.ReleaseAll(t1)
	if err := m.Acquire(t2, it, conv(ModeX)); err != nil {
		t.Fatal(err)
	}
}

func TestVictimRemovalUnblocksLaterWaiters(t *testing.T) {
	// A waiter queued behind a deadlock victim must be re-examined when the
	// victim is removed (the lost-wakeup regression).
	m := NewManager(newStub())
	t1, t2, t3 := NewTxnInfo(1, 1), NewTxnInfo(2, 1), NewTxnInfo(3, 1)
	a, b := item("a"), item("b")
	m.Acquire(t1, a, conv(ModeX))
	m.Acquire(t2, b, conv(ModeX))
	done1 := make(chan error, 1)
	go func() { done1 <- m.Acquire(t1, b, conv(ModeX)) }() // t1 waits for t2
	time.Sleep(20 * time.Millisecond)
	done3 := make(chan error, 1)
	go func() { done3 <- m.Acquire(t3, b, conv(ModeS)) }() // t3 queues behind t1
	time.Sleep(20 * time.Millisecond)
	// t2 closes the cycle: victim. t1 still waits; t3 still waits.
	if err := m.Acquire(t2, a, conv(ModeX)); !errors.Is(err, ErrDeadlock) {
		t.Fatal("expected deadlock")
	}
	m.ReleaseAll(t2) // t1 gets b, t3 remains behind t1's X
	if err := <-done1; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(t1)
	if err := <-done3; err != nil {
		t.Fatal(err)
	}
}

func TestStressManyTxnsNoLeaks(t *testing.T) {
	o := newStub()
	m := NewManager(o)
	m.WaitTimeout = 5 * time.Second
	var wg sync.WaitGroup
	items := []Item{item("a"), item("b"), item("c"), item("d")}
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				txn := NewTxnInfo(TxnID(g*1000+i+1), 1)
				for j, it := range items {
					mode := ModeS
					if (g+i+j)%3 == 0 {
						mode = ModeX
					}
					if err := m.Acquire(txn, it, conv(mode)); err != nil {
						break // deadlock victim: give up this txn
					}
				}
				m.ReleaseAll(txn)
			}
		}(g)
	}
	wg.Wait()
	// Everything must be released: a fresh X on every item succeeds at once.
	probe := NewTxnInfo(999999, 1)
	for _, it := range items {
		if err := m.Acquire(probe, it, conv(ModeX)); err != nil {
			t.Fatalf("leaked lock on %v: %v", it, err)
		}
	}
}
