package lock

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The lock table is partitioned into shards, mirroring the sharded hash
// table of lock chains inside the Ingres lock manager the paper modified.
// Each shard owns its own latch, item map, wait queues, held-set index and
// counters, so Acquires on unrelated items proceed in parallel.
//
// Invariant: a goroutine never holds two shard latches at once, and never
// holds a shard latch and the waits-for registry latch at the same time.
// Everything cross-shard (deadlock detection, multi-item release, stats
// aggregation) works one shard at a time.
//
// Each shard recycles its lock-chain machinery — lock states, grant
// entries and per-transaction held lists — through small freelists guarded
// by the shard latch, and retains a bounded number of empty lock states in
// the item map, so the grant/release hot path performs no allocations and
// no map inserts/deletes in steady state.

// maxShards caps the shard count so a transaction's touched-shard set fits
// in one atomic bitmask word (spi.Txn.ShardMask).
const maxShards = 64

// maxEmptyStates bounds how many item-less lock states a shard retains in
// its map to keep hot items' chains warm; beyond it, empties are unlinked
// and recycled through the freelist.
const maxEmptyStates = 1024

// freelistCap bounds each shard's recycling freelists.
const freelistCap = 256

// defaultShardCount picks N = max(16, 4×GOMAXPROCS), rounded up to a power
// of two and capped at maxShards.
func defaultShardCount() int {
	n := 4 * runtime.GOMAXPROCS(0)
	if n < 16 {
		n = 16
	}
	if n > maxShards {
		n = maxShards
	}
	return ceilPow2(n)
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// classKey identifies a (table, level, mode) contention class. Using a
// struct key instead of a concatenated string keeps the per-wait accounting
// allocation-free on the hot path.
type classKey struct {
	table string
	level Level
	mode  Mode
}

func (k classKey) String() string {
	return k.table + "/" + k.level.String() + "/" + k.mode.String()
}

// shardCounters are bumped atomically (without the shard latch) and
// aggregated by Manager.Snapshot.
type shardCounters struct {
	acquisitions   atomic.Uint64
	waits          atomic.Uint64
	waitNanos      atomic.Uint64
	deadlocks      atomic.Uint64
	victimsForComp atomic.Uint64
}

// heldSet lists the items a transaction holds entries on within one shard.
// A slice (with linear dedup in noteHeld) beats a map here: transactions
// hold few items per shard, and the pointer indirection keeps the held map
// free of per-append reassignments.
type heldSet struct {
	items []Item
}

// shard is one partition of the lock table.
type shard struct {
	mu      sync.Mutex
	items   map[Item]*lockState
	held    map[TxnID]*heldSet
	byClass map[classKey]*ClassStats // guarded by mu

	// emptyStates counts empty lock states currently retained in items.
	emptyStates int

	// Freelists, guarded by mu.
	statePool []*lockState
	grantPool []*grant
	heldPool  []*heldSet

	stats shardCounters

	// bit is this shard's position in spi.Txn.ShardMask.
	bit uint64
	// idx is the shard's index, tagged onto trace events and snapshots.
	idx int16

	// Pad shards apart so neighbouring shards' latches and counters do not
	// share a cache line.
	_ [64]byte
}

func newShard(i int) *shard {
	return &shard{
		items:   make(map[Item]*lockState),
		held:    make(map[TxnID]*heldSet),
		byClass: make(map[classKey]*ClassStats),
		bit:     1 << uint(i),
		idx:     int16(i),
	}
}

// state returns the lock state for item, creating it if needed. Caller
// holds sh.mu. Every caller either finds existing entries or installs a
// grant/waiter, so a retained-empty state returned here is counted as
// in-use again.
func (sh *shard) state(item Item) *lockState {
	st, ok := sh.items[item]
	if !ok {
		if n := len(sh.statePool); n > 0 {
			st = sh.statePool[n-1]
			sh.statePool = sh.statePool[:n-1]
		} else {
			st = &lockState{}
		}
		sh.items[item] = st
	} else if len(st.grants) == 0 && len(st.queue) == 0 {
		sh.emptyStates--
	}
	return st
}

// reapState is called after an item's grants and queue emptied. It retains
// the empty state in the map (up to maxEmptyStates) so re-locking a hot
// item performs no map insert; overflow is unlinked and recycled. Caller
// holds sh.mu.
func (sh *shard) reapState(item Item, st *lockState) {
	if sh.emptyStates < maxEmptyStates {
		sh.emptyStates++
		return
	}
	delete(sh.items, item)
	if len(sh.statePool) < freelistCap {
		st.grants = st.grants[:0]
		st.queue = st.queue[:0]
		sh.statePool = append(sh.statePool, st)
	}
}

// newGrant returns a zeroed grant from the freelist. Caller holds sh.mu.
func (sh *shard) newGrant() *grant {
	if n := len(sh.grantPool); n > 0 {
		g := sh.grantPool[n-1]
		sh.grantPool = sh.grantPool[:n-1]
		return g
	}
	return &grant{}
}

// freeGrant recycles a dropped grant. Caller holds sh.mu.
func (sh *shard) freeGrant(g *grant) {
	*g = grant{}
	if len(sh.grantPool) < freelistCap {
		sh.grantPool = append(sh.grantPool, g)
	}
}

// noteHeld records that txn holds an entry on item in this shard and marks
// the shard in the transaction's touched-shard set. Caller holds sh.mu.
func (sh *shard) noteHeld(txn *TxnInfo, item Item) {
	hs, ok := sh.held[txn.ID]
	if !ok {
		if n := len(sh.heldPool); n > 0 {
			hs = sh.heldPool[n-1]
			sh.heldPool = sh.heldPool[:n-1]
		} else {
			hs = &heldSet{}
		}
		sh.held[txn.ID] = hs
		markShard(txn, sh.bit)
	}
	for _, it := range hs.items {
		if it == item {
			return
		}
	}
	hs.items = append(hs.items, item)
}

// dropHeld removes the transaction's held record and recycles it. Caller
// holds sh.mu.
func (sh *shard) dropHeld(txn TxnID, hs *heldSet) {
	delete(sh.held, txn)
	hs.items = hs.items[:0]
	if len(sh.heldPool) < freelistCap {
		sh.heldPool = append(sh.heldPool, hs)
	}
}

// recordWait tallies one finished wait (granted, aborted, deadlocked or
// timed out — every exit path) against the shard and its contention class.
func (sh *shard) recordWait(item Item, mode Mode, waitedNanos uint64) {
	sh.stats.waitNanos.Add(waitedNanos)
	k := classKey{table: item.Table, level: item.Level, mode: mode}
	sh.mu.Lock()
	cs, ok := sh.byClass[k]
	if !ok {
		cs = &ClassStats{}
		sh.byClass[k] = cs
	}
	cs.Waits++
	cs.WaitNanos += waitedNanos
	sh.mu.Unlock()
}

// shardOf routes an item to its shard by an FNV-1a hash of the full item
// identity (table, level, key).
func (m *Manager) shardOf(item Item) *shard {
	return m.shards[m.shardIndex(item)]
}

func (m *Manager) shardIndex(item Item) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(item.Table); i++ {
		h = (h ^ uint64(item.Table[i])) * prime64
	}
	h = (h ^ uint64(item.Level)) * prime64
	for i := 0; i < len(item.Key); i++ {
		h = (h ^ uint64(item.Key[i])) * prime64
	}
	return int(h & m.shardMask)
}
