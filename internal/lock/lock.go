// Package lock implements the multi-granularity lock manager underlying both
// the baseline strict-2PL scheduler and the assertional concurrency control.
// It is the default spi.LockService implementation, registered via
// spi.RegisterLockService; the scheduler reaches it only through that
// interface, and the request/item/mode vocabulary lives in accdb/internal/spi
// (aliased here for the package's own tests and direct users).
//
// Beyond the conventional IS/IX/S/SIX/X modes the manager supports the three
// lock flavours the paper adds to Open Ingres:
//
//   - assertional locks A(p) (§3.2): attached to items referenced by an
//     active interstep assertion p; they block writers whose step type
//     interferes with p (a design-time table lookup, never a run-time
//     predicate evaluation);
//   - exposure marks (§3.3 end): attached to items a multi-step transaction
//     has written and kept until commit; they block steps that are not
//     declared interleavable at the holder's current breakpoint — this is
//     what keeps legacy and ad-hoc transactions fully isolated;
//   - compensation reservations (§3.4): attached to items a forward step has
//     modified; they prevent other transactions from assertionally locking
//     those items with assertions the compensating step would interfere
//     with, which guarantees a compensating step never waits on an
//     assertional lock.
//
// Deadlocks are detected by cycle search in the waits-for graph at block
// time. The victim is the request that completes the cycle (§3.4), except
// that a compensating step is never the victim: the manager instead aborts a
// forward-step waiter on the cycle so the compensation can proceed.
//
// The lock table is partitioned into shards — max(16, 4×GOMAXPROCS),
// capped at 64 — each with its own latch, item map and wait queues, like
// the sharded hash table of lock chains in the Ingres lock manager the
// paper modified. Blocked requests are additionally published in a small
// cross-shard waits-for registry so deadlock detection and cancellation
// can find them without a global latch; see shard.go and deadlock.go.
package lock

import (
	"accdb/internal/spi"
)

// TxnID identifies a transaction instance.
type TxnID = spi.TxnID

// Level distinguishes the three granules of the lock hierarchy.
type Level = spi.Level

// Lock hierarchy levels, re-exported from the SPI.
const (
	// LevelTable locks a whole relation.
	LevelTable = spi.LevelTable
	// LevelPartition locks a declared key-range of a relation.
	LevelPartition = spi.LevelPartition
	// LevelRow locks a single tuple by primary key.
	LevelRow = spi.LevelRow
)

// Item names a lockable database item.
type Item = spi.Item

// Item constructors, re-exported from the SPI.
var (
	// TableItem names the table-level item of a relation.
	TableItem = spi.TableItem
	// PartitionItem names a partition granule of a relation.
	PartitionItem = spi.PartitionItem
	// RowItem names a row granule of a relation.
	RowItem = spi.RowItem
)

// Mode is a conventional lock mode.
type Mode = spi.Mode

// Conventional lock modes plus the assertional mode, re-exported from the SPI.
const (
	// ModeIS is intention-shared.
	ModeIS = spi.ModeIS
	// ModeIX is intention-exclusive.
	ModeIX = spi.ModeIX
	// ModeS is shared.
	ModeS = spi.ModeS
	// ModeSIX is shared with intention-exclusive.
	ModeSIX = spi.ModeSIX
	// ModeX is exclusive.
	ModeX = spi.ModeX
	// ModeA is an assertional lock; requests carry the assertion ID.
	ModeA = spi.ModeA
)

// conventionalCompat is the standard multi-granularity compatibility matrix.
func conventionalCompat(a, b Mode) bool {
	switch a {
	case ModeIS:
		return b != ModeX
	case ModeIX:
		return b == ModeIS || b == ModeIX
	case ModeS:
		return b == ModeIS || b == ModeS
	case ModeSIX:
		return b == ModeIS
	case ModeX:
		return false
	}
	return false
}

// covers reports whether holding mode `held` already grants the privileges
// of `want`.
func covers(held, want Mode) bool {
	if held == want {
		return true
	}
	switch held {
	case ModeX:
		return true
	case ModeSIX:
		return want == ModeS || want == ModeIX || want == ModeIS
	case ModeS:
		return want == ModeIS
	case ModeIX:
		return want == ModeIS
	}
	return false
}

// sup returns the least mode at least as strong as both arguments (the
// conversion target when a transaction re-requests an item).
func sup(a, b Mode) Mode {
	if covers(a, b) {
		return a
	}
	if covers(b, a) {
		return b
	}
	// The only incomparable pairs among {IS,IX,S,SIX,X} are (IX,S) and
	// (S,IX); their join is SIX.
	if (a == ModeIX && b == ModeS) || (a == ModeS && b == ModeIX) {
		return ModeSIX
	}
	return ModeX
}

// Oracle answers the design-time interference questions; in production it is
// *interference.Tables, but tests may stub it.
type Oracle = spi.Oracle

// TxnInfo is the lock manager's view of a transaction instance (spi.Txn).
type TxnInfo = spi.Txn

// NewTxnInfo constructs the lock-side descriptor of a transaction.
var NewTxnInfo = spi.NewTxn

// markShard records that the transaction touched the shard with the given
// bitmask bit, in the scratch mask spi.Txn reserves for the lock service.
func markShard(t *TxnInfo, bit uint64) {
	for {
		old := t.ShardMask.Load()
		if old&bit != 0 || t.ShardMask.CompareAndSwap(old, old|bit) {
			return
		}
	}
}

// Request describes one lock acquisition (spi.LockRequest).
type Request = spi.LockRequest

// Errors returned by Acquire; identities are shared with the SPI so
// errors.Is works across the seam.
var (
	// ErrDeadlock reports that the request completed a waits-for cycle and
	// was chosen as the victim. The caller aborts and retries the step.
	ErrDeadlock = spi.ErrDeadlock
	// ErrAborted reports that the waiting request was aborted from outside —
	// either by Manager.CancelWait or because a compensating step needed the
	// cycle broken.
	ErrAborted = spi.ErrAborted
	// ErrTimeout reports that the configured wait budget elapsed.
	ErrTimeout = spi.ErrTimeout
)
