// Package lock implements the multi-granularity lock manager underlying both
// the baseline strict-2PL scheduler and the assertional concurrency control.
//
// Beyond the conventional IS/IX/S/SIX/X modes the manager supports the three
// lock flavours the paper adds to Open Ingres:
//
//   - assertional locks A(p) (§3.2): attached to items referenced by an
//     active interstep assertion p; they block writers whose step type
//     interferes with p (a design-time table lookup, never a run-time
//     predicate evaluation);
//   - exposure marks (§3.3 end): attached to items a multi-step transaction
//     has written and kept until commit; they block steps that are not
//     declared interleavable at the holder's current breakpoint — this is
//     what keeps legacy and ad-hoc transactions fully isolated;
//   - compensation reservations (§3.4): attached to items a forward step has
//     modified; they prevent other transactions from assertionally locking
//     those items with assertions the compensating step would interfere
//     with, which guarantees a compensating step never waits on an
//     assertional lock.
//
// Deadlocks are detected by cycle search in the waits-for graph at block
// time. The victim is the request that completes the cycle (§3.4), except
// that a compensating step is never the victim: the manager instead aborts a
// forward-step waiter on the cycle so the compensation can proceed.
//
// The lock table is partitioned into shards — max(16, 4×GOMAXPROCS),
// capped at 64 — each with its own latch, item map and wait queues, like
// the sharded hash table of lock chains in the Ingres lock manager the
// paper modified. Blocked requests are additionally published in a small
// cross-shard waits-for registry so deadlock detection and cancellation
// can find them without a global latch; see shard.go and deadlock.go.
package lock

import (
	"errors"
	"fmt"
	"sync/atomic"

	"accdb/internal/interference"
	"accdb/internal/storage"
	"accdb/internal/trace"
)

// TxnID identifies a transaction instance.
type TxnID uint64

// Level distinguishes the three granules of the lock hierarchy.
type Level uint8

const (
	// LevelTable locks a whole relation.
	LevelTable Level = iota + 1
	// LevelPartition locks a declared key-range of a relation (the stand-in
	// for Ingres page locks); inserts and deletes lock the partition
	// exclusively, scans lock it shared, which also closes the phantom
	// window for set-valued assertions.
	LevelPartition
	// LevelRow locks a single tuple by primary key.
	LevelRow
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelTable:
		return "table"
	case LevelPartition:
		return "partition"
	case LevelRow:
		return "row"
	default:
		return fmt.Sprintf("Level(%d)", uint8(l))
	}
}

// Item names a lockable database item.
type Item struct {
	Table string
	Level Level
	Key   storage.Key // empty at table level; partition key or row PK below
}

// TableItem names the table-level item of a relation.
func TableItem(table string) Item { return Item{Table: table, Level: LevelTable} }

// PartitionItem names a partition granule of a relation.
func PartitionItem(table string, key storage.Key) Item {
	return Item{Table: table, Level: LevelPartition, Key: key}
}

// RowItem names a row granule of a relation.
func RowItem(table string, pk storage.Key) Item {
	return Item{Table: table, Level: LevelRow, Key: pk}
}

// String renders the item for diagnostics.
func (it Item) String() string {
	if it.Level == LevelTable {
		return it.Table
	}
	return fmt.Sprintf("%s[%s/%x]", it.Table, it.Level, string(it.Key))
}

// Mode is a conventional lock mode.
type Mode uint8

const (
	// ModeIS is intention-shared.
	ModeIS Mode = iota + 1
	// ModeIX is intention-exclusive.
	ModeIX
	// ModeS is shared.
	ModeS
	// ModeSIX is shared with intention-exclusive.
	ModeSIX
	// ModeX is exclusive.
	ModeX
	// ModeA is an assertional lock; requests carry the assertion ID.
	ModeA
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeIS:
		return "IS"
	case ModeIX:
		return "IX"
	case ModeS:
		return "S"
	case ModeSIX:
		return "SIX"
	case ModeX:
		return "X"
	case ModeA:
		return "A"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// conventionalCompat is the standard multi-granularity compatibility matrix.
func conventionalCompat(a, b Mode) bool {
	switch a {
	case ModeIS:
		return b != ModeX
	case ModeIX:
		return b == ModeIS || b == ModeIX
	case ModeS:
		return b == ModeIS || b == ModeS
	case ModeSIX:
		return b == ModeIS
	case ModeX:
		return false
	}
	return false
}

// covers reports whether holding mode `held` already grants the privileges
// of `want`.
func covers(held, want Mode) bool {
	if held == want {
		return true
	}
	switch held {
	case ModeX:
		return true
	case ModeSIX:
		return want == ModeS || want == ModeIX || want == ModeIS
	case ModeS:
		return want == ModeIS
	case ModeIX:
		return want == ModeIS
	}
	return false
}

// sup returns the least mode at least as strong as both arguments (the
// conversion target when a transaction re-requests an item).
func sup(a, b Mode) Mode {
	if covers(a, b) {
		return a
	}
	if covers(b, a) {
		return b
	}
	// The only incomparable pairs among {IS,IX,S,SIX,X} are (IX,S) and
	// (S,IX); their join is SIX.
	if (a == ModeIX && b == ModeS) || (a == ModeS && b == ModeIX) {
		return ModeSIX
	}
	return ModeX
}

// Oracle answers the design-time interference questions; in production it is
// *interference.Tables, but tests may stub it.
type Oracle interface {
	Interferes(step interference.StepTypeID, a interference.AssertionID) bool
	PrefixInterferes(txn interference.TxnTypeID, completed int, a interference.AssertionID) bool
	MayInterleave(step interference.StepTypeID, holder interference.TxnTypeID, completed int) bool
}

// TxnInfo is the lock manager's view of a transaction instance. The engine
// creates one per transaction and advances CompletedSteps at each step
// boundary; exposure conflicts consult the live value so that the
// interleaving specification is breakpoint-accurate.
type TxnInfo struct {
	ID   TxnID
	Type interference.TxnTypeID

	// Span, when non-nil, is the transaction's latency-anatomy span: the
	// manager charges blocked time to the per-mode lock-wait stages and
	// records each wait in the span's event history. Only the transaction's
	// own goroutine reads the field, so it needs no synchronization.
	Span *trace.Span

	completed atomic.Int32

	// shardSet is a bitmask of lock-table shards on which this transaction
	// holds (or has held) entries; release passes visit only these shards.
	// It only ever grows — a stale bit costs one empty shard visit.
	shardSet atomic.Uint64
}

// NewTxnInfo constructs the lock-side descriptor of a transaction.
func NewTxnInfo(id TxnID, typ interference.TxnTypeID) *TxnInfo {
	return &TxnInfo{ID: id, Type: typ}
}

// CompletedSteps returns the number of forward steps the transaction has
// finished.
func (t *TxnInfo) CompletedSteps() int { return int(t.completed.Load()) }

// AdvanceStep records the completion of one forward step.
func (t *TxnInfo) AdvanceStep() { t.completed.Add(1) }

// SetCompletedSteps overrides the step counter (used by recovery).
func (t *TxnInfo) SetCompletedSteps(n int) { t.completed.Store(int32(n)) }

// markShard records that the transaction touched the shard with the given
// bitmask bit.
func (t *TxnInfo) markShard(bit uint64) {
	for {
		old := t.shardSet.Load()
		if old&bit != 0 || t.shardSet.CompareAndSwap(old, old|bit) {
			return
		}
	}
}

// Request describes one lock acquisition.
type Request struct {
	// Mode is the requested mode; ModeA requests also set Assertion.
	Mode Mode
	// Step is the requesting step's type, used for interference lookups.
	// Undecomposed transactions use interference.LegacyStep.
	Step interference.StepTypeID
	// Assertion is the assertion being locked when Mode == ModeA.
	Assertion interference.AssertionID
	// Compensating marks requests issued by a compensating step; such a
	// request is never chosen as a deadlock victim.
	Compensating bool
}

// Errors returned by Acquire.
var (
	// ErrDeadlock reports that the request completed a waits-for cycle and
	// was chosen as the victim. The caller aborts and retries the step.
	ErrDeadlock = errors.New("lock: deadlock victim")
	// ErrAborted reports that the waiting request was aborted from outside —
	// either by Manager.CancelWait or because a compensating step needed the
	// cycle broken.
	ErrAborted = errors.New("lock: wait aborted")
	// ErrTimeout reports that the configured wait budget elapsed.
	ErrTimeout = errors.New("lock: wait timed out")
)
