package lock

import (
	"context"
	"time"

	"accdb/internal/interference"
	"accdb/internal/spi"
	"accdb/internal/trace"
)

func init() {
	spi.RegisterLockService(func(o spi.Oracle) spi.LockService { return NewManager(o) })
}

// Mode tags for the paper's non-conventional entry kinds, as they appear in
// trace events and snapshots: A = assertional lock, D = displayed (exposed)
// intermediate state mark, C = compensation reservation.
const (
	tagExposure    = "D"
	tagReservation = "C"
)

type grantKind uint8

const (
	kindConventional grantKind = iota + 1
	kindAssertional
	kindExposure
	kindReservation
)

// grant is one held entry on an item. A transaction may hold several entries
// of different kinds on the same item (e.g. a conventional X, an assertional
// lock, and an exposure mark).
type grant struct {
	txn  *TxnInfo
	kind grantKind

	mode      Mode                     // conventional
	step      interference.StepTypeID  // conventional, assertional: acquiring step type
	assertion interference.AssertionID // assertional
	csTypes   []interference.StepTypeID

	// stepSeq is the holder's CompletedSteps value when the entry was
	// attached; step aborts remove entries attached during the failed step.
	stepSeq int
}

// waiter is a blocked Acquire. Its granted/err fields are guarded by the
// owning shard's latch (sh.mu); the grantor (grant pass, victim kill,
// cancel) sets exactly one outcome and signals ch exactly once, all under
// that latch.
type waiter struct {
	txn  *TxnInfo
	req  Request
	item Item
	sh   *shard
	conv bool // conversion request (trace events tag these as upgrades)

	// stage and blockedBy classify the wait for latency-anatomy spans: the
	// per-mode lock-wait stage and the mode tag of the entry that blocked
	// the request, both fixed at block time under the shard latch. Only set
	// when txn.Span is non-nil.
	stage     trace.SpanStage
	blockedBy string

	granted bool
	err     error
	ch      chan struct{}
}

type lockState struct {
	grants []*grant
	queue  []*waiter
}

// Stats aggregates lock-manager counters (spi.LockStats).
type Stats = spi.LockStats

// Manager is the lock manager. The lock table is partitioned into shards —
// the structure of the sharded Ingres lock manager the paper modified —
// each with its own latch, item map and wait queues, so Acquires on
// unrelated items proceed in parallel. Wait queues park on per-waiter
// channels; blocked requests are published in a cross-shard waits-for
// registry for deadlock detection and cancellation.
type Manager struct {
	oracle Oracle

	// WaitTimeout bounds each blocking Acquire; zero means wait forever.
	// It is a safety net for tests and drivers, not a scheduling policy.
	WaitTimeout time.Duration

	shards    []*shard
	shardMask uint64

	reg waitRegistry

	// tracer is the structured event bus; nil disables tracing. Every emit
	// site nil-checks first, so the disabled cost is one predictable branch
	// (BenchmarkTraceDisabled).
	tracer *trace.Tracer
}

// ClassStats aggregates wait behaviour for one (table, level, mode) class
// (spi.ClassStats); the benchmarks use it to attribute contention to
// specific hot spots.
type ClassStats = spi.ClassStats

// NewManager creates a lock manager with the default shard count,
// max(16, 4×GOMAXPROCS) capped at 64, using the given interference oracle.
func NewManager(oracle Oracle) *Manager {
	return NewManagerWithShards(oracle, defaultShardCount())
}

// NewManagerWithShards creates a lock manager with an explicit shard count
// (rounded up to a power of two, capped at 64). n = 1 degenerates to the
// single-latch manager, which the shard benchmarks use as their baseline.
func NewManagerWithShards(oracle Oracle, n int) *Manager {
	if n < 1 {
		n = 1
	}
	if n > maxShards {
		n = maxShards
	}
	n = ceilPow2(n)
	m := &Manager{
		oracle:    oracle,
		shards:    make([]*shard, n),
		shardMask: uint64(n - 1),
		reg:       newWaitRegistry(),
	}
	for i := range m.shards {
		m.shards[i] = newShard(i)
	}
	return m
}

// ShardCount reports the number of lock-table partitions.
func (m *Manager) ShardCount() int { return len(m.shards) }

// SetTracer attaches the structured event bus; nil disables tracing. Call
// before the manager serves requests.
func (m *Manager) SetTracer(t *trace.Tracer) { m.tracer = t }

// SetWaitTimeout bounds each blocking Acquire; zero waits forever. Call
// before the manager serves requests.
func (m *Manager) SetWaitTimeout(d time.Duration) { m.WaitTimeout = d }

// emitLock sends one lock-layer event. Callers nil-check m.tracer first so
// the disabled path never builds the event.
func (m *Manager) emitLock(kind trace.Kind, txn TxnID, item Item, sh *shard, mode string, dur int64, extra string) {
	ev := trace.Ev(kind, uint64(txn))
	ev.Mode, ev.Item, ev.Shard, ev.Dur, ev.Extra = mode, item.String(), sh.idx, dur, extra
	m.tracer.Emit(ev)
}

// conflictsWithGrant reports whether request (txn, req) conflicts with an
// existing grant g. Same-transaction entries never conflict.
func (m *Manager) conflictsWithGrant(txn *TxnInfo, req Request, g *grant) bool {
	if g.txn.ID == txn.ID {
		return false
	}
	switch req.Mode {
	case ModeIS, ModeIX, ModeS, ModeSIX, ModeX:
		switch g.kind {
		case kindConventional:
			return !conventionalCompat(req.Mode, g.mode)
		case kindAssertional:
			// Only writers can invalidate an assertion.
			if req.Mode == ModeX || req.Mode == ModeSIX || req.Mode == ModeIX {
				// Intention modes do not themselves touch data at this
				// granule; only the explicit writer modes are checked.
				if req.Mode == ModeIX {
					return false
				}
				return m.oracle.Interferes(req.Step, g.assertion)
			}
			return false
		case kindExposure:
			// Readers and writers alike must be declared interleavable at
			// the holder's current breakpoint to observe its intermediate
			// state. Intention modes pass: the real access is checked at the
			// finer granule.
			if req.Mode == ModeIS || req.Mode == ModeIX {
				return false
			}
			return !m.oracle.MayInterleave(req.Step, g.txn.Type, g.txn.CompletedSteps())
		case kindReservation:
			return false
		}
	case ModeA:
		switch g.kind {
		case kindConventional:
			// A writer currently holds the item; the assertion may be
			// invalidated by that in-flight step.
			if g.mode == ModeX || g.mode == ModeSIX {
				return m.oracle.Interferes(g.step, req.Assertion)
			}
			return false
		case kindAssertional:
			return false
		case kindExposure:
			// The holder exposed an intermediate value of this item; the
			// assertion may be locked only if the holder's executed prefix
			// provably leaves it true (§3.3, "Request A(pre(S_{i,1})) locks").
			return m.oracle.PrefixInterferes(g.txn.Type, g.txn.CompletedSteps(), req.Assertion)
		case kindReservation:
			// Guarantee that a future compensating step of the holder will
			// not be delayed by this assertional lock (§3.4).
			for _, cs := range g.csTypes {
				if m.oracle.Interferes(cs, req.Assertion) {
					return true
				}
			}
			return false
		}
	}
	return false
}

// conflictsWithWaiter reports whether an incoming request must queue behind
// an earlier waiter (FIFO fairness: treat the earlier request as if granted).
func (m *Manager) conflictsWithWaiter(txn *TxnInfo, req Request, w *waiter) bool {
	if w.txn.ID == txn.ID {
		return false
	}
	g := &grant{txn: w.txn, mode: w.req.Mode, step: w.req.Step}
	switch w.req.Mode {
	case ModeA:
		g.kind = kindAssertional
		g.assertion = w.req.Assertion
	default:
		g.kind = kindConventional
	}
	return m.conflictsWithGrant(txn, req, g)
}

// findConventional returns txn's conventional grant on the state, if any.
func (st *lockState) findConventional(txn TxnID) *grant {
	for _, g := range st.grants {
		if g.kind == kindConventional && g.txn.ID == txn {
			return g
		}
	}
	return nil
}

// findAssertional returns txn's assertional grant for an assertion, if any.
func (st *lockState) findAssertional(txn TxnID, a interference.AssertionID) *grant {
	for _, g := range st.grants {
		if g.kind == kindAssertional && g.txn.ID == txn && g.assertion == a {
			return g
		}
	}
	return nil
}

// Acquire obtains the requested lock on item for txn, blocking until it is
// granted, the request is chosen as a deadlock victim, the wait is cancelled,
// or the wait budget expires.
func (m *Manager) Acquire(txn *TxnInfo, item Item, req Request) error {
	return m.AcquireCtx(context.Background(), txn, item, req)
}

// AcquireCtx is Acquire under a caller context: a cancelled or expired ctx
// aborts a blocked wait and returns ctx's error, so a disconnected client
// (or an expired deadline) stops waiting immediately and the engine can
// roll the transaction back by compensation. The fast path — the lock is
// granted without waiting — never consults ctx.
func (m *Manager) AcquireCtx(ctx context.Context, txn *TxnInfo, item Item, req Request) error {
	sh := m.shardOf(item)
	sh.stats.acquisitions.Add(1)
	sh.mu.Lock()
	st := sh.state(item)

	// Reentrant and conversion handling for conventional modes.
	if req.Mode != ModeA {
		if g := st.findConventional(txn.ID); g != nil {
			want := sup(g.mode, req.Mode)
			if want == g.mode {
				sh.mu.Unlock()
				return nil // already covered
			}
			// Conversion: granted immediately iff the target mode is
			// compatible with every other holder; otherwise the conversion
			// waits at the head of the queue (ahead of plain requests).
			conv := req
			conv.Mode = want
			if !m.anyGrantConflict(txn, conv, st) {
				old := g.mode
				g.mode = want
				g.step = req.Step
				sh.mu.Unlock()
				if m.tracer != nil {
					m.emitLock(trace.KindLockUpgrade, txn.ID, item, sh,
						want.String(), 0, old.String()+"->"+want.String())
				}
				return nil
			}
			return m.wait(ctx, txn, item, sh, st, conv, true)
		}
	} else {
		if st.findAssertional(txn.ID, req.Assertion) != nil {
			sh.mu.Unlock()
			return nil
		}
	}

	if !m.anyGrantConflict(txn, req, st) && !m.anyWaiterConflict(txn, req, st) {
		m.install(txn, item, sh, st, req)
		sh.mu.Unlock()
		if m.tracer != nil {
			m.emitLock(trace.KindLockAcquire, txn.ID, item, sh, req.Mode.String(), 0, "")
		}
		return nil
	}
	return m.wait(ctx, txn, item, sh, st, req, false)
}

// anyGrantConflict reports a conflict between req and any current grant.
// Caller holds the item's shard latch.
func (m *Manager) anyGrantConflict(txn *TxnInfo, req Request, st *lockState) bool {
	for _, g := range st.grants {
		if m.conflictsWithGrant(txn, req, g) {
			return true
		}
	}
	return false
}

// anyWaiterConflict reports a conflict between req and any queued waiter.
// Caller holds the item's shard latch.
func (m *Manager) anyWaiterConflict(txn *TxnInfo, req Request, st *lockState) bool {
	for _, w := range st.queue {
		if m.conflictsWithWaiter(txn, req, w) {
			return true
		}
	}
	return false
}

// install adds the grant entry for a now-compatible request. Caller holds
// the item's shard latch.
func (m *Manager) install(txn *TxnInfo, item Item, sh *shard, st *lockState, req Request) {
	if req.Mode != ModeA {
		if g := st.findConventional(txn.ID); g != nil {
			g.mode = sup(g.mode, req.Mode)
			g.step = req.Step
			sh.noteHeld(txn, item)
			return
		}
	}
	g := sh.newGrant()
	g.txn, g.step, g.stepSeq = txn, req.Step, txn.CompletedSteps()
	if req.Mode == ModeA {
		g.kind = kindAssertional
		g.assertion = req.Assertion
	} else {
		g.kind = kindConventional
		g.mode = req.Mode
	}
	st.grants = append(st.grants, g)
	sh.noteHeld(txn, item)
}

// blockStage classifies what is blocking the request, for span attribution:
// the first conflicting grant's kind selects the per-mode lock-wait stage
// (A/D/C tagged as in DESIGN.md §9; anything else is a conventional wait),
// and its mode tag names what was waited on. A request queued only behind
// earlier waiters classifies by the front waiter's would-be grant. Caller
// holds the shard latch.
func (m *Manager) blockStage(txn *TxnInfo, req Request, st *lockState) (trace.SpanStage, string) {
	for _, g := range st.grants {
		if m.conflictsWithGrant(txn, req, g) {
			switch g.kind {
			case kindAssertional:
				return trace.StageLockA, "A"
			case kindExposure:
				return trace.StageLockD, tagExposure
			case kindReservation:
				return trace.StageLockC, tagReservation
			default:
				return trace.StageLockConv, g.mode.String()
			}
		}
	}
	for _, qw := range st.queue {
		if m.conflictsWithWaiter(txn, req, qw) {
			if qw.req.Mode == ModeA {
				return trace.StageLockA, "A"
			}
			return trace.StageLockConv, qw.req.Mode.String()
		}
	}
	return trace.StageLockConv, ""
}

// spanWait charges a finished wait to the waiter's lock stage and appends it
// to the span's bounded event history. It runs on the waiting goroutine —
// the only reader and writer of the span — after the outcome is finalized.
func spanWait(w *waiter, waited time.Duration, kind trace.Kind) {
	sp := w.txn.Span
	if sp == nil {
		return
	}
	sp.Add(w.stage, int64(waited))
	sp.Event(kind, w.blockedBy, w.item.String(), int64(waited))
}

// spanWaitKind maps a finished wait's outcome to the event kind recorded in
// the span history (mirroring emitWaitOutcome, minus the upgrade special
// case — the span cares about where time went, not queue mechanics).
func spanWaitKind(granted bool, err error) trace.Kind {
	switch {
	case err == ErrTimeout:
		return trace.KindLockTimeout
	case err == ErrDeadlock:
		return trace.KindDeadlockVictim
	case err != nil || !granted:
		return trace.KindLockAbort
	default:
		return trace.KindLockGrant
	}
}

// wait enqueues the request, publishes it in the waits-for registry, runs
// deadlock detection, and parks until the grant, the wait budget, or ctx.
// Called with sh.mu held; releases it.
func (m *Manager) wait(ctx context.Context, txn *TxnInfo, item Item, sh *shard, st *lockState, req Request, conversion bool) error {
	w := &waiter{txn: txn, req: req, item: item, sh: sh, conv: conversion, ch: make(chan struct{}, 1)}
	if txn.Span != nil {
		w.stage, w.blockedBy = m.blockStage(txn, req, st)
	}
	if conversion {
		// Conversions go ahead of plain requests (behind other conversions)
		// to avoid the classic convoy behind a full queue.
		i := 0
		for i < len(st.queue) && st.queue[i].isConversion(st) {
			i++
		}
		st.queue = append(st.queue, nil)
		copy(st.queue[i+1:], st.queue[i:])
		st.queue[i] = w
	} else {
		st.queue = append(st.queue, w)
	}
	sh.stats.waits.Add(1)
	sh.mu.Unlock()
	if m.tracer != nil {
		m.emitLock(trace.KindLockWait, txn.ID, item, sh, req.Mode.String(), 0, "")
	}

	// Publish before detecting: the last member of a cycle to publish is
	// guaranteed to see every other member when its own detection runs.
	m.reg.add(txn.ID, w)
	start := time.Now()

	if err := m.resolveDeadlock(w); err != nil {
		// w completed a cycle and must abort. It may have been granted or
		// finalized concurrently — re-check under the shard latch and honour
		// that outcome instead.
		sh.mu.Lock()
		if w.granted || w.err != nil {
			sh.mu.Unlock()
			<-w.ch // finalized concurrently; consume the signal
			return m.finishWait(w, start)
		}
		w.err = err // finalize under the latch so no other path re-removes w
		m.removeWaiter(sh, w)
		sh.mu.Unlock()
		m.reg.remove(txn.ID, w)
		waited := time.Since(start)
		sh.recordWait(w.item, w.req.Mode, uint64(waited))
		spanWait(w, waited, trace.KindDeadlockVictim)
		if m.tracer != nil {
			m.emitLock(trace.KindDeadlockVictim, txn.ID, item, sh,
				req.Mode.String(), int64(waited), "self")
		}
		return err
	}

	var timeout <-chan time.Time
	if m.WaitTimeout > 0 {
		t := time.NewTimer(m.WaitTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case <-w.ch:
	case <-timeout:
		if abandoned := m.abandonWait(w, start, ErrTimeout, trace.KindLockTimeout, ""); abandoned {
			return ErrTimeout
		}
		<-w.ch // finalized concurrently; consume the signal
	case <-ctx.Done():
		// The caller gave up: a disconnected session or an expired deadline.
		// The wait is withdrawn and the ctx error propagates so the engine
		// rolls the transaction back (by compensation if steps completed).
		if abandoned := m.abandonWait(w, start, ctx.Err(), trace.KindLockAbort, "ctx"); abandoned {
			return ctx.Err()
		}
		<-w.ch // finalized concurrently; consume the signal
	}
	return m.finishWait(w, start)
}

// abandonWait finalizes a parked waiter from the waiting side (wait budget
// elapsed or caller context done). It reports true when this call claimed
// the outcome; false means the grantor finalized concurrently and the
// caller must consume the signal and honour that outcome instead. Abandoned
// waits count toward contention attribution like any other wait.
func (m *Manager) abandonWait(w *waiter, start time.Time, cause error, kind trace.Kind, extra string) bool {
	sh := w.sh
	sh.mu.Lock()
	if w.granted || w.err != nil {
		sh.mu.Unlock()
		return false
	}
	w.err = cause
	m.removeWaiter(sh, w)
	sh.mu.Unlock()
	m.reg.remove(w.txn.ID, w)
	waited := time.Since(start)
	sh.recordWait(w.item, w.req.Mode, uint64(waited))
	spanWait(w, waited, kind)
	if m.tracer != nil {
		m.emitLock(kind, w.txn.ID, w.item, sh, w.req.Mode.String(), int64(waited), extra)
	}
	return true
}

// finishWait withdraws a signalled waiter from the registry, records the
// wait against the shard's counters and contention class, and maps the
// waiter's outcome to the Acquire result.
func (m *Manager) finishWait(w *waiter, start time.Time) error {
	m.reg.remove(w.txn.ID, w)
	sh := w.sh
	sh.mu.Lock()
	granted, err := w.granted, w.err
	sh.mu.Unlock()
	waited := time.Since(start)
	sh.recordWait(w.item, w.req.Mode, uint64(waited))
	spanWait(w, waited, spanWaitKind(granted, err))
	if m.tracer != nil {
		m.emitWaitOutcome(w, granted, err, int64(waited))
	}
	if err != nil {
		return err
	}
	if !granted {
		return ErrAborted
	}
	return nil
}

// emitWaitOutcome maps a finished wait to its trace event. The
// for-compensation victim kill additionally emits its own KindDeadlockVictim
// at the kill site (deadlock.go), so here an externally aborted wait is a
// plain lock.abort.
func (m *Manager) emitWaitOutcome(w *waiter, granted bool, err error, waited int64) {
	mode := w.req.Mode.String()
	switch {
	case err == ErrTimeout:
		m.emitLock(trace.KindLockTimeout, w.txn.ID, w.item, w.sh, mode, waited, "")
	case err == ErrDeadlock:
		m.emitLock(trace.KindDeadlockVictim, w.txn.ID, w.item, w.sh, mode, waited, "self")
	case err != nil || !granted:
		m.emitLock(trace.KindLockAbort, w.txn.ID, w.item, w.sh, mode, waited, "")
	case w.conv:
		m.emitLock(trace.KindLockUpgrade, w.txn.ID, w.item, w.sh, mode, waited, "waited")
	default:
		m.emitLock(trace.KindLockGrant, w.txn.ID, w.item, w.sh, mode, waited, "")
	}
}

// isConversion reports whether w is a conversion (its txn already holds a
// conventional grant on the item). Caller holds the shard latch.
func (w *waiter) isConversion(st *lockState) bool {
	return st.findConventional(w.txn.ID) != nil && w.req.Mode != ModeA
}

// removeWaiter unlinks w from its queue and re-examines the queue: waiters
// ordered behind w may have been blocked only by it. Caller holds sh.mu.
func (m *Manager) removeWaiter(sh *shard, w *waiter) {
	st, ok := sh.items[w.item]
	if !ok {
		return
	}
	for i, q := range st.queue {
		if q == w {
			st.queue = append(st.queue[:i], st.queue[i+1:]...)
			break
		}
	}
	m.grantPass(sh, w.item, st)
}

// grantPass re-examines an item's queue after its state changed, granting
// every waiter that is now compatible with the grants and with all waiters
// still ahead of it. Caller holds sh.mu.
func (m *Manager) grantPass(sh *shard, item Item, st *lockState) {
	for i := 0; i < len(st.queue); {
		w := st.queue[i]
		if m.anyGrantConflict(w.txn, w.req, st) || m.conflictsAhead(w, st, i) {
			i++
			continue
		}
		st.queue = append(st.queue[:i], st.queue[i+1:]...)
		m.install(w.txn, item, sh, st, w.req)
		w.granted = true
		w.ch <- struct{}{}
		// Restart: installing may enable or disable later waiters.
		i = 0
	}
	if len(st.grants) == 0 && len(st.queue) == 0 {
		sh.reapState(item, st)
	}
}

// conflictsAhead reports whether waiter at index i conflicts with any waiter
// ahead of it. Caller holds the shard latch.
func (m *Manager) conflictsAhead(w *waiter, st *lockState, i int) bool {
	for j := 0; j < i; j++ {
		if m.conflictsWithWaiter(w.txn, w.req, st.queue[j]) {
			return true
		}
	}
	return false
}

// AttachExposure marks item as exposed by txn: another transaction's
// conventional access now requires interleaving permission at txn's current
// breakpoint. Idempotent per (txn, item); the first step to expose wins, so
// aborting a later step does not drop an earlier exposure.
func (m *Manager) AttachExposure(txn *TxnInfo, item Item) {
	sh := m.shardOf(item)
	sh.mu.Lock()
	st := sh.state(item)
	for _, g := range st.grants {
		if g.kind == kindExposure && g.txn.ID == txn.ID {
			sh.mu.Unlock()
			return
		}
	}
	g := sh.newGrant()
	g.txn, g.kind, g.stepSeq = txn, kindExposure, txn.CompletedSteps()
	st.grants = append(st.grants, g)
	sh.noteHeld(txn, item)
	sh.mu.Unlock()
	if m.tracer != nil {
		m.emitLock(trace.KindLockAcquire, txn.ID, item, sh, tagExposure, 0, "")
	}
}

// AttachReservation records that a compensating step of type cs may later
// modify item; assertional locks that cs would interfere with are refused on
// it (§3.4's "new type of assertional lock").
func (m *Manager) AttachReservation(txn *TxnInfo, item Item, cs interference.StepTypeID) {
	if cs == interference.NoStep {
		return
	}
	sh := m.shardOf(item)
	sh.mu.Lock()
	st := sh.state(item)
	for _, g := range st.grants {
		if g.kind == kindReservation && g.txn.ID == txn.ID {
			for _, have := range g.csTypes {
				if have == cs {
					sh.mu.Unlock()
					return
				}
			}
			g.csTypes = append(g.csTypes, cs)
			sh.mu.Unlock()
			return
		}
	}
	g := sh.newGrant()
	g.txn, g.kind, g.stepSeq = txn, kindReservation, txn.CompletedSteps()
	g.csTypes = append(g.csTypes, cs)
	st.grants = append(st.grants, g)
	sh.noteHeld(txn, item)
	sh.mu.Unlock()
	if m.tracer != nil {
		m.emitLock(trace.KindLockAcquire, txn.ID, item, sh, tagReservation, 0, "")
	}
}

// releaseWhere removes txn's grants matching keep==false and re-runs grant
// passes on affected items. It visits only the shards the transaction has
// touched (tracked as a bitmask on TxnInfo), locking one shard at a time;
// the release is not atomic across shards, which is harmless — lock release
// order within the shrinking phase of 2PL is unconstrained.
func (m *Manager) releaseWhere(txn *TxnInfo, drop func(*grant) bool) {
	mask := txn.ShardMask.Load()
	for i := 0; mask != 0; i++ {
		bit := uint64(1) << uint(i)
		if mask&bit == 0 {
			continue
		}
		mask &^= bit
		sh := m.shards[i]
		sh.mu.Lock()
		m.releaseInShard(sh, txn, drop)
		sh.mu.Unlock()
	}
}

// releaseInShard applies a release pass to one shard. Caller holds sh.mu.
func (m *Manager) releaseInShard(sh *shard, txn *TxnInfo, drop func(*grant) bool) {
	hs, ok := sh.held[txn.ID]
	if !ok {
		return
	}
	keep := hs.items[:0]
	for _, item := range hs.items {
		st, stOK := sh.items[item]
		if !stOK {
			continue
		}
		remaining := false
		out := st.grants[:0]
		for _, g := range st.grants {
			if g.txn.ID == txn.ID && drop(g) {
				sh.freeGrant(g)
				continue
			}
			if g.txn.ID == txn.ID {
				remaining = true
			}
			out = append(out, g)
		}
		st.grants = out
		if remaining {
			keep = append(keep, item)
		}
		// Re-examine the queue even if nothing was dropped here: exposure
		// conflicts depend on the holder's breakpoint, which advances at
		// exactly the step boundaries where release passes run.
		m.grantPass(sh, item, st)
	}
	hs.items = keep
	if len(keep) == 0 {
		sh.dropHeld(txn.ID, hs)
	}
}

// ReleaseConventional releases txn's conventional locks (step end under the
// ACC: strict 2PL within the step; assertional, exposure and reservation
// entries persist to commit).
func (m *Manager) ReleaseConventional(txn *TxnInfo) {
	m.releaseWhere(txn, func(g *grant) bool { return g.kind == kindConventional })
}

// ReleaseStepAbort releases txn's conventional locks plus exposure and
// reservation marks attached during the aborted step (its writes are being
// undone). Assertional locks are retained — the paper keeps them between
// steps, which is why a recurring deadlock escalates to compensation.
func (m *Manager) ReleaseStepAbort(txn *TxnInfo) {
	seq := txn.CompletedSteps()
	m.releaseWhere(txn, func(g *grant) bool {
		if g.kind == kindConventional {
			return true
		}
		return (g.kind == kindExposure || g.kind == kindReservation) && g.stepSeq >= seq
	})
}

// ReleaseAssertion drops txn's assertional locks for one assertion type
// (its precondition has been discharged by the completing step).
func (m *Manager) ReleaseAssertion(txn *TxnInfo, a interference.AssertionID) {
	m.releaseWhere(txn, func(g *grant) bool {
		return g.kind == kindAssertional && g.assertion == a
	})
}

// ReleaseAll releases everything txn holds (commit, or end of compensation).
func (m *Manager) ReleaseAll(txn *TxnInfo) {
	m.releaseWhere(txn, func(*grant) bool { return true })
}

// CancelWait aborts txn's blocked request, if any, making it return
// ErrAborted. Used by the engine to kill victims picked by external policy.
func (m *Manager) CancelWait(txn TxnID) {
	w := m.reg.get(txn)
	if w == nil {
		return
	}
	sh := w.sh
	sh.mu.Lock()
	cancelled := false
	if !w.granted && w.err == nil {
		w.err = ErrAborted
		m.removeWaiter(sh, w)
		w.ch <- struct{}{}
		cancelled = true
	}
	sh.mu.Unlock()
	if cancelled && m.tracer != nil {
		m.emitLock(trace.KindLockAbort, txn, w.item, sh, w.req.Mode.String(), 0, "cancel")
	}
}

// HeldItems returns the items on which txn currently holds any entry,
// useful for tests and debugging.
func (m *Manager) HeldItems(txn TxnID) []Item {
	var out []Item
	for _, sh := range m.shards {
		sh.mu.Lock()
		if hs, ok := sh.held[txn]; ok {
			out = append(out, hs.items...)
		}
		sh.mu.Unlock()
	}
	return out
}

// HoldsConventional reports whether txn holds a conventional lock of at
// least mode want on item.
func (m *Manager) HoldsConventional(txn TxnID, item Item, want Mode) bool {
	sh := m.shardOf(item)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.items[item]
	if !ok {
		return false
	}
	g := st.findConventional(txn)
	return g != nil && covers(g.mode, want)
}

// ByClass returns the per-class wait tallies, aggregated across shards.
func (m *Manager) ByClass() map[string]ClassStats {
	out := make(map[string]ClassStats)
	for _, sh := range m.shards {
		sh.mu.Lock()
		for k, v := range sh.byClass {
			name := k.String()
			agg := out[name]
			agg.Waits += v.Waits
			agg.WaitNanos += v.WaitNanos
			out[name] = agg
		}
		sh.mu.Unlock()
	}
	return out
}

// Stats returns the counters, aggregated across shards. (Renamed from
// Snapshot: Manager.Snapshot now returns the structural lock-table dump in
// snapshot.go.)
func (m *Manager) Stats() Stats {
	var s Stats
	for _, sh := range m.shards {
		s.Acquisitions += sh.stats.acquisitions.Load()
		s.Waits += sh.stats.waits.Load()
		s.WaitNanos += sh.stats.waitNanos.Load()
		s.Deadlocks += sh.stats.deadlocks.Load()
		s.VictimsForComp += sh.stats.victimsForComp.Load()
	}
	return s
}
