package lock

import "sync"

// waitRegistry is the cross-shard waits-for registry. Shards publish a
// transaction's blocked request into it when the request enqueues and
// withdraw it when the wait finishes; deadlock detection and CancelWait
// resolve transactions to their blocked waiters through it.
//
// The registry holds only the txn → waiter association. The waits-for
// *edges* are not materialised here: they are recomputed from the owning
// shard's queues under that shard's latch (see blockerTxns), so detection
// always sees current blockers instead of a stale published snapshot.
//
// Locking: the registry mutex is a leaf — it is never held while taking a
// shard latch, and no shard latch is held while taking it.
type waitRegistry struct {
	mu      sync.Mutex
	waiting map[TxnID]*waiter
}

func newWaitRegistry() waitRegistry {
	return waitRegistry{waiting: make(map[TxnID]*waiter)}
}

// add publishes w as txn's blocked request.
func (r *waitRegistry) add(txn TxnID, w *waiter) {
	r.mu.Lock()
	r.waiting[txn] = w
	r.mu.Unlock()
}

// remove withdraws w; it is identity-checked so a stale remove cannot drop
// a successor request registered under the same transaction.
func (r *waitRegistry) remove(txn TxnID, w *waiter) {
	r.mu.Lock()
	if r.waiting[txn] == w {
		delete(r.waiting, txn)
	}
	r.mu.Unlock()
}

// get returns txn's currently published waiter, if any. The caller must
// re-check the waiter's granted/err state under its shard latch before
// acting on it.
func (r *waitRegistry) get(txn TxnID) *waiter {
	r.mu.Lock()
	w := r.waiting[txn]
	r.mu.Unlock()
	return w
}
