package wal

import (
	"sync/atomic"
	"testing"

	"accdb/internal/fault"
	"accdb/internal/spi"
)

// benchRecord is a representative end-of-step record: txn + step + a small
// work area, the shape the ACC forces at every step boundary.
func benchRecord(txn uint64) Record {
	return Record{
		Type: TEndOfStep, Txn: txn, Step: 1,
		WorkArea: []byte("work-area-0123456789abcdef"),
	}
}

// BenchmarkMemoryAppend pins the in-memory append hot path with fault
// injection disabled — the no-regression bar the fault package must clear
// (EXPERIMENTS.md records the numbers).
func BenchmarkMemoryAppend(b *testing.B) {
	l := New(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Append(benchRecord(uint64(i)))
	}
}

// BenchmarkFaultPointDisabled measures the disabled injection check alone:
// one atomic load and a nil compare, the cost every hot path pays per
// declared point when no controller is active.
func BenchmarkFaultPointDisabled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if o := fault.Point("wal.append.crash"); o.Effect != fault.None {
			b.Fatal("no controller is active")
		}
	}
}

// BenchmarkFileForceSerial measures a single writer paying a real
// write+fsync per force — the per-record floor group commit amortizes.
func BenchmarkFileForceSerial(b *testing.B) {
	l, err := Open(b.TempDir(), Options{SegmentSize: 64 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.AppendForce(benchRecord(uint64(i)))
	}
	b.StopTimer()
	st := l.Snapshot()
	b.ReportMetric(float64(st.Forces)/float64(b.N), "fsyncs/op")
}

// BenchmarkFileGroupCommit drives parallel committers through AppendForce on
// a disk-backed log: the group-commit leader flushes the whole appended tail,
// so fsyncs/op drops well below 1 as parallelism rises.
func BenchmarkFileGroupCommit(b *testing.B) {
	l, err := Open(b.TempDir(), Options{SegmentSize: 64 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	var txn atomic.Uint64
	b.ReportAllocs()
	b.SetParallelism(4) // 4×GOMAXPROCS committers
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			l.AppendForce(benchRecord(txn.Add(1)))
		}
	})
	b.StopTimer()
	st := l.Snapshot()
	b.ReportMetric(float64(st.Forces)/float64(b.N), "fsyncs/op")
}

// fillLog appends n committed two-step transactions to l and forces them.
func fillLog(l *Log, n int) {
	for i := 0; i < n; i++ {
		txn := uint64(i + 1)
		l.Append(Record{Type: TBegin, Txn: txn, TxnType: "transfer"})
		for step := int32(0); step < 2; step++ {
			l.Append(Record{Type: TStepBegin, Txn: txn, Step: step})
			l.Append(Record{Type: TWrite, Txn: txn, Table: "accounts",
				PK:    spi.EncodeKey(spi.I64(int64(i))),
				After: spi.Row{spi.I64(int64(i)), spi.Str("row-image")}})
			l.Append(Record{Type: TEndOfStep, Txn: txn, Step: step,
				WorkArea: []byte("work-area")})
		}
		l.Append(Record{Type: TCommit, Txn: txn})
	}
	l.Force()
}

// BenchmarkAnalyze measures the recovery analysis pass (classification +
// written-item tracking) over a 10k-transaction image; b.SetBytes makes the
// throughput comparable to raw log-scan speed.
func BenchmarkAnalyze(b *testing.B) {
	mem := New(0)
	fillLog(mem, 10_000)
	img := mem.Bytes()
	b.SetBytes(int64(len(img)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := Analyze(img)
		if err != nil {
			b.Fatal(err)
		}
		if a.MaxTxn != 10_000 {
			b.Fatalf("MaxTxn = %d", a.MaxTxn)
		}
	}
}

// BenchmarkRecoveryOpen measures restart cost end to end at the WAL layer:
// re-open the segment directory (CRC scan + torn-tail check), analyze, and
// redo-apply — everything below the engine in a recovery.
func BenchmarkRecoveryOpen(b *testing.B) {
	dir := b.TempDir()
	seed, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	fillLog(seed, 10_000)
	size := int64(len(seed.Bytes()))
	seed.Close()
	b.SetBytes(size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := Open(dir, Options{})
		if err != nil {
			b.Fatal(err)
		}
		a, err := Analyze(l.Recovered())
		if err != nil {
			b.Fatal(err)
		}
		applied := 0
		err = a.Apply(l.Recovered(), func(string, spi.Key, spi.Row) { applied++ })
		if err != nil {
			b.Fatal(err)
		}
		if applied == 0 {
			b.Fatal("no redo")
		}
		l.Close()
	}
}
