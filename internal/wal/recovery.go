package wal

import (
	"errors"
	"fmt"
	"sort"

	"accdb/internal/spi"
)

// Recovery (§3.4, §5): steps are atomic and isolated, so the log-consistent
// state after a crash is "every completed step applied, the in-flight step
// discarded". Transactions with completed steps but no commit must then be
// *compensated*, not undone — their intermediate results may already have
// been observed by committed transactions. Analyze produces exactly that
// plan: the writes to replay and the transactions still owing compensation.

// WrittenItem identifies one tuple a transaction durably wrote (in a
// completed step). Recovery re-attaches D- and C-locks on these items for
// transactions that still owe compensation.
type WrittenItem struct {
	Table string
	PK    spi.Key
}

// TxnState summarizes one transaction's fate as recorded in the log.
type TxnState struct {
	ID             uint64
	Type           string
	CompletedSteps int
	WorkArea       []byte // saved at the last completed step
	Committed      bool
	Aborted        bool
	Compensated    bool
	// Written lists the items mutated by completed steps, in log order
	// (duplicates possible). For a transaction that NeedsCompensation these
	// are the items whose interstep state is exposed.
	Written []WrittenItem
}

// NeedsCompensation reports whether the transaction must be compensated
// after recovery: it completed at least one step but neither committed,
// aborted cleanly, nor finished compensating.
func (t *TxnState) NeedsCompensation() bool {
	return !t.Committed && !t.Aborted && !t.Compensated && t.CompletedSteps > 0
}

// Analysis is the outcome of scanning a log image.
type Analysis struct {
	Txns map[uint64]*TxnState

	// MaxTxn is the largest transaction ID seen in the log; a recovering
	// engine must issue new IDs above it.
	MaxTxn uint64

	// TornTail, when non-nil, records that the image ended in a damaged
	// frame: analysis covers only the valid prefix. A Clean() tear is the
	// expected mark of a mid-append crash; a non-clean one means durable
	// records were destroyed and the caller should refuse to proceed.
	TornTail *ErrTornTail

	// completedAttempt records, per (txn, unit), which execution attempt
	// reached its end-of-step record. A step aborted by deadlock and retried
	// logs a fresh TStepBegin; only the attempt that completed gets its
	// writes replayed — the earlier attempts' writes were undone in place.
	// unit is the step index for forward steps, compUnit for compensation.
	completedAttempt map[unitKey]int
}

type unitKey struct {
	txn  uint64
	unit int32
}

const compUnit int32 = -1

// Analyze scans a log image (typically Log.DurableBytes after a simulated
// crash) and classifies every transaction.
func Analyze(data []byte) (*Analysis, error) {
	a := &Analysis{
		Txns:             make(map[uint64]*TxnState),
		completedAttempt: make(map[unitKey]int),
	}
	get := func(id uint64) *TxnState {
		t, ok := a.Txns[id]
		if !ok {
			t = &TxnState{ID: id}
			a.Txns[id] = t
		}
		return t
	}
	attempts := make(map[unitKey]int)
	// Writes of the current (possibly doomed) attempt, per txn; promoted to
	// TxnState.Written only when the attempt's end-of-step record arrives.
	inFlight := make(map[uint64][]WrittenItem)
	err := Replay(data, func(r Record) error {
		t := get(r.Txn)
		if r.Txn > a.MaxTxn {
			a.MaxTxn = r.Txn
		}
		switch r.Type {
		case TBegin:
			t.Type = r.TxnType
		case TStepBegin:
			attempts[unitKey{r.Txn, r.Step}]++
			inFlight[r.Txn] = inFlight[r.Txn][:0]
		case TCompBegin:
			attempts[unitKey{r.Txn, compUnit}]++
			inFlight[r.Txn] = inFlight[r.Txn][:0]
		case TWrite:
			inFlight[r.Txn] = append(inFlight[r.Txn], WrittenItem{Table: r.Table, PK: r.PK})
		case TEndOfStep:
			k := unitKey{r.Txn, r.Step}
			a.completedAttempt[k] = attempts[k]
			t.CompletedSteps = int(r.Step) + 1
			t.WorkArea = r.WorkArea
			t.Written = append(t.Written, inFlight[r.Txn]...)
			inFlight[r.Txn] = inFlight[r.Txn][:0]
		case TCommit:
			t.Committed = true
		case TAbort:
			t.Aborted = true
		case TCompDone:
			k := unitKey{r.Txn, compUnit}
			a.completedAttempt[k] = attempts[k]
			t.Compensated = true
			inFlight[r.Txn] = inFlight[r.Txn][:0]
		}
		return nil
	})
	var torn *ErrTornTail
	if errors.As(err, &torn) {
		// A damaged tail is the normal mark of a crash: analysis covers the
		// valid prefix and records what was dropped for the caller to judge.
		a.TornTail = torn
	} else if err != nil {
		return nil, err
	}
	return a, nil
}

// Apply replays, in log order, every write belonging to a completed step or
// completed compensation, invoking apply(table, pk, after) for each; a nil
// after image is a delete. The same data passed to Analyze must be passed
// here.
func (a *Analysis) Apply(data []byte, apply func(table string, pk spi.Key, after spi.Row)) error {
	// current unit and attempt per transaction, from step/comp markers.
	current := make(map[uint64]unitKey)
	attempts := make(map[unitKey]int)
	err := Replay(data, func(r Record) error {
		switch r.Type {
		case TStepBegin:
			k := unitKey{r.Txn, r.Step}
			attempts[k]++
			current[r.Txn] = k
		case TCompBegin:
			k := unitKey{r.Txn, compUnit}
			attempts[k]++
			current[r.Txn] = k
		case TWrite:
			k, ok := current[r.Txn]
			if !ok {
				return fmt.Errorf("wal: write for txn %d outside any step", r.Txn)
			}
			if a.completedAttempt[k] == attempts[k] {
				apply(r.Table, r.PK, r.After)
			}
		}
		return nil
	})
	var torn *ErrTornTail
	if errors.As(err, &torn) {
		// Same image Analyze already accepted; the tear is already recorded.
		return nil
	}
	return err
}

// Pending returns the transactions that still owe compensation, in
// transaction-ID order for determinism.
func (a *Analysis) Pending() []*TxnState {
	var out []*TxnState
	for _, t := range a.Txns {
		if t.NeedsCompensation() {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
