package wal

import (
	"errors"
	"fmt"
	"sort"

	"accdb/internal/spi"
)

// Recovery (§3.4, §5): steps are atomic and isolated, so the log-consistent
// state after a crash is "every completed step applied, the in-flight step
// discarded". Transactions with completed steps but no commit must then be
// *compensated*, not undone — their intermediate results may already have
// been observed by committed transactions. Analyze produces exactly that
// plan: the writes to replay and the transactions still owing compensation.

// WrittenItem identifies one tuple a transaction durably wrote (in a
// completed step). Recovery re-attaches D- and C-locks on these items for
// transactions that still owe compensation.
type WrittenItem struct {
	Table string
	PK    spi.Key
}

// TxnState summarizes one transaction's fate as recorded in the log.
type TxnState struct {
	ID             uint64
	Type           string
	CompletedSteps int
	WorkArea       []byte // saved at the last completed step
	Committed      bool
	Aborted        bool
	Compensated    bool
	// Global and Shot carry the multi-shot stamp from the begin record:
	// Global 0 means the transaction is not a shot of a global transaction.
	Global uint64
	Shot   int32
	// Written lists the items mutated by completed steps, in log order
	// (duplicates possible). For a transaction that NeedsCompensation these
	// are the items whose interstep state is exposed.
	Written []WrittenItem
}

// NeedsCompensation reports whether the transaction must be compensated
// after recovery: it completed at least one step but neither committed,
// aborted cleanly, nor finished compensating.
func (t *TxnState) NeedsCompensation() bool {
	return !t.Committed && !t.Aborted && !t.Compensated && t.CompletedSteps > 0
}

// CoordState summarizes one multi-shot coordinator record (DESIGN.md §16):
// the decision record of a global transaction whose shots commit in several
// partition logs. A CoordState with neither Committed nor Aborted is an open
// global transaction the coordinator must drive to an outcome after a crash.
type CoordState struct {
	// Global is the coordinator's global transaction id.
	Global uint64
	// Type is the home transaction type name.
	Type string
	// Plan is the encoded shot plan saved in the decision record.
	Plan []byte
	// ShotsSeen records the shot indices whose advisory TCoordShot record
	// reached this log. Ground truth for a shot's fate is the shot's own
	// partition log (ShotTxn), not this set.
	ShotsSeen map[int32]bool
	// Committed and Aborted record a final coordinator outcome.
	Committed bool
	Aborted   bool
}

// Open reports whether the global transaction reached no durable outcome.
func (c *CoordState) Open() bool { return !c.Committed && !c.Aborted }

// Analysis is the outcome of scanning a log image.
type Analysis struct {
	Txns map[uint64]*TxnState

	// Coords maps global transaction ids to their coordinator state, for
	// logs that carry multi-shot decision records (the home partition).
	Coords map[uint64]*CoordState

	// MaxTxn is the largest transaction ID seen in the log; a recovering
	// engine must issue new IDs above it.
	MaxTxn uint64

	// MaxGlobal is the largest global transaction ID seen in coordinator
	// records or shot stamps; a recovering coordinator issues above it.
	MaxGlobal uint64

	// TornTail, when non-nil, records that the image ended in a damaged
	// frame: analysis covers only the valid prefix. A Clean() tear is the
	// expected mark of a mid-append crash; a non-clean one means durable
	// records were destroyed and the caller should refuse to proceed.
	TornTail *ErrTornTail

	// completedAttempt records, per (txn, unit), which execution attempt
	// reached its end-of-step record. A step aborted by deadlock and retried
	// logs a fresh TStepBegin; only the attempt that completed gets its
	// writes replayed — the earlier attempts' writes were undone in place.
	// unit is the step index for forward steps, compUnit for compensation.
	completedAttempt map[unitKey]int

	// shots indexes shot-stamped transactions by (global, shot) so the
	// coordinator can resolve each shot's fate in its partition log.
	shots map[globalShot]*TxnState
}

type globalShot struct {
	global uint64
	shot   int32
}

// ShotTxn returns the transaction that ran shot `shot` of global transaction
// `global` in this log, or nil if no such begin record was seen. Negative
// shot indices name the compensating undo of the corresponding shot.
func (a *Analysis) ShotTxn(global uint64, shot int32) *TxnState {
	return a.shots[globalShot{global, shot}]
}

type unitKey struct {
	txn  uint64
	unit int32
}

const compUnit int32 = -1

// Analyze scans a log image (typically Log.DurableBytes after a simulated
// crash) and classifies every transaction.
func Analyze(data []byte) (*Analysis, error) {
	a := &Analysis{
		Txns:             make(map[uint64]*TxnState),
		Coords:           make(map[uint64]*CoordState),
		completedAttempt: make(map[unitKey]int),
		shots:            make(map[globalShot]*TxnState),
	}
	get := func(id uint64) *TxnState {
		t, ok := a.Txns[id]
		if !ok {
			t = &TxnState{ID: id}
			a.Txns[id] = t
		}
		return t
	}
	coord := func(g uint64) *CoordState {
		c, ok := a.Coords[g]
		if !ok {
			c = &CoordState{Global: g, ShotsSeen: make(map[int32]bool)}
			a.Coords[g] = c
		}
		if g > a.MaxGlobal {
			a.MaxGlobal = g
		}
		return c
	}
	attempts := make(map[unitKey]int)
	// Writes of the current (possibly doomed) attempt, per txn; promoted to
	// TxnState.Written only when the attempt's end-of-step record arrives.
	inFlight := make(map[uint64][]WrittenItem)
	err := Replay(data, func(r Record) error {
		switch r.Type {
		// Coordinator records carry a GLOBAL transaction id in Txn — a
		// separate numbering space from this log's local ids — so they are
		// classified before the local-transaction bookkeeping below.
		case TCoordBegin:
			c := coord(r.Txn)
			c.Type, c.Plan = r.TxnType, r.WorkArea
			return nil
		case TCoordShot:
			coord(r.Txn).ShotsSeen[r.Step] = true
			return nil
		case TCoordCommit:
			coord(r.Txn).Committed = true
			return nil
		case TCoordAbort:
			coord(r.Txn).Aborted = true
			return nil
		}
		t := get(r.Txn)
		if r.Txn > a.MaxTxn {
			a.MaxTxn = r.Txn
		}
		switch r.Type {
		case TBegin:
			t.Type = r.TxnType
			if r.Global != 0 {
				t.Global, t.Shot = r.Global, r.Shot
				a.shots[globalShot{r.Global, r.Shot}] = t
				if r.Global > a.MaxGlobal {
					a.MaxGlobal = r.Global
				}
			}
		case TStepBegin:
			attempts[unitKey{r.Txn, r.Step}]++
			inFlight[r.Txn] = inFlight[r.Txn][:0]
		case TCompBegin:
			attempts[unitKey{r.Txn, compUnit}]++
			inFlight[r.Txn] = inFlight[r.Txn][:0]
		case TWrite:
			inFlight[r.Txn] = append(inFlight[r.Txn], WrittenItem{Table: r.Table, PK: r.PK})
		case TEndOfStep:
			k := unitKey{r.Txn, r.Step}
			a.completedAttempt[k] = attempts[k]
			t.CompletedSteps = int(r.Step) + 1
			t.WorkArea = r.WorkArea
			t.Written = append(t.Written, inFlight[r.Txn]...)
			inFlight[r.Txn] = inFlight[r.Txn][:0]
		case TCommit:
			t.Committed = true
		case TAbort:
			t.Aborted = true
		case TCompDone:
			k := unitKey{r.Txn, compUnit}
			a.completedAttempt[k] = attempts[k]
			t.Compensated = true
			inFlight[r.Txn] = inFlight[r.Txn][:0]
		}
		return nil
	})
	var torn *ErrTornTail
	if errors.As(err, &torn) {
		// A damaged tail is the normal mark of a crash: analysis covers the
		// valid prefix and records what was dropped for the caller to judge.
		a.TornTail = torn
	} else if err != nil {
		return nil, err
	}
	return a, nil
}

// Apply replays, in log order, every write belonging to a completed step or
// completed compensation, invoking apply(table, pk, after) for each; a nil
// after image is a delete. The same data passed to Analyze must be passed
// here.
func (a *Analysis) Apply(data []byte, apply func(table string, pk spi.Key, after spi.Row)) error {
	// current unit and attempt per transaction, from step/comp markers.
	current := make(map[uint64]unitKey)
	attempts := make(map[unitKey]int)
	err := Replay(data, func(r Record) error {
		switch r.Type {
		case TStepBegin:
			k := unitKey{r.Txn, r.Step}
			attempts[k]++
			current[r.Txn] = k
		case TCompBegin:
			k := unitKey{r.Txn, compUnit}
			attempts[k]++
			current[r.Txn] = k
		case TWrite:
			k, ok := current[r.Txn]
			if !ok {
				return fmt.Errorf("wal: write for txn %d outside any step", r.Txn)
			}
			if a.completedAttempt[k] == attempts[k] {
				apply(r.Table, r.PK, r.After)
			}
		}
		return nil
	})
	var torn *ErrTornTail
	if errors.As(err, &torn) {
		// Same image Analyze already accepted; the tear is already recorded.
		return nil
	}
	return err
}

// Pending returns the transactions that still owe compensation, in
// transaction-ID order for determinism.
func (a *Analysis) Pending() []*TxnState {
	var out []*TxnState
	for _, t := range a.Txns {
		if t.NeedsCompensation() {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
