package wal

import (
	"errors"
	"testing"

	"accdb/internal/spi"
)

// FuzzReplay feeds arbitrary byte images to Replay and checks its contract:
// it never panics, delivers records only from the CRC-valid prefix, and
// classifies any remainder as a typed *ErrTornTail whose fields are
// internally consistent. Seed corpus: an encoded sample log plus truncated,
// bit-flipped, and garbage variants checked in under testdata.
func FuzzReplay(f *testing.F) {
	l := New(0)
	for _, rec := range sampleRecords() {
		l.Append(rec)
	}
	full := l.Bytes()
	f.Add(full)
	f.Add(full[:len(full)/2])
	f.Add(full[:len(full)-1])
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		n := 0
		err := Replay(data, func(r Record) error { n++; return nil })
		valid, torn := scanValid(data)
		if torn == nil {
			if valid != len(data) {
				t.Fatalf("no tear reported but valid prefix %d != len %d", valid, len(data))
			}
		} else {
			if torn.Offset != int64(valid) {
				t.Fatalf("tear offset %d != valid prefix %d", torn.Offset, valid)
			}
			if torn.Offset+torn.DiscardedBytes != int64(len(data)) {
				t.Fatalf("offset %d + discarded %d != len %d",
					torn.Offset, torn.DiscardedBytes, len(data))
			}
			if !torn.Corrupt && torn.DiscardedRecords != 0 {
				t.Fatalf("non-corrupt tear claims %d discarded records", torn.DiscardedRecords)
			}
		}
		var gotTorn *ErrTornTail
		if errors.As(err, &gotTorn) != (torn != nil) && err != nil {
			// err may also be a decode error on a CRC-valid frame; that is a
			// legitimate non-torn failure, but then some frame must exist.
			if valid == 0 {
				t.Fatalf("decode error with empty valid prefix: %v", err)
			}
		}
		// Analyze must accept anything Replay delivers without panicking.
		if a, err := Analyze(data); err == nil {
			_ = a.Apply(data, func(string, spi.Key, spi.Row) {})
			_ = a.Pending()
		}
		_ = n
	})
}
