package wal

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"accdb/internal/spi"
)

func sampleRecords() []Record {
	return []Record{
		{Type: TBegin, Txn: 1, TxnType: "new_order"},
		{Type: TStepBegin, Txn: 1, Step: 0},
		{Type: TWrite, Txn: 1, Table: "t", PK: spi.EncodeKey(spi.I64(5)),
			Before: nil, After: spi.Row{spi.I64(5), spi.Str("x")}},
		{Type: TWrite, Txn: 1, Table: "t", PK: spi.EncodeKey(spi.I64(5)),
			Before: spi.Row{spi.I64(5), spi.Str("x")},
			After:  spi.Row{spi.I64(5), spi.Str("y")}},
		{Type: TEndOfStep, Txn: 1, Step: 0, WorkArea: []byte{1, 2, 3}},
		{Type: TStepBegin, Txn: 1, Step: 1},
		{Type: TWrite, Txn: 1, Table: "t", PK: spi.EncodeKey(spi.I64(6)),
			Before: spi.Row{spi.I64(6), spi.Str("z")}, After: nil},
		{Type: TEndOfStep, Txn: 1, Step: 1},
		{Type: TCommit, Txn: 1},
		{Type: TBegin, Txn: 2, TxnType: "payment"},
		{Type: TAbort, Txn: 2},
		{Type: TCompBegin, Txn: 3, Step: 2},
		{Type: TCompDone, Txn: 3},
	}
}

func TestRecordRoundtrip(t *testing.T) {
	l := New(0)
	for _, rec := range sampleRecords() {
		l.Append(rec)
	}
	var got []Record
	if err := Replay(l.Bytes(), func(r Record) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.Type != w.Type || g.Txn != w.Txn || g.TxnType != w.TxnType ||
			g.Step != w.Step || g.Table != w.Table || g.PK != w.PK {
			t.Errorf("record %d: got %+v, want %+v", i, g, w)
		}
		if (g.Before == nil) != (w.Before == nil) || (g.Before != nil && !g.Before.Equal(w.Before)) {
			t.Errorf("record %d before image mismatch", i)
		}
		if (g.After == nil) != (w.After == nil) || (g.After != nil && !g.After.Equal(w.After)) {
			t.Errorf("record %d after image mismatch", i)
		}
		if string(g.WorkArea) != string(w.WorkArea) {
			t.Errorf("record %d work area mismatch", i)
		}
	}
}

func TestRecordRoundtripQuick(t *testing.T) {
	f := func(txn uint64, step int32, table string, area []byte, v int64) bool {
		l := New(0)
		l.Append(Record{Type: TEndOfStep, Txn: txn, Step: step, WorkArea: area})
		l.Append(Record{Type: TWrite, Txn: txn, Table: table,
			PK: spi.EncodeKey(spi.I64(v)), After: spi.Row{spi.I64(v)}})
		n := 0
		ok := true
		err := Replay(l.Bytes(), func(r Record) error {
			switch n {
			case 0:
				ok = ok && r.Txn == txn && r.Step == step && string(r.WorkArea) == string(area)
			case 1:
				ok = ok && r.Table == table && r.After[0].Int64() == v
			}
			n++
			return nil
		})
		return err == nil && n == 2 && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestReplayReportsTruncatedTail(t *testing.T) {
	l := New(0)
	for _, rec := range sampleRecords() {
		l.Append(rec)
	}
	full := l.Bytes()
	whole := 0
	if err := Replay(full, func(Record) error { whole++; return nil }); err != nil {
		t.Fatal(err)
	}
	// Any truncation must replay the valid prefix and then surface a typed
	// ErrTornTail naming the damage offset — never a silent discard.
	for cut := 0; cut < len(full); cut++ {
		n := 0
		err := Replay(full[:cut], func(Record) error { n++; return nil })
		if n > whole {
			t.Fatalf("cut %d replayed %d > %d records", cut, n, whole)
		}
		valid, _ := scanValid(full[:cut])
		if valid == cut {
			if err != nil {
				t.Fatalf("cut %d on record boundary: unexpected error %v", cut, err)
			}
			continue
		}
		var torn *ErrTornTail
		if !errors.As(err, &torn) {
			t.Fatalf("cut %d: want *ErrTornTail, got %v", cut, err)
		}
		if torn.Offset != int64(valid) || torn.DiscardedBytes != int64(cut-valid) {
			t.Fatalf("cut %d: torn = %+v, valid prefix = %d", cut, torn, valid)
		}
		if !torn.Clean() {
			t.Fatalf("cut %d: pure truncation reported as corruption: %+v", cut, torn)
		}
	}
}

func TestReplayDetectsMidLogCorruption(t *testing.T) {
	l := New(0)
	for _, rec := range sampleRecords() {
		l.Append(rec)
	}
	full := append([]byte(nil), l.Bytes()...)
	// Damage a payload byte inside the third record, leaving framing intact.
	_, e1, _, _ := frame(full, 0)
	_, e2, _, _ := frame(full, e1+4)
	ps3, _, _, _ := frame(full, e2+4)
	full[ps3] ^= 0xFF
	n := 0
	err := Replay(full, func(Record) error { n++; return nil })
	var torn *ErrTornTail
	if !errors.As(err, &torn) {
		t.Fatalf("want *ErrTornTail, got %v", err)
	}
	if n != 2 {
		t.Fatalf("replayed %d records before the corruption, want 2", n)
	}
	if !torn.Corrupt {
		t.Fatal("complete frame with bad CRC not flagged Corrupt")
	}
	if torn.Clean() {
		t.Fatal("mid-log corruption reported as a clean crash tail")
	}
	if torn.DiscardedRecords != len(sampleRecords())-3 {
		t.Fatalf("DiscardedRecords = %d, want %d", torn.DiscardedRecords, len(sampleRecords())-3)
	}
	if torn.Offset != int64(e2+4) {
		t.Fatalf("Offset = %d, want %d", torn.Offset, e2+4)
	}
}

func TestForceSemantics(t *testing.T) {
	l := New(0)
	lsn := l.Append(Record{Type: TBegin, Txn: 1})
	if len(l.DurableBytes()) != 0 {
		t.Fatal("unforced record already durable")
	}
	l.ForceTo(lsn)
	if len(l.DurableBytes()) != int(lsn) {
		t.Fatal("force did not advance durable prefix")
	}
	st := l.Snapshot()
	if st.Forces != 1 || st.Records != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Forcing an already-durable LSN is free.
	l.ForceTo(lsn)
	if l.Snapshot().Forces != 1 {
		t.Fatal("idempotent force counted twice")
	}
}

func TestForceLatencyCharged(t *testing.T) {
	l := New(20 * time.Millisecond)
	start := time.Now()
	l.AppendForce(Record{Type: TCommit, Txn: 1})
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("force latency not charged")
	}
}

func TestAnalyzeOutcomes(t *testing.T) {
	l := New(0)
	// Txn 1 commits after two steps; txn 2 aborts clean; txn 3 has one
	// completed step and then crashes (needs compensation); txn 4 finished
	// compensating; txn 5 crashed mid-first-step (nothing to do).
	recs := []Record{
		{Type: TBegin, Txn: 1, TxnType: "a"},
		{Type: TStepBegin, Txn: 1, Step: 0},
		{Type: TEndOfStep, Txn: 1, Step: 0},
		{Type: TStepBegin, Txn: 1, Step: 1},
		{Type: TEndOfStep, Txn: 1, Step: 1},
		{Type: TCommit, Txn: 1},
		{Type: TBegin, Txn: 2, TxnType: "b"},
		{Type: TAbort, Txn: 2},
		{Type: TBegin, Txn: 3, TxnType: "c"},
		{Type: TStepBegin, Txn: 3, Step: 0},
		{Type: TEndOfStep, Txn: 3, Step: 0, WorkArea: []byte("wa")},
		{Type: TStepBegin, Txn: 3, Step: 1},
		{Type: TBegin, Txn: 4, TxnType: "d"},
		{Type: TStepBegin, Txn: 4, Step: 0},
		{Type: TEndOfStep, Txn: 4, Step: 0},
		{Type: TCompBegin, Txn: 4, Step: 1},
		{Type: TCompDone, Txn: 4},
		{Type: TBegin, Txn: 5, TxnType: "e"},
		{Type: TStepBegin, Txn: 5, Step: 0},
	}
	for _, r := range recs {
		l.Append(r)
	}
	a, err := Analyze(l.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !a.Txns[1].Committed || a.Txns[1].CompletedSteps != 2 {
		t.Errorf("txn1 = %+v", a.Txns[1])
	}
	if !a.Txns[2].Aborted {
		t.Errorf("txn2 = %+v", a.Txns[2])
	}
	if !a.Txns[3].NeedsCompensation() || string(a.Txns[3].WorkArea) != "wa" {
		t.Errorf("txn3 = %+v", a.Txns[3])
	}
	if !a.Txns[4].Compensated || a.Txns[4].NeedsCompensation() {
		t.Errorf("txn4 = %+v", a.Txns[4])
	}
	if a.Txns[5].NeedsCompensation() {
		t.Errorf("txn5 should not need compensation: %+v", a.Txns[5])
	}
	pending := a.Pending()
	if len(pending) != 1 || pending[0].ID != 3 {
		t.Fatalf("pending = %+v", pending)
	}
}

func TestApplyReplaysOnlyCompletedUnits(t *testing.T) {
	l := New(0)
	pk := func(i int64) spi.Key { return spi.EncodeKey(spi.I64(i)) }
	row := func(i int64) spi.Row { return spi.Row{spi.I64(i)} }
	recs := []Record{
		{Type: TBegin, Txn: 1, TxnType: "a"},
		// Attempt 1 of step 0 writes pk 1, then the step aborts (deadlock);
		// attempt 2 writes pk 2 and completes.
		{Type: TStepBegin, Txn: 1, Step: 0},
		{Type: TWrite, Txn: 1, Table: "t", PK: pk(1), After: row(1)},
		{Type: TStepBegin, Txn: 1, Step: 0},
		{Type: TWrite, Txn: 1, Table: "t", PK: pk(2), After: row(2)},
		{Type: TEndOfStep, Txn: 1, Step: 0},
		// Step 1 writes pk 3 but never completes (crash).
		{Type: TStepBegin, Txn: 1, Step: 1},
		{Type: TWrite, Txn: 1, Table: "t", PK: pk(3), After: row(3)},
		// Txn 2's compensation deletes pk 2... rather, writes pk 4, done.
		{Type: TBegin, Txn: 2, TxnType: "b"},
		{Type: TCompBegin, Txn: 2, Step: 1},
		{Type: TWrite, Txn: 2, Table: "t", PK: pk(4), After: row(4)},
		{Type: TCompDone, Txn: 2},
	}
	for _, r := range recs {
		l.Append(r)
	}
	data := l.Bytes()
	a, err := Analyze(data)
	if err != nil {
		t.Fatal(err)
	}
	applied := map[string]bool{}
	err = a.Apply(data, func(table string, k spi.Key, after spi.Row) {
		applied[string(k)] = true
	})
	if err != nil {
		t.Fatal(err)
	}
	if applied[string(pk(1))] {
		t.Error("aborted attempt's write replayed")
	}
	if !applied[string(pk(2))] {
		t.Error("completed attempt's write missing")
	}
	if applied[string(pk(3))] {
		t.Error("incomplete step's write replayed")
	}
	if !applied[string(pk(4))] {
		t.Error("completed compensation's write missing")
	}
}

func TestApplyRejectsOrphanWrite(t *testing.T) {
	l := New(0)
	l.Append(Record{Type: TWrite, Txn: 9, Table: "t", PK: "k"})
	a, _ := Analyze(l.Bytes())
	if err := a.Apply(l.Bytes(), func(string, spi.Key, spi.Row) {}); err == nil {
		t.Fatal("write outside any step accepted")
	}
}

func TestDurableBytesLoseUnforcedTail(t *testing.T) {
	l := New(0)
	l.AppendForce(Record{Type: TBegin, Txn: 1})
	l.Append(Record{Type: TCommit, Txn: 1}) // never forced: lost in a crash
	a, err := Analyze(l.DurableBytes())
	if err != nil {
		t.Fatal(err)
	}
	if a.Txns[1].Committed {
		t.Fatal("unforced commit survived the crash")
	}
}
