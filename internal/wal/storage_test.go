package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"accdb/internal/fault"
	"accdb/internal/spi"
)

func openT(t *testing.T, dir string, opt Options) *Log {
	t.Helper()
	l, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func TestOpenRoundtripAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{})
	want := sampleRecords()
	for _, rec := range want {
		l.Append(rec)
	}
	l.Force()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := openT(t, dir, Options{})
	if l2.TornTail() != nil {
		t.Fatalf("clean restart reported torn tail: %v", l2.TornTail())
	}
	var got []Record
	if err := Replay(l2.Recovered(), func(r Record) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	// New appends continue the LSN space and survive another restart.
	lsn := l2.Append(Record{Type: TBegin, Txn: 99, TxnType: "late"})
	if lsn <= LSN(len(l2.Recovered())) {
		t.Fatalf("append LSN %d not past recovered prefix %d", lsn, len(l2.Recovered()))
	}
	l2.Force()
	l2.Close()

	l3 := openT(t, dir, Options{})
	n := 0
	if err := Replay(l3.Recovered(), func(r Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != len(want)+1 {
		t.Fatalf("after second restart recovered %d records, want %d", n, len(want)+1)
	}
}

func TestOpenTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{})
	for _, rec := range sampleRecords() {
		l.Append(rec)
	}
	l.Force()
	durable := len(l.Recovered()) + lenBuf(l)
	l.Close()

	// Simulate a crash mid-append: a few garbage bytes after the last frame.
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := filepath.Join(dir, segs[len(segs)-1])
	f, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x05, 0xAA, 0xBB}) // length byte + partial payload
	f.Close()

	l2 := openT(t, dir, Options{})
	torn := l2.TornTail()
	if torn == nil {
		t.Fatal("torn tail not reported")
	}
	if !torn.Clean() || torn.Offset != int64(durable) || torn.DiscardedBytes != 3 {
		t.Fatalf("torn = %+v, want clean tear at %d of 3 bytes", torn, durable)
	}
	if len(l2.Recovered()) != durable {
		t.Fatalf("recovered %d bytes, want %d", len(l2.Recovered()), durable)
	}
	// The truncation is physical: a third open sees a clean log.
	l2.Close()
	l3 := openT(t, dir, Options{})
	if l3.TornTail() != nil {
		t.Fatalf("tear survived physical truncation: %v", l3.TornTail())
	}
}

func lenBuf(l *Log) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int(l.size) - len(l.prefix)
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{SegmentSize: 128})
	var want []Record
	for i := uint64(1); i <= 40; i++ {
		r := Record{Type: TBegin, Txn: i, TxnType: "rotate-me-around"}
		want = append(want, r)
		l.AppendForce(r)
	}
	l.Close()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %v", segs)
	}
	l2 := openT(t, dir, Options{SegmentSize: 128})
	n := 0
	if err := Replay(l2.Recovered(), func(r Record) error {
		if r.Txn != want[n].Txn {
			t.Fatalf("record %d: txn %d, want %d", n, r.Txn, want[n].Txn)
		}
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != len(want) {
		t.Fatalf("recovered %d records, want %d", n, len(want))
	}
}

func TestGroupCommitConcurrentForces(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{})
	const writers, each = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				l.AppendForce(Record{Type: TCommit, Txn: uint64(w*each + i + 1)})
			}
		}(w)
	}
	wg.Wait()
	st := l.Snapshot()
	if st.Records != writers*each {
		t.Fatalf("records = %d", st.Records)
	}
	if st.Forces >= writers*each {
		t.Fatalf("group commit absorbed nothing: %d forces for %d forced appends",
			st.Forces, writers*each)
	}
	l.Close()
	l2 := openT(t, dir, Options{})
	n := 0
	if err := Replay(l2.Recovered(), func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != writers*each {
		t.Fatalf("recovered %d records, want %d", n, writers*each)
	}
}

func TestCrashDiscardsUnsyncedBytes(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{})
	l.AppendForce(Record{Type: TBegin, Txn: 1, TxnType: "a"})
	l.Append(Record{Type: TCommit, Txn: 1}) // never forced
	l.Crash()
	// Post-crash activity must be invisible to recovery.
	l.Append(Record{Type: TBegin, Txn: 2, TxnType: "b"})
	l.Force()
	l.Close()

	l2 := openT(t, dir, Options{})
	var got []Record
	if err := Replay(l2.Recovered(), func(r Record) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Type != TBegin || got[0].Txn != 1 {
		t.Fatalf("recovered %+v, want only the forced BEGIN of txn 1", got)
	}
}

func TestTornWriteFaultLeavesRecoverablePrefix(t *testing.T) {
	dir := t.TempDir()
	c := fault.NewController(1234)
	c.Arm("wal.write.partial", fault.Spec{Effect: fault.Torn, Nth: 3})
	c.Activate()
	defer fault.Deactivate()

	l := openT(t, dir, Options{})
	for i := uint64(1); i <= 10; i++ {
		l.AppendForce(Record{Type: TCommit, Txn: i})
	}
	if !l.Crashed() {
		t.Fatal("log did not freeze after torn write")
	}
	select {
	case <-c.Crashed():
	default:
		t.Fatal("controller did not observe the crash")
	}
	l.Close()
	fault.Deactivate()

	l2 := openT(t, dir, Options{})
	torn := l2.TornTail()
	if torn == nil {
		t.Fatal("torn write left no reported tear")
	}
	if !torn.Clean() {
		t.Fatalf("torn write misreported as corruption: %+v", torn)
	}
	n := 0
	if err := Replay(l2.Recovered(), func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("recovered %d records, want the 2 synced before the torn third force", n)
	}
}

func TestSyncCrashFaultKeepsOnlySyncedPrefix(t *testing.T) {
	dir := t.TempDir()
	c := fault.NewController(99)
	c.Arm("wal.sync.crash", fault.Spec{Effect: fault.Crash, Nth: 2})
	c.Activate()
	defer fault.Deactivate()

	l := openT(t, dir, Options{})
	for i := uint64(1); i <= 5; i++ {
		l.AppendForce(Record{Type: TCommit, Txn: i})
	}
	if !l.Crashed() {
		t.Fatal("log did not freeze after sync crash")
	}
	l.Close()
	fault.Deactivate()

	l2 := openT(t, dir, Options{})
	if l2.TornTail() != nil {
		t.Fatalf("pre-fsync crash should cut on a record boundary, got %v", l2.TornTail())
	}
	n := 0
	if err := Replay(l2.Recovered(), func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("recovered %d records, want only the 1 from the first sync", n)
	}
}

func TestSyncErrorFreezesLog(t *testing.T) {
	dir := t.TempDir()
	c := fault.NewController(7)
	c.Arm("wal.sync.error", fault.Spec{Effect: fault.Error, Nth: 1})
	c.Activate()
	defer fault.Deactivate()

	l := openT(t, dir, Options{})
	l.AppendForce(Record{Type: TCommit, Txn: 1})
	if !l.Crashed() {
		t.Fatal("log did not freeze after fsync error")
	}
	var ie *fault.InjectedError
	if err := l.Err(); err == nil {
		t.Fatal("injected error not surfaced via Err")
	} else if !errors.As(err, &ie) {
		t.Fatalf("Err() = %v, want *fault.InjectedError", err)
	}
}

func TestAnalyzeToleratesTornTail(t *testing.T) {
	l := New(0)
	l.Append(Record{Type: TBegin, Txn: 1, TxnType: "a"})
	l.Append(Record{Type: TStepBegin, Txn: 1, Step: 0})
	l.Append(Record{Type: TWrite, Txn: 1, Table: "t",
		PK: spi.EncodeKey(spi.I64(7)), After: spi.Row{spi.I64(7)}})
	l.Append(Record{Type: TEndOfStep, Txn: 1, Step: 0, WorkArea: []byte("wa")})
	cut := len(l.Bytes())
	l.Append(Record{Type: TCommit, Txn: 1})
	data := l.Bytes()[:cut+3] // tear mid-commit-record

	a, err := Analyze(data)
	if err != nil {
		t.Fatal(err)
	}
	if a.TornTail == nil || !a.TornTail.Clean() {
		t.Fatalf("TornTail = %+v", a.TornTail)
	}
	if a.MaxTxn != 1 {
		t.Fatalf("MaxTxn = %d", a.MaxTxn)
	}
	st := a.Txns[1]
	if st.Committed || !st.NeedsCompensation() {
		t.Fatalf("txn behind the tear misclassified: %+v", st)
	}
	if len(st.Written) != 1 || st.Written[0].Table != "t" {
		t.Fatalf("Written = %+v", st.Written)
	}
	// Apply tolerates the same tear and replays the completed step.
	applied := 0
	if err := a.Apply(data, func(string, spi.Key, spi.Row) { applied++ }); err != nil {
		t.Fatal(err)
	}
	if applied != 1 {
		t.Fatalf("applied %d writes, want 1", applied)
	}
}

func TestAnalyzeWrittenSkipsDoomedAttempts(t *testing.T) {
	l := New(0)
	pk := func(i int64) spi.Key { return spi.EncodeKey(spi.I64(i)) }
	recs := []Record{
		{Type: TBegin, Txn: 1, TxnType: "a"},
		{Type: TStepBegin, Txn: 1, Step: 0},
		{Type: TWrite, Txn: 1, Table: "t", PK: pk(1)}, // attempt aborted
		{Type: TStepBegin, Txn: 1, Step: 0},
		{Type: TWrite, Txn: 1, Table: "t", PK: pk(2)},
		{Type: TEndOfStep, Txn: 1, Step: 0},
		{Type: TStepBegin, Txn: 1, Step: 1},
		{Type: TWrite, Txn: 1, Table: "t", PK: pk(3)}, // step never completed
	}
	for _, r := range recs {
		l.Append(r)
	}
	a, err := Analyze(l.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	w := a.Txns[1].Written
	if len(w) != 1 || !bytes.Equal([]byte(w[0].PK), []byte(pk(2))) {
		t.Fatalf("Written = %+v, want only pk 2", w)
	}
}
