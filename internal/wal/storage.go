package wal

// Disk backend: the log as a sequence of append-only segment files
// (wal-000001.seg, wal-000002.seg, ...) whose concatenation is the byte
// stream Replay walks. Segments rotate at a size threshold; rotation fsyncs
// the finished segment, so only the last segment can hold unsynced bytes.
// Open reads every segment back, truncates a torn tail at the first
// damaged frame (the §3.4 crash rule: everything after the damage never
// happened), and reports what it discarded.
//
// Every durability transition carries a fault injection point, declared in
// init below; the crash matrix arms each in turn.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"accdb/internal/fault"
)

func init() {
	fault.Declare("wal.append.crash", fault.Crash,
		"process dies between log appends: the buffered (unforced) tail is lost")
	fault.Declare("wal.write.partial", fault.Torn,
		"torn write: only a prefix of the flush makes it into the segment file before the crash")
	fault.Declare("wal.write.error", fault.Error,
		"write(2) to the segment file fails; the log freezes durability")
	fault.Declare("wal.segment.rotate.crash", fault.Crash,
		"process dies at a segment rotation, after the old segment's final sync")
	fault.Declare("wal.sync.crash", fault.Crash,
		"process dies before fsync: written-but-unsynced bytes vanish with the page cache")
	fault.Declare("wal.sync.error", fault.Error,
		"fsync fails (fsyncgate): the log must not trust anything written since the last sync")
	fault.Declare("wal.sync.delay", fault.Delay,
		"slow fsync stalls group commit, widening the window other terminals pile into")
	fault.Declare("wal.group.force.crash", fault.Crash,
		"process dies inside the group-commit window: followers queued behind the leader, but the group's force never happened")
}

// segment file naming.
const segPrefix, segSuffix = "wal-", ".seg"

func segName(seq int) string { return fmt.Sprintf("%s%06d%s", segPrefix, seq, segSuffix) }

// fileStorage is the segment-file backend of a disk-backed Log. All methods
// are safe for concurrent use; the Log's flush mutex already serializes
// write/sync pairs, so the internal mutex mostly guards freeze.
type fileStorage struct {
	dir      string
	segLimit int64

	mu     sync.Mutex
	f      *os.File // current segment
	seq    int
	segOff int64 // bytes written to current segment
	synced int64 // bytes of current segment known durable
	frozen bool
}

// errCrashed is returned by frozen storage so the Log stops advancing its
// durable watermark; it never reaches users.
var errCrashed = fmt.Errorf("wal: storage frozen by simulated crash")

// openDir opens (or creates) the segment directory and returns the backend
// plus the concatenated byte image of every segment, untruncated — the
// caller scans it for a torn tail and calls truncateTo.
func openDir(dir string, segLimit int64) (*fileStorage, []byte, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	names, err := listSegments(dir)
	if err != nil {
		return nil, nil, err
	}
	var image []byte
	for _, name := range names {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, nil, err
		}
		image = append(image, b...)
	}
	fs := &fileStorage{dir: dir, segLimit: segLimit}
	if len(names) == 0 {
		if err := fs.openSegment(1); err != nil {
			return nil, nil, err
		}
		return fs, nil, nil
	}
	last := names[len(names)-1]
	fmt.Sscanf(last, segPrefix+"%d"+segSuffix, &fs.seq)
	f, err := os.OpenFile(filepath.Join(dir, last), os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	fs.f, fs.segOff, fs.synced = f, st.Size(), st.Size()
	return fs, image, nil
}

func listSegments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && len(n) > len(segPrefix)+len(segSuffix) &&
			n[:len(segPrefix)] == segPrefix && filepath.Ext(n) == segSuffix {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// truncateTo cuts the on-disk image down to validLen bytes (a global offset
// into the segment concatenation): the segment containing validLen is
// physically truncated and every later segment is removed. Called by Open
// after the torn-tail scan, before any new append.
func (fs *fileStorage) truncateTo(names []string, sizes []int64, validLen int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var start int64
	cut := -1
	for i, name := range names {
		end := start + sizes[i]
		path := filepath.Join(fs.dir, name)
		switch {
		case cut >= 0:
			if err := os.Remove(path); err != nil {
				return err
			}
		case validLen <= end:
			cut = i
			if err := os.Truncate(path, validLen-start); err != nil {
				return err
			}
		}
		start = end
	}
	if cut < 0 {
		return nil
	}
	// Reopen the now-last segment for append.
	if fs.f != nil {
		fs.f.Close()
	}
	fmt.Sscanf(names[cut], segPrefix+"%d"+segSuffix, &fs.seq)
	f, err := os.OpenFile(filepath.Join(fs.dir, names[cut]), os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	fs.f, fs.segOff, fs.synced = f, st.Size(), st.Size()
	return nil
}

func (fs *fileStorage) openSegment(seq int) error {
	f, err := os.OpenFile(filepath.Join(fs.dir, segName(seq)), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	fs.f, fs.seq, fs.segOff, fs.synced = f, seq, 0, 0
	return nil
}

// write appends p to the segment stream, rotating when the current segment
// is full. Fault points: wal.write.partial (torn write then freeze),
// wal.write.error, wal.segment.rotate.crash.
func (fs *fileStorage) write(p []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.frozen {
		return errCrashed
	}
	if fs.segOff >= fs.segLimit {
		// Rotation: the finished segment is made fully durable first, so
		// only the last segment ever holds unsynced bytes.
		if err := fs.f.Sync(); err != nil {
			fs.freezeLocked(fs.synced)
			return err
		}
		fs.synced = fs.segOff
		if o := fault.Point("wal.segment.rotate.crash"); o.Effect == fault.Crash {
			fs.freezeLocked(fs.segOff)
			return errCrashed
		}
		if err := fs.f.Close(); err != nil {
			return err
		}
		if err := fs.openSegment(fs.seq + 1); err != nil {
			return err
		}
	}
	switch o := fault.Point("wal.write.partial"); o.Effect {
	case fault.Torn:
		keep := int(float64(len(p)) * o.KeepFrac)
		fs.f.Write(p[:keep])
		fs.f.Sync() // the fragment is the artifact under test: make it survive
		fs.freezeLocked(fs.segOff + int64(keep))
		return errCrashed
	case fault.Crash:
		fs.freezeLocked(fs.synced)
		return errCrashed
	}
	if o := fault.Point("wal.write.error"); o.Effect == fault.Error {
		fs.freezeLocked(fs.synced)
		return o.Err
	}
	n, err := fs.f.Write(p)
	fs.segOff += int64(n)
	if err != nil {
		fs.freezeLocked(fs.synced)
		return err
	}
	return nil
}

// sync makes everything written durable. Fault points: wal.sync.delay,
// wal.sync.crash (die before the fsync: unsynced bytes vanish),
// wal.sync.error.
func (fs *fileStorage) sync() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.frozen {
		return errCrashed
	}
	if o := fault.Point("wal.sync.delay"); o.Effect == fault.Delay {
		time.Sleep(o.Delay)
	}
	if o := fault.Point("wal.sync.crash"); o.Effect == fault.Crash {
		fs.freezeLocked(fs.synced)
		return errCrashed
	}
	if o := fault.Point("wal.sync.error"); o.Effect == fault.Error {
		fs.freezeLocked(fs.synced)
		return o.Err
	}
	if err := fs.f.Sync(); err != nil {
		fs.freezeLocked(fs.synced)
		return err
	}
	fs.synced = fs.segOff
	return nil
}

// freezeToSynced simulates the crash outcome from outside (Log.Crash): the
// current segment is truncated back to its synced length, discarding bytes
// that only the doomed process's page cache ever saw.
func (fs *fileStorage) freezeToSynced() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if !fs.frozen {
		fs.freezeLocked(fs.synced)
	}
}

// freezeLocked marks the storage dead and truncates the current segment to
// keep bytes, which becomes the exact on-disk image recovery will read.
// Requires fs.mu.
func (fs *fileStorage) freezeLocked(keep int64) {
	fs.frozen = true
	if fs.f != nil {
		fs.f.Truncate(keep)
		fs.f.Sync()
	}
}

func (fs *fileStorage) close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.f == nil {
		return nil
	}
	err := fs.f.Close()
	fs.f = nil
	return err
}

// Options configure Open.
type Options struct {
	// SegmentSize is the rotation threshold in bytes (default 1 MiB).
	SegmentSize int64
	// ForceLatency adds simulated latency on top of the real fsync
	// (default 0 for disk-backed logs).
	ForceLatency time.Duration
	// GroupWindow enables cross-caller group commit: a force leader waits
	// up to this long for concurrent commits before issuing one shared
	// sync (see Log.SetGroupWindow). 0 disables batching.
	GroupWindow time.Duration
}

// Open opens (creating if needed) a disk-backed log in dir. It reads every
// segment back, truncates the on-disk image at the first damaged frame —
// the torn-tail rule: a crash mid-append leaves a partial record that never
// happened — and returns a log whose Recovered() image feeds recovery and
// whose TornTail() reports what, if anything, was cut. New appends continue
// the LSN space after the recovered image.
func Open(dir string, opt Options) (*Log, error) {
	if opt.SegmentSize <= 0 {
		opt.SegmentSize = 1 << 20
	}
	names, err := listSegments(dir)
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	fs, image, err := openDir(dir, opt.SegmentSize)
	if err != nil {
		return nil, err
	}
	valid, torn := scanValid(image)
	if torn != nil {
		sizes := make([]int64, len(names))
		for i, name := range names {
			st, err := os.Stat(filepath.Join(dir, name))
			if err != nil {
				fs.close()
				return nil, err
			}
			sizes[i] = st.Size()
		}
		if err := fs.truncateTo(names, sizes, int64(valid)); err != nil {
			fs.close()
			return nil, err
		}
		image = image[:valid]
	}
	return &Log{
		ForceLatency: opt.ForceLatency,
		groupWindow:  opt.GroupWindow,
		prefix:       image,
		size:         LSN(valid),
		flushed:      LSN(valid),
		fsWritten:    LSN(valid),
		fs:           fs,
		tornTail:     torn,
	}, nil
}
