// Package wal implements the write-ahead log the ACC engine uses for step
// atomicity, commitment, and compensation-aware crash recovery.
//
// The log is the stand-in for Open Ingres's log file. Its distinctive ACC
// feature (§5 of the paper) is the forced **end-of-step record**, which also
// carries the transaction's saved work area so a compensating step can run
// after a crash. Forcing the log at every step boundary — instead of once
// per transaction — is the ACC's principal overhead, so the Log simulates a
// configurable force latency that the benchmarks charge to the scheduler
// exactly the way the paper's measurements did.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"accdb/internal/fault"
	"accdb/internal/spi"
	"accdb/internal/trace"
)

// Type enumerates log record types.
type Type uint8

const (
	// TBegin marks the start of a transaction.
	TBegin Type = iota + 1
	// TStepBegin marks the start of a forward step.
	TStepBegin
	// TWrite records one tuple mutation (insert, update, or delete) with
	// before and after images.
	TWrite
	// TEndOfStep marks successful completion of a step; it is forced and
	// carries the saved work area used to compensate after a crash.
	TEndOfStep
	// TCommit marks transaction commit; forced.
	TCommit
	// TAbort marks an abort that required no compensation (no completed steps).
	TAbort
	// TCompBegin marks the start of a compensating step.
	TCompBegin
	// TCompDone marks successful completion of compensation; forced.
	TCompDone
	// TCoordBegin is a multi-shot coordinator's decision record, written to
	// the originating partition's log before any shot runs: Txn carries the
	// global transaction id, TxnType the home transaction type, and WorkArea
	// the encoded shot plan. Forced — recovery drives the global transaction
	// to an outcome from this record alone.
	TCoordBegin
	// TCoordShot marks one shot of a global transaction committing in its
	// partition; Step is the shot index. Advisory — the shot's own partition
	// log is the ground truth recovery consults.
	TCoordShot
	// TCoordCommit marks a global transaction complete: the home transaction
	// and every planned shot committed.
	TCoordCommit
	// TCoordAbort marks a global transaction rolled back: completed shots
	// were compensated (§3.4) and the home transaction did not survive.
	TCoordAbort
)

// String names the record type.
func (t Type) String() string {
	switch t {
	case TBegin:
		return "BEGIN"
	case TStepBegin:
		return "STEP"
	case TWrite:
		return "WRITE"
	case TEndOfStep:
		return "EOS"
	case TCommit:
		return "COMMIT"
	case TAbort:
		return "ABORT"
	case TCompBegin:
		return "COMP"
	case TCompDone:
		return "COMPDONE"
	case TCoordBegin:
		return "COORD"
	case TCoordShot:
		return "COORDSHOT"
	case TCoordCommit:
		return "COORDCOMMIT"
	case TCoordAbort:
		return "COORDABORT"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Record is one log record. Fields beyond Type and Txn are type-specific.
type Record struct {
	Type Type
	Txn  uint64

	TxnType  string // TBegin, TCoordBegin: registered transaction type name
	Step     int32  // TStepBegin/TEndOfStep: step index; TCoordShot: shot index
	Table    string // TWrite
	PK       spi.Key
	Before   spi.Row // nil for insert
	After    spi.Row // nil for delete
	WorkArea []byte  // TEndOfStep: work area; TCoordBegin: encoded shot plan

	// Global and Shot stamp a TBegin whose transaction executes one shot of
	// a multi-shot global transaction: Global is the coordinator's global id
	// (0 = not a shot) and Shot the shot index — 0 for the home transaction,
	// 1..k for remote shots, -(1..k) for the compensating undo of a shot.
	// Recovery resolves each shot's fate by this stamp in the shot's own
	// partition log.
	Global uint64
	Shot   int32
}

// LSN is a log sequence number: the byte offset just past the record.
type LSN uint64

// Stats counts log activity.
type Stats struct {
	Records uint64
	Forces  uint64
	Bytes   uint64
}

// Log is the append-only, binary-encoded write-ahead log. It exists in two
// configurations behind the same API:
//
//   - memory-only (New): records live in a buffer and "durability" is the
//     flushed watermark plus a simulated force latency — the test double
//     the experiments and most unit tests use;
//   - disk-backed (Open): forces additionally write the buffered tail to
//     CRC-framed segment files and fsync, with group commit — concurrent
//     ForceTo callers coalesce behind one leader's sync.
//
// Crash simulation (fault package, Log.Crash) freezes durability in either
// configuration: later appends and forces change nothing a recovery would
// see, exactly as after a kill -9.
type Log struct {
	// ForceLatency is slept on every Force call, simulating the group-commit
	// I/O the paper's system paid on each forced record. It is charged
	// outside the buffer mutex so concurrent forces overlap, as they do on a
	// real controller. Disk-backed logs pay the real fsync instead and
	// usually leave this zero.
	ForceLatency time.Duration

	// The appended image lives in fixed-size chunks rather than one
	// growing []byte: a hot log reaches hundreds of megabytes, and slice
	// doubling would re-copy the whole image every generation (growslice
	// memmove was ~15% of server CPU before chunking). Chunks are sealed
	// full and never moved; records never span a chunk boundary.
	mu        sync.Mutex
	prefix    []byte   // recovered durable image (disk-backed logs only)
	chunks    [][]byte // sealed chunks appended since New/Open, in order
	chunkBase []LSN    // absolute start offset of each sealed chunk
	tail      []byte   // current chunk being filled
	size      LSN      // absolute end of the log (prefix + chunks + tail)
	payload   []byte   // retained encode scratch (guarded by mu)
	flushed   LSN      // global durable watermark (≥ len(prefix))
	stats     Stats
	crashed   bool // simulated crash: durability frozen

	// fs is the segment-file backend; nil for memory-only logs.
	fs *fileStorage
	// flushMu serializes disk flushes; the holder is the group-commit
	// leader and syncs everything appended so far.
	flushMu   sync.Mutex
	flushBuf  []byte // retained flush scratch (guarded by flushMu)
	fsWritten LSN    // global offset already handed to fs (under flushMu)
	ioErr     error
	// tornTail, for disk-backed logs, records the tail damage Open found
	// and truncated, if any.
	tornTail *ErrTornTail

	// Group-commit scheduler (SetGroupWindow). gmu guards the window, the
	// leader flag, and gcond; followers wait on gcond for the leader's
	// force to cover them. Separate from mu/flushMu so a sleeping leader
	// never blocks appends.
	gmu         sync.Mutex
	gcond       *sync.Cond
	groupWindow time.Duration
	gLeader     bool

	// tracer is the structured event bus; nil disables tracing. Emit sites
	// nil-check first so the disabled cost is one predictable branch.
	tracer *trace.Tracer
}

// SetTracer attaches the structured event bus; nil disables tracing. Call
// before the log serves appends.
func (l *Log) SetTracer(t *trace.Tracer) { l.tracer = t }

// New creates a log with the given simulated force latency.
func New(forceLatency time.Duration) *Log {
	return &Log{ForceLatency: forceLatency}
}

// chunkSize is the sealed-chunk capacity of the in-memory image. Large
// enough that chunk bookkeeping is negligible, small enough that a mostly
// idle log stays cheap.
const chunkSize = 256 << 10

// uvarintLen is the encoded size of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// appendRecordLocked frames the scratch payload (uvarint length, payload,
// CRC) into the tail chunk, sealing it first if the frame does not fit.
// Requires l.mu.
func (l *Log) appendRecordLocked() {
	need := uvarintLen(uint64(len(l.payload))) + len(l.payload) + 4
	if cap(l.tail)-len(l.tail) < need {
		if len(l.tail) > 0 {
			l.chunks = append(l.chunks, l.tail)
			l.chunkBase = append(l.chunkBase, l.size-LSN(len(l.tail)))
		}
		c := chunkSize
		if need > c {
			c = need
		}
		l.tail = make([]byte, 0, c)
	}
	l.tail = binary.AppendUvarint(l.tail, uint64(len(l.payload)))
	l.tail = append(l.tail, l.payload...)
	l.tail = binary.LittleEndian.AppendUint32(l.tail, crc32.ChecksumIEEE(l.payload))
	l.size += LSN(need)
}

// copyRangeLocked appends the log bytes in [from, to) — absolute offsets at
// or past the recovered prefix — to dst. Requires l.mu.
func (l *Log) copyRangeLocked(dst []byte, from, to LSN) []byte {
	for i, c := range l.chunks {
		base, end := l.chunkBase[i], l.chunkBase[i]+LSN(len(c))
		if end <= from {
			continue
		}
		if base >= to {
			return dst
		}
		s, e := LSN(0), LSN(len(c))
		if from > base {
			s = from - base
		}
		if to < end {
			e = to - base
		}
		dst = append(dst, c[s:e]...)
	}
	tailBase := l.size - LSN(len(l.tail))
	if to > tailBase && from < l.size {
		s, e := LSN(0), l.size-tailBase
		if from > tailBase {
			s = from - tailBase
		}
		if to < l.size {
			e = to - tailBase
		}
		dst = append(dst, l.tail[s:e]...)
	}
	return dst
}

// Append encodes and appends rec, returning its end LSN. The record is not
// durable until a Force covers its LSN.
func (l *Log) Append(rec Record) LSN {
	if o := fault.Point("wal.append.crash"); o.Effect == fault.Crash {
		l.Crash()
	}
	l.mu.Lock()
	before := l.size
	l.payload = encodePayload(l.payload[:0], rec)
	l.appendRecordLocked()
	l.stats.Records++
	lsn := l.size
	l.stats.Bytes = uint64(lsn)
	l.mu.Unlock()
	if l.tracer != nil {
		ev := trace.Ev(trace.KindWALAppend, rec.Txn)
		ev.Mode = rec.Type.String()
		ev.Dur = int64(lsn - before) // record size in bytes
		l.tracer.Emit(ev)
	}
	return lsn
}

// AppendForce appends rec and forces the log through it.
func (l *Log) AppendForce(rec Record) LSN {
	lsn := l.Append(rec)
	l.ForceTo(lsn)
	return lsn
}

// AppendSpan is Append, charging the append's wall time to the span's
// wal_append latency-anatomy stage. A nil span is identical to Append.
func (l *Log) AppendSpan(rec Record, sp *trace.Span) LSN {
	if sp == nil {
		return l.Append(rec)
	}
	start := time.Now()
	lsn := l.Append(rec)
	sp.Add(trace.StageWALAppend, int64(time.Since(start)))
	return lsn
}

// ForceToSpan is ForceTo, charging the whole force — group-commit window
// wait, follower ride-along, and the sync itself — to the span's
// group_commit stage and recording it in the span's event history. A nil
// span is identical to ForceTo.
func (l *Log) ForceToSpan(lsn LSN, sp *trace.Span) {
	if sp == nil {
		l.ForceTo(lsn)
		return
	}
	start := time.Now()
	l.ForceTo(lsn)
	d := int64(time.Since(start))
	sp.Add(trace.StageGroupCommit, d)
	sp.Event(trace.KindWALForce, "", "", d)
}

// AppendForceSpan is AppendForce with span attribution split between the
// wal_append and group_commit stages.
func (l *Log) AppendForceSpan(rec Record, sp *trace.Span) LSN {
	lsn := l.AppendSpan(rec, sp)
	l.ForceToSpan(lsn, sp)
	return lsn
}

// SetGroupWindow enables cross-caller group commit: when d > 0, a ForceTo
// whose LSN is not yet durable elects a leader that waits up to d for more
// appends to arrive, then issues one force covering the whole tail.
// Concurrent callers that land in the window ride the leader's force and
// never touch the disk (or pay the simulated latency) themselves. d bounds
// the extra commit latency a lone caller pays; 0 restores force-per-caller.
// Safe to call concurrently with forces.
func (l *Log) SetGroupWindow(d time.Duration) {
	l.gmu.Lock()
	l.groupWindow = d
	l.gmu.Unlock()
}

// GroupWindow returns the current group-commit window.
func (l *Log) GroupWindow() time.Duration {
	l.gmu.Lock()
	defer l.gmu.Unlock()
	return l.groupWindow
}

// covered reports whether lsn is already durable — or never will be,
// because the log crashed or froze.
func (l *Log) covered(lsn LSN) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushed >= lsn || l.crashed
}

// ForceTo makes the log durable through lsn. Memory-only logs advance the
// flushed watermark and pay the simulated latency; disk-backed logs write
// and fsync under group commit — the caller that wins the flush mutex
// syncs everything appended so far, and concurrent callers whose LSN that
// sync covered return without touching the disk. With a group window set
// (SetGroupWindow), callers additionally batch behind a leader that waits
// out the window before forcing, so one sync covers every session that
// committed inside it.
func (l *Log) ForceTo(lsn LSN) {
	l.gmu.Lock()
	window := l.groupWindow
	if window <= 0 {
		l.gmu.Unlock()
		l.forceDirect(lsn)
		return
	}
	if l.gcond == nil {
		l.gcond = sync.NewCond(&l.gmu)
	}
	for {
		if l.covered(lsn) {
			l.gmu.Unlock()
			return
		}
		if l.gLeader {
			// A leader is collecting the current group; it will broadcast
			// after its force. Re-check coverage then — if its tail capture
			// raced our append, the next iteration elects us leader.
			l.gcond.Wait()
			continue
		}
		l.gLeader = true
		l.gmu.Unlock()

		// The collection window: appends (and followers) pile in while we
		// sleep. The crash point models dying here — followers queued, force
		// never issued — so recovery must compensate the whole group.
		time.Sleep(window)
		if o := fault.Point("wal.group.force.crash"); o.Effect == fault.Crash {
			l.Crash()
		}
		l.forceDirect(l.tailLSN())

		l.gmu.Lock()
		l.gLeader = false
		l.gcond.Broadcast()
	}
}

// forceDirect is the ungrouped force path: it makes the log durable through
// lsn immediately, coalescing only with forces already in flight.
func (l *Log) forceDirect(lsn LSN) {
	l.mu.Lock()
	if l.flushed >= lsn || l.crashed {
		l.mu.Unlock()
		return
	}
	if l.fs == nil {
		l.flushed = lsn
		l.stats.Forces++
		l.mu.Unlock()
		l.payForceLatency(time.Now())
		return
	}
	l.mu.Unlock()

	start := time.Now()
	l.flushMu.Lock()
	l.mu.Lock()
	if l.flushed >= lsn || l.crashed {
		// A concurrent leader's group commit covered us while we waited.
		l.mu.Unlock()
		l.flushMu.Unlock()
		return
	}
	// Group commit: take the whole appended tail, not just our record.
	tail := l.size
	l.flushBuf = l.copyRangeLocked(l.flushBuf[:0], l.fsWritten, tail)
	l.mu.Unlock()

	err := l.fs.write(l.flushBuf)
	if err == nil {
		err = l.fs.sync()
	}
	l.mu.Lock()
	if err != nil {
		// A write or sync failure (injected or real) means durability from
		// here on is gone; freeze the log exactly like a crash so recovery
		// sees only what made it to disk.
		l.ioErr = err
		l.crashed = true
		l.mu.Unlock()
		l.flushMu.Unlock()
		return
	}
	l.fsWritten = tail
	l.flushed = tail
	l.stats.Forces++
	l.mu.Unlock()
	l.flushMu.Unlock()
	l.payForceLatency(start)
}

// payForceLatency charges the simulated force I/O time and emits the trace
// event. start is when the force began (disk-backed forces include the real
// fsync time in the event's duration).
func (l *Log) payForceLatency(start time.Time) {
	if l.ForceLatency > 0 {
		time.Sleep(l.ForceLatency)
	}
	if l.tracer != nil {
		ev := trace.Ev(trace.KindWALForce, 0)
		ev.Dur = int64(time.Since(start)) // force latency paid
		l.tracer.Emit(ev)
	}
}

// Force forces the whole log.
func (l *Log) Force() { l.ForceTo(l.tailLSN()) }

func (l *Log) tailLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Crash simulates a process kill: durability freezes at its current
// watermark. Later appends and forces still mutate the in-memory buffer
// (the doomed process keeps running until the harness stops it) but change
// nothing a recovery — DurableBytes, or reopening the directory — would
// see. Disk-backed logs also truncate the segment files to the synced
// prefix, discarding written-but-unsynced bytes the way a real crash
// discards the page cache.
func (l *Log) Crash() {
	l.mu.Lock()
	if l.crashed {
		l.mu.Unlock()
		return
	}
	l.crashed = true
	fs := l.fs
	l.mu.Unlock()
	if fs != nil {
		fs.freezeToSynced()
	}
}

// Crashed reports whether the log has taken a simulated crash (or frozen
// itself after an I/O error).
func (l *Log) Crashed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.crashed
}

// Err returns the first write/sync error the log absorbed, if any. The log
// freezes (as after Crash) rather than failing appends, so the engine keeps
// scheduling; callers that care about durability loss poll this.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ioErr
}

// TornTail reports the tail damage Open found and truncated, or nil. Always
// nil for memory-only logs.
func (l *Log) TornTail() *ErrTornTail { return l.tornTail }

// Recovered returns the durable image Open read back from disk — the input
// to recovery analysis. Nil for memory-only logs (use DurableBytes after a
// simulated crash instead).
func (l *Log) Recovered() []byte { return l.prefix }

// Close flushes nothing (durability is the caller's responsibility via
// Force) and closes the segment files of a disk-backed log.
func (l *Log) Close() error {
	l.mu.Lock()
	fs := l.fs
	l.mu.Unlock()
	if fs == nil {
		return nil
	}
	return fs.close()
}

// Bytes returns a copy of the encoded log including any recovered prefix (a
// crash "snapshot" for recovery tests). Callers wanting only what survives
// a crash use DurableBytes.
func (l *Log) Bytes() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]byte, 0, l.size)
	out = append(out, l.prefix...)
	return l.copyRangeLocked(out, LSN(len(l.prefix)), l.size)
}

// DurableBytes returns only the forced prefix of the log — what survives a
// crash.
func (l *Log) DurableBytes() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]byte, 0, l.flushed)
	out = append(out, l.prefix...)
	if l.flushed > LSN(len(l.prefix)) {
		out = l.copyRangeLocked(out, LSN(len(l.prefix)), l.flushed)
	}
	return out
}

// Snapshot returns the counters.
func (l *Log) Snapshot() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// encodeRecord frames one record into dst — the allocating convenience
// used by tests; the Append hot path frames via the log's retained
// scratch instead.
func encodeRecord(dst []byte, r Record) []byte {
	payload := encodePayload(nil, r)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
}

// encodePayload appends the record's frame payload to dst and returns it.
// Layout: uvarint payload length, payload, CRC32-IEEE of the payload
// (4 bytes little-endian) — the length and CRC are added by the framer.
// Payload: type byte, uvarint txn, type-specific fields. The per-record
// CRC is what makes a torn tail decidable: a complete frame whose checksum
// fails is corruption, not a mid-append crash.
func encodePayload(dst []byte, r Record) []byte {
	payload := dst
	payload = append(payload, byte(r.Type))
	payload = binary.AppendUvarint(payload, r.Txn)
	putString := func(s string) {
		payload = binary.AppendUvarint(payload, uint64(len(s)))
		payload = append(payload, s...)
	}
	putRow := func(row spi.Row) {
		if row == nil {
			payload = append(payload, 0)
			return
		}
		payload = append(payload, 1)
		payload = spi.MarshalRow(payload, row)
	}
	switch r.Type {
	case TBegin:
		putString(r.TxnType)
		if r.Global != 0 {
			// Shot stamp: appended only when present, so unstamped begin
			// records keep the pre-partition layout byte for byte.
			payload = binary.AppendUvarint(payload, r.Global)
			payload = binary.AppendVarint(payload, int64(r.Shot))
		}
	case TCoordBegin:
		putString(r.TxnType)
		payload = binary.AppendUvarint(payload, uint64(len(r.WorkArea)))
		payload = append(payload, r.WorkArea...)
	case TStepBegin, TCompBegin, TCoordShot:
		payload = binary.AppendVarint(payload, int64(r.Step))
	case TWrite:
		putString(r.Table)
		putString(string(r.PK))
		putRow(r.Before)
		putRow(r.After)
	case TEndOfStep:
		payload = binary.AppendVarint(payload, int64(r.Step))
		payload = binary.AppendUvarint(payload, uint64(len(r.WorkArea)))
		payload = append(payload, r.WorkArea...)
	case TCommit, TAbort, TCompDone, TCoordCommit, TCoordAbort:
	default:
		panic(fmt.Sprintf("wal: encoding unknown record type %d", r.Type))
	}
	return payload
}

// ErrTornTail reports that the log image ends in bytes that do not form
// complete, checksum-valid records. Replay delivers every record before
// Offset and stops cleanly there; the error tells the caller exactly what
// was dropped and whether it looks like a mid-append crash or mid-log
// corruption.
type ErrTornTail struct {
	// Offset is the byte offset of the first frame that could not be
	// delivered.
	Offset int64
	// DiscardedBytes is how many bytes from Offset to the end of the image
	// were dropped.
	DiscardedBytes int64
	// DiscardedRecords counts complete, CRC-valid records found after the
	// bad frame by continuing the length walk. Zero for a clean crash
	// tail; nonzero means a corrupt record mid-log cut off later records
	// that had themselves survived.
	DiscardedRecords int
	// Corrupt is true when the frame at Offset is structurally complete
	// but fails its CRC (or decodes to garbage) — damage, not a crash.
	// False means the image simply ends mid-frame.
	Corrupt bool
}

// Error implements error.
func (e *ErrTornTail) Error() string {
	kind := "torn tail"
	if e.Corrupt {
		kind = "corrupt record"
	}
	return fmt.Sprintf("wal: %s at offset %d (%d bytes, %d later records discarded)",
		kind, e.Offset, e.DiscardedBytes, e.DiscardedRecords)
}

// Clean reports whether the damage is consistent with a crash mid-append —
// a single incomplete frame at the very end — as opposed to corruption
// that destroyed records known to have been durable.
func (e *ErrTornTail) Clean() bool { return !e.Corrupt && e.DiscardedRecords == 0 }

// frame extracts the frame starting at off: payload bounds and whether the
// frame is structurally complete and CRC-valid. ok=false with
// complete=false means the frame runs past the end of data (torn);
// complete=true with ok=false means CRC failure (corrupt).
func frame(data []byte, off int) (payloadStart, payloadEnd int, complete, ok bool) {
	l, n := binary.Uvarint(data[off:])
	if n <= 0 || l > uint64(len(data)) {
		return 0, 0, false, false
	}
	payloadStart = off + n
	end := payloadStart + int(l) + 4 // payload + CRC
	if end > len(data) || end < off {
		return 0, 0, false, false
	}
	payloadEnd = payloadStart + int(l)
	sum := binary.LittleEndian.Uint32(data[payloadEnd : payloadEnd+4])
	return payloadStart, payloadEnd, true, crc32.ChecksumIEEE(data[payloadStart:payloadEnd]) == sum
}

// scanValid walks the frame structure of data and returns the length of
// the valid prefix, plus a torn-tail report if the image does not end on a
// clean record boundary.
func scanValid(data []byte) (int, *ErrTornTail) {
	off := 0
	for off < len(data) {
		_, end, complete, ok := frame(data, off)
		if complete && ok {
			off = end + 4
			continue
		}
		torn := &ErrTornTail{
			Offset:         int64(off),
			DiscardedBytes: int64(len(data) - off),
			Corrupt:        complete, // complete frame, bad CRC
		}
		if complete {
			// Count CRC-valid records after the corrupt one: the walk's
			// framing is still intact, so we know what the corruption cut
			// off.
			for next := end + 4; next < len(data); {
				_, nend, ncomplete, nok := frame(data, next)
				if !ncomplete || !nok {
					break
				}
				torn.DiscardedRecords++
				next = nend + 4
			}
		}
		return off, torn
	}
	return off, nil
}

// Replay decodes records from data in order, invoking fn for each. When the
// image does not end on a clean record boundary — a crash mid-append, a
// torn write, or corruption — Replay delivers every record before the
// damage and then returns *ErrTornTail describing what was dropped; the
// caller decides whether a non-Clean tear is acceptable. Errors from fn
// abort the replay and are returned as-is.
func Replay(data []byte, fn func(Record) error) error {
	valid, torn := scanValid(data)
	off := 0
	for off < valid {
		ps, pe, _, _ := frame(data, off)
		rec, err := decodeRecord(data[ps:pe])
		if err != nil {
			// A CRC-valid frame that does not decode is an encoder/decoder
			// mismatch, not disk damage; surface it loudly.
			return fmt.Errorf("wal: record at offset %d: %w", off, err)
		}
		off = pe + 4
		if err := fn(rec); err != nil {
			return err
		}
	}
	if torn != nil {
		return torn
	}
	return nil
}

func decodeRecord(p []byte) (Record, error) {
	var r Record
	if len(p) < 1 {
		return r, fmt.Errorf("empty payload")
	}
	r.Type = Type(p[0])
	p = p[1:]
	txn, n := binary.Uvarint(p)
	if n <= 0 {
		return r, fmt.Errorf("bad txn id")
	}
	r.Txn = txn
	p = p[n:]
	getString := func() (string, error) {
		l, n := binary.Uvarint(p)
		if n <= 0 || l > uint64(len(p)) || n+int(l) > len(p) {
			return "", fmt.Errorf("bad string")
		}
		s := string(p[n : n+int(l)])
		p = p[n+int(l):]
		return s, nil
	}
	getRow := func() (spi.Row, error) {
		if len(p) < 1 {
			return nil, fmt.Errorf("bad row flag")
		}
		present := p[0] == 1
		p = p[1:]
		if !present {
			return nil, nil
		}
		row, n, err := spi.UnmarshalRow(p)
		if err != nil {
			return nil, err
		}
		p = p[n:]
		return row, nil
	}
	var err error
	switch r.Type {
	case TBegin:
		if r.TxnType, err = getString(); err != nil {
			return r, err
		}
		if len(p) > 0 {
			// Optional shot stamp (multi-shot coordinator, DESIGN.md §16).
			g, n := binary.Uvarint(p)
			if n <= 0 {
				return r, fmt.Errorf("bad shot global id")
			}
			p = p[n:]
			v, n2 := binary.Varint(p)
			if n2 <= 0 {
				return r, fmt.Errorf("bad shot index")
			}
			r.Global, r.Shot = g, int32(v)
		}
	case TCoordBegin:
		if r.TxnType, err = getString(); err != nil {
			return r, err
		}
		l, n := binary.Uvarint(p)
		if n <= 0 || l > uint64(len(p)) || n+int(l) > len(p) {
			return r, fmt.Errorf("bad shot plan")
		}
		r.WorkArea = append([]byte(nil), p[n:n+int(l)]...)
	case TStepBegin, TCompBegin, TCoordShot:
		v, n := binary.Varint(p)
		if n <= 0 {
			return r, fmt.Errorf("bad step index")
		}
		r.Step = int32(v)
	case TWrite:
		if r.Table, err = getString(); err != nil {
			return r, err
		}
		var pk string
		if pk, err = getString(); err != nil {
			return r, err
		}
		r.PK = spi.Key(pk)
		if r.Before, err = getRow(); err != nil {
			return r, err
		}
		r.After, err = getRow()
	case TEndOfStep:
		v, n := binary.Varint(p)
		if n <= 0 {
			return r, fmt.Errorf("bad step index")
		}
		r.Step = int32(v)
		p = p[n:]
		l, n2 := binary.Uvarint(p)
		if n2 <= 0 || l > uint64(len(p)) || n2+int(l) > len(p) {
			return r, fmt.Errorf("bad work area")
		}
		r.WorkArea = append([]byte(nil), p[n2:n2+int(l)]...)
	case TCommit, TAbort, TCompDone, TCoordCommit, TCoordAbort:
	default:
		return r, fmt.Errorf("unknown record type %d", uint8(r.Type))
	}
	return r, err
}
