// Package wal implements the write-ahead log the ACC engine uses for step
// atomicity, commitment, and compensation-aware crash recovery.
//
// The log is the stand-in for Open Ingres's log file. Its distinctive ACC
// feature (§5 of the paper) is the forced **end-of-step record**, which also
// carries the transaction's saved work area so a compensating step can run
// after a crash. Forcing the log at every step boundary — instead of once
// per transaction — is the ACC's principal overhead, so the Log simulates a
// configurable force latency that the benchmarks charge to the scheduler
// exactly the way the paper's measurements did.
package wal

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"accdb/internal/storage"
	"accdb/internal/trace"
)

// Type enumerates log record types.
type Type uint8

const (
	// TBegin marks the start of a transaction.
	TBegin Type = iota + 1
	// TStepBegin marks the start of a forward step.
	TStepBegin
	// TWrite records one tuple mutation (insert, update, or delete) with
	// before and after images.
	TWrite
	// TEndOfStep marks successful completion of a step; it is forced and
	// carries the saved work area used to compensate after a crash.
	TEndOfStep
	// TCommit marks transaction commit; forced.
	TCommit
	// TAbort marks an abort that required no compensation (no completed steps).
	TAbort
	// TCompBegin marks the start of a compensating step.
	TCompBegin
	// TCompDone marks successful completion of compensation; forced.
	TCompDone
)

// String names the record type.
func (t Type) String() string {
	switch t {
	case TBegin:
		return "BEGIN"
	case TStepBegin:
		return "STEP"
	case TWrite:
		return "WRITE"
	case TEndOfStep:
		return "EOS"
	case TCommit:
		return "COMMIT"
	case TAbort:
		return "ABORT"
	case TCompBegin:
		return "COMP"
	case TCompDone:
		return "COMPDONE"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Record is one log record. Fields beyond Type and Txn are type-specific.
type Record struct {
	Type Type
	Txn  uint64

	TxnType  string // TBegin: registered transaction type name
	Step     int32  // TStepBegin/TEndOfStep: step index (0-based)
	Table    string // TWrite
	PK       storage.Key
	Before   storage.Row // nil for insert
	After    storage.Row // nil for delete
	WorkArea []byte      // TEndOfStep: application-encoded compensation state
}

// LSN is a log sequence number: the byte offset just past the record.
type LSN uint64

// Stats counts log activity.
type Stats struct {
	Records uint64
	Forces  uint64
	Bytes   uint64
}

// Log is an append-only, binary-encoded log buffer with simulated force
// latency.
type Log struct {
	// ForceLatency is slept on every Force call, simulating the group-commit
	// I/O the paper's system paid on each forced record. It is charged
	// outside the buffer mutex so concurrent forces overlap, as they do on a
	// real controller.
	ForceLatency time.Duration

	mu      sync.Mutex
	buf     []byte
	flushed LSN
	stats   Stats

	// tracer is the structured event bus; nil disables tracing. Emit sites
	// nil-check first so the disabled cost is one predictable branch.
	tracer *trace.Tracer
}

// SetTracer attaches the structured event bus; nil disables tracing. Call
// before the log serves appends.
func (l *Log) SetTracer(t *trace.Tracer) { l.tracer = t }

// New creates a log with the given simulated force latency.
func New(forceLatency time.Duration) *Log {
	return &Log{ForceLatency: forceLatency}
}

// Append encodes and appends rec, returning its end LSN. The record is not
// durable until a Force covers its LSN.
func (l *Log) Append(rec Record) LSN {
	l.mu.Lock()
	before := len(l.buf)
	l.buf = encodeRecord(l.buf, rec)
	l.stats.Records++
	l.stats.Bytes = uint64(len(l.buf))
	lsn := LSN(len(l.buf))
	l.mu.Unlock()
	if l.tracer != nil {
		ev := trace.Ev(trace.KindWALAppend, rec.Txn)
		ev.Mode = rec.Type.String()
		ev.Dur = int64(int(lsn) - before) // record size in bytes
		l.tracer.Emit(ev)
	}
	return lsn
}

// AppendForce appends rec and forces the log through it.
func (l *Log) AppendForce(rec Record) LSN {
	lsn := l.Append(rec)
	l.ForceTo(lsn)
	return lsn
}

// ForceTo makes the log durable through lsn, paying the simulated latency if
// anything needed writing.
func (l *Log) ForceTo(lsn LSN) {
	l.mu.Lock()
	if l.flushed >= lsn {
		l.mu.Unlock()
		return
	}
	l.flushed = lsn
	l.stats.Forces++
	l.mu.Unlock()
	start := time.Now()
	if l.ForceLatency > 0 {
		time.Sleep(l.ForceLatency)
	}
	if l.tracer != nil {
		ev := trace.Ev(trace.KindWALForce, 0)
		ev.Dur = int64(time.Since(start)) // force latency paid
		l.tracer.Emit(ev)
	}
}

// Force forces the whole log.
func (l *Log) Force() { l.ForceTo(LSN(l.len())) }

func (l *Log) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}

// Bytes returns a copy of the encoded log (a crash "snapshot" for recovery
// tests). Passing a durableOnly=true view would model losing unforced tail
// records; callers wanting that use DurableBytes.
func (l *Log) Bytes() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]byte(nil), l.buf...)
}

// DurableBytes returns only the forced prefix of the log — what survives a
// crash.
func (l *Log) DurableBytes() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]byte(nil), l.buf[:l.flushed]...)
}

// Snapshot returns the counters.
func (l *Log) Snapshot() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

func encodeRecord(dst []byte, r Record) []byte {
	// Layout: uvarint payload length, then payload:
	// type byte, uvarint txn, type-specific fields.
	payload := make([]byte, 0, 64)
	payload = append(payload, byte(r.Type))
	payload = binary.AppendUvarint(payload, r.Txn)
	putString := func(s string) {
		payload = binary.AppendUvarint(payload, uint64(len(s)))
		payload = append(payload, s...)
	}
	putRow := func(row storage.Row) {
		if row == nil {
			payload = append(payload, 0)
			return
		}
		payload = append(payload, 1)
		payload = storage.MarshalRow(payload, row)
	}
	switch r.Type {
	case TBegin:
		putString(r.TxnType)
	case TStepBegin, TCompBegin:
		payload = binary.AppendVarint(payload, int64(r.Step))
	case TWrite:
		putString(r.Table)
		putString(string(r.PK))
		putRow(r.Before)
		putRow(r.After)
	case TEndOfStep:
		payload = binary.AppendVarint(payload, int64(r.Step))
		payload = binary.AppendUvarint(payload, uint64(len(r.WorkArea)))
		payload = append(payload, r.WorkArea...)
	case TCommit, TAbort, TCompDone:
	default:
		panic(fmt.Sprintf("wal: encoding unknown record type %d", r.Type))
	}
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

// Replay decodes records from data in order, invoking fn for each. A
// truncated final record — the normal result of a crash mid-append — is
// ignored; corruption elsewhere is reported.
func Replay(data []byte, fn func(Record) error) error {
	off := 0
	for off < len(data) {
		l, n := binary.Uvarint(data[off:])
		if n <= 0 || off+n+int(l) > len(data) {
			return nil // truncated tail record: discard, as recovery would
		}
		payload := data[off+n : off+n+int(l)]
		off += n + int(l)
		rec, err := decodeRecord(payload)
		if err != nil {
			return fmt.Errorf("wal: record at offset %d: %w", off, err)
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

func decodeRecord(p []byte) (Record, error) {
	var r Record
	if len(p) < 1 {
		return r, fmt.Errorf("empty payload")
	}
	r.Type = Type(p[0])
	p = p[1:]
	txn, n := binary.Uvarint(p)
	if n <= 0 {
		return r, fmt.Errorf("bad txn id")
	}
	r.Txn = txn
	p = p[n:]
	getString := func() (string, error) {
		l, n := binary.Uvarint(p)
		if n <= 0 || n+int(l) > len(p) {
			return "", fmt.Errorf("bad string")
		}
		s := string(p[n : n+int(l)])
		p = p[n+int(l):]
		return s, nil
	}
	getRow := func() (storage.Row, error) {
		if len(p) < 1 {
			return nil, fmt.Errorf("bad row flag")
		}
		present := p[0] == 1
		p = p[1:]
		if !present {
			return nil, nil
		}
		row, n, err := storage.UnmarshalRow(p)
		if err != nil {
			return nil, err
		}
		p = p[n:]
		return row, nil
	}
	var err error
	switch r.Type {
	case TBegin:
		r.TxnType, err = getString()
	case TStepBegin, TCompBegin:
		v, n := binary.Varint(p)
		if n <= 0 {
			return r, fmt.Errorf("bad step index")
		}
		r.Step = int32(v)
	case TWrite:
		if r.Table, err = getString(); err != nil {
			return r, err
		}
		var pk string
		if pk, err = getString(); err != nil {
			return r, err
		}
		r.PK = storage.Key(pk)
		if r.Before, err = getRow(); err != nil {
			return r, err
		}
		r.After, err = getRow()
	case TEndOfStep:
		v, n := binary.Varint(p)
		if n <= 0 {
			return r, fmt.Errorf("bad step index")
		}
		r.Step = int32(v)
		p = p[n:]
		l, n2 := binary.Uvarint(p)
		if n2 <= 0 || n2+int(l) > len(p) {
			return r, fmt.Errorf("bad work area")
		}
		r.WorkArea = append([]byte(nil), p[n2:n2+int(l)]...)
	case TCommit, TAbort, TCompDone:
	default:
		return r, fmt.Errorf("unknown record type %d", uint8(r.Type))
	}
	return r, err
}
