package wal

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"accdb/internal/fault"
)

// TestGroupCommitCoalesces drives N concurrent committers through a log
// with a group window and requires that one leader's force covered nearly
// all of them: the whole point of cross-session group commit is syncs ≪
// commits.
func TestGroupCommitCoalesces(t *testing.T) {
	const committers = 16
	l := New(0)
	l.SetGroupWindow(2 * time.Millisecond)
	if l.GroupWindow() != 2*time.Millisecond {
		t.Fatal("GroupWindow not recorded")
	}

	var wg sync.WaitGroup
	lsns := make([]LSN, committers)
	for i := 0; i < committers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lsns[i] = l.AppendForce(Record{Type: TCommit, Txn: uint64(i + 1)})
		}(i)
	}
	wg.Wait()

	st := l.Snapshot()
	if st.Forces >= committers/2 {
		t.Fatalf("group commit did not coalesce: %d forces for %d commits", st.Forces, committers)
	}
	durable := LSN(len(l.DurableBytes()))
	for i, lsn := range lsns {
		if durable < lsn {
			t.Fatalf("commit %d (lsn %d) not covered by group force (durable %d)", i, lsn, durable)
		}
	}
}

// TestGroupCommitDisk runs the same shape against a disk-backed log and
// verifies every record survives a reopen — the group force must be a real
// sync, not just a watermark.
func TestGroupCommitDisk(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	l, err := Open(dir, Options{GroupWindow: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const committers = 8
	var wg sync.WaitGroup
	for i := 0; i < committers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l.AppendForce(Record{Type: TCommit, Txn: uint64(i + 1)})
		}(i)
	}
	wg.Wait()
	st := l.Snapshot()
	if st.Forces >= committers {
		t.Fatalf("disk group commit did not coalesce: %d forces for %d commits", st.Forces, committers)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	seen := map[uint64]bool{}
	if err := Replay(l2.Recovered(), func(r Record) error {
		seen[r.Txn] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != committers {
		t.Fatalf("reopen found %d commits, want %d", len(seen), committers)
	}
}

// TestGroupCommitCrashPoint arms the group-window crash point: the leader
// collects followers but dies before the force. Everyone must return (no
// hung followers), nothing new may be durable, and the log must read as
// crashed.
func TestGroupCommitCrashPoint(t *testing.T) {
	l := New(0)
	l.SetGroupWindow(5 * time.Millisecond)

	c := fault.NewController(42)
	c.Arm("wal.group.force.crash", fault.Spec{Effect: fault.Crash, Nth: 1})
	c.Activate()
	defer fault.Deactivate()

	const committers = 4
	done := make(chan struct{})
	go func() {
		var wg sync.WaitGroup
		for i := 0; i < committers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				l.AppendForce(Record{Type: TCommit, Txn: uint64(i + 1)})
			}(i)
		}
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("followers hung after group-commit crash")
	}
	if !l.Crashed() {
		t.Fatal("log did not crash at the group-commit point")
	}
	if n := len(l.DurableBytes()); n != 0 {
		t.Fatalf("%d bytes became durable after a pre-force crash", n)
	}
}

// TestGroupWindowZeroIsDirect confirms the knob's off position: with no
// window, each force is immediate and counted individually.
func TestGroupWindowZeroIsDirect(t *testing.T) {
	l := New(0)
	for i := 0; i < 3; i++ {
		l.AppendForce(Record{Type: TCommit, Txn: uint64(i + 1)})
	}
	if st := l.Snapshot(); st.Forces != 3 {
		t.Fatalf("ungrouped forces = %d, want 3", st.Forces)
	}
}
