package memstore_test

import (
	"testing"

	"accdb/internal/memstore"
	"accdb/internal/spi"
	"accdb/internal/spi/spitest"
)

// The ordered-map backend must pass the SPI conformance suite verbatim.
func TestConformance(t *testing.T) {
	spitest.Run(t, func() spi.Store { return memstore.NewStore() })
}
