// Package memstore is a deliberately simple spi.Store: a mutex-guarded
// ordered map per table, secondary "indexes" answered by a full scan and
// sort, and a direct transliteration of the version-chain contract. It
// exists to prove the SPI seam is real — the conformance suite
// (accdb/internal/spi/spitest) and the full TPC-C consistency battery run
// against it unchanged — and to serve as the reference implementation a
// backend author can read in one sitting. It registers itself under the
// backend name "memstore"; select it with ACCDB_BACKEND=memstore or
// core.WithBackend("memstore"). Nothing here is tuned: correctness over
// speed, in as few moving parts as possible.
package memstore

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"accdb/internal/spi"
)

func init() { spi.Register("memstore", func() spi.Store { return NewStore() }) }

// Store is a named collection of in-memory tables.
type Store struct {
	mu     sync.RWMutex
	tables map[string]*table
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{tables: make(map[string]*table)} }

// Create adds a table for schema; the name must be new.
func (s *Store) Create(schema *spi.Schema) (spi.Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[schema.Name]; ok {
		return nil, fmt.Errorf("memstore: table %q already exists", schema.Name)
	}
	t := &table{schema: schema, rows: make(map[spi.Key]spi.Row)}
	s.tables[schema.Name] = t
	return t, nil
}

// Table returns the named table, or nil.
func (s *Store) Table(name string) spi.Table {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if t, ok := s.tables[name]; ok {
		return t
	}
	return nil
}

// Names returns the table names in unspecified order.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	return names
}

// Capabilities: memstore implements the full version-chain contract.
func (s *Store) Capabilities() spi.Capabilities { return spi.Capabilities{Versions: true} }

type index struct {
	def  spi.IndexDef
	cols []int
}

type version struct {
	csn spi.CSN
	row spi.Row // nil is a tombstone
}

type table struct {
	schema *spi.Schema

	mu       sync.RWMutex
	rows     map[spi.Key]spi.Row
	indexes  []*index
	versions map[spi.Key][]version
}

func (t *table) Schema() *spi.Schema { return t.schema }

func (t *table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

func (t *table) Get(pk spi.Key) (spi.Row, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	row, ok := t.rows[pk]
	if !ok {
		return nil, fmt.Errorf("%w: %s", spi.ErrNotFound, t.schema.Name)
	}
	return row.Clone(), nil
}

func (t *table) Exists(pk spi.Key) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.rows[pk]
	return ok
}

func (t *table) Insert(row spi.Row) error {
	if err := t.schema.CheckRow(row); err != nil {
		return err
	}
	pk := t.schema.KeyOf(row)
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.rows[pk]; ok {
		return fmt.Errorf("%w: %s %v", spi.ErrDuplicate, t.schema.Name, t.schema.PKOf(row))
	}
	t.seedLocked(pk, nil)
	t.rows[pk] = row.Clone()
	return nil
}

func (t *table) Update(pk spi.Key, row spi.Row) (spi.Row, error) {
	if err := t.schema.CheckRow(row); err != nil {
		return nil, err
	}
	if t.schema.KeyOf(row) != pk {
		return nil, fmt.Errorf("memstore: update changes primary key of %s", t.schema.Name)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old, ok := t.rows[pk]
	if !ok {
		return nil, fmt.Errorf("%w: %s", spi.ErrNotFound, t.schema.Name)
	}
	t.seedLocked(pk, old)
	t.rows[pk] = row.Clone()
	return old, nil
}

func (t *table) Delete(pk spi.Key) (spi.Row, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	old, ok := t.rows[pk]
	if !ok {
		return nil, fmt.Errorf("%w: %s", spi.ErrNotFound, t.schema.Name)
	}
	t.seedLocked(pk, old)
	delete(t.rows, pk)
	return old, nil
}

func (t *table) Apply(pk spi.Key, row spi.Row) {
	t.mu.Lock()
	defer t.mu.Unlock()
	old, had := t.rows[pk]
	if row == nil {
		if !had {
			return
		}
		t.seedLocked(pk, old)
		delete(t.rows, pk)
		return
	}
	if had {
		t.seedLocked(pk, old)
	} else {
		t.seedLocked(pk, nil)
	}
	t.rows[pk] = row.Clone()
}

func (t *table) Scan(visit func(pk spi.Key, row spi.Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for pk, row := range t.rows {
		if !visit(pk, row.Clone()) {
			return
		}
	}
}

func (t *table) AddIndex(def spi.IndexDef) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	cols := make([]int, len(def.Columns))
	for i, name := range def.Columns {
		c := t.schema.Col(name)
		if c < 0 {
			return fmt.Errorf("memstore: index %s: no column %q in %s", def.Name, name, t.schema.Name)
		}
		cols[i] = c
	}
	// No structure to maintain: scans recompute entries from the base rows.
	t.indexes = append(t.indexes, &index{def: def, cols: cols})
	return nil
}

func (t *table) index(name string) *index {
	for _, ix := range t.indexes {
		if ix.def.Name == name {
			return ix
		}
	}
	return nil
}

// entryKey builds the same entry key the B+-tree backend stores: encoded
// secondary columns, then the primary key.
func (ix *index) entryKey(row spi.Row, pk spi.Key) spi.Key {
	var b strings.Builder
	for _, c := range ix.cols {
		spi.AppendKeyVal(&b, row[c])
	}
	b.WriteString(string(pk))
	return spi.Key(b.String())
}

// entry pairs an index entry key with its primary key.
type entry struct {
	key spi.Key
	pk  spi.Key
}

// entriesLocked materializes the index by scanning every base row, sorted in
// entry-key order. O(n log n) per probe — the simplicity is the point.
func (t *table) entriesLocked(ix *index) []entry {
	es := make([]entry, 0, len(t.rows))
	for pk, row := range t.rows {
		es = append(es, entry{ix.entryKey(row, pk), pk})
	}
	sort.Slice(es, func(i, j int) bool { return es[i].key < es[j].key })
	return es
}

func (t *table) IndexScan(indexName string, eq []spi.Value, visit func(pk spi.Key, row spi.Row) bool) error {
	return t.indexWalk(indexName, spi.EncodeKey(eq...), "", true,
		func(pk spi.Key) (spi.Row, bool) {
			row, ok := t.rows[pk]
			if !ok {
				return nil, false
			}
			return row.Clone(), true
		}, visit)
}

func (t *table) IndexRange(indexName string, lo, hi []spi.Value, visit func(pk spi.Key, row spi.Row) bool) error {
	var hiK spi.Key
	if hi != nil {
		hiK = spi.EncodeKey(hi...)
	}
	return t.indexWalk(indexName, spi.EncodeKey(lo...), hiK, false,
		func(pk spi.Key) (spi.Row, bool) {
			row, ok := t.rows[pk]
			if !ok {
				return nil, false
			}
			return row.Clone(), true
		}, visit)
}

// indexWalk visits index entries from lo — prefix-equal entries when prefix
// is set, else [lo, hi) with empty hi unbounded — resolving each primary key
// through resolve (which reports absent keys to skip).
func (t *table) indexWalk(indexName string, lo, hi spi.Key, prefix bool,
	resolve func(pk spi.Key) (spi.Row, bool), visit func(pk spi.Key, row spi.Row) bool) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ix := t.index(indexName)
	if ix == nil {
		return fmt.Errorf("memstore: %s has no index %q", t.schema.Name, indexName)
	}
	for _, e := range t.entriesLocked(ix) {
		if e.key < lo {
			continue
		}
		if prefix {
			if !strings.HasPrefix(string(e.key), string(lo)) {
				break
			}
		} else if hi != "" && e.key >= hi {
			break
		}
		row, ok := resolve(e.pk)
		if !ok {
			continue
		}
		if !visit(e.pk, row) {
			return nil
		}
	}
	return nil
}

// seedLocked starts pk's chain with its pre-image at CSN 0 (nil when absent)
// if no chain exists yet; see the spi.Table contract.
func (t *table) seedLocked(pk spi.Key, prior spi.Row) {
	if _, ok := t.versions[pk]; ok {
		return
	}
	if t.versions == nil {
		t.versions = make(map[spi.Key][]version)
	}
	if prior != nil {
		prior = prior.Clone()
	}
	t.versions[pk] = []version{{csn: 0, row: prior}}
}

func (t *table) PublishVersion(pk spi.Key, prior, row spi.Row, csn spi.CSN) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seedLocked(pk, prior)
	if row != nil {
		row = row.Clone()
	}
	t.versions[pk] = append(t.versions[pk], version{csn: csn, row: row})
}

// asOfLocked resolves pk as of asOf: newest chain version ≤ asOf, base-row
// fallback only for keys with no chain.
func (t *table) asOfLocked(pk spi.Key, asOf spi.CSN) (spi.Row, bool) {
	if chain, ok := t.versions[pk]; ok {
		for i := len(chain) - 1; i >= 0; i-- {
			if chain[i].csn <= asOf {
				if chain[i].row == nil {
					return nil, false
				}
				return chain[i].row.Clone(), true
			}
		}
		return nil, false
	}
	row, ok := t.rows[pk]
	if !ok {
		return nil, false
	}
	return row.Clone(), true
}

func (t *table) GetAsOf(pk spi.Key, asOf spi.CSN) (spi.Row, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	row, ok := t.asOfLocked(pk, asOf)
	if !ok {
		return nil, fmt.Errorf("%w: %s", spi.ErrNotFound, t.schema.Name)
	}
	return row, nil
}

func (t *table) ScanAsOf(asOf spi.CSN, visit func(pk spi.Key, row spi.Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for pk := range t.rows {
		if _, chained := t.versions[pk]; chained {
			continue // visited through the chain loop below
		}
		if row, ok := t.asOfLocked(pk, asOf); ok && !visit(pk, row) {
			return
		}
	}
	for pk := range t.versions {
		if row, ok := t.asOfLocked(pk, asOf); ok && !visit(pk, row) {
			return
		}
	}
}

func (t *table) IndexScanAsOf(indexName string, eq []spi.Value, asOf spi.CSN, visit func(pk spi.Key, row spi.Row) bool) error {
	// Membership is read-ASAP (the walk is over current base rows), contents
	// are as-of — the same asymmetry as the B+-tree backend.
	return t.indexWalk(indexName, spi.EncodeKey(eq...), "", true,
		func(pk spi.Key) (spi.Row, bool) { return t.asOfLocked(pk, asOf) }, visit)
}

func (t *table) PruneVersions(floor spi.CSN) (pruned, dropped int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for pk, chain := range t.versions {
		keep := 0
		for i := len(chain) - 1; i >= 0; i-- {
			if chain[i].csn <= floor {
				keep = i
				break
			}
		}
		if keep > 0 {
			pruned += keep
			chain = chain[keep:]
			t.versions[pk] = chain
		}
		if len(chain) == 1 && chain[0].csn <= floor {
			base, exists := t.rows[pk]
			v := chain[0].row
			if (v == nil && !exists) || (v != nil && exists && v.Equal(base)) {
				delete(t.versions, pk)
				pruned++
				dropped++
			}
		}
	}
	return pruned, dropped
}

func (t *table) ResetVersions() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.versions = nil
}

func (t *table) VersionStats() spi.VersionStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s := spi.VersionStats{Chains: len(t.versions)}
	for _, chain := range t.versions {
		s.Versions += len(chain)
	}
	return s
}

func (t *table) ChainLen(pk spi.Key) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.versions[pk])
}
