// Package sim reproduces the paper's experimental testbed (§5.2): a set of
// terminal goroutines in a closed loop submitting transactions against a
// pool of database server processes, with configurable statement service
// time, inter-statement compute time, and terminal think time.
//
// The mapping to the paper's environment:
//
//   - Env models the database server processes. A statement's CPU phase must
//     hold one of k server tokens; lock waits and (simulated) log I/O do
//     not, matching a multi-threaded server whose blocked sessions yield.
//   - Env.Compute models the paper's Figure-3 knob: "adding several
//     milliseconds of compute time between successive SQL statements".
//     Compute time is charged while locks are held, which is what stretches
//     lock duration.
//   - Terminals think between transactions (exponentially distributed), so
//     the offered load scales with the terminal count, as in Figures 2-4.
package sim

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"accdb/internal/metrics"
)

// Env implements core.ExecEnv: a server pool with per-statement service
// time. The zero value executes statements inline at zero cost.
type Env struct {
	tokens  chan struct{}
	service time.Duration
	compute time.Duration

	statements atomic.Uint64
}

// NewEnv creates an environment with `servers` database server processes,
// the given CPU service time per statement, and the given inter-statement
// compute time.
func NewEnv(servers int, service, compute time.Duration) *Env {
	e := &Env{service: service, compute: compute}
	if servers > 0 {
		e.tokens = make(chan struct{}, servers)
		for i := 0; i < servers; i++ {
			e.tokens <- struct{}{}
		}
	}
	return e
}

// Statement runs one statement's CPU phase on a server: it acquires a
// server token, holds it for the service time, runs the data operation, and
// releases the token. The service time is slept, not spun: the token pool is
// what models server occupancy, and sleeping keeps the simulation honest on
// hosts with fewer cores than simulated servers.
func (e *Env) Statement(work func()) {
	e.statements.Add(1)
	if e.tokens != nil {
		<-e.tokens
		defer func() { e.tokens <- struct{}{} }()
	}
	if e.service > 0 {
		time.Sleep(e.service)
	}
	work()
}

// Compute charges the application's inter-statement compute time. It does
// not hold a server token (the computation happens in the application), but
// the caller's locks remain held — that is the point of the experiment.
func (e *Env) Compute() {
	if e.compute > 0 {
		time.Sleep(e.compute)
	}
}

// Statements returns the number of statements executed.
func (e *Env) Statements() uint64 { return e.statements.Load() }

// Txn is one generated transaction ready to execute.
type Txn struct {
	// Type is the transaction type name, used to group metrics.
	Type string
	// Run executes the transaction and reports its outcome.
	Run func() (metrics.Outcome, error)
}

// Generator produces the next transaction for a terminal. Implementations
// must be safe for concurrent use; each terminal passes its own *rand.Rand.
type Generator interface {
	Next(r *rand.Rand, terminal int) Txn
}

// GeneratorFunc adapts a function to Generator.
type GeneratorFunc func(r *rand.Rand, terminal int) Txn

// Next implements Generator.
func (f GeneratorFunc) Next(r *rand.Rand, terminal int) Txn { return f(r, terminal) }

// Config parameterizes a closed-loop run.
type Config struct {
	// Terminals is the number of concurrent terminal goroutines.
	Terminals int
	// Duration is the measured interval.
	Duration time.Duration
	// Warmup runs before measurement starts; its transactions complete but
	// are not recorded.
	Warmup time.Duration
	// ThinkTime is the mean of the exponential think time between
	// transactions; zero means no thinking.
	ThinkTime time.Duration
	// Seed makes terminal input streams reproducible.
	Seed int64
}

// Result is the outcome of a run.
type Result struct {
	// Recorder holds per-type and total response-time summaries.
	Recorder *metrics.Recorder
	// Elapsed is the measured wall-clock interval.
	Elapsed time.Duration
	// Completed is the number of measured completions.
	Completed int
}

// Throughput returns completed transactions per second.
func (r *Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Completed) / r.Elapsed.Seconds()
}

// Run drives the closed loop: each terminal repeatedly thinks, draws a
// transaction from gen, executes it, and records its response time.
func Run(cfg Config, gen Generator) *Result {
	rec := metrics.NewRecorder()
	var recording atomic.Bool
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for t := 0; t < cfg.Terminals; t++ {
		wg.Add(1)
		go func(term int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(cfg.Seed + int64(term)*7919))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if cfg.ThinkTime > 0 {
					think := time.Duration(r.ExpFloat64() * float64(cfg.ThinkTime))
					select {
					case <-stop:
						return
					case <-time.After(think):
					}
				}
				txn := gen.Next(r, term)
				start := time.Now()
				outcome, _ := txn.Run()
				if recording.Load() {
					rec.Record(txn.Type, time.Since(start), outcome)
				}
			}
		}(t)
	}

	if cfg.Warmup > 0 {
		time.Sleep(cfg.Warmup)
	}
	recording.Store(true)
	measureStart := time.Now()
	time.Sleep(cfg.Duration)
	recording.Store(false)
	elapsed := time.Since(measureStart)
	close(stop)
	wg.Wait()

	return &Result{Recorder: rec, Elapsed: elapsed, Completed: rec.Count()}
}
