package sim

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"accdb/internal/metrics"
)

func TestEnvStatementCountsAndServes(t *testing.T) {
	env := NewEnv(2, 0, 0)
	ran := 0
	env.Statement(func() { ran++ })
	env.Statement(func() { ran++ })
	if ran != 2 || env.Statements() != 2 {
		t.Fatalf("ran=%d statements=%d", ran, env.Statements())
	}
}

func TestEnvServerPoolLimitsConcurrency(t *testing.T) {
	env := NewEnv(2, 0, 0)
	var active, peak atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			env.Statement(func() {
				n := active.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				time.Sleep(10 * time.Millisecond)
				active.Add(-1)
			})
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > 2 {
		t.Fatalf("peak concurrency %d exceeds 2 servers", got)
	}
}

func TestEnvServiceTimeCharged(t *testing.T) {
	env := NewEnv(1, 20*time.Millisecond, 30*time.Millisecond)
	start := time.Now()
	env.Statement(func() {})
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("service time not charged")
	}
	start = time.Now()
	env.Compute()
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("compute time not charged")
	}
}

func TestZeroEnvIsInline(t *testing.T) {
	var env Env // zero value
	done := false
	env.Statement(func() { done = true })
	env.Compute()
	if !done {
		t.Fatal("zero env did not run work")
	}
}

func TestClosedLoopRun(t *testing.T) {
	var count atomic.Int64
	gen := GeneratorFunc(func(r *rand.Rand, terminal int) Txn {
		return Txn{Type: "noop", Run: func() (metrics.Outcome, error) {
			count.Add(1)
			time.Sleep(time.Millisecond)
			return metrics.Committed, nil
		}}
	})
	res := Run(Config{
		Terminals: 4,
		Duration:  150 * time.Millisecond,
		Warmup:    50 * time.Millisecond,
		ThinkTime: time.Millisecond,
		Seed:      1,
	}, gen)
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if res.Completed >= int(count.Load()) {
		t.Fatal("warmup transactions should not be recorded")
	}
	if res.Throughput() <= 0 {
		t.Fatal("throughput missing")
	}
	if res.Recorder.Total().Mean <= 0 {
		t.Fatal("mean missing")
	}
}

func TestRunStopsTerminals(t *testing.T) {
	var live atomic.Int32
	gen := GeneratorFunc(func(r *rand.Rand, terminal int) Txn {
		return Txn{Type: "x", Run: func() (metrics.Outcome, error) {
			live.Add(1)
			defer live.Add(-1)
			return metrics.Committed, nil
		}}
	})
	Run(Config{Terminals: 8, Duration: 30 * time.Millisecond, ThinkTime: time.Millisecond}, gen)
	time.Sleep(20 * time.Millisecond)
	if live.Load() != 0 {
		t.Fatal("terminals still running after Run returned")
	}
}

func TestTerminalSeedsDiffer(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]int64{}
	gen := GeneratorFunc(func(r *rand.Rand, terminal int) Txn {
		v := r.Int63()
		mu.Lock()
		if _, ok := seen[terminal]; !ok {
			seen[terminal] = v
		}
		mu.Unlock()
		return Txn{Type: "x", Run: func() (metrics.Outcome, error) { return metrics.Committed, nil }}
	})
	Run(Config{Terminals: 4, Duration: 30 * time.Millisecond}, gen)
	vals := map[int64]bool{}
	for _, v := range seen {
		vals[v] = true
	}
	if len(vals) < 2 {
		t.Fatal("terminals drew identical streams")
	}
}
