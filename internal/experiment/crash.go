package experiment

// The crash matrix: for every registered fault injection point, run a TPC-C
// mix against a disk-backed system, trip the point, restart (fresh base
// state + reopened log), recover, and verify the twelve-component TPC-C
// consistency constraint — then re-admit load on the recovered engine and
// verify again. DESIGN.md §10 documents the protocol this harness checks:
// recovery is only trusted because every durability transition has been
// crashed through.

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"accdb/internal/core"
	"accdb/internal/fault"
	"accdb/internal/metrics"
	"accdb/internal/tpcc"
	"accdb/internal/wal"
)

// CrashConfig parameterizes one crash-matrix case.
type CrashConfig struct {
	// Point is the injection point to trip, with its natural effect
	// (typically one entry of fault.Points()).
	Point fault.Info
	// Nth fires the effect on the point's nth hit (default 3 — past the
	// trivial first-use cases).
	Nth uint64
	// Seed drives the load generator, the fault controller, and the initial
	// database load; one (point, seed, nth) triple replays exactly.
	Seed int64
	// WALDir is the segment directory (required; caller owns cleanup).
	WALDir string
	// Terminals is the concurrent driver count (default 8).
	Terminals int
	// MaxOps stops the doomed run if the point has not fired after this many
	// transactions (default 4000).
	MaxOps int
	// RerunOps is how many transactions the recovered engine runs before the
	// final consistency check (default 300).
	RerunOps int
	// Scale is the database cardinality (default a small crash-matrix scale).
	Scale tpcc.Scale
	// SegmentSize is the WAL rotation threshold; kept small so rotation
	// points get exercised (default 32 KiB).
	SegmentSize int64
	// GroupWindow is the WAL group-commit window; kept small but nonzero so
	// the group-commit fault point gets exercised (default 100 µs).
	GroupWindow time.Duration
}

// CrashResult reports one crash-matrix case.
type CrashResult struct {
	// Fired reports whether the armed point actually tripped during the run
	// (a Delay point counts as fired once it has been hit).
	Fired bool
	// Committed is the number of committed transactions recovery found.
	Committed int
	// Compensated is how many transactions recovery rolled back by
	// compensating step.
	Compensated int
	// TornTail is the tail damage the reopened log reported, if any.
	TornTail *wal.ErrTornTail
	// Violations is the consistency check on the recovered, quiescent state.
	Violations []error
	// RerunCompleted and RerunViolations cover the post-recovery load: the
	// recovered engine must not merely hold a consistent state but keep
	// producing them.
	RerunCompleted  int
	RerunViolations []error
}

// CrashScale is the default crash-matrix cardinality: small enough that a
// case runs in well under a second, hot enough that the mix exercises
// multi-step interleaving and compensation.
func CrashScale() tpcc.Scale {
	return tpcc.Scale{
		Warehouses: 1, Districts: 4, CustomersPerDistrict: 20,
		Items: 50, InitialOrdersPerDistrict: 20, NewOrderBacklog: 8,
	}
}

type crashSystem struct {
	db  *core.DB
	eng *core.Engine
	log *wal.Log
	w   *tpcc.Workload
}

// buildCrashSystem loads the base state (deterministic in cfg.Seed) and
// assembles an ACC engine over a disk-backed log in cfg.WALDir.
func buildCrashSystem(cfg CrashConfig) (*crashSystem, error) {
	db := core.NewDB()
	if err := tpcc.CreateSchema(db); err != nil {
		return nil, err
	}
	if err := tpcc.Load(db, cfg.Scale, cfg.Seed); err != nil {
		return nil, err
	}
	l, err := wal.Open(cfg.WALDir, wal.Options{SegmentSize: cfg.SegmentSize, GroupWindow: cfg.GroupWindow})
	if err != nil {
		return nil, err
	}
	types := tpcc.BuildTypes()
	eng := core.New(db, types.Tables,
		core.WithMode(core.ModeACC),
		core.WithWaitTimeout(10*time.Second),
		core.WithWAL(l),
	)
	if _, err := tpcc.Register(eng, types, cfg.Scale); err != nil {
		l.Close()
		return nil, err
	}
	wcfg := tpcc.DefaultWorkloadConfig(cfg.Scale)
	// A fifth of new-orders roll back via the unused-item rule, keeping the
	// compensation path hot so comp-force fault points fire quickly.
	wcfg.RollbackPercent = 20
	return &crashSystem{db: db, eng: eng, log: l, w: tpcc.NewWorkload(eng, wcfg)}, nil
}

// RunCrash executes one crash-matrix case: doomed run, crash, restart,
// recovery, consistency check, re-run, consistency check.
func RunCrash(cfg CrashConfig) (*CrashResult, error) {
	if cfg.Nth == 0 {
		cfg.Nth = 3
	}
	if cfg.Terminals == 0 {
		cfg.Terminals = 8
	}
	if cfg.MaxOps == 0 {
		cfg.MaxOps = 4000
	}
	if cfg.RerunOps == 0 {
		cfg.RerunOps = 300
	}
	if cfg.Scale.Warehouses == 0 {
		cfg.Scale = CrashScale()
	}
	if cfg.SegmentSize == 0 {
		cfg.SegmentSize = 32 << 10
	}
	if cfg.GroupWindow == 0 {
		cfg.GroupWindow = 100 * time.Microsecond
	}
	if cfg.WALDir == "" {
		return nil, fmt.Errorf("experiment: crash case needs a WAL directory")
	}

	// Phase 1: the doomed run.
	sys, err := buildCrashSystem(cfg)
	if err != nil {
		return nil, err
	}
	ctrl := fault.NewController(cfg.Seed)
	spec := fault.Spec{Effect: cfg.Point.Effect, Nth: cfg.Nth}
	if cfg.Point.Effect == fault.Delay {
		spec.Nth = 0 // stall every hit; there is no crash to wait for
		if cfg.MaxOps > 1000 {
			cfg.MaxOps = 1000 // every force pays the stall; bound the run
		}
	}
	ctrl.Arm(cfg.Point.Name, spec)
	ctrl.Activate()

	var ops atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < cfg.Terminals; i++ {
		wg.Add(1)
		go func(term int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(cfg.Seed + int64(term)*7919))
			for {
				select {
				case <-ctrl.Crashed():
					return
				default:
				}
				if ops.Add(1) > int64(cfg.MaxOps) {
					return
				}
				sys.w.Next(r, term).Run()
			}
		}(i)
	}
	wg.Wait()
	fault.Deactivate()

	res := &CrashResult{}
	switch cfg.Point.Effect {
	case fault.Delay:
		res.Fired = ctrl.Hits(cfg.Point.Name) > 0
		// No crash: quiesce cleanly so restart still exercises Open.
		sys.log.Force()
	default:
		res.Fired = ctrl.FiredPoint() == cfg.Point.Name
	}
	sys.log.Close()

	// Phase 2: restart — fresh base state (same seed, so byte-identical to
	// the doomed system's starting point), reopened log, recovery.
	sys2, err := buildCrashSystem(cfg)
	if err != nil {
		return nil, err
	}
	defer sys2.log.Close()
	if tt := sys2.log.TornTail(); tt != nil && !tt.Clean() {
		return res, fmt.Errorf("experiment: crash left corrupt (not torn) log: %w", tt)
	}
	rres, err := sys2.eng.RecoverLog(sys2.log)
	if err != nil {
		return res, err
	}
	res.Committed = rres.Committed
	res.Compensated = len(rres.Compensated)
	res.TornTail = rres.TornTail
	holes := tpcc.HolesFromRecovery(rres)
	res.Violations = tpcc.CheckConsistency(sys2.db, cfg.Scale, holes)

	// Phase 3: the recovered engine re-admits load against the same log.
	sys2.w.MergeHoles(holes)
	sys2.w.AdvanceHistoryID(1 << 20)
	r := rand.New(rand.NewSource(cfg.Seed ^ 0x5eedca5e))
	for i := 0; i < cfg.RerunOps; i++ {
		if out, _ := sys2.w.Next(r, i%cfg.Terminals).Run(); out == metrics.Committed {
			res.RerunCompleted++
		}
	}
	sys2.log.Force()
	res.RerunViolations = tpcc.CheckConsistency(sys2.db, cfg.Scale, sys2.w.Holes())
	return res, nil
}
