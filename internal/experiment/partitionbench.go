package experiment

// The partition scaling experiment: TPC-C against an in-memory partition
// set, measuring the single-partition fast path and the multi-shot
// cross-partition path separately. The interesting ratio is cross-partition
// cost against the remote-warehouse share: at 0% the router adds one map
// lookup over a plain engine; every remote new-order pays the decision
// record force plus one forced shot commit per foreign supply warehouse.

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"accdb/internal/core"
	"accdb/internal/metrics"
	"accdb/internal/partition"
	"accdb/internal/tpcc"
)

// PartitionBenchConfig parameterizes one partition-throughput measurement.
type PartitionBenchConfig struct {
	// Partitions is the partition count (default 4).
	Partitions int
	// Terminals is the concurrent driver count (default 16).
	Terminals int
	// RemotePercent is the share of new-orders with a remote supply
	// warehouse. Zero is meaningful — the pure fast-path baseline — so there
	// is no default.
	RemotePercent int
	// Duration is the measured interval (default 3s); Warmup precedes it.
	Duration time.Duration
	Warmup   time.Duration
	// Seed drives load and the initial database.
	Seed int64
	// Scale is the database cardinality (default: DefaultScale with one
	// warehouse per partition at minimum).
	Scale tpcc.Scale
}

// PartitionBenchResult reports the split throughput.
type PartitionBenchResult struct {
	// Elapsed is the measured interval actually timed.
	Elapsed time.Duration
	// Completed counts transactions committed during the interval.
	Completed int
	// Stats is the routing/coordinator counter delta over the interval.
	Stats partition.Stats
	// SingleTput and CrossTput are committed transactions per second through
	// each path (cross counts globals, not shots).
	SingleTput float64
	CrossTput  float64
}

// RunPartitionBench measures a partitioned TPC-C run and splits throughput
// by routing path.
func RunPartitionBench(cfg PartitionBenchConfig) (*PartitionBenchResult, error) {
	if cfg.Partitions == 0 {
		cfg.Partitions = 4
	}
	if cfg.Terminals == 0 {
		cfg.Terminals = 16
	}
	if cfg.Duration == 0 {
		cfg.Duration = 3 * time.Second
	}
	if cfg.Scale.Warehouses == 0 {
		cfg.Scale = tpcc.DefaultScale()
	}
	if cfg.Scale.Warehouses < cfg.Partitions {
		cfg.Scale.Warehouses = cfg.Partitions
	}

	set, err := partition.New(cfg.Partitions, func(p int) (*core.Engine, error) {
		db := core.NewDB()
		if err := tpcc.CreateSchema(db); err != nil {
			return nil, err
		}
		if err := tpcc.LoadPartition(db, cfg.Scale, cfg.Seed, p, cfg.Partitions); err != nil {
			return nil, err
		}
		types := tpcc.BuildTypes()
		eng := core.New(db, types.Tables,
			core.WithMode(core.ModeACC),
			core.WithWaitTimeout(10*time.Second),
			core.WithEngineLabel(fmt.Sprintf("partition %d", p)),
		)
		if _, err := tpcc.RegisterPartitioned(eng, types, cfg.Scale, cfg.Partitions); err != nil {
			return nil, err
		}
		return eng, nil
	})
	if err != nil {
		return nil, err
	}
	defer set.Close()
	tpcc.InstallRoutes(set)

	wcfg := tpcc.DefaultWorkloadConfig(cfg.Scale)
	wcfg.RemotePercent = cfg.RemotePercent
	w := tpcc.NewRemoteWorkload(set.Run, wcfg)

	var committed atomic.Int64
	var measuring atomic.Bool
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < cfg.Terminals; i++ {
		wg.Add(1)
		go func(term int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(cfg.Seed + int64(term)*7919))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if out, _ := w.Next(r, term).Run(); out == metrics.Committed && measuring.Load() {
					committed.Add(1)
				}
			}
		}(i)
	}

	time.Sleep(cfg.Warmup)
	before := set.Snapshot()
	measuring.Store(true)
	start := time.Now()
	time.Sleep(cfg.Duration)
	elapsed := time.Since(start)
	after := set.Snapshot()
	close(stop)
	wg.Wait()

	res := &PartitionBenchResult{
		Elapsed:   elapsed,
		Completed: int(committed.Load()),
		Stats: partition.Stats{
			SingleRouted:   after.SingleRouted - before.SingleRouted,
			CrossStarted:   after.CrossStarted - before.CrossStarted,
			CrossCommitted: after.CrossCommitted - before.CrossCommitted,
			CrossAborted:   after.CrossAborted - before.CrossAborted,
			ShotsRun:       after.ShotsRun - before.ShotsRun,
			ShotUndos:      after.ShotUndos - before.ShotUndos,
			CrossDeadlocks: after.CrossDeadlocks - before.CrossDeadlocks,
		},
	}
	secs := elapsed.Seconds()
	if secs > 0 {
		// SingleRouted counts routed attempts, not commits; the committed
		// counter splits by share since per-path commit counters would put an
		// atomic on the fast path this subsystem promises not to touch.
		routed := res.Stats.SingleRouted + res.Stats.CrossStarted
		if routed > 0 {
			res.SingleTput = float64(res.Completed) * float64(res.Stats.SingleRouted) / float64(routed) / secs
			res.CrossTput = float64(res.Completed) * float64(res.Stats.CrossStarted) / float64(routed) / secs
		}
	}
	return res, nil
}
