package experiment

import (
	"strings"
	"testing"

	"accdb/internal/fault"
)

// TestCrashMatrix is the tentpole acceptance test: for EVERY registered
// fault injection point, crash a TPC-C run there, recover, and require the
// twelve-component consistency constraint to hold on the recovered state —
// and to keep holding after the recovered engine re-runs load.
func TestCrashMatrix(t *testing.T) {
	points := fault.Points()
	if len(points) < 10 {
		t.Fatalf("expected the full fault-point catalog, found %d: %v", len(points), points)
	}
	for _, p := range points {
		p := p
		if strings.HasPrefix(p.Name, "partition.") {
			// Coordinator points only fire in a partitioned deployment;
			// TestPartitionCrashMatrix covers them.
			continue
		}
		t.Run(p.Name, func(t *testing.T) {
			res, err := RunCrash(CrashConfig{
				Point:  p,
				Seed:   42,
				WALDir: t.TempDir(),
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Fired {
				t.Fatalf("point %s never fired within the op budget", p.Name)
			}
			for i, v := range res.Violations {
				if i > 5 {
					t.Fatalf("... and %d more", len(res.Violations)-i)
				}
				t.Errorf("recovered state: %v", v)
			}
			for i, v := range res.RerunViolations {
				if i > 5 {
					t.Fatalf("... and %d more", len(res.RerunViolations)-i)
				}
				t.Errorf("after re-run: %v", v)
			}
			if res.RerunCompleted == 0 {
				t.Error("recovered engine completed no transactions")
			}
			t.Logf("committed=%d compensated=%d torn=%v rerun=%d",
				res.Committed, res.Compensated, res.TornTail, res.RerunCompleted)
		})
	}
}

// TestCrashMatrixDeterministic replays one case twice and requires identical
// recovery outcomes — the property that makes a failing matrix case
// debuggable from its (point, seed, nth) triple.
func TestCrashMatrixDeterministic(t *testing.T) {
	run := func() *CrashResult {
		res, err := RunCrash(CrashConfig{
			Point:  fault.Info{Name: "core.commit.force.crash", Effect: fault.Crash},
			Seed:   7,
			Nth:    2,
			WALDir: t.TempDir(),
			// One terminal: scheduling nondeterminism off, so the doomed
			// run's log — and hence recovery — is bit-reproducible.
			Terminals: 1,
			RerunOps:  50,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !a.Fired || !b.Fired {
		t.Fatalf("point did not fire: %v %v", a.Fired, b.Fired)
	}
	if a.Committed != b.Committed || a.Compensated != b.Compensated {
		t.Fatalf("same (point, seed, nth) diverged: %+v vs %+v", a, b)
	}
}
