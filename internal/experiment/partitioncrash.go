package experiment

// The partitioned crash matrix: RunCrash lifted to a partition set. A
// TPC-C mix with a high remote-warehouse share runs against N partitions,
// each with its own engine and disk-backed log; a fault point — typically
// one of the partition.coord.* points, which freeze EVERY partition's log
// at once, the way a process kill would — trips mid-flight. Restart
// rebuilds the set, runs per-partition recovery plus the coordinator's
// decision-record completion pass, and verifies the consistency battery
// (including the cross-partition stock condition) over the union of the
// partition stores — then re-admits load and verifies again.

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"accdb/internal/core"
	"accdb/internal/fault"
	"accdb/internal/metrics"
	"accdb/internal/partition"
	"accdb/internal/tpcc"
	"accdb/internal/wal"
)

// PartitionCrashConfig parameterizes one partitioned crash-matrix case.
type PartitionCrashConfig struct {
	// Point is the injection point to trip (any registered point works; the
	// partition.coord.* points only fire here, never in the single-engine
	// matrix).
	Point fault.Info
	// Nth fires the effect on the point's nth hit (default 3).
	Nth uint64
	// Seed drives load, faults, and the initial database (deterministic).
	Seed int64
	// WALDir is the parent directory; partition p logs under WALDir/p<p>.
	WALDir string
	// Partitions is the partition count (default 4). The scale's warehouse
	// count is forced to at least this, so every partition owns a warehouse.
	Partitions int
	// Terminals is the concurrent driver count (default 8).
	Terminals int
	// MaxOps stops the doomed run if the point has not fired (default 4000).
	MaxOps int
	// RerunOps is the post-recovery load (default 300).
	RerunOps int
	// RemotePercent is the share of new-orders with a remote supply line
	// (default 25 — every such order on a foreign warehouse is a
	// cross-partition transaction).
	RemotePercent int
	// Scale is the database cardinality (default CrashScale with one
	// warehouse per partition).
	Scale tpcc.Scale
	// SegmentSize is the per-partition WAL rotation threshold (default 32 KiB).
	SegmentSize int64
	// GroupWindow is the WAL group-commit window (default 100 µs).
	GroupWindow time.Duration
}

// PartitionCrashResult reports one partitioned crash-matrix case.
type PartitionCrashResult struct {
	// Fired reports whether the armed point tripped.
	Fired bool
	// Committed sums the committed transactions recovery found across all
	// partition logs (remote shots count on their own partitions).
	Committed int
	// Compensated sums the transactions local recovery rolled back.
	Compensated int
	// ForwardDriven and Undone count the open decision records the
	// coordinator pass closed each way.
	ForwardDriven int
	Undone        int
	// Violations is the consistency battery on the recovered, quiescent
	// state, evaluated across every partition store.
	Violations []error
	// RerunCompleted and RerunViolations cover the post-recovery load.
	RerunCompleted  int
	RerunViolations []error
}

type partitionCrashSystem struct {
	set  *partition.Set
	logs []*wal.Log
	w    *tpcc.Workload
}

func (sys *partitionCrashSystem) dbs() []*core.DB {
	dbs := make([]*core.DB, sys.set.Partitions())
	for p := range dbs {
		dbs[p] = sys.set.Engine(p).DB()
	}
	return dbs
}

func (sys *partitionCrashSystem) close() {
	sys.set.Close()
	for _, l := range sys.logs {
		l.Close()
	}
}

// buildPartitionCrashSystem assembles the partitioned system: per partition
// a fresh base state (deterministic in cfg.Seed), its own log under
// WALDir/p<p>, and a registered engine; then the routing table and a
// remote-heavy workload bound to the set.
func buildPartitionCrashSystem(cfg PartitionCrashConfig) (*partitionCrashSystem, error) {
	sys := &partitionCrashSystem{}
	set, err := partition.New(cfg.Partitions, func(p int) (*core.Engine, error) {
		db := core.NewDB()
		if err := tpcc.CreateSchema(db); err != nil {
			return nil, err
		}
		if err := tpcc.LoadPartition(db, cfg.Scale, cfg.Seed, p, cfg.Partitions); err != nil {
			return nil, err
		}
		l, err := wal.Open(filepath.Join(cfg.WALDir, fmt.Sprintf("p%d", p)),
			wal.Options{SegmentSize: cfg.SegmentSize, GroupWindow: cfg.GroupWindow})
		if err != nil {
			return nil, err
		}
		sys.logs = append(sys.logs, l)
		types := tpcc.BuildTypes()
		eng := core.New(db, types.Tables,
			core.WithMode(core.ModeACC),
			core.WithWaitTimeout(10*time.Second),
			core.WithWAL(l),
			core.WithEngineLabel(fmt.Sprintf("partition %d", p)),
		)
		if _, err := tpcc.RegisterPartitioned(eng, types, cfg.Scale, cfg.Partitions); err != nil {
			return nil, err
		}
		return eng, nil
	})
	if err != nil {
		for _, l := range sys.logs {
			l.Close()
		}
		return nil, err
	}
	sys.set = set
	tpcc.InstallRoutes(set)

	wcfg := tpcc.DefaultWorkloadConfig(cfg.Scale)
	wcfg.RollbackPercent = 20
	wcfg.RemotePercent = cfg.RemotePercent
	sys.w = tpcc.NewRemoteWorkload(set.Run, wcfg)
	return sys, nil
}

// RunPartitionCrash executes one partitioned crash-matrix case: doomed run,
// crash, restart, per-partition + coordinator recovery, consistency check,
// re-run, consistency check.
func RunPartitionCrash(cfg PartitionCrashConfig) (*PartitionCrashResult, error) {
	if cfg.Nth == 0 {
		cfg.Nth = 3
	}
	if cfg.Partitions == 0 {
		cfg.Partitions = 4
	}
	if cfg.Terminals == 0 {
		cfg.Terminals = 8
	}
	if cfg.MaxOps == 0 {
		cfg.MaxOps = 4000
	}
	if cfg.RerunOps == 0 {
		cfg.RerunOps = 300
	}
	if cfg.RemotePercent == 0 {
		cfg.RemotePercent = 25
	}
	if cfg.Scale.Warehouses == 0 {
		cfg.Scale = CrashScale()
	}
	if cfg.Scale.Warehouses < cfg.Partitions {
		cfg.Scale.Warehouses = cfg.Partitions
	}
	if cfg.SegmentSize == 0 {
		cfg.SegmentSize = 32 << 10
	}
	if cfg.GroupWindow == 0 {
		cfg.GroupWindow = 100 * time.Microsecond
	}
	if cfg.WALDir == "" {
		return nil, fmt.Errorf("experiment: partition crash case needs a WAL directory")
	}

	// Phase 1: the doomed run.
	sys, err := buildPartitionCrashSystem(cfg)
	if err != nil {
		return nil, err
	}
	ctrl := fault.NewController(cfg.Seed)
	spec := fault.Spec{Effect: cfg.Point.Effect, Nth: cfg.Nth}
	if cfg.Point.Effect == fault.Delay {
		spec.Nth = 0
		if cfg.MaxOps > 1000 {
			cfg.MaxOps = 1000
		}
	}
	ctrl.Arm(cfg.Point.Name, spec)
	ctrl.Activate()

	// The partition.coord.* points freeze every partition log themselves;
	// a generic point (wal.*, core.*) freezes only the log it fired in. The
	// partitions share one process here, so a fired crash must take all the
	// logs down together — otherwise healthy partitions keep writing durably
	// after the "kill", a failure mode no single-process deployment has.
	watcherDone := make(chan struct{})
	var watcherWG sync.WaitGroup
	if cfg.Point.Effect != fault.Delay {
		watcherWG.Add(1)
		go func() {
			defer watcherWG.Done()
			select {
			case <-ctrl.Crashed():
				for _, l := range sys.logs {
					l.Crash()
				}
			case <-watcherDone:
			}
		}()
	}

	var ops atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < cfg.Terminals; i++ {
		wg.Add(1)
		go func(term int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(cfg.Seed + int64(term)*7919))
			for {
				select {
				case <-ctrl.Crashed():
					return
				default:
				}
				if ops.Add(1) > int64(cfg.MaxOps) {
					return
				}
				sys.w.Next(r, term).Run()
			}
		}(i)
	}
	wg.Wait()
	close(watcherDone)
	watcherWG.Wait()
	fault.Deactivate()

	if cfg.Point.Effect != fault.Delay && ctrl.FiredPoint() != "" {
		// Deterministic backstop for the watcher's race window — and it keeps
		// sys.close() (whose Engine.Close forces the log) from making healthy
		// partitions' post-crash tails durable.
		for _, l := range sys.logs {
			l.Crash()
		}
	}

	res := &PartitionCrashResult{}
	switch cfg.Point.Effect {
	case fault.Delay:
		res.Fired = ctrl.Hits(cfg.Point.Name) > 0
		for _, l := range sys.logs {
			l.Force()
		}
	default:
		res.Fired = ctrl.FiredPoint() == cfg.Point.Name
	}
	sys.close()

	// Phase 2: restart — fresh base state per partition (same seed), reopened
	// logs, per-partition recovery plus the coordinator completion pass.
	sys2, err := buildPartitionCrashSystem(cfg)
	if err != nil {
		return nil, err
	}
	defer sys2.close()
	for p, l := range sys2.logs {
		if tt := l.TornTail(); tt != nil && !tt.Clean() {
			return res, fmt.Errorf("experiment: partition %d crash left corrupt (not torn) log: %w", p, tt)
		}
	}
	rres, err := sys2.set.Recover()
	if err != nil {
		return res, err
	}
	res.ForwardDriven = len(rres.ForwardDriven)
	res.Undone = len(rres.Undone)
	holes := map[tpcc.DistrictKey]map[int64]bool{}
	for _, pr := range rres.Partitions {
		res.Committed += pr.Committed
		res.Compensated += len(pr.Compensated)
		for dk, hs := range tpcc.HolesFromRecovery(pr) {
			if holes[dk] == nil {
				holes[dk] = map[int64]bool{}
			}
			for o := range hs {
				holes[dk][o] = true
			}
		}
	}
	res.Violations = tpcc.CheckConsistencyPartitioned(sys2.dbs(), cfg.Scale, holes)

	// Phase 3: the recovered set re-admits load against the same logs.
	sys2.w.MergeHoles(holes)
	sys2.w.AdvanceHistoryID(1 << 20)
	r := rand.New(rand.NewSource(cfg.Seed ^ 0x5eedca5e))
	for i := 0; i < cfg.RerunOps; i++ {
		if out, _ := sys2.w.Next(r, i%cfg.Terminals).Run(); out == metrics.Committed {
			res.RerunCompleted++
		}
	}
	for _, l := range sys2.logs {
		l.Force()
	}
	res.RerunViolations = tpcc.CheckConsistencyPartitioned(sys2.dbs(), cfg.Scale, sys2.w.Holes())
	return res, nil
}
