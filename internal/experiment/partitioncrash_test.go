package experiment

import (
	"strings"
	"testing"

	"accdb/internal/fault"
)

// TestPartitionCrashMatrix is the coordinator acceptance test: for every
// partition.coord.* fault point — crash after the decision record, between
// shots, after the home commit, mid-compensation — crash a four-partition
// TPC-C run with a 25% remote-warehouse share, recover every partition plus
// the coordinator's decision records, and require the full consistency
// battery (including the cross-partition stock condition) on the recovered
// state and again after re-admitted load.
func TestPartitionCrashMatrix(t *testing.T) {
	var points []fault.Info
	for _, p := range fault.Points() {
		if strings.HasPrefix(p.Name, "partition.") {
			points = append(points, p)
		}
	}
	if len(points) != 4 {
		t.Fatalf("expected the 4 coordinator fault points, found %d: %v", len(points), points)
	}
	for _, p := range points {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			res, err := RunPartitionCrash(PartitionCrashConfig{
				Point:  p,
				Seed:   42,
				WALDir: t.TempDir(),
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Fired {
				t.Fatalf("point %s never fired within the op budget", p.Name)
			}
			for i, v := range res.Violations {
				if i > 5 {
					t.Fatalf("... and %d more", len(res.Violations)-i)
				}
				t.Errorf("recovered state: %v", v)
			}
			for i, v := range res.RerunViolations {
				if i > 5 {
					t.Fatalf("... and %d more", len(res.RerunViolations)-i)
				}
				t.Errorf("after re-run: %v", v)
			}
			if res.RerunCompleted == 0 {
				t.Error("recovered set completed no transactions")
			}
			t.Logf("committed=%d compensated=%d forward=%d undone=%d rerun=%d",
				res.Committed, res.Compensated, res.ForwardDriven, res.Undone, res.RerunCompleted)
		})
	}
}

// TestPartitionCrashGenericPoint runs one non-coordinator point through the
// partitioned harness: a plain WAL-layer crash on one partition's log must
// recover just as well when the workload spans partitions.
func TestPartitionCrashGenericPoint(t *testing.T) {
	res, err := RunPartitionCrash(PartitionCrashConfig{
		Point:  fault.Info{Name: "core.commit.force.crash", Effect: fault.Crash},
		Seed:   7,
		WALDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fired {
		t.Fatal("core.commit.force.crash never fired")
	}
	for _, v := range res.Violations {
		t.Errorf("recovered state: %v", v)
	}
	for _, v := range res.RerunViolations {
		t.Errorf("after re-run: %v", v)
	}
}
