// Package experiment assembles full systems (storage + lock manager + WAL +
// scheduler + TPC-C + simulation testbed) and reruns the paper's §5
// experiments: for each configuration it drives identical closed-loop loads
// against the unmodified (baseline, strict-2PL serializable) system and the
// ACC, and reports the non-ACC/ACC ratios plotted in Figures 2-4, plus the
// server-count experiment described in the text.
package experiment

import (
	"fmt"
	"time"

	_ "accdb/internal/backends"
	"accdb/internal/core"
	"accdb/internal/metrics"
	"accdb/internal/sim"
	"accdb/internal/spi"
	"accdb/internal/tpcc"
	"accdb/internal/trace"
	"accdb/internal/wal"
)

// Config parameterizes one run of one system.
type Config struct {
	Mode core.Mode
	// Terminals is the closed-loop population (the x-axis of Figures 2-4).
	Terminals int
	// Servers is the database server pool size (3 in Figures 2-4; swept in
	// the fourth experiment).
	Servers int
	// ServiceTime is the CPU cost of one SQL statement on a server.
	ServiceTime time.Duration
	// ComputeTime is the Figure-3 knob: per-statement application compute
	// time inside new-order and delivery, charged while locks are held.
	ComputeTime time.Duration
	// ThinkTime is the mean exponential terminal think time.
	ThinkTime time.Duration
	// ForceLatency is the simulated log-force I/O time — the ACC pays one
	// per interior step boundary, the baseline one per commit.
	ForceLatency time.Duration
	// Skew is the extra probability mass on district 1 (Figure 2's
	// "Skewed" curve).
	Skew float64
	// ReadTier, when not core.TierLocked, routes the mix's read-only types
	// (order-status, stock-level) through the lock-free versioned read path
	// at that tier.
	ReadTier core.ReadTier
	// ReadHeavy swaps the TPC-C §5.2.3 mix for tpcc.ReadHeavyMix — mostly
	// read-only probes over a thin writer stream, the read-tier experiment's
	// operating point.
	ReadHeavy bool

	Scale    tpcc.Scale
	Duration time.Duration
	Warmup   time.Duration
	Seed     int64

	// EagerAssertionLocks selects the simplified §3.3 variant (ablation).
	EagerAssertionLocks bool

	// RollbackPercent overrides the share of new-orders that abort via an
	// unused item number; zero means the benchmark default (1%). Raising it
	// exercises the compensation path (trace acceptance tests use this).
	RollbackPercent int
	// Tracer, when non-nil, is attached to the engine so every layer emits
	// structured events to it for the run.
	Tracer *trace.Tracer
	// Anatomy, when non-nil, records a latency-anatomy span per transaction
	// (engine-owned spans: the whole run is the engine phase), feeding the
	// per-stage histograms and the slow-transaction flight recorder.
	Anatomy *trace.Anatomy
	// OnEngine, when non-nil, is called with the freshly built engine before
	// the load starts — the hook the live debug endpoints use to observe the
	// system mid-run.
	OnEngine func(*core.Engine)
	// WALDir, when non-empty, backs the engine's log with CRC-framed segment
	// files in that directory (wal.Open) instead of the in-memory log; the
	// engine then pays real write+fsync per force on top of ForceLatency.
	WALDir string
	// GroupWindow, with WALDir set, enables cross-terminal group commit: a
	// force leader waits this long so concurrent commits share one sync.
	GroupWindow time.Duration
}

// Defaults fills a baseline parameterization that reproduces the paper's
// operating region at laptop scale: three servers, contention concentrated
// on the warehouse/district rows, saturation setting in around 16-24
// terminals.
func Defaults() Config {
	return Config{
		Mode:         core.ModeACC,
		Terminals:    16,
		Servers:      3,
		ServiceTime:  600 * time.Microsecond,
		ComputeTime:  0,
		ThinkTime:    800 * time.Millisecond,
		ForceLatency: 100 * time.Microsecond,
		Scale:        tpcc.DefaultScale(),
		Duration:     5 * time.Second,
		Warmup:       1 * time.Second,
		Seed:         1,
	}
}

// RunResult captures one system's measurements.
type RunResult struct {
	Mode       core.Mode
	Mean       time.Duration
	P95        time.Duration
	Completed  int
	Throughput float64
	ByType     map[string]metrics.Summary
	Engine     core.Stats
	Locks      spi.LockStats
	LockClass  map[string]spi.ClassStats
	Consistent bool
	Violations []error
}

// Run builds a fresh system per the config, applies the load, verifies the
// twelve-component consistency constraint afterwards, and returns the
// measurements.
func Run(cfg Config) (*RunResult, error) {
	db := core.NewDB()
	if err := tpcc.CreateSchema(db); err != nil {
		return nil, err
	}
	if err := tpcc.Load(db, cfg.Scale, cfg.Seed); err != nil {
		return nil, err
	}
	types := tpcc.BuildTypes()
	env := sim.NewEnv(cfg.Servers, cfg.ServiceTime, cfg.ComputeTime)
	var dlog *wal.Log
	if cfg.WALDir != "" {
		var err error
		dlog, err = wal.Open(cfg.WALDir, wal.Options{ForceLatency: cfg.ForceLatency, GroupWindow: cfg.GroupWindow})
		if err != nil {
			return nil, err
		}
		defer dlog.Close()
	}
	eng := core.New(db, types.Tables,
		core.WithMode(cfg.Mode),
		core.WithWaitTimeout(30*time.Second),
		core.WithForceLatency(cfg.ForceLatency),
		core.WithEnv(env),
		core.WithEagerAssertionLocks(cfg.EagerAssertionLocks),
		core.WithTracer(cfg.Tracer),
		core.WithAnatomy(cfg.Anatomy),
		core.WithWAL(dlog),
	)
	if _, err := tpcc.Register(eng, types, cfg.Scale); err != nil {
		return nil, err
	}
	if cfg.OnEngine != nil {
		cfg.OnEngine(eng)
	}
	wcfg := tpcc.DefaultWorkloadConfig(cfg.Scale)
	wcfg.DistrictSkew = cfg.Skew
	wcfg.ReadTier = cfg.ReadTier
	if cfg.ReadHeavy {
		wcfg.Mix = tpcc.ReadHeavyMix()
	}
	if cfg.RollbackPercent > 0 {
		wcfg.RollbackPercent = cfg.RollbackPercent
	}
	w := tpcc.NewWorkload(eng, wcfg)

	res := sim.Run(sim.Config{
		Terminals: cfg.Terminals,
		Duration:  cfg.Duration,
		Warmup:    cfg.Warmup,
		ThinkTime: cfg.ThinkTime,
		Seed:      cfg.Seed,
	}, w)
	defer eng.Close() // stops the version reaper; the log is closed by its opener

	total := res.Recorder.Total()
	violations := tpcc.CheckConsistency(db, cfg.Scale, w.Holes())
	return &RunResult{
		Mode:       cfg.Mode,
		ByType:     res.Recorder.ByType(),
		Mean:       total.Mean,
		P95:        total.P95,
		Completed:  res.Completed,
		Throughput: res.Throughput(),
		Engine:     eng.Snapshot(),
		Locks:      eng.Locks().Stats(),
		LockClass:  eng.Locks().ByClass(),
		Consistent: len(violations) == 0,
		Violations: violations,
	}, nil
}

// Point is one x-position of a figure: both systems measured under the same
// load, expressed as the paper's ratios.
type Point struct {
	Terminals int
	Servers   int
	Baseline  *RunResult
	ACC       *RunResult
}

// RespRatio is the ordinate of Figures 2 and 3: baseline mean response time
// over ACC mean response time (>1 means the ACC is faster).
func (p *Point) RespRatio() float64 {
	if p.ACC.Mean == 0 {
		return 0
	}
	return float64(p.Baseline.Mean) / float64(p.ACC.Mean)
}

// TputRatio is Figure 4's second series: baseline completions over ACC
// completions (<1 means the ACC completed more).
func (p *Point) TputRatio() float64 {
	if p.ACC.Completed == 0 {
		return 0
	}
	return float64(p.Baseline.Completed) / float64(p.ACC.Completed)
}

// Compare measures the baseline and the ACC under identical cfg (Mode is
// overridden per system).
func Compare(cfg Config) (*Point, error) {
	bcfg := cfg
	bcfg.Mode = core.ModeBaseline
	base, err := Run(bcfg)
	if err != nil {
		return nil, err
	}
	acfg := cfg
	acfg.Mode = core.ModeACC
	acc, err := Run(acfg)
	if err != nil {
		return nil, err
	}
	p := &Point{Terminals: cfg.Terminals, Servers: cfg.Servers, Baseline: base, ACC: acc}
	if !base.Consistent {
		return p, fmt.Errorf("experiment: baseline left inconsistent state (stats %+v): %v",
			base.Engine, base.Violations[0])
	}
	if !acc.Consistent {
		return p, fmt.Errorf("experiment: ACC left inconsistent state (stats %+v): %v",
			acc.Engine, acc.Violations[0])
	}
	return p, nil
}

// DefaultTerminals is the sweep of Figures 2-4.
var DefaultTerminals = []int{4, 8, 16, 24, 32, 48, 60}

// Sweep runs Compare at each terminal count.
func Sweep(cfg Config, terminals []int) ([]*Point, error) {
	var out []*Point
	for _, n := range terminals {
		c := cfg
		c.Terminals = n
		p, err := Compare(c)
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
	return out, nil
}

// ServerSweep runs Compare at each server-pool size (the fourth experiment).
func ServerSweep(cfg Config, servers []int) ([]*Point, error) {
	var out []*Point
	for _, s := range servers {
		c := cfg
		c.Servers = s
		p, err := Compare(c)
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
	return out, nil
}
