package storage_test

import (
	"testing"

	"accdb/internal/spi"
	"accdb/internal/spi/spitest"
	"accdb/internal/storage"
)

// The B+-tree backend must pass the SPI conformance suite verbatim.
func TestConformance(t *testing.T) {
	spitest.Run(t, func() spi.Store { return storage.NewStore() })
}
