package storage

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if I64(7).Int64() != 7 {
		t.Error("I64 roundtrip failed")
	}
	if Int(-3).Int64() != -3 {
		t.Error("Int roundtrip failed")
	}
	if F64(2.5).Float64() != 2.5 {
		t.Error("F64 roundtrip failed")
	}
	if Str("abc").Text() != "abc" {
		t.Error("Str roundtrip failed")
	}
}

func TestValueAccessorPanicsOnWrongKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_ = Str("x").Int64()
}

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{I64(1), I64(1), true},
		{I64(1), I64(2), false},
		{I64(1), F64(1), false},
		{F64(1.5), F64(1.5), true},
		{Str("a"), Str("a"), true},
		{Str("a"), Str("b"), false},
		{Str("1"), I64(1), false},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompare(t *testing.T) {
	if I64(1).Compare(I64(2)) != -1 || I64(2).Compare(I64(1)) != 1 || I64(5).Compare(I64(5)) != 0 {
		t.Error("int compare broken")
	}
	if F64(-1).Compare(F64(1)) != -1 {
		t.Error("float compare broken")
	}
	if Str("a").Compare(Str("b")) != -1 {
		t.Error("string compare broken")
	}
}

func TestValueCompareCrossKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	I64(1).Compare(Str("a"))
}

func TestEncodeKeyRoundtrip(t *testing.T) {
	vals := []Value{I64(-5), I64(0), I64(1 << 40), F64(-2.5), F64(3.75), Str(""), Str("hello"), Str("nul\x00inside")}
	k := EncodeKey(vals...)
	got, err := DecodeKey(k)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vals) {
		t.Fatalf("decoded %d values, want %d", len(got), len(vals))
	}
	for i := range vals {
		if !got[i].Equal(vals[i]) {
			t.Errorf("value %d: got %v, want %v", i, got[i], vals[i])
		}
	}
}

func TestDecodeKeyErrors(t *testing.T) {
	bad := []Key{
		Key([]byte{0xEE}),                         // unknown tag
		Key([]byte{byte(KindInt), 1}),             // truncated int
		Key([]byte{byte(KindString), 'a'}),        // unterminated string
		Key([]byte{byte(KindString), 0x00, 0x07}), // bad escape
		Key([]byte{byte(KindFloat), 0, 0, 0}),     // truncated float
	}
	for i, k := range bad {
		if _, err := DecodeKey(k); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// TestEncodeKeyOrderPreserving is the central property: byte order of
// encoded keys equals value order.
func TestEncodeKeyOrderPreserving(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	randVal := func(kind Kind) Value {
		switch kind {
		case KindInt:
			return I64(r.Int63n(2000) - 1000)
		case KindFloat:
			return F64((r.Float64() - 0.5) * 100)
		default:
			n := r.Intn(6)
			b := make([]byte, n)
			for i := range b {
				b[i] = byte(r.Intn(4)) // include NULs
			}
			return Str(string(b))
		}
	}
	for trial := 0; trial < 5000; trial++ {
		kind := Kind(r.Intn(3) + 1)
		a, b := randVal(kind), randVal(kind)
		ka, kb := EncodeKey(a), EncodeKey(b)
		cmp := a.Compare(b)
		switch {
		case cmp < 0 && !(ka < kb):
			t.Fatalf("%v < %v but keys %x >= %x", a, b, ka, kb)
		case cmp > 0 && !(ka > kb):
			t.Fatalf("%v > %v but keys %x <= %x", a, b, ka, kb)
		case cmp == 0 && ka != kb:
			t.Fatalf("%v == %v but keys differ", a, b)
		}
	}
}

func TestEncodeKeyOrderPreservingQuick(t *testing.T) {
	f := func(a, b int64) bool {
		ka, kb := EncodeKey(I64(a)), EncodeKey(I64(b))
		return (a < b) == (ka < kb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ka, kb := EncodeKey(F64(a)), EncodeKey(F64(b))
		return (a < b) == (ka < kb)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
	h := func(a, b string) bool {
		ka, kb := EncodeKey(Str(a)), EncodeKey(Str(b))
		return (a < b) == (ka < kb)
	}
	if err := quick.Check(h, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeKeyCompositeOrdering(t *testing.T) {
	// (1, "b") < (2, "a") and (1, "a") < (1, "b").
	if !(EncodeKey(I64(1), Str("b")) < EncodeKey(I64(2), Str("a"))) {
		t.Error("composite ordering broken across first column")
	}
	if !(EncodeKey(I64(1), Str("a")) < EncodeKey(I64(1), Str("b"))) {
		t.Error("composite ordering broken within second column")
	}
	// A shorter tuple that is a prefix orders before its extensions.
	if !(EncodeKey(I64(1)) < EncodeKey(I64(1), I64(0))) {
		t.Error("prefix tuple should order before extension")
	}
}

func TestMarshalRowRoundtrip(t *testing.T) {
	row := Row{I64(-9), F64(3.5), Str("hello\x00world"), I64(1 << 50), Str("")}
	buf := MarshalRow(nil, row)
	got, n, err := UnmarshalRow(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d of %d bytes", n, len(buf))
	}
	if !got.Equal(row) {
		t.Errorf("got %v, want %v", got, row)
	}
}

func TestMarshalRowQuick(t *testing.T) {
	f := func(i int64, fl float64, s string) bool {
		if math.IsNaN(fl) {
			return true
		}
		row := Row{I64(i), F64(fl), Str(s)}
		got, _, err := UnmarshalRow(MarshalRow(nil, row))
		return err == nil && got.Equal(row)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalRowErrors(t *testing.T) {
	row := Row{I64(1), Str("abc")}
	buf := MarshalRow(nil, row)
	for cut := 1; cut < len(buf); cut++ {
		if _, _, err := UnmarshalRow(buf[:cut]); err == nil {
			// Some prefixes decode as a shorter valid row only if the
			// header still promises the full count; that must not happen.
			t.Errorf("truncation at %d silently accepted", cut)
		}
	}
}

func TestRowCloneIndependence(t *testing.T) {
	r := Row{I64(1), Str("x")}
	c := r.Clone()
	c[0] = I64(2)
	if r[0].Int64() != 1 {
		t.Error("Clone aliases the original")
	}
	if Row(nil).Clone() != nil {
		t.Error("nil Clone should be nil")
	}
	var _ = reflect.DeepEqual // keep reflect import honest if edited
}
