package storage

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intKey(i int) Key { return EncodeKey(I64(int64(i))) }

func TestBTreeBasicSetGetDelete(t *testing.T) {
	bt := NewBTree()
	if _, ok := bt.Get(intKey(1)); ok {
		t.Fatal("empty tree returned a value")
	}
	if !bt.Set(intKey(1), "a") {
		t.Fatal("first Set should report insert")
	}
	if bt.Set(intKey(1), "b") {
		t.Fatal("second Set should report replace")
	}
	if v, ok := bt.Get(intKey(1)); !ok || v != "b" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if !bt.Delete(intKey(1)) {
		t.Fatal("Delete should report present")
	}
	if bt.Delete(intKey(1)) {
		t.Fatal("second Delete should report absent")
	}
	if bt.Len() != 0 {
		t.Fatalf("Len = %d", bt.Len())
	}
}

func TestBTreeAscendOrderAndBounds(t *testing.T) {
	bt := NewBTreeDegree(3) // small degree forces deep trees
	const n = 500
	perm := rand.New(rand.NewSource(2)).Perm(n)
	for _, i := range perm {
		bt.Set(intKey(i), Key(fmt.Sprint(i)))
	}
	if err := bt.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	var got []Key
	bt.Ascend("", "", func(k, _ Key) bool {
		got = append(got, k)
		return true
	})
	if len(got) != n {
		t.Fatalf("full scan returned %d keys", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("scan out of order")
	}
	// Bounded scan [100, 200).
	count := 0
	bt.Ascend(intKey(100), intKey(200), func(k, _ Key) bool {
		count++
		return true
	})
	if count != 100 {
		t.Fatalf("bounded scan returned %d keys, want 100", count)
	}
	// Early stop.
	count = 0
	bt.Ascend("", "", func(Key, Key) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestBTreeAscendPrefix(t *testing.T) {
	bt := NewBTree()
	for d := 1; d <= 3; d++ {
		for o := 1; o <= 50; o++ {
			bt.Set(EncodeKey(I64(int64(d)), I64(int64(o))), "v")
		}
	}
	count := 0
	bt.AscendPrefix(EncodeKey(I64(2)), func(k, _ Key) bool {
		count++
		return true
	})
	if count != 50 {
		t.Fatalf("prefix scan found %d, want 50", count)
	}
}

func TestBTreeDeleteRebalancing(t *testing.T) {
	for _, degree := range []int{2, 3, 4, 16} {
		bt := NewBTreeDegree(degree)
		const n = 800
		r := rand.New(rand.NewSource(int64(degree)))
		perm := r.Perm(n)
		for _, i := range perm {
			bt.Set(intKey(i), "v")
		}
		// Delete a random 2/3 and verify invariants at intervals.
		del := r.Perm(n)[:2*n/3]
		for j, i := range del {
			if !bt.Delete(intKey(i)) {
				t.Fatalf("degree %d: lost key %d", degree, i)
			}
			if j%97 == 0 {
				if err := bt.checkInvariants(); err != nil {
					t.Fatalf("degree %d after %d deletes: %v", degree, j+1, err)
				}
			}
		}
		if err := bt.checkInvariants(); err != nil {
			t.Fatalf("degree %d final: %v", degree, err)
		}
		deleted := make(map[int]bool, len(del))
		for _, i := range del {
			deleted[i] = true
		}
		for i := 0; i < n; i++ {
			_, ok := bt.Get(intKey(i))
			if ok == deleted[i] {
				t.Fatalf("degree %d: key %d presence wrong", degree, i)
			}
		}
	}
}

func TestBTreeDrainToEmpty(t *testing.T) {
	bt := NewBTreeDegree(2)
	for i := 0; i < 200; i++ {
		bt.Set(intKey(i), "v")
	}
	for i := 199; i >= 0; i-- {
		if !bt.Delete(intKey(i)) {
			t.Fatalf("lost key %d", i)
		}
	}
	if bt.Len() != 0 {
		t.Fatalf("Len = %d after drain", bt.Len())
	}
	if err := bt.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// Reuse after drain.
	bt.Set(intKey(1), "v")
	if _, ok := bt.Get(intKey(1)); !ok {
		t.Fatal("tree unusable after drain")
	}
}

// TestBTreeMatchesMapQuick drives random operation sequences against a map
// oracle (property-based).
func TestBTreeMatchesMapQuick(t *testing.T) {
	f := func(ops []int16) bool {
		bt := NewBTreeDegree(3)
		oracle := make(map[Key]Key)
		for _, op := range ops {
			k := intKey(int(op) % 64)
			if op%3 == 0 {
				delete(oracle, k)
				bt.Delete(k)
			} else {
				v := Key(fmt.Sprint(op))
				oracle[k] = v
				bt.Set(k, v)
			}
		}
		if bt.Len() != len(oracle) {
			return false
		}
		if err := bt.checkInvariants(); err != nil {
			return false
		}
		for k, v := range oracle {
			got, ok := bt.Get(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBTreeDegreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for degree 1")
		}
	}()
	NewBTreeDegree(1)
}

func TestPrefixEnd(t *testing.T) {
	if prefixEnd(Key("a")) != Key("b") {
		t.Error("simple increment failed")
	}
	if prefixEnd(Key("a\xff")) != Key("b") {
		t.Error("trailing 0xFF should carry")
	}
	if prefixEnd(Key("\xff\xff")) != Key("") {
		t.Error("all-0xFF prefix should be unbounded")
	}
}
