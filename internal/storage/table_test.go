package storage

import (
	"errors"
	"sync"
	"testing"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	return MustSchema("emp", []Column{
		{Name: "id", Kind: KindInt},
		{Name: "dept", Kind: KindInt},
		{Name: "name", Kind: KindString},
		{Name: "salary", Kind: KindInt},
	}, "id")
}

func TestNewSchemaValidation(t *testing.T) {
	cols := []Column{{Name: "a", Kind: KindInt}}
	if _, err := NewSchema("", cols, "a"); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewSchema("t", cols); err == nil {
		t.Error("missing pk accepted")
	}
	if _, err := NewSchema("t", cols, "nope"); err == nil {
		t.Error("unknown pk column accepted")
	}
	if _, err := NewSchema("t", []Column{{Name: "a", Kind: KindInt}, {Name: "a", Kind: KindInt}}, "a"); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := NewSchema("t", []Column{{Name: "", Kind: KindInt}}, "a"); err == nil {
		t.Error("unnamed column accepted")
	}
}

func TestSchemaHelpers(t *testing.T) {
	s := testSchema(t)
	if s.Col("dept") != 1 || s.Col("missing") != -1 {
		t.Error("Col lookup broken")
	}
	row := Row{I64(7), I64(2), Str("ann"), I64(100)}
	if err := s.CheckRow(row); err != nil {
		t.Error(err)
	}
	if err := s.CheckRow(row[:2]); err == nil {
		t.Error("short row accepted")
	}
	if err := s.CheckRow(Row{Str("x"), I64(2), Str("ann"), I64(100)}); err == nil {
		t.Error("wrong kind accepted")
	}
	if s.KeyOf(row) != EncodeKey(I64(7)) {
		t.Error("KeyOf mismatch")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustCol should panic for missing column")
		}
	}()
	s.MustCol("missing")
}

func TestTableCRUD(t *testing.T) {
	tab := NewTable(testSchema(t))
	row := Row{I64(1), I64(10), Str("ann"), I64(500)}
	if err := tab.Insert(row); err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(row); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate insert: %v", err)
	}
	pk := tab.Schema().KeyOf(row)
	got, err := tab.Get(pk)
	if err != nil || !got.Equal(row) {
		t.Fatalf("Get = %v, %v", got, err)
	}
	// Returned row is a copy.
	got[3] = I64(0)
	again, _ := tab.Get(pk)
	if again[3].Int64() != 500 {
		t.Fatal("Get aliases stored row")
	}
	// Update.
	upd := row.Clone()
	upd[3] = I64(700)
	old, err := tab.Update(pk, upd)
	if err != nil || old[3].Int64() != 500 {
		t.Fatalf("Update old = %v, %v", old, err)
	}
	// Update cannot change the PK.
	bad := upd.Clone()
	bad[0] = I64(99)
	if _, err := tab.Update(pk, bad); err == nil {
		t.Fatal("PK change accepted")
	}
	// Delete.
	old, err = tab.Delete(pk)
	if err != nil || old[3].Int64() != 700 {
		t.Fatalf("Delete old = %v, %v", old, err)
	}
	if _, err := tab.Get(pk); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete: %v", err)
	}
	if _, err := tab.Delete(pk); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	if _, err := tab.Update(pk, upd); !errors.Is(err, ErrNotFound) {
		t.Fatalf("update missing: %v", err)
	}
}

func TestTableSecondaryIndex(t *testing.T) {
	tab := NewTable(testSchema(t))
	if err := tab.AddIndex(IndexDef{Name: "by_dept", Columns: []string{"dept"}}); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddIndex(IndexDef{Name: "bad", Columns: []string{"zzz"}}); err == nil {
		t.Fatal("index on missing column accepted")
	}
	for i := 1; i <= 30; i++ {
		dept := int64(i % 3)
		if err := tab.Insert(Row{I64(int64(i)), I64(dept), Str("e"), I64(int64(i) * 10)}); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	err := tab.IndexScan("by_dept", []Value{I64(1)}, func(pk Key, row Row) bool {
		if row[1].Int64() != 1 {
			t.Errorf("wrong dept row: %v", row)
		}
		count++
		return true
	})
	if err != nil || count != 10 {
		t.Fatalf("IndexScan count = %d, err = %v", count, err)
	}
	// Index maintenance on update: move employee 1 from dept 1 to dept 2.
	pk := EncodeKey(I64(1))
	row, _ := tab.Get(pk)
	row[1] = I64(2)
	if _, err := tab.Update(pk, row); err != nil {
		t.Fatal(err)
	}
	count = 0
	tab.IndexScan("by_dept", []Value{I64(1)}, func(Key, Row) bool { count++; return true })
	if count != 9 {
		t.Fatalf("after move: dept 1 has %d, want 9", count)
	}
	// Index maintenance on delete.
	if _, err := tab.Delete(pk); err != nil {
		t.Fatal(err)
	}
	count = 0
	tab.IndexScan("by_dept", []Value{I64(2)}, func(Key, Row) bool { count++; return true })
	if count != 10 { // 10 originally in dept 2, +1 moved, -1 deleted
		t.Fatalf("dept 2 has %d, want 10", count)
	}
	// Unknown index errors.
	if err := tab.IndexScan("nope", nil, func(Key, Row) bool { return true }); err == nil {
		t.Fatal("unknown index accepted")
	}
}

func TestTableIndexBackfill(t *testing.T) {
	tab := NewTable(testSchema(t))
	for i := 1; i <= 5; i++ {
		tab.Insert(Row{I64(int64(i)), I64(1), Str("e"), I64(0)})
	}
	if err := tab.AddIndex(IndexDef{Name: "by_dept", Columns: []string{"dept"}}); err != nil {
		t.Fatal(err)
	}
	count := 0
	tab.IndexScan("by_dept", []Value{I64(1)}, func(Key, Row) bool { count++; return true })
	if count != 5 {
		t.Fatalf("backfill found %d, want 5", count)
	}
}

func TestTableIndexRange(t *testing.T) {
	tab := NewTable(testSchema(t))
	tab.AddIndex(IndexDef{Name: "by_salary", Columns: []string{"salary"}})
	for i := 1; i <= 10; i++ {
		tab.Insert(Row{I64(int64(i)), I64(0), Str("e"), I64(int64(i) * 100)})
	}
	var salaries []int64
	err := tab.IndexRange("by_salary", []Value{I64(300)}, []Value{I64(700)}, func(_ Key, row Row) bool {
		salaries = append(salaries, row[3].Int64())
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{300, 400, 500, 600}
	if len(salaries) != len(want) {
		t.Fatalf("got %v", salaries)
	}
	for i := range want {
		if salaries[i] != want[i] {
			t.Fatalf("got %v, want %v", salaries, want)
		}
	}
}

func TestTableApply(t *testing.T) {
	tab := NewTable(testSchema(t))
	tab.AddIndex(IndexDef{Name: "by_dept", Columns: []string{"dept"}})
	row := Row{I64(1), I64(5), Str("x"), I64(1)}
	pk := tab.Schema().KeyOf(row)
	tab.Apply(pk, row) // upsert into empty
	if !tab.Exists(pk) {
		t.Fatal("Apply insert failed")
	}
	row2 := row.Clone()
	row2[1] = I64(6)
	tab.Apply(pk, row2) // overwrite moves index entry
	n := 0
	tab.IndexScan("by_dept", []Value{I64(6)}, func(Key, Row) bool { n++; return true })
	if n != 1 {
		t.Fatal("Apply update did not maintain index")
	}
	tab.Apply(pk, nil) // delete
	if tab.Exists(pk) {
		t.Fatal("Apply delete failed")
	}
	tab.Apply(pk, nil) // idempotent delete
}

func TestTableScanStopsEarly(t *testing.T) {
	tab := NewTable(testSchema(t))
	for i := 0; i < 10; i++ {
		tab.Insert(Row{I64(int64(i)), I64(0), Str("e"), I64(0)})
	}
	n := 0
	tab.Scan(func(Key, Row) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("visited %d", n)
	}
	if tab.Len() != 10 {
		t.Fatalf("Len = %d", tab.Len())
	}
}

func TestTableConcurrentAccess(t *testing.T) {
	tab := NewTable(testSchema(t))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := int64(g*1000 + i)
				row := Row{I64(id), I64(int64(g)), Str("c"), I64(0)}
				if err := tab.Insert(row); err != nil {
					t.Error(err)
					return
				}
				if _, err := tab.Get(EncodeKey(I64(id))); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if tab.Len() != 1600 {
		t.Fatalf("Len = %d", tab.Len())
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	s := testSchema(t)
	if _, err := c.Create(s); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create(s); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if c.Table("emp") == nil {
		t.Fatal("lookup failed")
	}
	if c.Table("nope") != nil {
		t.Fatal("phantom table")
	}
	if len(c.Names()) != 1 {
		t.Fatal("Names wrong")
	}
}
