package storage

import "accdb/internal/spi"

// The data model — values, rows, keys, schemas, the row codec, commit
// sequence numbers — moved to the SPI package so the scheduler and every
// backend share one definition. These aliases keep the storage package a
// self-contained vocabulary for code that works with the default backend
// directly (its own tests, mostly); new code should import accdb/internal/spi.

// Kind enumerates the column types supported by the engine.
type Kind = spi.Kind

// Column kinds, re-exported from the SPI.
const (
	KindInt    = spi.KindInt
	KindFloat  = spi.KindFloat
	KindString = spi.KindString
)

// Value is a single column value (see spi.Value).
type Value = spi.Value

// Row is a tuple: one Value per schema column, in schema order.
type Row = spi.Row

// Key is the order-preserving binary encoding of a composite key.
type Key = spi.Key

// Column describes one attribute of a relation.
type Column = spi.Column

// Schema describes a relation (see spi.Schema).
type Schema = spi.Schema

// IndexDef declares a secondary index over a list of columns.
type IndexDef = spi.IndexDef

// CSN is a commit sequence number (see spi.CSN).
type CSN = spi.CSN

// MaxCSN is the read-ASAP bound.
const MaxCSN = spi.MaxCSN

// VersionStats summarizes a table's version-chain footprint.
type VersionStats = spi.VersionStats

// Value constructors and key codecs, re-exported from the SPI.
var (
	// I64 constructs an integer value.
	I64 = spi.I64
	// Int constructs an integer value from an int.
	Int = spi.Int
	// F64 constructs a float value.
	F64 = spi.F64
	// Str constructs a string value.
	Str = spi.Str
	// EncodeKey builds an order-preserving key from the given values.
	EncodeKey = spi.EncodeKey
	// DecodeKey reverses EncodeKey.
	DecodeKey = spi.DecodeKey
	// NewSchema builds a schema, validating columns and primary key.
	NewSchema = spi.NewSchema
	// MustSchema is NewSchema that panics on error.
	MustSchema = spi.MustSchema
	// MarshalRow appends a compact binary encoding of row to dst.
	MarshalRow = spi.MarshalRow
	// UnmarshalRow decodes one row from b.
	UnmarshalRow = spi.UnmarshalRow
)

// Sentinel errors returned by table operations; identities are shared with
// the SPI so errors.Is works across the seam.
var (
	// ErrNotFound reports a lookup for an absent primary key.
	ErrNotFound = spi.ErrNotFound
	// ErrDuplicate reports an insert whose primary key already exists.
	ErrDuplicate = spi.ErrDuplicate
)
