package storage

// BTree is an in-memory B+-tree mapping order-preserving encoded keys (Key)
// to encoded primary keys. It backs secondary indexes: index entries encode
// (secondary columns..., primary key columns...) so that duplicate secondary
// values remain unique tree keys, and a range scan over a secondary prefix
// yields primary keys in secondary order.
//
// The tree is not internally synchronized; Table wraps it in the table latch.
type BTree struct {
	root   node
	degree int
	size   int
}

const defaultDegree = 32 // max keys per node = 2*degree - 1

type node interface {
	// keys returns the node's key slice (for invariant checks).
	nkeys() []Key
}

type leaf struct {
	keys []Key
	vals []Key
	next *leaf
	prev *leaf
}

type inner struct {
	keys     []Key  // separator keys; len(children) == len(keys)+1
	children []node // children[i] holds keys < keys[i]; children[len] holds >= last
}

func (l *leaf) nkeys() []Key  { return l.keys }
func (n *inner) nkeys() []Key { return n.keys }

// NewBTree creates an empty tree with the default fan-out.
func NewBTree() *BTree { return NewBTreeDegree(defaultDegree) }

// NewBTreeDegree creates an empty tree with max 2*degree-1 keys per node.
// degree must be at least 2.
func NewBTreeDegree(degree int) *BTree {
	if degree < 2 {
		panic("storage: BTree degree must be >= 2")
	}
	return &BTree{root: &leaf{}, degree: degree}
}

// Len returns the number of entries in the tree.
func (t *BTree) Len() int { return t.size }

func (t *BTree) maxKeys() int { return 2*t.degree - 1 }
func (t *BTree) minKeys() int { return t.degree - 1 }

// Get returns the value stored under key, if present.
func (t *BTree) Get(key Key) (Key, bool) {
	n := t.root
	for {
		switch x := n.(type) {
		case *inner:
			n = x.children[childIndex(x.keys, key)]
		case *leaf:
			i, ok := searchKeys(x.keys, key)
			if !ok {
				return "", false
			}
			return x.vals[i], true
		}
	}
}

// searchKeys binary-searches keys for key; returns (insertion index, found).
func searchKeys(keys []Key, key Key) (int, bool) {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(keys) && keys[lo] == key
}

// childIndex returns which child of an inner node covers key.
func childIndex(keys []Key, key Key) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Set inserts or replaces the value under key. It reports whether the key
// was newly inserted (true) or replaced (false).
func (t *BTree) Set(key Key, val Key) bool {
	newChild, sepKey, inserted := t.insert(t.root, key, val)
	if newChild != nil {
		t.root = &inner{keys: []Key{sepKey}, children: []node{t.root, newChild}}
	}
	if inserted {
		t.size++
	}
	return inserted
}

// insert descends, splitting full children on the way back up. Returns a
// new right sibling and separator if the node split.
func (t *BTree) insert(n node, key Key, val Key) (node, Key, bool) {
	switch x := n.(type) {
	case *leaf:
		i, found := searchKeys(x.keys, key)
		if found {
			x.vals[i] = val
			return nil, "", false
		}
		x.keys = append(x.keys, "")
		copy(x.keys[i+1:], x.keys[i:])
		x.keys[i] = key
		x.vals = append(x.vals, "")
		copy(x.vals[i+1:], x.vals[i:])
		x.vals[i] = val
		if len(x.keys) > t.maxKeys() {
			right := t.splitLeaf(x)
			return right, right.keys[0], true
		}
		return nil, "", true
	case *inner:
		ci := childIndex(x.keys, key)
		newChild, sep, inserted := t.insert(x.children[ci], key, val)
		if newChild != nil {
			x.keys = append(x.keys, "")
			copy(x.keys[ci+1:], x.keys[ci:])
			x.keys[ci] = sep
			x.children = append(x.children, nil)
			copy(x.children[ci+2:], x.children[ci+1:])
			x.children[ci+1] = newChild
			if len(x.keys) > t.maxKeys() {
				right, rsep := t.splitInner(x)
				return right, rsep, inserted
			}
		}
		return nil, "", inserted
	}
	panic("storage: unknown node type")
}

func (t *BTree) splitLeaf(l *leaf) *leaf {
	mid := len(l.keys) / 2
	right := &leaf{
		keys: append([]Key(nil), l.keys[mid:]...),
		vals: append([]Key(nil), l.vals[mid:]...),
		next: l.next,
		prev: l,
	}
	if l.next != nil {
		l.next.prev = right
	}
	l.keys = l.keys[:mid:mid]
	l.vals = l.vals[:mid:mid]
	l.next = right
	return right
}

func (t *BTree) splitInner(n *inner) (*inner, Key) {
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	right := &inner{
		keys:     append([]Key(nil), n.keys[mid+1:]...),
		children: append([]node(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return right, sep
}

// Delete removes key from the tree, reporting whether it was present.
func (t *BTree) Delete(key Key) bool {
	deleted := t.remove(t.root, key)
	if deleted {
		t.size--
	}
	// Collapse a root inner node with a single child.
	if r, ok := t.root.(*inner); ok && len(r.children) == 1 {
		t.root = r.children[0]
	}
	return deleted
}

// remove deletes key beneath n, rebalancing children that underflow.
func (t *BTree) remove(n node, key Key) bool {
	switch x := n.(type) {
	case *leaf:
		i, found := searchKeys(x.keys, key)
		if !found {
			return false
		}
		x.keys = append(x.keys[:i], x.keys[i+1:]...)
		x.vals = append(x.vals[:i], x.vals[i+1:]...)
		return true
	case *inner:
		ci := childIndex(x.keys, key)
		deleted := t.remove(x.children[ci], key)
		if deleted {
			t.rebalance(x, ci)
		}
		return deleted
	}
	panic("storage: unknown node type")
}

// rebalance fixes up x.children[ci] if it underflowed, borrowing from or
// merging with a sibling.
func (t *BTree) rebalance(x *inner, ci int) {
	child := x.children[ci]
	if len(child.nkeys()) >= t.minKeys() {
		return
	}
	// Prefer borrowing from the left sibling, then right; else merge.
	if ci > 0 && len(x.children[ci-1].nkeys()) > t.minKeys() {
		t.borrowLeft(x, ci)
		return
	}
	if ci < len(x.children)-1 && len(x.children[ci+1].nkeys()) > t.minKeys() {
		t.borrowRight(x, ci)
		return
	}
	if ci > 0 {
		t.merge(x, ci-1)
	} else {
		t.merge(x, ci)
	}
}

func (t *BTree) borrowLeft(x *inner, ci int) {
	switch child := x.children[ci].(type) {
	case *leaf:
		left := x.children[ci-1].(*leaf)
		n := len(left.keys) - 1
		child.keys = append([]Key{left.keys[n]}, child.keys...)
		child.vals = append([]Key{left.vals[n]}, child.vals...)
		left.keys = left.keys[:n]
		left.vals = left.vals[:n]
		x.keys[ci-1] = child.keys[0]
	case *inner:
		left := x.children[ci-1].(*inner)
		n := len(left.keys) - 1
		child.keys = append([]Key{x.keys[ci-1]}, child.keys...)
		child.children = append([]node{left.children[n+1]}, child.children...)
		x.keys[ci-1] = left.keys[n]
		left.keys = left.keys[:n]
		left.children = left.children[:n+1]
	}
}

func (t *BTree) borrowRight(x *inner, ci int) {
	switch child := x.children[ci].(type) {
	case *leaf:
		right := x.children[ci+1].(*leaf)
		child.keys = append(child.keys, right.keys[0])
		child.vals = append(child.vals, right.vals[0])
		right.keys = right.keys[1:]
		right.vals = right.vals[1:]
		x.keys[ci] = right.keys[0]
	case *inner:
		right := x.children[ci+1].(*inner)
		child.keys = append(child.keys, x.keys[ci])
		child.children = append(child.children, right.children[0])
		x.keys[ci] = right.keys[0]
		right.keys = right.keys[1:]
		right.children = right.children[1:]
	}
}

// merge joins x.children[i] and x.children[i+1] into one node.
func (t *BTree) merge(x *inner, i int) {
	switch left := x.children[i].(type) {
	case *leaf:
		right := x.children[i+1].(*leaf)
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
		left.next = right.next
		if right.next != nil {
			right.next.prev = left
		}
	case *inner:
		right := x.children[i+1].(*inner)
		left.keys = append(left.keys, x.keys[i])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	x.keys = append(x.keys[:i], x.keys[i+1:]...)
	x.children = append(x.children[:i+1], x.children[i+2:]...)
}

// Ascend visits entries with lo <= key < hi in key order; an empty hi means
// unbounded. The visitor returns false to stop early. Ascend reports whether
// the scan ran to completion.
func (t *BTree) Ascend(lo, hi Key, visit func(key, val Key) bool) bool {
	n := t.root
	for {
		x, ok := n.(*inner)
		if !ok {
			break
		}
		n = x.children[childIndex(x.keys, lo)]
	}
	l := n.(*leaf)
	i, _ := searchKeys(l.keys, lo)
	for l != nil {
		for ; i < len(l.keys); i++ {
			if hi != "" && l.keys[i] >= hi {
				return true
			}
			if !visit(l.keys[i], l.vals[i]) {
				return false
			}
		}
		l = l.next
		i = 0
	}
	return true
}

// AscendPrefix visits all entries whose key begins with prefix.
func (t *BTree) AscendPrefix(prefix Key, visit func(key, val Key) bool) bool {
	return t.Ascend(prefix, prefixEnd(prefix), visit)
}

// prefixEnd computes the smallest key greater than every key with the given
// prefix, by incrementing the last non-0xFF byte.
func prefixEnd(prefix Key) Key {
	b := []byte(prefix)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] < 0xFF {
			b[i]++
			return Key(b[:i+1])
		}
	}
	return "" // prefix is all 0xFF: unbounded
}

// checkInvariants validates B+-tree structural invariants; used by tests.
func (t *BTree) checkInvariants() error {
	count, _, err := t.check(t.root, true, "", "")
	if err != nil {
		return err
	}
	if count != t.size {
		return errf("size mismatch: counted %d, size %d", count, t.size)
	}
	return nil
}

func (t *BTree) check(n node, isRoot bool, lo, hi Key) (int, int, error) {
	switch x := n.(type) {
	case *leaf:
		if !isRoot && len(x.keys) < t.minKeys() {
			return 0, 0, errf("leaf underflow: %d keys", len(x.keys))
		}
		if len(x.keys) != len(x.vals) {
			return 0, 0, errf("leaf keys/vals mismatch")
		}
		for i, k := range x.keys {
			if i > 0 && x.keys[i-1] >= k {
				return 0, 0, errf("leaf keys out of order")
			}
			if k < lo || (hi != "" && k >= hi) {
				return 0, 0, errf("leaf key out of range")
			}
		}
		return len(x.keys), 0, nil
	case *inner:
		if !isRoot && len(x.keys) < t.minKeys() {
			return 0, 0, errf("inner underflow: %d keys", len(x.keys))
		}
		if len(x.children) != len(x.keys)+1 {
			return 0, 0, errf("inner fan-out mismatch")
		}
		total, depth := 0, -1
		for i, c := range x.children {
			clo, chi := lo, hi
			if i > 0 {
				clo = x.keys[i-1]
			}
			if i < len(x.keys) {
				chi = x.keys[i]
			}
			cnt, d, err := t.check(c, false, clo, chi)
			if err != nil {
				return 0, 0, err
			}
			if depth == -1 {
				depth = d
			} else if d != depth {
				return 0, 0, errf("uneven leaf depth")
			}
			total += cnt
		}
		return total, depth + 1, nil
	}
	return 0, 0, errf("unknown node type")
}

type treeError string

func (e treeError) Error() string { return string(e) }

func errf(format string, args ...any) error {
	return treeError(sprintf(format, args...))
}
