package storage

import (
	"errors"
	"testing"
)

func empRow(id, salary int64) Row {
	return Row{I64(id), I64(10), Str("ann"), I64(salary)}
}

// TestVersionSeedOnMutate: the first mutation of a loaded key seeds its chain
// with the pre-image at CSN 0, so a snapshot opened before the mutation still
// resolves the old value even though the base row has moved on.
func TestVersionSeedOnMutate(t *testing.T) {
	tab := NewTable(testSchema(t))
	if err := tab.Insert(empRow(1, 500)); err != nil {
		t.Fatal(err)
	}
	tab.ResetVersions() // simulate engine attach: bulk load is quiescent
	pk := tab.Schema().KeyOf(empRow(1, 500))

	if _, err := tab.Update(pk, empRow(1, 700)); err != nil {
		t.Fatal(err)
	}
	if got := tab.ChainLen(pk); got != 1 {
		t.Fatalf("chain after first update = %d versions, want 1 (the seed)", got)
	}
	// The base row already shows 700, but as-of any CSN the seed says 500:
	// the write is not yet published.
	row, err := tab.GetAsOf(pk, MaxCSN)
	if err != nil || row[3].Int64() != 500 {
		t.Fatalf("GetAsOf before publish = %v, %v; want pre-image 500", row, err)
	}

	tab.PublishVersion(pk, empRow(1, 500), empRow(1, 700), 1)
	for _, tc := range []struct {
		asOf CSN
		want int64
	}{{0, 500}, {1, 700}, {MaxCSN, 700}} {
		row, err := tab.GetAsOf(pk, tc.asOf)
		if err != nil || row[3].Int64() != tc.want {
			t.Fatalf("GetAsOf(%d) = %v, %v; want salary %d", tc.asOf, row, err, tc.want)
		}
	}
}

// TestVersionInsertAndTombstone: a key inserted after load seeds a nil
// pre-image (absent at CSN 0); deleting publishes a tombstone that makes it
// absent again for later snapshots while older ones still see it.
func TestVersionInsertAndTombstone(t *testing.T) {
	tab := NewTable(testSchema(t))
	row := empRow(2, 100)
	pk := tab.Schema().KeyOf(row)
	if err := tab.Insert(row); err != nil {
		t.Fatal(err)
	}
	tab.PublishVersion(pk, nil, row, 1)
	if _, err := tab.GetAsOf(pk, 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("key visible before its insert published: %v", err)
	}
	if r, err := tab.GetAsOf(pk, 1); err != nil || r[3].Int64() != 100 {
		t.Fatalf("GetAsOf(1) = %v, %v", r, err)
	}
	if _, err := tab.Delete(pk); err != nil {
		t.Fatal(err)
	}
	tab.PublishVersion(pk, row, nil, 2)
	if r, err := tab.GetAsOf(pk, 1); err != nil || r[3].Int64() != 100 {
		t.Fatalf("snapshot at 1 lost the row after delete published: %v, %v", r, err)
	}
	if _, err := tab.GetAsOf(pk, 2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("tombstone at 2 not honoured: %v", err)
	}
}

// TestVersionScanAsOf: ScanAsOf unions chained and unchained keys at the
// requested CSN — deleted-later rows appear, inserted-later rows don't.
func TestVersionScanAsOf(t *testing.T) {
	tab := NewTable(testSchema(t))
	stable, doomed := empRow(1, 10), empRow(2, 20)
	for _, r := range []Row{stable, doomed} {
		if err := tab.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	tab.ResetVersions()
	dpk := tab.Schema().KeyOf(doomed)
	if _, err := tab.Delete(dpk); err != nil {
		t.Fatal(err)
	}
	tab.PublishVersion(dpk, doomed, nil, 5)
	late := empRow(3, 30)
	if err := tab.Insert(late); err != nil {
		t.Fatal(err)
	}
	tab.PublishVersion(tab.Schema().KeyOf(late), nil, late, 6)

	seen := map[int64]int64{}
	tab.ScanAsOf(4, func(_ Key, row Row) bool {
		seen[row[0].Int64()] = row[3].Int64()
		return true
	})
	if len(seen) != 2 || seen[1] != 10 || seen[2] != 20 {
		t.Fatalf("ScanAsOf(4) = %v; want ids 1,2 (2 deleted later, 3 inserted later)", seen)
	}
}

// TestPruneVersions: truncation keeps the newest version ≤ floor; a quiescent
// chain (single surviving version value-equal to the base) drops entirely; a
// chain whose seed differs from the base — an unpublished write in flight —
// must NOT drop.
func TestPruneVersions(t *testing.T) {
	tab := NewTable(testSchema(t))
	if err := tab.Insert(empRow(1, 100)); err != nil {
		t.Fatal(err)
	}
	tab.ResetVersions()
	pk := tab.Schema().KeyOf(empRow(1, 100))
	for i, sal := range []int64{200, 300, 400} {
		if _, err := tab.Update(pk, empRow(1, sal)); err != nil {
			t.Fatal(err)
		}
		tab.PublishVersion(pk, empRow(1, 100), empRow(1, sal), CSN(i+1))
	}
	// Chain: seed(0)=100, 1=200, 2=300, 3=400.
	pruned, dropped := tab.PruneVersions(2)
	if pruned != 2 || dropped != 0 {
		t.Fatalf("PruneVersions(2) = %d pruned, %d dropped; want 2, 0", pruned, dropped)
	}
	if r, err := tab.GetAsOf(pk, 2); err != nil || r[3].Int64() != 300 {
		t.Fatalf("as-of 2 after prune = %v, %v; want 300", r, err)
	}
	// Floor past the whole chain: one version (400) survives truncation and
	// equals the base row, so the chain drops.
	pruned, dropped = tab.PruneVersions(10)
	if dropped != 1 {
		t.Fatalf("quiescent chain not dropped: pruned=%d dropped=%d", pruned, dropped)
	}
	if got := tab.ChainLen(pk); got != 0 {
		t.Fatalf("chain survives drop: %d versions", got)
	}
	// Reads fall back to the base row.
	if r, err := tab.GetAsOf(pk, 1); err != nil || r[3].Int64() != 400 {
		t.Fatalf("base fallback after drop = %v, %v", r, err)
	}

	// Unpublished write in flight: mutation seeded the chain but nothing is
	// published. The seed (400) differs from the new base (999), so the drop
	// condition must fail closed and keep the pre-image readable.
	if _, err := tab.Update(pk, empRow(1, 999)); err != nil {
		t.Fatal(err)
	}
	if _, dropped = tab.PruneVersions(10); dropped != 0 {
		t.Fatal("dropped a chain guarding an unpublished base-row overwrite")
	}
	if r, err := tab.GetAsOf(pk, MaxCSN); err != nil || r[3].Int64() != 400 {
		t.Fatalf("pre-image lost under in-flight write: %v, %v", r, err)
	}
}

// TestPublishReseedsAfterDrop: if GC dropped a chain between a mutation and
// its publication, PublishVersion's prior re-seeds CSN 0 so older snapshots
// still find the pre-image.
func TestPublishReseedsAfterDrop(t *testing.T) {
	tab := NewTable(testSchema(t))
	if err := tab.Insert(empRow(1, 100)); err != nil {
		t.Fatal(err)
	}
	tab.ResetVersions()
	pk := tab.Schema().KeyOf(empRow(1, 100))
	// Publish with no chain present (as if dropped): prior must seed first.
	tab.PublishVersion(pk, empRow(1, 100), empRow(1, 200), 7)
	if r, err := tab.GetAsOf(pk, 3); err != nil || r[3].Int64() != 100 {
		t.Fatalf("re-seeded pre-image missing: %v, %v", r, err)
	}
	if r, err := tab.GetAsOf(pk, 7); err != nil || r[3].Int64() != 200 {
		t.Fatalf("published version missing: %v, %v", r, err)
	}
}

func TestVersionStatsAndReset(t *testing.T) {
	tab := NewTable(testSchema(t))
	for id := int64(1); id <= 3; id++ {
		if err := tab.Insert(empRow(id, id*10)); err != nil {
			t.Fatal(err)
		}
		tab.PublishVersion(tab.Schema().KeyOf(empRow(id, 0)), nil, empRow(id, id*10), CSN(id))
	}
	s := tab.VersionStats()
	if s.Chains != 3 || s.Versions != 6 { // seed + published per key
		t.Fatalf("VersionStats = %+v; want 3 chains, 6 versions", s)
	}
	tab.ResetVersions()
	if s := tab.VersionStats(); s.Chains != 0 || s.Versions != 0 {
		t.Fatalf("stats after reset = %+v", s)
	}
}
