package storage

import (
	"fmt"
)

// version is one entry of a key's chain. A nil row is a tombstone: the key
// was absent as of the stamped CSN (the CSN semantics — total order, CSN 0
// reserved for pre-images — are documented on spi.CSN).
type version struct {
	csn CSN
	row Row
}

// seedVersionLocked starts pk's chain with its pre-image at CSN 0 if no chain
// exists yet. Callers hold t.mu exclusively and pass the key's current
// committed value (nil when absent) BEFORE applying their mutation, so a
// versioned reader never has to consult a base row that a still-uncommitted
// step may have overwritten: once a key is written, every as-of read resolves
// through the chain.
func (t *Table) seedVersionLocked(pk Key, prior Row) {
	if _, ok := t.versions[pk]; ok {
		return
	}
	if t.versions == nil {
		t.versions = make(map[Key][]version)
	}
	if prior != nil {
		prior = prior.Clone()
	}
	t.versions[pk] = []version{{csn: 0, row: prior}}
}

// PublishVersion appends a committed (or exposed, at a step boundary) row
// image to pk's chain under the stamp csn. A nil row publishes a tombstone.
// prior is the key's value before the publishing transaction touched it: if
// garbage collection dropped the chain since the mutation seeded it, prior
// re-seeds the chain at CSN 0 first, so snapshots older than csn still find
// the key's pre-image instead of a hole. The engine serializes publications
// under its CSN clock mutex, so stamps arrive in non-decreasing order.
func (t *Table) PublishVersion(pk Key, prior, row Row, csn CSN) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seedVersionLocked(pk, prior)
	if row != nil {
		row = row.Clone()
	}
	t.versions[pk] = append(t.versions[pk], version{csn: csn, row: row})
}

// GetAsOf returns a copy of pk's value as of asOf: the newest chain version
// stamped ≤ asOf, or — for a key never mutated since load or since its chain
// was collected — the base row, which is then guaranteed committed and
// quiescent. A tombstone (or an absent key) returns ErrNotFound.
func (t *Table) GetAsOf(pk Key, asOf CSN) (Row, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	row, ok := t.rowAsOfLocked(pk, asOf)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, t.schema.Name)
	}
	return row, nil
}

// rowAsOfLocked resolves pk as of asOf under the latch, returning a clone and
// whether the key exists at that CSN.
func (t *Table) rowAsOfLocked(pk Key, asOf CSN) (Row, bool) {
	if chain, ok := t.versions[pk]; ok {
		for i := len(chain) - 1; i >= 0; i-- {
			if chain[i].csn <= asOf {
				if chain[i].row == nil {
					return nil, false
				}
				return chain[i].row.Clone(), true
			}
		}
		return nil, false
	}
	row, ok := t.rows[pk]
	if !ok {
		return nil, false
	}
	return row.Clone(), true
}

// ScanAsOf visits every key that exists as of asOf, in unspecified order,
// with its as-of value. Keys visible only through tombstoned chains are
// skipped; keys whose chain says "existed at asOf" are visited even if the
// base row has since been deleted.
func (t *Table) ScanAsOf(asOf CSN, visit func(pk Key, row Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for pk := range t.rows {
		if _, chained := t.versions[pk]; chained {
			continue // resolved through the chain loop below
		}
		row, ok := t.rowAsOfLocked(pk, asOf)
		if ok && !visit(pk, row) {
			return
		}
	}
	for pk := range t.versions {
		row, ok := t.rowAsOfLocked(pk, asOf)
		if ok && !visit(pk, row) {
			return
		}
	}
}

// IndexScanAsOf visits rows whose indexed columns equal eq, in index order,
// resolving each row's contents as of asOf. Index MEMBERSHIP is read-ASAP —
// the probe walks the current B+-tree, so a row inserted after asOf whose
// chain proves it absent is skipped, but a row deleted after asOf is found
// only if its index entry still exists. CONSISTENCY.md documents this
// asymmetry; TPC-C's read-only probes are over stable or append-only
// populations where it is invisible.
func (t *Table) IndexScanAsOf(indexName string, eq []Value, asOf CSN, visit func(pk Key, row Row) bool) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ix := t.index(indexName)
	if ix == nil {
		return fmt.Errorf("storage: %s has no index %q", t.schema.Name, indexName)
	}
	prefix := EncodeKey(eq...)
	ix.tree.AscendPrefix(prefix, func(_, pk Key) bool {
		row, ok := t.rowAsOfLocked(pk, asOf)
		if !ok {
			return true
		}
		return visit(pk, row)
	})
	return nil
}

// PruneVersions garbage-collects chains against floor, the oldest CSN any
// live snapshot may read at. Each chain is truncated to its newest version
// stamped ≤ floor (that version still serves the oldest snapshot; everything
// older is unreachable). A chain whose single surviving version is both ≤
// floor and value-identical to the current base row is dropped entirely —
// the key is quiescent, and the next mutation will re-seed it. The
// value-equality condition is what makes dropping safe: it proves no
// uncommitted base-row overwrite is in flight, because any mutation would
// have re-seeded a chain first. It returns the number of versions pruned and
// chains dropped.
func (t *Table) PruneVersions(floor CSN) (pruned, dropped int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for pk, chain := range t.versions {
		keep := 0 // index of the newest version stamped ≤ floor
		for i := len(chain) - 1; i >= 0; i-- {
			if chain[i].csn <= floor {
				keep = i
				break
			}
		}
		if keep > 0 {
			pruned += keep
			chain = chain[keep:]
			t.versions[pk] = chain
		}
		if len(chain) == 1 && chain[0].csn <= floor {
			base, exists := t.rows[pk]
			v := chain[0].row
			if (v == nil && !exists) || (v != nil && exists && v.Equal(base)) {
				delete(t.versions, pk)
				pruned++
				dropped++
			}
		}
	}
	return pruned, dropped
}

// ResetVersions drops every chain. Valid only at moments when all base rows
// are committed and quiescent — engine attach after bulk load, end of
// recovery — where the as-of base-row fallback is exact.
func (t *Table) ResetVersions() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.versions = nil
}

// VersionStats reports the table's current version-chain footprint.
func (t *Table) VersionStats() VersionStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s := VersionStats{Chains: len(t.versions)}
	for _, chain := range t.versions {
		s.Versions += len(chain)
	}
	return s
}

// ChainLen reports the number of versions chained under pk (tests).
func (t *Table) ChainLen(pk Key) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.versions[pk])
}
