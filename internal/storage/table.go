// Package storage implements the default row-store backend of the SPI
// (accdb/internal/spi): heap tables with hash primary indexes, B+-tree
// secondary indexes, and per-key version chains for the lock-free read
// tiers. It registers itself under the backend name "btree".
//
// The package plays the role that CA-Open Ingres's storage layer played in
// the paper: it stores tuples and hands out stable item identities that the
// lock service and the schedulers lock. The storage layer itself provides
// only physical consistency (latches); all logical concurrency control
// happens above it, through the SPI.
package storage

import (
	"fmt"
	"strings"
	"sync"

	"accdb/internal/spi"
)

func sprintf(format string, args ...any) string { return fmt.Sprintf(format, args...) }

// Table is a heap relation with a hash primary index and optional B+-tree
// secondary indexes. It implements spi.Table.
//
// A Table provides physical consistency only: the embedded RWMutex is a
// latch held for the duration of a single operation. Logical isolation
// (two-phase and assertional locking) is layered above by package core, the
// way Ingres layers its lock manager above the page store.
type Table struct {
	schema *Schema

	mu      sync.RWMutex
	rows    map[Key]Row
	indexes []*secondaryIndex
	// versions holds per-key version chains for the lock-free read tiers
	// (version.go): ascending CSN order, seeded with the key's pre-image on
	// first mutation so as-of reads never consult an uncommitted base row.
	versions map[Key][]version
}

type secondaryIndex struct {
	def  IndexDef
	cols []int
	tree *BTree
}

// NewTable creates an empty table for the schema.
func NewTable(schema *Schema) *Table {
	return &Table{schema: schema, rows: make(map[Key]Row)}
}

// Schema describes the relation; immutable after construction.
func (t *Table) Schema() *Schema { return t.schema }

// AddIndex creates a secondary index and backfills it from existing rows.
func (t *Table) AddIndex(def IndexDef) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	cols := make([]int, len(def.Columns))
	for i, name := range def.Columns {
		c := t.schema.Col(name)
		if c < 0 {
			return fmt.Errorf("storage: index %s: no column %q in %s", def.Name, name, t.schema.Name)
		}
		cols[i] = c
	}
	idx := &secondaryIndex{def: def, cols: cols, tree: NewBTree()}
	for pk, row := range t.rows {
		idx.tree.Set(idx.entryKey(row, pk), pk)
	}
	t.indexes = append(t.indexes, idx)
	return nil
}

// entryKey builds the index entry key: secondary values then the primary
// key, encoded in one pass so index maintenance costs one allocation.
func (ix *secondaryIndex) entryKey(row Row, pk Key) Key {
	var b strings.Builder
	n := len(pk)
	for _, c := range ix.cols {
		n += spi.KeyLen(row[c])
	}
	b.Grow(n)
	for _, c := range ix.cols {
		spi.AppendKeyVal(&b, row[c])
	}
	b.WriteString(string(pk))
	return Key(b.String())
}

// Len returns the number of rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Get returns a copy of the row with the given primary key.
func (t *Table) Get(pk Key) (Row, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	row, ok := t.rows[pk]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, t.schema.Name)
	}
	return row.Clone(), nil
}

// Exists reports whether a primary key is present.
func (t *Table) Exists(pk Key) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.rows[pk]
	return ok
}

// Insert adds a new row; the primary key must not exist.
func (t *Table) Insert(row Row) error {
	if err := t.schema.CheckRow(row); err != nil {
		return err
	}
	pk := t.schema.KeyOf(row)
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.rows[pk]; ok {
		return fmt.Errorf("%w: %s %v", ErrDuplicate, t.schema.Name, t.schema.PKOf(row))
	}
	t.seedVersionLocked(pk, nil)
	row = row.Clone()
	t.rows[pk] = row
	for _, ix := range t.indexes {
		ix.tree.Set(ix.entryKey(row, pk), pk)
	}
	return nil
}

// Update replaces the row stored under pk. The new row must have the same
// primary key. It returns the previous image for undo logging.
func (t *Table) Update(pk Key, row Row) (Row, error) {
	if err := t.schema.CheckRow(row); err != nil {
		return nil, err
	}
	if t.schema.KeyOf(row) != pk {
		return nil, fmt.Errorf("storage: update changes primary key of %s", t.schema.Name)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old, ok := t.rows[pk]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, t.schema.Name)
	}
	t.seedVersionLocked(pk, old)
	row = row.Clone()
	t.rows[pk] = row
	for _, ix := range t.indexes {
		oldEntry, newEntry := ix.entryKey(old, pk), ix.entryKey(row, pk)
		if oldEntry != newEntry {
			ix.tree.Delete(oldEntry)
			ix.tree.Set(newEntry, pk)
		}
	}
	return old, nil
}

// Delete removes the row under pk, returning the removed image for undo.
func (t *Table) Delete(pk Key) (Row, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	old, ok := t.rows[pk]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, t.schema.Name)
	}
	t.seedVersionLocked(pk, old)
	delete(t.rows, pk)
	for _, ix := range t.indexes {
		ix.tree.Delete(ix.entryKey(old, pk))
	}
	return old, nil
}

// Apply installs a row image directly (used by WAL recovery): a nil row
// deletes pk, otherwise the row is upserted. No index entry is required to
// pre-exist.
func (t *Table) Apply(pk Key, row Row) {
	t.mu.Lock()
	defer t.mu.Unlock()
	old, had := t.rows[pk]
	if row == nil {
		if !had {
			return
		}
		t.seedVersionLocked(pk, old)
		delete(t.rows, pk)
		for _, ix := range t.indexes {
			ix.tree.Delete(ix.entryKey(old, pk))
		}
		return
	}
	if had {
		t.seedVersionLocked(pk, old)
	} else {
		t.seedVersionLocked(pk, nil)
	}
	row = row.Clone()
	t.rows[pk] = row
	for _, ix := range t.indexes {
		if had {
			ix.tree.Delete(ix.entryKey(old, pk))
		}
		ix.tree.Set(ix.entryKey(row, pk), pk)
	}
}

// Scan visits every row (copy) in unspecified order; the visitor returns
// false to stop. The latch is held in read mode for the whole scan.
func (t *Table) Scan(visit func(pk Key, row Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for pk, row := range t.rows {
		if !visit(pk, row.Clone()) {
			return
		}
	}
}

// IndexScan visits rows whose indexed columns equal eq, in index order.
func (t *Table) IndexScan(indexName string, eq []Value, visit func(pk Key, row Row) bool) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ix := t.index(indexName)
	if ix == nil {
		return fmt.Errorf("storage: %s has no index %q", t.schema.Name, indexName)
	}
	prefix := EncodeKey(eq...)
	ix.tree.AscendPrefix(prefix, func(_, pk Key) bool {
		row, ok := t.rows[pk]
		if !ok {
			return true // entry/row race is impossible under the latch; defensive
		}
		return visit(pk, row.Clone())
	})
	return nil
}

// IndexRange visits rows whose index entries fall in [lo, hi) where lo and
// hi are value tuples over the index columns (hi may be nil for unbounded).
func (t *Table) IndexRange(indexName string, lo, hi []Value, visit func(pk Key, row Row) bool) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ix := t.index(indexName)
	if ix == nil {
		return fmt.Errorf("storage: %s has no index %q", t.schema.Name, indexName)
	}
	loK := EncodeKey(lo...)
	var hiK Key
	if hi != nil {
		hiK = EncodeKey(hi...)
	}
	ix.tree.Ascend(loK, hiK, func(_, pk Key) bool {
		row, ok := t.rows[pk]
		if !ok {
			return true
		}
		return visit(pk, row.Clone())
	})
	return nil
}

func (t *Table) index(name string) *secondaryIndex {
	for _, ix := range t.indexes {
		if ix.def.Name == name {
			return ix
		}
	}
	return nil
}

// Catalog is the set of tables comprising a database.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog { return &Catalog{tables: make(map[string]*Table)} }

// Create adds a table for schema; the name must be new.
func (c *Catalog) Create(schema *Schema) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[schema.Name]; ok {
		return nil, fmt.Errorf("storage: table %q already exists", schema.Name)
	}
	t := NewTable(schema)
	c.tables[schema.Name] = t
	return t, nil
}

// MustCreate is Create that panics; for statically known schemas.
func (c *Catalog) MustCreate(schema *Schema) *Table {
	t, err := c.Create(schema)
	if err != nil {
		panic(err)
	}
	return t
}

// Table returns the named table, or nil.
func (c *Catalog) Table(name string) *Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tables[name]
}

// Names returns the table names in unspecified order.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	return out
}

// Store wraps a Catalog as an spi.Store: Create returns the interface type
// and Table converts the catalog's typed nil into an untyped nil interface,
// per the SPI contract.
type Store struct {
	cat Catalog
}

// NewStore returns an empty B+-tree-backed store.
func NewStore() *Store { return &Store{cat: Catalog{tables: make(map[string]*Table)}} }

// Catalog exposes the underlying typed catalog for code that works with the
// default backend directly (its own tests, the recovery CLI).
func (s *Store) Catalog() *Catalog { return &s.cat }

// Create adds a table for schema; the name must be new.
func (s *Store) Create(schema *Schema) (spi.Table, error) {
	t, err := s.cat.Create(schema)
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Table returns the named table, or nil.
func (s *Store) Table(name string) spi.Table {
	if t := s.cat.Table(name); t != nil {
		return t
	}
	return nil
}

// Names returns the table names in unspecified order.
func (s *Store) Names() []string { return s.cat.Names() }

// Capabilities reports full support: the B+-tree heap implements real
// version chains.
func (s *Store) Capabilities() spi.Capabilities { return spi.Capabilities{Versions: true} }

func init() {
	spi.Register("btree", func() spi.Store { return NewStore() })
}
