package storage

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

func sprintf(format string, args ...any) string { return fmt.Sprintf(format, args...) }

// Sentinel errors returned by table operations.
var (
	// ErrNotFound reports a lookup for an absent primary key.
	ErrNotFound = errors.New("storage: row not found")
	// ErrDuplicate reports an insert whose primary key already exists.
	ErrDuplicate = errors.New("storage: duplicate primary key")
)

// IndexDef declares a secondary index over a list of columns. Entries are
// made unique by appending the primary key, so non-unique column sets are
// fine.
type IndexDef struct {
	Name    string
	Columns []string
}

// Table is a heap relation with a hash primary index and optional B+-tree
// secondary indexes.
//
// A Table provides physical consistency only: the embedded RWMutex is a
// latch held for the duration of a single operation. Logical isolation
// (two-phase and assertional locking) is layered above by package core, the
// way Ingres layers its lock manager above the page store.
type Table struct {
	Schema *Schema

	mu      sync.RWMutex
	rows    map[Key]Row
	indexes []*secondaryIndex
	// versions holds per-key version chains for the lock-free read tiers
	// (version.go): ascending CSN order, seeded with the key's pre-image on
	// first mutation so as-of reads never consult an uncommitted base row.
	versions map[Key][]version
}

type secondaryIndex struct {
	def  IndexDef
	cols []int
	tree *BTree
}

// NewTable creates an empty table for the schema.
func NewTable(schema *Schema) *Table {
	return &Table{Schema: schema, rows: make(map[Key]Row)}
}

// AddIndex creates a secondary index and backfills it from existing rows.
func (t *Table) AddIndex(def IndexDef) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	cols := make([]int, len(def.Columns))
	for i, name := range def.Columns {
		c := t.Schema.Col(name)
		if c < 0 {
			return fmt.Errorf("storage: index %s: no column %q in %s", def.Name, name, t.Schema.Name)
		}
		cols[i] = c
	}
	idx := &secondaryIndex{def: def, cols: cols, tree: NewBTree()}
	for pk, row := range t.rows {
		idx.tree.Set(idx.entryKey(row, pk), pk)
	}
	t.indexes = append(t.indexes, idx)
	return nil
}

// entryKey builds the index entry key: secondary values then the primary
// key, encoded in one pass so index maintenance costs one allocation.
func (ix *secondaryIndex) entryKey(row Row, pk Key) Key {
	var b strings.Builder
	n := len(pk)
	for _, c := range ix.cols {
		n += keyLen(row[c])
	}
	b.Grow(n)
	for _, c := range ix.cols {
		appendKeyVal(&b, row[c])
	}
	b.WriteString(string(pk))
	return Key(b.String())
}

// Len returns the number of rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Get returns a copy of the row with the given primary key.
func (t *Table) Get(pk Key) (Row, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	row, ok := t.rows[pk]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, t.Schema.Name)
	}
	return row.Clone(), nil
}

// Exists reports whether a primary key is present.
func (t *Table) Exists(pk Key) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.rows[pk]
	return ok
}

// Insert adds a new row; the primary key must not exist.
func (t *Table) Insert(row Row) error {
	if err := t.Schema.CheckRow(row); err != nil {
		return err
	}
	pk := t.Schema.KeyOf(row)
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.rows[pk]; ok {
		return fmt.Errorf("%w: %s %v", ErrDuplicate, t.Schema.Name, t.Schema.PKOf(row))
	}
	t.seedVersionLocked(pk, nil)
	row = row.Clone()
	t.rows[pk] = row
	for _, ix := range t.indexes {
		ix.tree.Set(ix.entryKey(row, pk), pk)
	}
	return nil
}

// Update replaces the row stored under pk. The new row must have the same
// primary key. It returns the previous image for undo logging.
func (t *Table) Update(pk Key, row Row) (Row, error) {
	if err := t.Schema.CheckRow(row); err != nil {
		return nil, err
	}
	if t.Schema.KeyOf(row) != pk {
		return nil, fmt.Errorf("storage: update changes primary key of %s", t.Schema.Name)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old, ok := t.rows[pk]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, t.Schema.Name)
	}
	t.seedVersionLocked(pk, old)
	row = row.Clone()
	t.rows[pk] = row
	for _, ix := range t.indexes {
		oldEntry, newEntry := ix.entryKey(old, pk), ix.entryKey(row, pk)
		if oldEntry != newEntry {
			ix.tree.Delete(oldEntry)
			ix.tree.Set(newEntry, pk)
		}
	}
	return old, nil
}

// Delete removes the row under pk, returning the removed image for undo.
func (t *Table) Delete(pk Key) (Row, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	old, ok := t.rows[pk]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, t.Schema.Name)
	}
	t.seedVersionLocked(pk, old)
	delete(t.rows, pk)
	for _, ix := range t.indexes {
		ix.tree.Delete(ix.entryKey(old, pk))
	}
	return old, nil
}

// Apply installs a row image directly (used by WAL recovery): a nil row
// deletes pk, otherwise the row is upserted. No index entry is required to
// pre-exist.
func (t *Table) Apply(pk Key, row Row) {
	t.mu.Lock()
	defer t.mu.Unlock()
	old, had := t.rows[pk]
	if row == nil {
		if !had {
			return
		}
		t.seedVersionLocked(pk, old)
		delete(t.rows, pk)
		for _, ix := range t.indexes {
			ix.tree.Delete(ix.entryKey(old, pk))
		}
		return
	}
	if had {
		t.seedVersionLocked(pk, old)
	} else {
		t.seedVersionLocked(pk, nil)
	}
	row = row.Clone()
	t.rows[pk] = row
	for _, ix := range t.indexes {
		if had {
			ix.tree.Delete(ix.entryKey(old, pk))
		}
		ix.tree.Set(ix.entryKey(row, pk), pk)
	}
}

// Scan visits every row (copy) in unspecified order; the visitor returns
// false to stop. The latch is held in read mode for the whole scan.
func (t *Table) Scan(visit func(pk Key, row Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for pk, row := range t.rows {
		if !visit(pk, row.Clone()) {
			return
		}
	}
}

// IndexScan visits rows whose indexed columns equal eq, in index order.
func (t *Table) IndexScan(indexName string, eq []Value, visit func(pk Key, row Row) bool) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ix := t.index(indexName)
	if ix == nil {
		return fmt.Errorf("storage: %s has no index %q", t.Schema.Name, indexName)
	}
	prefix := EncodeKey(eq...)
	ix.tree.AscendPrefix(prefix, func(_, pk Key) bool {
		row, ok := t.rows[pk]
		if !ok {
			return true // entry/row race is impossible under the latch; defensive
		}
		return visit(pk, row.Clone())
	})
	return nil
}

// IndexRange visits rows whose index entries fall in [lo, hi) where lo and
// hi are value tuples over the index columns (hi may be nil for unbounded).
func (t *Table) IndexRange(indexName string, lo, hi []Value, visit func(pk Key, row Row) bool) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ix := t.index(indexName)
	if ix == nil {
		return fmt.Errorf("storage: %s has no index %q", t.Schema.Name, indexName)
	}
	loK := EncodeKey(lo...)
	var hiK Key
	if hi != nil {
		hiK = EncodeKey(hi...)
	}
	ix.tree.Ascend(loK, hiK, func(_, pk Key) bool {
		row, ok := t.rows[pk]
		if !ok {
			return true
		}
		return visit(pk, row.Clone())
	})
	return nil
}

func (t *Table) index(name string) *secondaryIndex {
	for _, ix := range t.indexes {
		if ix.def.Name == name {
			return ix
		}
	}
	return nil
}

// Catalog is the set of tables comprising a database.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog { return &Catalog{tables: make(map[string]*Table)} }

// Create adds a table for schema; the name must be new.
func (c *Catalog) Create(schema *Schema) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[schema.Name]; ok {
		return nil, fmt.Errorf("storage: table %q already exists", schema.Name)
	}
	t := NewTable(schema)
	c.tables[schema.Name] = t
	return t, nil
}

// MustCreate is Create that panics; for statically known schemas.
func (c *Catalog) MustCreate(schema *Schema) *Table {
	t, err := c.Create(schema)
	if err != nil {
		panic(err)
	}
	return t
}

// Table returns the named table, or nil.
func (c *Catalog) Table(name string) *Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tables[name]
}

// Names returns the table names in unspecified order.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	return out
}
