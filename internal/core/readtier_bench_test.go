package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// BenchmarkSnapshotRead contrasts the two ways a read-only transaction can
// execute while writers churn the same keys: through the lock manager
// (TierLocked — shared row locks, waits-for membership, deadlock exposure) and
// through the version chains (TierSnapshot — zero locks). The locked path
// serializes against the writer stream, so its aggregate throughput flatlines
// as reader goroutines are added; the snapshot path never touches the lock
// manager and scales with the readers. CI records this as BENCH_read.json;
// EXPERIMENTS.md has recorded curves.
func BenchmarkSnapshotRead(b *testing.B) {
	for _, tier := range []ReadTier{TierLocked, TierSnapshot} {
		for _, readers := range []int{1, 2, 4, 8, 16, 32} {
			b.Run(fmt.Sprintf("%s/readers-%d", tier, readers), func(b *testing.B) {
				benchRead(b, tier, readers)
			})
		}
	}
}

func benchRead(b *testing.B, tier ReadTier, readers int) {
	s := newTestSys(b, ModeACC, func(o *Options) { o.VersionGCInterval = 10 * time.Millisecond })
	defer s.eng.Close()
	registerAudit(b, s)

	// Two writers keep the hot keys churning for the whole measurement, so
	// locked readers actually contend and snapshot readers actually resolve
	// through live chains.
	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			from := int64(w*3) + 1 // writers on disjoint (from,to) pairs: no writer-writer deadlock
			for {
				select {
				case <-stop:
					return
				default:
				}
				err := s.eng.Run("transfer", &transferArgs{From: from, To: from + 1, Amount: 1})
				if err != nil && !Retryable(err) && !errors.Is(err, ErrAborted) {
					b.Error(err)
					return
				}
			}
		}(w)
	}

	b.ResetTimer()
	var rg sync.WaitGroup
	per := b.N / readers
	for r := 0; r < readers; r++ {
		n := per
		if r == readers-1 {
			n = b.N - per*(readers-1)
		}
		rg.Add(1)
		go func(n int) {
			defer rg.Done()
			a := &auditArgs{}
			for i := 0; i < n; i++ {
				err := s.eng.RunRead("audit", a, tier)
				if err != nil && !Retryable(err) {
					b.Error(err)
					return
				}
			}
		}(n)
	}
	rg.Wait()
	b.StopTimer()
	close(stop)
	writers.Wait()
}
