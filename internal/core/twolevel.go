package core

import (
	"context"

	"accdb/internal/interference"
	"accdb/internal/spi"
)

// Two-level ACC (ablation). The earlier design of [5] separates a dispatcher
// from a conventional lock manager: the dispatcher delays a step whenever
// its *type* interferes with an assertion some concurrent transaction holds
// active, because without run-time item identity it cannot tell whether the
// instances actually overlap. We realize the dispatcher with the same lock
// manager by introducing one synthetic item per assertion *type*:
//
//   - a transaction holding an assertion active takes an A lock on the
//     assertion-type item for the duration of the assertion's window;
//   - every step takes an X lock on the assertion-type item of each
//     assertion its type interferes with, for the step's duration.
//
// X-vs-A conflicts then reproduce exactly the dispatcher's conservative
// blocking, including its false conflicts — which is what the ablation
// benchmark measures against the one-level design.

// assertionTypeItem names the synthetic per-assertion-type lock item.
func assertionTypeItem(a interference.AssertionID) spi.Item {
	return spi.Item{
		Table: "\x00assertion-type",
		Level: spi.LevelRow,
		Key:   spi.EncodeKey(spi.I64(int64(a))),
	}
}

// twoLevelGate acquires the dispatcher's locks for step j: A locks on the
// transaction's active assertion types, X locks on every assertion type the
// step interferes with.
func (e *Engine) twoLevelGate(tc *Ctx, j int) error {
	step := tc.txn.steps[j].Type
	for _, a := range tc.active {
		req := spi.LockRequest{Mode: spi.ModeA, Step: step, Assertion: a.ID, Compensating: tc.compensating}
		if err := e.lm.AcquireCtx(context.Background(), tc.txn.info, assertionTypeItem(a.ID), req); err != nil {
			return err
		}
	}
	for _, a := range e.tables.AssertionIDs() {
		if !e.tables.Interferes(step, a) {
			continue
		}
		req := spi.LockRequest{Mode: spi.ModeX, Step: step, Compensating: tc.compensating}
		if err := e.lm.AcquireCtx(context.Background(), tc.txn.info, assertionTypeItem(a), req); err != nil {
			return err
		}
	}
	return nil
}
