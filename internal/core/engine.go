package core

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"accdb/internal/interference"
	"accdb/internal/metrics"
	"accdb/internal/spi"
	"accdb/internal/trace"
	"accdb/internal/wal"
)

// Mode selects the scheduler.
type Mode int

const (
	// ModeACC is the one-level assertional concurrency control (§3.2-3.3):
	// strict 2PL within steps, assertional locks acquired dynamically with
	// conventional locks, exposure marks and compensation reservations held
	// to commit.
	ModeACC Mode = iota
	// ModeBaseline is the unmodified system of §5: the whole transaction is
	// a single strict-2PL unit, serializable, one forced commit record.
	ModeBaseline
	// ModeTwoLevel is the earlier two-level design of [5] (§3.2): a
	// dispatcher blocks steps on step-type/assertion interference without
	// run-time item identity, so false conflicts delay transactions that
	// touch disjoint data. Kept for the ablation benchmarks.
	ModeTwoLevel
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeACC:
		return "acc"
	case ModeBaseline:
		return "baseline"
	case ModeTwoLevel:
		return "two-level"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ExecEnv models the execution environment's costs. The simulation package
// provides an implementation with a server pool, per-statement service time
// and inter-statement compute time; the zero environment executes inline.
type ExecEnv interface {
	// Statement brackets the CPU phase of one SQL statement: the
	// implementation acquires a database server, charges the service time,
	// runs work, and releases the server. Lock waits happen outside it.
	Statement(work func())
	// Compute charges the application's compute time between successive
	// statements of a transaction (Figure 3's knob). Locks remain held.
	Compute()
}

type inlineEnv struct{}

func (inlineEnv) Statement(work func()) { work() }
func (inlineEnv) Compute()              {}

// Options configures an Engine.
type Options struct {
	Mode Mode
	// WaitTimeout bounds individual lock waits (safety net; 0 = forever).
	WaitTimeout time.Duration
	// ForceLatency is the simulated log-force I/O time. The ACC pays it per
	// end-of-step record; the baseline once per commit.
	ForceLatency time.Duration
	// MaxStepRetries is how many times a deadlock-victim step restarts
	// before the transaction is rolled back by compensation. The paper's
	// policy ("if the deadlock recurs ... rollback") is 1.
	MaxStepRetries int
	// MaxTxnRetries bounds whole-transaction restarts in baseline mode.
	MaxTxnRetries int
	// EagerAssertionLocks selects the simplified §3.3 algorithm that locks
	// an assertion's whole footprint before the step runs (requires
	// Assertion.Items); the default is the implemented dynamic variant.
	EagerAssertionLocks bool
	// Env injects execution costs; nil executes inline.
	Env ExecEnv
	// RecordHistory captures a conflict-checkable access history (tests).
	RecordHistory bool
	// Tracer, when non-nil, receives structured events from every layer:
	// transaction/step/compensation lifecycle from the engine, lock events
	// from the lock manager, append/force events from the log. Nil disables
	// tracing at zero cost.
	Tracer *trace.Tracer
	// Anatomy, when non-nil, is the latency-anatomy recorder (DESIGN.md §13).
	// Callers that already carry a request span (the network server) pass it
	// through RunTypeContextSpan; for span-less calls the engine starts a
	// span of its own, so in-process harnesses get the same per-stage
	// histograms and flight recorder as the network path. Nil disables
	// anatomy at zero cost.
	Anatomy *trace.Anatomy
	// Log, when non-nil, is the write-ahead log the engine appends to —
	// typically a disk-backed log from wal.Open. Nil creates a memory-only
	// log with ForceLatency.
	Log *wal.Log
	// VersionGCInterval is the cadence of the background version-chain
	// reaper (DESIGN.md §14): every interval it truncates chains behind the
	// oldest live snapshot. Zero means the 100ms default; negative disables
	// the reaper (tests drive ReapVersions directly).
	VersionGCInterval time.Duration
	// Label names this engine in logs and configuration warnings. Empty for
	// single-engine processes; a partitioned cluster sets "partition N" so
	// warnings identify which engine instance they concern.
	Label string
}

// Stats aggregates engine counters.
type Stats struct {
	Commits       uint64
	UserAborts    uint64
	Compensations uint64
	CompFailures  uint64
	StepRetries   uint64
	TxnRetries    uint64
}

// Engine schedules transactions over a DB under the configured mode.
type Engine struct {
	opt     Options
	db      *DB
	tables  *interference.Tables
	lm      spi.LockService
	log     *wal.Log
	env     ExecEnv
	tracer  *trace.Tracer
	anatomy *trace.Anatomy

	nextTxn atomic.Uint64

	mu    sync.RWMutex
	types map[string]*TxnType

	commits       atomic.Uint64
	userAborts    atomic.Uint64
	compensations atomic.Uint64
	compFailures  atomic.Uint64
	stepRetries   atomic.Uint64
	txnRetries    atomic.Uint64

	closed atomic.Bool

	hist *history

	// Versioned-read state (readtier.go). csnClock is the last assigned
	// commit sequence number; pubMu serializes version publication so the
	// clock only advances once a CSN's versions are fully installed — a
	// reader loading the clock therefore always sees a complete prefix.
	csnClock atomic.Uint64
	pubMu    sync.Mutex
	snapMu   sync.Mutex
	snaps    map[uint64]spi.CSN
	nextSnap uint64 // under snapMu

	readRec *metrics.Recorder // per-tier read-only transaction latencies

	versionsPublished atomic.Uint64
	snapshotsOpened   atomic.Uint64
	gcRuns            atomic.Uint64
	gcPruned          atomic.Uint64
	gcDropped         atomic.Uint64

	reaperStop chan struct{}
	reaperDone chan struct{}

	// warnings collects configuration notes recorded at construction —
	// options that the selected backend cannot honour and that were turned
	// into no-ops rather than silently ignored.
	warnings []string
}

// New creates an engine over db using the design-time interference tables,
// configured by functional options (WithMode, WithTracer, WithWAL, ...).
// With no options the engine runs the ACC scheduler inline with a
// memory-only log.
func New(db *DB, tables *interference.Tables, opts ...Option) *Engine {
	var opt Options
	for _, apply := range opts {
		apply(&opt)
	}
	if opt.MaxStepRetries == 0 {
		opt.MaxStepRetries = 1 // the paper's recurrence rule
	}
	if opt.MaxTxnRetries == 0 {
		opt.MaxTxnRetries = 100
	}
	env := opt.Env
	if env == nil {
		env = inlineEnv{}
	}
	lm := spi.NewLockService(tables)
	lm.SetWaitTimeout(opt.WaitTimeout)
	log := opt.Log
	if log == nil {
		log = wal.New(opt.ForceLatency)
	}
	if opt.Tracer != nil {
		lm.SetTracer(opt.Tracer)
		log.SetTracer(opt.Tracer)
	}
	e := &Engine{
		opt:     opt,
		db:      db,
		tables:  tables,
		lm:      lm,
		log:     log,
		env:     env,
		tracer:  opt.Tracer,
		anatomy: opt.Anatomy,
		types:   make(map[string]*TxnType),
		snaps:   make(map[uint64]spi.CSN),
		readRec: metrics.NewRecorder(),
	}
	if opt.RecordHistory {
		e.hist = newHistory()
	}
	if !spi.StoreCapabilities(db.store).Versions {
		// The backend keeps no version chains: versioned read tiers fall
		// back to base rows and there is nothing for the reaper to prune.
		if opt.VersionGCInterval > 0 {
			e.warn(fmt.Sprintf("WithVersionGCInterval has no effect: backend %q does not support version chains", db.Backend()))
		}
		e.opt.VersionGCInterval = -1 // disable the reaper
	}
	// Rows loaded into the store before the engine attached were written
	// without CSN stamps; drop any chains their loading seeded so versioned
	// reads fall back to the (committed, quiescent) base rows.
	e.resetVersions()
	e.startReaper()
	return e
}

// warn records a configuration warning and logs it once at construction.
// The engine label, when set, prefixes the message so a multi-engine
// process (one engine per partition) reports which instance is concerned
// instead of a single anonymous line for the whole cluster.
func (e *Engine) warn(msg string) {
	if e.opt.Label != "" {
		msg = e.opt.Label + ": " + msg
	}
	e.warnings = append(e.warnings, msg)
	log.Printf("core: %s", msg)
}

// ConfigWarnings returns the configuration warnings recorded at
// construction: options the selected backend cannot honour, downgraded to
// no-ops rather than silently ignored.
func (e *Engine) ConfigWarnings() []string {
	out := make([]string, len(e.warnings))
	copy(out, e.warnings)
	return out
}

// Close marks the engine closed and forces the write-ahead log: subsequent
// Run calls fail fast with ErrEngineClosed. It does not interrupt
// transactions already in flight (the server drains them first) and does
// not close an externally-provided log — the opener owns its lifecycle.
func (e *Engine) Close() error {
	if e.closed.Swap(true) {
		return nil
	}
	e.stopReaper()
	e.log.Force()
	return nil
}

// Closed reports whether Close was called.
func (e *Engine) Closed() bool { return e.closed.Load() }

// DB returns the underlying database.
func (e *Engine) DB() *DB { return e.db }

// Log returns the write-ahead log (benchmarks read its force counters;
// recovery tests read its byte image).
func (e *Engine) Log() *wal.Log { return e.log }

// Locks returns the lock service (tests and stats).
func (e *Engine) Locks() spi.LockService { return e.lm }

// Tracer returns the attached event bus, or nil when tracing is disabled.
func (e *Engine) Tracer() *trace.Tracer { return e.tracer }

// Anatomy returns the attached latency-anatomy recorder, or nil when
// disabled.
func (e *Engine) Anatomy() *trace.Anatomy { return e.anatomy }

// Mode returns the configured scheduler mode.
func (e *Engine) Mode() Mode { return e.opt.Mode }

// Register installs a transaction type.
func (e *Engine) Register(tt *TxnType) error {
	if err := tt.validate(); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.types[tt.Name]; dup {
		return fmt.Errorf("core: transaction type %q already registered", tt.Name)
	}
	e.types[tt.Name] = tt
	return nil
}

// MustRegister is Register that panics.
func (e *Engine) MustRegister(tt *TxnType) {
	if err := e.Register(tt); err != nil {
		panic(err)
	}
}

// Type returns a registered transaction type by name.
func (e *Engine) Type(name string) *TxnType {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.types[name]
}

// TypeBytes is Type keyed by a byte-slice name — a decoded wire request's
// Name field — without allocating a string for the lookup. The returned
// type's Name is the interned string the hot path should carry onward.
func (e *Engine) TypeBytes(name []byte) *TxnType {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.types[string(name)]
}

// Snapshot returns the engine counters.
func (e *Engine) Snapshot() Stats {
	return Stats{
		Commits:       e.commits.Load(),
		UserAborts:    e.userAborts.Load(),
		Compensations: e.compensations.Load(),
		CompFailures:  e.compFailures.Load(),
		StepRetries:   e.stepRetries.Load(),
		TxnRetries:    e.txnRetries.Load(),
	}
}

// History returns the recorded access history, or nil if disabled.
func (e *Engine) History() *History {
	if e.hist == nil {
		return nil
	}
	return e.hist.snapshot()
}
