package core

import (
	"errors"
	"testing"
	"time"

	"accdb/internal/interference"
	"accdb/internal/spi"
)

// opSys is a single-table playground for the Ctx operation surface: a
// partitioned inventory(region, sku, qty) plus a by-qty secondary index.
type opSys struct {
	db   *DB
	eng  *Engine
	inv  spi.Table
	txn  interference.TxnTypeID
	step interference.StepTypeID
}

func newOpSys(t *testing.T) *opSys {
	t.Helper()
	s := &opSys{db: NewDB()}
	var err error
	s.inv, err = s.db.CreateTable(spi.MustSchema("inventory", []spi.Column{
		{Name: "region", Kind: spi.KindInt},
		{Name: "sku", Kind: spi.KindInt},
		{Name: "qty", Kind: spi.KindInt},
	}, "region", "sku"), "region")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.inv.AddIndex(spi.IndexDef{Name: "by_qty", Columns: []string{"qty"}}); err != nil {
		t.Fatal(err)
	}
	b := interference.NewBuilder()
	s.txn = b.TxnType("op", 1)
	s.step = b.StepType("op")
	b.AllowInterleaveEverywhere(s.step, s.txn)
	s.eng = New(s.db, b.Build(), WithWaitTimeout(5*time.Second))
	for r := int64(1); r <= 2; r++ {
		for sku := int64(1); sku <= 5; sku++ {
			if err := s.inv.Insert(spi.Row{spi.I64(r), spi.I64(sku), spi.I64(sku * 10)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return s
}

// run executes body as a single-step transaction.
func (s *opSys) run(t *testing.T, body func(tc *Ctx) error) error {
	t.Helper()
	return s.eng.RunType(&TxnType{
		Name: "op", ID: s.txn,
		Steps: []Step{{Name: "op", Type: s.step, Body: body}},
	}, nil)
}

func TestCtxGetInsertDelete(t *testing.T) {
	s := newOpSys(t)
	err := s.run(t, func(tc *Ctx) error {
		row, err := tc.Get("inventory", spi.I64(1), spi.I64(3))
		if err != nil {
			return err
		}
		if row[2].Int64() != 30 {
			t.Errorf("qty = %d", row[2].Int64())
		}
		if _, err := tc.Get("inventory", spi.I64(9), spi.I64(9)); !errors.Is(err, spi.ErrNotFound) {
			t.Errorf("missing row: %v", err)
		}
		if _, err := tc.Get("nope", spi.I64(1)); err == nil {
			t.Error("unknown table accepted")
		}
		if err := tc.Insert("inventory", spi.Row{spi.I64(3), spi.I64(1), spi.I64(7)}); err != nil {
			return err
		}
		return tc.Delete("inventory", spi.I64(1), spi.I64(5))
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.inv.Exists(spi.EncodeKey(spi.I64(1), spi.I64(5))) {
		t.Fatal("delete not applied")
	}
	if !s.inv.Exists(spi.EncodeKey(spi.I64(3), spi.I64(1))) {
		t.Fatal("insert not applied")
	}
}

func TestCtxScanPartitionIsolatedFromOtherPartitions(t *testing.T) {
	s := newOpSys(t)
	err := s.run(t, func(tc *Ctx) error {
		n := 0
		err := tc.ScanPartition("inventory", []spi.Value{spi.I64(1)}, func(spi.Row) error {
			n++
			return nil
		})
		if n != 5 {
			t.Errorf("scanned %d rows, want 5", n)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// Scanning a non-partitioned table by partition errors.
	db2 := NewDB()
	db2.MustCreateTable(spi.MustSchema("flat", []spi.Column{{Name: "id", Kind: spi.KindInt}}, "id"))
	b := interference.NewBuilder()
	txn := b.TxnType("x", 1)
	step := b.StepType("x")
	eng := New(db2, b.Build())
	err = eng.RunType(&TxnType{Name: "x", ID: txn, Steps: []Step{{
		Name: "x", Type: step,
		Body: func(tc *Ctx) error {
			return tc.ScanPartition("flat", nil, func(spi.Row) error { return nil })
		},
	}}}, nil)
	if err == nil {
		t.Fatal("partition scan of unpartitioned table accepted")
	}
}

func TestCtxScanEarlyStop(t *testing.T) {
	s := newOpSys(t)
	err := s.run(t, func(tc *Ctx) error {
		n := 0
		if err := tc.Scan("inventory", func(spi.Row) error {
			n++
			if n == 3 {
				return ErrStopScan
			}
			return nil
		}); err != nil {
			return err
		}
		if n != 3 {
			t.Errorf("visited %d", n)
		}
		// Error propagation.
		sentinel := errors.New("boom")
		if err := tc.Scan("inventory", func(spi.Row) error { return sentinel }); !errors.Is(err, sentinel) {
			t.Errorf("scan error lost: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCtxUpdateWhere(t *testing.T) {
	s := newOpSys(t)
	err := s.run(t, func(tc *Ctx) error {
		// Double qty of skus 1-2, delete sku 3, leave the rest.
		return tc.UpdateWhere("inventory", []spi.Value{spi.I64(1)},
			func(row spi.Row) (spi.Row, error) {
				switch row[1].Int64() {
				case 1, 2:
					row[2] = spi.I64(row[2].Int64() * 2)
					return row, nil
				case 3:
					return nil, ErrDeleteRow
				case 5:
					return nil, ErrStopScan
				}
				return nil, nil
			})
	})
	if err != nil {
		t.Fatal(err)
	}
	get := func(sku int64) (int64, bool) {
		row, err := s.inv.Get(spi.EncodeKey(spi.I64(1), spi.I64(sku)))
		if err != nil {
			return 0, false
		}
		return row[2].Int64(), true
	}
	if q, _ := get(1); q != 20 {
		t.Errorf("sku1 qty %d", q)
	}
	if q, _ := get(2); q != 40 {
		t.Errorf("sku2 qty %d", q)
	}
	if _, ok := get(3); ok {
		t.Error("sku3 not deleted")
	}
	if q, _ := get(4); q != 40 {
		t.Errorf("sku4 qty %d (should be untouched)", q)
	}
}

func TestCtxLookupByIndexAndGetMany(t *testing.T) {
	s := newOpSys(t)
	err := s.run(t, func(tc *Ctx) error {
		rows, err := tc.LookupByIndex("inventory", "by_qty", []spi.Value{spi.I64(30)})
		if err != nil {
			return err
		}
		if len(rows) != 2 { // sku 3 in both regions
			t.Errorf("by_qty(30) found %d rows", len(rows))
		}
		got, err := tc.GetMany("inventory", [][]spi.Value{
			{spi.I64(1), spi.I64(1)},
			{spi.I64(2), spi.I64(2)},
			{spi.I64(9), spi.I64(9)}, // missing: skipped
		})
		if err != nil {
			return err
		}
		if len(got) != 2 {
			t.Errorf("GetMany returned %d rows", len(got))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCtxClaimMin(t *testing.T) {
	s := newOpSys(t)
	var first, second int64
	err := s.run(t, func(tc *Ctx) error {
		row, err := tc.ClaimMin("inventory", PartIndex, []spi.Value{spi.I64(1)})
		if err != nil {
			return err
		}
		first = row[1].Int64()
		row, err = tc.ClaimMin("inventory", PartIndex, []spi.Value{spi.I64(1)})
		if err != nil {
			return err
		}
		second = row[1].Int64()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 || second != 2 {
		t.Fatalf("claimed %d then %d, want 1 then 2", first, second)
	}
	if s.inv.Exists(spi.EncodeKey(spi.I64(1), spi.I64(1))) {
		t.Fatal("claimed row still present")
	}
	// Draining a partition returns nil.
	err = s.run(t, func(tc *Ctx) error {
		for {
			row, err := tc.ClaimMin("inventory", PartIndex, []spi.Value{spi.I64(1)})
			if err != nil {
				return err
			}
			if row == nil {
				return nil
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCtxUpdateRejectsPKChange(t *testing.T) {
	s := newOpSys(t)
	err := s.run(t, func(tc *Ctx) error {
		return tc.Update("inventory", []spi.Value{spi.I64(1), spi.I64(4)},
			func(row spi.Row) error {
				row[1] = spi.I64(99)
				return nil
			})
	})
	if err == nil {
		t.Fatal("primary-key mutation accepted")
	}
}

func TestCtxStepUndoRestoresEverything(t *testing.T) {
	s := newOpSys(t)
	before := s.inv.Len()
	err := s.run(t, func(tc *Ctx) error {
		if err := tc.Insert("inventory", spi.Row{spi.I64(7), spi.I64(7), spi.I64(7)}); err != nil {
			return err
		}
		if err := tc.Delete("inventory", spi.I64(1), spi.I64(1)); err != nil {
			return err
		}
		if err := tc.Update("inventory", []spi.Value{spi.I64(1), spi.I64(2)},
			func(row spi.Row) error {
				row[2] = spi.I64(-1)
				return nil
			}); err != nil {
			return err
		}
		return tc.Abort("never mind")
	})
	if !errors.Is(err, ErrUserAbort) {
		t.Fatalf("got %v", err)
	}
	if s.inv.Len() != before {
		t.Fatal("row count changed by aborted step")
	}
	row, err := s.inv.Get(spi.EncodeKey(spi.I64(1), spi.I64(2)))
	if err != nil || row[2].Int64() != 20 {
		t.Fatal("update not undone")
	}
	if !s.inv.Exists(spi.EncodeKey(spi.I64(1), spi.I64(1))) {
		t.Fatal("delete not undone")
	}
}

func TestPartitionValidation(t *testing.T) {
	db := NewDB()
	schema := spi.MustSchema("t", []spi.Column{
		{Name: "a", Kind: spi.KindInt},
		{Name: "b", Kind: spi.KindInt},
	}, "a")
	if _, err := db.CreateTable(schema, "zzz"); err == nil {
		t.Fatal("unknown partition column accepted")
	}
	if _, err := db.CreateTable(schema, "b"); err == nil {
		t.Fatal("non-PK partition column accepted")
	}
	if _, err := db.CreateTable(schema, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable(schema, "a"); err == nil {
		t.Fatal("duplicate table accepted")
	}
}

func TestTwoLevelGateSerializesFalseConflicts(t *testing.T) {
	// Two instances touching disjoint rows: the one-level ACC runs them
	// concurrently; the two-level dispatcher serializes them through the
	// assertion-type item (the paper's false conflict).
	build := func(mode Mode) (*Engine, *Assertion, interference.TxnTypeID, interference.StepTypeID, interference.StepTypeID) {
		db := NewDB()
		tab := db.MustCreateTable(spi.MustSchema("t", []spi.Column{
			{Name: "id", Kind: spi.KindInt},
			{Name: "v", Kind: spi.KindInt},
		}, "id"))
		for i := int64(1); i <= 4; i++ {
			tab.Insert(spi.Row{spi.I64(i), spi.I64(0)})
		}
		b := interference.NewBuilder()
		txn := b.TxnType("w", 2)
		s1 := b.StepType("w1")
		s2 := b.StepType("w2")
		cs := b.StepType("cs")
		a := b.Assertion("mine-stable")
		// w1 interferes with the assertion *type* (another instance could,
		// in principle, touch the same row — only item identity disproves it).
		b.NoInterference(s2, a)
		b.NoInterference(cs, a)
		for _, st := range []interference.StepTypeID{s1, s2, cs} {
			b.AllowInterleaveEverywhere(st, txn)
		}
		b.PrefixSafe(txn, 1, a)
		eng := New(db, b.Build(), WithMode(mode), WithWaitTimeout(5*time.Second))
		assert := &Assertion{
			ID: a, Name: "mine-stable",
			Covers: func(args any, item spi.Item) bool {
				id := args.(int64)
				return item.Table == "t" && item.Level == spi.LevelRow &&
					item.Key == spi.EncodeKey(spi.I64(id))
			},
		}
		return eng, assert, txn, s1, s2
	}
	type gates struct {
		arrive  chan struct{}
		release chan struct{}
	}
	mkType := func(eng *Engine, assert *Assertion, txn interference.TxnTypeID, s1, s2 interference.StepTypeID, g *gates) *TxnType {
		return &TxnType{
			Name: "w", ID: txn,
			Steps: []Step{
				{Name: "w1", Type: s1, Body: func(tc *Ctx) error {
					id := tc.Args().(int64)
					return tc.Update("t", []spi.Value{spi.I64(id)}, func(row spi.Row) error {
						row[1] = spi.I64(1)
						return nil
					})
				}},
				{Name: "w2", Type: s2, Pre: []*Assertion{assert}, Body: func(tc *Ctx) error {
					if g != nil {
						g.arrive <- struct{}{}
						<-g.release
					}
					return nil
				}},
			},
			Comp: &Compensation{Type: s2, Body: func(*Ctx, int) error { return nil }},
		}
	}
	// One-level: both transactions can sit between steps simultaneously.
	eng, assert, txn, s1, s2 := build(ModeACC)
	g := &gates{arrive: make(chan struct{}, 2), release: make(chan struct{})}
	eng.MustRegister(mkType(eng, assert, txn, s1, s2, g))
	errs := make(chan error, 2)
	go func() { errs <- eng.Run("w", int64(1)) }()
	go func() { errs <- eng.Run("w", int64(2)) }()
	for i := 0; i < 2; i++ {
		select {
		case <-g.arrive:
		case <-time.After(2 * time.Second):
			t.Fatal("one-level ACC serialized disjoint instances")
		}
	}
	close(g.release)
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	// Two-level: the second instance cannot reach its w2 gate while the
	// first holds the assertion type (w1 of instance 2 X-locks the
	// assertion-type item, which instance 1's A lock blocks).
	eng2, assert2, txn2, s21, s22 := build(ModeTwoLevel)
	g2 := &gates{arrive: make(chan struct{}, 2), release: make(chan struct{}, 2)}
	eng2.MustRegister(mkType(eng2, assert2, txn2, s21, s22, g2))
	errs2 := make(chan error, 2)
	go func() { errs2 <- eng2.Run("w", int64(1)) }()
	go func() { errs2 <- eng2.Run("w", int64(2)) }()
	select {
	case <-g2.arrive:
	case <-time.After(2 * time.Second):
		t.Fatal("no instance reached the gate")
	}
	// The second must NOT arrive while the first is paused: its w1 X-locks
	// the assertion-type item, which the first's A lock blocks.
	select {
	case <-g2.arrive:
		t.Fatal("two-level dispatcher allowed both instances between steps")
	case <-time.After(150 * time.Millisecond):
	}
	g2.release <- struct{}{} // release the first
	select {
	case <-g2.arrive: // second finally arrives
		g2.release <- struct{}{}
	case <-time.After(2 * time.Second):
		t.Fatal("second instance never proceeded")
	}
	for i := 0; i < 2; i++ {
		if err := <-errs2; err != nil {
			t.Fatal(err)
		}
	}
}
