package core

// The engine's own tests exercise whichever backend the registry selects
// (ACCDB_BACKEND, btree by default) — CI runs them against every registered
// store. Only test files may import the backends: the package's non-test
// sources depend solely on accdb/internal/spi, and tools/doccheck -boundary
// enforces that.
import (
	_ "accdb/internal/backends"
)
