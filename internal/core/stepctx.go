package core

import (
	"context"
	"fmt"
	"sort"

	"accdb/internal/interference"
	"accdb/internal/spi"
	"accdb/internal/trace"
	"accdb/internal/wal"
)

// Ctx is the data-access surface handed to step bodies (the engine's "SQL
// connection"). Every operation acquires the hierarchy of conventional
// locks, attaches assertional locks for the transaction's active assertions
// (the implemented one-level ACC acquires them dynamically, §3.3), executes
// the statement's CPU phase through the ExecEnv, and records undo images so
// a deadlock-victim step can be rolled back and retried.
type Ctx struct {
	e   *Engine
	txn *txnState

	stepIdx      int
	stepType     interference.StepTypeID
	compensating bool
	active       []*Assertion

	// readTier, when not TierLocked, routes every read through the version
	// chains (readtier.go): no locks, no history, writes refused. readCSN is
	// the fixed snapshot CSN when readTier is TierSnapshot.
	readTier ReadTier
	readCSN  spi.CSN

	writes     []writeRec
	wroteItems map[spi.Item]bool
	stmts      int
}

type writeRec struct {
	table  string
	pk     spi.Key
	before spi.Row // nil: row was inserted
	after  spi.Row // nil: row was deleted
}

// txnState is the engine's per-instance transaction record.
type txnState struct {
	tt    *TxnType
	args  any
	steps []Step
	info  *spi.Txn
	// pending holds the final step's writes between its end-of-step record
	// and the commit force, whose success publishes them as one version
	// batch (readtier.go).
	pending []writeRec
	// ctx is the caller's context; forward-step lock waits abort when it
	// is cancelled. Nil (recovery-built states) behaves as Background.
	ctx context.Context
	// span is the transaction's latency-anatomy span, nil when anatomy is
	// disabled and on recovery-built states; every use is nil-safe.
	span *trace.Span
}

// Args returns the transaction's argument value (its work area).
func (tc *Ctx) Args() any { return tc.txn.args }

// Context returns the caller context the transaction runs under, never nil.
// A step body that coordinates work outside this engine — the partition
// layer's hook step running remote shots — reads its coordination state
// from here.
func (tc *Ctx) Context() context.Context {
	if tc.txn.ctx == nil {
		return context.Background()
	}
	return tc.txn.ctx
}

// Abort returns the error a step body should return to roll the transaction
// back, optionally wrapping a cause.
func (tc *Ctx) Abort(cause string) error {
	if cause == "" {
		return ErrUserAbort
	}
	return fmt.Errorf("%s: %w", cause, ErrUserAbort)
}

// stmt brackets one statement: CPU phase through the environment, then the
// inter-statement compute time (for every statement but the first, matching
// "compute time between successive SQL statements").
func (tc *Ctx) stmt(work func()) {
	if tc.stmts > 0 && tc.txn.tt.InterStatementCompute {
		tc.e.env.Compute()
	}
	tc.stmts++
	tc.e.env.Statement(work)
}

// versioned reports whether this context reads through the version chains
// instead of the lock manager (RunRead at a non-locked tier).
func (tc *Ctx) versioned() bool { return tc.readTier != TierLocked }

// asOf resolves the CSN the current statement reads as of: MaxCSN for
// read-ASAP, the clock's current value for read-committed (per statement),
// and the transaction's fixed CSN for snapshot.
func (tc *Ctx) asOf() spi.CSN {
	switch tc.readTier {
	case TierASAP:
		return spi.MaxCSN
	case TierReadCommitted:
		return spi.CSN(tc.e.csnClock.Load())
	default:
		return tc.readCSN
	}
}

// request builds the lock request for this step.
func (tc *Ctx) request(mode spi.Mode) spi.LockRequest {
	return spi.LockRequest{Mode: mode, Step: tc.stepType, Compensating: tc.compensating}
}

// lockCtx returns the context under which this step's lock requests wait:
// the transaction's caller context for forward steps, Background for
// compensating steps — a compensation must run to completion even after
// the caller has gone away (§3.4); the reservation locks guarantee it can.
func (tc *Ctx) lockCtx() context.Context {
	if tc.compensating || tc.txn.ctx == nil {
		return context.Background()
	}
	return tc.txn.ctx
}

// acquire takes one conventional lock and, in ACC mode, attaches assertional
// locks for every active assertion covering the item.
func (tc *Ctx) acquire(item spi.Item, mode spi.Mode) error {
	if err := tc.e.lm.AcquireCtx(tc.lockCtx(), tc.txn.info, item, tc.request(mode)); err != nil {
		return err
	}
	if tc.e.opt.Mode == ModeACC {
		for _, a := range tc.active {
			if a.Covers != nil && a.Covers(tc.txn.args, item) {
				req := spi.LockRequest{
					Mode: spi.ModeA, Step: tc.stepType,
					Assertion: a.ID, Compensating: tc.compensating,
				}
				if err := tc.e.lm.AcquireCtx(tc.lockCtx(), tc.txn.info, item, req); err != nil {
					return err
				}
				if tc.e.tracer != nil {
					tc.e.emitTxn(trace.KindAssertCheck, tc.txn,
						tc.stepIdx, item.String(), 0, a.Name)
				}
			}
		}
	}
	return nil
}

// lockRead acquires the read hierarchy for a row: IS table, IS partition,
// S row.
func (tc *Ctx) lockRead(table string, keyVals []spi.Value, pk spi.Key) error {
	if err := tc.acquire(spi.TableItem(table), spi.ModeIS); err != nil {
		return err
	}
	if part, ok := tc.e.db.partitionOfKey(table, keyVals); ok {
		if err := tc.acquire(part, spi.ModeIS); err != nil {
			return err
		}
	}
	return tc.acquire(spi.RowItem(table, pk), spi.ModeS)
}

// lockWrite acquires the update hierarchy for an existing row: IX table,
// IX partition, X row.
func (tc *Ctx) lockWrite(table string, keyVals []spi.Value, pk spi.Key) error {
	if err := tc.acquire(spi.TableItem(table), spi.ModeIX); err != nil {
		return err
	}
	if part, ok := tc.e.db.partitionOfKey(table, keyVals); ok {
		if err := tc.acquire(part, spi.ModeIX); err != nil {
			return err
		}
	}
	return tc.acquire(spi.RowItem(table, pk), spi.ModeX)
}

// lockStructural acquires the hierarchy for inserts and deletes: IX table,
// X partition (serializing structural change within the partition, the page
// lock analogue), X row.
func (tc *Ctx) lockStructural(table string, keyVals []spi.Value, pk spi.Key) error {
	if err := tc.acquire(spi.TableItem(table), spi.ModeIX); err != nil {
		return err
	}
	if part, ok := tc.e.db.partitionOfKey(table, keyVals); ok {
		if err := tc.acquire(part, spi.ModeX); err != nil {
			return err
		}
	}
	return tc.acquire(spi.RowItem(table, pk), spi.ModeX)
}

func (tc *Ctx) table(name string) (spi.Table, error) {
	t := tc.e.db.Table(name)
	if t == nil {
		return nil, fmt.Errorf("core: no table %q", name)
	}
	return t, nil
}

// recordWrite logs the mutation, saves the undo image, and remembers the
// written items for exposure and reservation marking at step end.
func (tc *Ctx) recordWrite(table string, keyVals []spi.Value, pk spi.Key, before, after spi.Row) {
	tc.writes = append(tc.writes, writeRec{table: table, pk: pk, before: before, after: after})
	tc.e.log.AppendSpan(wal.Record{
		Type: wal.TWrite, Txn: uint64(tc.txn.info.ID),
		Table: table, PK: pk, Before: before, After: after,
	}, tc.txn.span)
	if tc.wroteItems == nil {
		tc.wroteItems = make(map[spi.Item]bool)
	}
	tc.wroteItems[spi.RowItem(table, pk)] = true
	structural := before == nil || after == nil
	if structural {
		if part, ok := tc.e.db.partitionOfKey(table, keyVals); ok {
			tc.wroteItems[part] = true
		}
	}
	tc.e.record(tc.txn, table, pk, true)
}

// Get reads the row with the given primary key. It returns
// spi.ErrNotFound (wrapped) if absent.
func (tc *Ctx) Get(table string, keyVals ...spi.Value) (spi.Row, error) {
	t, err := tc.table(table)
	if err != nil {
		return nil, err
	}
	pk := spi.EncodeKey(keyVals...)
	var row spi.Row
	var gerr error
	if tc.versioned() {
		tc.stmt(func() { row, gerr = t.GetAsOf(pk, tc.asOf()) })
		return row, gerr
	}
	if err := tc.lockRead(table, keyVals, pk); err != nil {
		return nil, err
	}
	tc.stmt(func() { row, gerr = t.Get(pk) })
	tc.e.record(tc.txn, table, pk, false)
	return row, gerr
}

// GetMany locks (S) and reads a batch of rows by primary key in a single
// statement — the engine's stand-in for a join against a key list (used by
// stock-level). Missing keys are skipped.
func (tc *Ctx) GetMany(table string, keys [][]spi.Value) ([]spi.Row, error) {
	t, err := tc.table(table)
	if err != nil {
		return nil, err
	}
	if tc.versioned() {
		asOf := tc.asOf()
		rows := make([]spi.Row, 0, len(keys))
		tc.stmt(func() {
			for _, kv := range keys {
				if row, err := t.GetAsOf(spi.EncodeKey(kv...), asOf); err == nil {
					rows = append(rows, row)
				}
			}
		})
		return rows, nil
	}
	if err := tc.acquire(spi.TableItem(table), spi.ModeIS); err != nil {
		return nil, err
	}
	// Lock in key order: batched acquirers that sort identically cannot
	// deadlock against each other.
	sorted := make([][]spi.Value, len(keys))
	copy(sorted, keys)
	sort.Slice(sorted, func(i, j int) bool {
		return spi.EncodeKey(sorted[i]...) < spi.EncodeKey(sorted[j]...)
	})
	pks := make([]spi.Key, len(sorted))
	for i, kv := range sorted {
		pk := spi.EncodeKey(kv...)
		if err := tc.lockRead(table, kv, pk); err != nil {
			return nil, err
		}
		pks[i] = pk
	}
	rows := make([]spi.Row, 0, len(pks))
	tc.stmt(func() {
		for _, pk := range pks {
			if row, err := t.Get(pk); err == nil {
				rows = append(rows, row)
			}
		}
	})
	for _, pk := range pks {
		tc.e.record(tc.txn, table, pk, false)
	}
	return rows, nil
}

// ClaimMin atomically pops the index-least row matching eqVals: it probes
// the index for the head, X-locks that row, re-verifies it, and deletes it —
// the head-of-queue claim a delivery performs. The probe itself takes no row
// locks (it reads the index the way an index page lookup would); losing a
// race to another claimer simply re-probes. Returns (nil, nil) when no row
// matches.
func (tc *Ctx) ClaimMin(table, index string, eqVals []spi.Value) (spi.Row, error) {
	if tc.versioned() {
		return nil, ErrReadOnly
	}
	t, err := tc.table(table)
	if err != nil {
		return nil, err
	}
	if err := tc.acquire(spi.TableItem(table), spi.ModeIX); err != nil {
		return nil, err
	}
	for {
		var headPK spi.Key
		found := false
		tc.stmt(func() {
			t.IndexScan(index, eqVals, func(pk spi.Key, _ spi.Row) bool {
				headPK = pk
				found = true
				return false
			})
		})
		if !found {
			tc.e.record(tc.txn, table, "", false)
			return nil, nil
		}
		if err := tc.acquire(spi.RowItem(table, headPK), spi.ModeX); err != nil {
			return nil, err
		}
		var row spi.Row
		var old spi.Row
		var derr error
		tc.stmt(func() {
			row, derr = t.Get(headPK)
			if derr != nil {
				return
			}
			old, derr = t.Delete(headPK)
		})
		if derr != nil {
			continue // another claimer won the race; re-probe
		}
		keyVals := t.Schema().PKOf(old)
		tc.recordWrite(table, keyVals, headPK, old, nil)
		return row, nil
	}
}

// Insert adds a new row.
func (tc *Ctx) Insert(table string, row spi.Row) error {
	if tc.versioned() {
		return ErrReadOnly
	}
	t, err := tc.table(table)
	if err != nil {
		return err
	}
	if err := t.Schema().CheckRow(row); err != nil {
		return err
	}
	keyVals := t.Schema().PKOf(row)
	pk := spi.EncodeKey(keyVals...)
	if err := tc.lockStructural(table, keyVals, pk); err != nil {
		return err
	}
	var ierr error
	tc.stmt(func() { ierr = t.Insert(row) })
	if ierr != nil {
		return ierr
	}
	tc.recordWrite(table, keyVals, pk, nil, row.Clone())
	return nil
}

// Delete removes the row with the given primary key.
func (tc *Ctx) Delete(table string, keyVals ...spi.Value) error {
	if tc.versioned() {
		return ErrReadOnly
	}
	t, err := tc.table(table)
	if err != nil {
		return err
	}
	pk := spi.EncodeKey(keyVals...)
	if err := tc.lockStructural(table, keyVals, pk); err != nil {
		return err
	}
	var old spi.Row
	var derr error
	tc.stmt(func() { old, derr = t.Delete(pk) })
	if derr != nil {
		return derr
	}
	tc.recordWrite(table, keyVals, pk, old, nil)
	return nil
}

// Update applies mutate to a copy of the row under the given key and stores
// the result. mutate must not change primary-key columns.
func (tc *Ctx) Update(table string, keyVals []spi.Value, mutate func(spi.Row) error) error {
	if tc.versioned() {
		return ErrReadOnly
	}
	t, err := tc.table(table)
	if err != nil {
		return err
	}
	pk := spi.EncodeKey(keyVals...)
	if err := tc.lockWrite(table, keyVals, pk); err != nil {
		return err
	}
	var uerr error
	var before spi.Row
	tc.stmt(func() {
		var row spi.Row
		row, uerr = t.Get(pk)
		if uerr != nil {
			return
		}
		if uerr = mutate(row); uerr != nil {
			return
		}
		before, uerr = t.Update(pk, row)
		if uerr == nil {
			// row is this call's private copy (t.Get cloned it, t.Update
			// stored its own clone), so it can become the after image
			// without another defensive copy.
			tc.recordWrite(table, keyVals, pk, before, row)
		}
	})
	return uerr
}

// ScanPartition visits, in primary-key-within-partition order, every row of
// the given partition (shared partition lock: concurrent structural change
// is excluded, closing the phantom window). The visitor may return
// ErrStopScan to end early.
func (tc *Ctx) ScanPartition(table string, partVals []spi.Value, visit func(spi.Row) error) error {
	t, err := tc.table(table)
	if err != nil {
		return err
	}
	if !tc.e.db.partitioned(table) {
		return fmt.Errorf("core: table %q is not partitioned", table)
	}
	var serr error
	if tc.versioned() {
		asOf := tc.asOf()
		tc.stmt(func() {
			serr = t.IndexScanAsOf(PartIndex, partVals, asOf, func(pk spi.Key, row spi.Row) bool {
				if err := visit(row); err != nil {
					if err != ErrStopScan {
						serr = err
					}
					return false
				}
				return true
			})
		})
		return serr
	}
	if err := tc.acquire(spi.TableItem(table), spi.ModeIS); err != nil {
		return err
	}
	part := tc.e.db.partitionItem(table, partVals)
	if err := tc.acquire(part, spi.ModeS); err != nil {
		return err
	}
	tc.stmt(func() {
		serr = t.IndexScan(PartIndex, partVals, func(pk spi.Key, row spi.Row) bool {
			if err := visit(row); err != nil {
				if err != ErrStopScan {
					serr = err
				}
				return false
			}
			return true
		})
	})
	tc.e.record(tc.txn, table, part.Key, false)
	return serr
}

// UpdateWhere visits every row of a partition under an exclusive partition
// lock and replaces those for which mutate returns a changed row. mutate
// returns (nil, nil) to leave a row untouched, (row, nil) to store it, or
// (nil, ErrDeleteRow) to delete it.
func (tc *Ctx) UpdateWhere(table string, partVals []spi.Value, mutate func(spi.Row) (spi.Row, error)) error {
	if tc.versioned() {
		return ErrReadOnly
	}
	t, err := tc.table(table)
	if err != nil {
		return err
	}
	if !tc.e.db.partitioned(table) {
		return fmt.Errorf("core: table %q is not partitioned", table)
	}
	if err := tc.acquire(spi.TableItem(table), spi.ModeIX); err != nil {
		return err
	}
	part := tc.e.db.partitionItem(table, partVals)
	if err := tc.acquire(part, spi.ModeX); err != nil {
		return err
	}
	type change struct {
		pk      spi.Key
		keyVals []spi.Value
		after   spi.Row // nil: delete
	}
	var changes []change
	var serr error
	tc.stmt(func() {
		serr = t.IndexScan(PartIndex, partVals, func(pk spi.Key, row spi.Row) bool {
			after, err := mutate(row)
			if err == ErrDeleteRow {
				changes = append(changes, change{pk, t.Schema().PKOf(row), nil})
				return true
			}
			if err != nil {
				if err != ErrStopScan {
					serr = err
				}
				return false
			}
			if after != nil {
				changes = append(changes, change{pk, t.Schema().PKOf(after), after})
			}
			return true
		})
		if serr != nil {
			return
		}
		for _, ch := range changes {
			if ch.after == nil {
				old, err := t.Delete(ch.pk)
				if err != nil {
					serr = err
					return
				}
				tc.recordWrite(table, ch.keyVals, ch.pk, old, nil)
				continue
			}
			old, err := t.Update(ch.pk, ch.after)
			if err != nil {
				serr = err
				return
			}
			tc.recordWrite(table, ch.keyVals, ch.pk, old, ch.after.Clone())
		}
	})
	return serr
}

// LookupByIndex returns, in index order, copies of every row whose indexed
// columns equal eqVals. Each matched row is locked S individually (no
// partition lock is involved, so — like an Ingres index lookup under row
// locks — the result is not phantom-protected; TPC-C's uses are over static
// row populations).
func (tc *Ctx) LookupByIndex(table, index string, eqVals []spi.Value) ([]spi.Row, error) {
	t, err := tc.table(table)
	if err != nil {
		return nil, err
	}
	if tc.versioned() {
		asOf := tc.asOf()
		var rows []spi.Row
		var serr error
		tc.stmt(func() {
			serr = t.IndexScanAsOf(index, eqVals, asOf, func(_ spi.Key, row spi.Row) bool {
				rows = append(rows, row)
				return true
			})
		})
		return rows, serr
	}
	if err := tc.acquire(spi.TableItem(table), spi.ModeIS); err != nil {
		return nil, err
	}
	var pks []spi.Key
	var serr error
	tc.stmt(func() {
		serr = t.IndexScan(index, eqVals, func(pk spi.Key, _ spi.Row) bool {
			pks = append(pks, pk)
			return true
		})
	})
	if serr != nil {
		return nil, serr
	}
	rows := make([]spi.Row, 0, len(pks))
	for _, pk := range pks {
		// Lock, then re-fetch: the row may have changed (or vanished)
		// between the index probe and the grant.
		if err := tc.acquire(spi.RowItem(table, pk), spi.ModeS); err != nil {
			return nil, err
		}
		row, err := t.Get(pk)
		if err != nil {
			continue // deleted since the probe; skip
		}
		tc.e.record(tc.txn, table, pk, false)
		rows = append(rows, row)
	}
	return rows, nil
}

// Scan visits every row of the table under a shared table lock.
func (tc *Ctx) Scan(table string, visit func(spi.Row) error) error {
	t, err := tc.table(table)
	if err != nil {
		return err
	}
	var serr error
	if tc.versioned() {
		asOf := tc.asOf()
		tc.stmt(func() {
			t.ScanAsOf(asOf, func(_ spi.Key, row spi.Row) bool {
				if err := visit(row); err != nil {
					if err != ErrStopScan {
						serr = err
					}
					return false
				}
				return true
			})
		})
		return serr
	}
	if err := tc.acquire(spi.TableItem(table), spi.ModeS); err != nil {
		return err
	}
	tc.stmt(func() {
		t.Scan(func(pk spi.Key, row spi.Row) bool {
			if err := visit(row); err != nil {
				if err != ErrStopScan {
					serr = err
				}
				return false
			}
			return true
		})
	})
	tc.e.record(tc.txn, table, "", false)
	return serr
}

// Sentinel errors for scan visitors.
var (
	// ErrStopScan ends a scan early without error.
	ErrStopScan = fmt.Errorf("core: stop scan")
	// ErrDeleteRow instructs UpdateWhere to delete the visited row.
	ErrDeleteRow = fmt.Errorf("core: delete row")
)

// undo reverts this step's writes in reverse order using the saved images.
// Safe because the step still holds exclusive locks on everything it wrote.
func (tc *Ctx) undo() {
	for i := len(tc.writes) - 1; i >= 0; i-- {
		w := tc.writes[i]
		t := tc.e.db.Table(w.table)
		t.Apply(w.pk, w.before)
	}
	tc.writes = nil
	tc.wroteItems = nil
}
