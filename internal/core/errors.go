package core

import (
	"context"
	"errors"
	"fmt"

	"accdb/internal/spi"
)

// The engine's error taxonomy. Every failure surfaced by Run/RunContext is
// classifiable with errors.Is/errors.As against the sentinels below — the
// server maps them onto wire status codes, the client maps those codes back,
// and both ends (plus the in-process retry loops) share one Retryable
// predicate instead of re-deriving retryability from error text.
var (
	// ErrUnknownTxnType reports a Run against a transaction type name that
	// was never registered on the engine.
	ErrUnknownTxnType = errors.New("acc: unknown transaction type")

	// ErrEngineClosed reports a Run against an engine whose Close was
	// called; nothing was scheduled.
	ErrEngineClosed = errors.New("acc: engine closed")

	// ErrAborted is the root of every final rollback: user aborts wrap it,
	// and CompensatedError matches it via errors.Is. A caller that only
	// cares whether the transaction's effects stand can test this one
	// sentinel.
	ErrAborted = errors.New("acc: transaction aborted")

	// ErrUserAbort is returned (possibly wrapped) by a step body to request
	// rollback of the transaction. It wraps ErrAborted.
	ErrUserAbort = fmt.Errorf("%w by application", ErrAborted)

	// ErrRetriesExhausted reports that a transaction could not complete
	// within the configured retry budget. It wraps the last scheduling
	// abort, so errors.Is still identifies the underlying cause.
	ErrRetriesExhausted = errors.New("acc: retries exhausted")

	// ErrDeadlockVictim reports that the transaction was chosen as a
	// deadlock victim and abandoned after the retry budget. It is the lock
	// layer's sentinel re-exported under the public taxonomy.
	ErrDeadlockVictim = spi.ErrDeadlock

	// ErrLockTimeout reports that a lock wait exceeded the configured wait
	// budget. It is the lock layer's sentinel re-exported under the public
	// taxonomy.
	ErrLockTimeout = spi.ErrTimeout

	// ErrReadOnly reports a write operation attempted inside a read-only
	// (versioned-tier) transaction: the lock-free read path has no locks, no
	// undo images, and no compensation, so writes are refused outright.
	ErrReadOnly = errors.New("acc: write inside read-only transaction")
)

// Retryable reports whether err is a transient scheduling outcome that a
// fresh attempt of the same transaction may convert into a commit: a
// deadlock victim, a timed-out lock wait, or a wait aborted from outside
// (a forward step killed to let a compensation proceed). Final outcomes —
// commits, user aborts, compensated rollbacks (their effects were
// semantically reversed and their identifiers consumed), failed
// compensations, cancelled contexts — are not retryable. The in-process
// retry loops, the accd server, and the accclient pool all share this
// predicate.
func Retryable(err error) bool {
	if err == nil || IsCompensated(err) {
		return false
	}
	var cf *CompensationFailedError
	if errors.As(err, &cf) {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return errors.Is(err, spi.ErrDeadlock) || errors.Is(err, spi.ErrTimeout) ||
		errors.Is(err, spi.ErrAborted)
}

// canceled reports whether err stems from the caller's context being
// cancelled or past its deadline.
func canceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// CompensatedError reports that a transaction was rolled back by running its
// compensating step; Cause preserves the triggering error. It matches
// ErrAborted under errors.Is — the rollback is final — while errors.As
// still exposes the compensation itself.
type CompensatedError struct {
	Txn   string
	Cause error
}

// Error implements error.
func (e *CompensatedError) Error() string {
	return fmt.Sprintf("core: %s compensated: %v", e.Txn, e.Cause)
}

// Unwrap exposes the cause.
func (e *CompensatedError) Unwrap() error { return e.Cause }

// Is reports a match against ErrAborted: a compensated transaction's
// effects do not stand. The scheduling cause that triggered the rollback
// remains reachable through Unwrap, but Retryable refuses compensated
// outcomes regardless — the rollback consumed identifiers (e.g. TPC-C
// order numbers) and must not be replayed blindly.
func (e *CompensatedError) Is(target error) bool { return target == ErrAborted }

// IsCompensated reports whether err indicates a compensated rollback.
func IsCompensated(err error) bool {
	var ce *CompensatedError
	return errors.As(err, &ce)
}

// CompensationFailedError reports that a compensating step could not
// complete; the database may hold the transaction's partial effects. This is
// a serious condition (the paper's design makes it unreachable when
// reservations are declared correctly) and is never retried.
type CompensationFailedError struct {
	Txn   string
	Cause error
}

// Error implements error.
func (e *CompensationFailedError) Error() string {
	return fmt.Sprintf("core: compensation of %s failed: %v", e.Txn, e.Cause)
}

// Unwrap exposes the cause.
func (e *CompensationFailedError) Unwrap() error { return e.Cause }
