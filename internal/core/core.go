package core
