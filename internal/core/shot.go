package core

import (
	"context"

	"accdb/internal/spi"
)

// Multi-shot support (DESIGN.md §16). A cross-partition transaction runs as
// a sequence of ordinary local transactions — *shots* — one per partition,
// coordinated by accdb/internal/partition. The engine itself stays ignorant
// of the protocol; its only contribution is the stamp below: a shot's begin
// record carries the global transaction id and shot index, so recovery in
// each partition can resolve every shot's local fate (committed, aborted,
// compensated) and the coordinator can complete or undo the global
// transaction from the per-partition logs alone.

// ShotTag marks the next transaction run under the context as shot Shot of
// global transaction Global. Shot 0 is the home (originating-partition)
// transaction, positive indices are remote shots in plan order, and a
// negative index -k is the compensating undo of shot k.
type ShotTag struct {
	Global uint64
	Shot   int32
	// OnTxn, when non-nil, is invoked with the local transaction id of each
	// execution attempt, before the transaction's first lock request. The
	// coordinator uses it to map local waits-for vertices to global ids for
	// cross-partition deadlock detection.
	OnTxn func(spi.TxnID)
}

type shotTagKey struct{}

// WithShotTag returns a context that stamps transactions run under it with
// the given shot identity. The stamp applies to decomposed (ACC/two-level)
// runs; baseline mode has no multi-shot protocol.
func WithShotTag(ctx context.Context, tag ShotTag) context.Context {
	return context.WithValue(ctx, shotTagKey{}, tag)
}

// shotTagFrom extracts the shot stamp, if any.
func shotTagFrom(ctx context.Context) (ShotTag, bool) {
	tag, ok := ctx.Value(shotTagKey{}).(ShotTag)
	return tag, ok
}
