package core

import (
	"time"

	"accdb/internal/trace"
	"accdb/internal/wal"
)

// Option configures an Engine at construction. New applies options in order
// over the zero Options value, so later options win; WithOptions replaces
// the whole record at once for callers that assemble an Options struct from
// external configuration.
type Option func(*Options)

// WithMode selects the scheduler (ModeACC, ModeBaseline, ModeTwoLevel).
func WithMode(m Mode) Option {
	return func(o *Options) { o.Mode = m }
}

// WithWaitTimeout bounds individual lock waits (safety net; 0 = forever).
func WithWaitTimeout(d time.Duration) Option {
	return func(o *Options) { o.WaitTimeout = d }
}

// WithForceLatency sets the simulated log-force I/O time paid per forced
// record (per end-of-step under the ACC; per commit in the baseline).
func WithForceLatency(d time.Duration) Option {
	return func(o *Options) { o.ForceLatency = d }
}

// WithMaxStepRetries sets how many times a deadlock-victim step restarts
// before the transaction is rolled back by compensation (the paper's
// recurrence rule is 1, the default).
func WithMaxStepRetries(n int) Option {
	return func(o *Options) { o.MaxStepRetries = n }
}

// WithMaxTxnRetries bounds whole-transaction restarts.
func WithMaxTxnRetries(n int) Option {
	return func(o *Options) { o.MaxTxnRetries = n }
}

// WithEagerAssertionLocks selects the simplified §3.3 algorithm that locks
// an assertion's whole footprint before the step runs (requires
// Assertion.Items).
func WithEagerAssertionLocks(eager bool) Option {
	return func(o *Options) { o.EagerAssertionLocks = eager }
}

// WithEnv injects execution costs (the simulation testbed's server pool);
// nil executes inline.
func WithEnv(env ExecEnv) Option {
	return func(o *Options) { o.Env = env }
}

// WithRecordHistory captures a conflict-checkable access history (tests).
func WithRecordHistory(record bool) Option {
	return func(o *Options) { o.RecordHistory = record }
}

// WithTracer attaches the structured event bus to every layer; nil disables
// tracing at zero cost.
func WithTracer(t *trace.Tracer) Option {
	return func(o *Options) { o.Tracer = t }
}

// WithAnatomy attaches the latency-anatomy recorder (DESIGN.md §13): every
// span-less Run acquires an engine-owned span, so per-stage histograms and
// the slow-transaction flight recorder work for in-process callers too. Nil
// disables anatomy at zero cost.
func WithAnatomy(a *trace.Anatomy) Option {
	return func(o *Options) { o.Anatomy = a }
}

// WithWAL backs the engine with an existing write-ahead log — typically a
// disk-backed log from wal.Open. Nil keeps the default memory-only log.
func WithWAL(l *wal.Log) Option {
	return func(o *Options) { o.Log = l }
}

// WithEngineLabel names the engine in logs and configuration warnings.
// Single-engine processes can leave it empty; a partitioned cluster labels
// each engine ("partition 3") so a warning about one backend instance says
// which of the n engines it concerns.
func WithEngineLabel(label string) Option {
	return func(o *Options) { o.Label = label }
}

// WithVersionGCInterval sets the cadence of the background version-chain
// reaper (DESIGN.md §14). Zero keeps the 100ms default; negative disables
// the reaper so tests can drive ReapVersions deterministically.
func WithVersionGCInterval(d time.Duration) Option {
	return func(o *Options) { o.VersionGCInterval = d }
}

// WithOptions replaces the entire Options record. It exists for callers
// that build configuration dynamically (the experiment harness, tests) and
// composes with the targeted options: later options still override fields.
func WithOptions(o Options) Option {
	return func(dst *Options) { *dst = o }
}
