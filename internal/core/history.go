package core

import (
	"sync"

	"accdb/internal/spi"
)

// History recording and the serializability checker.
//
// The correctness tests use this to demonstrate the paper's central claim
// concretely: the baseline scheduler only ever produces conflict-
// serializable histories, while the ACC routinely produces histories that
// are NOT conflict serializable — yet still semantically correct (every
// postcondition holds and the consistency constraint is restored).

// Access is one recorded data access by a committed transaction.
type Access struct {
	Txn   uint64
	Seq   int // global order of the access
	Table string
	PK    spi.Key // empty for full-table scans
	Write bool
}

// History is a snapshot of recorded accesses, restricted at snapshot time to
// transactions that committed (or finished compensating).
type History struct {
	Accesses []Access
}

type history struct {
	mu        sync.Mutex
	seq       int
	accesses  []Access
	committed map[uint64]bool
}

func newHistory() *history {
	return &history{committed: make(map[uint64]bool)}
}

// record appends one access; cheap no-op when history is disabled.
func (e *Engine) record(txn *txnState, table string, pk spi.Key, write bool) {
	if e.hist == nil {
		return
	}
	h := e.hist
	h.mu.Lock()
	h.accesses = append(h.accesses, Access{
		Txn: uint64(txn.info.ID), Seq: h.seq, Table: table, PK: pk, Write: write,
	})
	h.seq++
	h.mu.Unlock()
}

// recordCommit marks txn's accesses as belonging to a finished transaction.
func (e *Engine) recordCommit(txn *txnState) {
	if e.hist == nil {
		return
	}
	h := e.hist
	h.mu.Lock()
	h.committed[uint64(txn.info.ID)] = true
	h.mu.Unlock()
}

func (h *history) snapshot() *History {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := &History{}
	for _, a := range h.accesses {
		if h.committed[a.Txn] {
			out.Accesses = append(out.Accesses, a)
		}
	}
	return out
}

// ConflictSerializable reports whether the history's committed transactions
// are conflict serializable: it builds the conflict graph (an edge T1→T2 for
// each pair of conflicting accesses where T1's access precedes T2's and at
// least one is a write to the same item) and checks it for cycles.
func (h *History) ConflictSerializable() bool {
	type itemID struct {
		table string
		pk    spi.Key
	}
	edges := make(map[uint64]map[uint64]bool)
	addEdge := func(a, b uint64) {
		if a == b {
			return
		}
		m, ok := edges[a]
		if !ok {
			m = make(map[uint64]bool)
			edges[a] = m
		}
		m[b] = true
	}
	byItem := make(map[itemID][]Access)
	for _, a := range h.Accesses {
		byItem[itemID{a.Table, a.PK}] = append(byItem[itemID{a.Table, a.PK}], a)
	}
	for _, accs := range byItem {
		for i := 0; i < len(accs); i++ {
			for j := i + 1; j < len(accs); j++ {
				if accs[i].Write || accs[j].Write {
					addEdge(accs[i].Txn, accs[j].Txn)
				}
			}
		}
	}
	// Cycle detection by iterative three-color DFS.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[uint64]int)
	var stack []uint64
	for start := range edges {
		if color[start] != white {
			continue
		}
		stack = append(stack[:0], start)
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			if color[n] == white {
				color[n] = gray
				for m := range edges[n] {
					if color[m] == gray {
						return false
					}
					if color[m] == white {
						stack = append(stack, m)
					}
				}
				continue
			}
			color[n] = black
			stack = stack[:len(stack)-1]
		}
	}
	return true
}
