package core

import (
	"errors"
	"fmt"

	"accdb/internal/interference"
	"accdb/internal/spi"
)

// Assertion declares an interstep assertion type (§3.1): one conjunct of a
// step's precondition that must stay true across step boundaries. The ACC
// never evaluates assertions at run time; it locks the items in their
// footprint and consults the interference tables. Eval exists only so tests
// can validate semantic correctness.
type Assertion struct {
	// ID is the assertion's entry in the interference tables.
	ID interference.AssertionID
	// Name is for diagnostics.
	Name string
	// Covers reports whether a lockable item belongs to this assertion's
	// footprint for the given transaction-instance arguments. It drives the
	// dynamic assertional-lock acquisition of the implemented one-level ACC:
	// whenever the owning transaction conventionally locks a covered item,
	// an A lock is attached to it.
	Covers func(args any, item spi.Item) bool
	// Items enumerates the complete footprint up front. It is required only
	// by the simplified §3.3 algorithm (Options.EagerAssertionLocks), which
	// locks every referenced item before the step begins.
	Items func(args any) []spi.Item
	// Eval checks the assertion against a quiescent database; optional,
	// used by correctness tests, never by the scheduler.
	Eval func(db *DB, args any) bool
}

// Step is one forward step of a decomposed transaction.
type Step struct {
	// Name is for diagnostics.
	Name string
	// Type is the step's entry in the interference tables.
	Type interference.StepTypeID
	// Pre lists the assertion conjuncts of this step's precondition beyond
	// the database consistency constraint. Following the simplified
	// algorithm's windows, pre(S_j) is assertionally locked from the start
	// of step j-1 (j > 0; for j = 0 from transaction start) and released
	// when step j completes.
	Pre []*Assertion
	// Body performs the step's work through the step context. Returning
	// ErrUserAbort (possibly wrapped) triggers rollback: compensation if any
	// earlier step completed, plain abort otherwise.
	Body func(tc *Ctx) error
}

// Compensation declares the compensating step of a transaction type. Per
// §3.4 the triple {I} S_1;...;S_j; CS_j {I ∧ Q_i} must be a theorem: Body,
// given the number of completed forward steps, semantically undoes them.
type Compensation struct {
	// Type is the compensating step's entry in the interference tables.
	// Forward steps attach reservations carrying this type to every item
	// they modify, so the compensation never waits on an assertional lock.
	Type interference.StepTypeID
	// Body compensates for the first `completed` forward steps.
	Body func(tc *Ctx, completed int) error
}

// TxnType is a design-time transaction declaration: the decomposition into
// steps, the compensation, and the work-area codec used by crash recovery.
type TxnType struct {
	Name string
	// ID is the transaction type's entry in the interference tables.
	ID    interference.TxnTypeID
	Steps []Step
	// MakeSteps, when set, derives the instance's step list from its
	// arguments (new-order has one order-line step per requested line). The
	// step *types* must still come from the fixed design-time registration;
	// only the sequence is instance-specific.
	MakeSteps func(args any) []Step
	// Comp is the compensating step; nil only for single-step transactions,
	// which never need compensation.
	Comp *Compensation
	// EncodeArgs serializes the instance's work area (its argument value,
	// including any state forward steps recorded into it, such as assigned
	// identifiers). It is stored in every forced end-of-step record so a
	// crash can be compensated. Optional: without it the transaction cannot
	// be compensated after a crash (it still compensates normally online).
	EncodeArgs func(args any) []byte
	// AppendArgs, when non-nil, is EncodeArgs in append form: it serializes
	// the work area onto dst and returns the extended slice, so the engine
	// can reuse one pooled scratch buffer across end-of-step records
	// instead of allocating per step. It must produce exactly the bytes
	// EncodeArgs would.
	AppendArgs func(dst []byte, args any) []byte
	// DecodeArgs reverses EncodeArgs during crash recovery.
	DecodeArgs func(data []byte) (any, error)
	// InterStatementCompute opts this type into the environment's
	// inter-statement compute time (§5.2 added it to the transactions whose
	// duration the experiment stretches: new-order and delivery).
	InterStatementCompute bool
}

// validate checks the declaration at registration time.
func (tt *TxnType) validate() error {
	if tt.Name == "" {
		return errors.New("core: transaction type needs a name")
	}
	if len(tt.Steps) == 0 && tt.MakeSteps == nil {
		return fmt.Errorf("core: %s: no steps", tt.Name)
	}
	if tt.ID == 0 && tt.ID != interference.LegacyTxn {
		return fmt.Errorf("core: %s: missing interference table registration", tt.Name)
	}
	for i, s := range tt.Steps {
		if s.Body == nil {
			return fmt.Errorf("core: %s step %d: nil body", tt.Name, i)
		}
		if s.Type == interference.NoStep && tt.ID != interference.LegacyTxn {
			return fmt.Errorf("core: %s step %d: missing step type", tt.Name, i)
		}
	}
	if (len(tt.Steps) > 1 || tt.MakeSteps != nil) && tt.Comp == nil {
		return fmt.Errorf("core: %s: multi-step transaction needs a compensation", tt.Name)
	}
	if tt.Comp != nil && tt.Comp.Body == nil {
		return fmt.Errorf("core: %s: compensation with nil body", tt.Name)
	}
	return nil
}

// stepsFor resolves the instance's step sequence.
func (tt *TxnType) stepsFor(args any) []Step {
	if tt.MakeSteps != nil {
		return tt.MakeSteps(args)
	}
	return tt.Steps
}

// activeAssertions returns the assertions that must be assertionally locked
// while step j of the given sequence runs: the current step's precondition
// and the next step's.
func activeAssertions(steps []Step, j int) []*Assertion {
	cur := steps[j].Pre
	if j+1 >= len(steps) {
		return cur
	}
	next := steps[j+1].Pre
	if len(cur) == 0 {
		return next
	}
	if len(next) == 0 {
		return cur
	}
	out := make([]*Assertion, 0, len(cur)+len(next))
	out = append(out, cur...)
	for _, a := range next {
		dup := false
		for _, c := range cur {
			if c.ID == a.ID {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, a)
		}
	}
	return out
}

// Run's error taxonomy (ErrUserAbort, CompensatedError, Retryable, ...)
// lives in errors.go.
