package core

// Versioned reads and consistency tiers (DESIGN.md §14, CONSISTENCY.md).
//
// The assertional model makes read-only work uniquely cheap: an interstep
// assertion never depends on a reader, so a consistent snapshot can be served
// with no A/D/C locks at all. This file implements that read path: the engine
// stamps a commit sequence number (CSN) on every batch of row versions it
// publishes at an exposure point — end-of-step force, commit force,
// compensation-done force — and read-only transactions resolve rows against
// those per-key version chains (internal/storage version.go) instead of the
// lock manager. A snapshot-tier reader holds one CSN for its whole lifetime,
// acquires zero locks, writes zero log records, and never appears in the
// waits-for graph; a background reaper garbage-collects chain versions behind
// the oldest live snapshot.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"accdb/internal/metrics"
	"accdb/internal/spi"
	"accdb/internal/trace"
)

// ReadTier selects the consistency level of a read-only transaction. The
// zero value is the fully locked path, so existing callers and pre-v4 wire
// peers are unchanged.
type ReadTier uint8

const (
	// TierLocked routes reads through the lock manager like any other
	// transaction: strict 2PL within steps, full assertional protocol. This
	// is the default and the only tier that permits writes.
	TierLocked ReadTier = iota
	// TierASAP returns each row's latest exposed version with no cross-row
	// consistency claim — the cheapest read, one atomic load per statement.
	// "Exposed" follows the paper's semantics: interstep states published at
	// an end-of-step force are readable, exactly as they are to locked
	// transactions once the step's locks release.
	TierASAP
	// TierReadCommitted resolves each statement against the CSN current at
	// that statement: every statement sees a consistent prefix of exposure
	// points, but two statements of one transaction may see different ones.
	TierReadCommitted
	// TierSnapshot fixes one CSN for the whole read-only transaction: every
	// row resolves as of that CSN, giving a stable transaction-wide view.
	// The snapshot registers in the engine's live-snapshot table so the
	// reaper preserves the versions it can still reach.
	TierSnapshot

	tierMax
)

// String names the tier as it appears in flags, metrics labels, and errors.
func (t ReadTier) String() string {
	switch t {
	case TierLocked:
		return "locked"
	case TierASAP:
		return "asap"
	case TierReadCommitted:
		return "committed"
	case TierSnapshot:
		return "snapshot"
	default:
		return fmt.Sprintf("tier(%d)", uint8(t))
	}
}

// ValidTier reports whether b encodes a known tier (wire validation).
func ValidTier(b uint8) bool { return b < uint8(tierMax) }

// ParseReadTier maps a flag string onto a tier (accbench -read-tier).
func ParseReadTier(s string) (ReadTier, error) {
	switch s {
	case "", "locked":
		return TierLocked, nil
	case "asap":
		return TierASAP, nil
	case "committed", "read-committed":
		return TierReadCommitted, nil
	case "snapshot":
		return TierSnapshot, nil
	default:
		return TierLocked, fmt.Errorf("core: unknown read tier %q (want locked|asap|committed|snapshot)", s)
	}
}

// defaultVersionGCInterval is the reaper cadence when Options leaves
// VersionGCInterval zero.
const defaultVersionGCInterval = 100 * time.Millisecond

// CSN returns the engine's current commit sequence number: the newest fully
// published exposure point. A snapshot opened now reads as of this value.
func (e *Engine) CSN() uint64 { return e.csnClock.Load() }

// publishWrites installs one exposure unit's after-images into the version
// chains under a freshly assigned CSN and only then advances the clock, so a
// reader that loads the clock always sees a fully installed prefix. Within
// the unit, the last write to a key wins and the first write's before-image
// seeds the chain if garbage collection dropped it. Returns the assigned CSN
// (0 when there was nothing to publish).
func (e *Engine) publishWrites(writes []writeRec) spi.CSN {
	if len(writes) == 0 {
		return 0
	}
	e.pubMu.Lock()
	csn := spi.CSN(e.csnClock.Load() + 1)
	for i := range writes {
		w := &writes[i]
		first := true
		for j := range writes[:i] {
			if writes[j].table == w.table && writes[j].pk == w.pk {
				first = false
				break
			}
		}
		if !first {
			continue // this key's publication was handled at its first record
		}
		after := w.after
		for j := i + 1; j < len(writes); j++ {
			if writes[j].table == w.table && writes[j].pk == w.pk {
				after = writes[j].after
			}
		}
		if t := e.db.Table(w.table); t != nil {
			t.PublishVersion(w.pk, w.before, after, csn)
			e.versionsPublished.Add(1)
		}
	}
	e.csnClock.Store(uint64(csn))
	e.pubMu.Unlock()
	return csn
}

// Snapshot is a stable read point: every row resolved through it reflects
// the database as of the CSN captured at OpenSnapshot. Close it promptly —
// the reaper preserves every version an open snapshot can still reach.
type Snapshot struct {
	e      *Engine
	id     uint64
	csn    spi.CSN
	opened time.Time
}

// OpenSnapshot captures the current CSN and registers it live. The returned
// handle runs read-only transactions against that fixed point; RunRead at
// TierSnapshot does the same for a single call.
func (e *Engine) OpenSnapshot() *Snapshot {
	id, csn := e.openSnapshot()
	return &Snapshot{e: e, id: id, csn: csn, opened: time.Now()}
}

// CSN returns the snapshot's fixed commit sequence number.
func (s *Snapshot) CSN() uint64 { return uint64(s.csn) }

// Run executes the named read-only transaction type against the snapshot's
// fixed CSN. Zero locks, zero log records; write operations fail with
// ErrReadOnly.
func (s *Snapshot) Run(ctx context.Context, name string, args any) error {
	tt := s.e.Type(name)
	if tt == nil {
		return fmt.Errorf("%w: %q", ErrUnknownTxnType, name)
	}
	return s.e.runReadBody(ctx, tt, args, TierSnapshot, s.csn, nil)
}

// Close deregisters the snapshot, releasing its versions to the reaper.
// Closing twice is a no-op.
func (s *Snapshot) Close() {
	if s.e == nil {
		return
	}
	s.e.closeSnapshot(s.id, s.csn, time.Since(s.opened))
	s.e = nil
}

// openSnapshot registers a live read point. The CSN is loaded under snapMu —
// the same mutex the reaper computes its floor under — so a snapshot is
// either visible to a concurrent floor computation or opens at a CSN no
// older than the floor that computation used; either way the versions it
// needs survive.
func (e *Engine) openSnapshot() (uint64, spi.CSN) {
	e.snapMu.Lock()
	e.nextSnap++
	id := e.nextSnap
	csn := spi.CSN(e.csnClock.Load())
	e.snaps[id] = csn
	e.snapMu.Unlock()
	e.snapshotsOpened.Add(1)
	if e.tracer != nil {
		ev := trace.Ev(trace.KindSnapshotOpen, id)
		ev.Dur = int64(csn)
		e.tracer.Emit(ev)
	}
	return id, csn
}

func (e *Engine) closeSnapshot(id uint64, csn spi.CSN, held time.Duration) {
	e.snapMu.Lock()
	delete(e.snaps, id)
	e.snapMu.Unlock()
	if e.tracer != nil {
		ev := trace.Ev(trace.KindSnapshotClose, id)
		ev.Dur = int64(held)
		ev.Extra = fmt.Sprintf("csn=%d", csn)
		e.tracer.Emit(ev)
	}
}

// snapshotFloor is the oldest CSN any live snapshot may still read at; with
// no snapshot open it is the current clock, so quiescent chains collapse to
// one version (and usually drop entirely).
func (e *Engine) snapshotFloor() spi.CSN {
	e.snapMu.Lock()
	defer e.snapMu.Unlock()
	floor := spi.CSN(e.csnClock.Load())
	for _, csn := range e.snaps {
		if csn < floor {
			floor = csn
		}
	}
	return floor
}

// LiveSnapshots reports the number of currently open snapshots.
func (e *Engine) LiveSnapshots() int {
	e.snapMu.Lock()
	defer e.snapMu.Unlock()
	return len(e.snaps)
}

// ReapVersions runs one garbage-collection pass: every table's chains are
// truncated to the newest version at or below the snapshot floor, and
// quiescent chains are dropped. The background reaper calls this on its
// interval; tests call it directly.
func (e *Engine) ReapVersions() (pruned, dropped int) {
	floor := e.snapshotFloor()
	for _, name := range e.db.store.Names() {
		if t := e.db.Table(name); t != nil {
			p, d := t.PruneVersions(floor)
			pruned += p
			dropped += d
		}
	}
	e.gcRuns.Add(1)
	e.gcPruned.Add(uint64(pruned))
	e.gcDropped.Add(uint64(dropped))
	if e.tracer != nil && (pruned > 0 || dropped > 0) {
		ev := trace.Ev(trace.KindSnapshotGC, uint64(floor))
		ev.Dur = int64(pruned)
		ev.Extra = fmt.Sprintf("dropped=%d", dropped)
		e.tracer.Emit(ev)
	}
	return pruned, dropped
}

// resetVersions drops every chain in the catalog (engine attach, recovery
// epilogue): the base rows are committed and quiescent at those moments, so
// the as-of fallback is exact.
func (e *Engine) resetVersions() {
	for _, name := range e.db.store.Names() {
		if t := e.db.Table(name); t != nil {
			t.ResetVersions()
		}
	}
}

// startReaper launches the background GC goroutine per the configured
// interval; Close stops it. A negative interval disables it.
func (e *Engine) startReaper() {
	interval := e.opt.VersionGCInterval
	if interval < 0 {
		return
	}
	if interval == 0 {
		interval = defaultVersionGCInterval
	}
	e.reaperStop = make(chan struct{})
	e.reaperDone = make(chan struct{})
	go func() {
		defer close(e.reaperDone)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				e.ReapVersions()
			case <-e.reaperStop:
				return
			}
		}
	}()
}

func (e *Engine) stopReaper() {
	if e.reaperStop == nil {
		return
	}
	close(e.reaperStop)
	<-e.reaperDone
}

// VersionMetrics aggregates the versioned-read subsystem's counters and the
// catalog-wide chain footprint (the /metrics series).
type VersionMetrics struct {
	// CSN is the current commit sequence number.
	CSN uint64
	// Published counts versions installed into chains.
	Published uint64
	// SnapshotsOpened counts snapshots ever opened; LiveSnapshots is the
	// number still open.
	SnapshotsOpened uint64
	LiveSnapshots   int
	// GCRuns, GCPruned, GCDropped count reaper passes, versions reclaimed,
	// and whole chains dropped.
	GCRuns    uint64
	GCPruned  uint64
	GCDropped uint64
	// Chains and ChainVersions are the current catalog-wide footprint.
	Chains        int
	ChainVersions int
}

// Versions snapshots the versioned-read subsystem's metrics.
func (e *Engine) Versions() VersionMetrics {
	m := VersionMetrics{
		CSN:             e.csnClock.Load(),
		Published:       e.versionsPublished.Load(),
		SnapshotsOpened: e.snapshotsOpened.Load(),
		LiveSnapshots:   e.LiveSnapshots(),
		GCRuns:          e.gcRuns.Load(),
		GCPruned:        e.gcPruned.Load(),
		GCDropped:       e.gcDropped.Load(),
	}
	for _, name := range e.db.store.Names() {
		if t := e.db.Table(name); t != nil {
			vs := t.VersionStats()
			m.Chains += vs.Chains
			m.ChainVersions += vs.Versions
		}
	}
	return m
}

// ReadTierSummaries returns per-tier latency summaries of the read-only
// transactions this engine served (tier name → summary).
func (e *Engine) ReadTierSummaries() map[string]metrics.Summary {
	return e.readRec.ByType()
}

// RunRead executes the named transaction type read-only at the given tier.
// At TierLocked it is exactly Run. At the versioned tiers the transaction
// acquires no locks, appends no log records, and never joins the waits-for
// graph; any write operation inside a step body fails the transaction with
// ErrReadOnly. It is RunReadContext under context.Background().
func (e *Engine) RunRead(name string, args any, tier ReadTier) error {
	return e.RunReadContext(context.Background(), name, args, tier)
}

// RunReadContext is RunRead under a caller context, checked between steps.
func (e *Engine) RunReadContext(ctx context.Context, name string, args any, tier ReadTier) error {
	tt := e.Type(name)
	if tt == nil {
		return fmt.Errorf("%w: %q", ErrUnknownTxnType, name)
	}
	return e.RunReadTypeContextSpan(ctx, tt, args, tier, nil)
}

// RunReadTypeContextSpan is RunReadContext for an already-resolved type with
// a latency-anatomy span threaded through (the network server's entry
// point). TierLocked delegates to the full scheduler.
func (e *Engine) RunReadTypeContextSpan(ctx context.Context, tt *TxnType, args any, tier ReadTier, sp *trace.Span) error {
	if tier == TierLocked {
		return e.RunTypeContextSpan(ctx, tt, args, sp)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if e.closed.Load() {
		return ErrEngineClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if sp == nil && e.anatomy != nil {
		sp = e.anatomy.Start(0, time.Time{})
		sp.EnterEngine()
		err := e.runReadTiered(ctx, tt, args, tier, sp)
		sp.ExitEngine()
		sp.SetStatus(spanStatus(err))
		sp.Finish()
		return err
	}
	return e.runReadTiered(ctx, tt, args, tier, sp)
}

// runReadTiered resolves the tier's read point, registering a snapshot for
// TierSnapshot so the reaper preserves its versions until the body finishes.
func (e *Engine) runReadTiered(ctx context.Context, tt *TxnType, args any, tier ReadTier, sp *trace.Span) error {
	var asOf spi.CSN
	if tier == TierSnapshot {
		id, csn := e.openSnapshot()
		start := time.Now()
		defer func() { e.closeSnapshot(id, csn, time.Since(start)) }()
		asOf = csn
	}
	return e.runReadBody(ctx, tt, args, tier, asOf, sp)
}

// runReadBody executes the type's step bodies sequentially against the
// versioned read path: no lock manager, no WAL, no exposure marks — the
// paper's reader-free waits-for graph made literal. Step preconditions are
// not re-evaluated: a published CSN prefix is by construction a state every
// discharged assertion held over (CONSISTENCY.md).
func (e *Engine) runReadBody(ctx context.Context, tt *TxnType, args any, tier ReadTier, asOf spi.CSN, sp *trace.Span) error {
	txn := &txnState{
		tt:    tt,
		args:  args,
		ctx:   ctx,
		steps: tt.stepsFor(args),
		info:  spi.NewTxn(spi.TxnID(e.nextTxn.Add(1)), tt.ID),
		span:  sp,
	}
	sp.SetTxn(uint64(txn.info.ID), tt.Name)
	start := time.Now()
	txn.spanEvent(trace.KindTxnBegin, tier.String(), tt.Name, 0)
	tc := &Ctx{e: e, txn: txn, readTier: tier, readCSN: asOf}
	for j := range txn.steps {
		if err := ctx.Err(); err != nil {
			e.readRec.Record(tier.String(), time.Since(start), metrics.Failed)
			return err
		}
		tc.stepIdx, tc.stepType = j, txn.steps[j].Type
		if err := txn.steps[j].Body(tc); err != nil {
			outcome := metrics.Failed
			if errors.Is(err, ErrAborted) {
				outcome = metrics.RolledBack
				e.userAborts.Add(1)
			}
			e.readRec.Record(tier.String(), time.Since(start), outcome)
			txn.spanEvent(trace.KindTxnAbort, tier.String(), tt.Name, int64(time.Since(start)))
			return fmt.Errorf("core: %s (%s read) failed: %w", tt.Name, tier, err)
		}
	}
	e.readRec.Record(tier.String(), time.Since(start), metrics.Committed)
	txn.spanEvent(trace.KindTxnCommit, tier.String(), tt.Name, int64(time.Since(start)))
	return nil
}
