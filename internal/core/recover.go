package core

import (
	"fmt"

	"accdb/internal/interference"
	"accdb/internal/spi"
	"accdb/internal/wal"
)

// Crash recovery (§3.4 "in the case of a system crash, compensating steps
// are used"). Steps are atomic: recovery replays the writes of every
// completed step (their results may already have been observed by committed
// transactions, so they cannot be undone) and discards in-flight steps.
// Transactions left with a completed prefix and no commit are then
// compensated using the work area saved in their last forced end-of-step
// record.
//
// Restart recovery runs in three passes over the durable log image:
//
//  1. Analysis (wal.Analyze) classifies every transaction and tolerates the
//     torn tail a mid-append crash leaves.
//  2. Redo (Analysis.Apply) reapplies, in log order, the writes of every
//     completed step and completed compensation over the loaded base state.
//  3. Undo-by-compensation: for each transaction with exposed interstep
//     state, the engine re-acquires its D-locks (exposure marks) and C-locks
//     (compensation reservations) on the items its completed steps wrote,
//     then runs the compensating step under them — so transactions admitted
//     after recovery observe exactly the protocol a live compensation gives.

// CompensatedTxn identifies one transaction rolled back by compensation
// during recovery.
type CompensatedTxn struct {
	// ID is the transaction's original log identity.
	ID uint64
	// Type is the registered transaction type name.
	Type string
	// Args is the decoded work area — the same value the compensating step
	// received. Consistency checkers use it to account for identifiers the
	// rolled-back transaction consumed (e.g. TPC-C order numbers).
	Args any
}

// RecoverResult summarizes a recovery run.
type RecoverResult struct {
	// Committed is the number of transactions that had committed.
	Committed int
	// Compensated lists the transactions rolled back by compensation during
	// recovery, by type name (in transaction-ID order).
	Compensated []string
	// CompensatedTxns carries the same transactions with their decoded work
	// areas, for consistency accounting.
	CompensatedTxns []CompensatedTxn
	// TornTail records tail damage found in the log image, if any. A Clean
	// tear is the normal mark of a mid-append crash.
	TornTail *wal.ErrTornTail
	// Analysis is the underlying log analysis.
	Analysis *wal.Analysis
}

// Recover rebuilds database state from a log image. The engine's catalog
// must hold the pre-log base state (for the experiments: the freshly loaded
// initial database, matching an archive copy plus log in a disk system).
// After replay, every pending multi-step transaction is compensated under
// re-acquired exposure and reservation locks, and the engine's transaction
// IDs are advanced past every logged ID so post-recovery work cannot collide
// with logged history — a second crash during or after recovery analyzes
// cleanly.
func (e *Engine) Recover(logData []byte) (*RecoverResult, error) {
	analysis, err := wal.Analyze(logData)
	if err != nil {
		return nil, err
	}
	if torn := analysis.TornTail; torn != nil && !torn.Clean() {
		// A non-clean tear means durable records were destroyed — committed
		// work may be missing from the prefix. Redo would silently produce a
		// state inconsistent with what the system once acknowledged.
		return nil, fmt.Errorf("core: recovery: log is damaged beyond a crash tail: %w", torn)
	}
	err = analysis.Apply(logData, func(table string, pk spi.Key, after spi.Row) {
		t := e.db.Table(table)
		if t != nil {
			t.Apply(pk, after)
		}
	})
	if err != nil {
		return nil, err
	}
	// New transactions — the re-admitted workload, and the compensations
	// below — must not reuse logged IDs, or a second crash would interleave
	// two unrelated histories under one ID.
	for {
		cur := e.nextTxn.Load()
		if cur >= analysis.MaxTxn || e.nextTxn.CompareAndSwap(cur, analysis.MaxTxn) {
			break
		}
	}
	res := &RecoverResult{Analysis: analysis, TornTail: analysis.TornTail}
	for _, t := range analysis.Txns {
		if t.Committed {
			res.Committed++
		}
	}
	for _, pending := range analysis.Pending() {
		tt := e.Type(pending.Type)
		if tt == nil {
			return nil, fmt.Errorf("core: recovery: unknown transaction type %q", pending.Type)
		}
		if tt.DecodeArgs == nil {
			return nil, fmt.Errorf("core: recovery: %s has no work-area decoder", pending.Type)
		}
		args, err := tt.DecodeArgs(pending.WorkArea)
		if err != nil {
			return nil, fmt.Errorf("core: recovery: decoding work area of %s: %w", pending.Type, err)
		}
		// The compensation runs under the transaction's ORIGINAL identity, so
		// its CompBegin/CompDone records land in the log under the logged ID
		// — a second crash after this point re-analyzes the transaction as
		// compensated instead of compensating it twice.
		txn := &txnState{
			tt:   tt,
			args: args,
			info: spi.NewTxn(spi.TxnID(pending.ID), tt.ID),
		}
		txn.info.SetCompletedSteps(pending.CompletedSteps)
		// Re-acquire the D- and C-locks the crash dissolved: the completed
		// steps' written items are in exposed interstep state until the
		// compensation commits, and the reservation is what guarantees the
		// compensating step cannot deadlock against post-recovery traffic.
		compType := interference.NoStep
		if tt.Comp != nil {
			compType = tt.Comp.Type
		}
		for _, w := range pending.Written {
			item := spi.RowItem(w.Table, w.PK)
			e.lm.AttachExposure(txn.info, item)
			e.lm.AttachReservation(txn.info, item, compType)
		}
		if err := e.compensate(txn, pending.CompletedSteps); err != nil {
			return nil, err
		}
		res.Compensated = append(res.Compensated, tt.Name)
		res.CompensatedTxns = append(res.CompensatedTxns, CompensatedTxn{
			ID: pending.ID, Type: tt.Name, Args: args,
		})
	}
	// Redo replayed writes through Table.Apply, which seeds version chains
	// with un-stamped pre-images; the compensations above published more.
	// The database is now committed and quiescent, so drop the chains — the
	// as-of base-row fallback is exact, and stale pre-crash CSNs must not
	// leak into the fresh clock's numbering.
	e.resetVersions()
	return res, nil
}

// RecoverLog is Recover over a reopened disk-backed log: it recovers from
// the log's durable image so the engine can resume appending to the same
// log afterwards. wal.Open already truncated any torn tail physically, so
// the image analyzes clean; the tear Open found is carried into the result.
func (e *Engine) RecoverLog(l *wal.Log) (*RecoverResult, error) {
	res, err := e.Recover(l.Recovered())
	if res != nil && res.TornTail == nil {
		res.TornTail = l.TornTail()
	}
	return res, err
}
