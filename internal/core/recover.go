package core

import (
	"fmt"

	"accdb/internal/lock"
	"accdb/internal/storage"
	"accdb/internal/wal"
)

// Crash recovery (§3.4 "in the case of a system crash, compensating steps
// are used"). Steps are atomic: recovery replays the writes of every
// completed step (their results may already have been observed by committed
// transactions, so they cannot be undone) and discards in-flight steps.
// Transactions left with a completed prefix and no commit are then
// compensated using the work area saved in their last forced end-of-step
// record.

// RecoverResult summarizes a recovery run.
type RecoverResult struct {
	// Committed is the number of transactions that had committed.
	Committed int
	// Compensated lists the transactions rolled back by compensation during
	// recovery, by type name.
	Compensated []string
	// Analysis is the underlying log analysis.
	Analysis *wal.Analysis
}

// Recover rebuilds database state from a log image. The engine's catalog
// must hold the pre-log base state (for the experiments: the freshly loaded
// initial database, matching an archive copy plus log in a disk system).
// After replay, every pending multi-step transaction is compensated.
func (e *Engine) Recover(logData []byte) (*RecoverResult, error) {
	analysis, err := wal.Analyze(logData)
	if err != nil {
		return nil, err
	}
	err = analysis.Apply(logData, func(table string, pk storage.Key, after storage.Row) {
		t := e.db.Catalog.Table(table)
		if t != nil {
			t.Apply(pk, after)
		}
	})
	if err != nil {
		return nil, err
	}
	res := &RecoverResult{Analysis: analysis}
	for _, t := range analysis.Txns {
		if t.Committed {
			res.Committed++
		}
	}
	for _, pending := range analysis.Pending() {
		tt := e.Type(pending.Type)
		if tt == nil {
			return nil, fmt.Errorf("core: recovery: unknown transaction type %q", pending.Type)
		}
		if tt.DecodeArgs == nil {
			return nil, fmt.Errorf("core: recovery: %s has no work-area decoder", pending.Type)
		}
		args, err := tt.DecodeArgs(pending.WorkArea)
		if err != nil {
			return nil, fmt.Errorf("core: recovery: decoding work area of %s: %w", pending.Type, err)
		}
		txn := &txnState{
			tt:   tt,
			args: args,
			info: lock.NewTxnInfo(lock.TxnID(e.nextTxn.Add(1)), tt.ID),
		}
		txn.info.SetCompletedSteps(pending.CompletedSteps)
		if err := e.compensate(txn, pending.CompletedSteps); err != nil {
			return nil, err
		}
		res.Compensated = append(res.Compensated, tt.Name)
	}
	return res, nil
}
