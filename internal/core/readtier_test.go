package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"accdb/internal/spi"
)

// auditArgs collects a read-only pass over the accounts table.
type auditArgs struct {
	Balances map[int64]int64
	Total    int64
}

// registerAudit adds a single-step read-only type that sums every account.
// It never writes, so it is eligible for all versioned tiers.
func registerAudit(t testing.TB, s *testSys) {
	t.Helper()
	s.eng.MustRegister(&TxnType{
		Name: "audit", ID: s.txnTransfer,
		Steps: []Step{{
			Name: "sum", Type: s.stepDebit,
			Body: func(tc *Ctx) error {
				a := tc.Args().(*auditArgs)
				a.Balances = map[int64]int64{}
				a.Total = 0
				return tc.Scan("accounts", func(row spi.Row) error {
					id, bal := row[0].Int64(), row[s.balCol].Int64()
					a.Balances[id] = bal
					a.Total += bal
					return nil
				})
			},
		}},
	})
}

// registerPoke adds a single-step type that writes — for asserting the
// versioned tiers reject writes with ErrReadOnly.
func registerPoke(t *testing.T, s *testSys) {
	t.Helper()
	s.eng.MustRegister(&TxnType{
		Name: "poke", ID: s.txnTransfer,
		Steps: []Step{{
			Name: "poke", Type: s.stepDebit,
			Body: func(tc *Ctx) error {
				return tc.Update("accounts", []spi.Value{spi.I64(1)}, func(row spi.Row) error {
					row[s.balCol] = spi.I64(0)
					return nil
				})
			},
		}},
	})
}

// TestSnapshotReadAcquiresZeroLocks is the tentpole's acceptance assertion:
// a snapshot-tier read takes no locks at all (the lock manager's acquisition
// counter does not move), appends no log records, and leaves the waits-for
// graph empty — it can neither block nor be blocked, so it can never deadlock.
func TestSnapshotReadAcquiresZeroLocks(t *testing.T) {
	s := newTestSys(t, ModeACC, func(o *Options) { o.VersionGCInterval = -1 })
	defer s.eng.Close()
	registerAudit(t, s)
	if err := s.eng.Run("transfer", &transferArgs{From: 1, To: 2, Amount: 30}); err != nil {
		t.Fatal(err)
	}

	before := s.eng.Locks().Stats()
	wal := s.eng.Log().Snapshot()
	commits := s.eng.Snapshot().Commits

	for _, tier := range []ReadTier{TierASAP, TierReadCommitted, TierSnapshot} {
		a := &auditArgs{}
		if err := s.eng.RunRead("audit", a, tier); err != nil {
			t.Fatalf("%s: %v", tier, err)
		}
		if a.Total != 600 || a.Balances[1] != 70 || a.Balances[2] != 130 {
			t.Fatalf("%s: read %+v, want committed state", tier, a)
		}
	}

	after := s.eng.Locks().Stats()
	if after.Acquisitions != before.Acquisitions || after.Waits != before.Waits {
		t.Fatalf("versioned reads touched the lock manager: %+v -> %+v", before, after)
	}
	snap := s.eng.Locks().Snapshot()
	if snap.GrantCount() != 0 || snap.WaiterCount() != 0 || len(snap.Edges) != 0 {
		t.Fatalf("versioned reads left lock-table state: %s", snap.String())
	}
	if ws := s.eng.Log().Snapshot(); ws.Records != wal.Records {
		t.Fatalf("versioned reads appended log records: %d -> %d", wal.Records, ws.Records)
	}
	if s.eng.Snapshot().Commits != commits {
		t.Fatal("versioned reads counted as commits")
	}
	sums := s.eng.ReadTierSummaries()
	for _, tier := range []ReadTier{TierASAP, TierReadCommitted, TierSnapshot} {
		if sums[tier.String()].Count != 1 {
			t.Fatalf("per-tier latency not recorded: %+v", sums)
		}
	}
}

// TestVersionedTierRejectsWrites: any write op inside a versioned-tier read
// fails with ErrReadOnly and mutates nothing.
func TestVersionedTierRejectsWrites(t *testing.T) {
	s := newTestSys(t, ModeACC, func(o *Options) { o.VersionGCInterval = -1 })
	defer s.eng.Close()
	registerPoke(t, s)
	err := s.eng.RunRead("poke", nil, TierSnapshot)
	if !errors.Is(err, ErrReadOnly) {
		t.Fatalf("got %v, want ErrReadOnly", err)
	}
	if s.balance(t, 1) != 100 {
		t.Fatal("rejected write mutated the row")
	}
}

// TestSnapshotStableView has a long-lived snapshot opened over the loaded
// (quiescent) state while 32 writers churn the same keys with transfers. The
// snapshot must see exactly the opened state — every account at its original
// 100 — for its entire lifetime, while read-ASAP observes the churn. Run
// under -race this also exercises publish/read interleavings.
func TestSnapshotStableView(t *testing.T) {
	s := newTestSys(t, ModeACC, func(o *Options) { o.VersionGCInterval = time.Millisecond })
	defer s.eng.Close()
	registerAudit(t, s)

	snap := s.eng.OpenSnapshot()
	defer snap.Close()

	const writers = 32
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var churned atomic.Int64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			from := int64(w%6) + 1
			to := from%6 + 1
			for {
				select {
				case <-stop:
					return
				default:
				}
				err := s.eng.Run("transfer", &transferArgs{From: from, To: to, Amount: 1})
				if err == nil {
					churned.Add(1)
				} else if !Retryable(err) && !errors.Is(err, ErrAborted) {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	deadline := time.After(500 * time.Millisecond)
	reads := 0
	for done := false; !done; {
		select {
		case <-deadline:
			done = true
		default:
			a := &auditArgs{}
			if err := snap.Run(context.Background(), "audit", a); err != nil {
				t.Fatal(err)
			}
			reads++
			for id := int64(1); id <= 6; id++ {
				if a.Balances[id] != 100 {
					t.Fatalf("snapshot view moved after %d reads: account %d = %d, want 100",
						reads, id, a.Balances[id])
				}
			}
		}
	}
	close(stop)
	wg.Wait()
	if churned.Load() == 0 {
		t.Fatal("writers made no progress; the stability check proved nothing")
	}
	// The writers are done: read-ASAP now sees the final committed state,
	// which transfers keep at the same grand total.
	a := &auditArgs{}
	if err := s.eng.RunRead("audit", a, TierASAP); err != nil {
		t.Fatal(err)
	}
	if a.Total != 600 {
		t.Fatalf("post-churn ASAP total = %d, want 600", a.Total)
	}
}

// TestVersionGCTruncatesBehindSnapshot: chains grow while a snapshot pins
// them, the reaper cannot collect past the snapshot's CSN, and once the
// oldest snapshot closes a pass truncates every chain back to quiescence
// (dropping them entirely, since the bank is idle).
func TestVersionGCTruncatesBehindSnapshot(t *testing.T) {
	s := newTestSys(t, ModeACC, func(o *Options) { o.VersionGCInterval = -1 })
	defer s.eng.Close()
	registerAudit(t, s)

	if err := s.eng.Run("transfer", &transferArgs{From: 1, To: 2, Amount: 5}); err != nil {
		t.Fatal(err)
	}
	snap := s.eng.OpenSnapshot()
	for i := 0; i < 10; i++ {
		if err := s.eng.Run("transfer", &transferArgs{From: 1, To: 2, Amount: 1}); err != nil {
			t.Fatal(err)
		}
	}
	grown := s.eng.Versions()
	if grown.ChainVersions == 0 {
		t.Fatal("no chains grew under load")
	}

	// With the snapshot live, GC must preserve its view.
	s.eng.ReapVersions()
	a := &auditArgs{}
	if err := snap.Run(context.Background(), "audit", a); err != nil {
		t.Fatal(err)
	}
	if a.Balances[1] != 95 || a.Balances[2] != 105 {
		t.Fatalf("GC corrupted the pinned snapshot: %+v", a.Balances)
	}

	snap.Close()
	if got := s.eng.LiveSnapshots(); got != 0 {
		t.Fatalf("%d snapshots live after close", got)
	}
	pruned, dropped := s.eng.ReapVersions()
	if pruned == 0 || dropped == 0 {
		t.Fatalf("reap after close: pruned=%d dropped=%d; want full collection", pruned, dropped)
	}
	if vm := s.eng.Versions(); vm.ChainVersions != 0 {
		t.Fatalf("quiescent engine still holds %d chain versions", vm.ChainVersions)
	}
	// Reads still correct off the base rows.
	if err := s.eng.RunRead("audit", a, TierSnapshot); err != nil {
		t.Fatal(err)
	}
	if a.Balances[1] != 85 || a.Balances[2] != 115 {
		t.Fatalf("post-GC read = %+v", a.Balances)
	}
}

// TestReadCommittedSeesExposurePoints: a committed-tier statement sees the
// interstep state an end-of-step force exposed (the paper's semantics: those
// states are readable by locked transactions too once step locks release),
// while a snapshot fixed before the transfer still sees the original values.
func TestReadTierExposureSemantics(t *testing.T) {
	s := newTestSys(t, ModeACC, func(o *Options) { o.VersionGCInterval = -1 })
	defer s.eng.Close()
	registerAudit(t, s)

	snap := s.eng.OpenSnapshot()
	defer snap.Close()

	probed := make(chan map[int64]int64, 1)
	err := s.eng.Run("transfer", &transferArgs{
		From: 1, To: 2, Amount: 30,
		BeforeCredit: func() {
			// The debit step's exposure point has published: a committed-tier
			// read from another goroutine (no locks, so no self-deadlock even
			// though the transfer still holds its locks) sees the debit.
			a := &auditArgs{}
			if err := s.eng.RunRead("audit", a, TierReadCommitted); err != nil {
				probed <- nil
				panic(err)
			}
			probed <- a.Balances
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mid := <-probed
	if mid[1] != 70 || mid[2] != 100 {
		t.Fatalf("committed-tier interstep view = %v, want debit exposed (70), credit not (100)", mid)
	}
	a := &auditArgs{}
	if err := snap.Run(context.Background(), "audit", a); err != nil {
		t.Fatal(err)
	}
	if a.Balances[1] != 100 || a.Balances[2] != 100 {
		t.Fatalf("pre-transfer snapshot moved: %v", a.Balances)
	}
}
