// Package core implements the paper's primary contribution: the one-level
// assertional concurrency control (ACC), together with the baseline
// strict-2PL scheduler (the "unmodified system" of §5) and a conservative
// two-level dispatcher (§3.2's earlier design) used for ablation.
//
// The engine executes transactions that were decomposed at design time into
// steps (§3.1). Within a step it uses strict two-phase locking on a
// table/partition/row hierarchy, so every step is atomic and isolated;
// between steps conventional locks are released and only assertional locks,
// exposure marks and compensation reservations remain. Interference is
// never evaluated at run time — it is looked up in the design-time tables of
// package interference, exactly as the paper prescribes.
//
// The scheduler reaches its backends — the row store and the lock service —
// only through the interfaces of accdb/internal/spi; the concrete
// implementations are selected through the SPI registry (see NewDB's
// WithBackend/WithStore options), and this package imports neither
// accdb/internal/storage nor accdb/internal/lock. CI enforces that import
// boundary (tools/doccheck -boundary).
package core

import (
	"fmt"
	"sync"

	"accdb/internal/spi"
)

// DB is a database: an SPI row store plus the partition declarations that
// define the middle granule of the lock hierarchy (the stand-in for Ingres
// page locks). Partition columns must be a subset of the primary key so that
// both point accesses and inserts can derive the partition of a row.
type DB struct {
	store   spi.Store
	backend string

	mu    sync.RWMutex
	parts map[string]*partition
}

type partition struct {
	cols  []int // ordinals into the schema
	pkPos []int // position of each partition column within the PK value list
}

// PartIndex is the name of the automatically created ordered index over a
// table's partition columns; ScanPartition uses it.
const PartIndex = "__part"

// DBOption configures NewDB.
type DBOption func(*dbConfig)

type dbConfig struct {
	backend string
	store   spi.Store
}

// WithBackend selects a registered SPI backend by name (see spi.Backends).
// The default is spi.DefaultBackend(): the ACCDB_BACKEND environment
// variable, or the B+-tree heap when unset.
func WithBackend(name string) DBOption {
	return func(c *dbConfig) { c.backend = name }
}

// WithStore supplies a concrete spi.Store instance, bypassing the registry;
// use it to embed the engine over a custom backend without registering it.
func WithStore(s spi.Store) DBOption {
	return func(c *dbConfig) { c.store = s }
}

// NewDB creates an empty database over the configured backend. An unknown
// backend name panics: the engine cannot run without a store, so this is a
// wiring bug (or an ACCDB_BACKEND typo) best surfaced at startup.
func NewDB(opts ...DBOption) *DB {
	var c dbConfig
	for _, apply := range opts {
		apply(&c)
	}
	store := c.store
	name := c.backend
	if store == nil {
		if name == "" {
			name = spi.DefaultBackend()
		}
		var err error
		store, err = spi.OpenStore(name)
		if err != nil {
			panic(err)
		}
	} else if name == "" {
		// A caller-supplied store has no registry name; diagnostics still
		// deserve something better than an empty string.
		name = "custom"
	}
	return &DB{store: store, backend: name, parts: make(map[string]*partition)}
}

// Store returns the underlying SPI row store.
func (db *DB) Store() spi.Store { return db.store }

// Backend returns the name of the storage backend this database opened —
// the registry name, or "custom" for a store supplied via WithStore. It is
// what configuration warnings cite so multi-engine setups can tell which
// backend refused an option.
func (db *DB) Backend() string { return db.backend }

// Table returns the named table, or nil.
func (db *DB) Table(name string) spi.Table { return db.store.Table(name) }

// CreateTable creates a table. If partitionBy columns are given they define
// the table's partition granule: scans of a partition take a shared
// partition lock and inserts/deletes take an exclusive one, which both
// serializes structural changes the way page locks did in Ingres and closes
// the phantom window for assertions that quantify over a partition. An
// ordered index named PartIndex over the partition columns is created
// automatically.
func (db *DB) CreateTable(schema *spi.Schema, partitionBy ...string) (spi.Table, error) {
	// Validate the partition declaration before touching the store, so a
	// bad declaration does not leave a half-created table behind.
	pkSet := make(map[int]bool, len(schema.PK))
	for _, c := range schema.PK {
		pkSet[c] = true
	}
	cols := make([]int, len(partitionBy))
	pkPos := make([]int, len(partitionBy))
	for i, name := range partitionBy {
		c := schema.Col(name)
		if c < 0 {
			return nil, fmt.Errorf("core: partition column %q not in %s", name, schema.Name)
		}
		if !pkSet[c] {
			return nil, fmt.Errorf("core: partition column %q of %s must be part of the primary key", name, schema.Name)
		}
		cols[i] = c
		for j, pc := range schema.PK {
			if pc == c {
				pkPos[i] = j
			}
		}
	}
	t, err := db.store.Create(schema)
	if err != nil {
		return nil, err
	}
	if len(partitionBy) == 0 {
		return t, nil
	}
	if err := t.AddIndex(spi.IndexDef{Name: PartIndex, Columns: partitionBy}); err != nil {
		return nil, err
	}
	db.mu.Lock()
	db.parts[schema.Name] = &partition{cols: cols, pkPos: pkPos}
	db.mu.Unlock()
	return t, nil
}

// partitionOfKey returns the partition item implied by a full primary-key
// value list, if the table is partitioned.
func (db *DB) partitionOfKey(table string, keyVals []spi.Value) (spi.Item, bool) {
	db.mu.RLock()
	p := db.parts[table]
	db.mu.RUnlock()
	if p == nil {
		return spi.Item{}, false
	}
	vals := make([]spi.Value, len(p.pkPos))
	for i, pos := range p.pkPos {
		vals[i] = keyVals[pos]
	}
	return spi.PartitionItem(table, spi.EncodeKey(vals...)), true
}

// MustCreateTable is CreateTable that panics; for static schemas.
func (db *DB) MustCreateTable(schema *spi.Schema, partitionBy ...string) spi.Table {
	t, err := db.CreateTable(schema, partitionBy...)
	if err != nil {
		panic(err)
	}
	return t
}

// partitionOfRow returns the partition item of a row, if the table is
// partitioned.
func (db *DB) partitionOfRow(table string, schema *spi.Schema, row spi.Row) (spi.Item, bool) {
	db.mu.RLock()
	p := db.parts[table]
	db.mu.RUnlock()
	if p == nil {
		return spi.Item{}, false
	}
	vals := make([]spi.Value, len(p.cols))
	for i, c := range p.cols {
		vals[i] = row[c]
	}
	return spi.PartitionItem(table, spi.EncodeKey(vals...)), true
}

// partitionItem returns the partition item for explicit partition values.
func (db *DB) partitionItem(table string, vals []spi.Value) spi.Item {
	return spi.PartitionItem(table, spi.EncodeKey(vals...))
}

// partitioned reports whether the table has a partition granule.
func (db *DB) partitioned(table string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.parts[table] != nil
}
