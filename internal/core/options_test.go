package core

import (
	"strings"
	"testing"
	"time"

	"accdb/internal/interference"
	"accdb/internal/spi"
)

// noVersionStore hides the backend's version-chain support: the minimal
// custom store a program embedding the engine might supply.
type noVersionStore struct{ spi.Store }

func (noVersionStore) Capabilities() spi.Capabilities { return spi.Capabilities{} }

// TestCapabilityWarningNamesBackendAndPartition: a capability-gated option
// the backend cannot honour must say which backend refused it AND which
// engine of a partitioned deployment is concerned — n identical anonymous
// lines from n partitions are undebuggable.
func TestCapabilityWarningNamesBackendAndPartition(t *testing.T) {
	base, err := spi.OpenStore(spi.DefaultBackend())
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB(WithStore(noVersionStore{base}))
	eng := New(db, interference.NewBuilder().Build(),
		WithEngineLabel("partition 2"),
		WithVersionGCInterval(time.Second))
	defer eng.Close()

	warns := eng.ConfigWarnings()
	if len(warns) != 1 {
		t.Fatalf("expected exactly one configuration warning, got %v", warns)
	}
	for _, want := range []string{"partition 2", `backend "custom"`, "WithVersionGCInterval"} {
		if !strings.Contains(warns[0], want) {
			t.Errorf("warning %q does not name %q", warns[0], want)
		}
	}

	// Without a label the same warning stays unprefixed.
	plain := New(NewDB(WithStore(noVersionStore{base})), interference.NewBuilder().Build(),
		WithVersionGCInterval(time.Second))
	defer plain.Close()
	pw := plain.ConfigWarnings()
	if len(pw) != 1 || strings.Contains(pw[0], "partition") {
		t.Fatalf("unlabelled engine warning: %v", pw)
	}
}
