package core

import (
	"testing"

	"accdb/internal/fault"
	"accdb/internal/wal"
)

// diskSys builds the bank test system over a disk-backed log in dir.
func diskSys(t *testing.T, dir string) *testSys {
	t.Helper()
	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return newTestSys(t, ModeACC, func(o *Options) { o.Log = l })
}

func TestDiskRecoveryAfterCommitForceCrash(t *testing.T) {
	dir := t.TempDir()
	s := diskSys(t, dir)
	// Two clean commits, then a transfer that crashes at its commit force:
	// both steps completed and durable, the commit record lost — recovery
	// must compensate it.
	for i := int64(1); i <= 2; i++ {
		if err := s.eng.Run("transfer", &transferArgs{From: i, To: i + 1, Amount: 10}); err != nil {
			t.Fatal(err)
		}
	}
	c := fault.NewController(5)
	c.Arm("core.commit.force.crash", fault.Spec{Effect: fault.Crash, Nth: 1})
	c.Activate()
	err := s.eng.Run("transfer", &transferArgs{From: 5, To: 6, Amount: 30})
	fault.Deactivate()
	if err != nil {
		// The doomed run may or may not error; the log freeze is the crash.
		t.Logf("crashed run returned %v", err)
	}
	if !s.eng.Log().Crashed() {
		t.Fatal("commit-force fault did not freeze the log")
	}
	s.eng.Log().Close()

	// Restart: reopen the directory, recover over a fresh base state.
	s2 := diskSys(t, dir)
	res, err := s2.eng.RecoverLog(s2.eng.Log())
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 2 {
		t.Fatalf("recovered %d commits, want 2", res.Committed)
	}
	if len(res.CompensatedTxns) != 1 {
		t.Fatalf("CompensatedTxns = %+v, want the crashed transfer", res.CompensatedTxns)
	}
	args, ok := res.CompensatedTxns[0].Args.(*transferArgs)
	if !ok || args.From != 5 || args.Amount != 30 {
		t.Fatalf("decoded args = %+v", res.CompensatedTxns[0].Args)
	}
	// Both committed transfers applied; the crashed one fully compensated.
	if s2.balance(t, 1) != 90 || s2.balance(t, 2) != 100 || s2.balance(t, 3) != 110 {
		t.Fatalf("committed transfers wrong: %d/%d/%d",
			s2.balance(t, 1), s2.balance(t, 2), s2.balance(t, 3))
	}
	if s2.balance(t, 5) != 100 || s2.balance(t, 6) != 100 {
		t.Fatalf("crashed transfer not compensated: %d/%d", s2.balance(t, 5), s2.balance(t, 6))
	}
	if s2.total(t) != 600 {
		t.Fatalf("total = %d", s2.total(t))
	}
	// The recovered engine keeps working against the same log, and its IDs
	// cleared the logged history.
	// nextTxn holds the last-issued ID: the next Run gets MaxTxn+1 or later.
	if s2.eng.nextTxn.Load() < res.Analysis.MaxTxn {
		t.Fatalf("nextTxn %d not advanced to logged max %d",
			s2.eng.nextTxn.Load(), res.Analysis.MaxTxn)
	}
	if err := s2.eng.Run("transfer", &transferArgs{From: 4, To: 5, Amount: 7}); err != nil {
		t.Fatal(err)
	}

	// Second crash, this time mid-transaction at the end-of-step force, with
	// the pre-crash history still in the log: recovery must replay the whole
	// prefix and compensate only what is pending.
	c2 := fault.NewController(6)
	c2.Arm("core.eos.force.crash", fault.Spec{Effect: fault.Crash, Nth: 1})
	c2.Activate()
	err = s2.eng.Run("transfer", &transferArgs{From: 2, To: 3, Amount: 5})
	fault.Deactivate()
	t.Logf("second crashed run returned %v", err)
	if !s2.eng.Log().Crashed() {
		t.Fatal("eos-force fault did not freeze the log")
	}
	s2.eng.Log().Close()

	s3 := diskSys(t, dir)
	res3, err := s3.eng.RecoverLog(s3.eng.Log())
	if err != nil {
		t.Fatal(err)
	}
	if res3.Committed != 3 {
		t.Fatalf("after second crash recovered %d commits, want 3", res3.Committed)
	}
	// The eos-crash transfer never durably completed its debit step, so
	// nothing is pending beyond the first crash's (already compensated) txn.
	if len(res3.CompensatedTxns) != 0 {
		t.Fatalf("CompensatedTxns after second crash = %+v", res3.CompensatedTxns)
	}
	if s3.total(t) != 600 {
		t.Fatalf("total after second recovery = %d", s3.total(t))
	}
}

func TestRecoveryReattachesExposureAndReservation(t *testing.T) {
	s := newTestSys(t, ModeACC)
	crashed := make(chan struct{})
	hang := make(chan struct{})
	defer close(hang)
	go func() {
		s.eng.Run("transfer", &transferArgs{
			From: 3, To: 4, Amount: 40,
			BeforeCredit: func() { close(crashed); <-hang },
		})
	}()
	<-crashed
	img := s.eng.Log().DurableBytes()

	// Recover into a fresh system whose compensation body inspects the lock
	// table: the debit's written item must carry re-attached D (exposure)
	// and C (reservation) grants while compensation runs.
	s2 := newTestSys(t, ModeACC)
	sawD, sawC := false, false
	tt := s2.eng.Type("transfer")
	inner := tt.Comp.Body
	tt.Comp.Body = func(tc *Ctx, completed int) error {
		snap := s2.eng.Locks().Snapshot()
		for _, sh := range snap.Shards {
			for _, it := range sh.Items {
				if it.Item.Table != "accounts" {
					continue
				}
				for _, g := range it.Grants {
					switch g.Kind {
					case "D":
						sawD = true
					case "C":
						sawC = true
					}
				}
			}
		}
		return inner(tc, completed)
	}
	if _, err := s2.eng.Recover(img); err != nil {
		t.Fatal(err)
	}
	if !sawD || !sawC {
		t.Fatalf("compensation ran without re-attached locks: D=%v C=%v", sawD, sawC)
	}
	if s2.balance(t, 3) != 100 {
		t.Fatal("compensation did not restore the debited account")
	}
}

func TestRecoveryRefusesCorruptLog(t *testing.T) {
	s := newTestSys(t, ModeACC)
	for i := int64(1); i <= 3; i++ {
		if err := s.eng.Run("transfer", &transferArgs{From: i, To: i + 1, Amount: 1}); err != nil {
			t.Fatal(err)
		}
	}
	img := append([]byte(nil), s.eng.Log().Bytes()...)
	img[len(img)/2] ^= 0xFF // mid-log damage, not a crash tail

	s2 := newTestSys(t, ModeACC)
	if _, err := s2.eng.Recover(img); err == nil {
		t.Fatal("recovery accepted a log with destroyed durable records")
	}
}
