package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"accdb/internal/fault"
	"accdb/internal/interference"
	"accdb/internal/spi"
	"accdb/internal/trace"
	"accdb/internal/wal"
)

func init() {
	fault.Declare("core.eos.force.crash", fault.Crash,
		"process dies at an end-of-step force: the step's writes and work area never became durable")
	fault.Declare("core.commit.force.crash", fault.Crash,
		"process dies at the commit force: every step completed but the commit record is lost")
	fault.Declare("core.comp.force.crash", fault.Crash,
		"process dies at the compensation-done force: recovery must compensate again")
}

// emitTxn sends one engine-layer event. Callers nil-check e.tracer first so
// the disabled path never builds the event. step < 0 means not step-scoped.
// The transaction's trace id (when a latency-anatomy span is attached) rides
// along so one request can be followed across client, server and engine.
func (e *Engine) emitTxn(kind trace.Kind, txn *txnState, step int, item string, dur int64, extra string) {
	ev := trace.Ev(kind, uint64(txn.info.ID))
	if txn.span != nil {
		ev.Trace = txn.span.TraceID
	}
	if step >= 0 {
		ev.Step = int16(step)
	}
	ev.Item, ev.Dur, ev.Extra = item, dur, extra
	e.tracer.Emit(ev)
}

// spanEvent mirrors an engine-layer transition into the transaction's
// latency-anatomy span history. Unlike emitTxn it does not depend on the
// tracer, so the flight recorder keeps the full per-transaction event
// history even with the event bus detached.
func (txn *txnState) spanEvent(kind trace.Kind, mode, item string, dur int64) {
	if txn.span != nil {
		txn.span.Event(kind, mode, item, dur)
	}
}

// spanStatus classifies an engine outcome for engine-owned span records,
// mirroring the wire status taxonomy the server stamps on request spans.
func spanStatus(err error) string {
	switch {
	case err == nil:
		return "ok"
	case IsCompensated(err):
		return "compensated"
	case canceled(err):
		return "canceled"
	case errors.Is(err, ErrAborted):
		return "aborted"
	default:
		return "error"
	}
}

// Run executes one instance of the named transaction type with the given
// arguments under the engine's scheduler mode. It returns nil on commit, a
// *CompensatedError or ErrUserAbort-wrapping error on rollback, and other
// errors on failure. It is RunContext under context.Background().
func (e *Engine) Run(name string, args any) error {
	return e.RunContext(context.Background(), name, args)
}

// RunContext is Run under a caller context. Cancellation and deadlines
// propagate into lock waits: a cancelled ctx aborts an in-progress wait,
// and the transaction rolls back — by compensation (§3.4) if any step had
// completed, by in-place undo otherwise. Compensation itself always runs
// to completion regardless of ctx; its effects must not be half-applied.
func (e *Engine) RunContext(ctx context.Context, name string, args any) error {
	tt := e.Type(name)
	if tt == nil {
		return fmt.Errorf("%w: %q", ErrUnknownTxnType, name)
	}
	return e.RunTypeContext(ctx, tt, args)
}

// RunType is Run for an already-resolved type.
func (e *Engine) RunType(tt *TxnType, args any) error {
	return e.RunTypeContext(context.Background(), tt, args)
}

// RunTypeContext is RunContext for an already-resolved type.
func (e *Engine) RunTypeContext(ctx context.Context, tt *TxnType, args any) error {
	return e.RunTypeContextSpan(ctx, tt, args, nil)
}

// RunTypeContextSpan is RunTypeContext with a latency-anatomy span threaded
// through every layer the transaction touches (DESIGN.md §13). The network
// server passes the request's span; with sp nil and an Anatomy attached the
// engine owns a span for the call, so in-process harnesses get the same
// per-stage histograms and flight recorder as the network path.
func (e *Engine) RunTypeContextSpan(ctx context.Context, tt *TxnType, args any, sp *trace.Span) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if e.closed.Load() {
		return ErrEngineClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if sp == nil && e.anatomy != nil {
		// Engine-owned span: the whole call is the engine phase; there are
		// no wire stages around it to subtract.
		sp = e.anatomy.Start(0, time.Time{})
		sp.EnterEngine()
		err := e.dispatch(ctx, tt, args, sp)
		sp.ExitEngine()
		sp.SetStatus(spanStatus(err))
		sp.Finish()
		return err
	}
	return e.dispatch(ctx, tt, args, sp)
}

// dispatch routes to the scheduler selected by the engine mode.
func (e *Engine) dispatch(ctx context.Context, tt *TxnType, args any, sp *trace.Span) error {
	if e.opt.Mode == ModeBaseline {
		return e.runBaseline(ctx, tt, args, sp)
	}
	return e.runDecomposed(ctx, tt, args, sp)
}

// RunLegacy executes an undecomposed (ad-hoc) transaction: a single
// strict-2PL unit whose lock requests carry the legacy tags, so under the
// ACC it is completely isolated from intermediate states of multi-step
// transactions (§3.3 end). It is RunLegacyContext under
// context.Background().
func (e *Engine) RunLegacy(name string, body func(tc *Ctx) error) error {
	return e.RunLegacyContext(context.Background(), name, body)
}

// RunLegacyContext is RunLegacy under a caller context; it folds into the
// same run path as every other transaction, so cancellation, retry, and
// close semantics are identical.
func (e *Engine) RunLegacyContext(ctx context.Context, name string, body func(tc *Ctx) error) error {
	tt := &TxnType{
		Name: name,
		ID:   interference.LegacyTxn,
		Steps: []Step{{
			Name: name, Type: interference.LegacyStep, Body: body,
		}},
	}
	return e.RunTypeContext(ctx, tt, nil)
}

// runDecomposed executes tt under the ACC (or two-level) scheduler. A
// scheduling abort before any step has completed restarts the whole
// transaction (nothing was exposed, so a restart is free); once a step has
// completed, rollback goes through compensation instead.
func (e *Engine) runDecomposed(ctx context.Context, tt *TxnType, args any, sp *trace.Span) error {
	for attempt := 0; ; attempt++ {
		err := e.runDecomposedOnce(ctx, tt, args, sp)
		// Retryable covers exactly the clean scheduling aborts (nothing
		// exposed, everything undone in place): a compensated rollback is a
		// final outcome, a failed compensation is never retried, and a
		// cancelled caller gets its cancellation back, not another attempt.
		if Retryable(err) && ctx.Err() == nil && attempt < e.opt.MaxTxnRetries {
			e.txnRetries.Add(1)
			retryBackoff(attempt, e.nextTxn.Load())
			continue
		}
		return err
	}
}

func (e *Engine) runDecomposedOnce(ctx context.Context, tt *TxnType, args any, sp *trace.Span) error {
	txn := &txnState{
		tt:    tt,
		args:  args,
		ctx:   ctx,
		steps: tt.stepsFor(args),
		info:  spi.NewTxn(spi.TxnID(e.nextTxn.Add(1)), tt.ID),
		span:  sp,
	}
	// The lock manager charges this transaction's blocked time to the span's
	// per-mode wait stages; on a retry the later attempt's identity wins and
	// waits keep accumulating, which is the end-to-end truth.
	txn.info.Span = sp
	sp.SetTxn(uint64(txn.info.ID), tt.Name)
	start := time.Now()
	if e.tracer != nil {
		e.emitTxn(trace.KindTxnBegin, txn, -1, tt.Name, 0, "")
	}
	txn.spanEvent(trace.KindTxnBegin, "", tt.Name, 0)
	rec := wal.Record{Type: wal.TBegin, Txn: uint64(txn.info.ID), TxnType: tt.Name}
	if tag, ok := shotTagFrom(ctx); ok && tag.Global != 0 {
		// A shot of a multi-shot global transaction: stamp the begin record
		// so partition recovery can resolve this shot's fate, and report the
		// local id for cross-partition deadlock detection. A retried attempt
		// re-stamps with its fresh id; the latest attempt is the live one.
		rec.Global, rec.Shot = tag.Global, tag.Shot
		if tag.OnTxn != nil {
			tag.OnTxn(txn.info.ID)
		}
	}
	e.log.AppendSpan(rec, sp)

	for j := range txn.steps {
		if err := e.runStep(txn, j); err != nil {
			return e.rollback(txn, j, err)
		}
	}
	// Commit: one forced record; conventional locks of the final step are
	// held through the force so nothing uncommitted is ever exposed.
	e.logForce(txn, wal.Record{Type: wal.TCommit, Txn: uint64(txn.info.ID)})
	e.publishWrites(txn.pending)
	e.lm.ReleaseAll(txn.info)
	e.commits.Add(1)
	if e.tracer != nil {
		e.emitTxn(trace.KindTxnCommit, txn, -1, tt.Name, int64(time.Since(start)), "")
	}
	txn.spanEvent(trace.KindTxnCommit, "", tt.Name, int64(time.Since(start)))
	e.recordCommit(txn)
	return nil
}

// logForce writes a forced log record, charging its preparation (building
// the record, saving the work area, updating the log tail) as one unit of
// server CPU — the ACC overhead §5 measures: "these actions represent
// overhead and are included in the measured results". The force I/O itself
// is latency, paid outside any server. The append and force are charged to
// the transaction's span (wal_append and group_commit stages).
func (e *Engine) logForce(txn *txnState, rec wal.Record) {
	if fault.Enabled() {
		// Crash at the most revealing instants: the record is built but its
		// force never completes, so durability ends just before it.
		var point string
		switch rec.Type {
		case wal.TEndOfStep:
			point = "core.eos.force.crash"
		case wal.TCommit:
			point = "core.commit.force.crash"
		case wal.TCompDone:
			point = "core.comp.force.crash"
		}
		if point != "" {
			if o := fault.Point(point); o.Effect == fault.Crash {
				e.log.Crash()
			}
		}
	}
	e.env.Statement(func() {})
	e.log.AppendForceSpan(rec, txn.span)
}

// retryBackoff sleeps before a transaction restart: exponential in the
// attempt number with a cap, plus jitter derived from the transaction
// identity — two victims of the same deadlock must not re-collide in
// lockstep forever, and repeat offenders must yield the contended items for
// progressively longer.
func retryBackoff(attempt int, salt uint64) {
	shift := attempt
	if shift > 7 {
		shift = 7 // cap the exponential at 12.8ms base
	}
	d := (100 * time.Microsecond) << shift
	d += time.Duration(salt%17) * 53 * time.Microsecond
	time.Sleep(d)
}

// runStep executes forward step j with the deadlock-retry policy: a victim
// step is undone, its conventional locks released, and retried; when the
// deadlock recurs beyond the budget the error escalates to the caller, which
// compensates (§3.4).
func (e *Engine) runStep(txn *txnState, j int) error {
	for attempt := 0; ; attempt++ {
		// A cancelled caller stops making forward progress at the next step
		// (or retry) boundary; the rollback path decides between plain abort
		// and compensation.
		if err := txn.ctx.Err(); err != nil {
			return err
		}
		e.log.AppendSpan(wal.Record{Type: wal.TStepBegin, Txn: uint64(txn.info.ID), Step: int32(j)}, txn.span)
		if e.tracer != nil {
			e.emitTxn(trace.KindStepBegin, txn, j, txn.steps[j].Name, 0, "")
		}
		txn.spanEvent(trace.KindStepBegin, "", txn.steps[j].Name, 0)
		stepStart := time.Now()
		tc := &Ctx{
			e: e, txn: txn, stepIdx: j,
			stepType: txn.steps[j].Type,
			active:   activeAssertions(txn.steps, j),
		}
		err := e.stepPrologue(tc, j)
		if err == nil {
			err = txn.steps[j].Body(tc)
		}
		if err == nil {
			e.finishStep(txn, tc, j)
			if e.tracer != nil {
				e.emitTxn(trace.KindStepEnd, txn, j, txn.steps[j].Name,
					int64(time.Since(stepStart)), "")
			}
			txn.spanEvent(trace.KindStepEnd, "", txn.steps[j].Name, int64(time.Since(stepStart)))
			return nil
		}
		tc.undo()
		e.lm.ReleaseStepAbort(txn.info)
		if Retryable(err) && attempt < e.opt.MaxStepRetries {
			e.stepRetries.Add(1)
			if e.tracer != nil {
				e.emitTxn(trace.KindStepRetry, txn, j, txn.steps[j].Name, 0, err.Error())
			}
			txn.spanEvent(trace.KindStepRetry, "", txn.steps[j].Name, 0)
			continue
		}
		return err
	}
}

// stepPrologue performs mode-specific work before the body runs: eager
// assertional locking (simplified §3.3) and the two-level dispatcher's
// assertion-type gate.
func (e *Engine) stepPrologue(tc *Ctx, j int) error {
	if e.opt.Mode == ModeTwoLevel {
		if err := e.twoLevelGate(tc, j); err != nil {
			return err
		}
	}
	if e.opt.Mode == ModeACC && e.opt.EagerAssertionLocks {
		for _, a := range tc.active {
			if a.Items == nil {
				continue
			}
			for _, item := range a.Items(tc.txn.args) {
				req := spi.LockRequest{
					Mode: spi.ModeA, Step: tc.stepType,
					Assertion: a.ID, Compensating: tc.compensating,
				}
				if err := e.lm.AcquireCtx(tc.lockCtx(), tc.txn.info, item, req); err != nil {
					return err
				}
				if e.tracer != nil {
					e.emitTxn(trace.KindAssertCheck, tc.txn,
						j, item.String(), 0, a.Name)
				}
			}
		}
	}
	return nil
}

// finishStep performs the end-of-step processing: exposure and reservation
// marks on written items, the forced end-of-step record with the saved work
// area, breakpoint advance, and release of the step's conventional locks
// and of the completed precondition's assertional locks. The final step
// skips exposure and keeps its locks until commit forces the log.
func (e *Engine) finishStep(txn *txnState, tc *Ctx, j int) {
	tt := txn.tt
	last := j == len(txn.steps)-1
	if !last {
		compType := interference.NoStep
		if tt.Comp != nil {
			compType = tt.Comp.Type
		}
		for item := range tc.wroteItems {
			e.lm.AttachExposure(txn.info, item)
			e.lm.AttachReservation(txn.info, item, compType)
		}
	}
	var area []byte
	var areaBuf *[]byte
	switch {
	case tt.AppendArgs != nil:
		// Append form: the work area is serialized into a pooled scratch.
		// Append below copies it into the log synchronously, so the buffer
		// is free again as soon as the record is in.
		areaBuf = areaPool.Get().(*[]byte)
		*areaBuf = tt.AppendArgs((*areaBuf)[:0], txn.args)
		area = *areaBuf
	case tt.EncodeArgs != nil:
		area = tt.EncodeArgs(txn.args)
	}
	rec := wal.Record{
		Type: wal.TEndOfStep, Txn: uint64(txn.info.ID),
		Step: int32(j), WorkArea: area,
	}
	if last {
		// The commit record that follows immediately is forced; piggyback
		// its processing too. The step's writes become visible to versioned
		// readers only once that commit force succeeds.
		e.log.AppendSpan(rec, txn.span)
		if areaBuf != nil {
			areaPool.Put(areaBuf)
		}
		txn.pending = append(txn.pending, tc.writes...)
		txn.info.AdvanceStep()
		return
	}
	e.logForce(txn, rec)
	// The end-of-step force is this step's exposure point (§2): publish its
	// writes to the version chains under one CSN before the conventional
	// locks release, so versioned readers see the same interstep states
	// locked readers are about to.
	e.publishWrites(tc.writes)
	if areaBuf != nil {
		areaPool.Put(areaBuf)
	}
	txn.info.AdvanceStep()
	e.lm.ReleaseConventional(txn.info)
	e.releaseAssertions(txn, txn.steps[j].Pre)
}

// areaPool recycles work-area encode buffers across end-of-step records.
var areaPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 1<<10)
	return &b
}}

// releaseAssertions drops the assertional locks of the given (now
// discharged) precondition conjuncts.
func (e *Engine) releaseAssertions(txn *txnState, pre []*Assertion) {
	for _, a := range pre {
		// The next step may re-declare the same conjunct; keep it then.
		next := txn.info.CompletedSteps()
		if next < len(txn.steps) {
			keep := false
			for _, n := range activeAssertions(txn.steps, next) {
				if n.ID == a.ID {
					keep = true
					break
				}
			}
			if keep {
				continue
			}
		}
		e.lm.ReleaseAssertion(txn.info, a.ID)
	}
}

// rollback handles a failed forward step j: if no step has completed the
// transaction simply aborts; otherwise the compensating step semantically
// undoes the completed prefix (§3.4).
func (e *Engine) rollback(txn *txnState, j int, cause error) error {
	completed := txn.info.CompletedSteps()
	if completed == 0 {
		e.log.AppendSpan(wal.Record{Type: wal.TAbort, Txn: uint64(txn.info.ID)}, txn.span)
		e.lm.ReleaseAll(txn.info)
		if Retryable(cause) {
			if e.tracer != nil {
				e.emitTxn(trace.KindTxnAbort, txn, -1, txn.tt.Name, 0, "scheduling")
			}
			txn.spanEvent(trace.KindTxnAbort, "scheduling", txn.tt.Name, 0)
			return cause // nothing exposed: the caller restarts the transaction
		}
		if canceled(cause) {
			// The caller went away before anything was exposed: the undo
			// already happened in place, so this is neither a user abort nor
			// a scheduling abort — just the cancellation, propagated.
			if e.tracer != nil {
				e.emitTxn(trace.KindTxnAbort, txn, -1, txn.tt.Name, 0, "canceled")
			}
			txn.spanEvent(trace.KindTxnAbort, "canceled", txn.tt.Name, 0)
			return fmt.Errorf("core: %s canceled: %w", txn.tt.Name, cause)
		}
		e.userAborts.Add(1)
		if e.tracer != nil {
			e.emitTxn(trace.KindTxnAbort, txn, -1, txn.tt.Name, 0, "user")
		}
		txn.spanEvent(trace.KindTxnAbort, "user", txn.tt.Name, 0)
		return fmt.Errorf("core: %s aborted: %w", txn.tt.Name, cause)
	}
	if err := e.compensate(txn, completed); err != nil {
		return err
	}
	return &CompensatedError{Txn: txn.tt.Name, Cause: cause}
}

// compensate runs the compensating step for the completed prefix. Its lock
// requests carry the Compensating flag, so it is never a deadlock victim;
// if it is aborted from outside it retries until it succeeds, which the
// reservation locks guarantee is possible.
func (e *Engine) compensate(txn *txnState, completed int) error {
	tt := txn.tt
	if tt.Comp == nil {
		return fmt.Errorf("core: %s has completed steps but no compensation", tt.Name)
	}
	for attempt := 0; ; attempt++ {
		e.log.AppendSpan(wal.Record{Type: wal.TCompBegin, Txn: uint64(txn.info.ID), Step: int32(completed)}, txn.span)
		if e.tracer != nil {
			// Step carries the number of completed forward steps being undone.
			e.emitTxn(trace.KindCompBegin, txn, completed, tt.Name, 0, "")
		}
		txn.spanEvent(trace.KindCompBegin, "", tt.Name, 0)
		compStart := time.Now()
		tc := &Ctx{
			e: e, txn: txn,
			stepIdx:      completed,
			stepType:     tt.Comp.Type,
			compensating: true,
		}
		err := tt.Comp.Body(tc, completed)
		if err == nil {
			e.logForce(txn, wal.Record{Type: wal.TCompDone, Txn: uint64(txn.info.ID)})
			e.publishWrites(tc.writes)
			e.lm.ReleaseAll(txn.info)
			e.compensations.Add(1)
			if e.tracer != nil {
				e.emitTxn(trace.KindCompDone, txn, completed, tt.Name,
					int64(time.Since(compStart)), "")
			}
			txn.spanEvent(trace.KindCompDone, "", tt.Name, int64(time.Since(compStart)))
			e.recordCommit(txn) // compensation publishes a (compensated) outcome
			return nil
		}
		tc.undo()
		e.lm.ReleaseStepAbort(txn.info)
		// The reservation locks guarantee compensation can always make
		// progress, so scheduling aborts are retried persistently (with a
		// short backoff to break convoys); a non-retryable error is a
		// programming error in the transaction declaration.
		if Retryable(err) && attempt < 100 {
			e.stepRetries.Add(1)
			// Jitter by transaction identity so two compensations that
			// victimize each other cannot retry in lockstep forever.
			jitter := time.Duration(uint64(txn.info.ID)%13) * 37 * time.Microsecond
			time.Sleep(time.Duration(attempt+1)*200*time.Microsecond + jitter)
			continue
		}
		e.lm.ReleaseAll(txn.info)
		e.compFailures.Add(1)
		return &CompensationFailedError{Txn: tt.Name, Cause: err}
	}
}

// runBaseline executes tt as the unmodified system would: all step bodies
// in one strict-2PL unit, everything released at commit, one forced commit
// record, and whole-transaction restart on deadlock.
func (e *Engine) runBaseline(ctx context.Context, tt *TxnType, args any, sp *trace.Span) error {
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		txn := &txnState{
			tt:    tt,
			args:  args,
			ctx:   ctx,
			steps: tt.stepsFor(args),
			info:  spi.NewTxn(spi.TxnID(e.nextTxn.Add(1)), interference.LegacyTxn),
			span:  sp,
		}
		txn.info.Span = sp
		sp.SetTxn(uint64(txn.info.ID), tt.Name)
		start := time.Now()
		if e.tracer != nil {
			e.emitTxn(trace.KindTxnBegin, txn, -1, tt.Name, 0, "")
		}
		txn.spanEvent(trace.KindTxnBegin, "", tt.Name, 0)
		e.log.AppendSpan(wal.Record{Type: wal.TBegin, Txn: uint64(txn.info.ID), TxnType: tt.Name}, sp)
		e.log.AppendSpan(wal.Record{Type: wal.TStepBegin, Txn: uint64(txn.info.ID), Step: 0}, sp)
		tc := &Ctx{e: e, txn: txn, stepType: interference.LegacyStep}
		var err error
		for j := range txn.steps {
			if txn.steps[j].Body != nil {
				if err = txn.steps[j].Body(tc); err != nil {
					break
				}
			}
		}
		if err == nil {
			e.log.AppendSpan(wal.Record{Type: wal.TEndOfStep, Txn: uint64(txn.info.ID), Step: 0}, sp)
			e.logForce(txn, wal.Record{Type: wal.TCommit, Txn: uint64(txn.info.ID)})
			e.publishWrites(tc.writes)
			e.lm.ReleaseAll(txn.info)
			e.commits.Add(1)
			if e.tracer != nil {
				e.emitTxn(trace.KindTxnCommit, txn, -1, tt.Name, int64(time.Since(start)), "")
			}
			txn.spanEvent(trace.KindTxnCommit, "", tt.Name, int64(time.Since(start)))
			e.recordCommit(txn)
			return nil
		}
		// Serializable rollback: restore before-images; nothing was exposed.
		tc.undo()
		e.log.AppendSpan(wal.Record{Type: wal.TAbort, Txn: uint64(txn.info.ID)}, sp)
		e.lm.ReleaseAll(txn.info)
		if Retryable(err) {
			if ctx.Err() == nil && attempt < e.opt.MaxTxnRetries {
				e.txnRetries.Add(1)
				if e.tracer != nil {
					e.emitTxn(trace.KindTxnAbort, txn, -1, tt.Name, 0, "scheduling")
				}
				txn.spanEvent(trace.KindTxnAbort, "scheduling", tt.Name, 0)
				retryBackoff(attempt, uint64(txn.info.ID))
				continue
			}
			// Double-wrap so callers can classify both the exhaustion and the
			// underlying scheduling cause (deadlock vs timeout).
			return fmt.Errorf("core: %s: %w: %w", tt.Name, ErrRetriesExhausted, err)
		}
		if canceled(err) {
			if e.tracer != nil {
				e.emitTxn(trace.KindTxnAbort, txn, -1, tt.Name, 0, "canceled")
			}
			txn.spanEvent(trace.KindTxnAbort, "canceled", tt.Name, 0)
			return fmt.Errorf("core: %s canceled: %w", tt.Name, err)
		}
		e.userAborts.Add(1)
		if e.tracer != nil {
			e.emitTxn(trace.KindTxnAbort, txn, -1, tt.Name, 0, "user")
		}
		txn.spanEvent(trace.KindTxnAbort, "user", tt.Name, 0)
		return fmt.Errorf("core: %s aborted: %w", tt.Name, err)
	}
}
