package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"accdb/internal/interference"
	"accdb/internal/spi"
)

// testSys is a two-table bank: accounts(id, balance) and journal(id, delta),
// with a two-step transfer transaction (debit; credit) and its compensation.
type testSys struct {
	db  *DB
	eng *Engine

	txnTransfer interference.TxnTypeID
	stepDebit   interference.StepTypeID
	stepCredit  interference.StepTypeID
	stepComp    interference.StepTypeID
	aInFlight   interference.AssertionID

	assertion *Assertion
	balCol    int
}

type transferArgs struct {
	From, To, Amount int64
	// hooks let tests interleave precisely: AfterDebit runs inside the debit
	// step body (before its end-of-step record); BeforeCredit runs at the
	// start of the credit step, i.e. after the debit step is durable.
	AfterDebit   func()
	BeforeCredit func()
	FailCredit   error
}

func newTestSys(t testing.TB, mode Mode, opts ...func(*Options)) *testSys {
	t.Helper()
	s := &testSys{db: NewDB()}
	acc := s.db.MustCreateTable(spi.MustSchema("accounts", []spi.Column{
		{Name: "id", Kind: spi.KindInt},
		{Name: "balance", Kind: spi.KindInt},
	}, "id"))
	s.db.MustCreateTable(spi.MustSchema("journal", []spi.Column{
		{Name: "id", Kind: spi.KindInt},
		{Name: "delta", Kind: spi.KindInt},
	}, "id"))
	for i := 1; i <= 6; i++ {
		if err := acc.Insert(spi.Row{spi.Int(i), spi.I64(100)}); err != nil {
			t.Fatal(err)
		}
	}
	s.balCol = acc.Schema().MustCol("balance")

	b := interference.NewBuilder()
	s.txnTransfer = b.TxnType("transfer", 2)
	s.stepDebit = b.StepType("debit")
	s.stepCredit = b.StepType("credit")
	s.stepComp = b.StepType("comp")
	s.aInFlight = b.Assertion("in-flight")
	for _, st := range []interference.StepTypeID{s.stepDebit, s.stepCredit, s.stepComp} {
		b.NoInterference(st, s.aInFlight)
		b.AllowInterleaveEverywhere(st, s.txnTransfer)
	}
	// Any transfer prefix leaves another transfer's in-flight assertion
	// true (each moves only its own money), so the assertion may be locked
	// over an exposed intermediate value.
	b.PrefixSafe(s.txnTransfer, 1, s.aInFlight)
	b.PrefixSafe(s.txnTransfer, 2, s.aInFlight)
	tables := b.Build()

	o := Options{Mode: mode, WaitTimeout: 10 * time.Second, RecordHistory: true}
	for _, f := range opts {
		f(&o)
	}
	s.eng = New(s.db, tables, WithOptions(o))

	s.assertion = &Assertion{
		ID:   s.aInFlight,
		Name: "in-flight",
		Covers: func(args any, item spi.Item) bool {
			a := args.(*transferArgs)
			return item.Table == "accounts" && item.Level == spi.LevelRow &&
				item.Key == spi.EncodeKey(spi.I64(a.From))
		},
		Items: func(args any) []spi.Item {
			a := args.(*transferArgs)
			return []spi.Item{spi.RowItem("accounts", spi.EncodeKey(spi.I64(a.From)))}
		},
	}

	s.eng.MustRegister(&TxnType{
		Name: "transfer",
		ID:   s.txnTransfer,
		Steps: []Step{
			{
				Name: "debit", Type: s.stepDebit,
				Body: func(tc *Ctx) error {
					a := tc.Args().(*transferArgs)
					err := s.add(tc, a.From, -a.Amount)
					if err == nil && a.AfterDebit != nil {
						defer a.AfterDebit()
					}
					return err
				},
			},
			{
				Name: "credit", Type: s.stepCredit,
				Pre: []*Assertion{s.assertion},
				Body: func(tc *Ctx) error {
					a := tc.Args().(*transferArgs)
					if a.BeforeCredit != nil {
						a.BeforeCredit()
					}
					if a.FailCredit != nil {
						return a.FailCredit
					}
					return s.add(tc, a.To, a.Amount)
				},
			},
		},
		Comp: &Compensation{
			Type: s.stepComp,
			Body: func(tc *Ctx, completed int) error {
				a := tc.Args().(*transferArgs)
				if completed >= 1 {
					return s.add(tc, a.From, a.Amount)
				}
				return nil
			},
		},
		EncodeArgs: func(args any) []byte {
			a := args.(*transferArgs)
			return spi.MarshalRow(nil, spi.Row{
				spi.I64(a.From), spi.I64(a.To), spi.I64(a.Amount),
			})
		},
		DecodeArgs: func(data []byte) (any, error) {
			row, _, err := spi.UnmarshalRow(data)
			if err != nil {
				return nil, err
			}
			return &transferArgs{From: row[0].Int64(), To: row[1].Int64(), Amount: row[2].Int64()}, nil
		},
	})
	return s
}

func (s *testSys) add(tc *Ctx, id, delta int64) error {
	return tc.Update("accounts", []spi.Value{spi.I64(id)}, func(row spi.Row) error {
		row[s.balCol] = spi.I64(row[s.balCol].Int64() + delta)
		return nil
	})
}

func (s *testSys) balance(t *testing.T, id int64) int64 {
	t.Helper()
	row, err := s.db.Table("accounts").Get(spi.EncodeKey(spi.I64(id)))
	if err != nil {
		t.Fatal(err)
	}
	return row[s.balCol].Int64()
}

func (s *testSys) total(t *testing.T) int64 {
	t.Helper()
	var sum int64
	s.db.Table("accounts").Scan(func(_ spi.Key, row spi.Row) bool {
		sum += row[s.balCol].Int64()
		return true
	})
	return sum
}

func TestCommitBothModes(t *testing.T) {
	for _, mode := range []Mode{ModeACC, ModeBaseline, ModeTwoLevel} {
		t.Run(mode.String(), func(t *testing.T) {
			s := newTestSys(t, mode)
			if err := s.eng.Run("transfer", &transferArgs{From: 1, To: 2, Amount: 30}); err != nil {
				t.Fatal(err)
			}
			if s.balance(t, 1) != 70 || s.balance(t, 2) != 130 {
				t.Fatalf("balances %d/%d", s.balance(t, 1), s.balance(t, 2))
			}
			if s.eng.Snapshot().Commits != 1 {
				t.Fatal("commit not counted")
			}
		})
	}
}

func TestUnknownTxnType(t *testing.T) {
	s := newTestSys(t, ModeACC)
	if err := s.eng.Run("nope", nil); err == nil {
		t.Fatal("unknown type accepted")
	}
}

func TestRegistrationValidation(t *testing.T) {
	s := newTestSys(t, ModeACC)
	cases := []*TxnType{
		{Name: "", ID: 1, Steps: []Step{{Type: 1, Body: func(*Ctx) error { return nil }}}},
		{Name: "x", ID: 1},
		{Name: "x", ID: 1, Steps: []Step{{Type: 1}}}, // nil body
		{Name: "x", ID: 1, Steps: []Step{ // multi-step without compensation
			{Type: 1, Body: func(*Ctx) error { return nil }},
			{Type: 2, Body: func(*Ctx) error { return nil }},
		}},
		{Name: "transfer", ID: 1, Steps: []Step{{Type: 1, Body: func(*Ctx) error { return nil }}}}, // dup name
	}
	for i, tt := range cases {
		if err := s.eng.Register(tt); err == nil {
			t.Errorf("case %d: invalid type accepted", i)
		}
	}
}

func TestUserAbortBeforeAnyStepCompletes(t *testing.T) {
	s := newTestSys(t, ModeACC)
	// The debit step itself fails: plain abort, full undo, no compensation.
	tt := s.eng.Type("transfer")
	orig := tt.Steps[0].Body
	tt.Steps[0].Body = func(tc *Ctx) error {
		if err := orig(tc); err != nil {
			return err
		}
		return tc.Abort("changed my mind")
	}
	err := s.eng.Run("transfer", &transferArgs{From: 1, To: 2, Amount: 30})
	if !errors.Is(err, ErrUserAbort) {
		t.Fatalf("got %v", err)
	}
	if s.balance(t, 1) != 100 {
		t.Fatal("abort did not undo the step")
	}
	st := s.eng.Snapshot()
	if st.UserAborts != 1 || st.Compensations != 0 {
		t.Fatalf("stats %+v", st)
	}
	tt.Steps[0].Body = orig
}

func TestCompensationAfterCompletedStep(t *testing.T) {
	s := newTestSys(t, ModeACC)
	err := s.eng.Run("transfer", &transferArgs{
		From: 1, To: 2, Amount: 30,
		FailCredit: fmt.Errorf("boom: %w", ErrUserAbort),
	})
	if !IsCompensated(err) {
		t.Fatalf("got %v, want CompensatedError", err)
	}
	if s.balance(t, 1) != 100 || s.balance(t, 2) != 100 {
		t.Fatal("compensation did not restore the money")
	}
	if s.eng.Snapshot().Compensations != 1 {
		t.Fatal("compensation not counted")
	}
}

func TestStepLocksReleasedAtBoundary(t *testing.T) {
	s := newTestSys(t, ModeACC)
	released := make(chan struct{})
	proceed := make(chan struct{})
	go func() {
		s.eng.Run("transfer", &transferArgs{
			From: 1, To: 2, Amount: 10,
			BeforeCredit: func() {
				close(released)
				<-proceed
			},
		})
	}()
	<-released
	// While the first transfer sits between steps, a second transfer from
	// the same account must proceed (its steps interleave by declaration).
	done := make(chan error, 1)
	go func() {
		done <- s.eng.Run("transfer", &transferArgs{From: 1, To: 3, Amount: 10})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("second transfer blocked across a step boundary")
	}
	close(proceed)
}

func TestLegacyIsolationFromIntermediateState(t *testing.T) {
	s := newTestSys(t, ModeACC)
	midway := make(chan struct{})
	proceed := make(chan struct{})
	go func() {
		s.eng.Run("transfer", &transferArgs{
			From: 1, To: 2, Amount: 50,
			BeforeCredit: func() {
				close(midway)
				<-proceed
			},
		})
	}()
	<-midway
	// A legacy audit must NOT see account 1 at 50 with account 2 at 100: it
	// blocks until the transfer commits.
	totals := make(chan int64, 1)
	go func() {
		var sum int64
		s.eng.RunLegacy("audit", func(tc *Ctx) error {
			sum = 0
			for id := int64(1); id <= 2; id++ {
				row, err := tc.Get("accounts", spi.I64(id))
				if err != nil {
					return err
				}
				sum += row[s.balCol].Int64()
			}
			return nil
		})
		totals <- sum
	}()
	select {
	case got := <-totals:
		t.Fatalf("legacy audit read intermediate state: total=%d", got)
	case <-time.After(100 * time.Millisecond):
	}
	close(proceed)
	if got := <-totals; got != 200 {
		t.Fatalf("audit total = %d, want 200", got)
	}
}

func TestDeclaredStepSeesIntermediateState(t *testing.T) {
	// The counterpart: a declared, interleavable step reads right through
	// the exposure — that is the concurrency the ACC sells.
	s := newTestSys(t, ModeACC)
	midway := make(chan struct{})
	proceed := make(chan struct{})
	defer close(proceed)
	go func() {
		s.eng.Run("transfer", &transferArgs{
			From: 1, To: 2, Amount: 50,
			BeforeCredit: func() { close(midway); <-proceed },
		})
	}()
	<-midway
	done := make(chan error, 1)
	go func() {
		done <- s.eng.Run("transfer", &transferArgs{From: 2, To: 1, Amount: 5})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("declared step blocked on exposed intermediate state")
	}
}

func TestBaselineIsConflictSerializable(t *testing.T) {
	s := newTestSys(t, ModeBaseline)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				from := int64(g%3 + 1)
				to := int64((g+1)%3 + 1)
				s.eng.Run("transfer", &transferArgs{From: from, To: to, Amount: 1})
			}
		}(g)
	}
	wg.Wait()
	if h := s.eng.History(); !h.ConflictSerializable() {
		t.Fatal("baseline produced a non-serializable history")
	}
	if s.total(t) != 600 {
		t.Fatalf("total = %d", s.total(t))
	}
}

func TestACCMassConcurrencyPreservesInvariant(t *testing.T) {
	s := newTestSys(t, ModeACC)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				from := int64(g%6 + 1)
				to := int64((g+i)%6 + 1)
				if from == to {
					to = from%6 + 1
				}
				args := &transferArgs{From: from, To: to, Amount: 3}
				if i%10 == 9 {
					args.FailCredit = fmt.Errorf("x: %w", ErrUserAbort)
				}
				err := s.eng.Run("transfer", args)
				if err != nil && !IsCompensated(err) && !errors.Is(err, ErrUserAbort) {
					t.Errorf("unexpected: %v", err)
				}
			}
		}(g)
	}
	wg.Wait()
	if s.total(t) != 600 {
		t.Fatalf("invariant violated: total = %d", s.total(t))
	}
}

func TestEagerAssertionLocks(t *testing.T) {
	s := newTestSys(t, ModeACC, func(o *Options) { o.EagerAssertionLocks = true })
	if err := s.eng.Run("transfer", &transferArgs{From: 1, To: 2, Amount: 10}); err != nil {
		t.Fatal(err)
	}
	if s.balance(t, 2) != 110 {
		t.Fatal("eager mode broke execution")
	}
}

func TestCrashRecoveryCommitsAndCompensates(t *testing.T) {
	s := newTestSys(t, ModeACC)
	// One committed transfer.
	if err := s.eng.Run("transfer", &transferArgs{From: 1, To: 2, Amount: 25}); err != nil {
		t.Fatal(err)
	}
	// One transfer "crashes" between debit and credit: simulate by running
	// the debit step body through a transfer whose credit step blocks, then
	// cutting the log at that point.
	crashed := make(chan struct{})
	hang := make(chan struct{})
	go func() {
		s.eng.Run("transfer", &transferArgs{
			From: 3, To: 4, Amount: 40,
			BeforeCredit: func() { close(crashed); <-hang },
		})
	}()
	<-crashed
	logImage := s.eng.Log().DurableBytes() // crash: unforced tail lost

	// Recovery into a fresh system over the freshly loaded base state.
	s2 := newTestSys(t, ModeACC)
	res, err := s2.eng.Recover(logImage)
	if err != nil {
		t.Fatal(err)
	}
	close(hang)
	if res.Committed != 1 {
		t.Fatalf("recovered %d commits, want 1", res.Committed)
	}
	if len(res.Compensated) != 1 || res.Compensated[0] != "transfer" {
		t.Fatalf("compensated = %v", res.Compensated)
	}
	// Committed transfer applied; crashed transfer compensated.
	if s2.balance(t, 1) != 75 || s2.balance(t, 2) != 125 {
		t.Fatalf("committed transfer lost: %d/%d", s2.balance(t, 1), s2.balance(t, 2))
	}
	if s2.balance(t, 3) != 100 || s2.balance(t, 4) != 100 {
		t.Fatalf("crashed transfer not compensated: %d/%d", s2.balance(t, 3), s2.balance(t, 4))
	}
	if s2.total(t) != 600 {
		t.Fatalf("total = %d", s2.total(t))
	}
}

func TestRecoveryRejectsUnknownType(t *testing.T) {
	s := newTestSys(t, ModeACC)
	crashed := make(chan struct{})
	hang := make(chan struct{})
	defer close(hang)
	go func() {
		s.eng.Run("transfer", &transferArgs{
			From: 1, To: 2, Amount: 1,
			BeforeCredit: func() { close(crashed); <-hang },
		})
	}()
	<-crashed
	img := s.eng.Log().DurableBytes()
	// An engine without the type registered cannot recover it.
	empty := New(NewDB(), interference.NewBuilder().Build())
	if _, err := empty.Recover(img); err == nil {
		t.Fatal("recovery with unknown type accepted")
	}
}

func TestDeadlockStepRetryTransparent(t *testing.T) {
	// Two transfers lock (from,to) in opposite orders within one step by
	// using a custom two-account step; the victim's step retries and both
	// commit.
	s := newTestSys(t, ModeACC)
	b2 := &TxnType{
		Name: "pairupdate",
		ID:   s.txnTransfer,
		Steps: []Step{{
			Name: "both", Type: s.stepDebit,
			Body: func(tc *Ctx) error {
				a := tc.Args().(*transferArgs)
				if err := s.add(tc, a.From, -1); err != nil {
					return err
				}
				if a.AfterDebit != nil {
					a.AfterDebit()
				}
				return s.add(tc, a.To, 1)
			},
		}},
		Comp: &Compensation{Type: s.stepComp, Body: func(*Ctx, int) error { return nil }},
	}
	s.eng.MustRegister(b2)
	var arrived sync.WaitGroup
	arrived.Add(2)
	var once1, once2 sync.Once
	onces := []*sync.Once{&once1, &once2}
	var next int
	var mu sync.Mutex
	// Each transaction rendezvouses only on its first attempt; a deadlock
	// retry must not wait again.
	rendezvous := func() {
		mu.Lock()
		idx := next % 2
		next++
		mu.Unlock()
		onces[idx].Do(func() {
			arrived.Done()
			arrived.Wait()
		})
	}
	var wg sync.WaitGroup
	var errs [2]error
	wg.Add(2)
	go func() {
		defer wg.Done()
		errs[0] = s.eng.Run("pairupdate", &transferArgs{From: 5, To: 6, AfterDebit: rendezvous})
	}()
	go func() {
		defer wg.Done()
		errs[1] = s.eng.Run("pairupdate", &transferArgs{From: 6, To: 5, AfterDebit: rendezvous})
	}()
	wg.Wait()
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("deadlock not resolved transparently: %v / %v", errs[0], errs[1])
	}
	if s.balance(t, 5) != 100 || s.balance(t, 6) != 100 {
		t.Fatal("balances corrupted by retry")
	}
	ls := s.eng.Locks().Stats()
	if ls.Deadlocks == 0 {
		t.Fatal("expected at least one deadlock")
	}
}

func TestHistoryDisabledByDefault(t *testing.T) {
	db := NewDB()
	eng := New(db, interference.NewBuilder().Build())
	if eng.History() != nil {
		t.Fatal("history should be nil when disabled")
	}
}

func TestConflictSerializableChecker(t *testing.T) {
	// Hand-built histories.
	ser := &History{Accesses: []Access{
		{Txn: 1, Seq: 0, Table: "t", PK: "a", Write: true},
		{Txn: 1, Seq: 1, Table: "t", PK: "b", Write: true},
		{Txn: 2, Seq: 2, Table: "t", PK: "a", Write: true},
		{Txn: 2, Seq: 3, Table: "t", PK: "b", Write: true},
	}}
	if !ser.ConflictSerializable() {
		t.Fatal("serial history rejected")
	}
	cyc := &History{Accesses: []Access{
		{Txn: 1, Seq: 0, Table: "t", PK: "a", Write: true},
		{Txn: 2, Seq: 1, Table: "t", PK: "a", Write: true},
		{Txn: 2, Seq: 2, Table: "t", PK: "b", Write: true},
		{Txn: 1, Seq: 3, Table: "t", PK: "b", Write: true},
	}}
	if cyc.ConflictSerializable() {
		t.Fatal("cyclic history accepted")
	}
	readsOnly := &History{Accesses: []Access{
		{Txn: 1, Seq: 0, Table: "t", PK: "a"},
		{Txn: 2, Seq: 1, Table: "t", PK: "a"},
		{Txn: 1, Seq: 2, Table: "t", PK: "a"},
	}}
	if !readsOnly.ConflictSerializable() {
		t.Fatal("read-only history rejected")
	}
}
