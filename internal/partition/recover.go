package partition

import (
	"context"
	"fmt"

	"accdb/internal/core"
	"accdb/internal/wal"
)

// RecoverResult aggregates per-partition crash recovery plus the
// coordinator-level completion pass.
type RecoverResult struct {
	// Partitions holds each engine's own recovery outcome, in partition
	// order: redo applied, local pending transactions compensated.
	Partitions []*core.RecoverResult
	// ForwardDriven lists global transactions whose home transaction had
	// committed: their decision records were closed with a commit mark (and
	// any shot missing from its partition log — unreachable under the
	// protocol's ordering, handled defensively — re-driven).
	ForwardDriven []uint64
	// Undone lists global transactions rolled back: their committed shots
	// were compensated in reverse order and their decision records closed
	// with an abort mark.
	Undone []uint64
}

// Recover restores the Set after a crash. It runs each partition's own
// three-pass recovery first (analysis, redo, local compensation), then
// resolves every open multi-shot decision record found in the partition
// logs:
//
//   - home transaction committed → the global transaction committed (the
//     home commit force is the global commit point; every shot's commit
//     force preceded it). The decision record is closed with TCoordCommit;
//     a shot with no trace in its partition log — impossible under the
//     ordering, but checked — is defensively re-driven from the plan.
//   - otherwise → the global transaction rolls back: every shot that
//     committed and was not already undone is compensated in reverse plan
//     order, with arguments decoded from the shot's own end-of-step work
//     area (its runtime state, not the plan's initial arguments), then the
//     decision record is closed with a forced TCoordAbort.
//
// Recover is idempotent: a crash during recovery leaves either more undo
// shots committed (skipped next time via their (global, -i) stamps) or the
// closing record missing (rewritten next time). Routes and undo specs must
// be registered before calling Recover.
func (s *Set) Recover() (*RecoverResult, error) {
	res := &RecoverResult{}
	analyses := make([]*wal.Analysis, len(s.engines))
	for p, eng := range s.engines {
		if eng.Log() == nil {
			return nil, fmt.Errorf("partition %d: no WAL attached, nothing to recover from", p)
		}
		r, err := eng.RecoverLog(eng.Log())
		if err != nil {
			return nil, fmt.Errorf("partition %d: %w", p, err)
		}
		res.Partitions = append(res.Partitions, r)
		analyses[p] = r.Analysis
	}

	var maxGlobal uint64
	for _, a := range analyses {
		if a.MaxGlobal > maxGlobal {
			maxGlobal = a.MaxGlobal
		}
	}

	for home, a := range analyses {
		for _, g := range sortedKeys(a.Coords) {
			c := a.Coords[g]
			shots, err := s.decodePlan(c.Plan)
			if err != nil {
				return nil, fmt.Errorf("partition %d: global %d plan: %w", home, g, err)
			}
			homeTxn := a.ShotTxn(g, 0)
			if c.Committed || (homeTxn != nil && homeTxn.Committed) {
				// Committed global: every shot must be present and committed
				// on its partition. Under a whole-process crash they all are
				// (each shot's commit force preceded the home's); a partial
				// log loss — one partition's log froze while the process kept
				// committing elsewhere — can drop one, so re-drive whatever
				// is missing.
				redriven := false
				for i, sh := range shots {
					if st := analyses[sh.Partition].ShotTxn(g, int32(i+1)); st != nil && st.Committed {
						continue
					}
					if err := s.runShot(context.Background(), g, int32(i+1), sh); err != nil {
						return nil, fmt.Errorf("partition: re-driving global %d shot %d: %w", g, i+1, err)
					}
					redriven = true
				}
				if c.Open() {
					appendRec(s.engines[home].Log(), wal.Record{Type: wal.TCoordCommit, Txn: g})
				}
				if c.Open() || redriven {
					res.ForwardDriven = append(res.ForwardDriven, g)
				}
				s.untrack(g)
				continue
			}
			// Rolled-back (or undecided) global: every committed shot must
			// have a committed undo. The undos of a closed-aborted record were
			// durable before its TCoordAbort force under a whole-process
			// crash; partial log loss is again the exception, and the undo
			// pass below is idempotent either way.
			undone := false
			for i := len(shots) - 1; i >= 0; i-- {
				st := analyses[shots[i].Partition].ShotTxn(g, int32(i+1))
				if st == nil || !st.Committed {
					// Never committed: its partition's own recovery already
					// discarded or compensated whatever it started.
					continue
				}
				if undoSt := analyses[shots[i].Partition].ShotTxn(g, -int32(i+1)); undoSt != nil && undoSt.Committed {
					continue // undone before the crash (or by a prior recovery)
				}
				args := shots[i].Args
				if len(st.WorkArea) > 0 {
					// The shot's end-of-step record preserved its runtime work
					// area (identifiers assigned, quantities actually taken);
					// the undo must see that, not the plan's initial arguments.
					if tt := s.engines[0].Type(shots[i].Type); tt != nil && tt.DecodeArgs != nil {
						dec, derr := tt.DecodeArgs(st.WorkArea)
						if derr != nil {
							return nil, fmt.Errorf("partition: global %d shot %d work area: %w", g, i+1, derr)
						}
						args = dec
					}
				}
				spec, ok := s.undoSpec(shots[i].Type)
				if !ok {
					return nil, fmt.Errorf("partition: no undo registered for shot type %q (global %d)", shots[i].Type, g)
				}
				if err := s.undoShotOn(s.engines[shots[i].Partition], g, int32(i+1), shots[i].Type, args, spec); err != nil {
					return nil, fmt.Errorf("partition: recovery undo of global %d shot %d: %w", g, i+1, err)
				}
				undone = true
			}
			if c.Open() {
				appendForceRec(s.engines[home].Log(), wal.Record{Type: wal.TCoordAbort, Txn: g})
			}
			if c.Open() || undone {
				res.Undone = append(res.Undone, g)
			}
			s.untrack(g)
		}
	}

	if cur := s.nextGlobal.Load(); cur < maxGlobal {
		s.nextGlobal.Store(maxGlobal)
	}
	return res, nil
}
