package partition

import (
	"context"
	"encoding/binary"
	"fmt"
	"time"

	"accdb/internal/core"
	"accdb/internal/fault"
	"accdb/internal/trace"
	"accdb/internal/wal"
)

// The multi-shot commit protocol (DESIGN.md §16). A cross-partition
// transaction with home partition h and remote shots 1..k runs as:
//
//  1. Force a TCoordBegin decision record — global id, home transaction
//     type, encoded shot plan — into h's WAL. From here the global
//     transaction is recoverable from h's log alone.
//  2. Run the home transaction on h. Its hook step (reached while the home
//     transaction holds its exposure marks and reservations) runs each
//     remote shot in plan order as an ordinary local transaction on its
//     partition, stamped (global, i) in that partition's begin record. Each
//     shot's local commit is forced by its own engine before the next shot
//     starts; an advisory TCoordShot lands in h's log after each.
//  3. The home transaction commits last. Its commit force is the global
//     commit point: home committed ⇒ every remote shot durably committed.
//     An advisory TCoordCommit closes the decision record.
//  4. If anything fails after shots committed — the home transaction
//     aborted or was compensated, a later shot aborted, a deadlock victim
//     exhausted its retries — the coordinator runs each committed shot's
//     compensating undo in reverse order (§3.4 lifted across partitions),
//     then forces TCoordAbort. The undo shots are stamped (global, -i).
//
// Crash recovery (recover.go) replays open decision records: a home-committed
// global is driven forward (defensively — the invariant says its shots
// already committed), anything else is rolled back by the same undo path
// using the work areas the shots' own end-of-step records preserved.

// Coordinator fault points, enumerated by the crash matrix alongside the
// wal/core points.
const (
	fpCoordBegin  = "partition.coord.begin.crash"
	fpCoordShot   = "partition.coord.shot.crash"
	fpCoordCommit = "partition.coord.commit.crash"
	fpCoordUndo   = "partition.coord.undo.crash"
)

func init() {
	fault.Declare(fpCoordBegin, fault.Crash,
		"crash after the coordinator forced its decision record, before any shot ran")
	fault.Declare(fpCoordShot, fault.Crash,
		"crash between shots of a cross-partition transaction, after a remote shot committed")
	fault.Declare(fpCoordCommit, fault.Crash,
		"crash after the home transaction committed, before the advisory commit record")
	fault.Declare(fpCoordUndo, fault.Crash,
		"crash mid-compensation, after an undo shot committed but before the abort record")
}

// crashPoint consults a coordinator fault point; a fired Crash freezes every
// partition's log (the whole process "dies", not one partition) and lets
// execution continue — appends after the freeze are non-durable, exactly the
// prefix a kill would leave.
func (s *Set) crashPoint(name string) {
	if fault.Point(name).Effect == fault.Crash {
		for _, e := range s.engines {
			if l := e.Log(); l != nil {
				l.Crash()
			}
		}
	}
}

// appendRec / appendForceRec tolerate WAL-less engines: a purely in-memory
// partition set runs the same protocol, it just has nothing to recover.
func appendRec(l *wal.Log, rec wal.Record) {
	if l != nil {
		l.Append(rec)
	}
}

func appendForceRec(l *wal.Log, rec wal.Record) {
	if l != nil {
		l.AppendForce(rec)
	}
}

// Hook runs the pending remote shots of the in-flight cross-partition
// transaction. The home transaction type's hook step pulls it out of the
// step context (HookFrom) and invokes it while the home transaction holds
// its marks; a non-nil error aborts the home transaction, which rolls the
// global transaction back.
type Hook func() error

type hookKey struct{}

// WithHook attaches a shot hook to a context.
func WithHook(ctx context.Context, h Hook) context.Context {
	return context.WithValue(ctx, hookKey{}, h)
}

// HookFrom extracts the shot hook, if any. A home transaction type's hook
// step treats absence as "no remote work" and succeeds immediately, so the
// same type definition runs unchanged on a single engine.
func HookFrom(ctx context.Context) (Hook, bool) {
	h, ok := ctx.Value(hookKey{}).(Hook)
	return h, ok
}

// runCross executes one cross-partition transaction through the multi-shot
// protocol above.
func (s *Set) runCross(ctx context.Context, tt *core.TxnType, args any, home int, shots []Shot, sp *trace.Span) error {
	for _, sh := range shots {
		if sh.Partition < 0 || sh.Partition >= len(s.engines) {
			return fmt.Errorf("partition: %s shot %q targets partition %d of %d",
				tt.Name, sh.Type, sh.Partition, len(s.engines))
		}
		if sh.Partition == home {
			return fmt.Errorf("partition: %s shot %q targets its own home partition %d", tt.Name, sh.Type, home)
		}
	}
	plan, err := s.encodePlan(shots)
	if err != nil {
		return fmt.Errorf("partition: encoding %s shot plan: %w", tt.Name, err)
	}

	g := s.nextGlobal.Add(1)
	s.crossStarted.Add(1)
	homeEng := s.engines[home]
	start := time.Now()

	// 1. The decision record. Forced: after this the global transaction
	// exists durably and recovery owns its fate.
	appendForceRec(homeEng.Log(), wal.Record{Type: wal.TCoordBegin, Txn: g, TxnType: tt.Name, WorkArea: plan})
	if l := homeEng.Log(); l != nil && l.Crashed() {
		// The home log froze (a simulated crash) and the force above may have
		// been silently absorbed. Running shots now could durably commit them
		// on healthy partitions with no decision record anywhere — orphans no
		// recovery pass would find. Crash state is sticky, so a clean check
		// here proves the record is durable.
		return fmt.Errorf("partition: global %d: home log crashed before the decision record was durable", g)
	}
	s.emit(trace.KindCoordBegin, g, -1, tt.Name, 0, fmt.Sprintf("home=%d shots=%d", home, len(shots)))
	s.crashPoint(fpCoordBegin)

	// The per-global cancel is the deadlock detector's doom lever: it stops
	// the engines' retry loops (they check ctx between attempts) as well as
	// the current lock wait.
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	s.shotMu.Lock()
	s.cancels[g] = cancel
	s.shotMu.Unlock()
	defer s.untrack(g)

	// done survives home-transaction retries: a deadlock-victim home attempt
	// reruns its hook step, which must continue from the first uncommitted
	// shot, not re-execute committed ones.
	done := make([]bool, len(shots))
	hook := func() error {
		for i, sh := range shots {
			if done[i] {
				continue
			}
			if err := s.runShot(cctx, g, int32(i+1), sh); err != nil {
				return err
			}
			done[i] = true
			appendRec(homeEng.Log(), wal.Record{Type: wal.TCoordShot, Txn: g, Step: int32(i + 1)})
			s.crashPoint(fpCoordShot)
		}
		return nil
	}

	// 2-3. The home transaction, hook in context, commits last.
	hctx := core.WithShotTag(WithHook(cctx, hook), core.ShotTag{
		Global: g, Shot: 0, OnTxn: s.track(home, g, false),
	})
	err = homeEng.RunTypeContextSpan(hctx, tt, args, sp)
	if err == nil {
		s.crashPoint(fpCoordCommit)
		appendRec(homeEng.Log(), wal.Record{Type: wal.TCoordCommit, Txn: g})
		s.crossCommitted.Add(1)
		s.emit(trace.KindCoordCommit, g, -1, tt.Name, time.Since(start).Nanoseconds(), "")
		return nil
	}

	// 4. Rollback: the home transaction's own effects are already gone
	// (aborted or compensated by its engine); reverse the committed shots.
	for i := len(shots) - 1; i >= 0; i-- {
		if !done[i] {
			continue
		}
		if uerr := s.undoShot(g, int32(i+1), shots[i].Type, shots[i].Args); uerr != nil {
			s.emit(trace.KindCoordAbort, g, -1, tt.Name, time.Since(start).Nanoseconds(),
				fmt.Sprintf("undo of shot %d failed: %v", i+1, uerr))
			return fmt.Errorf("partition: global %d rollback: undo of shot %d: %w (cause: %v)", g, i+1, uerr, err)
		}
		s.crashPoint(fpCoordUndo)
	}
	// Forced only after every undo is durable: recovery must not see an
	// aborted decision record whose undos still need running.
	appendForceRec(homeEng.Log(), wal.Record{Type: wal.TCoordAbort, Txn: g})
	s.crossAborted.Add(1)
	s.emit(trace.KindCoordAbort, g, -1, tt.Name, time.Since(start).Nanoseconds(), err.Error())
	return err
}

// runShot executes one remote shot as a local transaction on its partition.
// The shot commits (its engine forces its commit record) before runShot
// returns nil, so plan order doubles as durability order.
func (s *Set) runShot(ctx context.Context, g uint64, idx int32, sh Shot) error {
	eng := s.engines[sh.Partition]
	tt := eng.Type(sh.Type)
	if tt == nil {
		return fmt.Errorf("partition %d: %w: %q", sh.Partition, core.ErrUnknownTxnType, sh.Type)
	}
	s.emit(trace.KindShotBegin, g, idx, sh.Type, 0, fmt.Sprintf("partition=%d", sh.Partition))
	start := time.Now()
	sctx := core.WithShotTag(ctx, core.ShotTag{Global: g, Shot: idx, OnTxn: s.track(sh.Partition, g, false)})
	if err := eng.RunTypeContext(sctx, tt, sh.Args); err != nil {
		return fmt.Errorf("shot %d (%s on partition %d): %w", idx, sh.Type, sh.Partition, err)
	}
	s.shotsRun.Add(1)
	s.emit(trace.KindShotEnd, g, idx, sh.Type, time.Since(start).Nanoseconds(), "")
	return nil
}

// undoShot runs the compensating undo of a committed shot. It runs under a
// fresh background context — the global transaction's own context is
// typically already cancelled (deadlock doom) or failed, and compensation,
// like the engine's own §3.4 executor, must proceed regardless. Retries are
// persistent: an undo shot only touches items the forward shot reserved, so
// transient scheduling aborts are the only failures expected.
func (s *Set) undoShot(g uint64, idx int32, shotType string, shotArgs any) error {
	spec, ok := s.undoSpec(shotType)
	if !ok {
		return fmt.Errorf("partition: no undo registered for shot type %q", shotType)
	}
	eng := s.engines[s.shotPartitionOf(shotType, shotArgs)]
	return s.undoShotOn(eng, g, idx, shotType, shotArgs, spec)
}

// shotPartitionOf resolves the partition a shot type instance lives on via
// its route's Home function; shot types route like any other type.
func (s *Set) shotPartitionOf(shotType string, args any) int {
	if r := s.route(shotType); r != nil && r.Home != nil {
		if p := r.Home(args); p >= 0 && p < len(s.engines) {
			return p
		}
	}
	return 0
}

// undoShotOn is undoShot against an explicit engine (recovery knows the
// partition from the plan rather than the route table).
func (s *Set) undoShotOn(eng *core.Engine, g uint64, idx int32, shotType string, shotArgs any, spec UndoSpec) error {
	ut := eng.Type(spec.Type)
	if ut == nil {
		return fmt.Errorf("partition: %w: undo type %q", core.ErrUnknownTxnType, spec.Type)
	}
	args := shotArgs
	if spec.Args != nil {
		args = spec.Args(shotArgs)
	}
	part := s.partitionOfEngine(eng)
	s.emit(trace.KindShotUndo, g, -idx, spec.Type, 0, fmt.Sprintf("partition=%d", part))
	uctx := core.WithShotTag(context.Background(), core.ShotTag{Global: g, Shot: -idx, OnTxn: s.track(part, g, true)})
	var err error
	for attempt := 0; attempt < 100; attempt++ {
		err = eng.RunTypeContext(uctx, ut, args)
		if err == nil || !core.Retryable(err) {
			break
		}
	}
	if err != nil {
		return err
	}
	s.shotUndos.Add(1)
	return nil
}

func (s *Set) partitionOfEngine(eng *core.Engine) int {
	for p, e := range s.engines {
		if e == eng {
			return p
		}
	}
	return 0
}

// encodePlan serializes the shot plan into a TCoordBegin work area:
// uvarint shot count, then per shot uvarint partition, length-prefixed type
// name, length-prefixed encoded arguments. Shot types must declare
// EncodeArgs/DecodeArgs (the same requirement the engine's own crash
// compensation imposes on multi-step types).
func (s *Set) encodePlan(shots []Shot) ([]byte, error) {
	buf := binary.AppendUvarint(nil, uint64(len(shots)))
	for _, sh := range shots {
		tt := s.engines[0].Type(sh.Type)
		if tt == nil {
			return nil, fmt.Errorf("%w: %q", core.ErrUnknownTxnType, sh.Type)
		}
		if tt.EncodeArgs == nil {
			return nil, fmt.Errorf("shot type %q has no EncodeArgs", sh.Type)
		}
		buf = binary.AppendUvarint(buf, uint64(sh.Partition))
		buf = binary.AppendUvarint(buf, uint64(len(sh.Type)))
		buf = append(buf, sh.Type...)
		enc := tt.EncodeArgs(sh.Args)
		buf = binary.AppendUvarint(buf, uint64(len(enc)))
		buf = append(buf, enc...)
	}
	return buf, nil
}

// decodePlan reverses encodePlan, resolving argument decoders through the
// given engine's type registry.
func (s *Set) decodePlan(data []byte) ([]Shot, error) {
	rd := planReader{data: data}
	n := rd.uvarint()
	if rd.err != nil {
		return nil, rd.err
	}
	shots := make([]Shot, 0, n)
	for i := uint64(0); i < n; i++ {
		part := rd.uvarint()
		name := rd.bytes()
		argsEnc := rd.bytes()
		if rd.err != nil {
			return nil, fmt.Errorf("shot %d: %w", i, rd.err)
		}
		tt := s.engines[0].Type(string(name))
		if tt == nil || tt.DecodeArgs == nil {
			return nil, fmt.Errorf("shot %d: cannot decode args of type %q", i, name)
		}
		args, err := tt.DecodeArgs(argsEnc)
		if err != nil {
			return nil, fmt.Errorf("shot %d (%s): %w", i, name, err)
		}
		if int(part) >= len(s.engines) {
			return nil, fmt.Errorf("shot %d targets partition %d of %d", i, part, len(s.engines))
		}
		shots = append(shots, Shot{Partition: int(part), Type: string(name), Args: args})
	}
	return shots, nil
}

type planReader struct {
	data []byte
	err  error
}

func (r *planReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data)
	if n <= 0 {
		r.err = fmt.Errorf("partition: truncated shot plan")
		return 0
	}
	r.data = r.data[n:]
	return v
}

func (r *planReader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if uint64(len(r.data)) < n {
		r.err = fmt.Errorf("partition: truncated shot plan")
		return nil
	}
	b := r.data[:n]
	r.data = r.data[n:]
	return b
}
