package partition_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"accdb/internal/core"
	"accdb/internal/partition"
	"accdb/internal/tpcc"
)

// benchSet builds an in-memory partitioned TPC-C system for benchmarks.
func benchSet(b *testing.B, parts int, scale tpcc.Scale) *partition.Set {
	b.Helper()
	set, err := partition.New(parts, func(p int) (*core.Engine, error) {
		db := core.NewDB()
		if err := tpcc.CreateSchema(db); err != nil {
			return nil, err
		}
		if err := tpcc.LoadPartition(db, scale, 1, p, parts); err != nil {
			return nil, err
		}
		types := tpcc.BuildTypes()
		eng := core.New(db, types.Tables,
			core.WithMode(core.ModeACC),
			core.WithWaitTimeout(10*time.Second),
			core.WithEngineLabel(fmt.Sprintf("partition %d", p)),
		)
		if _, err := tpcc.RegisterPartitioned(eng, types, scale, parts); err != nil {
			return nil, err
		}
		return eng, nil
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { set.Close() })
	tpcc.InstallRoutes(set)
	return set
}

// BenchmarkPartitionThroughput measures the TPC-C mix against a 4-partition
// set at varying remote-warehouse shares. remote=0 is the router's fast-path
// baseline — every transaction routes whole to its home engine; higher
// shares price the multi-shot coordinator (decision-record force plus one
// forced commit per remote shot). CI records this as BENCH_partition.json.
func BenchmarkPartitionThroughput(b *testing.B) {
	for _, remotePct := range []int{0, 10, 30} {
		b.Run(fmt.Sprintf("remote=%d", remotePct), func(b *testing.B) {
			scale := tpcc.Scale{
				Warehouses: 4, Districts: 2, CustomersPerDistrict: 60,
				Items: 50, InitialOrdersPerDistrict: 20, NewOrderBacklog: 8,
			}
			set := benchSet(b, 4, scale)
			wcfg := tpcc.DefaultWorkloadConfig(scale)
			wcfg.RemotePercent = remotePct
			w := tpcc.NewRemoteWorkload(set.Run, wcfg)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				r := rand.New(rand.NewSource(rand.Int63()))
				term := int(r.Int31n(1024))
				for pb.Next() {
					w.Next(r, term).Run()
				}
			})
			b.StopTimer()
			st := set.Snapshot()
			if total := st.SingleRouted + st.CrossStarted; total > 0 {
				b.ReportMetric(float64(st.CrossStarted)/float64(total)*100, "cross%")
			}
		})
	}
}
