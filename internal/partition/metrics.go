package partition

import (
	"fmt"
	"io"
)

// WriteMetrics writes the Set's coordinator counters in Prometheus text
// format — the debug endpoint mounts it next to the engine metrics via
// debughttp.SetExtraMetrics.
func (s *Set) WriteMetrics(w io.Writer) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	fmt.Fprintf(w, "# HELP accdb_partition_count Configured partition count.\n"+
		"# TYPE accdb_partition_count gauge\naccdb_partition_count %d\n", len(s.engines))
	st := s.Snapshot()
	counter("accdb_partition_single_routed_total", "Transactions routed whole to one partition.", st.SingleRouted)
	counter("accdb_partition_cross_started_total", "Cross-partition transactions begun.", st.CrossStarted)
	counter("accdb_partition_cross_committed_total", "Cross-partition transactions committed.", st.CrossCommitted)
	counter("accdb_partition_cross_aborted_total", "Cross-partition transactions rolled back.", st.CrossAborted)
	counter("accdb_partition_shots_total", "Remote shots committed.", st.ShotsRun)
	counter("accdb_partition_shot_undos_total", "Compensating undo shots run.", st.ShotUndos)
	counter("accdb_partition_cross_deadlocks_total", "Cross-partition deadlock victims doomed.", st.CrossDeadlocks)
}
