package partition_test

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"accdb/internal/core"
	"accdb/internal/fault"
	"accdb/internal/interference"
	"accdb/internal/partition"
	"accdb/internal/spi"
	"accdb/internal/tpcc"
	"accdb/internal/wal"

	_ "accdb/internal/backends" // default storage backends
)

// buildTPCCSet assembles a partitioned TPC-C system: one engine per
// partition, each loaded with its own warehouses (plus the replicated item
// table) and, when walBase is non-empty, its own disk-backed log under
// walBase/p<N>.
func buildTPCCSet(t testing.TB, parts int, scale tpcc.Scale, seed int64, walBase string, opts ...partition.Option) *partition.Set {
	t.Helper()
	set, err := partition.New(parts, func(p int) (*core.Engine, error) {
		db := core.NewDB()
		if err := tpcc.CreateSchema(db); err != nil {
			return nil, err
		}
		if err := tpcc.LoadPartition(db, scale, seed, p, parts); err != nil {
			return nil, err
		}
		types := tpcc.BuildTypes()
		eopts := []core.Option{
			core.WithMode(core.ModeACC),
			core.WithWaitTimeout(10 * time.Second),
			core.WithEngineLabel(fmt.Sprintf("partition %d", p)),
		}
		if walBase != "" {
			l, err := wal.Open(filepath.Join(walBase, fmt.Sprintf("p%d", p)), wal.Options{})
			if err != nil {
				return nil, err
			}
			eopts = append(eopts, core.WithWAL(l))
		}
		eng := core.New(db, types.Tables, eopts...)
		if _, err := tpcc.RegisterPartitioned(eng, types, scale, parts); err != nil {
			return nil, err
		}
		return eng, nil
	}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	tpcc.InstallRoutes(set)
	return set
}

func partitionDBs(set *partition.Set) []*core.DB {
	dbs := make([]*core.DB, set.Partitions())
	for p := range dbs {
		dbs[p] = set.Engine(p).DB()
	}
	return dbs
}

func smallScale(warehouses int) tpcc.Scale {
	return tpcc.Scale{
		Warehouses: warehouses, Districts: 2, CustomersPerDistrict: 10,
		Items: 40, InitialOrdersPerDistrict: 10, NewOrderBacklog: 4,
	}
}

// stockYTD reads s_ytd of one stock row straight from a partition's store.
func stockYTD(t *testing.T, set *partition.Set, part int, w, item int64) int64 {
	t.Helper()
	st := set.Engine(part).DB().Store().Table(tpcc.TStock)
	row, err := st.Get(spi.EncodeKey(spi.I64(w), spi.I64(item)))
	if err != nil {
		t.Fatalf("stock (%d,%d) on partition %d: %v", w, item, part, err)
	}
	return row[st.Schema().MustCol("s_ytd")].Int64()
}

func newOrderArgs(w int64, lines ...tpcc.OrderLineReq) *tpcc.NewOrderArgs {
	return &tpcc.NewOrderArgs{
		WID: w, DID: 1, CID: 1, Lines: lines,
		Filled:  make([]int64, len(lines)),
		Amounts: make([]int64, len(lines)),
	}
}

// TestSinglePartitionFastPath: a transaction whose footprint stays on its
// home partition routes straight to that engine — no decision record, no
// coordinator state, just the counter.
func TestSinglePartitionFastPath(t *testing.T) {
	scale := smallScale(2)
	set := buildTPCCSet(t, 2, scale, 1, "")
	defer set.Close()

	// Home-only new-order on warehouse 2 (partition 1) and a payment on
	// warehouse 1 (partition 0).
	if err := set.Run("new_order", newOrderArgs(2,
		tpcc.OrderLineReq{ItemID: 1, SupplyW: 2, Quantity: 3},
		tpcc.OrderLineReq{ItemID: 2, SupplyW: 2, Quantity: 1},
	)); err != nil {
		t.Fatal(err)
	}
	if err := set.Run("payment", &tpcc.PaymentArgs{
		WID: 1, DID: 1, CWID: 1, CDID: 1, CID: 1, Amount: 500, HID: 1 << 30,
	}); err != nil {
		t.Fatal(err)
	}

	st := set.Snapshot()
	if st.SingleRouted != 2 {
		t.Errorf("single-routed = %d, want 2", st.SingleRouted)
	}
	if st.CrossStarted != 0 || st.ShotsRun != 0 {
		t.Errorf("cross-partition machinery engaged for local transactions: %+v", st)
	}
	// The order landed on partition 1, nothing on partition 0.
	if n := set.Engine(1).DB().Store().Table(tpcc.TNewOrder).Len(); n == 0 {
		t.Error("new order missing from its home partition")
	}
	if errs := tpcc.CheckConsistencyPartitioned(partitionDBs(set), scale, nil); len(errs) > 0 {
		t.Fatalf("consistency: %v", errs[0])
	}
}

// TestCrossPartitionNewOrder: a new-order with a remote-partition supply
// line runs as home transaction + one no_stock shot; both partitions end up
// with the correct stock and the battery (including the cross-partition
// condition 13) holds.
func TestCrossPartitionNewOrder(t *testing.T) {
	scale := smallScale(2)
	set := buildTPCCSet(t, 2, scale, 1, "")
	defer set.Close()

	before := stockYTD(t, set, 1, 2, 7)
	// Home warehouse 1 (partition 0), one local line, one line supplied by
	// warehouse 2 (partition 1).
	if err := set.Run("new_order", newOrderArgs(1,
		tpcc.OrderLineReq{ItemID: 3, SupplyW: 1, Quantity: 2},
		tpcc.OrderLineReq{ItemID: 7, SupplyW: 2, Quantity: 5},
	)); err != nil {
		t.Fatal(err)
	}

	st := set.Snapshot()
	if st.CrossStarted != 1 || st.CrossCommitted != 1 || st.ShotsRun != 1 {
		t.Errorf("cross counters = %+v, want one committed cross transaction with one shot", st)
	}
	if st.ShotUndos != 0 || st.CrossAborted != 0 {
		t.Errorf("unexpected rollback activity: %+v", st)
	}
	if got := stockYTD(t, set, 1, 2, 7); got != before+5 {
		t.Errorf("remote stock s_ytd = %d, want %d", got, before+5)
	}
	if errs := tpcc.CheckConsistencyPartitioned(partitionDBs(set), scale, nil); len(errs) > 0 {
		t.Fatalf("consistency: %v", errs[0])
	}
}

// TestCrossPartitionRollback: a remote order that aborts in its finish step
// — after the remote shot committed — must be compensated on both
// partitions: the home engine's §3.4 rollback locally, the coordinator's
// no_stock_undo shot remotely.
func TestCrossPartitionRollback(t *testing.T) {
	scale := smallScale(2)
	set := buildTPCCSet(t, 2, scale, 1, "")
	defer set.Close()

	before := stockYTD(t, set, 1, 2, 9)
	args := newOrderArgs(1,
		tpcc.OrderLineReq{ItemID: 4, SupplyW: 1, Quantity: 1},
		tpcc.OrderLineReq{ItemID: 9, SupplyW: 2, Quantity: 4},
	)
	args.FailFinal = true
	err := set.Run("new_order", args)
	if err == nil {
		t.Fatal("FailFinal new-order committed")
	}
	if !core.IsCompensated(err) {
		t.Fatalf("want compensated error, got %v", err)
	}

	st := set.Snapshot()
	if st.CrossAborted != 1 || st.ShotsRun != 1 || st.ShotUndos != 1 {
		t.Errorf("cross counters = %+v, want one aborted cross transaction, one shot, one undo", st)
	}
	if got := stockYTD(t, set, 1, 2, 9); got != before {
		t.Errorf("remote stock s_ytd = %d after rollback, want %d", got, before)
	}
	holes := map[tpcc.DistrictKey]map[int64]bool{
		{W: 1, D: 1}: {args.ONum: true},
	}
	if errs := tpcc.CheckConsistencyPartitioned(partitionDBs(set), scale, holes); len(errs) > 0 {
		t.Fatalf("consistency: %v", errs[0])
	}
}

// TestMultiShotPlan: remote lines on two different partitions become two
// shots; a finish-step abort then undoes both in reverse order.
func TestMultiShotPlan(t *testing.T) {
	scale := smallScale(3)
	set := buildTPCCSet(t, 3, scale, 1, "")
	defer set.Close()

	if err := set.Run("new_order", newOrderArgs(1,
		tpcc.OrderLineReq{ItemID: 1, SupplyW: 1, Quantity: 1},
		tpcc.OrderLineReq{ItemID: 2, SupplyW: 2, Quantity: 2},
		tpcc.OrderLineReq{ItemID: 3, SupplyW: 3, Quantity: 3},
	)); err != nil {
		t.Fatal(err)
	}
	if st := set.Snapshot(); st.ShotsRun != 2 {
		t.Errorf("shots = %d, want 2 (one per remote partition)", st.ShotsRun)
	}

	args := newOrderArgs(2,
		tpcc.OrderLineReq{ItemID: 5, SupplyW: 1, Quantity: 1},
		tpcc.OrderLineReq{ItemID: 6, SupplyW: 3, Quantity: 2},
	)
	args.FailFinal = true
	if err := set.Run("new_order", args); err == nil {
		t.Fatal("FailFinal new-order committed")
	}
	if st := set.Snapshot(); st.ShotUndos != 2 {
		t.Errorf("shot undos = %d, want 2", st.ShotUndos)
	}
	holes := map[tpcc.DistrictKey]map[int64]bool{
		{W: 2, D: 1}: {args.ONum: true},
	}
	if errs := tpcc.CheckConsistencyPartitioned(partitionDBs(set), scale, holes); len(errs) > 0 {
		t.Fatalf("consistency: %v", errs[0])
	}
}

// TestPartitionedConsistencyUnderLoad is the acceptance battery: four
// partitions, the full mix with a high remote-warehouse share, concurrent
// terminals, then every consistency condition — including the
// cross-partition stock/order-line tie (condition 13) — over the union of
// the partition stores.
func TestPartitionedConsistencyUnderLoad(t *testing.T) {
	scale := tpcc.Scale{
		Warehouses: 4, Districts: 2, CustomersPerDistrict: 20,
		Items: 60, InitialOrdersPerDistrict: 20, NewOrderBacklog: 8,
	}
	set := buildTPCCSet(t, 4, scale, 42, "")
	defer set.Close()

	wcfg := tpcc.DefaultWorkloadConfig(scale)
	wcfg.RemotePercent = 30
	wcfg.RollbackPercent = 10
	w := tpcc.NewRemoteWorkload(set.Run, wcfg)

	const terminals, opsPerTerminal = 8, 150
	var wg sync.WaitGroup
	for term := 0; term < terminals; term++ {
		wg.Add(1)
		go func(term int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(42 + int64(term)*7919))
			for i := 0; i < opsPerTerminal; i++ {
				w.Next(r, term).Run()
			}
		}(term)
	}
	wg.Wait()

	st := set.Snapshot()
	if st.CrossStarted == 0 {
		t.Fatal("no cross-partition transactions in a 30% remote mix")
	}
	if st.SingleRouted == 0 {
		t.Fatal("no single-partition transactions")
	}
	t.Logf("routing: single=%d crossStarted=%d crossCommitted=%d crossAborted=%d shots=%d undos=%d deadlocks=%d",
		st.SingleRouted, st.CrossStarted, st.CrossCommitted, st.CrossAborted,
		st.ShotsRun, st.ShotUndos, st.CrossDeadlocks)

	errs := tpcc.CheckConsistencyPartitioned(partitionDBs(set), scale, w.Holes())
	for i, err := range errs {
		if i > 5 {
			t.Fatalf("... and %d more", len(errs)-i)
		}
		t.Error(err)
	}
}

// TestRecoverForwardDrive: crash right after a cross-partition commit. The
// home commit force is the global commit point, but the advisory
// TCoordCommit behind it is lost with the page cache — recovery must close
// the decision record as committed, not roll the shots back.
func TestRecoverForwardDrive(t *testing.T) {
	scale := smallScale(2)
	dir := t.TempDir()
	set := buildTPCCSet(t, 2, scale, 1, dir)

	if err := set.Run("new_order", newOrderArgs(1,
		tpcc.OrderLineReq{ItemID: 3, SupplyW: 1, Quantity: 2},
		tpcc.OrderLineReq{ItemID: 7, SupplyW: 2, Quantity: 5},
	)); err != nil {
		t.Fatal(err)
	}
	after := stockYTD(t, set, 1, 2, 7)
	for _, e := range set.Engines() {
		e.Log().Crash()
	}
	set.Close()
	for _, e := range set.Engines() {
		e.Log().Close()
	}

	set2 := buildTPCCSet(t, 2, scale, 1, dir)
	defer set2.Close()
	res, err := set2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ForwardDriven) != 1 || len(res.Undone) != 0 {
		t.Fatalf("recovery closed %v forward, %v undone; want 1 forward", res.ForwardDriven, res.Undone)
	}
	if got := stockYTD(t, set2, 1, 2, 7); got != after {
		t.Errorf("recovered remote stock s_ytd = %d, want %d", got, after)
	}
	if errs := tpcc.CheckConsistencyPartitioned(partitionDBs(set2), scale, nil); len(errs) > 0 {
		t.Fatalf("consistency after recovery: %v", errs[0])
	}
}

// TestRecoverUndoesShots: crash between shots (the partition.coord.shot
// fault point). The shot's commit is durable on its partition, the home
// transaction is not — recovery must compensate the home transaction
// locally and run the shot's undo from the work area its end-of-step record
// preserved.
func TestRecoverUndoesShots(t *testing.T) {
	scale := smallScale(2)
	dir := t.TempDir()
	set := buildTPCCSet(t, 2, scale, 1, dir)

	before := stockYTD(t, set, 1, 2, 9)
	ctrl := fault.NewController(1)
	ctrl.Arm("partition.coord.shot.crash", fault.Spec{Effect: fault.Crash, Nth: 1})
	ctrl.Activate()
	err := set.Run("new_order", newOrderArgs(1,
		tpcc.OrderLineReq{ItemID: 4, SupplyW: 1, Quantity: 1},
		tpcc.OrderLineReq{ItemID: 9, SupplyW: 2, Quantity: 4},
	))
	fault.Deactivate()
	// The frozen logs make everything after the crash point non-durable; the
	// in-process run itself continues and commits.
	if err != nil {
		t.Fatalf("post-crash-point execution: %v", err)
	}
	set.Close()
	for _, e := range set.Engines() {
		e.Log().Close()
	}

	set2 := buildTPCCSet(t, 2, scale, 1, dir)
	defer set2.Close()
	res, err := set2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Undone) != 1 || len(res.ForwardDriven) != 0 {
		t.Fatalf("recovery closed %v undone, %v forward; want 1 undone", res.Undone, res.ForwardDriven)
	}
	if got := stockYTD(t, set2, 1, 2, 9); got != before {
		t.Errorf("remote stock s_ytd = %d after recovery undo, want %d", got, before)
	}
	holes := tpcc.HolesFromRecovery(res.Partitions[0])
	if errs := tpcc.CheckConsistencyPartitioned(partitionDBs(set2), scale, holes); len(errs) > 0 {
		t.Fatalf("consistency after recovery: %v", errs[0])
	}

	// Idempotence: a second recovery pass over the same (reopened) logs finds
	// the decision record closed and does nothing.
	set2.Close()
	for _, e := range set2.Engines() {
		e.Log().Close()
	}
	set3 := buildTPCCSet(t, 2, scale, 1, dir)
	defer set3.Close()
	res3, err := set3.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(res3.Undone) != 0 || len(res3.ForwardDriven) != 0 {
		t.Fatalf("second recovery reopened globals: %+v", res3)
	}
}

// TestCrossPartitionDeadlock builds the cycle the issue prescribes: two
// cross-partition transactions acquire exposure marks in opposite partition
// order — each holds a row on its home partition and sends a shot after the
// row the other holds. No single engine sees a cycle; only the projection
// of the per-partition waits-for edges through the shot table does. The
// detector dooms the younger global (§3.4's compensating-victim rule: the
// survivor keeps its marks, the victim is compensated) and the survivor
// commits.
func TestCrossPartitionDeadlock(t *testing.T) {
	sys := newLockerSys(t)
	set := sys.set
	defer set.Close()

	barrier := newBarrier(2)
	errs := make(chan error, 2)
	// T1: home partition 0, holds key 1 there, then pokes key 2 on partition 1.
	// T2: home partition 1, holds key 2 there, then pokes key 1 on partition 0.
	go func() {
		errs <- set.Run("locker", &lockerArgs{Home: 0, LocalKey: 1, RemoteKey: 2, barrier: barrier})
	}()
	go func() {
		errs <- set.Run("locker", &lockerArgs{Home: 1, LocalKey: 2, RemoteKey: 1, barrier: barrier})
	}()

	// Background detection is off (WithDetectInterval < 0); drive it by hand
	// until the cycle appears.
	deadline := time.Now().Add(10 * time.Second)
	doomed := 0
	for doomed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("cross-partition deadlock never detected")
		}
		doomed = set.DetectOnce()
		time.Sleep(2 * time.Millisecond)
	}
	if doomed != 1 {
		t.Errorf("doomed %d globals, want 1", doomed)
	}

	var failures []error
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			failures = append(failures, err)
		}
	}
	if len(failures) != 1 {
		t.Fatalf("want exactly one victim, got %d failures: %v", len(failures), failures)
	}
	st := set.Snapshot()
	if st.CrossDeadlocks != 1 {
		t.Errorf("cross deadlocks = %d, want 1", st.CrossDeadlocks)
	}
	if st.CrossCommitted != 1 || st.CrossAborted != 1 {
		t.Errorf("counters = %+v, want one committed and one aborted global", st)
	}

	// Exactly one (home, remote) pair carries the survivor's increments; the
	// victim's home increment was compensated away and its poke never landed.
	v1, v2 := sys.value(t, 0, 1), sys.value(t, 1, 2)
	ok := (v1 == 1 && v2 == 10) || (v1 == 10 && v2 == 1)
	if !ok {
		t.Errorf("final values key1=%d key2=%d; want (1,10) or (10,1)", v1, v2)
	}
}

// --- minimal cross-partition locker system for the deadlock test -----------

type barrier struct {
	mu    sync.Mutex
	n     int
	ch    chan struct{}
	seen  map[*lockerArgs]bool
	total int
}

func newBarrier(n int) *barrier {
	return &barrier{total: n, ch: make(chan struct{}), seen: make(map[*lockerArgs]bool)}
}

// arrive blocks until all parties have arrived once; re-arrival (a retried
// step) passes straight through.
func (b *barrier) arrive(a *lockerArgs) {
	b.mu.Lock()
	if !b.seen[a] {
		b.seen[a] = true
		b.n++
		if b.n == b.total {
			close(b.ch)
		}
	}
	b.mu.Unlock()
	select {
	case <-b.ch:
	case <-time.After(5 * time.Second):
	}
}

type lockerArgs struct {
	Home      int
	LocalKey  int64
	RemoteKey int64
	barrier   *barrier
}

type pokeArgs struct{ Key int64 }

type lockerSys struct {
	set *partition.Set
}

func (s *lockerSys) value(t *testing.T, part int, key int64) int64 {
	t.Helper()
	tb := s.set.Engine(part).DB().Store().Table("kv")
	row, err := tb.Get(spi.EncodeKey(spi.I64(key)))
	if err != nil {
		t.Fatalf("kv %d on partition %d: %v", key, part, err)
	}
	return row[1].Int64()
}

func newLockerSys(t *testing.T) *lockerSys {
	t.Helper()
	b := newInterference()
	set, err := partition.New(2, func(p int) (*core.Engine, error) {
		db := core.NewDB()
		kv := db.MustCreateTable(spi.MustSchema("kv", []spi.Column{
			{Name: "k", Kind: spi.KindInt},
			{Name: "v", Kind: spi.KindInt},
		}, "k"))
		// Partition 0 owns key 1, partition 1 owns key 2.
		if err := kv.Insert(spi.Row{spi.I64(int64(p + 1)), spi.I64(0)}); err != nil {
			return nil, err
		}
		eng := core.New(db, b.tables,
			core.WithMode(core.ModeACC),
			core.WithWaitTimeout(10*time.Second),
			core.WithEngineLabel(fmt.Sprintf("partition %d", p)),
		)
		registerLockerTypes(eng, b)
		return eng, nil
	}, partition.WithDetectInterval(-1))
	if err != nil {
		t.Fatal(err)
	}
	set.SetRoute("locker", partition.Route{
		Home: func(args any) int { return args.(*lockerArgs).Home },
		Split: func(args any) []partition.Shot {
			a := args.(*lockerArgs)
			return []partition.Shot{{Partition: 1 - a.Home, Type: "poke", Args: &pokeArgs{Key: a.RemoteKey}}}
		},
	})
	pokeHome := func(args any) int { return int(args.(*pokeArgs).Key) - 1 }
	set.SetRoute("poke", partition.Route{Home: pokeHome})
	set.SetRoute("poke_undo", partition.Route{Home: pokeHome})
	set.SetUndo("poke", partition.UndoSpec{Type: "poke_undo"})
	return &lockerSys{set: set}
}

func addKV(tc *core.Ctx, key, delta int64) error {
	return tc.Update("kv", []spi.Value{spi.I64(key)}, func(row spi.Row) error {
		row[1] = spi.I64(row[1].Int64() + delta)
		return nil
	})
}

func encodePoke(v any) []byte {
	a := v.(*pokeArgs)
	return []byte(fmt.Sprintf("%d", a.Key))
}

func decodePoke(data []byte) (any, error) {
	var k int64
	if _, err := fmt.Sscanf(string(data), "%d", &k); err != nil {
		return nil, err
	}
	return &pokeArgs{Key: k}, nil
}

// lockerInterference is the design-time registration of the locker system:
// a two-step home transaction, a single-step shot, and its undo. No
// interference freedoms are declared, so every conflicting access waits —
// which is the point: the test needs the waits.
type lockerInterference struct {
	tables                             *interference.Tables
	txnLocker, txnPoke, txnPokeUndo    interference.TxnTypeID
	stGrab, stHook, stPoke, stPokeUndo interference.StepTypeID
	stComp                             interference.StepTypeID
}

func newInterference() *lockerInterference {
	b := interference.NewBuilder()
	li := &lockerInterference{}
	li.txnLocker = b.TxnType("locker", 2)
	li.txnPoke = b.TxnType("poke", 1)
	li.txnPokeUndo = b.TxnType("poke_undo", 1)
	li.stGrab = b.StepType("grab")
	li.stHook = b.StepType("hook")
	li.stPoke = b.StepType("poke")
	li.stPokeUndo = b.StepType("poke-undo")
	li.stComp = b.StepType("comp")
	li.tables = b.Build()
	return li
}

func registerLockerTypes(eng *core.Engine, li *lockerInterference) {
	eng.MustRegister(&core.TxnType{
		Name: "locker",
		ID:   li.txnLocker,
		Steps: []core.Step{
			{Name: "grab", Type: li.stGrab, Body: func(tc *core.Ctx) error {
				a := tc.Args().(*lockerArgs)
				if err := addKV(tc, a.LocalKey, 1); err != nil {
					return err
				}
				// Hold the exposure mark until the peer holds its own: both
				// transactions enter their shot phase with their home rows
				// locked, making the cross-partition cycle certain.
				a.barrier.arrive(a)
				return nil
			}},
			{Name: "hook", Type: li.stHook, Body: func(tc *core.Ctx) error {
				hook, ok := partition.HookFrom(tc.Context())
				if !ok {
					return nil
				}
				return hook()
			}},
		},
		Comp: &core.Compensation{
			Type: li.stComp,
			Body: func(tc *core.Ctx, completed int) error {
				if completed < 1 {
					return nil
				}
				return addKV(tc, tc.Args().(*lockerArgs).LocalKey, -1)
			},
		},
	})
	eng.MustRegister(&core.TxnType{
		Name: "poke", ID: li.txnPoke,
		Steps: []core.Step{{Name: "poke", Type: li.stPoke, Body: func(tc *core.Ctx) error {
			return addKV(tc, tc.Args().(*pokeArgs).Key, 10)
		}}},
		EncodeArgs: encodePoke,
		DecodeArgs: decodePoke,
	})
	eng.MustRegister(&core.TxnType{
		Name: "poke_undo", ID: li.txnPokeUndo,
		Steps: []core.Step{{Name: "poke-undo", Type: li.stPokeUndo, Body: func(tc *core.Ctx) error {
			return addKV(tc, tc.Args().(*pokeArgs).Key, -10)
		}}},
		EncodeArgs: encodePoke,
		DecodeArgs: decodePoke,
	})
}
