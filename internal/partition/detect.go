package partition

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"accdb/internal/spi"
	"accdb/internal/trace"
)

// Cross-partition deadlock detection. Each partition's lock manager detects
// and breaks cycles among its own transactions, but a cross-partition
// transaction holds locks in several partitions at once (its home
// transaction's marks, its in-flight shot's locks), so two global
// transactions can block each other through waits no single partition sees:
// g1's shot waits on g2's locks in partition A while g2's shot waits on
// g1's locks in partition B.
//
// The detector projects each partition's local waits-for edges through the
// live shot table onto global transaction ids: if a local transaction known
// to belong to g1 can reach — through any chain of local waits, including
// purely local transactions in the middle — a local transaction belonging
// to g2, then g1 waits on g2 globally. A cycle in the condensed global
// graph is a cross-partition deadlock. The victim is the cycle's largest
// (youngest) global id, mirroring the local detector's youngest-dies rule,
// with the paper's §3.4 exception lifted across partitions: a global
// transaction already running compensating undo shots is never chosen.
//
// Dooming a victim is two-pronged: its per-global cancel function stops the
// engines' retry loops (which re-check the context between attempts — a
// cancelled wait alone would just be retried), and CancelWait unblocks
// whichever of its local transactions is parked right now.

// detectLoop drives DetectOnce at the configured cadence until Close.
func (s *Set) detectLoop() {
	defer close(s.detDone)
	tick := time.NewTicker(s.detInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.detStop:
			return
		case <-tick.C:
			s.DetectOnce()
		}
	}
}

// DetectOnce runs one detection pass and returns how many victims it
// doomed. Exported so tests (and a disabled-background-detector Set) can
// drive detection deterministically.
func (s *Set) DetectOnce() int {
	s.shotMu.Lock()
	refs := make(map[shotKey]shotRef, len(s.shots))
	for k, v := range s.shots {
		refs[k] = v
	}
	s.shotMu.Unlock()
	if len(refs) == 0 {
		return 0
	}

	undoing := make(map[uint64]bool)
	for _, v := range refs {
		if v.undo {
			undoing[v.global] = true
		}
	}

	// Condensed graph: global -> set of globals it waits on.
	edges := make(map[uint64]map[uint64]bool)
	for p := range s.engines {
		mapped := make(map[spi.TxnID]shotRef)
		for k, v := range refs {
			if k.part == p {
				mapped[k.txn] = v
			}
		}
		if len(mapped) == 0 {
			continue
		}
		snap := s.engines[p].Locks().Snapshot()
		if len(snap.Edges) == 0 {
			continue
		}
		adj := make(map[spi.TxnID][]spi.TxnID, len(snap.Edges))
		for _, e := range snap.Edges {
			adj[e.From] = append(adj[e.From], e.To)
		}
		for from, ref := range mapped {
			if ref.undo {
				// Compensating shots are never treated as wait sources: they
				// must not become victims, and the §3.4 executor already
				// breaks forward-vs-compensation waits locally.
				continue
			}
			condense(adj, from, mapped, ref.global, edges)
		}
	}
	if len(edges) == 0 {
		return 0
	}

	// Cycle search over the condensed graph (it is tiny: one vertex per
	// in-flight cross-partition transaction).
	victims := make(map[uint64]string)
	color := make(map[uint64]int) // 0 unvisited, 1 on path, 2 done
	var path []uint64
	var dfs func(g uint64)
	dfs = func(g uint64) {
		color[g] = 1
		path = append(path, g)
		for _, to := range sortedKeys(edges[g]) {
			switch color[to] {
			case 1:
				var cyc []uint64
				for i := len(path) - 1; i >= 0; i-- {
					cyc = append(cyc, path[i])
					if path[i] == to {
						break
					}
				}
				var victim uint64
				for _, m := range cyc {
					if !undoing[m] && m > victim {
						victim = m
					}
				}
				if victim != 0 {
					victims[victim] = cycleString(cyc)
				}
			case 0:
				dfs(to)
			}
		}
		path = path[:len(path)-1]
		color[g] = 2
	}
	for _, g := range sortedKeys(edges) {
		if color[g] == 0 {
			dfs(g)
		}
	}

	for g, cyc := range victims {
		s.doom(g, cyc)
	}
	return len(victims)
}

// condense walks the local waits-for graph from a mapped vertex, through
// any unmapped (purely local) intermediates, and records a condensed edge
// for every other global's vertex it reaches. Traversal stops at mapped
// vertices: what they wait on is their own global's concern, projected when
// the walk starts from them.
func condense(adj map[spi.TxnID][]spi.TxnID, start spi.TxnID, mapped map[spi.TxnID]shotRef, g uint64, out map[uint64]map[uint64]bool) {
	seen := map[spi.TxnID]bool{start: true}
	stack := append([]spi.TxnID(nil), adj[start]...)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[v] {
			continue
		}
		seen[v] = true
		if ref, ok := mapped[v]; ok {
			if ref.global != g {
				m := out[g]
				if m == nil {
					m = make(map[uint64]bool)
					out[g] = m
				}
				m[ref.global] = true
			}
			continue
		}
		stack = append(stack, adj[v]...)
	}
}

// doom cancels the victim global transaction: its context (stopping retry
// loops) and its currently parked local waits.
func (s *Set) doom(g uint64, cycle string) {
	s.shotMu.Lock()
	cancel := s.cancels[g]
	keys := append([]shotKey(nil), s.byGlob[g]...)
	s.shotMu.Unlock()
	if cancel != nil {
		cancel()
	}
	for _, k := range keys {
		s.engines[k.part].Locks().CancelWait(k.txn)
	}
	s.crossDeadlocks.Add(1)
	s.emit(trace.KindCrossDeadlock, g, -1, "", 0, cycle)
}

func sortedKeys[V any](m map[uint64]V) []uint64 {
	out := make([]uint64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func cycleString(cyc []uint64) string {
	var b strings.Builder
	for i := len(cyc) - 1; i >= 0; i-- {
		if b.Len() > 0 {
			b.WriteString("->")
		}
		fmt.Fprintf(&b, "g%d", cyc[i])
	}
	return b.String()
}
