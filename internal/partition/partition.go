// Package partition scales the engine out: n independent engine instances
// (each with its own storage backend, lock shards, and WAL directory, built
// over the SPI seam of DESIGN.md §15) behind a deterministic key→partition
// router, plus a multi-shot commit coordinator for the transactions that
// span partitions (DESIGN.md §16).
//
// Single-partition transactions — the overwhelming majority under a
// warehouse-partitioned TPC-C — route straight to their home engine: the
// only added cost is one map lookup and one Home() call, so the per-engine
// hot path is untouched. Cross-partition transactions run as a sequence of
// per-partition *shots* in the style of multi-shot transaction commit
// (Chockler & Gotsman): each shot is an ordinary local transaction that
// commits in its partition's log, the coordinator persists a decision
// record in the home partition's WAL, and a failure after some shots
// committed rolls the global transaction back by running compensating undo
// shots — the §3.4 saga machinery, lifted one level up. There is no global
// two-phase-commit lock window: a shot's locks release at its local commit.
//
// Because the home transaction holds its exposure (D) and reservation (C)
// marks while its remote shots run, two cross-partition transactions can
// block each other through locks in different partitions that no
// single-partition detector sees. The Set runs a cross-partition waits-for
// detector that projects each engine's local waits-for edges through the
// live shot table onto global transaction ids and breaks cycles by
// cancelling one member — never an undo shot, preserving the paper's rule
// that compensating work is not a deadlock victim.
package partition

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"accdb/internal/core"
	"accdb/internal/spi"
	"accdb/internal/trace"
)

// BuildFunc constructs partition p's engine: its own DB (over its own
// backend instance), its own WAL, its transaction types registered. The Set
// owns the returned engines and closes them with Close.
type BuildFunc func(p int) (*core.Engine, error)

// Shot is one per-partition unit of a cross-partition transaction: a local
// transaction of the named type to run on the target partition.
type Shot struct {
	Partition int
	Type      string
	Args      any
}

// Route declares how instances of one transaction type map onto partitions.
type Route struct {
	// Home returns the instance's home partition — where single-partition
	// instances run entirely, and where a cross-partition instance's home
	// transaction and decision record live.
	Home func(args any) int
	// Split, when non-nil, returns the remote shots of an instance. An
	// empty result means the instance is single-partition after all and
	// takes the direct path. Nil means the type never crosses partitions.
	Split func(args any) []Shot
}

// UndoSpec declares the compensating undo of a shot type: the transaction
// type that semantically reverses a committed shot, and how to derive its
// arguments from the shot's (completed) work area. A nil Args passes the
// shot's own arguments through.
type UndoSpec struct {
	Type string
	Args func(shotArgs any) any
}

// Stats aggregates the Set's coordinator counters.
type Stats struct {
	SingleRouted   uint64 // transactions routed whole to one partition
	CrossStarted   uint64 // cross-partition transactions begun
	CrossCommitted uint64 // ... that completed every shot
	CrossAborted   uint64 // ... rolled back with shots compensated
	ShotsRun       uint64 // remote shots committed
	ShotUndos      uint64 // compensating undo shots run
	CrossDeadlocks uint64 // cycles broken by the cross-partition detector
}

// Set is a partitioned engine: n engines behind a router and a multi-shot
// commit coordinator. It satisfies the network server's Runner contract, so
// accd serves a Set exactly as it serves a single engine.
type Set struct {
	engines []*core.Engine

	mu     sync.RWMutex
	routes map[string]*Route
	undos  map[string]UndoSpec

	nextGlobal atomic.Uint64

	// shotMu guards the live shot table the deadlock detector projects
	// local waits-for edges through, and the per-global cancel functions it
	// dooms victims with.
	shotMu  sync.Mutex
	shots   map[shotKey]shotRef
	byGlob  map[uint64][]shotKey
	cancels map[uint64]context.CancelFunc

	tracer      *trace.Tracer
	detInterval time.Duration
	detStop     chan struct{}
	detDone     chan struct{}

	singleRouted   atomic.Uint64
	crossStarted   atomic.Uint64
	crossCommitted atomic.Uint64
	crossAborted   atomic.Uint64
	shotsRun       atomic.Uint64
	shotUndos      atomic.Uint64
	crossDeadlocks atomic.Uint64

	closed atomic.Bool
}

// shotKey names one live local transaction of a global transaction.
type shotKey struct {
	part int
	txn  spi.TxnID
}

// shotRef is the global identity of a live local transaction.
type shotRef struct {
	global uint64
	undo   bool
}

// Option configures a Set.
type Option func(*Set)

// WithDetectInterval sets the cross-partition deadlock detector's cadence.
// Zero keeps the 10ms default; negative disables the background detector
// (tests drive DetectOnce directly).
func WithDetectInterval(d time.Duration) Option {
	return func(s *Set) { s.detInterval = d }
}

// WithTracer attaches a trace bus to the coordinator's own events
// (coord.*/shot.* kinds); the per-partition engines carry their own tracers.
func WithTracer(t *trace.Tracer) Option {
	return func(s *Set) { s.tracer = t }
}

// EnvPartitions reads the ACCDB_PARTITIONS environment variable: the
// partition count accd and the harnesses default to. Unset, empty, zero, or
// unparsable means 1 — a plain single-engine system.
func EnvPartitions() int {
	v := os.Getenv("ACCDB_PARTITIONS")
	if v == "" {
		return 1
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return 1
	}
	return n
}

// New builds a Set of n partitions, constructing each engine with build.
// On a build error the already-built engines are closed.
func New(n int, build BuildFunc, opts ...Option) (*Set, error) {
	if n < 1 {
		return nil, fmt.Errorf("partition: need at least one partition, got %d", n)
	}
	s := &Set{
		routes:      make(map[string]*Route),
		undos:       make(map[string]UndoSpec),
		shots:       make(map[shotKey]shotRef),
		byGlob:      make(map[uint64][]shotKey),
		cancels:     make(map[uint64]context.CancelFunc),
		detInterval: 10 * time.Millisecond,
	}
	for _, apply := range opts {
		apply(s)
	}
	for p := 0; p < n; p++ {
		eng, err := build(p)
		if err != nil {
			for _, e := range s.engines {
				e.Close()
			}
			return nil, fmt.Errorf("partition %d: %w", p, err)
		}
		s.engines = append(s.engines, eng)
	}
	if n > 1 && s.detInterval > 0 {
		s.detStop = make(chan struct{})
		s.detDone = make(chan struct{})
		go s.detectLoop()
	}
	return s, nil
}

// Partitions returns the partition count.
func (s *Set) Partitions() int { return len(s.engines) }

// Engine returns partition p's engine.
func (s *Set) Engine(p int) *core.Engine { return s.engines[p] }

// Engines returns the engines in partition order.
func (s *Set) Engines() []*core.Engine { return s.engines }

// SetRoute installs the routing declaration for one transaction type.
// Types without a route run whole on partition 0.
func (s *Set) SetRoute(name string, r Route) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rc := r
	s.routes[name] = &rc
}

// SetUndo declares the compensating undo of a shot type.
func (s *Set) SetUndo(shotType string, spec UndoSpec) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.undos[shotType] = spec
}

func (s *Set) route(name string) *Route {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.routes[name]
}

func (s *Set) undoSpec(shotType string) (UndoSpec, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	spec, ok := s.undos[shotType]
	return spec, ok
}

// Run executes one transaction, routing by its type's declaration. It is
// RunContext under context.Background().
func (s *Set) Run(name string, args any) error {
	return s.RunContext(context.Background(), name, args)
}

// RunContext is Run under a caller context.
func (s *Set) RunContext(ctx context.Context, name string, args any) error {
	tt := s.engines[0].Type(name)
	if tt == nil {
		return fmt.Errorf("%w: %q", core.ErrUnknownTxnType, name)
	}
	return s.RunReadTypeContextSpan(ctx, tt, args, core.TierLocked, nil)
}

// RunRead executes a read-only transaction at the given tier on the
// instance's home partition.
func (s *Set) RunRead(name string, args any, tier core.ReadTier) error {
	tt := s.engines[0].Type(name)
	if tt == nil {
		return fmt.Errorf("%w: %q", core.ErrUnknownTxnType, name)
	}
	return s.RunReadTypeContextSpan(context.Background(), tt, args, tier, nil)
}

// TypeBytes resolves a transaction type by byte-slice name (the network
// server's zero-allocation lookup). Types are registered identically on
// every partition, so partition 0's registry answers for the Set.
func (s *Set) TypeBytes(name []byte) *core.TxnType {
	return s.engines[0].TypeBytes(name)
}

// RunReadTypeContextSpan is the Set's single execution entry point — the
// same contract the network server drives a single engine through. At
// TierLocked it routes the transaction (direct to its home partition, or
// through the multi-shot coordinator when the instance splits); at the
// versioned read tiers it runs read-only on the home partition.
func (s *Set) RunReadTypeContextSpan(ctx context.Context, tt *core.TxnType, args any, tier core.ReadTier, sp *trace.Span) error {
	r := s.route(tt.Name)
	home := 0
	if r != nil && r.Home != nil {
		home = r.Home(args)
	}
	if home < 0 || home >= len(s.engines) {
		return fmt.Errorf("partition: %s routed to partition %d of %d", tt.Name, home, len(s.engines))
	}
	if tier != core.TierLocked {
		return s.engines[home].RunReadTypeContextSpan(ctx, tt, args, tier, sp)
	}
	var shots []Shot
	if r != nil && r.Split != nil {
		shots = r.Split(args)
	}
	if len(shots) == 0 {
		// The hot path: the whole instance lives in one partition. No
		// global id, no decision record, no coordinator state — exactly the
		// single-engine cost plus the routing lookup above.
		s.singleRouted.Add(1)
		return s.engines[home].RunTypeContextSpan(ctx, tt, args, sp)
	}
	return s.runCross(ctx, tt, args, home, shots, sp)
}

// Snapshot returns the coordinator counters.
func (s *Set) Snapshot() Stats {
	return Stats{
		SingleRouted:   s.singleRouted.Load(),
		CrossStarted:   s.crossStarted.Load(),
		CrossCommitted: s.crossCommitted.Load(),
		CrossAborted:   s.crossAborted.Load(),
		ShotsRun:       s.shotsRun.Load(),
		ShotUndos:      s.shotUndos.Load(),
		CrossDeadlocks: s.crossDeadlocks.Load(),
	}
}

// Close stops the deadlock detector and closes every engine.
func (s *Set) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	if s.detStop != nil {
		close(s.detStop)
		<-s.detDone
	}
	var first error
	for _, e := range s.engines {
		if err := e.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Closed reports whether Close was called.
func (s *Set) Closed() bool { return s.closed.Load() }

// track registers local transaction ids of global g's shots as they begin,
// for the deadlock detector's projection. Returned as a core.ShotTag.OnTxn.
func (s *Set) track(part int, g uint64, undo bool) func(spi.TxnID) {
	return func(id spi.TxnID) {
		k := shotKey{part, id}
		s.shotMu.Lock()
		s.shots[k] = shotRef{global: g, undo: undo}
		s.byGlob[g] = append(s.byGlob[g], k)
		s.shotMu.Unlock()
	}
}

// untrack drops global g's shot-table entries and cancel hook once the
// global transaction reached an outcome.
func (s *Set) untrack(g uint64) {
	s.shotMu.Lock()
	for _, k := range s.byGlob[g] {
		delete(s.shots, k)
	}
	delete(s.byGlob, g)
	delete(s.cancels, g)
	s.shotMu.Unlock()
}

// emit sends one coordinator-layer trace event, if a bus is attached.
func (s *Set) emit(kind trace.Kind, g uint64, step int32, item string, dur int64, extra string) {
	if s.tracer == nil {
		return
	}
	ev := trace.Ev(kind, g)
	ev.Step = int16(step)
	ev.Item, ev.Dur, ev.Extra = item, dur, extra
	s.tracer.Emit(ev)
}
