package interference

import (
	"sort"

	"accdb/internal/assertion"
)

// The design-time interference analyzer. §3.2: "interference between steps
// and assertions is determined at design time and is stored in interference
// tables". The paper's analysis is a proof obligation (formula (2)); this
// analyzer discharges the common cases mechanically from declared footprints
// — a step provably does not interfere with an assertion when its write set
// cannot change anything the assertion's truth depends on:
//
//   - the step updates no column the assertion reads, and
//   - the step inserts into / deletes from no table the assertion
//     quantifies over.
//
// Because the one-level ACC re-checks item identity at run time (assertional
// locks are attached to items), the analyzer can stay purely column-based:
// two instances touching different rows never conflict at run time even if
// the analyzer conservatively declares their types interfering.

// StepFootprint declares a step type's write behaviour for the analyzer.
type StepFootprint struct {
	Step StepTypeID
	// Updates maps table -> columns the step may update in place.
	Updates map[string][]string
	// Structural lists tables the step may insert into or delete from.
	Structural []string
}

// Interferes reports whether, on footprint evidence alone, the step could
// invalidate the assertion. A false result is a proof of formula (2); a true
// result is merely "could not prove safe".
func Interferes(step StepFootprint, a *assertion.Footprint) bool {
	for table, cols := range step.Updates {
		want := a.Columns[table]
		if want == nil {
			continue
		}
		for _, c := range cols {
			if want[c] {
				return true
			}
		}
	}
	for _, table := range step.Structural {
		if a.Quantified[table] {
			return true
		}
		// An insert or delete also touches every column of the affected
		// rows; if the assertion reads any column of this table it may be
		// invalidated even without quantification (e.g. an Exists witness
		// being deleted).
		if len(a.Columns[table]) > 0 {
			return true
		}
	}
	return false
}

// Analyzer accumulates footprints and emits NoInterference declarations
// into a Builder.
type Analyzer struct {
	b          *Builder
	steps      []StepFootprint
	assertions map[AssertionID]*assertion.Footprint
}

// NewAnalyzer wraps a Builder.
func NewAnalyzer(b *Builder) *Analyzer {
	return &Analyzer{b: b, assertions: make(map[AssertionID]*assertion.Footprint)}
}

// DeclareStep records a step footprint.
func (an *Analyzer) DeclareStep(fp StepFootprint) { an.steps = append(an.steps, fp) }

// DeclareAssertion registers an assertion expression and records its
// footprint; returns the assertion ID.
func (an *Analyzer) DeclareAssertion(name string, e assertion.Expr) AssertionID {
	id := an.b.Assertion(name)
	an.assertions[id] = assertion.FootprintOf(e)
	return id
}

// Derive proves NoInterference for every (step, assertion) pair the
// footprints allow and records the proofs in the Builder. It returns the
// number of pairs proven safe.
func (an *Analyzer) Derive() int {
	ids := make([]AssertionID, 0, len(an.assertions))
	for id := range an.assertions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	proved := 0
	for _, fp := range an.steps {
		for _, id := range ids {
			if !Interferes(fp, an.assertions[id]) {
				an.b.NoInterference(fp.Step, id)
				proved++
			}
		}
	}
	return proved
}
