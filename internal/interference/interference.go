// Package interference holds the design-time artifacts of the assertional
// concurrency control: the interference tables described in §3.2 of the
// paper. The tables answer, in O(1) at run time,
//
//  1. whether a step type interferes with an interstep assertion
//     (used for X-vs-A lock conflicts),
//  2. whether the executed prefix of a transaction type interferes with an
//     assertion (used when a transaction assertionally locks an item another
//     transaction has exposed an intermediate value of), and
//  3. which step types may interleave at each breakpoint of each transaction
//     type (the paper's "non-transitive, table driven" interleaving
//     specification; used for S/X-vs-exposure conflicts and legacy
//     isolation).
//
// The tables are constructed at design time either by hand (Builder) or by
// the automatic analyzer in analyzer.go, mirroring the paper's split between
// the design-time analysis and the run-time table lookup.
package interference

import (
	"fmt"
	"sort"
	"strings"

	"accdb/internal/spi"
)

// TxnTypeID identifies a registered transaction type. The identifier types
// are defined in the SPI (spi/ids.go) and aliased here, so the lock-service
// contract can name them without depending on this package.
type TxnTypeID = spi.TxnTypeID

// StepTypeID identifies a registered step type (forward or compensating).
type StepTypeID = spi.StepTypeID

// AssertionID identifies an interstep assertion type.
type AssertionID = spi.AssertionID

// Zero sentinels and legacy tags, re-exported from the SPI.
const (
	// NoStep is the zero step sentinel.
	NoStep = spi.NoStep
	// NoAssertion is the zero assertion sentinel.
	NoAssertion = spi.NoAssertion
	// LegacyStep tags an access by an undecomposed (legacy or ad-hoc)
	// transaction. It is conservatively assumed to interfere with every
	// assertion and to be interleavable nowhere, which is what isolates
	// legacy transactions from intermediate states (§3.3 end).
	LegacyStep = spi.LegacyStep
	// LegacyTxn is the transaction type of undecomposed transactions.
	LegacyTxn = spi.LegacyTxn
)

type stepAssert struct {
	step StepTypeID
	a    AssertionID
}

type prefixKey struct {
	txn   TxnTypeID
	steps int32 // number of completed steps
	a     AssertionID
}

type breakKey struct {
	txn        TxnTypeID
	breakpoint int32 // after this many completed steps
	step       StepTypeID
}

// Tables is the immutable run-time lookup structure. All misses fall back to
// the conservative answer (interferes / may not interleave), so an
// unregistered — legacy — step or transaction is fully isolated.
type Tables struct {
	txnNames    map[TxnTypeID]string
	stepNames   map[StepTypeID]string
	assertNames map[AssertionID]string
	txnSteps    map[TxnTypeID]int // number of forward steps

	noInterfere   map[stepAssert]bool // true => does NOT interfere
	prefixSafe    map[prefixKey]bool  // true => prefix does NOT interfere
	interleaveOK  map[breakKey]bool   // true => step may interleave here
	alwaysInterOK map[StepTypeID]map[TxnTypeID]bool
}

// Interferes reports whether executing a step of type step can invalidate an
// assertion of type a (formula (2) of the paper cannot be proven). Unknown
// pairs interfere.
func (t *Tables) Interferes(step StepTypeID, a AssertionID) bool {
	if step == LegacyStep {
		return true
	}
	return !t.noInterfere[stepAssert{step, a}]
}

// PrefixInterferes reports whether the sequence of the first `completed`
// steps of txn type txn, taken as a whole, can leave assertion a false.
// Unknown combinations interfere.
func (t *Tables) PrefixInterferes(txn TxnTypeID, completed int, a AssertionID) bool {
	if txn == LegacyTxn {
		return true
	}
	return !t.prefixSafe[prefixKey{txn, int32(completed), a}]
}

// MayInterleave reports whether a step of type step may execute at the
// breakpoint of txn type holder after `completed` steps, i.e. whether step
// may observe holder's intermediate state there. Unknown combinations may
// not interleave — this is what isolates legacy transactions.
func (t *Tables) MayInterleave(step StepTypeID, holder TxnTypeID, completed int) bool {
	if step == LegacyStep || holder == LegacyTxn {
		return false
	}
	if m, ok := t.alwaysInterOK[step]; ok && m[holder] {
		return true
	}
	return t.interleaveOK[breakKey{holder, int32(completed), step}]
}

// TxnName returns the registered name of a transaction type.
func (t *Tables) TxnName(id TxnTypeID) string {
	if id == LegacyTxn {
		return "<legacy>"
	}
	if n, ok := t.txnNames[id]; ok {
		return n
	}
	return fmt.Sprintf("txn#%d", id)
}

// StepName returns the registered name of a step type.
func (t *Tables) StepName(id StepTypeID) string {
	if id == LegacyStep {
		return "<legacy>"
	}
	if n, ok := t.stepNames[id]; ok {
		return n
	}
	return fmt.Sprintf("step#%d", id)
}

// AssertionName returns the registered name of an assertion type.
func (t *Tables) AssertionName(id AssertionID) string {
	if n, ok := t.assertNames[id]; ok {
		return n
	}
	return fmt.Sprintf("assert#%d", id)
}

// Steps returns the number of forward steps of a transaction type.
func (t *Tables) Steps(txn TxnTypeID) int { return t.txnSteps[txn] }

// AssertionIDs returns every registered assertion type, in ID order. The
// two-level dispatcher uses it to gate steps on assertion-type interference
// without run-time item identity.
func (t *Tables) AssertionIDs() []AssertionID {
	out := make([]AssertionID, 0, len(t.assertNames))
	for id := range t.assertNames {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String dumps the tables for documentation and debugging.
func (t *Tables) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "interference tables: %d txn types, %d step types, %d assertions\n",
		len(t.txnNames), len(t.stepNames), len(t.assertNames))
	var lines []string
	for k := range t.noInterfere {
		lines = append(lines, fmt.Sprintf("  no-interfere: %s ~ %s", t.StepName(k.step), t.AssertionName(k.a)))
	}
	sort.Strings(lines)
	for _, l := range lines {
		b.WriteString(l + "\n")
	}
	return b.String()
}

// Builder accumulates design-time declarations and produces Tables.
//
// The default stance is conservative: every (step, assertion) pair
// interferes and no step may interleave at any breakpoint, until declared
// otherwise. The analysis — manual (§4) or automatic (analyzer.go) — opens
// up exactly the pairs it can prove safe.
type Builder struct {
	nextTxn    TxnTypeID
	nextStep   StepTypeID
	nextAssert AssertionID

	t *Tables
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		t: &Tables{
			txnNames:      make(map[TxnTypeID]string),
			stepNames:     make(map[StepTypeID]string),
			assertNames:   make(map[AssertionID]string),
			txnSteps:      make(map[TxnTypeID]int),
			noInterfere:   make(map[stepAssert]bool),
			prefixSafe:    make(map[prefixKey]bool),
			interleaveOK:  make(map[breakKey]bool),
			alwaysInterOK: make(map[StepTypeID]map[TxnTypeID]bool),
		},
	}
}

// TxnType registers a transaction type with the given number of forward steps.
func (b *Builder) TxnType(name string, steps int) TxnTypeID {
	b.nextTxn++
	id := b.nextTxn
	b.t.txnNames[id] = name
	b.t.txnSteps[id] = steps
	return id
}

// StepType registers a step type (forward or compensating).
func (b *Builder) StepType(name string) StepTypeID {
	b.nextStep++
	id := b.nextStep
	b.t.stepNames[id] = name
	return id
}

// Assertion registers an interstep assertion type.
func (b *Builder) Assertion(name string) AssertionID {
	b.nextAssert++
	id := b.nextAssert
	b.t.assertNames[id] = name
	return id
}

// NoInterference declares that step provably does not interfere with a
// (formula (2) holds).
func (b *Builder) NoInterference(step StepTypeID, a AssertionID) {
	b.t.noInterfere[stepAssert{step, a}] = true
}

// PrefixSafe declares that the first `completed` steps of txn, as a whole,
// leave assertion a true (any conjunct temporarily falsified has been
// restored).
func (b *Builder) PrefixSafe(txn TxnTypeID, completed int, a AssertionID) {
	b.t.prefixSafe[prefixKey{txn, int32(completed), a}] = true
}

// AllowInterleave declares that the given step types may execute at the
// breakpoint of txn after `completed` steps and observe its intermediate
// state there.
func (b *Builder) AllowInterleave(txn TxnTypeID, completed int, steps ...StepTypeID) {
	for _, s := range steps {
		b.t.interleaveOK[breakKey{txn, int32(completed), s}] = true
	}
}

// AllowInterleaveEverywhere declares that step may interleave at every
// breakpoint of txn. This is the common case for mutually commuting
// transaction types (e.g. concurrent new_order instances).
func (b *Builder) AllowInterleaveEverywhere(step StepTypeID, txn TxnTypeID) {
	m, ok := b.t.alwaysInterOK[step]
	if !ok {
		m = make(map[TxnTypeID]bool)
		b.t.alwaysInterOK[step] = m
	}
	m[txn] = true
}

// Build finalizes and returns the tables. The Builder must not be used
// afterwards.
func (b *Builder) Build() *Tables {
	t := b.t
	b.t = nil
	return t
}
