package interference

import (
	"strings"
	"testing"
	"testing/quick"

	"accdb/internal/assertion"
)

func TestBuilderRegistration(t *testing.T) {
	b := NewBuilder()
	txn := b.TxnType("transfer", 2)
	step := b.StepType("debit")
	a := b.Assertion("in-flight")
	tab := b.Build()
	if tab.TxnName(txn) != "transfer" || tab.StepName(step) != "debit" || tab.AssertionName(a) != "in-flight" {
		t.Error("name registration broken")
	}
	if tab.Steps(txn) != 2 {
		t.Error("step count lost")
	}
	if tab.TxnName(999) == "" || tab.StepName(999) == "" || tab.AssertionName(999) == "" {
		t.Error("unknown ids should render placeholders")
	}
	if tab.TxnName(LegacyTxn) != "<legacy>" || tab.StepName(LegacyStep) != "<legacy>" {
		t.Error("legacy names wrong")
	}
}

func TestConservativeDefaults(t *testing.T) {
	b := NewBuilder()
	txn := b.TxnType("t", 1)
	step := b.StepType("s")
	a := b.Assertion("a")
	tab := b.Build()
	// Everything interferes and nothing interleaves until declared.
	if !tab.Interferes(step, a) {
		t.Error("unknown pair should interfere")
	}
	if tab.MayInterleave(step, txn, 0) {
		t.Error("unknown step should not interleave")
	}
	if !tab.PrefixInterferes(txn, 1, a) {
		t.Error("unknown prefix should interfere")
	}
	// Legacy is always conservative.
	if !tab.Interferes(LegacyStep, a) || tab.MayInterleave(LegacyStep, txn, 0) ||
		tab.MayInterleave(step, LegacyTxn, 0) || !tab.PrefixInterferes(LegacyTxn, 0, a) {
		t.Error("legacy must stay conservative")
	}
}

func TestDeclarations(t *testing.T) {
	b := NewBuilder()
	txn := b.TxnType("t", 3)
	s1 := b.StepType("s1")
	s2 := b.StepType("s2")
	a := b.Assertion("a")
	b.NoInterference(s1, a)
	b.PrefixSafe(txn, 2, a)
	b.AllowInterleave(txn, 1, s2)
	tab := b.Build()
	if tab.Interferes(s1, a) {
		t.Error("declared NoInterference ignored")
	}
	if !tab.Interferes(s2, a) {
		t.Error("undeclared pair must interfere")
	}
	if tab.PrefixInterferes(txn, 1, a) == false {
		t.Error("prefix 1 undeclared, must interfere")
	}
	if tab.PrefixInterferes(txn, 2, a) {
		t.Error("declared PrefixSafe ignored")
	}
	// Breakpoint-specific interleaving.
	if !tab.MayInterleave(s2, txn, 1) {
		t.Error("declared breakpoint ignored")
	}
	if tab.MayInterleave(s2, txn, 2) {
		t.Error("interleave must be breakpoint-specific")
	}
}

func TestAllowInterleaveEverywhere(t *testing.T) {
	b := NewBuilder()
	txn := b.TxnType("t", 5)
	s := b.StepType("s")
	b.AllowInterleaveEverywhere(s, txn)
	tab := b.Build()
	for bp := 0; bp < 5; bp++ {
		if !tab.MayInterleave(s, txn, bp) {
			t.Fatalf("breakpoint %d not allowed", bp)
		}
	}
}

func TestAssertionIDs(t *testing.T) {
	b := NewBuilder()
	a1 := b.Assertion("x")
	a2 := b.Assertion("y")
	tab := b.Build()
	ids := tab.AssertionIDs()
	if len(ids) != 2 || ids[0] != a1 || ids[1] != a2 {
		t.Fatalf("AssertionIDs = %v", ids)
	}
}

func TestStringDump(t *testing.T) {
	b := NewBuilder()
	s := b.StepType("pay")
	a := b.Assertion("I1")
	b.NoInterference(s, a)
	tab := b.Build()
	out := tab.String()
	if !strings.Contains(out, "pay") || !strings.Contains(out, "I1") {
		t.Errorf("String() = %q", out)
	}
}

// --- analyzer ---------------------------------------------------------------

// The paper's §5.1 example: updates to the district counter (new-order) and
// to the district year-to-date (payment) do not interfere, because the
// columns are disjoint; the analyzer must prove it.
func TestAnalyzerDistrictExample(t *testing.T) {
	b := NewBuilder()
	noStep := b.StepType("NO1")
	payStep := b.StepType("P2")
	an := NewAnalyzer(b)
	// Assertion used by new-order between steps: "the counter has the value
	// I read" — footprint is district.d_next_o_id.
	counterA := an.DeclareAssertion("counter-stable", assertion.ForAll{
		Table: "district",
		Body: assertion.Cmp{
			Op: assertion.GE,
			L:  assertion.Col{Table: "district", Column: "d_next_o_id"},
			R:  assertion.I64(0),
		},
	})
	an.DeclareStep(StepFootprint{
		Step:    noStep,
		Updates: map[string][]string{"district": {"d_next_o_id"}},
	})
	an.DeclareStep(StepFootprint{
		Step:    payStep,
		Updates: map[string][]string{"district": {"d_ytd"}},
	})
	proved := an.Derive()
	tab := b.Build()
	if proved != 1 {
		t.Fatalf("proved %d pairs, want 1", proved)
	}
	if tab.Interferes(payStep, counterA) {
		t.Error("payment's d_ytd update must not interfere with the counter assertion")
	}
	if !tab.Interferes(noStep, counterA) {
		t.Error("new-order's counter update must interfere")
	}
}

func TestAnalyzerStructuralInterference(t *testing.T) {
	countFp := assertion.FootprintOf(assertion.CountEq{
		Table:  "orderlines",
		Where:  []assertion.Binding{{Column: "order_id", Value: assertion.I64(1)}},
		Equals: assertion.I64(3),
	})
	insertStep := StepFootprint{Step: 1, Structural: []string{"orderlines"}}
	if !Interferes(insertStep, countFp) {
		t.Error("insert into quantified table must interfere with a count")
	}
	otherInsert := StepFootprint{Step: 2, Structural: []string{"stock"}}
	if Interferes(otherInsert, countFp) {
		t.Error("insert into unrelated table must not interfere")
	}
	// A structural change also threatens plain column references (deleting
	// an Exists witness).
	existsFp := assertion.FootprintOf(assertion.Exists{
		Table: "orderlines",
		Body: assertion.Cmp{
			Op: assertion.GT,
			L:  assertion.Col{Table: "orderlines", Column: "filled"},
			R:  assertion.I64(0),
		},
	})
	if !Interferes(insertStep, existsFp) {
		t.Error("structural change must interfere with column readers of the table")
	}
}

func TestAnalyzerUpdateColumnDisjointness(t *testing.T) {
	fp := assertion.FootprintOf(assertion.ForAll{
		Table: "stock",
		Body: assertion.Cmp{
			Op: assertion.GE,
			L:  assertion.Col{Table: "stock", Column: "level"},
			R:  assertion.I64(0),
		},
	})
	touches := StepFootprint{Step: 1, Updates: map[string][]string{"stock": {"level"}}}
	misses := StepFootprint{Step: 2, Updates: map[string][]string{"stock": {"ytd"}}}
	if !Interferes(touches, fp) {
		t.Error("update of read column must interfere")
	}
	if Interferes(misses, fp) {
		t.Error("update of disjoint column must not interfere")
	}
}

// Property: the analyzer is monotone — adding updates to a step can only
// add interference, never remove it.
func TestAnalyzerMonotoneQuick(t *testing.T) {
	fp := assertion.FootprintOf(assertion.ForAll{
		Table: "t",
		Body: assertion.Cmp{
			Op: assertion.EQ,
			L:  assertion.Col{Table: "t", Column: "c0"},
			R:  assertion.I64(0),
		},
	})
	cols := []string{"c0", "c1", "c2", "c3"}
	f := func(mask, extra uint8) bool {
		var base, more []string
		for i, c := range cols {
			if mask&(1<<i) != 0 {
				base = append(base, c)
			}
		}
		more = append(more, base...)
		more = append(more, cols[int(extra)%len(cols)])
		small := StepFootprint{Step: 1, Updates: map[string][]string{"t": base}}
		big := StepFootprint{Step: 1, Updates: map[string][]string{"t": more}}
		if Interferes(small, fp) && !Interferes(big, fp) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
