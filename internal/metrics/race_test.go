package metrics

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestResetObserveRace pins the Reset-vs-Record contract: both serialize on
// the stripe mutexes, so resetting a live recorder mid-load (as the debug
// endpoints and repeated sweep points do) must be safe under the race
// detector and must never corrupt counts — every post-Reset summary reflects
// only whole records.
func TestResetObserveRace(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("type-%d", g)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Record(name, time.Duration(i%1000)*time.Microsecond, Committed)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Readers race Reset too: summaries must always be coherent.
			_ = r.Total()
			_ = r.ByType()
			_ = r.Count()
		}
	}()

	for i := 0; i < 200; i++ {
		r.Reset()
	}
	close(stop)
	wg.Wait()

	r.Reset()
	if got := r.Count(); got != 0 {
		t.Errorf("Count after final Reset = %d, want 0", got)
	}
	r.Record("after", time.Millisecond, Committed)
	if got := r.Total().Count; got != 1 {
		t.Errorf("Count after post-Reset record = %d, want 1", got)
	}
}
