package metrics

import (
	"math/bits"
	"time"
)

// Histogram is a fixed-size log-linear duration histogram: one octave per
// power of two of nanoseconds, each split into 2^subBits linear sub-buckets.
// Worst-case relative quantile error is 1/2^subBits (≈3% with subBits=5),
// memory is a constant ~15 KiB per series regardless of sample count —
// replacing the seed's unbounded []time.Duration, which grew without limit
// over long runs and made Summary cost O(n log n) per call.
//
// Count, Sum and Max are tracked exactly, so Mean and Max in summaries are
// precise; only the interior percentiles are bucket-estimated. Histograms
// merge by bucket-wise addition, which is how Recorder.Total aggregates
// per-type series.
type Histogram struct {
	counts [numBuckets]uint64
	count  uint64
	sum    int64
	max    int64
}

const (
	// subBits is the number of linear sub-bucket bits per octave.
	subBits = 5
	subMask = 1<<subBits - 1
	// numBuckets covers the full non-negative int64 range: values below
	// 2^subBits are exact, above that each octave contributes 2^subBits
	// buckets.
	numBuckets = (64 - subBits + 1) << subBits
)

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(v int64) int {
	u := uint64(v)
	if u < 1<<subBits {
		return int(u)
	}
	shift := bits.Len64(u) - 1 - subBits
	return ((shift + 1) << subBits) + int((u>>shift)&subMask)
}

// bucketBounds returns the inclusive lower bound and the width of bucket i.
func bucketBounds(i int) (lo, width int64) {
	if i < 1<<subBits {
		return int64(i), 1
	}
	shift := i>>subBits - 1
	sub := int64(i & subMask)
	return (1<<subBits + sub) << shift, 1 << shift
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the exact mean of the observations.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / int64(h.count))
}

// Max returns the exact maximum observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Sum returns the exact sum of the observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum) }

// Merge adds other's observations into h.
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.counts {
		if c != 0 {
			h.counts[i] += c
		}
	}
	h.count += other.count
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Reset zeroes the histogram for reuse.
func (h *Histogram) Reset() { *h = Histogram{} }

// Quantile estimates the p-quantile (0 ≤ p ≤ 1) with linear interpolation
// between ranks: the target is the fractional rank p·(n-1), the two
// enclosing ranks are located in the cumulative distribution, and the
// result interpolates between them (observations within a bucket are
// assumed uniformly spread across it). This replaces the seed's truncating
// int(p*(n-1)) index selection, which biased every percentile low — with
// two samples its p50 was simply the smaller one.
func (h *Histogram) Quantile(p float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		p = 0
	}
	if p >= 1 {
		return time.Duration(h.max)
	}
	pos := p * float64(h.count-1)
	lower := int64(pos)
	frac := pos - float64(lower)
	lo := h.valueAtRank(uint64(lower))
	if frac == 0 {
		return time.Duration(lo)
	}
	hi := h.valueAtRank(uint64(lower) + 1)
	return time.Duration(lo + int64(frac*float64(hi-lo)))
}

// valueAtRank estimates the value of the r-th (0-based) observation in
// sorted order, interpolating uniformly within its bucket and clamping to
// the exact maximum.
func (h *Histogram) valueAtRank(r uint64) int64 {
	if r >= h.count {
		return h.max
	}
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if r < cum+c {
			lo, width := bucketBounds(i)
			// Place the bucket's c observations at the midpoints of c
			// equal slices of the bucket.
			v := lo + int64((float64(r-cum)+0.5)/float64(c)*float64(width))
			if v > h.max {
				v = h.max
			}
			return v
		}
		cum += c
	}
	return h.max
}
