// Package metrics collects the measurements the paper's experiments report:
// per-transaction-type response times and completion counts, from which the
// benchmark harness computes the non-ACC/ACC ratios plotted in Figures 2-4.
//
// Response-time series are fixed-size log-bucketed histograms (see
// histogram.go): memory stays bounded however long a run lasts, summaries
// are O(buckets) instead of O(n log n), and per-type series merge into the
// paper's "total average response time" by bucket-wise addition.
package metrics

import (
	"fmt"
	"sync"
	"time"
)

// recorderStripes is the number of independently locked partitions of the
// recorder. Transaction types hash onto stripes, so terminals recording
// different types never contend, and same-type recording contends only on
// one stripe's mutex instead of a recorder-wide one.
const recorderStripes = 16

// Recorder accumulates response-time samples per transaction type. It is
// safe for concurrent use by terminal goroutines; the series map is striped
// so the harness does not serialize the workload it measures.
type Recorder struct {
	stripes [recorderStripes]stripe
}

type stripe struct {
	mu     sync.Mutex
	series map[string]*series
	// Pad stripes apart so neighbouring mutexes do not share a cache line.
	_ [64]byte
}

type series struct {
	hist      Histogram
	errors    int
	rollbacks int
	deadlocks int
	timeouts  int
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	r := &Recorder{}
	for i := range r.stripes {
		r.stripes[i].series = make(map[string]*series)
	}
	return r
}

// stripeFor routes a transaction type to its stripe (FNV-1a).
func (r *Recorder) stripeFor(txnType string) *stripe {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(txnType); i++ {
		h = (h ^ uint32(txnType[i])) * prime32
	}
	return &r.stripes[h%recorderStripes]
}

// Record adds one completed transaction's response time. Rollbacks (user
// aborts and compensations) count as completions — the terminal got an
// answer — but are tallied separately; hard errors are excluded from the
// response-time population, with deadlock-victim aborts and lock-wait
// timeouts attributed to their own counters instead of the generic error
// tally.
func (r *Recorder) Record(txnType string, d time.Duration, outcome Outcome) {
	st := r.stripeFor(txnType)
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.series[txnType]
	if !ok {
		s = &series{}
		st.series[txnType] = s
	}
	switch outcome {
	case Committed:
		s.hist.Observe(d)
	case RolledBack:
		s.hist.Observe(d)
		s.rollbacks++
	case Deadlocked:
		s.deadlocks++
	case TimedOut:
		s.timeouts++
	case Failed:
		s.errors++
	}
}

// Reset clears every series so the recorder can be reused across experiment
// runs without reallocating its stripes.
func (r *Recorder) Reset() {
	for i := range r.stripes {
		st := &r.stripes[i]
		st.mu.Lock()
		for name := range st.series {
			delete(st.series, name)
		}
		st.mu.Unlock()
	}
}

// Outcome classifies a transaction completion.
type Outcome int

// Outcomes.
const (
	// Committed is a successful commit.
	Committed Outcome = iota
	// RolledBack is a user abort or a compensated rollback: the terminal
	// got an answer, so it counts as a completion.
	RolledBack
	// Failed is a hard error not otherwise classified.
	Failed
	// Deadlocked is a transaction abandoned as a deadlock victim after its
	// retry budget (distinct from Failed so contention loss is visible).
	Deadlocked
	// TimedOut is a transaction abandoned by the lock-wait safety net.
	TimedOut
)

// Summary describes one series (or the merged total).
type Summary struct {
	Count     int
	Rollbacks int
	Errors    int
	Deadlocks int
	Timeouts  int
	Mean      time.Duration
	P50       time.Duration
	P95       time.Duration
	P99       time.Duration
	Max       time.Duration
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v rollbacks=%d errors=%d deadlocks=%d timeouts=%d",
		s.Count, s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond),
		s.Max.Round(time.Microsecond), s.Rollbacks, s.Errors, s.Deadlocks, s.Timeouts)
}

// summarize reduces one series to its summary. Percentiles use linear
// interpolation between ranks (Histogram.Quantile); the seed's truncating
// int(p*(n-1)) selection biased them low.
func summarize(s *series) Summary {
	out := Summary{
		Count:     int(s.hist.Count()),
		Rollbacks: s.rollbacks,
		Errors:    s.errors,
		Deadlocks: s.deadlocks,
		Timeouts:  s.timeouts,
	}
	if out.Count == 0 {
		return out
	}
	out.Mean = s.hist.Mean()
	out.P50 = s.hist.Quantile(0.50)
	out.P95 = s.hist.Quantile(0.95)
	out.P99 = s.hist.Quantile(0.99)
	out.Max = s.hist.Max()
	return out
}

// merge folds src into dst (histogram and outcome tallies).
func (dst *series) merge(src *series) {
	dst.hist.Merge(&src.hist)
	dst.errors += src.errors
	dst.rollbacks += src.rollbacks
	dst.deadlocks += src.deadlocks
	dst.timeouts += src.timeouts
}

// ByType returns one summary per transaction type.
func (r *Recorder) ByType() map[string]Summary {
	out := make(map[string]Summary)
	for i := range r.stripes {
		st := &r.stripes[i]
		st.mu.Lock()
		for name, s := range st.series {
			out[name] = summarize(s)
		}
		st.mu.Unlock()
	}
	return out
}

// Total returns the merged summary over all types — the paper's "total
// average response time" metric.
func (r *Recorder) Total() Summary {
	var all series
	for i := range r.stripes {
		st := &r.stripes[i]
		st.mu.Lock()
		for _, s := range st.series {
			all.merge(s)
		}
		st.mu.Unlock()
	}
	return summarize(&all)
}

// Count returns the number of completed (committed or rolled back)
// transactions — the throughput numerator.
func (r *Recorder) Count() int {
	n := uint64(0)
	for i := range r.stripes {
		st := &r.stripes[i]
		st.mu.Lock()
		for _, s := range st.series {
			n += s.hist.Count()
		}
		st.mu.Unlock()
	}
	return int(n)
}
