// Package metrics collects the measurements the paper's experiments report:
// per-transaction-type response times and completion counts, from which the
// benchmark harness computes the non-ACC/ACC ratios plotted in Figures 2-4.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// recorderStripes is the number of independently locked partitions of the
// recorder. Transaction types hash onto stripes, so terminals recording
// different types never contend, and same-type recording contends only on
// one stripe's mutex instead of a recorder-wide one.
const recorderStripes = 16

// initialSamples preallocates each series' sample buffer so the first few
// thousand records append without growing under the stripe lock.
const initialSamples = 1024

// Recorder accumulates response-time samples per transaction type. It is
// safe for concurrent use by terminal goroutines; the series map is striped
// so the harness does not serialize the workload it measures.
type Recorder struct {
	stripes [recorderStripes]stripe
}

type stripe struct {
	mu     sync.Mutex
	series map[string]*series
	// Pad stripes apart so neighbouring mutexes do not share a cache line.
	_ [64]byte
}

type series struct {
	durations []time.Duration
	errors    int
	rollbacks int
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	r := &Recorder{}
	for i := range r.stripes {
		r.stripes[i].series = make(map[string]*series)
	}
	return r
}

// stripeFor routes a transaction type to its stripe (FNV-1a).
func (r *Recorder) stripeFor(txnType string) *stripe {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(txnType); i++ {
		h = (h ^ uint32(txnType[i])) * prime32
	}
	return &r.stripes[h%recorderStripes]
}

// Record adds one completed transaction's response time. Rollbacks (user
// aborts and compensations) count as completions — the terminal got an
// answer — but are tallied separately; hard errors are excluded from the
// response-time population.
func (r *Recorder) Record(txnType string, d time.Duration, outcome Outcome) {
	st := r.stripeFor(txnType)
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.series[txnType]
	if !ok {
		s = &series{durations: make([]time.Duration, 0, initialSamples)}
		st.series[txnType] = s
	}
	switch outcome {
	case Committed:
		s.durations = append(s.durations, d)
	case RolledBack:
		s.durations = append(s.durations, d)
		s.rollbacks++
	case Failed:
		s.errors++
	}
}

// Outcome classifies a transaction completion.
type Outcome int

// Outcomes.
const (
	Committed Outcome = iota
	RolledBack
	Failed
)

// Summary describes one series (or the merged total).
type Summary struct {
	Count     int
	Rollbacks int
	Errors    int
	Mean      time.Duration
	P50       time.Duration
	P95       time.Duration
	P99       time.Duration
	Max       time.Duration
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v rollbacks=%d errors=%d",
		s.Count, s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond),
		s.Max.Round(time.Microsecond), s.Rollbacks, s.Errors)
}

func summarize(durs []time.Duration, rollbacks, errors int) Summary {
	s := Summary{Count: len(durs), Rollbacks: rollbacks, Errors: errors}
	if len(durs) == 0 {
		return s
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total time.Duration
	for _, d := range sorted {
		total += d
	}
	s.Mean = total / time.Duration(len(sorted))
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	s.P50 = pct(0.50)
	s.P95 = pct(0.95)
	s.P99 = pct(0.99)
	s.Max = sorted[len(sorted)-1]
	return s
}

// ByType returns one summary per transaction type.
func (r *Recorder) ByType() map[string]Summary {
	out := make(map[string]Summary)
	for i := range r.stripes {
		st := &r.stripes[i]
		st.mu.Lock()
		for name, s := range st.series {
			out[name] = summarize(s.durations, s.rollbacks, s.errors)
		}
		st.mu.Unlock()
	}
	return out
}

// Total returns the merged summary over all types — the paper's "total
// average response time" metric.
func (r *Recorder) Total() Summary {
	var all []time.Duration
	rollbacks, errors := 0, 0
	for i := range r.stripes {
		st := &r.stripes[i]
		st.mu.Lock()
		for _, s := range st.series {
			all = append(all, s.durations...)
			rollbacks += s.rollbacks
			errors += s.errors
		}
		st.mu.Unlock()
	}
	return summarize(all, rollbacks, errors)
}

// Count returns the number of completed (committed or rolled back)
// transactions — the throughput numerator.
func (r *Recorder) Count() int {
	n := 0
	for i := range r.stripes {
		st := &r.stripes[i]
		st.mu.Lock()
		for _, s := range st.series {
			n += len(s.durations)
		}
		st.mu.Unlock()
	}
	return n
}
