// Package metrics collects the measurements the paper's experiments report:
// per-transaction-type response times and completion counts, from which the
// benchmark harness computes the non-ACC/ACC ratios plotted in Figures 2-4.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Recorder accumulates response-time samples per transaction type. It is
// safe for concurrent use by terminal goroutines.
type Recorder struct {
	mu     sync.Mutex
	series map[string]*series
}

type series struct {
	durations []time.Duration
	errors    int
	rollbacks int
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{series: make(map[string]*series)}
}

// Record adds one completed transaction's response time. Rollbacks (user
// aborts and compensations) count as completions — the terminal got an
// answer — but are tallied separately; hard errors are excluded from the
// response-time population.
func (r *Recorder) Record(txnType string, d time.Duration, outcome Outcome) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[txnType]
	if !ok {
		s = &series{}
		r.series[txnType] = s
	}
	switch outcome {
	case Committed:
		s.durations = append(s.durations, d)
	case RolledBack:
		s.durations = append(s.durations, d)
		s.rollbacks++
	case Failed:
		s.errors++
	}
}

// Outcome classifies a transaction completion.
type Outcome int

// Outcomes.
const (
	Committed Outcome = iota
	RolledBack
	Failed
)

// Summary describes one series (or the merged total).
type Summary struct {
	Count     int
	Rollbacks int
	Errors    int
	Mean      time.Duration
	P50       time.Duration
	P95       time.Duration
	P99       time.Duration
	Max       time.Duration
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v rollbacks=%d errors=%d",
		s.Count, s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond),
		s.Max.Round(time.Microsecond), s.Rollbacks, s.Errors)
}

func summarize(durs []time.Duration, rollbacks, errors int) Summary {
	s := Summary{Count: len(durs), Rollbacks: rollbacks, Errors: errors}
	if len(durs) == 0 {
		return s
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total time.Duration
	for _, d := range sorted {
		total += d
	}
	s.Mean = total / time.Duration(len(sorted))
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	s.P50 = pct(0.50)
	s.P95 = pct(0.95)
	s.P99 = pct(0.99)
	s.Max = sorted[len(sorted)-1]
	return s
}

// ByType returns one summary per transaction type.
func (r *Recorder) ByType() map[string]Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]Summary, len(r.series))
	for name, s := range r.series {
		out[name] = summarize(s.durations, s.rollbacks, s.errors)
	}
	return out
}

// Total returns the merged summary over all types — the paper's "total
// average response time" metric.
func (r *Recorder) Total() Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	var all []time.Duration
	rollbacks, errors := 0, 0
	for _, s := range r.series {
		all = append(all, s.durations...)
		rollbacks += s.rollbacks
		errors += s.errors
	}
	return summarize(all, rollbacks, errors)
}

// Count returns the number of completed (committed or rolled back)
// transactions — the throughput numerator.
func (r *Recorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, s := range r.series {
		n += len(s.durations)
	}
	return n
}
