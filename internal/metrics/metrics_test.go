package metrics

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRecorderSummaries(t *testing.T) {
	r := NewRecorder()
	for i := 1; i <= 100; i++ {
		r.Record("a", time.Duration(i)*time.Millisecond, Committed)
	}
	r.Record("a", 500*time.Millisecond, RolledBack)
	r.Record("a", time.Second, Failed)
	s := r.ByType()["a"]
	if s.Count != 101 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.Rollbacks != 1 || s.Errors != 1 {
		t.Fatalf("rollbacks=%d errors=%d", s.Rollbacks, s.Errors)
	}
	if s.Max != 500*time.Millisecond {
		t.Fatalf("Max = %v (failed txn must not count)", s.Max)
	}
	if s.P50 < 40*time.Millisecond || s.P50 > 60*time.Millisecond {
		t.Fatalf("P50 = %v", s.P50)
	}
	if s.P99 < s.P95 || s.P95 < s.P50 {
		t.Fatal("percentiles out of order")
	}
	if s.Mean <= 0 {
		t.Fatal("mean missing")
	}
}

func TestRecorderTotalMergesTypes(t *testing.T) {
	r := NewRecorder()
	r.Record("a", 10*time.Millisecond, Committed)
	r.Record("b", 30*time.Millisecond, Committed)
	total := r.Total()
	if total.Count != 2 || total.Mean != 20*time.Millisecond {
		t.Fatalf("total = %+v", total)
	}
	if r.Count() != 2 {
		t.Fatalf("Count() = %d", r.Count())
	}
}

func TestEmptySummary(t *testing.T) {
	r := NewRecorder()
	s := r.Total()
	if s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty = %+v", s)
	}
}

func TestSummaryString(t *testing.T) {
	r := NewRecorder()
	r.Record("a", time.Millisecond, Committed)
	out := fmt.Sprint(r.ByType()["a"])
	if out == "" {
		t.Fatal("empty String")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record("x", time.Millisecond, Committed)
			}
		}()
	}
	wg.Wait()
	if r.Count() != 4000 {
		t.Fatalf("Count = %d", r.Count())
	}
}
