package metrics

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecorderSummaries(t *testing.T) {
	r := NewRecorder()
	for i := 1; i <= 100; i++ {
		r.Record("a", time.Duration(i)*time.Millisecond, Committed)
	}
	r.Record("a", 500*time.Millisecond, RolledBack)
	r.Record("a", time.Second, Failed)
	s := r.ByType()["a"]
	if s.Count != 101 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.Rollbacks != 1 || s.Errors != 1 {
		t.Fatalf("rollbacks=%d errors=%d", s.Rollbacks, s.Errors)
	}
	if s.Max != 500*time.Millisecond {
		t.Fatalf("Max = %v (failed txn must not count)", s.Max)
	}
	if s.P50 < 40*time.Millisecond || s.P50 > 60*time.Millisecond {
		t.Fatalf("P50 = %v", s.P50)
	}
	if s.P99 < s.P95 || s.P95 < s.P50 {
		t.Fatal("percentiles out of order")
	}
	if s.Mean <= 0 {
		t.Fatal("mean missing")
	}
}

func TestRecorderTotalMergesTypes(t *testing.T) {
	r := NewRecorder()
	r.Record("a", 10*time.Millisecond, Committed)
	r.Record("b", 30*time.Millisecond, Committed)
	total := r.Total()
	if total.Count != 2 || total.Mean != 20*time.Millisecond {
		t.Fatalf("total = %+v", total)
	}
	if r.Count() != 2 {
		t.Fatalf("Count() = %d", r.Count())
	}
}

func TestEmptySummary(t *testing.T) {
	r := NewRecorder()
	s := r.Total()
	if s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty = %+v", s)
	}
}

func TestSummaryString(t *testing.T) {
	r := NewRecorder()
	r.Record("a", time.Millisecond, Committed)
	out := fmt.Sprint(r.ByType()["a"])
	if out == "" {
		t.Fatal("empty String")
	}
}

// TestPercentileInterpolation pins the satellite fix: percentiles
// interpolate between ranks instead of truncating int(p*(n-1)). With two
// samples the seed returned the smaller as p50; interpolation must land
// near the middle (within histogram bucket resolution, ~3%).
func TestPercentileInterpolation(t *testing.T) {
	r := NewRecorder()
	r.Record("a", 10*time.Millisecond, Committed)
	r.Record("a", 30*time.Millisecond, Committed)
	p50 := r.ByType()["a"].P50
	if p50 < 15*time.Millisecond || p50 > 25*time.Millisecond {
		t.Fatalf("P50 = %v, want ≈20ms (rank interpolation)", p50)
	}
	// p=0 and p=1 stay pinned to the extremes.
	var h Histogram
	h.Observe(10 * time.Millisecond)
	h.Observe(30 * time.Millisecond)
	if q := h.Quantile(1); q != 30*time.Millisecond {
		t.Fatalf("Quantile(1) = %v", q)
	}
	if q := h.Quantile(0); q > 11*time.Millisecond {
		t.Fatalf("Quantile(0) = %v", q)
	}
}

func TestHistogramAccuracy(t *testing.T) {
	var h Histogram
	for i := 1; i <= 10000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 10000 {
		t.Fatalf("Count = %d", h.Count())
	}
	for _, tc := range []struct {
		p    float64
		want time.Duration
	}{
		{0.50, 5000 * time.Microsecond},
		{0.95, 9500 * time.Microsecond},
		{0.99, 9900 * time.Microsecond},
	} {
		got := h.Quantile(tc.p)
		err := float64(got-tc.want) / float64(tc.want)
		if err < 0 {
			err = -err
		}
		if err > 0.05 {
			t.Fatalf("Quantile(%v) = %v, want %v ±5%%", tc.p, got, tc.want)
		}
	}
	if h.Max() != 10000*time.Microsecond {
		t.Fatalf("Max = %v (must be exact)", h.Max())
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Millisecond)
	b.Observe(3 * time.Millisecond)
	a.Merge(&b)
	if a.Count() != 2 || a.Mean() != 2*time.Millisecond || a.Max() != 3*time.Millisecond {
		t.Fatalf("merged: count=%d mean=%v max=%v", a.Count(), a.Mean(), a.Max())
	}
	a.Reset()
	if a.Count() != 0 || a.Max() != 0 {
		t.Fatal("Reset left state behind")
	}
}

func TestHistogramBucketsCoverInt64(t *testing.T) {
	// Every value must land in a valid bucket whose bounds contain it.
	for _, v := range []int64{0, 1, 31, 32, 33, 1023, 1 << 20, 1<<62 + 12345, 1<<63 - 1} {
		i := bucketOf(v)
		if i < 0 || i >= numBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", v, i)
		}
		lo, width := bucketBounds(i)
		if v < lo || (width > 0 && v >= lo+width && lo+width > lo) {
			t.Fatalf("value %d outside bucket %d bounds [%d, %d)", v, i, lo, lo+width)
		}
	}
}

func TestRecorderReset(t *testing.T) {
	r := NewRecorder()
	r.Record("a", time.Millisecond, Committed)
	r.Record("b", time.Millisecond, Failed)
	r.Reset()
	if r.Count() != 0 {
		t.Fatalf("Count after Reset = %d", r.Count())
	}
	if total := r.Total(); total.Errors != 0 || total.Count != 0 {
		t.Fatalf("Total after Reset = %+v", total)
	}
	// Reuse after Reset works.
	r.Record("a", 2*time.Millisecond, Committed)
	if r.Count() != 1 {
		t.Fatalf("Count after reuse = %d", r.Count())
	}
}

func TestDeadlockAndTimeoutOutcomes(t *testing.T) {
	r := NewRecorder()
	r.Record("a", time.Millisecond, Committed)
	r.Record("a", time.Second, Deadlocked)
	r.Record("a", time.Second, Deadlocked)
	r.Record("a", time.Second, TimedOut)
	r.Record("a", time.Second, Failed)
	s := r.ByType()["a"]
	if s.Count != 1 {
		t.Fatalf("Count = %d (aborted txns must not join the population)", s.Count)
	}
	if s.Deadlocks != 2 || s.Timeouts != 1 || s.Errors != 1 {
		t.Fatalf("deadlocks=%d timeouts=%d errors=%d", s.Deadlocks, s.Timeouts, s.Errors)
	}
	if s.Max != time.Millisecond {
		t.Fatalf("Max = %v (aborted durations must not count)", s.Max)
	}
	out := s.String()
	if !strings.Contains(out, "deadlocks=2") || !strings.Contains(out, "timeouts=1") {
		t.Fatalf("String() = %q missing outcome counters", out)
	}
	total := r.Total()
	if total.Deadlocks != 2 || total.Timeouts != 1 {
		t.Fatalf("Total = %+v", total)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record("x", time.Millisecond, Committed)
			}
		}()
	}
	wg.Wait()
	if r.Count() != 4000 {
		t.Fatalf("Count = %d", r.Count())
	}
}
