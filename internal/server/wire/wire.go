// Package wire defines accd's length-prefixed binary framing. Both ends of
// the connection — internal/server and pkg/accclient — encode and decode
// through this package, so the frame layout is written down exactly once.
//
// Every frame is a 4-byte big-endian length (of the remainder) followed by
// the payload. A request payload is
//
//	uint64  request id (client-chosen; echoed verbatim in the response)
//	uint8   op          (OpRun, OpPing)
//	uint16  name length
//	bytes   transaction type name (OpRun; empty for OpPing)
//	bytes   JSON-encoded transaction arguments (the rest of the frame)
//
// and a response payload is
//
//	uint64  request id
//	uint8   status code (see Status)
//	uint16  message length
//	bytes   human-readable error message (empty on success)
//	bytes   JSON-encoded result (the rest of the frame)
//
// The result is the transaction's argument record re-encoded after
// execution: ACC transactions use their arguments as the §4.1 work area, so
// output fields (an assigned order number, a fetched balance) travel back in
// the same JSON object the client sent. Responses are correlated by request
// id, never by order — the server answers out of order when pipelined
// requests finish out of order.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Op selects what a request asks the server to do.
type Op uint8

const (
	// OpRun executes a registered transaction type.
	OpRun Op = 1
	// OpPing is a no-op round trip (health checks, pool liveness probes).
	OpPing Op = 2
)

// Status classifies the outcome of a request. The codes mirror the engine's
// error taxonomy (internal/core) so a client can reconstruct an errors.Is
// compatible error without parsing message text.
type Status uint8

const (
	// StatusOK means the transaction committed; the result field holds the
	// re-encoded work area.
	StatusOK Status = iota
	// StatusCompensated means the transaction rolled back by compensation
	// (§3.4): its steps' effects were semantically reversed. Final — the
	// work area may still carry assigned identifiers the client must
	// observe (e.g. a consumed order number).
	StatusCompensated
	// StatusAborted means the transaction aborted before exposing anything
	// (user abort). Final.
	StatusAborted
	// StatusDeadlock means the transaction was abandoned as a deadlock
	// victim after the server-side retry budget. Retryable.
	StatusDeadlock
	// StatusLockTimeout means a lock wait exceeded the engine's budget.
	// Retryable.
	StatusLockTimeout
	// StatusCanceled means the request's context ended (client disconnect
	// or server-side cancellation) before the transaction completed.
	StatusCanceled
	// StatusUnknownType means the named transaction type is not registered.
	StatusUnknownType
	// StatusQueueFull means admission control refused the request because
	// the in-flight limit was reached. Nothing executed; retry later.
	StatusQueueFull
	// StatusDraining means the server is shutting down and accepts no new
	// work. Nothing executed; retry against another server.
	StatusDraining
	// StatusBadRequest means the frame was structurally valid but the
	// request could not be decoded (malformed JSON args, bad op).
	StatusBadRequest
	// StatusInternal is any other server-side failure.
	StatusInternal
)

// String names the status for logs and metrics labels.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusCompensated:
		return "compensated"
	case StatusAborted:
		return "aborted"
	case StatusDeadlock:
		return "deadlock"
	case StatusLockTimeout:
		return "lock-timeout"
	case StatusCanceled:
		return "canceled"
	case StatusUnknownType:
		return "unknown-type"
	case StatusQueueFull:
		return "queue-full"
	case StatusDraining:
		return "draining"
	case StatusBadRequest:
		return "bad-request"
	case StatusInternal:
		return "internal"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Retryable reports whether the status describes a transient outcome where
// retrying the identical request may succeed: scheduling aborts and
// admission refusals. Final outcomes (ok, compensated, aborted) and caller
// mistakes (unknown type, bad request) are not retryable.
func (s Status) Retryable() bool {
	switch s {
	case StatusDeadlock, StatusLockTimeout, StatusQueueFull:
		return true
	default:
		return false
	}
}

// Request is one decoded request frame.
type Request struct {
	// ID correlates the response; the server echoes it verbatim.
	ID uint64
	// Op is the requested operation.
	Op Op
	// Name is the transaction type to run (OpRun).
	Name string
	// Args is the JSON-encoded argument record.
	Args []byte
}

// Response is one decoded response frame.
type Response struct {
	// ID echoes the request id.
	ID uint64
	// Status classifies the outcome.
	Status Status
	// Msg is a human-readable elaboration (empty on success).
	Msg string
	// Result is the JSON re-encoding of the transaction's work area.
	Result []byte
}

// MaxFrame bounds a single frame's payload. Requests are argument records
// and responses are work areas — a megabyte is far beyond any sane
// transaction, so larger lengths are treated as protocol corruption rather
// than honored with an allocation.
const MaxFrame = 1 << 20

// ErrFrameTooLarge reports a length prefix above MaxFrame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds limit")

var byteOrder = binary.BigEndian

// WriteRequest encodes req as one frame. It issues a single Write, so
// concurrent callers serialized by a mutex cannot interleave frames.
func WriteRequest(w io.Writer, req *Request) error {
	if len(req.Name) > 0xFFFF {
		return fmt.Errorf("wire: transaction type name %d bytes long", len(req.Name))
	}
	n := 8 + 1 + 2 + len(req.Name) + len(req.Args)
	if n > MaxFrame {
		return ErrFrameTooLarge
	}
	buf := make([]byte, 4+n)
	byteOrder.PutUint32(buf[0:], uint32(n))
	byteOrder.PutUint64(buf[4:], req.ID)
	buf[12] = byte(req.Op)
	byteOrder.PutUint16(buf[13:], uint16(len(req.Name)))
	copy(buf[15:], req.Name)
	copy(buf[15+len(req.Name):], req.Args)
	_, err := w.Write(buf)
	return err
}

// ReadRequest decodes one request frame.
func ReadRequest(r io.Reader) (*Request, error) {
	payload, err := readFrame(r)
	if err != nil {
		return nil, err
	}
	if len(payload) < 8+1+2 {
		return nil, fmt.Errorf("wire: short request frame (%d bytes)", len(payload))
	}
	req := &Request{
		ID: byteOrder.Uint64(payload[0:]),
		Op: Op(payload[8]),
	}
	nameLen := int(byteOrder.Uint16(payload[9:]))
	if 11+nameLen > len(payload) {
		return nil, fmt.Errorf("wire: request name length %d overruns frame", nameLen)
	}
	req.Name = string(payload[11 : 11+nameLen])
	req.Args = payload[11+nameLen:]
	return req, nil
}

// WriteResponse encodes resp as one frame in a single Write.
func WriteResponse(w io.Writer, resp *Response) error {
	msg := resp.Msg
	if len(msg) > 0xFFFF {
		msg = msg[:0xFFFF]
	}
	n := 8 + 1 + 2 + len(msg) + len(resp.Result)
	if n > MaxFrame {
		return ErrFrameTooLarge
	}
	buf := make([]byte, 4+n)
	byteOrder.PutUint32(buf[0:], uint32(n))
	byteOrder.PutUint64(buf[4:], resp.ID)
	buf[12] = byte(resp.Status)
	byteOrder.PutUint16(buf[13:], uint16(len(msg)))
	copy(buf[15:], msg)
	copy(buf[15+len(msg):], resp.Result)
	_, err := w.Write(buf)
	return err
}

// ReadResponse decodes one response frame.
func ReadResponse(r io.Reader) (*Response, error) {
	payload, err := readFrame(r)
	if err != nil {
		return nil, err
	}
	if len(payload) < 8+1+2 {
		return nil, fmt.Errorf("wire: short response frame (%d bytes)", len(payload))
	}
	resp := &Response{
		ID:     byteOrder.Uint64(payload[0:]),
		Status: Status(payload[8]),
	}
	msgLen := int(byteOrder.Uint16(payload[9:]))
	if 11+msgLen > len(payload) {
		return nil, fmt.Errorf("wire: response message length %d overruns frame", msgLen)
	}
	resp.Msg = string(payload[11 : 11+msgLen])
	resp.Result = payload[11+msgLen:]
	return resp, nil
}

// readFrame reads one length-prefixed payload.
func readFrame(r io.Reader) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err // io.EOF between frames is a clean close
	}
	n := byteOrder.Uint32(lenBuf[:])
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF // mid-frame close is not clean
		}
		return nil, err
	}
	return payload, nil
}
