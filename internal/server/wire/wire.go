// Package wire defines accd's length-prefixed binary framing. Both ends of
// the connection — internal/server and pkg/accclient — encode and decode
// through this package, so the frame layout is written down exactly once.
//
// Every frame is a 4-byte big-endian length (of the remainder) followed by
// the payload. Payloads open with a protocol version byte (Version); a
// request payload is
//
//	uint8   version     (Version)
//	uint64  request id  (client-chosen; echoed verbatim in the response)
//	uint64  trace id    (client-chosen; threads the request through the
//	                     server's latency-anatomy spans and trace events)
//	uint8   op          (OpRun, OpPing)
//	uint8   args format (FmtJSON, FmtBinary)
//	uint8   read tier   (0 locked, 1 asap, 2 read-committed, 3 snapshot)
//	uint16  name length
//	bytes   transaction type name (OpRun; empty for OpPing)
//	bytes   encoded transaction arguments (the rest of the frame)
//
// and a response payload is
//
//	uint8   version
//	uint64  request id
//	uint8   status code   (see Status)
//	uint8   result format (FmtJSON, FmtBinary)
//	uint16  message length
//	bytes   human-readable error message (empty on success)
//	bytes   encoded result (the rest of the frame)
//
// The result is the transaction's argument record re-encoded after
// execution: ACC transactions use their arguments as the §4.1 work area, so
// output fields (an assigned order number, a fetched balance) travel back in
// the same record the client sent. Responses are correlated by request id,
// never by order — the server answers out of order when pipelined requests
// finish out of order.
//
// Argument records travel either as JSON (the universal fallback) or, for
// transaction types with a registered ArgCodec, as a fixed-layout binary
// work area. The format byte makes the choice per request, and the server
// answers in the format the request used, so binary-speaking and
// JSON-speaking clients interoperate against the same server.
//
// The package is built for an allocation-free steady state: frames encode
// into pooled buffers (GetBuffer/PutBuffer), ReadFrame decodes into a
// caller-reused buffer with Request/Response fields aliasing it, and
// BatchWriter coalesces queued frames into single vectored writes.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Version is the protocol version stamped on every payload. Version 2
// introduced the version byte itself, the args/result format byte, and the
// binary work-area codec; version 3 added the request trace id; version 4
// added the read-tier byte selecting the lock-free versioned read path. As
// with the v1→v2 break, there is no cross-version interoperability — both
// ends of a deployment upgrade together.
const Version = 4

// Op selects what a request asks the server to do.
type Op uint8

const (
	// OpRun executes a registered transaction type.
	OpRun Op = 1
	// OpPing is a no-op round trip (health checks, pool liveness probes).
	OpPing Op = 2
)

// Format says how an args or result field is encoded.
type Format uint8

const (
	// FmtJSON is the universal fallback: the field is a JSON document.
	FmtJSON Format = 0
	// FmtBinary is the fixed-layout work-area encoding of a registered
	// ArgCodec.
	FmtBinary Format = 1
)

// String names the format for logs and error messages.
func (f Format) String() string {
	switch f {
	case FmtJSON:
		return "json"
	case FmtBinary:
		return "binary"
	default:
		return fmt.Sprintf("format(%d)", uint8(f))
	}
}

// Status classifies the outcome of a request. The codes mirror the engine's
// error taxonomy (internal/core) so a client can reconstruct an errors.Is
// compatible error without parsing message text.
type Status uint8

const (
	// StatusOK means the transaction committed; the result field holds the
	// re-encoded work area.
	StatusOK Status = iota
	// StatusCompensated means the transaction rolled back by compensation
	// (§3.4): its steps' effects were semantically reversed. Final — the
	// work area may still carry assigned identifiers the client must
	// observe (e.g. a consumed order number).
	StatusCompensated
	// StatusAborted means the transaction aborted before exposing anything
	// (user abort). Final.
	StatusAborted
	// StatusDeadlock means the transaction was abandoned as a deadlock
	// victim after the server-side retry budget. Retryable.
	StatusDeadlock
	// StatusLockTimeout means a lock wait exceeded the engine's budget.
	// Retryable.
	StatusLockTimeout
	// StatusCanceled means the request's context ended (client disconnect
	// or server-side cancellation) before the transaction completed.
	StatusCanceled
	// StatusUnknownType means the named transaction type is not registered.
	StatusUnknownType
	// StatusQueueFull means admission control refused the request because
	// the in-flight limit was reached. Nothing executed; retry later.
	StatusQueueFull
	// StatusDraining means the server is shutting down and accepts no new
	// work. Nothing executed; retry against another server.
	StatusDraining
	// StatusBadRequest means the frame was structurally valid but the
	// request could not be decoded (malformed args, bad op, binary args
	// for a type with no registered codec).
	StatusBadRequest
	// StatusInternal is any other server-side failure, including a result
	// work area that failed to re-encode.
	StatusInternal
)

// String names the status for logs and metrics labels.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusCompensated:
		return "compensated"
	case StatusAborted:
		return "aborted"
	case StatusDeadlock:
		return "deadlock"
	case StatusLockTimeout:
		return "lock-timeout"
	case StatusCanceled:
		return "canceled"
	case StatusUnknownType:
		return "unknown-type"
	case StatusQueueFull:
		return "queue-full"
	case StatusDraining:
		return "draining"
	case StatusBadRequest:
		return "bad-request"
	case StatusInternal:
		return "internal"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Retryable reports whether the status describes a transient outcome where
// retrying the identical request may succeed: scheduling aborts and
// admission refusals. Final outcomes (ok, compensated, aborted) and caller
// mistakes (unknown type, bad request) are not retryable.
func (s Status) Retryable() bool {
	switch s {
	case StatusDeadlock, StatusLockTimeout, StatusQueueFull:
		return true
	default:
		return false
	}
}

// Request is one decoded request frame. After DecodeRequest, Name and Args
// alias the payload buffer: they are valid until the caller recycles it.
type Request struct {
	// ID correlates the response; the server echoes it verbatim.
	ID uint64
	// Trace is the client-assigned trace ID for end-to-end latency
	// attribution. Unlike ID it is stable across retries of one logical
	// request, and it is never echoed — the client already knows it.
	Trace uint64
	// Op is the requested operation.
	Op Op
	// Fmt says how Args is encoded.
	Fmt Format
	// Tier selects the read path: 0 runs the full locked protocol (the only
	// tier that permits writes); 1-3 are the versioned read-only tiers
	// (read-ASAP, read-committed, snapshot — core.ReadTier's values). An
	// unknown tier is answered with StatusBadRequest.
	Tier uint8
	// Name is the transaction type to run (OpRun).
	Name []byte
	// Args is the encoded argument record.
	Args []byte
}

// Response is one decoded response frame. After DecodeResponse, Msg and
// Result alias the payload buffer: they are valid until the caller recycles
// it.
type Response struct {
	// ID echoes the request id.
	ID uint64
	// Status classifies the outcome.
	Status Status
	// Fmt says how Result is encoded.
	Fmt Format
	// Msg is a human-readable elaboration (empty on success).
	Msg []byte
	// Result is the re-encoding of the transaction's work area.
	Result []byte
}

// MaxFrame bounds a single frame's payload. Requests are argument records
// and responses are work areas — a megabyte is far beyond any sane
// transaction, so larger lengths are treated as protocol corruption rather
// than honored with an allocation.
const MaxFrame = 1 << 20

// ErrFrameTooLarge reports a length prefix above MaxFrame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds limit")

// ErrVersion reports a payload whose leading version byte is not Version —
// an incompatible peer, or garbage on the wire.
var ErrVersion = errors.New("wire: protocol version mismatch")

var byteOrder = binary.BigEndian

// reqHeader is the fixed part of a request payload: version, id, trace id,
// op, format, read tier, name length.
const reqHeader = 1 + 8 + 8 + 1 + 1 + 1 + 2

// respHeader is the fixed part of a response payload: version, id, status,
// format, message length.
const respHeader = 1 + 8 + 1 + 1 + 2

// AppendRequest appends req as one complete frame (length prefix included)
// and returns the extended buffer. The only errors are size violations.
func AppendRequest(dst []byte, req *Request) ([]byte, error) {
	if len(req.Name) > 0xFFFF {
		return dst, fmt.Errorf("wire: transaction type name %d bytes long", len(req.Name))
	}
	n := reqHeader + len(req.Name) + len(req.Args)
	if n > MaxFrame {
		return dst, ErrFrameTooLarge
	}
	dst = byteOrder.AppendUint32(dst, uint32(n))
	dst = append(dst, Version)
	dst = byteOrder.AppendUint64(dst, req.ID)
	dst = byteOrder.AppendUint64(dst, req.Trace)
	dst = append(dst, byte(req.Op), byte(req.Fmt), req.Tier)
	dst = byteOrder.AppendUint16(dst, uint16(len(req.Name)))
	dst = append(dst, req.Name...)
	dst = append(dst, req.Args...)
	return dst, nil
}

// AppendResponse appends resp as one complete frame (length prefix
// included) and returns the extended buffer. An over-long message is
// truncated rather than failed: it only elaborates the status.
func AppendResponse(dst []byte, resp *Response) ([]byte, error) {
	msg := resp.Msg
	if len(msg) > 0xFFFF {
		msg = msg[:0xFFFF]
	}
	n := respHeader + len(msg) + len(resp.Result)
	if n > MaxFrame {
		return dst, ErrFrameTooLarge
	}
	dst = byteOrder.AppendUint32(dst, uint32(n))
	dst = append(dst, Version)
	dst = byteOrder.AppendUint64(dst, resp.ID)
	dst = append(dst, byte(resp.Status), byte(resp.Fmt))
	dst = byteOrder.AppendUint16(dst, uint16(len(msg)))
	dst = append(dst, msg...)
	dst = append(dst, resp.Result...)
	return dst, nil
}

// DecodeRequest decodes one request payload into req. Name and Args alias
// payload.
func DecodeRequest(payload []byte, req *Request) error {
	// Version first: an old-protocol frame is usually also shorter than the
	// current header, and the version mismatch is the useful diagnosis.
	if len(payload) >= 1 && payload[0] != Version {
		return fmt.Errorf("%w: got %d, want %d", ErrVersion, payload[0], Version)
	}
	if len(payload) < reqHeader {
		return fmt.Errorf("wire: short request frame (%d bytes)", len(payload))
	}
	req.ID = byteOrder.Uint64(payload[1:])
	req.Trace = byteOrder.Uint64(payload[9:])
	req.Op = Op(payload[17])
	req.Fmt = Format(payload[18])
	req.Tier = payload[19]
	nameLen := int(byteOrder.Uint16(payload[20:]))
	if reqHeader+nameLen > len(payload) {
		return fmt.Errorf("wire: request name length %d overruns frame", nameLen)
	}
	req.Name = payload[reqHeader : reqHeader+nameLen]
	req.Args = payload[reqHeader+nameLen:]
	return nil
}

// DecodeResponse decodes one response payload into resp. Msg and Result
// alias payload.
func DecodeResponse(payload []byte, resp *Response) error {
	if len(payload) < respHeader {
		return fmt.Errorf("wire: short response frame (%d bytes)", len(payload))
	}
	if payload[0] != Version {
		return fmt.Errorf("%w: got %d, want %d", ErrVersion, payload[0], Version)
	}
	resp.ID = byteOrder.Uint64(payload[1:])
	resp.Status = Status(payload[9])
	resp.Fmt = Format(payload[10])
	msgLen := int(byteOrder.Uint16(payload[11:]))
	if respHeader+msgLen > len(payload) {
		return fmt.Errorf("wire: response message length %d overruns frame", msgLen)
	}
	resp.Msg = payload[respHeader : respHeader+msgLen]
	resp.Result = payload[respHeader+msgLen:]
	return nil
}

// ReadFrame reads one length-prefixed payload into *buf, growing it only
// when the frame exceeds its capacity, and returns the payload slice. The
// caller owns *buf across calls — a session reuses one buffer for its whole
// lifetime, so steady-state reads allocate nothing.
func ReadFrame(r io.Reader, buf *[]byte) ([]byte, error) {
	// The length prefix is read into the caller's buffer, not a local
	// array: a local would escape through the io.ReadFull interface call
	// and cost one heap allocation per frame.
	if cap(*buf) < 4 {
		*buf = make([]byte, 0, 4096)
	}
	hdr := (*buf)[:4]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err // io.EOF between frames is a clean close
	}
	n := int(byteOrder.Uint32(hdr))
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	if cap(*buf) < n {
		*buf = make([]byte, n)
	}
	payload := (*buf)[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF // mid-frame close is not clean
		}
		return nil, err
	}
	return payload, nil
}

// WriteRequest encodes req as one frame through a pooled buffer. It issues
// a single Write, so concurrent callers serialized by a mutex cannot
// interleave frames. Batched senders use AppendRequest with a BatchWriter
// instead.
func WriteRequest(w io.Writer, req *Request) error {
	buf := GetBuffer()
	defer PutBuffer(buf)
	b, err := AppendRequest((*buf)[:0], req)
	if err != nil {
		return err
	}
	*buf = b
	_, err = w.Write(b)
	return err
}

// WriteResponse encodes resp as one frame in a single Write through a
// pooled buffer.
func WriteResponse(w io.Writer, resp *Response) error {
	buf := GetBuffer()
	defer PutBuffer(buf)
	b, err := AppendResponse((*buf)[:0], resp)
	if err != nil {
		return err
	}
	*buf = b
	_, err = w.Write(b)
	return err
}

// ReadRequest reads and decodes one request frame into fresh storage (the
// convenience path for tests and simple tools; the server reads through
// ReadFrame + DecodeRequest with pooled buffers).
func ReadRequest(r io.Reader) (*Request, error) {
	var buf []byte
	payload, err := ReadFrame(r, &buf)
	if err != nil {
		return nil, err
	}
	req := &Request{}
	if err := DecodeRequest(payload, req); err != nil {
		return nil, err
	}
	return req, nil
}

// ReadResponse reads and decodes one response frame into fresh storage.
func ReadResponse(r io.Reader) (*Response, error) {
	var buf []byte
	payload, err := ReadFrame(r, &buf)
	if err != nil {
		return nil, err
	}
	resp := &Response{}
	if err := DecodeResponse(payload, resp); err != nil {
		return nil, err
	}
	return resp, nil
}
