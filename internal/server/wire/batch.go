// BatchWriter: the shared frame-coalescing writer both ends of the
// connection use. Senders enqueue encoded frames; one writer goroutine
// drains the queue into a single vectored write (net.Buffers → writev on a
// TCP conn) per wakeup. Under pipelining, frames pile up while the previous
// write's syscall is in flight, so the syscall count is amortized across
// the burst without any added latency — the writer never waits for a timer,
// it writes whatever has accumulated the moment it wakes.

package wire

import (
	"errors"
	"io"
	"net"
	"sync"
)

// ErrWriterClosed reports an Enqueue after Close.
var ErrWriterClosed = errors.New("wire: batch writer closed")

// FrameHook is a completion callback attached to a frame via EnqueueHook:
// Finish runs on the writer goroutine once the frame's bytes reach the
// socket (or the frame is dropped because the writer closed or broke). The
// server uses it to close a latency span's batch-flush stage.
type FrameHook interface{ Finish() }

// queued is one queue entry: the encoded frame and its optional hook.
type queued struct {
	frame *[]byte
	hook  FrameHook
}

// BatchWriter coalesces queued frames into vectored writes on one
// connection. Enqueue transfers buffer ownership: frames are recycled to
// the frame pool after they are written (or dropped on error/close), so a
// steady-state sender allocates nothing.
type BatchWriter struct {
	w io.Writer

	mu     sync.Mutex
	cond   *sync.Cond // wakes the loop: frames queued, or closing
	idle   *sync.Cond // wakes Flush: loop drained and recycled everything
	queue  []queued
	busy   bool
	closed bool
	err    error

	done chan struct{}
}

// NewBatchWriter starts a writer over w. Close releases it.
func NewBatchWriter(w io.Writer) *BatchWriter {
	bw := &BatchWriter{w: w, done: make(chan struct{})}
	bw.cond = sync.NewCond(&bw.mu)
	bw.idle = sync.NewCond(&bw.mu)
	go bw.loop()
	return bw
}

// Enqueue hands one encoded frame (from GetBuffer) to the writer, which
// owns it from here: it is recycled after the write. On a closed or broken
// writer the frame is recycled immediately and the failure returned — the
// bytes will never reach the peer.
func (bw *BatchWriter) Enqueue(frame *[]byte) error {
	return bw.EnqueueHook(frame, nil)
}

// EnqueueHook is Enqueue with a completion hook: h.Finish runs on the
// writer goroutine after the frame's vectored write lands — or immediately
// here when the frame is dropped because the writer is closed or broken —
// so a hook fires exactly once per accepted frame either way.
func (bw *BatchWriter) EnqueueHook(frame *[]byte, h FrameHook) error {
	bw.mu.Lock()
	if bw.closed || bw.err != nil {
		err := bw.err
		bw.mu.Unlock()
		PutBuffer(frame)
		if h != nil {
			h.Finish()
		}
		if err == nil {
			err = ErrWriterClosed
		}
		return err
	}
	bw.queue = append(bw.queue, queued{frame: frame, hook: h})
	bw.mu.Unlock()
	bw.cond.Signal()
	return nil
}

// Flush blocks until every frame enqueued before the call has been written
// and recycled (or the writer broke). It returns the first write error.
func (bw *BatchWriter) Flush() error {
	bw.mu.Lock()
	defer bw.mu.Unlock()
	for (len(bw.queue) > 0 || bw.busy) && bw.err == nil {
		bw.idle.Wait()
	}
	return bw.err
}

// Err returns the first write error, if any.
func (bw *BatchWriter) Err() error {
	bw.mu.Lock()
	defer bw.mu.Unlock()
	return bw.err
}

// Close flushes everything already enqueued, stops the writer, and returns
// the first write error. It does not close the underlying connection — the
// caller owns that, and typically closes it right after Close returns so
// the final frames are on the wire first.
func (bw *BatchWriter) Close() error {
	bw.mu.Lock()
	if !bw.closed {
		bw.closed = true
		bw.cond.Signal()
	}
	bw.mu.Unlock()
	<-bw.done
	return bw.Err()
}

// loop drains the queue: each wakeup takes every frame accumulated so far
// and issues one vectored write. Two batch slices double-buffer so the
// steady state allocates nothing.
func (bw *BatchWriter) loop() {
	defer close(bw.done)
	var batch []queued
	var scratch [][]byte
	// bufs escapes once (WriteTo takes its address); a per-flush local
	// would cost a heap-allocated slice header every batch.
	var bufs net.Buffers
	for {
		bw.mu.Lock()
		bw.busy = false
		bw.idle.Broadcast()
		for len(bw.queue) == 0 && !bw.closed {
			bw.cond.Wait()
		}
		bw.busy = true
		batch, bw.queue = bw.queue, batch[:0]
		// Enqueue refuses once closed is set, so the batch just taken is
		// the final one: drain it, then stop.
		stop := bw.closed
		broken := bw.err != nil
		bw.mu.Unlock()

		if len(batch) > 0 && !broken {
			// WriteTo consumes the net.Buffers header in place, so it gets a
			// copy; scratch keeps its backing array across flushes.
			scratch = scratch[:0]
			for _, q := range batch {
				scratch = append(scratch, *q.frame)
			}
			bufs = net.Buffers(scratch)
			if _, err := bufs.WriteTo(bw.w); err != nil {
				bw.mu.Lock()
				if bw.err == nil {
					bw.err = err
				}
				bw.mu.Unlock()
			}
		}
		for i, q := range batch {
			PutBuffer(q.frame)
			if q.hook != nil {
				q.hook.Finish()
			}
			batch[i] = queued{}
		}
		batch = batch[:0]
		if stop {
			bw.mu.Lock()
			bw.busy = false
			bw.idle.Broadcast()
			bw.mu.Unlock()
			return
		}
	}
}
