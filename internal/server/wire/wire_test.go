package wire

import (
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &Request{ID: 42, Trace: 7001, Op: OpRun, Fmt: FmtJSON, Name: []byte("new_order"), Args: []byte(`{"WID":1}`)}
	if err := WriteRequest(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadRequest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.Trace != in.Trace || out.Op != in.Op || out.Fmt != in.Fmt ||
		!bytes.Equal(out.Name, in.Name) || !bytes.Equal(out.Args, in.Args) {
		t.Fatalf("round trip mangled request: %+v -> %+v", in, out)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &Response{ID: 7, Status: StatusCompensated, Fmt: FmtBinary, Msg: []byte("rolled back"), Result: []byte{1, 2, 3}}
	if err := WriteResponse(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadResponse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.Status != in.Status || out.Fmt != in.Fmt ||
		!bytes.Equal(out.Msg, in.Msg) || !bytes.Equal(out.Result, in.Result) {
		t.Fatalf("round trip mangled response: %+v -> %+v", in, out)
	}
}

func TestEmptyFields(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRequest(&buf, &Request{ID: 1, Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	out, err := ReadRequest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Name) != 0 || len(out.Args) != 0 {
		t.Fatalf("ping grew fields: %+v", out)
	}
}

func TestVersionMismatch(t *testing.T) {
	// A v1-style frame (no version byte; first payload byte is the id's
	// high byte, 0) must be rejected with ErrVersion, not misparsed.
	payload := []byte{
		0, 0, 0, 13, // frame length
		0, 0, 0, 0, 0, 0, 0, 0, 1, // v1: id
		1,    // v1: op
		0, 0, // v1: name length
		0, // filler
	}
	if _, err := ReadRequest(bytes.NewReader(payload)); !errors.Is(err, ErrVersion) {
		t.Fatalf("want ErrVersion for v1 frame, got %v", err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	big := &Request{ID: 1, Op: OpRun, Name: []byte("x"), Args: make([]byte, MaxFrame)}
	if err := WriteRequest(io.Discard, big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge writing, got %v", err)
	}
	// A hostile length prefix must be rejected before allocation.
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadRequest(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge reading, got %v", err)
	}
}

func TestTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRequest(&buf, &Request{ID: 3, Op: OpRun, Name: []byte("payment")}); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadRequest(bytes.NewReader(cut)); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("want ErrUnexpectedEOF on mid-frame close, got %v", err)
	}
	// Clean close between frames is io.EOF.
	if _, err := ReadRequest(strings.NewReader("")); !errors.Is(err, io.EOF) {
		t.Fatalf("want io.EOF between frames, got %v", err)
	}
}

func TestOverrunLengths(t *testing.T) {
	// name length claims more bytes than the frame holds
	payload := []byte{
		0, 0, 0, 23, // frame length
		Version,
		0, 0, 0, 0, 0, 0, 0, 1, // id
		0, 0, 0, 0, 0, 0, 0, 0, // trace id
		1,       // op
		0,       // fmt
		0xFF, 1, // name length 0xFF01 overruns
		0, 0, // filler
	}
	if _, err := ReadRequest(bytes.NewReader(payload)); err == nil {
		t.Fatal("want error for overrunning name length")
	}
}

func TestStatusStringsAndRetryability(t *testing.T) {
	for st, want := range map[Status]bool{
		StatusOK: false, StatusCompensated: false, StatusAborted: false,
		StatusDeadlock: true, StatusLockTimeout: true, StatusQueueFull: true,
		StatusCanceled: false, StatusUnknownType: false, StatusDraining: false,
		StatusBadRequest: false, StatusInternal: false,
	} {
		if st.Retryable() != want {
			t.Errorf("%s.Retryable() = %v, want %v", st, st.Retryable(), want)
		}
		if strings.HasPrefix(st.String(), "status(") {
			t.Errorf("status %d has no name", uint8(st))
		}
	}
}

// TestBatchWriterCoalesces checks the writer delivers every enqueued frame
// in order and survives a flood from concurrent senders.
func TestBatchWriterCoalesces(t *testing.T) {
	var out bytes.Buffer
	var mu sync.Mutex
	lw := lockedWriter{w: &out, mu: &mu}
	bw := NewBatchWriter(&lw)

	const senders, frames = 8, 100
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < frames; i++ {
				buf := GetBuffer()
				b, err := AppendResponse((*buf)[:0], &Response{ID: uint64(s*frames + i), Status: StatusOK})
				if err != nil {
					t.Error(err)
					return
				}
				*buf = b
				if err := bw.Enqueue(buf); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	r := bytes.NewReader(out.Bytes())
	for i := 0; i < senders*frames; i++ {
		resp, err := ReadResponse(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if seen[resp.ID] {
			t.Fatalf("duplicate frame id %d", resp.ID)
		}
		seen[resp.ID] = true
	}
	if r.Len() != 0 {
		t.Fatalf("%d trailing bytes after all frames", r.Len())
	}
}

// lockedWriter serializes writes; net.Buffers may issue several Write calls
// per flush on a non-net.Conn sink.
type lockedWriter struct {
	w  io.Writer
	mu *sync.Mutex
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// TestBatchWriterClose checks Close flushes pending frames before stopping,
// and that Enqueue after Close refuses with the frame recycled.
func TestBatchWriterClose(t *testing.T) {
	var out bytes.Buffer
	var mu sync.Mutex
	lw := lockedWriter{w: &out, mu: &mu}
	bw := NewBatchWriter(&lw)
	for i := 0; i < 10; i++ {
		buf := GetBuffer()
		b, _ := AppendResponse((*buf)[:0], &Response{ID: uint64(i)})
		*buf = b
		if err := bw.Enqueue(buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(out.Bytes())
	for i := 0; i < 10; i++ {
		if _, err := ReadResponse(r); err != nil {
			t.Fatalf("frame %d lost at close: %v", i, err)
		}
	}
	buf := GetBuffer()
	b, _ := AppendResponse((*buf)[:0], &Response{ID: 99})
	*buf = b
	if err := bw.Enqueue(buf); !errors.Is(err, ErrWriterClosed) {
		t.Fatalf("want ErrWriterClosed after Close, got %v", err)
	}
}

// TestBatchWriterError checks a write failure breaks the writer and
// surfaces through Enqueue.
func TestBatchWriterError(t *testing.T) {
	bw := NewBatchWriter(failWriter{})
	buf := GetBuffer()
	b, _ := AppendResponse((*buf)[:0], &Response{ID: 1})
	*buf = b
	if err := bw.Enqueue(buf); err != nil {
		t.Fatal(err)
	}
	// The failure lands asynchronously; Close synchronizes with the loop.
	if err := bw.Close(); err == nil {
		t.Fatal("want write error from Close")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("boom") }

// countConn counts bytes written; AllocsPerRun guards write against it so
// the flush path runs for real without a socket.
type countConn struct {
	n atomic.Int64
}

func (c *countConn) Write(p []byte) (int, error) {
	c.n.Add(int64(len(p)))
	return len(p), nil
}

// TestEncodeDecodeAllocFree asserts the steady-state frame encode and
// decode paths perform zero heap allocations per request once buffers are
// pooled — the property the server's zero-allocation hot path is built on.
func TestEncodeDecodeAllocFree(t *testing.T) {
	name := []byte("new_order")
	args := bytes.Repeat([]byte{7}, 128)
	frame := GetBuffer()
	defer PutBuffer(frame)
	read := GetBuffer()
	defer PutBuffer(read)
	var req Request
	var resp Response
	var r bytes.Reader

	// Warm the pools and buffer capacities outside the measured runs.
	run := func() {
		b, err := AppendRequest((*frame)[:0], &Request{ID: 9, Op: OpRun, Fmt: FmtBinary, Name: name, Args: args})
		if err != nil {
			t.Fatal(err)
		}
		*frame = b
		r.Reset(b)
		payload, err := ReadFrame(&r, read)
		if err != nil {
			t.Fatal(err)
		}
		if err := DecodeRequest(payload, &req); err != nil {
			t.Fatal(err)
		}
		b, err = AppendResponse((*frame)[:0], &Response{ID: req.ID, Status: StatusOK, Fmt: FmtBinary, Result: req.Args})
		if err != nil {
			t.Fatal(err)
		}
		*frame = b
		r.Reset(b)
		payload, err = ReadFrame(&r, read)
		if err != nil {
			t.Fatal(err)
		}
		if err := DecodeResponse(payload, &resp); err != nil {
			t.Fatal(err)
		}
	}
	run()
	if allocs := testing.AllocsPerRun(200, run); allocs != 0 {
		t.Fatalf("frame encode/decode allocates %.1f objects per request, want 0", allocs)
	}
}

// TestBatchWriteAllocFree asserts the session write path — encode a
// response into a pooled frame, enqueue, vectored write — settles to zero
// allocations per response.
func TestBatchWriteAllocFree(t *testing.T) {
	var sink countConn
	bw := NewBatchWriter(&sink)
	defer bw.Close()
	result := bytes.Repeat([]byte{3}, 256)
	run := func() {
		buf := GetBuffer()
		b, err := AppendResponse((*buf)[:0], &Response{ID: 5, Status: StatusOK, Fmt: FmtBinary, Result: result})
		if err != nil {
			t.Fatal(err)
		}
		*buf = b
		if err := bw.Enqueue(buf); err != nil {
			t.Fatal(err)
		}
		// Flush waits until the frame is written AND recycled, so each
		// run's GetBuffer deterministically hits the pool.
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		run() // warm pools, batch slices, and the writer's scratch space
	}
	if allocs := testing.AllocsPerRun(200, run); allocs > 0 {
		t.Fatalf("session write path allocates %.1f objects per response, want 0", allocs)
	}
}

// TestBatchWriterOverTCP round-trips frames through a real TCP socket so
// the net.Buffers writev path is exercised (bytes.Buffer sinks take the
// generic fallback).
func TestBatchWriterOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	var got []Response
	go func() {
		c, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		for i := 0; i < 50; i++ {
			resp, err := ReadResponse(c)
			if err != nil {
				done <- err
				return
			}
			got = append(got, Response{ID: resp.ID, Status: resp.Status})
		}
		done <- nil
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	bw := NewBatchWriter(c)
	for i := 0; i < 50; i++ {
		buf := GetBuffer()
		b, _ := AppendResponse((*buf)[:0], &Response{ID: uint64(i), Status: StatusOK})
		*buf = b
		if err := bw.Enqueue(buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	for i, r := range got {
		if r.ID != uint64(i) {
			t.Fatalf("frame %d arrived out of order: id %d", i, r.ID)
		}
	}
}

// FuzzDecodeFrames feeds hostile payloads to both decoders: they must
// reject or accept without panicking or over-reading.
func FuzzDecodeFrames(f *testing.F) {
	seed, _ := AppendRequest(nil, &Request{ID: 1, Op: OpRun, Fmt: FmtBinary, Name: []byte("payment"), Args: []byte{1, 2}})
	f.Add(seed[4:])
	seed2, _ := AppendResponse(nil, &Response{ID: 2, Status: StatusOK, Msg: []byte("x")})
	f.Add(seed2[4:])
	f.Add([]byte{Version})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, payload []byte) {
		var req Request
		if err := DecodeRequest(payload, &req); err == nil {
			if len(req.Name)+len(req.Args) > len(payload) {
				t.Fatal("decoded request over-reads payload")
			}
		}
		var resp Response
		if err := DecodeResponse(payload, &resp); err == nil {
			if len(resp.Msg)+len(resp.Result) > len(payload) {
				t.Fatal("decoded response over-reads payload")
			}
		}
	})
}
