package wire

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &Request{ID: 42, Op: OpRun, Name: "new_order", Args: []byte(`{"WID":1}`)}
	if err := WriteRequest(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadRequest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.Op != in.Op || out.Name != in.Name || !bytes.Equal(out.Args, in.Args) {
		t.Fatalf("round trip mangled request: %+v -> %+v", in, out)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &Response{ID: 7, Status: StatusCompensated, Msg: "rolled back", Result: []byte(`{"ONum":9}`)}
	if err := WriteResponse(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadResponse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.Status != in.Status || out.Msg != in.Msg || !bytes.Equal(out.Result, in.Result) {
		t.Fatalf("round trip mangled response: %+v -> %+v", in, out)
	}
}

func TestEmptyFields(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRequest(&buf, &Request{ID: 1, Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	out, err := ReadRequest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != "" || len(out.Args) != 0 {
		t.Fatalf("ping grew fields: %+v", out)
	}
}

func TestFrameTooLarge(t *testing.T) {
	big := &Request{ID: 1, Op: OpRun, Name: "x", Args: make([]byte, MaxFrame)}
	if err := WriteRequest(io.Discard, big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge writing, got %v", err)
	}
	// A hostile length prefix must be rejected before allocation.
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadRequest(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge reading, got %v", err)
	}
}

func TestTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRequest(&buf, &Request{ID: 3, Op: OpRun, Name: "payment"}); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadRequest(bytes.NewReader(cut)); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("want ErrUnexpectedEOF on mid-frame close, got %v", err)
	}
	// Clean close between frames is io.EOF.
	if _, err := ReadRequest(strings.NewReader("")); !errors.Is(err, io.EOF) {
		t.Fatalf("want io.EOF between frames, got %v", err)
	}
}

func TestOverrunLengths(t *testing.T) {
	// name length claims more bytes than the frame holds
	payload := []byte{
		0, 0, 0, 11, // frame length
		0, 0, 0, 0, 0, 0, 0, 1, // id
		1,       // op
		0xFF, 1, // name length 0xFF01 overruns
	}
	if _, err := ReadRequest(bytes.NewReader(payload)); err == nil {
		t.Fatal("want error for overrunning name length")
	}
}

func TestStatusStringsAndRetryability(t *testing.T) {
	for st, want := range map[Status]bool{
		StatusOK: false, StatusCompensated: false, StatusAborted: false,
		StatusDeadlock: true, StatusLockTimeout: true, StatusQueueFull: true,
		StatusCanceled: false, StatusUnknownType: false, StatusDraining: false,
		StatusBadRequest: false, StatusInternal: false,
	} {
		if st.Retryable() != want {
			t.Errorf("%s.Retryable() = %v, want %v", st, st.Retryable(), want)
		}
		if strings.HasPrefix(st.String(), "status(") {
			t.Errorf("status %d has no name", uint8(st))
		}
	}
}
