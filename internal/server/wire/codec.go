// Work-area codec registry and the frame buffer pool. A transaction type
// with a registered ArgCodec travels as a fixed-layout binary record
// (FmtBinary) instead of JSON, encoded into and decoded out of pooled
// storage, so the steady-state request path performs zero heap allocations
// per request. Types without a codec fall back to JSON transparently — the
// format byte on each frame keeps both populations interoperable.

package wire

import (
	"reflect"
	"sync"
	"sync/atomic"
)

// ArgCodec is the fixed-layout binary encoding of one transaction type's
// argument record, registered once (typically from the workload package's
// init) and shared by the server and the client.
type ArgCodec struct {
	// Name is the transaction type this codec encodes.
	Name string
	// New returns a fresh argument record (the pool's constructor).
	New func() any
	// Reset clears a record for reuse, keeping slice capacity.
	Reset func(v any)
	// Encode appends the record's binary layout to dst and returns the
	// extended buffer. It must accept any record New produces.
	Encode func(dst []byte, v any) []byte
	// Decode overwrites v from data. It must bounds-check hostile input and
	// reuse v's slice capacity; it never panics on truncated or oversized
	// payloads.
	Decode func(data []byte, v any) error

	nameBytes []byte
	argType   reflect.Type
	pool      sync.Pool
}

// NameBytes returns the codec's type name as a reusable byte slice (for
// request frames; callers must not mutate it).
func (c *ArgCodec) NameBytes() []byte { return c.nameBytes }

// Handles reports whether v is the concrete record type this codec
// encodes, so callers holding an arbitrary args value can decide between
// the binary path and the JSON fallback.
func (c *ArgCodec) Handles(v any) bool { return reflect.TypeOf(v) == c.argType }

// GetArgs returns a pooled, reset argument record.
func (c *ArgCodec) GetArgs() any {
	v := c.pool.Get()
	if v == nil {
		return c.New()
	}
	c.Reset(v)
	return v
}

// PutArgs returns a record to the pool. The caller must not retain it.
func (c *ArgCodec) PutArgs(v any) {
	if v != nil {
		c.pool.Put(v)
	}
}

// registry is a copy-on-write map: registration happens at package init
// time, lookups on every request, so reads must be lock-free.
var registry atomic.Pointer[map[string]*ArgCodec]

var registerMu sync.Mutex

// RegisterArgCodec installs a codec for its transaction type, replacing any
// previous registration. Call from init or before serving; lookups are
// lock-free.
func RegisterArgCodec(c *ArgCodec) {
	if c.Name == "" || c.New == nil || c.Reset == nil || c.Encode == nil || c.Decode == nil {
		panic("wire: ArgCodec requires Name, New, Reset, Encode, and Decode")
	}
	c.nameBytes = []byte(c.Name)
	c.argType = reflect.TypeOf(c.New())
	registerMu.Lock()
	defer registerMu.Unlock()
	next := make(map[string]*ArgCodec)
	if cur := registry.Load(); cur != nil {
		for k, v := range *cur {
			next[k] = v
		}
	}
	next[c.Name] = c
	registry.Store(&next)
}

// CodecFor returns the codec registered for the transaction type, or nil.
func CodecFor(name string) *ArgCodec {
	m := registry.Load()
	if m == nil {
		return nil
	}
	return (*m)[name]
}

// CodecForBytes is CodecFor keyed by a byte-slice name (a decoded request's
// Name field) without allocating.
func CodecForBytes(name []byte) *ArgCodec {
	m := registry.Load()
	if m == nil {
		return nil
	}
	return (*m)[string(name)]
}

// bufferPool recycles frame and work-area buffers. 4 KiB initial capacity
// covers every TPC-C frame; oversized buffers return to the pool too — the
// MaxFrame bound keeps the worst case at 1 MiB.
var bufferPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// GetBuffer returns a pooled byte buffer (length unspecified; reslice
// before use). Pair with PutBuffer.
func GetBuffer() *[]byte {
	return bufferPool.Get().(*[]byte)
}

// PutBuffer recycles a buffer obtained from GetBuffer. The caller must not
// use it afterwards.
func PutBuffer(b *[]byte) {
	if b != nil {
		bufferPool.Put(b)
	}
}
