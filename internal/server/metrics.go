package server

import (
	"fmt"
	"io"
	"sort"
)

// WriteMetrics renders the server's admission counters and per-type RPC
// latency summaries in the Prometheus text exposition format. accd mounts it
// at /metrics next to the engine counters.
func (s *Server) WriteMetrics(w io.Writer) {
	st := s.Stats()
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("accd_rpc_admitted_total", "Requests past admission control.", st.Admitted)
	counter("accd_rpc_rejected_queue_full_total", "Requests refused: in-flight limit reached.", st.RejectedFull)
	counter("accd_rpc_rejected_draining_total", "Requests refused: server draining.", st.RejectedDraining)
	counter("accd_rpc_bad_requests_total", "Undecodable or unknown-type requests.", st.BadRequests)
	gauge("accd_rpc_in_flight", "Requests executing right now.", st.InFlight)
	gauge("accd_conns_open", "Open client sessions.", st.Conns)
	draining := int64(0)
	if st.Draining {
		draining = 1
	}
	gauge("accd_draining", "1 while Shutdown is draining the server.", draining)

	byType := s.rec.ByType()
	names := make([]string, 0, len(byType))
	for name := range byType {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "# HELP accd_rpc_latency_seconds Server-side RPC latency quantiles per transaction type.\n")
	fmt.Fprintf(w, "# TYPE accd_rpc_latency_seconds summary\n")
	for _, name := range names {
		sum := byType[name]
		for _, q := range []struct {
			p string
			v float64
		}{
			{"0.5", sum.P50.Seconds()},
			{"0.95", sum.P95.Seconds()},
			{"0.99", sum.P99.Seconds()},
		} {
			fmt.Fprintf(w, "accd_rpc_latency_seconds{type=%q,quantile=%q} %g\n", name, q.p, q.v)
		}
		fmt.Fprintf(w, "accd_rpc_latency_seconds_count{type=%q} %d\n", name, sum.Count)
	}
}
