package server

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"accdb/internal/core"
	"accdb/internal/server/wire"
	"accdb/internal/trace"
	"accdb/pkg/accclient"
)

// syncBuf makes a bytes.Buffer safe to read while the anatomy layer is still
// appending slow-transaction records from server goroutines.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) Bytes() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.b.Bytes()...)
}

// TestBinaryPathTraceSpans pins the observability contract on the zero-copy
// path: a FmtBinary request through the batch writer must still produce the
// rpc.* and txn.* trace events with the wire trace ID and engine transaction
// ID attached, plus one txn.span breakdown whose stages cover the request.
func TestBinaryPathTraceSpans(t *testing.T) {
	registerMoveCodec()
	sink := trace.NewMemorySink(256)
	tr := trace.New(sink)
	defer tr.Close()
	anatomy := trace.NewAnatomy(trace.AnatomyConfig{Tracer: tr})
	s := newMoveSys(t, func(c *Config) {
		c.Tracer = tr
		c.Anatomy = anatomy
	}, core.WithTracer(tr))

	rc := dialRaw(t, s.ln.Addr())
	defer rc.c.Close()

	const traceID = 0xfeed
	codec := wire.CodecFor("move")
	argBytes := codec.Encode(nil, &moveArgs{ID: 500, Account: 3})
	if err := wire.WriteRequest(rc.c, &wire.Request{
		ID: 1, Trace: traceID, Op: wire.OpRun, Fmt: wire.FmtBinary,
		Name: []byte("move"), Args: argBytes,
	}); err != nil {
		t.Fatal(err)
	}
	if resp := rc.recv(); resp.Status != wire.StatusOK || resp.Fmt != wire.FmtBinary {
		t.Fatalf("binary run failed: %+v", resp)
	}

	// The span finishes on the batch writer after the response bytes are out,
	// so the client can observe the reply before the span closes.
	waitFor(t, "span to finish", func() bool { return anatomy.Finished() == 1 })
	tr.Flush()

	seen := map[trace.Kind]trace.Event{}
	var txnID uint64
	for _, ev := range sink.Events() {
		switch ev.Kind {
		case trace.KindRPCBegin, trace.KindRPCEnd, trace.KindTxnSpan:
			if ev.Trace != traceID {
				t.Errorf("%v event lost the wire trace ID: got %d, want %d", ev.Kind, ev.Trace, traceID)
			}
			seen[ev.Kind] = ev
		case trace.KindTxnBegin, trace.KindTxnCommit:
			if ev.Trace != traceID {
				t.Errorf("%v event lost the wire trace ID: got %d, want %d", ev.Kind, ev.Trace, traceID)
			}
			if ev.Txn == 0 {
				t.Errorf("%v event has no transaction ID", ev.Kind)
			}
			txnID = ev.Txn
			seen[ev.Kind] = ev
		case trace.KindStepEnd:
			if ev.Trace != traceID {
				t.Errorf("step.end lost the wire trace ID: got %d", ev.Trace)
			}
		}
	}
	for _, want := range []trace.Kind{
		trace.KindRPCBegin, trace.KindRPCEnd,
		trace.KindTxnBegin, trace.KindTxnCommit, trace.KindTxnSpan,
	} {
		if _, ok := seen[want]; !ok {
			t.Errorf("no %v event on the binary path", want)
		}
	}
	if sp, ok := seen[trace.KindTxnSpan]; ok {
		if sp.Txn != txnID {
			t.Errorf("txn.span txn ID %d != engine txn ID %d", sp.Txn, txnID)
		}
		if sp.Item != "move" || sp.Mode != "ok" {
			t.Errorf("txn.span identity: item=%q mode=%q", sp.Item, sp.Mode)
		}
		if !bytes.Contains([]byte(sp.Extra), []byte("exec=")) {
			t.Errorf("txn.span Extra missing stage pairs: %q", sp.Extra)
		}
	}

	recent := anatomy.Recent()
	if len(recent) != 1 {
		t.Fatalf("flight recorder holds %d records, want 1", len(recent))
	}
	rec := recent[0]
	if rec.Trace != traceID || rec.Type != "move" || rec.Status != "ok" {
		t.Fatalf("recorded span identity: %+v", rec)
	}
	if rec.Stages[trace.StageExec] <= 0 {
		t.Errorf("no exec stage recorded: %v", rec.Stages)
	}
	if rec.Stages[trace.StageFlush] <= 0 {
		t.Errorf("no flush stage recorded (batch-writer hook lost): %v", rec.Stages)
	}
}

// TestLoopbackAnatomyEndToEnd is the acceptance check for the latency-anatomy
// layer over a real loopback connection with the production client: every
// client-assigned trace ID must reappear in the server's flight recorder and
// in the slow-transaction JSONL dump, and each span's per-stage durations
// must sum to its end-to-end latency within 5%.
func TestLoopbackAnatomyEndToEnd(t *testing.T) {
	var slow syncBuf
	anatomy := trace.NewAnatomy(trace.AnatomyConfig{
		SlowThreshold: time.Nanosecond, // every transaction is "slow"
		SlowWriter:    &slow,
	})
	s := newMoveSys(t, func(c *Config) { c.Anatomy = anatomy })

	var traceIDs []uint64
	cli, err := accclient.Dial(s.ln.Addr().String(),
		accclient.WithPoolSize(2),
		accclient.WithTraceObserver(func(id uint64) { traceIDs = append(traceIDs, id) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	const runs = 20
	for i := 0; i < runs; i++ {
		args := &moveArgs{ID: int64(9000 + i), Account: int64(i%8 + 1)}
		if err := cli.Run(context.Background(), "move", args); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "all spans to finish", func() bool { return anatomy.Finished() == runs })

	if len(traceIDs) != runs {
		t.Fatalf("observer saw %d trace IDs, want %d", len(traceIDs), runs)
	}
	want := make(map[uint64]bool, runs)
	for _, id := range traceIDs {
		if id == 0 {
			t.Fatal("client assigned a zero trace ID")
		}
		if want[id] {
			t.Fatalf("client reused trace ID %d", id)
		}
		want[id] = true
	}

	recent := anatomy.Recent()
	if len(recent) != runs {
		t.Fatalf("flight recorder holds %d records, want %d", len(recent), runs)
	}
	for _, rec := range recent {
		if !want[rec.Trace] {
			t.Errorf("server span trace ID %d never assigned by the client", rec.Trace)
		}
		var sum int64
		for _, d := range rec.Stages {
			sum += d
		}
		diff := rec.Total - sum
		if diff < 0 {
			diff = -diff
		}
		if diff > rec.Total/20 {
			t.Errorf("trace %d: stage sum %d vs total %d: off by more than 5%%",
				rec.Trace, sum, rec.Total)
		}
	}

	lines := bytes.Split(bytes.TrimSpace(slow.Bytes()), []byte("\n"))
	if len(lines) != runs {
		t.Fatalf("slow log has %d lines, want %d", len(lines), runs)
	}
	for _, line := range lines {
		var rec struct {
			Trace  uint64           `json:"trace"`
			Total  int64            `json:"total"`
			Stages map[string]int64 `json:"stages"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("invalid slow-log JSONL %q: %v", line, err)
		}
		if !want[rec.Trace] {
			t.Errorf("slow-log trace ID %d never assigned by the client", rec.Trace)
		}
		var sum int64
		for _, d := range rec.Stages {
			sum += d
		}
		diff := rec.Total - sum
		if diff < 0 {
			diff = -diff
		}
		if diff > rec.Total/20 {
			t.Errorf("slow-log trace %d: stage sum %d vs total %d: off by more than 5%%",
				rec.Trace, sum, rec.Total)
		}
	}
}
