package server

// Server tests build an engine through the SPI registry.
import (
	_ "accdb/internal/backends"
)
