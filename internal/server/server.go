// Package server is accd's network front end: it exposes an engine's
// registered transaction types over a TCP wire protocol (internal/server/wire)
// with per-connection sessions, bounded admission, and graceful drain.
//
// Each connection is a session: a reader goroutine decodes frames, admitted
// requests execute concurrently (the protocol is pipelined — responses are
// correlated by request id, not order), and responses are written under a
// per-connection mutex. Every request runs under the connection's context:
// when the client disconnects mid-transaction the context is cancelled, the
// engine aborts any in-progress lock wait, and completed steps are
// compensated (§3.4) — a vanished client never strands exposure marks or
// reservations in the lock table.
//
// Admission is a fixed budget of in-flight requests. When the budget is
// exhausted new requests fail fast with StatusQueueFull instead of queueing
// unboundedly; the client decides whether to back off and retry. Shutdown
// drains: the listener closes, new requests get StatusDraining, in-flight
// requests run to completion (commit or compensation), the WAL is forced,
// and only then do the sessions close.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"accdb/internal/core"
	"accdb/internal/metrics"
	"accdb/internal/server/wire"
	"accdb/internal/trace"
)

// DefaultMaxInFlight bounds concurrently executing requests when Config
// leaves MaxInFlight zero.
const DefaultMaxInFlight = 128

// Runner is the execution surface the server drives. *core.Engine satisfies
// it directly (the single-engine deployment); *partition.Set satisfies it
// too, so a partitioned accd serves the identical wire protocol with routing
// and the multi-shot coordinator behind this seam.
type Runner interface {
	// TypeBytes resolves a transaction type by its wire-frame name without
	// allocating a string (the hot-path contract the session loop relies on).
	TypeBytes(name []byte) *core.TxnType
	// RunReadTypeContextSpan executes one transaction: tier 0 is the full
	// locked protocol, versioned tiers take the lock-free read path.
	RunReadTypeContextSpan(ctx context.Context, tt *core.TxnType, args any, tier core.ReadTier, sp *trace.Span) error
	// Close drains and forces durable state; Closed reports it happened.
	Close() error
	Closed() bool
}

// Config configures a Server.
type Config struct {
	// Engine executes the transactions. Required. A plain *core.Engine or a
	// *partition.Set (or anything else satisfying Runner).
	Engine Runner
	// NewArgs returns a fresh argument record to decode a request's JSON
	// into, or nil if the transaction type takes no arguments the server
	// knows how to decode. Required for any type clients may invoke —
	// transaction bodies type-assert their argument records, so decoding
	// into a generic map would panic them.
	NewArgs func(txnType string) any
	// MaxInFlight bounds concurrently executing requests across all
	// connections; beyond it requests fail fast with StatusQueueFull.
	// Zero means DefaultMaxInFlight.
	MaxInFlight int
	// Tracer, when non-nil, receives rpc.begin/rpc.end/rpc.reject events.
	Tracer *trace.Tracer
	// Anatomy, when non-nil, records a latency-anatomy span per admitted
	// request (DESIGN.md §13): queue, decode, engine stages, encode and
	// batch-flush, keyed by the client-assigned trace id. Nil disables the
	// whole layer at zero cost.
	Anatomy *trace.Anatomy
	// OnOutcome, when non-nil, observes every executed request after its
	// response is determined: the decoded (post-execution) argument record
	// and the engine's error. Serialized per request goroutine, so the
	// hook must be safe for concurrent calls. accd uses it to track
	// compensated order numbers for the TPC-C consistency check.
	OnOutcome func(txnType string, args any, err error)
}

// Stats is a snapshot of the server's admission and session counters.
type Stats struct {
	// Admitted counts requests that passed admission control.
	Admitted uint64
	// RejectedFull counts requests refused with StatusQueueFull.
	RejectedFull uint64
	// RejectedDraining counts requests refused with StatusDraining.
	RejectedDraining uint64
	// BadRequests counts undecodable or unknown-type requests.
	BadRequests uint64
	// InFlight is the number of requests executing right now.
	InFlight int64
	// Conns is the number of open sessions right now.
	Conns int64
	// Draining reports whether Shutdown has begun.
	Draining bool
}

// Server serves an engine's transaction types over the wire protocol.
type Server struct {
	cfg     Config
	eng     Runner
	sem     chan struct{}
	rec     *metrics.Recorder
	tracer  *trace.Tracer
	anatomy *trace.Anatomy

	admitted         atomic.Uint64
	rejectedFull     atomic.Uint64
	rejectedDraining atomic.Uint64
	badRequests      atomic.Uint64
	inFlightN        atomic.Int64
	connsN           atomic.Int64
	nextRPC          atomic.Uint64

	draining atomic.Bool
	inflight sync.WaitGroup // admitted requests, until their response is written
	sessions sync.WaitGroup // session goroutines

	mu    sync.Mutex
	ln    net.Listener
	conns map[*session]struct{}
}

// New creates a server for cfg. Serve or ListenAndServe starts it.
func New(cfg Config) *Server {
	if cfg.Engine == nil {
		panic("server: Config.Engine is required")
	}
	max := cfg.MaxInFlight
	if max <= 0 {
		max = DefaultMaxInFlight
	}
	return &Server{
		cfg:     cfg,
		eng:     cfg.Engine,
		sem:     make(chan struct{}, max),
		rec:     metrics.NewRecorder(),
		tracer:  cfg.Tracer,
		anatomy: cfg.Anatomy,
		conns:   make(map[*session]struct{}),
	}
}

// Metrics returns the per-transaction-type RPC latency recorder.
func (s *Server) Metrics() *metrics.Recorder { return s.rec }

// Stats snapshots the admission counters.
func (s *Server) Stats() Stats {
	return Stats{
		Admitted:         s.admitted.Load(),
		RejectedFull:     s.rejectedFull.Load(),
		RejectedDraining: s.rejectedDraining.Load(),
		BadRequests:      s.badRequests.Load(),
		InFlight:         s.inFlightN.Load(),
		Conns:            s.connsN.Load(),
		Draining:         s.draining.Load(),
	}
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts sessions on ln until Shutdown closes it. It returns nil
// after a clean drain-initiated close and the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		sess := s.newSession(c)
		s.sessions.Add(1)
		go sess.loop()
	}
}

// Addr returns the listener address (for tests binding port 0), or nil
// before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown drains the server: stop accepting, refuse new requests with
// StatusDraining, let in-flight requests finish (commit or compensate),
// force the WAL by closing the engine, then close the sessions. If ctx
// expires first the remaining sessions are torn down immediately — their
// contexts cancel and in-progress transactions compensate — and ctx's error
// is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}

	drained := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
		s.eng.Close() // forces the write-ahead log
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.closeSessions()
	s.sessions.Wait()
	if err == nil && !s.eng.Closed() {
		s.eng.Close()
	}
	return err
}

func (s *Server) closeSessions() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for sess := range s.conns {
		sess.close()
	}
}

func (s *Server) emitRPC(kind trace.Kind, id, tr uint64, name string, dur int64, extra string) {
	if s.tracer == nil {
		return
	}
	ev := trace.Ev(kind, id)
	ev.TS = s.tracer.Now()
	ev.Trace = tr
	ev.Item = name
	ev.Dur = dur
	ev.Extra = extra
	s.tracer.Emit(ev)
}

// drainFlushTimeout bounds how long a closing session waits for its final
// response frames to reach a slow peer before the socket is torn down.
const drainFlushTimeout = 2 * time.Second

// session is one client connection.
type session struct {
	srv  *Server
	conn net.Conn
	bw   *wire.BatchWriter

	ctx    context.Context
	cancel context.CancelFunc

	reqs sync.WaitGroup // requests spawned by this session

	closeOnce sync.Once
}

// reqState carries one request through the session: the frame buffer it was
// read into (Name and Args alias it) plus the decoded header. Pooled, so a
// pipelined session allocates nothing per request.
type reqState struct {
	req wire.Request
	buf []byte
	// readAt is when the request's frame finished reading, stamped only
	// when anatomy is enabled: it anchors the span's queue stage.
	readAt time.Time
}

var reqPool = sync.Pool{New: func() any { return new(reqState) }}

// Static reject messages, so admission refusals — which are the steady
// state at saturation — do not allocate.
var (
	msgDraining  = []byte("server draining")
	msgQueueFull = []byte("admission queue full")
)

func (s *Server) newSession(c net.Conn) *session {
	ctx, cancel := context.WithCancel(context.Background())
	sess := &session{srv: s, conn: c, bw: wire.NewBatchWriter(c), ctx: ctx, cancel: cancel}
	s.mu.Lock()
	s.conns[sess] = struct{}{}
	s.mu.Unlock()
	s.connsN.Add(1)
	return sess
}

// close tears the session down: already-enqueued responses are flushed (a
// clean drain must deliver every final response; the write deadline bounds
// a peer that stopped reading), the connection close unblocks the reader,
// and the context aborts any lock wait a request of this session is parked
// in.
func (sess *session) close() {
	sess.closeOnce.Do(func() {
		sess.cancel()
		sess.conn.SetWriteDeadline(time.Now().Add(drainFlushTimeout))
		sess.bw.Close()
		sess.conn.Close()
	})
}

// loop is the session's reader: it decodes frames and dispatches requests
// until the connection closes, then waits for this session's in-flight
// requests (cancelled by close, or finishing normally) before returning.
func (sess *session) loop() {
	s := sess.srv
	defer s.sessions.Done()
	defer func() {
		sess.close()
		sess.reqs.Wait()
		s.mu.Lock()
		delete(s.conns, sess)
		s.mu.Unlock()
		s.connsN.Add(-1)
	}()
	for {
		st := reqPool.Get().(*reqState)
		payload, err := wire.ReadFrame(sess.conn, &st.buf)
		if err == nil {
			err = wire.DecodeRequest(payload, &st.req)
		}
		if err != nil {
			reqPool.Put(st)
			return // disconnect or protocol corruption: drop the session
		}
		if s.anatomy != nil {
			st.readAt = time.Now()
		}
		switch st.req.Op {
		case wire.OpPing:
			sess.respond(&wire.Response{ID: st.req.ID, Status: wire.StatusOK})
			reqPool.Put(st)
		case wire.OpRun:
			sess.dispatch(st) // dispatch owns st from here
		default:
			s.badRequests.Add(1)
			sess.respond(&wire.Response{
				ID: st.req.ID, Status: wire.StatusBadRequest,
				Msg: fmt.Appendf(nil, "unknown op %d", st.req.Op),
			})
			reqPool.Put(st)
		}
	}
}

// dispatch applies admission control and, if admitted, runs the request in
// its own goroutine so the session can keep reading pipelined requests.
func (sess *session) dispatch(st *reqState) {
	s := sess.srv
	rpcID := s.nextRPC.Add(1)
	if s.draining.Load() {
		s.rejectedDraining.Add(1)
		if s.tracer != nil {
			s.emitRPC(trace.KindRPCReject, rpcID, st.req.Trace, string(st.req.Name), 0, "draining")
		}
		sess.respond(&wire.Response{ID: st.req.ID, Status: wire.StatusDraining, Msg: msgDraining})
		reqPool.Put(st)
		return
	}
	select {
	case s.sem <- struct{}{}:
	default:
		s.rejectedFull.Add(1)
		if s.tracer != nil {
			s.emitRPC(trace.KindRPCReject, rpcID, st.req.Trace, string(st.req.Name), 0, "queue-full")
		}
		sess.respond(&wire.Response{ID: st.req.ID, Status: wire.StatusQueueFull, Msg: msgQueueFull})
		reqPool.Put(st)
		return
	}
	s.admitted.Add(1)
	s.inFlightN.Add(1)
	s.inflight.Add(1)
	sess.reqs.Add(1)
	go sess.run(rpcID, st)
}

// run executes one admitted request and enqueues its response. The request
// stays in the format it arrived in: binary args answer with a binary
// result, JSON with JSON.
func (sess *session) run(rpcID uint64, st *reqState) {
	s := sess.srv
	// The span's queue stage covers admission and goroutine hand-off: frame
	// read completion (readAt) to here. The span outlives this function —
	// the batch writer finishes it when the response frame hits the socket —
	// so everything it needs is copied in before respond hands it off.
	sp := s.anatomy.Start(st.req.Trace, st.readAt)
	sp.Next(trace.StageQueue)
	defer func() {
		reqPool.Put(st)
		<-s.sem
		s.inFlightN.Add(-1)
		s.inflight.Done()
		sess.reqs.Done()
	}()
	// tt.Name is the engine's interned copy of the type name: everything
	// downstream (metrics, traces, hooks) uses it so the request's
	// byte-slice name never becomes a per-request string allocation.
	tt := s.eng.TypeBytes(st.req.Name)
	var traceName string
	if s.tracer != nil {
		if tt != nil {
			traceName = tt.Name
		} else {
			traceName = string(st.req.Name)
		}
		s.emitRPC(trace.KindRPCBegin, rpcID, st.req.Trace, traceName, 0, sess.conn.RemoteAddr().String())
	}
	start := time.Now()

	var resp wire.Response
	resp.ID = st.req.ID
	var codec *wire.ArgCodec
	var args any
	switch {
	case tt == nil:
		s.badRequests.Add(1)
		resp.Status = wire.StatusUnknownType
		resp.Msg = fmt.Appendf(nil, "unknown transaction type %q", st.req.Name)
	case !core.ValidTier(st.req.Tier):
		s.badRequests.Add(1)
		resp.Status = wire.StatusBadRequest
		resp.Msg = fmt.Appendf(nil, "unknown read tier %d", st.req.Tier)
	case st.req.Fmt == wire.FmtBinary:
		if codec = wire.CodecForBytes(st.req.Name); codec == nil {
			s.badRequests.Add(1)
			resp.Status = wire.StatusBadRequest
			resp.Msg = fmt.Appendf(nil, "no binary codec registered for %q", tt.Name)
		} else {
			args = codec.GetArgs()
			if err := codec.Decode(st.req.Args, args); err != nil {
				codec.PutArgs(args)
				args = nil
				s.badRequests.Add(1)
				resp.Status = wire.StatusBadRequest
				resp.Msg = fmt.Appendf(nil, "malformed binary arguments for %q: %v", tt.Name, err)
			}
		}
	default:
		if args = sess.newArgs(tt.Name); args == nil {
			s.badRequests.Add(1)
			resp.Status = wire.StatusUnknownType
			resp.Msg = fmt.Appendf(nil, "no argument prototype for %q", tt.Name)
		} else if len(st.req.Args) > 0 && json.Unmarshal(st.req.Args, args) != nil {
			args = nil
			s.badRequests.Add(1)
			resp.Status = wire.StatusBadRequest
			resp.Msg = fmt.Appendf(nil, "malformed arguments for %q", tt.Name)
		}
	}

	sp.Next(trace.StageDecode)
	var scratch *[]byte
	if args != nil {
		sp.EnterEngine()
		// Tier 0 is the full locked protocol; the versioned tiers take the
		// lock-free read path (RunReadTypeContextSpan refuses writes).
		err := s.eng.RunReadTypeContextSpan(sess.ctx, tt, args, core.ReadTier(st.req.Tier), sp)
		sp.ExitEngine()
		var msg string
		resp.Status, msg = statusOf(err)
		if msg != "" {
			resp.Msg = []byte(msg)
		}
		// The argument record is the transaction's work area: re-encode it
		// so the client observes assigned identifiers — also after a
		// compensated rollback, whose consumed identifiers the client's
		// bookkeeping may need (TPC-C order-number holes).
		if codec != nil {
			scratch = wire.GetBuffer()
			*scratch = codec.Encode((*scratch)[:0], args)
			resp.Fmt = wire.FmtBinary
			resp.Result = *scratch
		} else if out, merr := json.Marshal(args); merr == nil {
			resp.Result = out
		} else {
			// The transaction already ran; a work area the client cannot
			// observe must be an explicit failure, not a silent nil result.
			resp.Status = wire.StatusInternal
			resp.Msg = fmt.Appendf(nil, "result re-encode failed: %v", merr)
			if s.tracer != nil {
				s.emitRPC(trace.KindRPCError, rpcID, st.req.Trace, traceName, 0, "result-marshal: "+merr.Error())
			}
		}
		s.rec.Record(tt.Name, time.Since(start), outcomeOf(err))
		if s.cfg.OnOutcome != nil {
			s.cfg.OnOutcome(tt.Name, args, err)
		}
	}
	if s.tracer != nil {
		s.emitRPC(trace.KindRPCEnd, rpcID, st.req.Trace, traceName, int64(time.Since(start)), resp.Status.String())
	}
	sp.SetStatus(resp.Status.String())
	sess.respondSpan(&resp, sp)
	if codec != nil && args != nil {
		codec.PutArgs(args)
	}
	if scratch != nil {
		wire.PutBuffer(scratch)
	}
}

func (sess *session) newArgs(name string) any {
	if sess.srv.cfg.NewArgs == nil {
		return nil
	}
	return sess.srv.cfg.NewArgs(name)
}

// respond encodes one response into a pooled frame and hands it to the
// session's batch writer, which coalesces concurrent responses into
// vectored writes. Write errors are ignored: the reader loop notices the
// dead connection and tears the session down.
func (sess *session) respond(resp *wire.Response) {
	sess.respondSpan(resp, nil)
}

// respondSpan is respond carrying the request's latency-anatomy span: the
// encode stage closes once the frame is built, and the span rides the frame
// as a completion hook so the flush stage ends when the bytes reach the
// socket. The batch writer finishes the span exactly once on every path.
func (sess *session) respondSpan(resp *wire.Response, sp *trace.Span) {
	buf := wire.GetBuffer()
	b, err := wire.AppendResponse((*buf)[:0], resp)
	if err != nil {
		// The result outgrew the frame limit: report that instead of
		// silently dropping the response.
		resp.Fmt = wire.FmtJSON
		resp.Result = nil
		resp.Status = wire.StatusInternal
		resp.Msg = []byte("response exceeds frame limit")
		if b, err = wire.AppendResponse((*buf)[:0], resp); err != nil {
			wire.PutBuffer(buf)
			sp.Finish()
			return
		}
	}
	*buf = b
	sp.Next(trace.StageEncode)
	if sp != nil {
		_ = sess.bw.EnqueueHook(buf, sp)
		return
	}
	_ = sess.bw.Enqueue(buf)
}

// statusOf maps the engine's error taxonomy onto wire status codes.
// Compensated rollbacks are classified first: a CompensatedError matches
// ErrAborted (and may wrap a deadlock or cancellation cause), but the wire
// must report that compensation ran — the client's bookkeeping depends on
// the distinction.
func statusOf(err error) (wire.Status, string) {
	switch {
	case err == nil:
		return wire.StatusOK, ""
	case core.IsCompensated(err):
		return wire.StatusCompensated, err.Error()
	case errors.Is(err, core.ErrUnknownTxnType):
		return wire.StatusUnknownType, err.Error()
	case errors.Is(err, core.ErrEngineClosed):
		return wire.StatusDraining, err.Error()
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return wire.StatusCanceled, err.Error()
	case errors.Is(err, core.ErrDeadlockVictim):
		return wire.StatusDeadlock, err.Error()
	case errors.Is(err, core.ErrLockTimeout):
		return wire.StatusLockTimeout, err.Error()
	case errors.Is(err, core.ErrReadOnly):
		return wire.StatusBadRequest, err.Error()
	case errors.Is(err, core.ErrAborted):
		return wire.StatusAborted, err.Error()
	default:
		return wire.StatusInternal, err.Error()
	}
}

// outcomeOf maps the engine's error taxonomy onto metrics outcomes, the
// same classification the in-process benchmark driver uses.
func outcomeOf(err error) metrics.Outcome {
	switch {
	case err == nil:
		return metrics.Committed
	case core.IsCompensated(err), errors.Is(err, core.ErrUserAbort):
		return metrics.RolledBack
	case errors.Is(err, core.ErrDeadlockVictim):
		return metrics.Deadlocked
	case errors.Is(err, core.ErrLockTimeout):
		return metrics.TimedOut
	default:
		return metrics.Failed
	}
}
