// Package server is accd's network front end: it exposes an engine's
// registered transaction types over a TCP wire protocol (internal/server/wire)
// with per-connection sessions, bounded admission, and graceful drain.
//
// Each connection is a session: a reader goroutine decodes frames, admitted
// requests execute concurrently (the protocol is pipelined — responses are
// correlated by request id, not order), and responses are written under a
// per-connection mutex. Every request runs under the connection's context:
// when the client disconnects mid-transaction the context is cancelled, the
// engine aborts any in-progress lock wait, and completed steps are
// compensated (§3.4) — a vanished client never strands exposure marks or
// reservations in the lock table.
//
// Admission is a fixed budget of in-flight requests. When the budget is
// exhausted new requests fail fast with StatusQueueFull instead of queueing
// unboundedly; the client decides whether to back off and retry. Shutdown
// drains: the listener closes, new requests get StatusDraining, in-flight
// requests run to completion (commit or compensation), the WAL is forced,
// and only then do the sessions close.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"accdb/internal/core"
	"accdb/internal/metrics"
	"accdb/internal/server/wire"
	"accdb/internal/trace"
)

// DefaultMaxInFlight bounds concurrently executing requests when Config
// leaves MaxInFlight zero.
const DefaultMaxInFlight = 128

// Config configures a Server.
type Config struct {
	// Engine executes the transactions. Required.
	Engine *core.Engine
	// NewArgs returns a fresh argument record to decode a request's JSON
	// into, or nil if the transaction type takes no arguments the server
	// knows how to decode. Required for any type clients may invoke —
	// transaction bodies type-assert their argument records, so decoding
	// into a generic map would panic them.
	NewArgs func(txnType string) any
	// MaxInFlight bounds concurrently executing requests across all
	// connections; beyond it requests fail fast with StatusQueueFull.
	// Zero means DefaultMaxInFlight.
	MaxInFlight int
	// Tracer, when non-nil, receives rpc.begin/rpc.end/rpc.reject events.
	Tracer *trace.Tracer
	// OnOutcome, when non-nil, observes every executed request after its
	// response is determined: the decoded (post-execution) argument record
	// and the engine's error. Serialized per request goroutine, so the
	// hook must be safe for concurrent calls. accd uses it to track
	// compensated order numbers for the TPC-C consistency check.
	OnOutcome func(txnType string, args any, err error)
}

// Stats is a snapshot of the server's admission and session counters.
type Stats struct {
	// Admitted counts requests that passed admission control.
	Admitted uint64
	// RejectedFull counts requests refused with StatusQueueFull.
	RejectedFull uint64
	// RejectedDraining counts requests refused with StatusDraining.
	RejectedDraining uint64
	// BadRequests counts undecodable or unknown-type requests.
	BadRequests uint64
	// InFlight is the number of requests executing right now.
	InFlight int64
	// Conns is the number of open sessions right now.
	Conns int64
	// Draining reports whether Shutdown has begun.
	Draining bool
}

// Server serves an engine's transaction types over the wire protocol.
type Server struct {
	cfg    Config
	eng    *core.Engine
	sem    chan struct{}
	rec    *metrics.Recorder
	tracer *trace.Tracer

	admitted         atomic.Uint64
	rejectedFull     atomic.Uint64
	rejectedDraining atomic.Uint64
	badRequests      atomic.Uint64
	inFlightN        atomic.Int64
	connsN           atomic.Int64
	nextRPC          atomic.Uint64

	draining atomic.Bool
	inflight sync.WaitGroup // admitted requests, until their response is written
	sessions sync.WaitGroup // session goroutines

	mu    sync.Mutex
	ln    net.Listener
	conns map[*session]struct{}
}

// New creates a server for cfg. Serve or ListenAndServe starts it.
func New(cfg Config) *Server {
	if cfg.Engine == nil {
		panic("server: Config.Engine is required")
	}
	max := cfg.MaxInFlight
	if max <= 0 {
		max = DefaultMaxInFlight
	}
	return &Server{
		cfg:    cfg,
		eng:    cfg.Engine,
		sem:    make(chan struct{}, max),
		rec:    metrics.NewRecorder(),
		tracer: cfg.Tracer,
		conns:  make(map[*session]struct{}),
	}
}

// Metrics returns the per-transaction-type RPC latency recorder.
func (s *Server) Metrics() *metrics.Recorder { return s.rec }

// Stats snapshots the admission counters.
func (s *Server) Stats() Stats {
	return Stats{
		Admitted:         s.admitted.Load(),
		RejectedFull:     s.rejectedFull.Load(),
		RejectedDraining: s.rejectedDraining.Load(),
		BadRequests:      s.badRequests.Load(),
		InFlight:         s.inFlightN.Load(),
		Conns:            s.connsN.Load(),
		Draining:         s.draining.Load(),
	}
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts sessions on ln until Shutdown closes it. It returns nil
// after a clean drain-initiated close and the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		sess := s.newSession(c)
		s.sessions.Add(1)
		go sess.loop()
	}
}

// Addr returns the listener address (for tests binding port 0), or nil
// before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown drains the server: stop accepting, refuse new requests with
// StatusDraining, let in-flight requests finish (commit or compensate),
// force the WAL by closing the engine, then close the sessions. If ctx
// expires first the remaining sessions are torn down immediately — their
// contexts cancel and in-progress transactions compensate — and ctx's error
// is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}

	drained := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
		s.eng.Close() // forces the write-ahead log
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.closeSessions()
	s.sessions.Wait()
	if err == nil && !s.eng.Closed() {
		s.eng.Close()
	}
	return err
}

func (s *Server) closeSessions() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for sess := range s.conns {
		sess.close()
	}
}

func (s *Server) emitRPC(kind trace.Kind, id uint64, name string, dur int64, extra string) {
	if s.tracer == nil {
		return
	}
	ev := trace.Ev(kind, id)
	ev.TS = s.tracer.Now()
	ev.Item = name
	ev.Dur = dur
	ev.Extra = extra
	s.tracer.Emit(ev)
}

// session is one client connection.
type session struct {
	srv  *Server
	conn net.Conn

	ctx    context.Context
	cancel context.CancelFunc

	wmu sync.Mutex // serializes response frames

	reqs sync.WaitGroup // requests spawned by this session

	closeOnce sync.Once
}

func (s *Server) newSession(c net.Conn) *session {
	ctx, cancel := context.WithCancel(context.Background())
	sess := &session{srv: s, conn: c, ctx: ctx, cancel: cancel}
	s.mu.Lock()
	s.conns[sess] = struct{}{}
	s.mu.Unlock()
	s.connsN.Add(1)
	return sess
}

// close tears the session down: the connection unblocks the reader, and the
// context aborts any lock wait a request of this session is parked in.
func (sess *session) close() {
	sess.closeOnce.Do(func() {
		sess.cancel()
		sess.conn.Close()
	})
}

// loop is the session's reader: it decodes frames and dispatches requests
// until the connection closes, then waits for this session's in-flight
// requests (cancelled by close, or finishing normally) before returning.
func (sess *session) loop() {
	s := sess.srv
	defer s.sessions.Done()
	defer func() {
		sess.close()
		sess.reqs.Wait()
		s.mu.Lock()
		delete(s.conns, sess)
		s.mu.Unlock()
		s.connsN.Add(-1)
	}()
	for {
		req, err := wire.ReadRequest(sess.conn)
		if err != nil {
			return // disconnect or protocol corruption: drop the session
		}
		switch req.Op {
		case wire.OpPing:
			sess.respond(&wire.Response{ID: req.ID, Status: wire.StatusOK})
		case wire.OpRun:
			sess.dispatch(req)
		default:
			s.badRequests.Add(1)
			sess.respond(&wire.Response{
				ID: req.ID, Status: wire.StatusBadRequest,
				Msg: fmt.Sprintf("unknown op %d", req.Op),
			})
		}
	}
}

// dispatch applies admission control and, if admitted, runs the request in
// its own goroutine so the session can keep reading pipelined requests.
func (sess *session) dispatch(req *wire.Request) {
	s := sess.srv
	rpcID := s.nextRPC.Add(1)
	if s.draining.Load() {
		s.rejectedDraining.Add(1)
		s.emitRPC(trace.KindRPCReject, rpcID, req.Name, 0, "draining")
		sess.respond(&wire.Response{ID: req.ID, Status: wire.StatusDraining, Msg: "server draining"})
		return
	}
	select {
	case s.sem <- struct{}{}:
	default:
		s.rejectedFull.Add(1)
		s.emitRPC(trace.KindRPCReject, rpcID, req.Name, 0, "queue-full")
		sess.respond(&wire.Response{ID: req.ID, Status: wire.StatusQueueFull, Msg: "admission queue full"})
		return
	}
	s.admitted.Add(1)
	s.inFlightN.Add(1)
	s.inflight.Add(1)
	sess.reqs.Add(1)
	go sess.run(rpcID, req)
}

// run executes one admitted request and writes its response.
func (sess *session) run(rpcID uint64, req *wire.Request) {
	s := sess.srv
	defer func() {
		<-s.sem
		s.inFlightN.Add(-1)
		s.inflight.Done()
		sess.reqs.Done()
	}()
	s.emitRPC(trace.KindRPCBegin, rpcID, req.Name, 0, sess.conn.RemoteAddr().String())
	start := time.Now()

	resp := &wire.Response{ID: req.ID}
	var args any
	if s.eng.Type(req.Name) == nil {
		s.badRequests.Add(1)
		resp.Status = wire.StatusUnknownType
		resp.Msg = fmt.Sprintf("unknown transaction type %q", req.Name)
	} else if args = sess.newArgs(req.Name); args == nil {
		s.badRequests.Add(1)
		resp.Status = wire.StatusUnknownType
		resp.Msg = fmt.Sprintf("no argument prototype for %q", req.Name)
	} else if len(req.Args) > 0 && json.Unmarshal(req.Args, args) != nil {
		s.badRequests.Add(1)
		resp.Status = wire.StatusBadRequest
		resp.Msg = fmt.Sprintf("malformed arguments for %q", req.Name)
	} else {
		err := s.eng.RunContext(sess.ctx, req.Name, args)
		resp.Status, resp.Msg = statusOf(err)
		// The argument record is the transaction's work area: re-encode it
		// so the client observes assigned identifiers — also after a
		// compensated rollback, whose consumed identifiers the client's
		// bookkeeping may need (TPC-C order-number holes).
		if out, merr := json.Marshal(args); merr == nil {
			resp.Result = out
		}
		dur := time.Since(start)
		s.rec.Record(req.Name, dur, outcomeOf(err))
		if s.cfg.OnOutcome != nil {
			s.cfg.OnOutcome(req.Name, args, err)
		}
	}
	s.emitRPC(trace.KindRPCEnd, rpcID, req.Name, int64(time.Since(start)), resp.Status.String())
	sess.respond(resp)
}

func (sess *session) newArgs(name string) any {
	if sess.srv.cfg.NewArgs == nil {
		return nil
	}
	return sess.srv.cfg.NewArgs(name)
}

// respond writes one response frame. Write errors are ignored: the reader
// loop notices the dead connection and tears the session down.
func (sess *session) respond(resp *wire.Response) {
	sess.wmu.Lock()
	defer sess.wmu.Unlock()
	_ = wire.WriteResponse(sess.conn, resp)
}

// statusOf maps the engine's error taxonomy onto wire status codes.
// Compensated rollbacks are classified first: a CompensatedError matches
// ErrAborted (and may wrap a deadlock or cancellation cause), but the wire
// must report that compensation ran — the client's bookkeeping depends on
// the distinction.
func statusOf(err error) (wire.Status, string) {
	switch {
	case err == nil:
		return wire.StatusOK, ""
	case core.IsCompensated(err):
		return wire.StatusCompensated, err.Error()
	case errors.Is(err, core.ErrUnknownTxnType):
		return wire.StatusUnknownType, err.Error()
	case errors.Is(err, core.ErrEngineClosed):
		return wire.StatusDraining, err.Error()
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return wire.StatusCanceled, err.Error()
	case errors.Is(err, core.ErrDeadlockVictim):
		return wire.StatusDeadlock, err.Error()
	case errors.Is(err, core.ErrLockTimeout):
		return wire.StatusLockTimeout, err.Error()
	case errors.Is(err, core.ErrAborted):
		return wire.StatusAborted, err.Error()
	default:
		return wire.StatusInternal, err.Error()
	}
}

// outcomeOf maps the engine's error taxonomy onto metrics outcomes, the
// same classification the in-process benchmark driver uses.
func outcomeOf(err error) metrics.Outcome {
	switch {
	case err == nil:
		return metrics.Committed
	case core.IsCompensated(err), errors.Is(err, core.ErrUserAbort):
		return metrics.RolledBack
	case errors.Is(err, core.ErrDeadlockVictim):
		return metrics.Deadlocked
	case errors.Is(err, core.ErrLockTimeout):
		return metrics.TimedOut
	default:
		return metrics.Failed
	}
}
