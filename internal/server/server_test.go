package server

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"accdb/internal/core"
	"math/rand"

	"accdb/internal/interference"
	"accdb/internal/server/wire"
	"accdb/internal/spi"
	"accdb/internal/tpcc"
	"accdb/internal/trace"
	"accdb/internal/wal"
	"accdb/pkg/accclient"
)

// moveArgs is the argument record of the test transaction; exported fields
// make it wire-encodable.
type moveArgs struct {
	ID      int64
	Account int64
}

// moveSys is a two-step "move" system behind a server: step 1 journals,
// step 2 bumps an account balance; compensation removes the journal entry.
type moveSys struct {
	eng *core.Engine
	db  *core.DB
	srv *Server
	ln  net.Listener

	serveDone chan error
}

func newMoveSys(t *testing.T, cfg func(*Config), engOpts ...core.Option) *moveSys {
	t.Helper()
	db := core.NewDB()
	accounts := db.MustCreateTable(spi.MustSchema("accounts", []spi.Column{
		{Name: "id", Kind: spi.KindInt},
		{Name: "balance", Kind: spi.KindInt},
	}, "id"))
	db.MustCreateTable(spi.MustSchema("journal", []spi.Column{
		{Name: "id", Kind: spi.KindInt},
		{Name: "account", Kind: spi.KindInt},
	}, "id"))
	// Enough account rows that concurrency tests can give every worker a
	// disjoint row (shared rows would serialize on the account lock).
	for i := 1; i <= 64; i++ {
		if err := accounts.Insert(spi.Row{spi.Int(i), spi.I64(100)}); err != nil {
			t.Fatal(err)
		}
	}

	b := interference.NewBuilder()
	txnMove := b.TxnType("move", 2)
	txnLegacy := b.TxnType("move_legacy", 2)
	stJournal := b.StepType("journal")
	stUpdate := b.StepType("update")
	stComp := b.StepType("comp")

	opts := append([]core.Option{
		core.WithMode(core.ModeACC),
		core.WithWaitTimeout(10 * time.Second),
	}, engOpts...)
	eng := core.New(db, b.Build(), opts...)
	mkMove := func(name string, id interference.TxnTypeID) *core.TxnType {
		return &core.TxnType{
			Name: name,
			ID:   id,
			Steps: []core.Step{
				{
					Name: "journal", Type: stJournal,
					Body: func(tc *core.Ctx) error {
						a := tc.Args().(*moveArgs)
						return tc.Insert("journal", spi.Row{
							spi.I64(a.ID), spi.I64(a.Account),
						})
					},
				},
				{
					Name: "update", Type: stUpdate,
					Body: func(tc *core.Ctx) error {
						a := tc.Args().(*moveArgs)
						return tc.Update("accounts", []spi.Value{spi.I64(a.Account)},
							func(row spi.Row) error {
								row[1] = spi.I64(row[1].Int64() + 1)
								return nil
							})
					},
				},
			},
			Comp: &core.Compensation{
				Type: stComp,
				Body: func(tc *core.Ctx, completed int) error {
					a := tc.Args().(*moveArgs)
					if completed >= 1 {
						return tc.Delete("journal", spi.I64(a.ID))
					}
					return nil
				},
			},
		}
	}
	eng.MustRegister(mkMove("move", txnMove))
	// move_legacy is the same transaction registered without a binary
	// codec: binary-format requests for it exercise the codec-missing
	// rejection that drives the client's JSON fallback.
	eng.MustRegister(mkMove("move_legacy", txnLegacy))

	c := Config{
		Engine:  eng,
		NewArgs: func(string) any { return &moveArgs{} },
	}
	if cfg != nil {
		cfg(&c)
	}
	srv := New(c)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &moveSys{eng: eng, db: db, srv: srv, ln: ln, serveDone: make(chan error, 1)}
	go func() { s.serveDone <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return s
}

// rawConn is a minimal synchronous client for tests that need precise
// control over the connection (abrupt closes, pipelining).
type rawConn struct {
	t *testing.T
	c net.Conn
}

func dialRaw(t *testing.T, addr net.Addr) *rawConn {
	t.Helper()
	c, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	return &rawConn{t: t, c: c}
}

func (rc *rawConn) send(id uint64, name string, args any) {
	rc.t.Helper()
	payload, err := json.Marshal(args)
	if err != nil {
		rc.t.Fatal(err)
	}
	if err := wire.WriteRequest(rc.c, &wire.Request{ID: id, Op: wire.OpRun, Name: []byte(name), Args: payload}); err != nil {
		rc.t.Fatal(err)
	}
}

func (rc *rawConn) recv() *wire.Response {
	rc.t.Helper()
	resp, err := wire.ReadResponse(rc.c)
	if err != nil {
		rc.t.Fatal(err)
	}
	return resp
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRunOverWire covers the basic request/response cycle including the
// work-area echo, and the error statuses for unknown types and bad JSON.
func TestRunOverWire(t *testing.T) {
	s := newMoveSys(t, nil)
	rc := dialRaw(t, s.ln.Addr())
	defer rc.c.Close()

	rc.send(1, "move", &moveArgs{ID: 10, Account: 2})
	resp := rc.recv()
	if resp.ID != 1 || resp.Status != wire.StatusOK {
		t.Fatalf("unexpected response: %+v", resp)
	}
	var out moveArgs
	if err := json.Unmarshal(resp.Result, &out); err != nil {
		t.Fatal(err)
	}
	if out.ID != 10 || out.Account != 2 {
		t.Fatalf("work area mangled: %+v", out)
	}

	rc.send(2, "no-such", &moveArgs{})
	if resp := rc.recv(); resp.Status != wire.StatusUnknownType {
		t.Fatalf("want unknown-type, got %+v", resp)
	}

	if err := wire.WriteRequest(rc.c, &wire.Request{ID: 3, Op: wire.OpRun, Name: []byte("move"), Args: []byte("{oops")}); err != nil {
		t.Fatal(err)
	}
	if resp := rc.recv(); resp.Status != wire.StatusBadRequest {
		t.Fatalf("want bad-request, got %+v", resp)
	}

	if err := wire.WriteRequest(rc.c, &wire.Request{ID: 4, Op: wire.OpPing}); err != nil {
		t.Fatal(err)
	}
	if resp := rc.recv(); resp.ID != 4 || resp.Status != wire.StatusOK {
		t.Fatalf("ping failed: %+v", resp)
	}
}

// TestDisconnectCompensates is the tentpole integrity property: a client
// that vanishes mid-transaction — blocked in a lock wait with one step
// already durable — must have its wait aborted, its completed prefix
// compensated, and every lock (conventional and the paper's A/D/C marks)
// released.
func TestDisconnectCompensates(t *testing.T) {
	s := newMoveSys(t, nil)

	// An in-process blocker camps on account 1's X spi.
	held := make(chan struct{})
	release := make(chan struct{})
	blockerDone := make(chan error, 1)
	go func() {
		blockerDone <- s.eng.RunLegacy("blocker", func(tc *core.Ctx) error {
			err := tc.Update("accounts", []spi.Value{spi.I64(1)},
				func(spi.Row) error { return nil })
			if err != nil {
				return err
			}
			close(held)
			<-release
			return nil
		})
	}()
	<-held

	// The remote move completes step 1 (journal insert, exposure +
	// reservation marks attached) and parks in step 2's lock wait.
	rc := dialRaw(t, s.ln.Addr())
	rc.send(1, "move", &moveArgs{ID: 77, Account: 1})
	waitFor(t, "the move to block in the lock wait", func() bool {
		return len(s.eng.Locks().Snapshot().Edges) > 0
	})

	// Client vanishes. The session context cancels, the wait aborts, and
	// compensation (running under a background context) undoes step 1.
	rc.c.Close()
	waitFor(t, "compensation after disconnect", func() bool {
		return s.eng.Snapshot().Compensations == 1
	})

	close(release)
	if err := <-blockerDone; err != nil {
		t.Fatalf("blocker: %v", err)
	}

	// Every lock is gone: conventional grants, assertional locks, exposure
	// marks, and compensation reservations.
	waitFor(t, "an empty lock table", func() bool {
		snap := s.eng.Locks().Snapshot()
		for _, sh := range snap.Shards {
			for _, item := range sh.Items {
				if len(item.Grants) > 0 || len(item.Queue) > 0 {
					return false
				}
			}
		}
		return true
	})
	waitFor(t, "the session to be reaped", func() bool {
		return s.srv.Stats().Conns == 0
	})

	// The journal entry is compensated away; the account row is untouched
	// and immediately lockable.
	if err := s.eng.Run("move", &moveArgs{ID: 78, Account: 1}); err != nil {
		t.Fatalf("post-disconnect move: %v", err)
	}
	count := 0
	err := s.eng.RunLegacy("count", func(tc *core.Ctx) error {
		count = 0
		return tc.Scan("journal", func(spi.Row) error {
			count++
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("journal rows = %d, want 1 (the disconnected move's entry compensated away)", count)
	}
}

// TestAdmissionControl verifies the bounded in-flight budget: with
// MaxInFlight=1 and the single slot parked in a lock wait, a second request
// fails fast with queue-full rather than queueing.
func TestAdmissionControl(t *testing.T) {
	s := newMoveSys(t, func(c *Config) { c.MaxInFlight = 1 })

	held := make(chan struct{})
	release := make(chan struct{})
	blockerDone := make(chan error, 1)
	go func() {
		blockerDone <- s.eng.RunLegacy("blocker", func(tc *core.Ctx) error {
			err := tc.Update("accounts", []spi.Value{spi.I64(1)},
				func(spi.Row) error { return nil })
			if err != nil {
				return err
			}
			close(held)
			<-release
			return nil
		})
	}()
	<-held

	rc := dialRaw(t, s.ln.Addr())
	defer rc.c.Close()
	rc.send(1, "move", &moveArgs{ID: 50, Account: 1}) // occupies the only slot
	waitFor(t, "the slot to fill", func() bool { return s.srv.Stats().InFlight == 1 })

	rc.send(2, "move", &moveArgs{ID: 51, Account: 2})
	resp := rc.recv()
	if resp.ID != 2 || resp.Status != wire.StatusQueueFull {
		t.Fatalf("want queue-full for request 2, got %+v", resp)
	}
	if got := s.srv.Stats().RejectedFull; got != 1 {
		t.Fatalf("RejectedFull = %d, want 1", got)
	}

	close(release)
	if err := <-blockerDone; err != nil {
		t.Fatal(err)
	}
	if resp := rc.recv(); resp.ID != 1 || resp.Status != wire.StatusOK {
		t.Fatalf("request 1 should commit after the blocker releases: %+v", resp)
	}
}

// TestPipelining issues many concurrent requests on one connection and
// checks every response arrives, correlated by id.
func TestPipelining(t *testing.T) {
	s := newMoveSys(t, nil)
	rc := dialRaw(t, s.ln.Addr())
	defer rc.c.Close()

	const n = 32
	for i := 1; i <= n; i++ {
		rc.send(uint64(i), "move", &moveArgs{ID: int64(100 + i), Account: int64(i%4 + 1)})
	}
	seen := make(map[uint64]bool)
	for i := 0; i < n; i++ {
		resp := rc.recv()
		if resp.Status != wire.StatusOK {
			t.Fatalf("request %d: %+v", resp.ID, resp)
		}
		if seen[resp.ID] {
			t.Fatalf("duplicate response id %d", resp.ID)
		}
		seen[resp.ID] = true
	}
	if st := s.eng.Snapshot(); st.Commits != n {
		t.Fatalf("commits = %d, want %d", st.Commits, n)
	}
}

// TestDrainUnderTPCCLoad is the graceful-shutdown property at the scale the
// design demands: 64 concurrent TPC-C client connections in full flight,
// Shutdown mid-load, every in-flight transaction finishes (commit or
// compensation), and the twelve-component consistency constraint holds over
// the final database — with compensated order-number holes observed
// server-side through the OnOutcome hook.
func TestDrainUnderTPCCLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("full TPC-C load")
	}
	scale := tpcc.DefaultScale()
	db := core.NewDB()
	if err := tpcc.CreateSchema(db); err != nil {
		t.Fatal(err)
	}
	if err := tpcc.Load(db, scale, 1); err != nil {
		t.Fatal(err)
	}
	types := tpcc.BuildTypes()
	eng := core.New(db, types.Tables,
		core.WithMode(core.ModeACC),
		core.WithWaitTimeout(20*time.Second),
	)
	if _, err := tpcc.Register(eng, types, scale); err != nil {
		t.Fatal(err)
	}
	protos := tpcc.ArgsPrototypes()
	holes := tpcc.NewHoleTracker()
	srv := New(Config{
		Engine:      eng,
		NewArgs:     func(name string) any { return protos[name]() },
		MaxInFlight: 256,
		OnOutcome:   holes.Observe,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	// 64 terminals, each with its own TCP connection, hammering the mix.
	const terminals = 64
	w := tpcc.NewRemoteWorkload(nil, tpcc.DefaultWorkloadConfig(scale))
	var completed atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for term := 0; term < terminals; term++ {
		wg.Add(1)
		go func(term int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			r := rand.New(rand.NewSource(int64(1000 + term)))
			var id uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				id++
				name, args := w.DrawArgs(r, term)
				payload, _ := json.Marshal(args)
				if err := wire.WriteRequest(conn, &wire.Request{ID: id, Op: wire.OpRun, Name: []byte(name), Args: payload}); err != nil {
					return // server closed the session post-drain
				}
				resp, err := wire.ReadResponse(conn)
				if err != nil {
					return
				}
				switch resp.Status {
				case wire.StatusOK, wire.StatusCompensated, wire.StatusAborted:
					completed.Add(1)
				case wire.StatusDraining:
					return
				case wire.StatusQueueFull:
					// over-admission pressure: back off implicitly via loop
				default:
					t.Errorf("terminal %d: unexpected status %s: %s", term, resp.Status, resp.Msg)
					return
				}
			}
		}(term)
	}

	// Let the load build, then drain mid-flight.
	waitFor(t, "sustained load", func() bool { return completed.Load() > 500 })
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	close(stop)
	wg.Wait()
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}

	st := srv.Stats()
	es := eng.Snapshot()
	t.Logf("drained: admitted=%d rejected_full=%d rejected_draining=%d commits=%d compensations=%d",
		st.Admitted, st.RejectedFull, st.RejectedDraining, es.Commits, es.Compensations)
	if st.InFlight != 0 {
		t.Fatalf("in-flight after drain = %d", st.InFlight)
	}
	if !eng.Closed() {
		t.Fatal("engine not closed after drain")
	}
	if es.Commits == 0 {
		t.Fatal("no commits before drain — load never ran")
	}
	if errs := tpcc.CheckConsistency(db, scale, holes.Holes()); len(errs) > 0 {
		for _, e := range errs {
			t.Error(e)
		}
		t.Fatalf("%d consistency violations after drain", len(errs))
	}
}

// TestDrainRefusesNewWork checks the drain fast-path: once Shutdown begins,
// new requests on existing sessions get StatusDraining.
func TestDrainRefusesNewWork(t *testing.T) {
	s := newMoveSys(t, nil)
	rc := dialRaw(t, s.ln.Addr())
	defer rc.c.Close()

	// One committed request proves the session works.
	rc.send(1, "move", &moveArgs{ID: 60, Account: 3})
	if resp := rc.recv(); resp.Status != wire.StatusOK {
		t.Fatalf("pre-drain move: %+v", resp)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.srv.Shutdown(ctx) }()
	waitFor(t, "drain to begin", func() bool { return s.srv.Stats().Draining })

	// The session may already be torn down (drain had nothing in flight);
	// either a draining refusal or a closed connection is acceptable.
	err := wire.WriteRequest(rc.c, mustReq(2, "move", &moveArgs{ID: 61, Account: 3}))
	if err == nil {
		if resp, rerr := wire.ReadResponse(rc.c); rerr == nil && resp.Status != wire.StatusDraining {
			t.Fatalf("want draining refusal, got %+v", resp)
		}
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if !s.eng.Closed() {
		t.Fatal("drain must close the engine (forcing the WAL)")
	}
	if err := s.eng.Run("move", &moveArgs{ID: 62, Account: 3}); !errors.Is(err, core.ErrEngineClosed) {
		t.Fatalf("engine should refuse post-drain work, got %v", err)
	}
}

func mustReq(id uint64, name string, args any) *wire.Request {
	payload, err := json.Marshal(args)
	if err != nil {
		panic(err)
	}
	return &wire.Request{ID: id, Op: wire.OpRun, Name: []byte(name), Args: payload}
}

// registerMoveCodec installs the binary ArgCodec for moveArgs (16 bytes,
// big-endian ID then Account). Codec registration is global and permanent,
// so every test in the package shares one registration.
var moveCodecOnce sync.Once

func registerMoveCodec() {
	moveCodecOnce.Do(func() {
		wire.RegisterArgCodec(&wire.ArgCodec{
			Name:  "move",
			New:   func() any { return &moveArgs{} },
			Reset: func(v any) { *v.(*moveArgs) = moveArgs{} },
			Encode: func(dst []byte, v any) []byte {
				a := v.(*moveArgs)
				var buf [16]byte
				binary.BigEndian.PutUint64(buf[:8], uint64(a.ID))
				binary.BigEndian.PutUint64(buf[8:], uint64(a.Account))
				return append(dst, buf[:]...)
			},
			Decode: func(data []byte, v any) error {
				if len(data) != 16 {
					return fmt.Errorf("move: want 16 bytes, got %d", len(data))
				}
				a := v.(*moveArgs)
				a.ID = int64(binary.BigEndian.Uint64(data[:8]))
				a.Account = int64(binary.BigEndian.Uint64(data[8:]))
				return nil
			},
		})
	})
}

// TestBinaryRequestRoundTrip covers the pooled binary codec end to end at
// the server: a FmtBinary request decodes through the registered codec,
// runs, and answers with a FmtBinary result; a JSON request on the same
// session still answers JSON (mixed-version peers); truncated binary bytes
// are rejected before anything executes; and a binary request for a type
// with no codec gets the bad-request signal the client's JSON fallback
// keys on.
func TestBinaryRequestRoundTrip(t *testing.T) {
	registerMoveCodec()
	s := newMoveSys(t, nil)
	rc := dialRaw(t, s.ln.Addr())
	defer rc.c.Close()

	codec := wire.CodecFor("move")
	if codec == nil {
		t.Fatal("move codec not registered")
	}
	argBytes := codec.Encode(nil, &moveArgs{ID: 70, Account: 1})
	if err := wire.WriteRequest(rc.c, &wire.Request{ID: 1, Op: wire.OpRun, Fmt: wire.FmtBinary, Name: []byte("move"), Args: argBytes}); err != nil {
		t.Fatal(err)
	}
	resp := rc.recv()
	if resp.ID != 1 || resp.Status != wire.StatusOK || resp.Fmt != wire.FmtBinary {
		t.Fatalf("binary round trip: %+v", resp)
	}
	var out moveArgs
	if err := codec.Decode(resp.Result, &out); err != nil {
		t.Fatal(err)
	}
	if out.ID != 70 || out.Account != 1 {
		t.Fatalf("work area mangled: %+v", out)
	}

	rc.send(2, "move", &moveArgs{ID: 71, Account: 2})
	if resp := rc.recv(); resp.Status != wire.StatusOK || resp.Fmt != wire.FmtJSON {
		t.Fatalf("JSON round trip after binary: %+v", resp)
	}

	if err := wire.WriteRequest(rc.c, &wire.Request{ID: 3, Op: wire.OpRun, Fmt: wire.FmtBinary, Name: []byte("move"), Args: argBytes[:7]}); err != nil {
		t.Fatal(err)
	}
	if resp := rc.recv(); resp.ID != 3 || resp.Status != wire.StatusBadRequest {
		t.Fatalf("truncated binary args accepted: %+v", resp)
	}

	if err := wire.WriteRequest(rc.c, &wire.Request{ID: 4, Op: wire.OpRun, Fmt: wire.FmtBinary, Name: []byte("move_legacy"), Args: argBytes}); err != nil {
		t.Fatal(err)
	}
	if resp := rc.recv(); resp.ID != 4 || resp.Status != wire.StatusBadRequest {
		t.Fatalf("binary request without codec should be bad-request, got %+v", resp)
	}
}

// TestGroupCommitAcrossSessions is the cross-session group-commit
// acceptance check: many concurrent client sessions commit against a
// WAL-backed engine with a group window, and one leader's force must cover
// whole windows of them — WAL syncs per commit well under 0.25, versus ~3
// forced records per transaction (two end-of-step, one commit) ungrouped.
func TestGroupCommitAcrossSessions(t *testing.T) {
	l := wal.New(0)
	l.SetGroupWindow(2 * time.Millisecond)
	s := newMoveSys(t, func(c *Config) { c.MaxInFlight = 256 }, core.WithWAL(l))

	cli, err := accclient.Dial(s.ln.Addr().String(), accclient.WithPoolSize(8))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	const workers = 32
	const perWorker = 20
	var nextID atomic.Int64
	nextID.Store(10_000)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				args := &moveArgs{ID: nextID.Add(1), Account: int64(i + 1)}
				if err := cli.Run(context.Background(), "move", args); err != nil {
					t.Errorf("worker %d: %v", i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()

	commits := s.eng.Snapshot().Commits
	forces := l.Snapshot().Forces
	if commits != workers*perWorker {
		t.Fatalf("commits = %d, want %d", commits, workers*perWorker)
	}
	ratio := float64(forces) / float64(commits)
	t.Logf("forces=%d commits=%d syncs/commit=%.3f", forces, commits, ratio)
	if ratio >= 0.25 {
		t.Fatalf("group commit ineffective: %d forces for %d commits (%.2f syncs/commit)", forces, commits, ratio)
	}
}

// BenchmarkServerThroughput measures end-to-end wire throughput of the
// default TPC-C mix under the production client: 64 pipelined terminals
// multiplexed over a pooled connection, binary argument codec, batched
// frame writes. This is the configuration EXPERIMENTS.md cites.
func BenchmarkServerThroughput(b *testing.B) {
	benchServerThroughput(b, nil)
}

// BenchmarkServerThroughputSpans is the same load with the latency-anatomy
// layer recording a span per request — the pair quantifies the observability
// tax EXPERIMENTS.md tracks (budget: <3% over the spans-off number).
func BenchmarkServerThroughputSpans(b *testing.B) {
	benchServerThroughput(b, trace.NewAnatomy(trace.AnatomyConfig{}))
}

func benchServerThroughput(b *testing.B, anatomy *trace.Anatomy) {
	scale := tpcc.DefaultScale()
	db := core.NewDB()
	if err := tpcc.CreateSchema(db); err != nil {
		b.Fatal(err)
	}
	if err := tpcc.Load(db, scale, 1); err != nil {
		b.Fatal(err)
	}
	types := tpcc.BuildTypes()
	eng := core.New(db, types.Tables,
		core.WithMode(core.ModeACC),
		core.WithWaitTimeout(20*time.Second),
	)
	if _, err := tpcc.Register(eng, types, scale); err != nil {
		b.Fatal(err)
	}
	protos := tpcc.ArgsPrototypes()
	srv := New(Config{
		Engine:      eng,
		NewArgs:     func(name string) any { return protos[name]() },
		MaxInFlight: 512,
		Anatomy:     anatomy,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	cli, err := accclient.Dial(ln.Addr().String(), accclient.WithPoolSize(8))
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()

	w := tpcc.NewRemoteWorkload(nil, tpcc.DefaultWorkloadConfig(scale))
	const terminals = 64
	var remaining atomic.Int64
	remaining.Store(int64(b.N))
	ctx := context.Background()
	var wg sync.WaitGroup
	b.ResetTimer()
	for term := 0; term < terminals; term++ {
		wg.Add(1)
		go func(term int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(term + 1)))
			for remaining.Add(-1) >= 0 {
				name, args := w.DrawArgs(r, term)
				if err := cli.Run(ctx, name, args); err != nil && !benignBenchErr(err) {
					b.Error(err)
					return
				}
			}
		}(term)
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "txn/s")
}

// benignBenchErr filters transaction outcomes the TPC-C mix produces by
// design (rollbacks, deadlock victims, admission pushback) from real
// benchmark failures.
func benignBenchErr(err error) bool {
	return core.IsCompensated(err) ||
		errors.Is(err, core.ErrAborted) ||
		errors.Is(err, core.ErrDeadlockVictim) ||
		errors.Is(err, core.ErrLockTimeout) ||
		errors.Is(err, accclient.ErrQueueFull)
}
