package spi

// Design-time identifier types shared by the scheduler, the lock service
// and the interference tables. They are defined here — and aliased by
// accdb/internal/interference — so the SPI does not depend on the
// design-time analysis machinery.

// TxnTypeID identifies a registered transaction type.
type TxnTypeID int32

// StepTypeID identifies a registered step type (forward or compensating).
// Step type IDs are global across transaction types, matching the paper's
// "eleven distinct forward step types were defined" accounting.
type StepTypeID int32

// AssertionID identifies an interstep assertion type. Assertion instances
// (one per transaction instance) share the type's interference entries; the
// one-level ACC distinguishes instances by the items they lock.
type AssertionID int32

// NoStep and NoAssertion are the zero sentinels.
const (
	NoStep      StepTypeID  = 0
	NoAssertion AssertionID = 0
	// LegacyStep tags an access by an undecomposed (legacy or ad-hoc)
	// transaction. It is conservatively assumed to interfere with every
	// assertion and to be interleavable nowhere, which is what isolates
	// legacy transactions from intermediate states (§3.3 end).
	LegacyStep StepTypeID = -1
	// LegacyTxn is the transaction type of undecomposed transactions.
	LegacyTxn TxnTypeID = -1
)
